// Repository benchmarks: one benchmark per paper figure/table plus the
// ablations DESIGN.md calls out. The Fig3/Fig4 benchmarks report the
// simulated cluster results (hours, speedups) through b.ReportMetric so
// `go test -bench . -benchmem` regenerates the paper's evaluation;
// EXPERIMENTS.md records the committed numbers next to the paper's.
package repro

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/experiments"
	"repro/internal/likelihood"
	"repro/internal/mlsearch"
	"repro/internal/seq"
	"repro/internal/simulate"
	"repro/internal/spsim"
	"repro/internal/tree"
	"repro/internal/viewer"
)

// --- §1.1: the number of trees -----------------------------------------

// BenchmarkTreeCountTable regenerates the paper's tree-count examples.
func BenchmarkTreeCountTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TreeCounts()
		if err != nil {
			b.Fatal(err)
		}
		if rows[2].Formatted != "2.8 x 10^74" {
			b.Fatalf("50-taxon count %q", rows[2].Formatted)
		}
	}
}

// --- Figure 1: an unrooted tree rendering ------------------------------

// BenchmarkFig1TreeRender lays out and renders an unrooted tree.
func BenchmarkFig1TreeRender(b *testing.B) {
	ds, err := simulate.New(simulate.Options{Taxa: 24, Sites: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := viewer.NewScene([]*tree.Tree{ds.TrueTree.Clone()}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(sc.SVG(viewer.SVGOptions{Width: 800, LeafLabels: true})) == 0 {
			b.Fatal("empty SVG")
		}
	}
}

// --- Figure 2: the parallel program flow --------------------------------

// BenchmarkFig2ParallelFlow runs the full master/foreman/worker/monitor
// protocol on a small data set and checks it against the serial program.
func BenchmarkFig2ParallelFlow(b *testing.B) {
	cfg := benchConfig(b, 10, 200, 3)
	serialOut, err := mlsearch.Run(cfg, mlsearch.RunOptions{Transport: mlsearch.Serial})
	if err != nil {
		b.Fatal(err)
	}
	serial := serialOut.Results[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := mlsearch.Run(cfg, mlsearch.RunOptions{Transport: mlsearch.Local, Workers: 3, WithMonitor: true})
		if err != nil {
			b.Fatal(err)
		}
		if out.Results[0].LnL != serial.LnL {
			b.Fatal("parallel diverged from serial")
		}
	}
}

// --- Figures 3 and 4: the scaling study ---------------------------------

// benchScaling simulates one paper data set across the processor axis and
// reports the simulated hours and speedups as benchmark metrics.
func benchScaling(b *testing.B, preset simulate.PaperPreset) {
	opt, err := simulate.PaperOptions(preset, 2001)
	if err != nil {
		b.Fatal(err)
	}
	ds, err := simulate.New(opt)
	if err != nil {
		b.Fatal(err)
	}
	pat, err := seq.Compress(ds.Alignment, seq.CompressOptions{})
	if err != nil {
		b.Fatal(err)
	}
	shape := experiments.DatasetShape{
		Name: string(preset), Taxa: opt.Taxa, Sites: opt.Sites, Patterns: pat.NumPatterns(),
	}
	b.ResetTimer()
	var points []experiments.ScalingPoint
	for i := 0; i < b.N; i++ {
		points, err = experiments.Scaling(experiments.ScalingOptions{
			Shapes:  []experiments.DatasetShape{shape},
			Jumbles: 3,
			Extent:  5,
			Seed:    2001,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.MeanSeconds/3600, fmt.Sprintf("simhours_P%d", p.Processors))
		if p.Processors > 1 {
			b.ReportMetric(p.Speedup, fmt.Sprintf("speedup_P%d", p.Processors))
		}
	}
}

// BenchmarkFig3Fig4_50taxa reproduces the 50-taxon series of Figures 3-4.
func BenchmarkFig3Fig4_50taxa(b *testing.B) { benchScaling(b, simulate.Preset50) }

// BenchmarkFig3Fig4_101taxa reproduces the 101-taxon series.
func BenchmarkFig3Fig4_101taxa(b *testing.B) { benchScaling(b, simulate.Preset101) }

// BenchmarkFig3Fig4_150taxa reproduces the 150-taxon series.
func BenchmarkFig3Fig4_150taxa(b *testing.B) { benchScaling(b, simulate.Preset150) }

// --- §3.2 ablations ------------------------------------------------------

// BenchmarkExtentAblation compares extent 1 vs extent 5 scalability at 32
// processors (paper: extent 1 scales worse).
func BenchmarkExtentAblation(b *testing.B) {
	for _, extent := range []int{1, 5} {
		b.Run(fmt.Sprintf("extent%d", extent), func(b *testing.B) {
			var sp float64
			for i := 0; i < b.N; i++ {
				pts, err := experiments.Scaling(experiments.ScalingOptions{
					Shapes:  []experiments.DatasetShape{{Name: "e", Taxa: 40, Sites: 500, Patterns: 400}},
					Jumbles: 2,
					Extent:  extent,
					Procs:   []int{1, 32},
					Seed:    7,
				})
				if err != nil {
					b.Fatal(err)
				}
				sp = pts[len(pts)-1].Speedup
			}
			b.ReportMetric(sp, "speedup_P32")
		})
	}
}

// BenchmarkFalloff simulates the predicted efficiency fall-off past
// 100-200 processors.
func BenchmarkFalloff(b *testing.B) {
	shape := experiments.DatasetShape{Name: "f", Taxa: 50, Sites: 1858, Patterns: 1300}
	var pts []experiments.ScalingPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.Scaling(experiments.ScalingOptions{
			Shapes:  []experiments.DatasetShape{shape},
			Jumbles: 2,
			Extent:  5,
			Procs:   []int{1, 64, 128, 256},
			Seed:    11,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		if p.Processors > 1 {
			b.ReportMetric(p.Efficiency, fmt.Sprintf("efficiency_P%d", p.Processors))
		}
	}
}

// BenchmarkCompressionAblation measures the likelihood evaluation with
// and without site-pattern compression (fastDNAml's aliasing).
func BenchmarkCompressionAblation(b *testing.B) {
	ds, err := simulate.New(simulate.Options{Taxa: 20, Sites: 1000, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	for _, disable := range []bool{false, true} {
		name := "compressed"
		if disable {
			name = "uncompressed"
		}
		b.Run(name, func(b *testing.B) {
			pat, err := seq.Compress(ds.Alignment, seq.CompressOptions{Disable: disable})
			if err != nil {
				b.Fatal(err)
			}
			m, err := mlsearch.NewDefaultModel(pat)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := likelihood.New(m, pat)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(pat.NumPatterns()), "patterns")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.LogLikelihood(ds.TrueTree); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- §6: the wall-clock arithmetic --------------------------------------

// BenchmarkWallclock150 regenerates the paper's concluding numbers for
// the 150-taxon data set.
func BenchmarkWallclock150(b *testing.B) {
	var rows []experiments.WallclockRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, _, err = experiments.Wallclock(2001)
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = rows
}

// --- Figure 5: the multi-tree viewer ------------------------------------

// BenchmarkFig5Scene renders ten trees with traces, the paper's Figure 5.
func BenchmarkFig5Scene(b *testing.B) {
	var trees []*tree.Tree
	for j := 0; j < 10; j++ {
		ds, err := simulate.New(simulate.Options{Taxa: 20, Sites: 60, Seed: int64(100 + j)})
		if err != nil {
			b.Fatal(err)
		}
		trees = append(trees, ds.TrueTree)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := make([]*tree.Tree, len(trees))
		for j := range trees {
			cp[j] = trees[j].Clone()
		}
		sc, err := viewer.NewScene(cp, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(sc.SVG(viewer.SVGOptions{Width: 1100, TraceTaxa: []int{0, 3, 7}})) == 0 {
			b.Fatal("empty SVG")
		}
	}
}

// --- Core engine micro-benchmarks ---------------------------------------

// benchConfig builds a small search configuration.
func benchConfig(b *testing.B, taxa, sites int, seed int64) mlsearch.Config {
	b.Helper()
	ds, err := simulate.New(simulate.Options{Taxa: taxa, Sites: sites, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	pat, err := seq.Compress(ds.Alignment, seq.CompressOptions{})
	if err != nil {
		b.Fatal(err)
	}
	m, err := mlsearch.NewDefaultModel(pat)
	if err != nil {
		b.Fatal(err)
	}
	return mlsearch.Config{Taxa: ds.Alignment.Names, Patterns: pat, Model: m, Seed: 7, RearrangeExtent: 1}
}

// BenchmarkSerialSearch measures a complete real serial search.
func BenchmarkSerialSearch(b *testing.B) {
	cfg := benchConfig(b, 12, 300, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mlsearch.Run(cfg, mlsearch.RunOptions{Transport: mlsearch.Serial}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLikelihoodEval measures one full-tree likelihood evaluation at
// rRNA-like scale.
func BenchmarkLikelihoodEval(b *testing.B) {
	ds, err := simulate.New(simulate.Options{Taxa: 50, Sites: 1858, Seed: 3, GammaAlpha: 0.6})
	if err != nil {
		b.Fatal(err)
	}
	pat, err := seq.Compress(ds.Alignment, seq.CompressOptions{})
	if err != nil {
		b.Fatal(err)
	}
	m, err := mlsearch.NewDefaultModel(pat)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := likelihood.New(m, pat)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(pat.NumPatterns()), "patterns")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.LogLikelihood(ds.TrueTree); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBranchOptimization measures full branch-length smoothing.
func BenchmarkBranchOptimization(b *testing.B) {
	ds, err := simulate.New(simulate.Options{Taxa: 30, Sites: 800, Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	pat, err := seq.Compress(ds.Alignment, seq.CompressOptions{})
	if err != nil {
		b.Fatal(err)
	}
	m, err := mlsearch.NewDefaultModel(pat)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := likelihood.New(m, pat)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := ds.TrueTree.Clone()
		if _, err := eng.OptimizeBranches(tr, likelihood.OptOptions{Passes: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRearrangementEnumeration measures candidate generation at the
// paper's extent-5 setting.
func BenchmarkRearrangementEnumeration(b *testing.B) {
	ds, err := simulate.New(simulate.Options{Taxa: 40, Sites: 60, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		count, err = ds.TrueTree.Rearrangements(5, func(*tree.Tree, tree.RearrangeCandidate) bool { return true })
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(count), "candidates")
}

// BenchmarkMonitorDiscard exercises the monitor wire format.
func BenchmarkMonitorDiscard(b *testing.B) {
	cfg := benchConfig(b, 8, 150, 21)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mlsearch.Run(cfg, mlsearch.RunOptions{
			Transport: mlsearch.Local,
			Workers:   2, WithMonitor: true, MonitorOut: io.Discard,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesize measures paper-scale schedule synthesis (150 taxa).
func BenchmarkSynthesize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		log, err := spsim.Synthesize(spsim.Shape{Taxa: 150, Patterns: 1071, Extent: 5, Seed: 2001})
		if err != nil {
			b.Fatal(err)
		}
		if log.TotalTasks() == 0 {
			b.Fatal("empty log")
		}
	}
}

// --- Incremental evaluation (CLV cache) ----------------------------------

// BenchmarkDownPartialCached measures a full-tree likelihood evaluation
// with the CLV cache cold (every vector recomputed, the pre-cache cost)
// versus warm after a single local branch edit (only the dirty spine
// recomputed).
func BenchmarkDownPartialCached(b *testing.B) {
	ds, err := simulate.New(simulate.Options{Taxa: 50, Sites: 1858, Seed: 3, GammaAlpha: 0.6})
	if err != nil {
		b.Fatal(err)
	}
	pat, err := seq.Compress(ds.Alignment, seq.CompressOptions{})
	if err != nil {
		b.Fatal(err)
	}
	m, err := mlsearch.NewDefaultModel(pat)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := likelihood.New(m, pat)
	if err != nil {
		b.Fatal(err)
	}
	tr := ds.TrueTree
	leaf := tr.LeafByTaxon(0)
	ed := tree.Edge{A: leaf, B: leaf.Nbr[0]}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng.InvalidateAll()
			if _, err := eng.LogLikelihood(tr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm-local-edit", func(b *testing.B) {
		if _, err := eng.LogLikelihood(tr); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tree.SetLen(ed.A, ed.B, 0.1+0.01*float64(i%2))
			if _, err := eng.LogLikelihood(tr); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRoundAddCandidates measures one complete stepwise-addition
// round at 41 taxa: score inserting the last taxon at each of the 77
// edges of a 40-taxon base tree. Shared-base evaluation computes the base
// tree's directed partials once and scores each candidate in O(patterns),
// where the seed rebuilt and re-pruned every candidate tree from scratch
// (ops/candidate is the acceptance metric; see EXPERIMENTS.md).
func BenchmarkRoundAddCandidates(b *testing.B) {
	ds, err := simulate.New(simulate.Options{Taxa: 41, Sites: 500, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	pat, err := seq.Compress(ds.Alignment, seq.CompressOptions{})
	if err != nil {
		b.Fatal(err)
	}
	m, err := mlsearch.NewDefaultModel(pat)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := likelihood.New(m, pat)
	if err != nil {
		b.Fatal(err)
	}
	base := ds.TrueTree.Clone()
	if err := base.RemoveLeaf(40); err != nil {
		b.Fatal(err)
	}
	if _, err := eng.OptimizeBranches(base, likelihood.OptOptions{Passes: 2}); err != nil {
		b.Fatal(err)
	}
	nwk := base.Newick()
	parsed, err := tree.ParseNewick(nwk, ds.Alignment.Names)
	if err != nil {
		b.Fatal(err)
	}
	edges := parsed.InsertionEdges()
	tasks := make([]mlsearch.Task, 0, len(edges))
	for k := range edges {
		tasks = append(tasks, mlsearch.Task{
			ID: uint64(k + 1), Round: 1, BaseNewick: nwk, LocalTaxon: 40,
			InsertEdge: int32(k), Passes: 2,
			MoveP: -1, MoveS: -1, MoveTA: -1, MoveTB: -1,
		})
	}
	ev := mlsearch.NewEvaluator(eng, ds.Alignment.Names)
	var roundOps uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each iteration is one full round from a cold cache, including
		// the base tree's one-time partials.
		eng.InvalidateAll()
		eng.ResetOps()
		for _, t := range tasks {
			if _, err := ev.Evaluate(t); err != nil {
				b.Fatal(err)
			}
		}
		roundOps = eng.Ops()
	}
	b.ReportMetric(float64(len(tasks)), "candidates")
	b.ReportMetric(float64(roundOps), "ops_round")
	b.ReportMetric(float64(roundOps)/float64(len(tasks)), "ops_candidate")
}

// BenchmarkNewtonEdge measures single-edge Newton branch optimization on
// a warm cache: the directed partials of the edge are cache hits (they do
// not depend on the edge's own length), so the cost is the Newton
// iteration itself.
func BenchmarkNewtonEdge(b *testing.B) {
	ds, err := simulate.New(simulate.Options{Taxa: 30, Sites: 800, Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	pat, err := seq.Compress(ds.Alignment, seq.CompressOptions{})
	if err != nil {
		b.Fatal(err)
	}
	m, err := mlsearch.NewDefaultModel(pat)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := likelihood.New(m, pat)
	if err != nil {
		b.Fatal(err)
	}
	tr := ds.TrueTree
	ed := tr.InternalEdges()[0]
	if _, err := eng.LogLikelihood(tr); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.SetLen(ed.A, ed.B, 0.05)
		if _, err := eng.OptimizeEdge(tr, ed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpeculativeAblation runs the study the paper planned (§3.2):
// speculative evaluation on vs off at 64 processors.
func BenchmarkSpeculativeAblation(b *testing.B) {
	shape := experiments.DatasetShape{Name: "s", Taxa: 50, Sites: 1858, Patterns: 1300}
	for _, spec := range []bool{false, true} {
		name := "off"
		if spec {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cl := spsim.DefaultCluster(0)
			cl.Speculative = spec
			var sp float64
			for i := 0; i < b.N; i++ {
				pts, err := experiments.Scaling(experiments.ScalingOptions{
					Shapes:  []experiments.DatasetShape{shape},
					Jumbles: 2,
					Extent:  5,
					Procs:   []int{1, 64},
					Seed:    13,
					Cluster: cl,
				})
				if err != nil {
					b.Fatal(err)
				}
				sp = pts[len(pts)-1].Speedup
			}
			b.ReportMetric(sp, "speedup_P64")
		})
	}
}
