// Command consense computes the majority rule consensus of a set of
// trees, the paper's route from many random orderings to one answer (§2:
// "compare the best of the resulting trees to determine a consensus
// tree").
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/buildinfo"
	"repro/internal/fileio"
	"repro/internal/tree"
	"repro/internal/viewer"
)

func main() {
	var (
		treesPath = flag.String("trees", "", "Newick tree file, one tree per line (required)")
		threshold = flag.Float64("threshold", 0.5, "split inclusion threshold (0.5 = strict majority)")
		outPath   = flag.String("out", "", "write the consensus tree here (default stdout)")
		ascii     = flag.Bool("ascii", true, "print a text rendering")
	)
	versionFlag := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *versionFlag {
		fmt.Println("consense", buildinfo.String())
		return
	}
	if *treesPath == "" {
		fmt.Fprintln(os.Stderr, "consense: -trees is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*treesPath, *threshold, *outPath, *ascii); err != nil {
		fmt.Fprintln(os.Stderr, "consense:", err)
		os.Exit(1)
	}
}

func run(treesPath string, threshold float64, outPath string, ascii bool) error {
	taxa, err := fileio.TaxaFromTreesFile(treesPath)
	if err != nil {
		return err
	}
	sort.Strings(taxa)
	trees, err := fileio.ReadTreesFile(treesPath, taxa)
	if err != nil {
		return err
	}
	res, err := tree.MajorityRule(trees, threshold)
	if err != nil {
		return err
	}
	nwk := res.Tree.Newick()
	if outPath != "" {
		if err := fileio.WriteLines(outPath, []string{nwk}); err != nil {
			return err
		}
	} else {
		fmt.Println(nwk)
	}
	fmt.Fprintf(os.Stderr, "consense: %d trees, %d splits retained of %d observed\n",
		len(trees), len(res.Support), len(res.SplitFreq))
	// Report split support, strongest first.
	type supp struct {
		key string
		f   float64
	}
	var supports []supp
	for k, f := range res.Support {
		supports = append(supports, supp{k, f})
	}
	sort.Slice(supports, func(i, j int) bool {
		if supports[i].f != supports[j].f {
			return supports[i].f > supports[j].f
		}
		return supports[i].key < supports[j].key
	})
	for _, s := range supports {
		members := res.SplitFreq[s.key] // placeholder to keep key used
		_ = members
		fmt.Fprintf(os.Stderr, "  split support %.0f%%\n", 100*s.f)
	}
	if ascii {
		text, err := viewer.ASCII(res.Tree, viewer.ASCIIOptions{Width: 78})
		if err == nil {
			fmt.Fprintln(os.Stderr)
			fmt.Fprint(os.Stderr, text)
		}
	}
	return nil
}
