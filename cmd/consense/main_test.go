package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunConsense(t *testing.T) {
	dir := t.TempDir()
	treesPath := filepath.Join(dir, "trees.nwk")
	content := "((a,b),c,(d,e));\n((a,b),c,(d,e));\n((a,c),b,(d,e));\n"
	if err := os.WriteFile(treesPath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "cons.nwk")
	if err := run(treesPath, 0.5, outPath, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	s := strings.TrimSpace(string(data))
	// The consensus keeps {a,b} (2/3) and {d,e} (3/3).
	if !strings.Contains(s, "a") || !strings.HasSuffix(s, ";") {
		t.Errorf("consensus output %q", s)
	}
}

func TestRunConsenseErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing"), 0.5, "", false); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	treesPath := filepath.Join(dir, "trees.nwk")
	os.WriteFile(treesPath, []byte("((a,b),c,d);\n"), 0o644)
	if err := run(treesPath, 0.2, "", false); err == nil {
		t.Error("bad threshold accepted")
	}
}
