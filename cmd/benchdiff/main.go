// Command benchdiff compares two kernel benchmark reports (the
// BENCH_*.json files written by make bench / TestKernelBenchJSON) and
// fails when any kernel regressed beyond the allowed fraction. It is
// the gate behind `make bench-compare`: the committed
// BENCH_baseline_kernels.json pins the kernel throughput of the tree
// the current optimization round started from, and CI diffs every
// build against it, printing a markdown before/after table for the job
// summary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/buildinfo"
)

// report is the subset of obs.BenchReport benchdiff consumes.
type report struct {
	Run    string             `json:"run"`
	Totals map[string]float64 `json:"totals"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline_kernels.json", "baseline report (committed)")
		currentPath  = flag.String("current", "bench/BENCH_kernels.json", "current report (freshly measured)")
		maxRegress   = flag.Float64("max-regress", 0.10, "fail when a kernel is this fraction slower than baseline")
	)
	versionFlag := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *versionFlag {
		fmt.Println("benchdiff", buildinfo.String())
		return
	}
	base, err := load(*baselinePath)
	if err != nil {
		fatal(err)
	}
	cur, err := load(*currentPath)
	if err != nil {
		fatal(err)
	}

	// Machine-speed normalization: both reports carry a calibration_ns
	// measurement (a fixed dependent float64 chain — pure CPU speed).
	// Dividing current timings by the calibration ratio cancels uniform
	// host-speed drift between the baseline capture and this run, which
	// on shared runners routinely exceeds the regression limit on its
	// own. Reports without calibration compare raw.
	scale := 1.0
	if bc, cc := base.Totals["calibration_ns"], cur.Totals["calibration_ns"]; bc > 0 && cc > 0 {
		scale = bc / cc
		fmt.Printf("machine speed vs baseline capture: %.2fx (calibration %.0f -> %.0f ns/op)\n\n", 1/scale, bc, cc)
	}

	keys := make([]string, 0, len(base.Totals))
	for k := range base.Totals {
		if strings.HasSuffix(k, "_ns") && k != "calibration_ns" {
			if _, ok := cur.Totals[k]; ok {
				keys = append(keys, k)
			}
		}
	}
	if len(keys) == 0 {
		fatal(fmt.Errorf("no comparable *_ns entries between %s and %s", *baselinePath, *currentPath))
	}
	sort.Strings(keys)

	fmt.Println("| kernel | baseline ns/op | current ns/op | normalized ns/op | speedup |")
	fmt.Println("|---|---:|---:|---:|---:|")
	var regressions []string
	for _, k := range keys {
		b, c := base.Totals[k], cur.Totals[k]
		name := strings.TrimSuffix(k, "_ns")
		norm := c * scale
		speedup := b / norm
		fmt.Printf("| %s | %.0f | %.0f | %.0f | %.2fx |\n", name, b, c, norm, speedup)
		if norm > b*(1+*maxRegress) {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f ns/op -> %.0f ns/op normalized (%.1f%% slower, limit %.0f%%)",
					name, b, norm, 100*(norm/b-1), 100**maxRegress))
		}
	}
	fmt.Println()
	if len(regressions) > 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: kernel regressions beyond the limit:")
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d kernels within %.0f%% of baseline\n", len(keys), 100**maxRegress)
}

func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(2)
}
