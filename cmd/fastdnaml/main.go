// Command fastdnaml infers maximum likelihood phylogenetic trees from a
// PHYLIP DNA alignment, reproducing the serial and parallel fastDNAml
// program of the paper. It runs serially by default, in parallel on one
// machine with -workers, or as the master of a distributed run with
// -listen (workers join with cmd/fdworker).
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/fileio"
	"repro/internal/mlsearch"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/seq"
	"repro/internal/tree"
	"repro/internal/viewer"
)

func main() {
	var (
		inPath      = flag.String("in", "", "PHYLIP alignment (required)")
		jumbles     = flag.Int("jumbles", 1, "number of random taxon orderings to analyze")
		concJumbles = flag.Int("concurrent-jumbles", 0, "jumbles (or bootstrap replicates) run concurrently over the shared worker fleet (0 = min(jumbles, workers); results identical at any setting)")
		seed        = flag.Int64("seed", 1, "random seed (even seeds are adjusted, as in fastDNAml)")
		extent      = flag.Int("extent", 1, "vertices crossed in local rearrangements (paper tests: 5)")
		finalExtent = flag.Int("final-extent", 0, "vertices crossed in the final pass (0 = same as -extent)")
		ttratio     = flag.Float64("ttratio", 2.0, "F84 transition/transversion ratio")
		workers     = flag.Int("workers", 0, "parallel worker processes on this machine (0 = serial)")
		threads     = flag.Int("threads", 1, "likelihood kernel threads per evaluator (results are bit-identical at any count)")
		precision   = flag.String("precision", "float64", "CLV storage precision: float64 (exact, default) or float32 (half the memory traffic, documented tolerance)")
		engine      = flag.String("engine", "", "likelihood backend: cached (default) or reference (direct recomputation, for cross-validation)")
		smoothMode  = flag.String("smooth-mode", "", "full-tree branch smoothing: sweep (sequential Newton, default) or gradient (simultaneous, linear-time all-branches gradient)")
		pipeline    = flag.Int("pipeline", 2, "tasks kept in flight per worker in parallel runs (1 = paper's one-task dispatch)")
		monitor     = flag.Bool("monitor", false, "attach the monitor process (parallel runs)")
		ratesPath   = flag.String("rates", "", "per-site rate file (dnarates output)")
		weightsPath = flag.String("weights", "", "per-site weight file")
		outPrefix   = flag.String("out", "", "output prefix for .trees/.best.tree/.consensus.tree files")
		progressOut = flag.String("progress-out", "", "append each adopted best tree to this file (for treeview)")
		listen      = flag.String("listen", "", "run as distributed master listening on this address")
		netWorkers  = flag.Int("net-workers", 0, "number of fdworker processes expected (with -listen)")
		taskTimeout = flag.Duration("task-timeout", 60*time.Second, "distributed runs: re-dispatch a task whose worker has not answered within this (0 disables)")
		quiet       = flag.Bool("quiet", false, "suppress per-jumble output")
		modelName   = flag.String("model", "F84", "substitution model: F84, JC69, K80, HKY85, GTR")
		gtrRates    = flag.String("gtr-rates", "", "six GTR exchangeabilities ac,ag,at,cg,ct,gt")
		kappa       = flag.Float64("kappa", 2.0, "transition rate multiplier for K80/HKY85")
		userTrees   = flag.String("usertrees", "", "evaluate and rank the trees in this file instead of searching")
		bootstrap   = flag.Int("bootstrap", 0, "run this many bootstrap replicates instead of a plain search")
		checkpoint  = flag.String("checkpoint", "", "write a restart file here after every taxon addition (one jumble; serial or -listen)")
		resume      = flag.String("resume", "", "resume a search from this restart file")
		adaptive    = flag.Bool("adaptive", false, "adapt the rearrangement extent to recent success (paper §5)")
		statusAddr  = flag.String("status-addr", "", "serve /metrics, /status, and /debug/pprof on this address (e.g. 127.0.0.1:9090)")
		benchJSON   = flag.String("bench-json", "", "write a BENCH_<run>.json report into this directory at end of run")
		version     = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("fastdnaml", buildinfo.String())
		return
	}
	if *inPath == "" {
		fmt.Fprintln(os.Stderr, "fastdnaml: -in alignment required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*inPath, options{
		jumbles: *jumbles, concJumbles: *concJumbles, seed: *seed, extent: *extent, finalExtent: *finalExtent,
		ttratio: *ttratio, workers: *workers, threads: *threads, precision: *precision, engine: *engine, smoothMode: *smoothMode, pipeline: *pipeline, monitor: *monitor,
		ratesPath: *ratesPath, weightsPath: *weightsPath,
		outPrefix: *outPrefix, progressOut: *progressOut,
		listen: *listen, netWorkers: *netWorkers, taskTimeout: *taskTimeout, quiet: *quiet,
		modelName: *modelName, kappa: *kappa, gtrRates: *gtrRates,
		userTrees: *userTrees, bootstrap: *bootstrap,
		checkpoint: *checkpoint, resume: *resume, adaptive: *adaptive,
		statusAddr: *statusAddr, benchJSON: *benchJSON,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "fastdnaml:", err)
		os.Exit(1)
	}
}

type options struct {
	jumbles, extent, finalExtent, workers, netWorkers int
	concJumbles                                       int
	threads, pipeline                                 int
	seed                                              int64
	taskTimeout                                       time.Duration
	ttratio, kappa                                    float64
	monitor, quiet                                    bool
	ratesPath, weightsPath, outPrefix, progressOut    string
	listen, modelName, gtrRates                       string
	precision, engine, smoothMode                     string
	userTrees                                         string
	bootstrap                                         int
	checkpoint, resume                                string
	adaptive                                          bool
	statusAddr, benchJSON                             string

	// observer is created when -status-addr or -bench-json asks for
	// instrumentation; start stamps the run's wall clock and runName
	// names the BENCH_<run>.json file.
	observer *mlsearch.RunObserver
	start    time.Time
	runName  string
}

func run(inPath string, o options) error {
	f, err := os.Open(inPath)
	if err != nil {
		return err
	}
	a, err := seq.ReadPhylip(f)
	f.Close()
	if err != nil {
		return err
	}
	var rates, weights []float64
	if o.ratesPath != "" {
		if rates, err = fileio.ReadFloatsFile(o.ratesPath); err != nil {
			return err
		}
	}
	if o.weightsPath != "" {
		if weights, err = fileio.ReadFloatsFile(o.weightsPath); err != nil {
			return err
		}
	}

	var progressFile *os.File
	if o.progressOut != "" {
		progressFile, err = os.Create(o.progressOut)
		if err != nil {
			return err
		}
		defer progressFile.Close()
	}
	// Concurrent jumbles report progress from several goroutines; the
	// mutex keeps the file writes and console lines whole.
	var progressMu sync.Mutex
	progress := func(j int, e mlsearch.ProgressEvent) {
		progressMu.Lock()
		defer progressMu.Unlock()
		if progressFile != nil {
			fmt.Fprintln(progressFile, e.BestNewick)
		}
		if !o.quiet {
			fmt.Printf("jumble %d: %-9s %3d taxa  lnL %.4f\n", j+1, e.Kind, e.TaxaInTree, e.BestLnL)
		}
	}

	gtr, err := parseGTRRates(o.gtrRates)
	if err != nil {
		return err
	}
	// SIGINT/SIGTERM stop the search at its next round boundary; the
	// checkpoint paths then flush a current restart file and exit 0.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		if _, ok := <-sigc; !ok {
			return
		}
		fmt.Fprintln(os.Stderr, "fastdnaml: signal received; stopping at the next round boundary (repeat to kill)")
		signal.Stop(sigc)
		close(stop)
	}()
	opt := core.Options{
		Stop:                 stop,
		ModelName:            o.modelName,
		TTRatio:              o.ttratio,
		Kappa:                o.kappa,
		GTRRates:             gtr,
		Jumbles:              o.jumbles,
		MaxConcurrentJumbles: o.concJumbles,
		Seed:                 o.seed,
		RearrangeExtent:      o.extent,
		FinalExtent:          o.finalExtent,
		AdaptiveExtent:       o.adaptive,
		Workers:              o.workers,
		Threads:              o.threads,
		Precision:            o.precision,
		Engine:               o.engine,
		SmoothMode:           o.smoothMode,
		Pipeline:             o.pipeline,
		WithMonitor:          o.monitor,
		MonitorOut:           obs.NewLockedWriter(os.Stderr),
		SiteRates:            rates,
		Weights:              weights,
		Progress:             progress,
	}

	o.start = time.Now()
	o.runName = strings.TrimSuffix(filepath.Base(inPath), filepath.Ext(inPath)) +
		"_s" + strconv.FormatInt(o.seed, 10)
	if o.statusAddr != "" || o.benchJSON != "" {
		o.observer = mlsearch.NewRunObserver(obs.NewRegistry(), obs.NewBus())
		opt.Obs = o.observer
		if o.statusAddr != "" {
			srv, err := obs.NewStatusServer(obs.StatusOptions{
				Addr:     o.statusAddr,
				Registry: o.observer.Registry(),
				Snapshot: func() any { return o.observer.Snapshot() },
			})
			if err != nil {
				return err
			}
			defer srv.Close()
			fmt.Printf("status server on http://%s (/metrics, /status, /debug/pprof)\n", srv.Addr())
		}
	}

	switch {
	case o.userTrees != "":
		return runUserTrees(a, opt, o)
	case o.bootstrap > 0:
		return runBootstrap(a, opt, o)
	case o.listen != "":
		return runDistributed(a, opt, o)
	case o.checkpoint != "" || o.resume != "":
		return runCheckpointed(a, opt, o)
	}

	inf, err := core.Infer(a, opt)
	if err != nil {
		return finishInterrupted(err, nil, o)
	}
	return report(inf, a, o)
}

// finishInterrupted turns a signal-stop into a clean exit: flush the
// restart manifest if one is being recorded, tell the user how to
// resume, and return nil so the process exits 0. Any other error passes
// through unchanged.
func finishInterrupted(err error, rec *mlsearch.ManifestRecorder, o options) error {
	if !errors.Is(err, mlsearch.ErrStopped) {
		return err
	}
	if rec != nil {
		if ferr := rec.Flush(); ferr != nil {
			return fmt.Errorf("interrupted, and the final checkpoint failed: %w", ferr)
		}
	}
	switch {
	case o.checkpoint != "":
		fmt.Printf("interrupted; restart file %s is current — resume with -resume %s\n", o.checkpoint, o.checkpoint)
	case o.resume != "":
		fmt.Printf("interrupted; resume again with -resume %s\n", o.resume)
	default:
		fmt.Println("interrupted (run with -checkpoint to make interrupted searches resumable)")
	}
	return nil
}

// parseGTRRates parses "ac,ag,at,cg,ct,gt" (empty = zero value).
func parseGTRRates(s string) (model.GTRRates, error) {
	var r model.GTRRates
	if s == "" {
		return r, nil
	}
	fields := strings.Split(s, ",")
	if len(fields) != 6 {
		return r, fmt.Errorf("-gtr-rates needs 6 comma-separated values, got %d", len(fields))
	}
	vals := make([]float64, 6)
	for i, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return r, fmt.Errorf("-gtr-rates: %w", err)
		}
		vals[i] = v
	}
	r.AC, r.AG, r.AT, r.CG, r.CT, r.GT = vals[0], vals[1], vals[2], vals[3], vals[4], vals[5]
	return r, nil
}

// runUserTrees evaluates and ranks given topologies (fastDNAml's
// user-tree mode).
func runUserTrees(a *seq.Alignment, opt core.Options, o options) error {
	cfg, _, err := core.Prepare(a, opt)
	if err != nil {
		return err
	}
	trees, err := fileio.ReadTreesFile(o.userTrees, a.Names)
	if err != nil {
		return err
	}
	ranked, err := mlsearch.KishinoHasegawa(cfg, trees)
	if err != nil {
		return err
	}
	fmt.Printf("%d user trees, best first (Kishino-Hasegawa test):\n", len(ranked))
	var lines []string
	for rank, r := range ranked {
		verdict := "best"
		if r.Diff != 0 {
			verdict = "not significantly worse"
			if r.SignificantlyWorse {
				verdict = "SIGNIFICANTLY WORSE (5% level)"
			}
		}
		fmt.Printf("%3d. input tree %d  lnL %.4f  diff %.4f  sd %.4f  %s\n",
			rank+1, r.Index+1, r.LnL, r.Diff, r.SD, verdict)
		lines = append(lines, r.Newick)
	}
	if o.outPrefix != "" {
		if err := fileio.WriteLines(o.outPrefix+".ranked.trees", lines); err != nil {
			return err
		}
		fmt.Printf("wrote %s.ranked.trees (optimized branch lengths)\n", o.outPrefix)
	}
	return nil
}

// runBootstrap resamples columns and reports split support.
func runBootstrap(a *seq.Alignment, opt core.Options, o options) error {
	fmt.Printf("bootstrap: %d replicates\n", o.bootstrap)
	res, err := core.Bootstrap(a, opt, o.bootstrap)
	if err != nil {
		return finishInterrupted(err, nil, o)
	}
	fmt.Printf("\nbootstrap consensus (%d splits retained):\n%s\n",
		len(res.Consensus.Support), res.Consensus.Tree.Newick())
	fmt.Println("\nsplit support (bootstrap proportions):")
	for _, f := range sortedSupports(res.Consensus.Support) {
		fmt.Printf("  %5.1f%%\n", 100*f)
	}
	if o.outPrefix != "" {
		var lines []string
		for _, tr := range res.Trees {
			lines = append(lines, tr.Newick())
		}
		if err := fileio.WriteLines(o.outPrefix+".boot.trees", lines); err != nil {
			return err
		}
		if err := fileio.WriteLines(o.outPrefix+".boot.consensus.tree", []string{res.Consensus.Tree.Newick()}); err != nil {
			return err
		}
		fmt.Printf("wrote %s.boot.trees and %s.boot.consensus.tree\n", o.outPrefix, o.outPrefix)
	}
	return nil
}

func sortedSupports(m map[string]float64) []float64 {
	out := make([]float64, 0, len(m))
	for _, f := range m {
		out = append(out, f)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// runCheckpointed runs a checkpointed search (any number of jumbles),
// writing a restart file after each completed addition, or resumes from
// one. Single-jumble runs write the flat checkpoint format; multi-jumble
// runs write a manifest with one block per jumble. Serial by default,
// parallel with -workers.
func runCheckpointed(a *seq.Alignment, opt core.Options, o options) error {
	cfg, opt, err := core.Prepare(a, opt)
	if err != nil {
		return err
	}
	runOpt := mlsearch.RunOptions{
		Transport:            mlsearch.Serial,
		Jumbles:              o.jumbles,
		MaxConcurrentJumbles: o.concJumbles,
		Progress:             opt.Progress,
		Obs:                  opt.Obs,
	}
	if o.workers > 0 {
		runOpt.Transport = mlsearch.Local
		runOpt.Workers = o.workers
		runOpt.WithMonitor = o.monitor
		runOpt.MonitorOut = opt.MonitorOut
		runOpt.Foreman = mlsearch.ForemanOptions{Pipeline: o.pipeline}
	}
	runOpt.Stop = opt.Stop
	rec, err := wireRestart(&runOpt, o)
	if err != nil {
		return err
	}
	out, err := mlsearch.Run(cfg, runOpt)
	if err != nil {
		return finishInterrupted(err, rec, o)
	}
	inf, err := inferenceFromResults(a, cfg.Taxa, out, opt)
	if err != nil {
		return err
	}
	return report(inf, a, o)
}

// wireRestart wires -resume and -checkpoint into runOpt, sniffing the
// restart file's format: a flat checkpoint resumes one jumble, a
// manifest resumes a multi-jumble run (adopting the manifest's jumble
// count when -jumbles was left at its default). It returns the manifest
// recorder when one is writing, so an interrupted run can flush it.
func wireRestart(runOpt *mlsearch.RunOptions, o options) (*mlsearch.ManifestRecorder, error) {
	var prior *mlsearch.Manifest
	if o.resume != "" {
		cp, m, err := mlsearch.LoadResume(o.resume)
		if err != nil {
			return nil, err
		}
		if m != nil {
			if runOpt.Jumbles > 1 && runOpt.Jumbles != m.Jumbles {
				return nil, fmt.Errorf("-jumbles %d does not match the manifest's %d jumbles", runOpt.Jumbles, m.Jumbles)
			}
			runOpt.Jumbles = m.Jumbles
			runOpt.ResumeManifest = m
			prior = m
			done := 0
			for j := 0; j < m.Jumbles; j++ {
				if cp, ok := m.Checkpoint(j); ok && cp.Phase == mlsearch.PhaseDone {
					done++
				}
			}
			fmt.Printf("resuming manifest: %d of %d jumbles done\n", done, m.Jumbles)
		} else {
			fmt.Printf("resuming: phase %s, %d of %d taxa in tree\n", cp.Phase, cp.NextIndex, len(cp.Order))
			runOpt.Resume = cp
		}
	}
	if o.checkpoint != "" {
		if runOpt.Jumbles > 1 {
			rec := mlsearch.NewManifestRecorder(o.checkpoint, runOpt.Jumbles, prior)
			runOpt.OnCheckpoint = func(_ int, cp mlsearch.Checkpoint) {
				if err := rec.Record(cp); err != nil {
					fmt.Fprintln(os.Stderr, "fastdnaml: checkpoint:", err)
				}
			}
			return rec, nil
		}
		runOpt.OnCheckpoint = func(_ int, cp mlsearch.Checkpoint) { writeCheckpointFile(o.checkpoint, cp) }
	}
	return nil, nil
}

// runDistributed hosts the elastic TCP master; workers join at any time
// via cmd/fdworker. -net-workers is only a start barrier: the master
// waits for that many workers before the first round, then tolerates
// joins and departures for the rest of the run (evaluating inline if the
// worker set ever empties).
func runDistributed(a *seq.Alignment, opt core.Options, o options) error {
	cfg, opt, err := core.Prepare(a, opt)
	if err != nil {
		return err
	}
	var phylip strings.Builder
	if err := seq.WritePhylip(&phylip, a, 0); err != nil {
		return err
	}
	runOpt := mlsearch.RunOptions{
		Transport:            mlsearch.TCP,
		Addr:                 o.listen,
		Workers:              o.netWorkers,
		WithMonitor:          o.monitor,
		Jumbles:              o.jumbles,
		MaxConcurrentJumbles: o.concJumbles,
		MonitorOut:           obs.NewLockedWriter(os.Stderr),
		Foreman:              mlsearch.ForemanOptions{TaskTimeout: o.taskTimeout, Pipeline: o.pipeline},
		Obs:                  opt.Obs,
		Bundle: mlsearch.DataBundle{
			PhylipText: []byte(phylip.String()),
			TTRatio:    opt.TTRatio,
			SiteRates:  opt.SiteRates,
			Weights:    opt.Weights,
			Precision:  cfg.Precision,
			Engine:     cfg.Engine,
			SmoothMode: cfg.SmoothMode,
		},
		Progress: opt.Progress,
		OnListen: func(addr net.Addr) {
			fmt.Printf("listening on %s; workers join with:\n", addr)
			fmt.Printf("  fdworker -connect %s\n", addr)
			if o.netWorkers > 0 {
				fmt.Printf("waiting for %d worker(s) before starting\n", o.netWorkers)
			}
		},
		OnMember: func(rank int, joined bool) {
			if o.quiet {
				return
			}
			if joined {
				fmt.Printf("worker %d joined\n", rank)
			} else {
				fmt.Printf("worker %d left\n", rank)
			}
		},
	}
	runOpt.Stop = opt.Stop
	rec, err := wireRestart(&runOpt, o)
	if err != nil {
		return err
	}
	out, err := mlsearch.Run(cfg, runOpt)
	if err != nil {
		return finishInterrupted(err, rec, o)
	}
	// Repackage as an Inference for uniform reporting.
	inf, err := inferenceFromResults(a, cfg.Taxa, out, opt)
	if err != nil {
		return err
	}
	return report(inf, a, o)
}

// writeCheckpointFile writes a restart file, logging failures without
// aborting the run.
func writeCheckpointFile(path string, cp mlsearch.Checkpoint) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fastdnaml: checkpoint:", err)
		return
	}
	if err := mlsearch.WriteCheckpoint(f, cp); err != nil {
		fmt.Fprintln(os.Stderr, "fastdnaml: checkpoint:", err)
	}
	f.Close()
}

func inferenceFromResults(a *seq.Alignment, taxa []string, out *mlsearch.RunOutcome, opt core.Options) (*core.Inference, error) {
	inf := &core.Inference{Monitor: out.Monitor}
	for _, res := range out.Results {
		tr, err := tree.ParseNewick(res.BestNewick, taxa)
		if err != nil {
			return nil, err
		}
		inf.Jumbles = append(inf.Jumbles, core.JumbleResult{
			// The search carries the seed it ran with; re-deriving it
			// from the slice index mislabels resumed runs.
			Seed: res.Seed, Tree: tr, Newick: res.BestNewick, LnL: res.LnL, Search: res,
		})
	}
	best := &inf.Jumbles[0]
	for i := range inf.Jumbles {
		if inf.Jumbles[i].LnL > best.LnL {
			best = &inf.Jumbles[i]
		}
	}
	inf.Best = best
	return inf, nil
}

func report(inf *core.Inference, a *seq.Alignment, o options) error {
	fmt.Println()
	for i, j := range inf.Jumbles {
		marker := " "
		if &inf.Jumbles[i] == inf.Best {
			marker = "*"
		}
		fmt.Printf("%s jumble %d (seed %d): lnL %.4f\n", marker, i+1, j.Seed, j.LnL)
	}
	fmt.Printf("\nbest tree (lnL %.4f):\n%s\n", inf.Best.LnL, inf.Best.Newick)
	if ascii, err := viewer.ASCII(inf.Best.Tree, viewer.ASCIIOptions{Width: 78}); err == nil {
		fmt.Println()
		fmt.Print(ascii)
	}
	if inf.Consensus != nil {
		fmt.Printf("\nmajority rule consensus (%d trees):\n%s\n", len(inf.Jumbles), inf.Consensus.Tree.Newick())
	}
	if o.outPrefix != "" {
		var lines []string
		for _, j := range inf.Jumbles {
			lines = append(lines, j.Newick)
		}
		if err := fileio.WriteLines(o.outPrefix+".trees", lines); err != nil {
			return err
		}
		if err := fileio.WriteLines(o.outPrefix+".best.tree", []string{inf.Best.Newick}); err != nil {
			return err
		}
		if inf.Consensus != nil {
			if err := fileio.WriteLines(o.outPrefix+".consensus.tree", []string{inf.Consensus.Tree.Newick()}); err != nil {
				return err
			}
		}
		fmt.Printf("\nwrote %s.trees and %s.best.tree\n", o.outPrefix, o.outPrefix)
	}
	return writeBenchReport(inf, o)
}

// writeBenchReport dumps a machine-readable BENCH_<run>.json into the
// -bench-json directory: per-jumble outcomes, monitor counters when the
// monitor ran, and the observer's run snapshot when one was attached.
func writeBenchReport(inf *core.Inference, o options) error {
	if o.benchJSON == "" {
		return nil
	}
	totals := map[string]float64{
		"jumbles":  float64(len(inf.Jumbles)),
		"best_lnl": inf.Best.LnL,
		"threads":  float64(o.threads),
		"pipeline": float64(o.pipeline),
	}
	type jumbleBench struct {
		Seed  int64   `json:"seed"`
		LnL   float64 `json:"lnl"`
		Tasks int     `json:"tasks"`
		Ops   uint64  `json:"ops"`
	}
	var jb []jumbleBench
	for _, j := range inf.Jumbles {
		b := jumbleBench{Seed: j.Seed, LnL: j.LnL}
		if j.Search != nil {
			b.Tasks = j.Search.TotalTasks
			b.Ops = j.Search.TotalOps
			totals["tasks"] += float64(b.Tasks)
			totals["ops"] += float64(b.Ops)
		}
		jb = append(jb, b)
	}
	details := map[string]any{"jumbles": jb}
	if m := inf.Monitor; m != nil {
		details["monitor"] = map[string]int{
			"rounds": m.Rounds, "dispatches": m.Dispatches, "results": m.Results,
			"deaths": len(m.Deaths), "revivals": len(m.Revivals),
			"joins": m.Joins, "leaves": m.Leaves, "inline": m.Inline,
		}
	}
	if o.observer != nil {
		details["run"] = o.observer.Snapshot()
	}
	path, err := obs.WriteBench(o.benchJSON, obs.BenchReport{
		Run:       o.runName,
		StartedAt: o.start,
		Totals:    totals,
		Details:   details,
	})
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
