package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/seq"
	"repro/internal/simulate"
)

// writeTestAlignment produces a small PHYLIP file for CLI-level tests.
func writeTestAlignment(t *testing.T, taxa, sites int) string {
	t.Helper()
	ds, err := simulate.New(simulate.Options{Taxa: taxa, Sites: sites, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "align.phy")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.WritePhylip(f, ds.Alignment, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestRunSerialWritesOutputs(t *testing.T) {
	in := writeTestAlignment(t, 6, 120)
	prefix := filepath.Join(t.TempDir(), "run")
	err := run(in, options{
		jumbles: 2, seed: 1, extent: 1, ttratio: 2, modelName: "F84", kappa: 2,
		quiet: true, outPrefix: prefix,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".trees", ".best.tree", ".consensus.tree"} {
		if _, err := os.Stat(prefix + suffix); err != nil {
			t.Errorf("missing output %s: %v", suffix, err)
		}
	}
}

func TestRunParallelMode(t *testing.T) {
	in := writeTestAlignment(t, 6, 100)
	err := run(in, options{
		jumbles: 1, seed: 1, extent: 1, ttratio: 2, modelName: "F84", kappa: 2,
		quiet: true, workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCheckpointThenResume(t *testing.T) {
	in := writeTestAlignment(t, 6, 100)
	cpPath := filepath.Join(t.TempDir(), "cp.txt")
	if err := run(in, options{
		jumbles: 1, seed: 1, extent: 1, ttratio: 2, modelName: "F84", kappa: 2,
		quiet: true, checkpoint: cpPath,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(cpPath); err != nil {
		t.Fatal("no checkpoint written")
	}
	if err := run(in, options{
		jumbles: 1, seed: 1, extent: 1, ttratio: 2, modelName: "F84", kappa: 2,
		quiet: true, resume: cpPath,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUserTreesMode(t *testing.T) {
	in := writeTestAlignment(t, 6, 100)
	prefix := filepath.Join(t.TempDir(), "search")
	if err := run(in, options{
		jumbles: 2, seed: 1, extent: 1, ttratio: 2, modelName: "F84", kappa: 2,
		quiet: true, outPrefix: prefix,
	}); err != nil {
		t.Fatal(err)
	}
	if err := run(in, options{
		jumbles: 1, seed: 1, extent: 1, ttratio: 2, modelName: "F84", kappa: 2,
		quiet: true, userTrees: prefix + ".trees",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBootstrapMode(t *testing.T) {
	in := writeTestAlignment(t, 6, 150)
	if err := run(in, options{
		jumbles: 1, seed: 1, extent: 1, ttratio: 2, modelName: "F84", kappa: 2,
		quiet: true, bootstrap: 2,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsMissingInput(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "nope.phy"), options{ttratio: 2, modelName: "F84", kappa: 2}); err == nil {
		t.Error("missing input accepted")
	}
}

func TestRunModelFlag(t *testing.T) {
	in := writeTestAlignment(t, 6, 100)
	for _, m := range []string{"JC69", "K80", "HKY85"} {
		if err := run(in, options{
			jumbles: 1, seed: 1, extent: 1, ttratio: 2, modelName: m, kappa: 2, quiet: true,
		}); err != nil {
			t.Errorf("model %s: %v", m, err)
		}
	}
	if err := run(in, options{jumbles: 1, seed: 1, extent: 1, ttratio: 2, modelName: "BOGUS", kappa: 2, quiet: true}); err == nil {
		t.Error("bogus model accepted")
	}
}
