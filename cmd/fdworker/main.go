// Command fdworker is a distributed fastDNAml worker process: it joins a
// master started with `fastdnaml -listen`, receives the alignment over
// the wire, and evaluates trees until shutdown. Workers may run anywhere
// a socket can reach the master — the reproduction of the paper's
// geographically distributed PVM workers and cluster nodes (§2.2).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/mlsearch"
)

func main() {
	var (
		connect = flag.String("connect", "", "master address (required), e.g. host:7946")
		rank    = flag.Int("rank", 0, "this worker's rank (printed by the master)")
		size    = flag.Int("size", 0, "world size (printed by the master)")
		monitor = flag.Bool("monitor", false, "set if the master runs with -monitor")
		flaky   = flag.Float64("flaky", 0, "drop this fraction of replies (fault tolerance demos)")
		seed    = flag.Int64("flaky-seed", 1, "seed for -flaky")
		retryMs = flag.Int("retry-ms", 0, "retry the connection every N ms until it succeeds")
	)
	flag.Parse()
	if *connect == "" || *rank <= 0 || *size <= 0 {
		fmt.Fprintln(os.Stderr, "fdworker: -connect, -rank and -size are required")
		flag.Usage()
		os.Exit(2)
	}
	hooks := mlsearch.WorkerHooks{}
	if *flaky > 0 {
		rng := rand.New(rand.NewSource(*seed))
		hooks.BeforeReply = func(task mlsearch.Task, res mlsearch.Result) bool {
			return rng.Float64() >= *flaky
		}
	}
	for {
		err := mlsearch.RunTCPWorker(*connect, *rank, *size, *monitor, hooks)
		if err == nil {
			return
		}
		if *retryMs <= 0 {
			fmt.Fprintln(os.Stderr, "fdworker:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fdworker: %v; retrying in %dms\n", err, *retryMs)
		time.Sleep(time.Duration(*retryMs) * time.Millisecond)
	}
}
