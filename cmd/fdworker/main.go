// Command fdworker is a distributed fastDNAml worker process: it joins a
// master started with `fastdnaml -listen`, receives its rank and the
// alignment in the join handshake, and evaluates trees until shutdown.
// Workers carry no pre-assigned identity and may start before the
// master, join mid-run, or outlive a master restart: by default the
// worker reconnects with jittered exponential backoff whenever its
// connection drops. Workers may run anywhere a socket can reach the
// master — the reproduction of the paper's geographically distributed
// PVM workers and cluster nodes (§2.2), and the behaviour the planned
// Condor/screensaver workers (§5) would need.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/likelihood"
	"repro/internal/mlsearch"
	"repro/internal/obs"
)

func main() {
	var (
		connect    = flag.String("connect", "", "master address (required), e.g. host:7946")
		reconnect  = flag.String("reconnect", "on", "reconnect policy: on, off, or base=250ms,cap=15s,max=0")
		flaky      = flag.Float64("flaky", 0, "drop this fraction of replies (fault tolerance demos)")
		seed       = flag.Int64("flaky-seed", 1, "seed for -flaky")
		statusAddr = flag.String("status-addr", "", "serve /metrics, /status, and /debug/pprof on this address")
		threads    = flag.Int("threads", 1, "likelihood kernel threads (results are bit-identical at any count)")
		precision  = flag.String("precision", "", "CLV storage precision: float64 or float32 (default: whatever the master's data bundle requests)")
		engine     = flag.String("engine", "", "likelihood backend: cached or reference (default: whatever the master's data bundle requests)")
		smoothMode = flag.String("smooth-mode", "", "full-tree branch smoothing: sweep or gradient (default: whatever the master's data bundle requests)")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("fdworker", buildinfo.String())
		return
	}
	if *connect == "" {
		fmt.Fprintln(os.Stderr, "fdworker: -connect is required")
		flag.Usage()
		os.Exit(2)
	}
	policy, err := mlsearch.ParseReconnectPolicy(*reconnect)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fdworker:", err)
		os.Exit(2)
	}
	hooks := mlsearch.WorkerHooks{Threads: *threads}
	if *precision != "" {
		prec, err := likelihood.ParsePrecision(*precision)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdworker:", err)
			os.Exit(2)
		}
		hooks.Precision, hooks.PrecisionSet = prec, true
	}
	if *engine != "" {
		name, err := likelihood.ParseEngine(*engine)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdworker:", err)
			os.Exit(2)
		}
		hooks.Engine, hooks.EngineSet = name, true
	}
	if *smoothMode != "" {
		m, err := likelihood.ParseSmoothMode(*smoothMode)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdworker:", err)
			os.Exit(2)
		}
		hooks.SmoothMode, hooks.SmoothModeSet = m, true
	}
	if *statusAddr != "" {
		reg := obs.NewRegistry()
		wobs := mlsearch.NewWorkerObserver(reg)
		hooks.Obs = wobs
		srv, err := obs.NewStatusServer(obs.StatusOptions{
			Addr:     *statusAddr,
			Registry: reg,
			Snapshot: func() any { return wobs.Snapshot() },
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fdworker:", err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Printf("status server on http://%s (/metrics, /status, /debug/pprof)\n", srv.Addr())
	}
	if *flaky > 0 {
		rng := rand.New(rand.NewSource(*seed))
		hooks.BeforeReply = func(task mlsearch.Task, res mlsearch.Result) bool {
			return rng.Float64() >= *flaky
		}
	}
	if err := mlsearch.ServeElastic(*connect, hooks, policy); err != nil {
		fmt.Fprintln(os.Stderr, "fdworker:", err)
		os.Exit(1)
	}
}
