package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrees(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trees.nwk")
	content := "((a:0.1,b:0.2):0.05,c:0.1,(d:0.3,e:0.1):0.2);\n" +
		"((a:0.1,c:0.2):0.05,b:0.1,(d:0.3,e:0.1):0.2);\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunASCII(t *testing.T) {
	trees := writeTrees(t)
	out := filepath.Join(t.TempDir(), "out.txt")
	if err := run(trees, "ascii", out, "", true, 70, true, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		if !strings.Contains(s, name) {
			t.Errorf("taxon %s missing:\n%s", name, s)
		}
	}
	if !strings.Contains(s, "--- tree 2 ---") {
		t.Error("second tree header missing")
	}
}

func TestRunASCIIWithTrace(t *testing.T) {
	trees := writeTrees(t)
	out := filepath.Join(t.TempDir(), "out.txt")
	if err := run(trees, "ascii", out, "a,d", false, 0, true, 0); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if !strings.Contains(string(data), "trace a:") {
		t.Errorf("trace report missing:\n%s", data)
	}
}

func TestRunSVG(t *testing.T) {
	trees := writeTrees(t)
	out := filepath.Join(t.TempDir(), "out.svg")
	if err := run(trees, "svg", out, "a", false, 700, true, 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "<svg") || !strings.Contains(s, "<circle") {
		t.Errorf("svg output malformed:\n%.200s", s)
	}
}

func TestRunFirstLimit(t *testing.T) {
	trees := writeTrees(t)
	out := filepath.Join(t.TempDir(), "out.txt")
	if err := run(trees, "ascii", out, "", false, 0, true, 1); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(out)
	if strings.Contains(string(data), "tree 2") {
		t.Error("first=1 still rendered tree 2")
	}
}

func TestRunErrors(t *testing.T) {
	trees := writeTrees(t)
	if err := run(trees, "png", "", "", false, 0, true, 0); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run(trees, "ascii", "", "nosuch", false, 0, true, 0); err == nil {
		t.Error("unknown trace taxon accepted")
	}
	if err := run(filepath.Join(t.TempDir(), "missing"), "ascii", "", "", false, 0, true, 0); err == nil {
		t.Error("missing file accepted")
	}
}
