// Command treeview renders phylogenetic trees: a terminal phylogram, or
// the planar-3D multi-tree SVG of the paper's viewer (§4) with taxon
// traces across trees. Feed it the .trees output of fastdnaml for
// comparing jumbles, or its -progress-out file for watching the tree grow
// iteration by iteration.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/fileio"
	"repro/internal/viewer"
)

func main() {
	var (
		treesPath = flag.String("trees", "", "Newick tree file, one per line (required)")
		format    = flag.String("format", "ascii", "output format: ascii or svg")
		outPath   = flag.String("out", "", "output file (default stdout)")
		trace     = flag.String("trace", "", "comma-separated taxon names to trace across trees (svg)")
		lengths   = flag.Bool("lengths", false, "annotate branch lengths (ascii)")
		width     = flag.Int("width", 0, "output width (characters for ascii, pixels for svg)")
		labels    = flag.Bool("labels", true, "draw leaf labels (svg)")
		first     = flag.Int("first", 0, "render only the first N trees (0 = all)")
	)
	versionFlag := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *versionFlag {
		fmt.Println("treeview", buildinfo.String())
		return
	}
	if *treesPath == "" {
		fmt.Fprintln(os.Stderr, "treeview: -trees is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*treesPath, *format, *outPath, *trace, *lengths, *width, *labels, *first); err != nil {
		fmt.Fprintln(os.Stderr, "treeview:", err)
		os.Exit(1)
	}
}

func run(treesPath, format, outPath, trace string, lengths bool, width int, labels bool, first int) error {
	taxa, err := fileio.TaxaFromTreesFile(treesPath)
	if err != nil {
		return err
	}
	sort.Strings(taxa)
	trees, err := fileio.ReadTreesFile(treesPath, taxa)
	if err != nil {
		return err
	}
	if first > 0 && first < len(trees) {
		trees = trees[:first]
	}

	out := os.Stdout
	if outPath != "" {
		out, err = os.Create(outPath)
		if err != nil {
			return err
		}
		defer out.Close()
	}

	switch format {
	case "ascii":
		for i, t := range trees {
			if len(trees) > 1 {
				fmt.Fprintf(out, "--- tree %d ---\n", i+1)
			}
			text, err := viewer.ASCII(t, viewer.ASCIIOptions{Width: width, ShowLengths: lengths})
			if err != nil {
				return err
			}
			fmt.Fprint(out, text)
		}
		if trace != "" {
			taxIdx, err := resolveTaxa(taxa, trace)
			if err != nil {
				return err
			}
			rep, err := viewer.TraceReport(trees, taxIdx)
			if err != nil {
				return err
			}
			fmt.Fprintln(out)
			fmt.Fprint(out, rep)
		}
	case "svg":
		labelsList := make([]string, len(trees))
		for i := range trees {
			labelsList[i] = fmt.Sprintf("tree %d", i+1)
		}
		scene, err := viewer.NewScene(trees, labelsList)
		if err != nil {
			return err
		}
		opt := viewer.SVGOptions{Width: width, LeafLabels: labels}
		if trace != "" {
			if opt.TraceTaxa, err = resolveTaxa(taxa, trace); err != nil {
				return err
			}
		}
		fmt.Fprint(out, scene.SVG(opt))
	default:
		return fmt.Errorf("unknown format %q (ascii or svg)", format)
	}
	return nil
}

// resolveTaxa maps comma-separated taxon names to indices.
func resolveTaxa(taxa []string, list string) ([]int, error) {
	var out []int
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := -1
		for i, t := range taxa {
			if t == name {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("unknown taxon %q", name)
		}
		out = append(out, found)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no taxa to trace")
	}
	return out, nil
}
