// Command scaling regenerates the paper's evaluation: the tree-count
// examples (§1.1), the Figure 3 and Figure 4 scaling study, the §3.2
// predictions (4-processor slowdown, extent sensitivity, fall-off past
// 100-200 processors), the §6 wall-clock arithmetic, and the calibration
// runs that tie the simulated cluster to measured searches. See
// EXPERIMENTS.md for the recorded paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "fig3", "experiment: treecount, fig3, fig4, falloff, extent, speculative, throughput, wallclock, calibrate, measured, flow, all")
		jumbles = flag.Int("jumbles", 10, "random orderings averaged per point (paper: 10)")
		seed    = flag.Int64("seed", 2001, "seed for data sets and schedules")
		procs   = flag.String("procs", "", "comma-separated processor counts (default: the paper's 1,4,8,16,32,64)")
		taxa    = flag.Int("taxa", 14, "taxa for -exp measured")
		sites   = flag.Int("sites", 300, "sites for -exp measured")
		extent  = flag.Int("extent", 5, "rearrangement extent (paper tests: 5)")
	)
	versionFlag := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *versionFlag {
		fmt.Println("scaling", buildinfo.String())
		return
	}

	var procList []int
	if *procs != "" {
		for _, f := range strings.Split(*procs, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				fmt.Fprintln(os.Stderr, "scaling: bad -procs:", err)
				os.Exit(2)
			}
			procList = append(procList, v)
		}
	}

	var run func(string) error
	run = func(name string) error {
		switch name {
		case "treecount":
			rows, err := experiments.TreeCounts()
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderTreeCounts(rows))
		case "fig3", "fig4":
			fmt.Fprintf(os.Stderr, "scaling: generating paper data sets and %d schedules per set...\n", *jumbles)
			pts, err := experiments.Scaling(experiments.ScalingOptions{
				Jumbles: *jumbles, Procs: procList, Extent: *extent, Seed: *seed,
			})
			if err != nil {
				return err
			}
			if name == "fig3" {
				fmt.Println(experiments.RenderFig3(pts))
			} else {
				fmt.Println(experiments.RenderFig4(pts))
			}
		case "falloff":
			pts, err := experiments.Falloff(*seed, *jumbles)
			if err != nil {
				return err
			}
			fmt.Println("Efficiency fall-off past the paper's 64 processors (§3.2 prediction: 100-200)")
			fmt.Println(experiments.RenderFig4(pts))
		case "extent":
			pts, err := experiments.ExtentComparison(*seed, *jumbles)
			if err != nil {
				return err
			}
			fmt.Println("Rearrangement extent ablation (§3.2: extent 1 scales worse than extent 5)")
			fmt.Println(experiments.RenderFig4(pts))
		case "speculative":
			pts, err := experiments.SpeculativeComparison(*seed, *jumbles)
			if err != nil {
				return err
			}
			fmt.Println("Speculative evaluation study (the paper's planned §3.2 follow-up)")
			fmt.Println(experiments.RenderFig4(pts))
		case "throughput":
			pts, err := experiments.Throughput(experiments.ThroughputOptions{Seed: *seed, Extent: *extent})
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderThroughput(pts, 200, 64))
		case "wallclock":
			_, text, err := experiments.Wallclock(*seed)
			if err != nil {
				return err
			}
			fmt.Println(text)
		case "calibrate":
			cal, err := experiments.Calibrate(*seed)
			if err != nil {
				return err
			}
			fmt.Println(cal.Report)
		case "measured":
			fmt.Fprintf(os.Stderr, "scaling: running a real %d-taxon search...\n", *taxa)
			pts, err := experiments.MeasuredSweep(*taxa, *sites, 2, *seed, procList)
			if err != nil {
				return err
			}
			fmt.Println("Measured-schedule sweep (real search, simulated cluster)")
			fmt.Println(experiments.RenderFig4(pts))
		case "flow":
			return experiments.FlowDemo(os.Stdout, *seed)
		case "all":
			for _, n := range []string{"treecount", "flow", "measured", "fig3", "fig4", "extent", "speculative", "throughput", "falloff", "wallclock"} {
				fmt.Printf("==== %s ====\n", n)
				if err := run(n); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}
	if err := run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "scaling:", err)
		os.Exit(1)
	}
}
