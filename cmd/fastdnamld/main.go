// Command fastdnamld is the persistent multi-tenant inference daemon:
// it owns a bounded fleet of warm dataset-keyed worker pods and serves
// maximum likelihood searches over HTTP. Clients submit PHYLIP
// alignments plus options as jobs (POST /v1/jobs), poll or stream
// progress, and fetch results; the daemon schedules tenants
// weighted-fair, memoizes completed results content-addressed, and
// checkpoints every running job so a restart over the same data
// directory resumes where it stopped. Observability (/metrics, /status,
// /healthz, /debug/pprof) shares the API port.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addr            = flag.String("addr", "127.0.0.1:8844", "listen address for the API and observability endpoints")
		dataDir         = flag.String("data", "fastdnamld-data", "durable state directory (job records, restart manifests, results)")
		workers         = flag.Int("workers", 2, "worker goroutines per dataset pod")
		maxPods         = flag.Int("max-pods", 2, "warm dataset pods kept at once")
		idleTTL         = flag.Duration("pod-idle-ttl", 5*time.Minute, "idle time before a warm pod is shut down")
		threads         = flag.Int("threads", 1, "likelihood kernel threads per worker (results are bit-identical at any count)")
		pipeline        = flag.Int("pipeline", 2, "tasks kept in flight per worker")
		taskTimeout     = flag.Duration("task-timeout", time.Minute, "re-dispatch a task whose worker has not answered within this")
		maxActive       = flag.Int("max-active", 2, "jobs running concurrently")
		maxQueued       = flag.Int("max-queued", 64, "global queue depth before submissions get 429")
		maxQueuedTenant = flag.Int("max-queued-per-tenant", 16, "one tenant's queue depth before its submissions get 429")
		authMode        = flag.String("auth", "keys", "authentication mode: keys (require -api-keys) or off (dev mode, tenants self-declared)")
		apiKeys         = flag.String("api-keys", "", "per-tenant API key file (`<key> <tenant>` lines); SIGHUP reloads it")
		rate            = flag.Float64("rate", 0, "per-tenant submission rate limit in requests/second (0 = unlimited)")
		burst           = flag.Int("burst", 1, "token-bucket burst for -rate")
		jobTTL          = flag.Duration("job-ttl", 0, "evict terminal jobs (memory and disk) after this (0 = keep forever)")
		resultTTL       = flag.Duration("result-ttl", 0, "delete cached results unused for this long (0 = keep forever)")
		maxResultBytes  = flag.Int64("max-results-bytes", 0, "LRU-trim the result store past this many bytes (0 = unbounded)")
		gcInterval      = flag.Duration("gc-interval", 30*time.Second, "pod-reap and retention-GC tick")
		version         = flag.Bool("version", false, "print version and exit")
	)
	weights := map[string]float64{}
	flag.Func("tenant-weight", "tenant=weight fair-share weight, repeatable (unlisted tenants weigh 1)", func(s string) error {
		name, val, ok := strings.Cut(s, "=")
		if !ok {
			return fmt.Errorf("want tenant=weight, got %q", s)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return fmt.Errorf("bad weight %q", val)
		}
		weights[name] = w
		return nil
	})
	flag.Parse()
	if *version {
		fmt.Println("fastdnamld", buildinfo.String())
		return
	}

	logger := log.New(os.Stderr, "fastdnamld: ", log.LstdFlags)

	// Auth is on unless explicitly disabled: an open daemon is a dev
	// convenience, not a deployment default.
	var auth *serve.KeyAuth
	switch *authMode {
	case "off":
		if *apiKeys != "" {
			logger.Fatal("-api-keys given with -auth=off; pick one")
		}
		logger.Printf("WARNING: -auth=off: tenants are self-declared and every job is visible to every client")
	case "keys":
		if *apiKeys == "" {
			logger.Fatal("-auth=keys (the default) needs -api-keys <file>; use -auth=off for an open dev daemon")
		}
		var err error
		auth, err = serve.NewKeyAuth(*apiKeys)
		if err != nil {
			logger.Fatal(err)
		}
	default:
		logger.Fatalf("unknown -auth mode %q (keys, off)", *authMode)
	}

	reg := obs.NewRegistry()
	srv, err := serve.NewServer(serve.Options{
		DataDir: *dataDir,
		Fleet: serve.FleetOptions{
			Workers:     *workers,
			MaxPods:     *maxPods,
			IdleTTL:     *idleTTL,
			Threads:     *threads,
			Pipeline:    *pipeline,
			TaskTimeout: *taskTimeout,
		},
		MaxActive:          *maxActive,
		MaxQueued:          *maxQueued,
		MaxQueuedPerTenant: *maxQueuedTenant,
		TenantWeights:      weights,
		Auth:               auth,
		Rate:               *rate,
		Burst:              *burst,
		JobTTL:             *jobTTL,
		ResultTTL:          *resultTTL,
		MaxResultsBytes:    *maxResultBytes,
		GCInterval:         *gcInterval,
		Registry:           reg,
		Bus:                obs.NewBus(),
		Logf:               logger.Printf,
	})
	if err != nil {
		logger.Fatal(err)
	}

	status, err := obs.NewStatusServer(obs.StatusOptions{
		Addr:     *addr,
		Registry: reg,
		Snapshot: srv.Snapshot,
	})
	if err != nil {
		logger.Fatal(err)
	}
	status.Handle("/v1/", srv.Handler())
	// The smoke test and operators parse this line for the bound port.
	fmt.Printf("fastdnamld: serving on http://%s\n", status.Addr())
	fmt.Printf("  API: POST /v1/jobs, GET /v1/jobs/{id}[/events|/result], DELETE /v1/jobs/{id}\n")
	fmt.Printf("  obs: /metrics /status /healthz /debug/pprof  (version %s)\n", buildinfo.Version)

	// SIGHUP hot-reloads the API key file: key rotation without a
	// restart. A broken file keeps the previous keys in effect.
	if auth != nil {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if n, err := auth.Reload(); err != nil {
					logger.Printf("SIGHUP: api keys NOT reloaded: %v", err)
				} else {
					logger.Printf("SIGHUP: reloaded %d api key(s) from %s", n, *apiKeys)
				}
			}
		}()
	}

	// Graceful shutdown: stop admitting, halt running searches at their
	// next round boundary (manifests flush, jobs persist as queued),
	// then exit 0. The next start over the same -data resumes them.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	sig := <-sigc
	signal.Stop(sigc) // a second signal kills immediately
	logger.Printf("%s received; draining (second signal kills)", sig)
	if err := srv.Close(); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	_ = status.Close()
	logger.Printf("stopped; restart with -data %s to resume incomplete jobs", *dataDir)
}
