// Command simseq generates synthetic DNA alignments by evolving sequences
// down a random tree, the substitute for the paper's proprietary rRNA
// alignments (DESIGN.md §2). The -preset flag reproduces the paper's
// three data set dimensions exactly.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/buildinfo"
	"repro/internal/fileio"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func main() {
	var (
		preset   = flag.String("preset", "", "paper data set: 50taxa, 101taxa, or 150taxa")
		taxa     = flag.Int("taxa", 0, "number of taxa (custom data sets)")
		sites    = flag.Int("sites", 0, "alignment length (custom data sets)")
		seed     = flag.Int64("seed", 1, "random seed")
		gamma    = flag.Float64("gamma", 0.6, "gamma shape for rate heterogeneity (0 = homogeneous)")
		meanLen  = flag.Float64("mean-branch", 0.08, "mean branch length of the true tree")
		outPath  = flag.String("out", "", "PHYLIP output file (default stdout)")
		treeOut  = flag.String("tree-out", "", "write the true tree (Newick) here")
		ratesOut = flag.String("rates-out", "", "write the true per-site rates here")
		fasta    = flag.Bool("fasta", false, "write FASTA instead of PHYLIP")
	)
	versionFlag := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *versionFlag {
		fmt.Println("simseq", buildinfo.String())
		return
	}

	var opt simulate.Options
	var err error
	if *preset != "" {
		opt, err = simulate.PaperOptions(simulate.PaperPreset(*preset), *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simseq:", err)
			os.Exit(2)
		}
	} else {
		if *taxa == 0 || *sites == 0 {
			fmt.Fprintln(os.Stderr, "simseq: need -preset or both -taxa and -sites")
			flag.Usage()
			os.Exit(2)
		}
		opt = simulate.Options{Taxa: *taxa, Sites: *sites, Seed: *seed, GammaAlpha: *gamma, MeanBranchLen: *meanLen}
	}

	ds, err := simulate.New(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simseq:", err)
		os.Exit(1)
	}

	out := os.Stdout
	if *outPath != "" {
		out, err = os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simseq:", err)
			os.Exit(1)
		}
		defer out.Close()
	}
	if *fasta {
		err = seq.WriteFasta(out, ds.Alignment)
	} else {
		err = seq.WritePhylip(out, ds.Alignment, 0)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "simseq:", err)
		os.Exit(1)
	}
	if *treeOut != "" {
		if err := fileio.WriteLines(*treeOut, []string{ds.TrueTree.Newick()}); err != nil {
			fmt.Fprintln(os.Stderr, "simseq:", err)
			os.Exit(1)
		}
	}
	if *ratesOut != "" {
		lines := make([]string, len(ds.SiteRates))
		for i, r := range ds.SiteRates {
			lines[i] = strconv.FormatFloat(r, 'g', 8, 64)
		}
		if err := fileio.WriteLines(*ratesOut, lines); err != nil {
			fmt.Fprintln(os.Stderr, "simseq:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "simseq: %d taxa x %d sites (seed %d)\n",
		ds.Alignment.NumSeqs(), ds.Alignment.NumSites(), *seed)
}
