// Command dnarates estimates per-site relative evolutionary rates by
// maximum likelihood given an alignment and a tree, reproducing Olsen's
// DNArates companion program (paper §2). The output feeds back into
// fastdnaml through its -rates flag.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/buildinfo"
	"repro/internal/dnarates"
	"repro/internal/fileio"
	"repro/internal/mlsearch"
	"repro/internal/seq"
)

func main() {
	var (
		inPath     = flag.String("in", "", "PHYLIP alignment (required)")
		treePath   = flag.String("tree", "", "Newick tree file (required)")
		outPath    = flag.String("out", "", "per-site rate output (default stdout)")
		catsOut    = flag.String("categories-out", "", "write 1-based site categories here")
		categories = flag.Int("categories", 0, "bucket rates into this many categories (fastDNAml accepts up to 35)")
		grid       = flag.Int("grid", 25, "rate grid size")
		minRate    = flag.Float64("min-rate", 0.05, "smallest rate considered")
		maxRate    = flag.Float64("max-rate", 20, "largest rate considered")
	)
	versionFlag := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *versionFlag {
		fmt.Println("dnarates", buildinfo.String())
		return
	}
	if *inPath == "" || *treePath == "" {
		fmt.Fprintln(os.Stderr, "dnarates: -in and -tree are required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*inPath, *treePath, *outPath, *catsOut, *categories, *grid, *minRate, *maxRate); err != nil {
		fmt.Fprintln(os.Stderr, "dnarates:", err)
		os.Exit(1)
	}
}

func run(inPath, treePath, outPath, catsOut string, categories, grid int, minRate, maxRate float64) error {
	f, err := os.Open(inPath)
	if err != nil {
		return err
	}
	a, err := seq.ReadPhylip(f)
	f.Close()
	if err != nil {
		return err
	}
	trees, err := fileio.ReadTreesFile(treePath, a.Names)
	if err != nil {
		return err
	}
	pat, err := seq.Compress(a, seq.CompressOptions{})
	if err != nil {
		return err
	}
	m, err := mlsearch.NewDefaultModel(pat)
	if err != nil {
		return err
	}
	rates, err := dnarates.Estimate(m, a, trees[0], dnarates.Options{
		MinRate: minRate, MaxRate: maxRate, GridSize: grid,
	})
	if err != nil {
		return err
	}

	out := os.Stdout
	if outPath != "" {
		out, err = os.Create(outPath)
		if err != nil {
			return err
		}
		defer out.Close()
	}
	for _, r := range rates.PerSite {
		fmt.Fprintln(out, strconv.FormatFloat(r, 'g', 8, 64))
	}
	fmt.Fprintf(os.Stderr, "dnarates: lnL %.4f (uniform rates) -> %.4f (fitted rates)\n",
		rates.LnLBefore, rates.LnLAfter)

	if categories > 0 {
		cats, catRates, err := dnarates.Categorize(rates.PerSite, categories)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dnarates: %d categories, representative rates:", categories)
		for _, cr := range catRates {
			fmt.Fprintf(os.Stderr, " %.3f", cr)
		}
		fmt.Fprintln(os.Stderr)
		if catsOut != "" {
			lines := make([]string, len(cats))
			for i, c := range cats {
				lines[i] = strconv.Itoa(c)
			}
			if err := fileio.WriteLines(catsOut, lines); err != nil {
				return err
			}
		}
	}
	return nil
}
