package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fileio"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func TestRunDnarates(t *testing.T) {
	dir := t.TempDir()
	ds, err := simulate.New(simulate.Options{Taxa: 8, Sites: 200, Seed: 3, GammaAlpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	alignPath := filepath.Join(dir, "align.phy")
	f, err := os.Create(alignPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.WritePhylip(f, ds.Alignment, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	treePath := filepath.Join(dir, "tree.nwk")
	if err := fileio.WriteLines(treePath, []string{ds.TrueTree.Newick()}); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "rates.txt")
	catsPath := filepath.Join(dir, "cats.txt")
	if err := run(alignPath, treePath, outPath, catsPath, 5, 15, 0.05, 20); err != nil {
		t.Fatal(err)
	}
	rates, err := fileio.ReadFloatsFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(rates) != 200 {
		t.Errorf("%d rates, want 200", len(rates))
	}
	for i, r := range rates {
		if r <= 0 {
			t.Errorf("rate %d = %g", i, r)
		}
	}
	cats, err := fileio.ReadFloatsFile(catsPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(cats) != 200 {
		t.Errorf("%d categories", len(cats))
	}
	for _, c := range cats {
		if c < 1 || c > 5 {
			t.Errorf("category %g out of range", c)
		}
	}
}

func TestRunDnaratesErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run(filepath.Join(dir, "missing"), filepath.Join(dir, "m2"), "", "", 0, 25, 0.05, 20); err == nil {
		t.Error("missing files accepted")
	}
}
