#!/usr/bin/env bash
# Black-box smoke test of the fastdnamld daemon over real HTTP.
#
# Builds the binaries, starts a 2-worker daemon on an OS-assigned port,
# and drives it with curl the way a client would:
#
#   1. /healthz answers 200 with the stamped version.
#   2. A submitted job completes, and its best tree is byte-identical to
#      a serial `fastdnaml` run over the same alignment and seed.
#   3. Submitting the identical spec again is a cache hit: the response
#      says so, and fdml_dispatch_total proves the fleet never saw it.
#   4. /metrics exposes the tenant-labeled service counters.
#   5. SIGTERM shuts the daemon down gracefully (exit 0).
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
daemon_pid=
cleanup() {
	[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null && wait "$daemon_pid" 2>/dev/null
	rm -rf "$work"
}
trap cleanup EXIT

fail() {
	echo "serve-smoke: FAIL: $*" >&2
	[ -f "$work/daemon.log" ] && sed 's/^/  daemon: /' "$work/daemon.log" >&2
	exit 1
}

echo "== build"
go build -o "$work/bin/" ./cmd/fastdnaml ./cmd/fastdnamld ./cmd/simseq

echo "== serial reference run"
"$work/bin/simseq" -taxa 8 -sites 200 -seed 11 -out "$work/aln.phy" 2>/dev/null
"$work/bin/fastdnaml" -in "$work/aln.phy" -seed 5 -quiet -out "$work/ref" >/dev/null
ref_tree=$(cat "$work/ref.best.tree")
[ -n "$ref_tree" ] || fail "serial run produced no tree"

echo "== start daemon"
"$work/bin/fastdnamld" -addr 127.0.0.1:0 -data "$work/data" -workers 2 \
	>"$work/daemon.log" 2>&1 &
daemon_pid=$!
base=
for _ in $(seq 1 100); do
	base=$(sed -n 's/^fastdnamld: serving on \(http:\/\/.*\)$/\1/p' "$work/daemon.log")
	[ -n "$base" ] && break
	kill -0 "$daemon_pid" 2>/dev/null || fail "daemon died on startup"
	sleep 0.1
done
[ -n "$base" ] || fail "daemon never reported its address"
echo "   $base"

curl -fsS "$base/healthz" | grep -q '"status": *"ok"' || fail "/healthz not ok"

echo "== submit job"
# JSON-escape the alignment's newlines into one string field.
aln_json=$(awk '{printf "%s\\n", $0}' "$work/aln.phy")
printf '{"tenant":"lab-a","alignment":"%s","options":{"seed":5}}' "$aln_json" \
	>"$work/job.json"
resp=$(curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary @"$work/job.json" "$base/v1/jobs")
job_id=$(printf '%s\n' "$resp" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)
[ -n "$job_id" ] || fail "submit returned no job id: $resp"
echo "   $job_id"

echo "== wait for completion"
state=
for _ in $(seq 1 600); do
	rec=$(curl -fsS "$base/v1/jobs/$job_id")
	state=$(printf '%s\n' "$rec" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -1)
	case "$state" in
	done) break ;;
	failed | canceled | quarantined) fail "job reached $state: $rec" ;;
	esac
	sleep 0.2
done
[ "$state" = done ] || fail "job stuck in state '$state'"

got_tree=$(curl -fsS "$base/v1/jobs/$job_id/result?format=newick")
[ "$got_tree" = "$ref_tree" ] ||
	fail "service tree differs from serial run:
  serial:  $ref_tree
  service: $got_tree"
echo "   tree matches the serial run"

echo "== duplicate submission is a zero-dispatch cache hit"
dispatches() {
	curl -fsS "$base/metrics" | sed -n 's/^fdml_dispatch_total \(.*\)/\1/p'
}
before=$(dispatches)
[ -n "$before" ] || fail "/metrics has no fdml_dispatch_total"
dup=$(curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary @"$work/job.json" "$base/v1/jobs")
printf '%s' "$dup" | grep -q '"cache_hit": *true' || fail "duplicate not a cache hit: $dup"
printf '%s' "$dup" | grep -q '"state": *"done"' || fail "cache hit not done: $dup"
after=$(dispatches)
[ "$before" = "$after" ] || fail "duplicate dispatched work: $before -> $after"
echo "   fdml_dispatch_total unchanged at $after"

echo "== tenant-labeled metrics"
metrics=$(curl -fsS "$base/metrics")
for want in \
	'fdml_serve_submissions_total{tenant="lab-a"} 2' \
	'fdml_serve_cache_hits_total{tenant="lab-a"} 1' \
	'fdml_serve_jobs_total{tenant="lab-a",outcome="done"} 2'; do
	printf '%s\n' "$metrics" | grep -qF "$want" || fail "metrics missing: $want"
done

echo "== graceful shutdown"
kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
	fail "daemon exited non-zero on SIGTERM"
fi
daemon_pid=

echo "serve-smoke: PASS"
