#!/usr/bin/env bash
# Black-box smoke test of the fastdnamld daemon over real HTTP.
#
# Builds the binaries, starts a 2-worker daemon on an OS-assigned port
# with auth, rate limiting, and a short job TTL enabled, and drives it
# with curl the way a client would:
#
#   1. /healthz answers 200 with the stamped version.
#   2. Requests without a key, or with a wrong key, get 401; a good key
#      resolves to its tenant (the body declares none).
#   3. A submitted job completes, and its best tree is byte-identical to
#      a serial `fastdnaml` run over the same alignment and seed.
#   4. Submitting the identical spec again is a cache hit: the response
#      says so, and fdml_dispatch_total proves the fleet never saw it.
#   5. A submission burst past -rate gets 429 + Retry-After with the
#      rate_limited reason on /metrics.
#   6. After the short job TTL, the GC evicts the done job (its id
#      404s, fdml_gc_* counters move) while the result store still
#      answers a resubmission as a cache hit.
#   7. /metrics exposes the tenant-labeled service counters, with the
#      tenant taken from the API key.
#   8. SIGTERM shuts the daemon down gracefully (exit 0).
set -euo pipefail
cd "$(dirname "$0")/.."

work=$(mktemp -d)
daemon_pid=
cleanup() {
	[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null && wait "$daemon_pid" 2>/dev/null
	rm -rf "$work"
}
trap cleanup EXIT

fail() {
	echo "serve-smoke: FAIL: $*" >&2
	[ -f "$work/daemon.log" ] && sed 's/^/  daemon: /' "$work/daemon.log" >&2
	exit 1
}

echo "== build"
# SMOKE_RACE=1 (set in CI) builds the binaries with the race detector,
# so the whole curl-driven scenario doubles as a race soak.
go build ${SMOKE_RACE:+-race} -o "$work/bin/" ./cmd/fastdnaml ./cmd/fastdnamld ./cmd/simseq

echo "== serial reference run"
"$work/bin/simseq" -taxa 8 -sites 200 -seed 11 -out "$work/aln.phy" 2>/dev/null
"$work/bin/fastdnaml" -in "$work/aln.phy" -seed 5 -quiet -out "$work/ref" >/dev/null
ref_tree=$(cat "$work/ref.best.tree")
[ -n "$ref_tree" ] || fail "serial run produced no tree"

echo "== start daemon (auth + rate limit + short job TTL)"
good_key="smoke-key-0123456789abcdef"
printf '# smoke test keys\n%s lab-a\n' "$good_key" >"$work/keys"
"$work/bin/fastdnamld" -addr 127.0.0.1:0 -data "$work/data" -workers 2 \
	-api-keys "$work/keys" -rate 1 -burst 2 \
	-job-ttl 2s -result-ttl 10m -gc-interval 1s \
	>"$work/daemon.log" 2>&1 &
daemon_pid=$!
base=
for _ in $(seq 1 100); do
	base=$(sed -n 's/^fastdnamld: serving on \(http:\/\/.*\)$/\1/p' "$work/daemon.log")
	[ -n "$base" ] && break
	kill -0 "$daemon_pid" 2>/dev/null || fail "daemon died on startup"
	sleep 0.1
done
[ -n "$base" ] || fail "daemon never reported its address"
echo "   $base"

auth=(-H "Authorization: Bearer $good_key")

curl -fsS "$base/healthz" | grep -q '"status": *"ok"' || fail "/healthz not ok"

echo "== auth: missing and wrong keys are 401, good key works"
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/jobs")
[ "$code" = 401 ] || fail "unauthenticated list got $code, want 401"
code=$(curl -s -o /dev/null -w '%{http_code}' -H 'Authorization: Bearer wrong-key-00000000' "$base/v1/jobs")
[ "$code" = 401 ] || fail "wrong-key list got $code, want 401"
curl -fsS "${auth[@]}" "$base/v1/jobs" >/dev/null || fail "good key rejected"

echo "== submit job"
# JSON-escape the alignment's newlines into one string field. No tenant
# in the body: the identity must come from the API key.
aln_json=$(awk '{printf "%s\\n", $0}' "$work/aln.phy")
printf '{"alignment":"%s","options":{"seed":5}}' "$aln_json" >"$work/job.json"
resp=$(curl -fsS -X POST -H 'Content-Type: application/json' "${auth[@]}" \
	--data-binary @"$work/job.json" "$base/v1/jobs")
job_id=$(printf '%s\n' "$resp" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)
[ -n "$job_id" ] || fail "submit returned no job id: $resp"
printf '%s' "$resp" | grep -q '"tenant": *"lab-a"' || fail "tenant not resolved from key: $resp"
echo "   $job_id"

echo "== wait for completion"
state=
for _ in $(seq 1 600); do
	rec=$(curl -fsS "${auth[@]}" "$base/v1/jobs/$job_id")
	state=$(printf '%s\n' "$rec" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -1)
	case "$state" in
	done) break ;;
	failed | canceled | quarantined) fail "job reached $state: $rec" ;;
	esac
	sleep 0.2
done
[ "$state" = done ] || fail "job stuck in state '$state'"

got_tree=$(curl -fsS "${auth[@]}" "$base/v1/jobs/$job_id/result?format=newick")
[ "$got_tree" = "$ref_tree" ] ||
	fail "service tree differs from serial run:
  serial:  $ref_tree
  service: $got_tree"
echo "   tree matches the serial run"

echo "== duplicate submission is a zero-dispatch cache hit"
dispatches() {
	curl -fsS "$base/metrics" | sed -n 's/^fdml_dispatch_total \(.*\)/\1/p'
}
before=$(dispatches)
[ -n "$before" ] || fail "/metrics has no fdml_dispatch_total"
dup=$(curl -fsS -X POST -H 'Content-Type: application/json' "${auth[@]}" \
	--data-binary @"$work/job.json" "$base/v1/jobs")
printf '%s' "$dup" | grep -q '"cache_hit": *true' || fail "duplicate not a cache hit: $dup"
printf '%s' "$dup" | grep -q '"state": *"done"' || fail "cache hit not done: $dup"
after=$(dispatches)
[ "$before" = "$after" ] || fail "duplicate dispatched work: $before -> $after"
echo "   fdml_dispatch_total unchanged at $after"

echo "== submission burst past -rate gets 429 + Retry-After"
saw_429=
for _ in 1 2 3; do
	hdrs=$(curl -s -D - -o /dev/null -X POST -H 'Content-Type: application/json' "${auth[@]}" \
		--data-binary @"$work/job.json" "$base/v1/jobs")
	if printf '%s' "$hdrs" | head -1 | grep -q 429; then
		saw_429=yes
		printf '%s' "$hdrs" | grep -qi '^Retry-After:' || fail "429 without Retry-After:
$hdrs"
		break
	fi
done
[ -n "$saw_429" ] || fail "burst of 3 rapid submissions never saw a 429 (rate 1/s, burst 2)"
curl -fsS "$base/metrics" | grep -q 'fdml_serve_rejections_total{tenant="lab-a",reason="rate_limited"}' ||
	fail "metrics missing the rate_limited rejection"
echo "   429 with Retry-After, labeled on /metrics"

echo "== job TTL: GC evicts the done job, CAS still answers"
sleep 4 # job-ttl 2s + gc-interval 1s
code=$(curl -s -o /dev/null -w '%{http_code}' "${auth[@]}" "$base/v1/jobs/$job_id")
[ "$code" = 404 ] || fail "evicted job still answers $code, want 404"
metrics=$(curl -fsS "$base/metrics")
printf '%s\n' "$metrics" | grep -q '^fdml_gc_runs_total [1-9]' || fail "metrics missing fdml_gc_runs_total"
printf '%s\n' "$metrics" | grep -q '^fdml_gc_jobs_evicted_total [1-9]' || fail "metrics missing fdml_gc_jobs_evicted_total"
resub=$(curl -fsS -X POST -H 'Content-Type: application/json' "${auth[@]}" \
	--data-binary @"$work/job.json" "$base/v1/jobs")
printf '%s' "$resub" | grep -q '"cache_hit": *true' || fail "post-GC resubmit not a cache hit: $resub"
echo "   job 404s, fdml_gc_* counters moved, resubmit still a cache hit"

echo "== tenant-labeled metrics (tenant from the API key)"
metrics=$(curl -fsS "$base/metrics")
for want in \
	'fdml_serve_submissions_total{tenant="lab-a"}' \
	'fdml_serve_cache_hits_total{tenant="lab-a"}' \
	'fdml_serve_jobs_total{tenant="lab-a",outcome="done"}' \
	'fdml_serve_auth_failures_total{reason="missing"} 1' \
	'fdml_serve_auth_failures_total{reason="unknown_key"} 1'; do
	printf '%s\n' "$metrics" | grep -qF "$want" || fail "metrics missing: $want"
done

echo "== graceful shutdown"
kill -TERM "$daemon_pid"
if ! wait "$daemon_pid"; then
	fail "daemon exited non-zero on SIGTERM"
fi
daemon_pid=

echo "serve-smoke: PASS"
