// Rates: the DNArates pipeline (paper §2) — estimate per-site relative
// rates on an initial tree, feed them back into the likelihood model as
// site categories, and re-infer. Rate heterogeneity is ubiquitous in
// rRNA, and handling it is what the DNArates companion program was for.
//
//	go run ./examples/rates
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dnarates"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func main() {
	// Data simulated with strong gamma rate heterogeneity across sites.
	ds, err := simulate.New(simulate.Options{
		Taxa: 14, Sites: 500, Seed: 2024, GammaAlpha: 0.4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pass 1: infer a tree assuming homogeneous rates.
	fmt.Println("pass 1: inference with homogeneous rates")
	first, err := core.Infer(ds.Alignment, core.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  lnL %.2f\n", first.Best.LnL)

	// Estimate per-site rates on that tree (DNArates).
	pat, err := seq.Compress(ds.Alignment, seq.CompressOptions{})
	if err != nil {
		log.Fatal(err)
	}
	_ = pat
	rates, err := dnarates.Estimate(first.Model, ds.Alignment, first.Best.Tree, dnarates.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndnarates: lnL %.2f (uniform) -> %.2f (fitted per-site rates)\n",
		rates.LnLBefore, rates.LnLAfter)

	// Bucket the rates into fastDNAml-style categories for inspection.
	cats, catRates, err := dnarates.Categorize(rates.PerSite, 6)
	if err != nil {
		log.Fatal(err)
	}
	hist := make([]int, 6)
	for _, c := range cats {
		hist[c-1]++
	}
	fmt.Println("rate categories (slow -> fast):")
	for c := 0; c < 6; c++ {
		fmt.Printf("  cat %d: rate %6.3f  %4d sites\n", c+1, catRates[c], hist[c])
	}

	// Pass 2: re-infer with the fitted rates in the model.
	fmt.Println("\npass 2: inference with the fitted per-site rates")
	second, err := core.Infer(ds.Alignment, core.Options{Seed: 7, SiteRates: rates.PerSite})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  lnL %.2f (not comparable in absolute terms; the model changed)\n", second.Best.LnL)
	fmt.Printf("\ntopology change between passes: same=%v\n",
		first.Best.Tree.Topology() == second.Best.Tree.Topology())
}
