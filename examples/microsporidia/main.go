// Microsporidia-style analysis: the paper's motivating workload (§3) —
// multiple random orderings over an rRNA-like data set, a majority rule
// consensus across the orderings, taxon traces across the resulting
// trees, and the multi-tree SVG of the viewer (§4). The data set is a
// simulated stand-in for the European SSU rRNA alignments (DESIGN.md §2),
// scaled down so the example runs in seconds.
//
//	go run ./examples/microsporidia
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/simulate"
	"repro/internal/tree"
	"repro/internal/viewer"
)

func main() {
	// Simulated rRNA-like data: 20 taxa x 600 sites with gamma rate
	// heterogeneity (the real study used 50-150 taxa x 1269-1858 sites;
	// same pipeline, smaller scale).
	ds, err := simulate.New(simulate.Options{
		Taxa: 20, Sites: 600, Seed: 424, GammaAlpha: 0.6, TaxonPrefix: "micro",
	})
	if err != nil {
		log.Fatal(err)
	}

	// Five random orderings in parallel on the local runtime; a
	// biologist would run tens to thousands (paper §2).
	const jumbles = 5
	fmt.Printf("analyzing %d random orderings of %d taxa...\n", jumbles, ds.Alignment.NumSeqs())
	inf, err := core.Infer(ds.Alignment, core.Options{
		Seed:    99,
		Jumbles: jumbles,
		Workers: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	for i, j := range inf.Jumbles {
		d, _, _ := tree.RobinsonFoulds(j.Tree, ds.TrueTree)
		fmt.Printf("  ordering %d: lnL %.2f  (RF distance to true tree: %d)\n", i+1, j.LnL, d)
	}
	fmt.Printf("best ordering: lnL %.2f\n\n", inf.Best.LnL)

	// Majority rule consensus across the orderings (paper §2, §4).
	fmt.Printf("majority rule consensus retains %d splits:\n%s\n\n",
		len(inf.Consensus.Support), inf.Consensus.Tree.Newick())

	// Trace two taxa across the five result trees (the viewer's tracing
	// facility, §4): where does each ordering place them?
	trees := make([]*tree.Tree, len(inf.Jumbles))
	labels := make([]string, len(inf.Jumbles))
	for i := range inf.Jumbles {
		trees[i] = inf.Jumbles[i].Tree
		labels[i] = fmt.Sprintf("ordering %d", i+1)
	}
	report, err := viewer.TraceReport(trees, []int{0, 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)

	// Figure-5-style planar-3D scene with traces, written as SVG.
	scene, err := viewer.NewScene(trees, labels)
	if err != nil {
		log.Fatal(err)
	}
	svg := scene.SVG(viewer.SVGOptions{Width: 1100, TraceTaxa: []int{0, 7}, LeafLabels: true})
	const outPath = "microsporidia_trees.svg"
	if err := os.WriteFile(outPath, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (5 trees on a comparison axis with taxon traces)\n", outPath)
}
