// Hypotheses: statistical comparison of competing trees — the workflow
// the paper highlights as fastDNAml's value: "it permits biologists to
// compare ML methods with other phylogenetic inference methods on the
// basis of the quality of the biological results obtained" (§3.2).
// A searched tree is tested against two a-priori hypotheses with the
// Kishino-Hasegawa test, and bootstrap proportions quantify how much of
// its structure the data actually supports.
//
//	go run ./examples/hypotheses
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mlsearch"
	"repro/internal/simulate"
	"repro/internal/tree"
)

func main() {
	// Simulated data with a known true tree.
	ds, err := simulate.New(simulate.Options{Taxa: 10, Sites: 800, Seed: 515, GammaAlpha: 0.8})
	if err != nil {
		log.Fatal(err)
	}
	a := ds.Alignment

	// Hypothesis 0: the ML search's answer.
	inf, err := core.Infer(a, core.Options{Seed: 11, RearrangeExtent: 2, Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searched tree: lnL %.2f\n", inf.Best.LnL)

	// Hypothesis 1: the true tree (should be statistically
	// indistinguishable from the searched tree, or better).
	// Hypothesis 2: a deliberately shuffled tree (should lose, usually
	// significantly).
	names := a.Names
	n := len(names)
	inner := "(" + names[n-2] + "," + names[n-1] + ")"
	for i := n - 3; i >= 2; i-- {
		inner = "(" + names[i] + "," + inner + ")"
	}
	caterpillar := "(" + names[0] + "," + names[1] + "," + inner + ");"
	wrong, err := tree.ParseNewick(caterpillar, names)
	if err != nil {
		log.Fatal(err)
	}

	cfg, _, err := core.Prepare(a, core.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	ranked, err := mlsearch.KishinoHasegawa(cfg, []*tree.Tree{inf.Best.Tree, ds.TrueTree, wrong})
	if err != nil {
		log.Fatal(err)
	}
	labels := map[int]string{0: "searched", 1: "true generating tree", 2: "caterpillar"}
	fmt.Println("\nKishino-Hasegawa test, best first:")
	for _, r := range ranked {
		verdict := "indistinguishable from best"
		if r.Diff == 0 {
			verdict = "best"
		} else if r.SignificantlyWorse {
			verdict = "significantly worse (5% level)"
		}
		fmt.Printf("  %-22s lnL %10.2f  diff %9.2f  sd %7.2f  %s\n",
			labels[r.Index], r.LnL, r.Diff, r.SD, verdict)
	}

	// Bootstrap support for the searched tree's groupings.
	fmt.Println("\nbootstrapping (8 replicates)...")
	boot, err := core.Bootstrap(a, core.Options{Seed: 21, RearrangeExtent: 1, Workers: 2}, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrap consensus: %s\n", boot.Consensus.Tree.Newick())
	strong, weak := 0, 0
	for _, f := range boot.Consensus.SplitFreq {
		if f >= 0.95 {
			strong++
		} else if f <= 0.5 {
			weak++
		}
	}
	fmt.Printf("splits with >=95%% support: %d; with <=50%%: %d (of %d observed)\n",
		strong, weak, len(boot.Consensus.SplitFreq))

	// How close did the search get to the truth?
	rf, _, _ := tree.RobinsonFoulds(inf.Best.Tree, ds.TrueTree)
	bs, _ := tree.BranchScore(inf.Best.Tree, ds.TrueTree)
	fmt.Printf("\nsearched vs true: RF distance %d, branch score %.4f\n", rf, bs)
}
