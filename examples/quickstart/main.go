// Quickstart: infer a maximum likelihood tree from a small DNA alignment
// with the library's highest-level API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/seq"
	"repro/internal/viewer"
)

// A toy alignment: three primate-like clades over 40 sites.
const phylip = `7 40
human     ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT
chimp     ACGTACGTACGTACGAACGTACGTACGTACGTACGTACGT
gorilla   ACGTACGTACTTACGAACGTACGTACGTACGGACGTACGT
orang     ACGAACGTACTTACGAACGTACGTACGAACGGACGTACCT
gibbon    ACGAACGTACTTACGAACGTTCGTACGAACGGACGTACCT
macaque   TCGAACGTACTTACGAAGGTTCGTACGAACGGAGGTACCT
baboon    TCGAACGTACTTACGAAGGTTCGTACGAACTGAGGTACCT
`

func main() {
	// 1. Read the alignment (PHYLIP, as fastDNAml does).
	a, err := seq.ReadPhylip(strings.NewReader(phylip))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Infer: F84 model with empirical base frequencies, stepwise
	// addition with local rearrangements — fastDNAml's algorithm.
	inf, err := core.Infer(a, core.Options{
		Seed:            13,
		RearrangeExtent: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Report.
	fmt.Printf("log likelihood: %.4f\n", inf.Best.LnL)
	fmt.Printf("tree: %s\n\n", inf.Best.Newick)
	text, err := viewer.ASCII(inf.Best.Tree, viewer.ASCIIOptions{Width: 70, ShowLengths: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(text)

	// The unrooted tree (paper Fig 1 is exactly such a tree) groups the
	// apes away from the old world monkeys.
	fmt.Println("\nsearch effort:")
	fmt.Printf("  %d candidate trees evaluated over %d rounds\n",
		inf.Best.Search.TotalTasks, len(inf.Best.Search.Rounds))
}
