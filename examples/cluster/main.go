// Cluster: the paper's distributed deployment in one process — an
// elastic TCP master (router + master + foreman + monitor roles) with
// worker processes joining over sockets carrying no pre-assigned
// identity, including an unreliable worker whose dropped replies the
// foreman's fault tolerance recovers (paper §2.2). In real deployments
// the workers are cmd/fdworker processes on other machines; here they
// are goroutines dialing loopback so the example is self-contained.
//
//	go run ./examples/cluster
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/mlsearch"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func main() {
	// Build the data set the master will ship to joining workers.
	ds, err := simulate.New(simulate.Options{Taxa: 12, Sites: 300, Seed: 77})
	if err != nil {
		log.Fatal(err)
	}
	var phy bytes.Buffer
	if err := seq.WritePhylip(&phy, ds.Alignment, 0); err != nil {
		log.Fatal(err)
	}
	bundle := mlsearch.DataBundle{PhylipText: phy.Bytes(), TTRatio: 2.0}

	// The master needs the same dataset the workers will build.
	m, pat, taxa, err := bundle.Build()
	if err != nil {
		log.Fatal(err)
	}
	cfg := mlsearch.Config{Taxa: taxa, Patterns: pat, Model: m, Seed: 5, RearrangeExtent: 1}

	const workers = 3
	opt := mlsearch.RunOptions{
		Transport:   mlsearch.TCP,
		Addr:        "127.0.0.1:0",
		Workers:     workers, // wait for all three before the first round
		WithMonitor: true,
		MonitorOut:  os.Stdout,
		Bundle:      bundle,
		Foreman: mlsearch.ForemanOptions{
			TaskTimeout: 300 * time.Millisecond, // the paper's user-specified timeout
			Tick:        20 * time.Millisecond,
		},
	}

	addrCh := make(chan net.Addr, 1)
	opt.OnListen = func(a net.Addr) { addrCh <- a }

	var wg sync.WaitGroup
	var outcome *mlsearch.RunOutcome
	var masterErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		outcome, masterErr = mlsearch.Run(cfg, opt)
	}()

	addr := (<-addrCh).String()
	fmt.Printf("master listening on %s; %d anonymous workers joining\n", addr, workers)

	// Worker "processes": they dial with no rank; the join handshake
	// assigns one and ships the dataset. The last worker is unreliable
	// and silently drops a fifth of its replies. The foreman times those
	// tasks out, re-dispatches them, and reinstates the worker when it
	// answers again — watch the monitor lines.
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hooks := mlsearch.WorkerHooks{}
			if i == workers-1 {
				rng := rand.New(rand.NewSource(1))
				hooks.BeforeReply = func(task mlsearch.Task, res mlsearch.Result) bool {
					return rng.Float64() >= 0.2
				}
			}
			if err := mlsearch.ServeElastic(addr, hooks, mlsearch.ReconnectPolicy{Disabled: true}); err != nil {
				log.Printf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if masterErr != nil {
		log.Fatal(masterErr)
	}

	res := outcome.Results[0]
	fmt.Printf("\ninferred tree (lnL %.4f) after %d tasks\n", res.LnL, res.TotalTasks)
	mon := outcome.Monitor
	fmt.Printf("monitor: %d workers joined, %d dispatches for %d results (re-dispatches due to faults: %d)\n",
		mon.Joins, mon.Dispatches, mon.Results, mon.Dispatches-mon.Results)
	for w, n := range mon.TasksPerWorker {
		fmt.Printf("  worker rank %d completed %d tasks (removed %dx, reinstated %dx)\n",
			w, n, mon.Deaths[w], mon.Revivals[w])
	}

	// The fault-tolerant run must agree exactly with a serial run.
	serial, err := mlsearch.Run(cfg, mlsearch.RunOptions{Transport: mlsearch.Serial})
	if err != nil {
		log.Fatal(err)
	}
	if serial.Results[0].BestNewick == res.BestNewick && serial.Results[0].LnL == res.LnL {
		fmt.Println("verified: distributed result identical to the serial program")
	} else {
		fmt.Println("WARNING: distributed result diverged from serial!")
	}
}
