package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/mlsearch"
	"repro/internal/obs"
)

// newTestServer starts a Server over a temp dir and an httptest front
// end for its API.
func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	if opt.DataDir == "" {
		opt.DataDir = t.TempDir()
	}
	if opt.Registry == nil {
		opt.Registry = obs.NewRegistry()
	}
	if opt.Fleet.Workers == 0 {
		opt.Fleet.Workers = 1
	}
	opt.Logf = t.Logf
	s, err := NewServer(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = s.Close()
	})
	return s, ts
}

// postJob submits a spec over HTTP, returning the status code and
// decoded record.
func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) (int, JobRecord) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rec JobRecord
	_ = json.NewDecoder(resp.Body).Decode(&rec)
	return resp.StatusCode, rec
}

// waitJob polls until the job reaches want (or any terminal state,
// which fails the test if it is the wrong one).
func waitJob(t *testing.T, s *Server, id string, want JobState) JobRecord {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		rec, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State == want {
			return rec
		}
		if rec.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, rec.State, rec.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobRecord{}
}

// serialReference runs the same spec through the serial transport — the
// ground truth the service must match bit for bit.
func serialReference(t *testing.T, spec JobSpec) []*mlsearch.SearchResult {
	t.Helper()
	prep, err := prepareSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	out, err := mlsearch.Run(prep.Cfg, mlsearch.RunOptions{
		Transport: mlsearch.Serial,
		Jumbles:   prep.Spec.Options.Jumbles,
	})
	if err != nil {
		t.Fatal(err)
	}
	return out.Results
}

func TestServerEndToEndWithCache(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Options{Registry: reg, Fleet: FleetOptions{Workers: 2}})
	spec := JobSpec{
		Tenant:    "lab-a",
		Alignment: testPhylipText(t, 8, 200, 3),
		Options:   JobOptions{Seed: 5, Jumbles: 2},
	}

	code, rec := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	if rec.CacheHit || rec.State.Terminal() {
		t.Fatalf("fresh submit: %+v", rec)
	}
	done := waitJob(t, s, rec.ID, StateDone)
	if done.CacheHit {
		t.Error("computed job marked cache hit")
	}

	// The stored result is bit-identical to a serial run.
	want := serialReference(t, spec)
	res, _, err := s.Result(rec.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jumbles) != len(want) {
		t.Fatalf("%d jumble results, want %d", len(res.Jumbles), len(want))
	}
	for j, w := range want {
		got := res.Jumbles[j]
		if got.Newick != w.BestNewick || got.LnL != w.LnL || got.Seed != w.Seed {
			t.Errorf("jumble %d diverged from serial run:\n got %q lnL %v seed %d\nwant %q lnL %v seed %d",
				j, got.Newick, got.LnL, got.Seed, w.BestNewick, w.LnL, w.Seed)
		}
	}
	if res.Consensus == "" {
		t.Error("2-jumble result has no consensus")
	}

	// Duplicate submission: served from the result store with zero
	// fleet dispatches.
	before := reg.Counter("fdml_dispatch_total", "Tasks handed to workers.").Value()
	code, dup := postJob(t, ts, spec)
	if code != http.StatusOK {
		t.Fatalf("duplicate status %d, want 200", code)
	}
	if !dup.CacheHit || dup.State != StateDone || dup.ID == rec.ID {
		t.Fatalf("duplicate record: %+v", dup)
	}
	after := reg.Counter("fdml_dispatch_total", "Tasks handed to workers.").Value()
	if after != before {
		t.Errorf("duplicate dispatched %v tasks", after-before)
	}

	// The duplicate's result endpoint serves the same tree.
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/result?format=newick", ts.URL, dup.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tree bytes.Buffer
	_, _ = tree.ReadFrom(resp.Body)
	if strings.TrimSpace(tree.String()) != res.BestNewick {
		t.Errorf("newick result = %q, want %q", tree.String(), res.BestNewick)
	}

	// Tenant-labeled service metrics are exposed.
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`fdml_serve_submissions_total{tenant="lab-a"} 2`,
		`fdml_serve_cache_hits_total{tenant="lab-a"} 1`,
		`fdml_serve_jobs_total{tenant="lab-a",outcome="done"} 2`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestServerEventStream(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	spec := JobSpec{Alignment: testPhylipText(t, 7, 150, 9), Options: JobOptions{Seed: 3}}
	_, rec := postJob(t, ts, spec)
	waitJob(t, s, rec.ID, StateDone)

	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events", ts.URL, rec.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if len(events) < 3 {
		t.Fatalf("only %d events", len(events))
	}
	if events[0].Type != "state" || events[0].State != StateQueued {
		t.Errorf("first event %+v, want queued state", events[0])
	}
	last := events[len(events)-1]
	if last.Type != "state" || last.State != StateDone {
		t.Errorf("last event %+v, want done state", last)
	}
	progress := 0
	for _, e := range events {
		if e.Type == "progress" || e.Type == "checkpoint" {
			progress++
		}
	}
	if progress == 0 {
		t.Error("no progress/checkpoint events in the stream")
	}
}

func TestServerAdmissionAndCancel(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxActive: 1, MaxQueued: 1, MaxQueuedPerTenant: 1})
	aln := testPhylipText(t, 7, 150, 21)
	long := JobSpec{Tenant: "a", Alignment: aln, Options: JobOptions{Seed: 3, Jumbles: 300}}

	_, j1 := postJob(t, ts, long)
	waitJob(t, s, j1.ID, StateRunning)

	// One queue slot: the second job of tenant b fills it...
	spec2 := JobSpec{Tenant: "b", Alignment: aln, Options: JobOptions{Seed: 5, Jumbles: 300}}
	code, j2 := postJob(t, ts, spec2)
	if code != http.StatusAccepted {
		t.Fatalf("second submit status %d", code)
	}
	// ...so a third is rejected with 429 + Retry-After.
	body, _ := json.Marshal(JobSpec{Tenant: "c", Alignment: aln, Options: JobOptions{Seed: 7}})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Cancel the queued job: immediate transition.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%s", ts.URL, j2.ID), nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	if rec := waitJob(t, s, j2.ID, StateCanceled); rec.Error == "" {
		t.Log("queued cancel recorded without reason (fine)")
	}

	// Cancel the running job: it stops at the next round boundary.
	if _, err := s.Cancel(j1.ID); err != nil {
		t.Fatal(err)
	}
	waitJob(t, s, j1.ID, StateCanceled)

	// Rejection metrics carry the tenant and reason.
	var prom bytes.Buffer
	_ = s.reg.WritePrometheus(&prom)
	if !strings.Contains(prom.String(), `fdml_serve_rejections_total{tenant="c",reason="queue_full"} 1`) {
		t.Error("metrics missing the labeled rejection")
	}
}
