package serve

import (
	"sort"
	"time"
)

// Retention garbage collection. Without it the daemon grows without
// bound on three axes: the in-memory job map, the on-disk job
// directories, and the content-addressed result store. The GC runs on
// the same periodic tick as the pod reaper and enforces three knobs:
//
//   - JobTTL: a terminal job (done, failed, canceled, quarantined) is
//     evicted from the in-memory map and its job directory deleted once
//     it has been terminal for the TTL. The job id stops resolving
//     (404), but a done job's *result* stays fetchable by resubmitting
//     the spec — that is a CAS cache hit, governed separately below.
//   - ResultTTL: a stored result older than the TTL is deleted from the
//     CAS. Age is the file mtime, which Get refreshes on every cache
//     hit, so "old" means "unused", not "computed long ago".
//   - MaxResultsBytes: when the CAS exceeds the byte budget, the
//     least-recently-used results are deleted until it fits.
//
// Eviction is restart-safe by construction: deleting the job directory
// is the same ground truth the janitor reads at boot, so a GC'd job
// simply is not there to resurrect, and a crash mid-delete leaves a
// renamed-aside directory the janitor ignores.

// runGC enforces the retention knobs once; the reap loop calls it every
// tick, and tests call it directly with a synthetic clock.
func (s *Server) runGC(now time.Time) {
	s.met.gcRuns.Inc()
	s.gcJobs(now)
	s.gcResults(now)
}

// gcJobs evicts jobs that have been terminal for longer than JobTTL.
func (s *Server) gcJobs(now time.Time) {
	if s.opt.JobTTL <= 0 {
		return
	}
	s.mu.Lock()
	var victims []*job
	for id, j := range s.jobs {
		rec := j.snapshot()
		if !rec.State.Terminal() {
			continue
		}
		ref := rec.Finished
		if ref.IsZero() {
			ref = rec.Submitted
		}
		if now.Sub(ref) >= s.opt.JobTTL {
			victims = append(victims, j)
			delete(s.jobs, id)
		}
	}
	s.mu.Unlock()
	for _, j := range victims {
		rec := j.snapshot()
		// Terminal jobs closed their hub at finalize; this is a no-op
		// safety net for quarantined records adopted closed.
		j.hub.close()
		if err := s.store.Delete(rec.ID); err != nil {
			s.opt.Logf("gc: job %s: %v", rec.ID, err)
			continue
		}
		s.met.gcJobs.Inc()
		s.opt.Logf("gc: evicted job %s (%s %s ago)", rec.ID, rec.State, now.Sub(rec.Finished).Round(time.Second))
	}
}

// gcResults enforces ResultTTL and the MaxResultsBytes LRU budget over
// the content-addressed store, and refreshes the size gauge.
func (s *Server) gcResults(now time.Time) {
	ttl, budget := s.opt.ResultTTL, s.opt.MaxResultsBytes
	ents, err := s.results.Entries()
	if err != nil {
		s.opt.Logf("gc: result store: %v", err)
		return
	}
	var total int64
	live := ents[:0]
	for _, e := range ents {
		if ttl > 0 && now.Sub(e.ModTime) >= ttl {
			if err := s.results.Delete(e.Key); err != nil {
				s.opt.Logf("gc: result %s: %v", e.Key, err)
				continue
			}
			s.met.gcResults.With("ttl").Inc()
			s.opt.Logf("gc: expired result %.12s (unused %s)", e.Key, now.Sub(e.ModTime).Round(time.Second))
			continue
		}
		live = append(live, e)
		total += e.Size
	}
	if budget > 0 && total > budget {
		// Trim least-recently-used first; mtime is the use clock.
		sort.Slice(live, func(i, k int) bool { return live[i].ModTime.Before(live[k].ModTime) })
		for _, e := range live {
			if total <= budget {
				break
			}
			if err := s.results.Delete(e.Key); err != nil {
				s.opt.Logf("gc: result %s: %v", e.Key, err)
				continue
			}
			total -= e.Size
			s.met.gcResults.With("bytes").Inc()
			s.opt.Logf("gc: trimmed result %.12s (store over %d-byte budget)", e.Key, budget)
		}
	}
	s.met.gcResultBytes.Set(float64(total))
}
