package serve

import (
	"errors"
	"fmt"
	"testing"
)

func queuedJob(tenant string, priority int, n int) *job {
	return &job{rec: JobRecord{
		ID:       fmt.Sprintf("j-%012x", n),
		Tenant:   tenant,
		Priority: priority,
		State:    StateQueued,
	}}
}

func TestSchedulerWeightedFairShare(t *testing.T) {
	s := newScheduler(100, 100, map[string]float64{"heavy": 3, "light": 1})
	n := 0
	for i := 0; i < 12; i++ {
		n++
		if err := s.push(queuedJob("heavy", 0, n), false); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		n++
		if err := s.push(queuedJob("light", 0, n), false); err != nil {
			t.Fatal(err)
		}
	}
	// Drain the first 8 grants: stride scheduling should give heavy ~3x
	// light's share.
	counts := map[string]int{}
	for i := 0; i < 8; i++ {
		j := s.next()
		if j == nil {
			t.Fatal("queue drained early")
		}
		counts[j.rec.Tenant]++
	}
	if counts["heavy"] != 6 || counts["light"] != 2 {
		t.Errorf("first 8 grants: heavy=%d light=%d, want 6/2", counts["heavy"], counts["light"])
	}
	// The rest still drains completely.
	for i := 0; i < 16; i++ {
		if s.next() == nil {
			t.Fatalf("queue drained after %d more", i)
		}
	}
	if s.next() != nil {
		t.Error("empty queue returned a job")
	}
}

func TestSchedulerPriorityWithinTenant(t *testing.T) {
	s := newScheduler(100, 100, nil)
	_ = s.push(queuedJob("t", 0, 1), false)
	_ = s.push(queuedJob("t", 5, 2), false)
	_ = s.push(queuedJob("t", 5, 3), false)
	_ = s.push(queuedJob("t", -1, 4), false)
	var order []string
	for j := s.next(); j != nil; j = s.next() {
		order = append(order, j.rec.ID)
	}
	want := []string{
		fmt.Sprintf("j-%012x", 2), // priority 5, first in
		fmt.Sprintf("j-%012x", 3), // priority 5, FIFO after 2
		fmt.Sprintf("j-%012x", 1), // priority 0
		fmt.Sprintf("j-%012x", 4), // priority -1
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("drain order %v, want %v", order, want)
		}
	}
}

func TestSchedulerAdmissionCaps(t *testing.T) {
	s := newScheduler(3, 2, nil)
	if err := s.push(queuedJob("a", 0, 1), false); err != nil {
		t.Fatal(err)
	}
	if err := s.push(queuedJob("a", 0, 2), false); err != nil {
		t.Fatal(err)
	}
	// Tenant a is at its quota.
	err := s.push(queuedJob("a", 0, 3), false)
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.Reason != "tenant_quota" {
		t.Fatalf("tenant cap: err=%v", err)
	}
	if err := s.push(queuedJob("b", 0, 4), false); err != nil {
		t.Fatal(err)
	}
	// Global queue is full for everyone now.
	err = s.push(queuedJob("c", 0, 5), false)
	if !errors.As(err, &adm) || adm.Reason != "queue_full" {
		t.Fatalf("global cap: err=%v", err)
	}
	if adm.RetryAfter <= 0 {
		t.Error("no Retry-After hint")
	}
	// force bypasses both caps (recovery path).
	if err := s.push(queuedJob("a", 0, 6), true); err != nil {
		t.Fatalf("force push: %v", err)
	}
	if s.depth != 4 {
		t.Errorf("depth = %d, want 4", s.depth)
	}
}

func TestSchedulerRemove(t *testing.T) {
	s := newScheduler(10, 10, nil)
	_ = s.push(queuedJob("t", 0, 1), false)
	_ = s.push(queuedJob("t", 0, 2), false)
	if !s.remove(fmt.Sprintf("j-%012x", 1)) {
		t.Fatal("remove missed a queued job")
	}
	if s.remove("j-nope") {
		t.Fatal("remove found a ghost")
	}
	j := s.next()
	if j == nil || j.rec.ID != fmt.Sprintf("j-%012x", 2) {
		t.Fatalf("next after remove = %+v", j)
	}
}
