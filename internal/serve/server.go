package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/mlsearch"
	"repro/internal/obs"
	"repro/internal/tree"
)

// ErrNotFound reports an unknown job id.
var ErrNotFound = errors.New("serve: no such job")

// errClosing reports a submission racing the daemon's shutdown; the
// HTTP layer maps it to 503.
var errClosing = errors.New("serve: server closing")

// internalError wraps a failure of the service itself (job store I/O,
// result store corruption) as distinct from a bad request: the HTTP
// layer maps it to 500 where validation failures stay 400.
type internalError struct{ err error }

func (e *internalError) Error() string { return e.err.Error() }
func (e *internalError) Unwrap() error { return e.err }

// Options configure a Server.
type Options struct {
	// DataDir roots the durable state: jobs/ and results/ live under
	// it. A daemon restarted over the same DataDir resumes every
	// incomplete job.
	DataDir string
	// Fleet sizes the worker pods.
	Fleet FleetOptions
	// MaxActive bounds concurrently running jobs (default 2).
	MaxActive int
	// MaxQueued bounds the global queue; submissions past it get 429
	// (default 64).
	MaxQueued int
	// MaxQueuedPerTenant bounds one tenant's backlog (default 16).
	MaxQueuedPerTenant int
	// TenantWeights sets stride-scheduling weights (unlisted tenants
	// weigh 1).
	TenantWeights map[string]float64
	// Auth enables API-key authentication: every /v1 request must carry
	// a Bearer key from the key file, and the key's tenant — not the
	// request body — is the job's identity. Nil runs open (dev mode):
	// tenants are self-declared as before.
	Auth *KeyAuth
	// Rate bounds each tenant's request rate in submissions/second; 0
	// disables rate limiting. Rejections are 429 with reason
	// "rate_limited" and a computed Retry-After.
	Rate float64
	// Burst is the token-bucket depth for Rate (default 1).
	Burst int
	// JobTTL evicts terminal jobs (memory + job directory) once they
	// have been terminal this long; 0 keeps them forever.
	JobTTL time.Duration
	// ResultTTL deletes stored results unused (no cache hit) for this
	// long; 0 keeps them forever.
	ResultTTL time.Duration
	// MaxResultsBytes LRU-trims the result store past this byte budget;
	// 0 is unbounded.
	MaxResultsBytes int64
	// GCInterval is the reaper/GC tick (default 30s).
	GCInterval time.Duration
	// Registry receives the service and fleet metric families (nil
	// creates a private one). Share it with an obs.StatusServer to
	// serve /metrics.
	Registry *obs.Registry
	// Bus receives typed run events (nil is fine).
	Bus *obs.Bus
	// Logf logs operational lines (nil discards).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.MaxActive < 1 {
		o.MaxActive = 2
	}
	if o.MaxQueued < 1 {
		o.MaxQueued = 64
	}
	if o.MaxQueuedPerTenant < 1 {
		o.MaxQueuedPerTenant = 16
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.GCInterval <= 0 {
		o.GCInterval = 30 * time.Second
	}
	return o
}

// job is a Server's in-memory view of one job: the durable record plus
// the prepared spec, resume state, stop channel, and event hub.
type job struct {
	mu       sync.Mutex
	rec      JobRecord
	prep     *preparedSpec
	resume   *mlsearch.Manifest
	stop     chan struct{}
	stopOnce sync.Once
	canceled bool
	hub      *eventHub
	queuedAt time.Time
}

// snapshot returns a copy of the record for handlers.
func (j *job) snapshot() JobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := j.rec
	if j.rec.Progress != nil {
		p := *j.rec.Progress
		rec.Progress = &p
	}
	return rec
}

// halt closes the stop channel once; canceled distinguishes a client
// cancel from a daemon shutdown.
func (j *job) halt(canceled bool) {
	j.mu.Lock()
	if canceled {
		j.canceled = true
	}
	j.mu.Unlock()
	j.stopOnce.Do(func() { close(j.stop) })
}

// Server is the inference service: admission, scheduling, execution,
// durability, and the HTTP API over them.
type Server struct {
	opt     Options
	reg     *obs.Registry
	met     *serveMetrics
	fleet   *Fleet
	store   *JobStore
	results *ResultStore
	limiter *rateLimiter
	mux     *http.ServeMux

	mu      sync.Mutex
	sched   *scheduler
	jobs    map[string]*job
	active  map[string]*job
	closing bool

	kick    chan struct{}
	stopAll chan struct{}
	wg      sync.WaitGroup
}

// NewServer opens the durable stores under opt.DataDir, recovers every
// job found there (resuming incomplete ones, quarantining corrupt
// ones), and starts the dispatch loop. Close shuts it down gracefully.
func NewServer(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	store, err := NewJobStore(opt.DataDir)
	if err != nil {
		return nil, err
	}
	results, err := NewResultStore(filepath.Join(opt.DataDir, "results"))
	if err != nil {
		return nil, err
	}
	s := &Server{
		opt:     opt,
		reg:     opt.Registry,
		met:     newServeMetrics(opt.Registry),
		fleet:   newServerFleet(opt),
		store:   store,
		results: results,
		sched:   newScheduler(opt.MaxQueued, opt.MaxQueuedPerTenant, opt.TenantWeights),
		jobs:    map[string]*job{},
		active:  map[string]*job{},
		kick:    make(chan struct{}, 1),
		stopAll: make(chan struct{}),
	}
	if opt.Rate > 0 {
		s.limiter = newRateLimiter(opt.Rate, opt.Burst)
	}
	s.initMux()
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.wg.Add(2)
	go s.dispatchLoop()
	go s.reapLoop()
	s.wake()
	return s, nil
}

// newServerFleet builds the server's fleet with its logger attached.
func newServerFleet(opt Options) *Fleet {
	f := NewFleet(opt.Fleet, opt.Registry, opt.Bus)
	f.logf = opt.Logf
	return f
}

// wake nudges the dispatch loop.
func (s *Server) wake() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// updateQueueGauges refreshes the tenant-labeled depth gauges; callers
// hold s.mu.
func (s *Server) updateQueueGauges() {
	_, by := s.sched.depths()
	seen := map[string]bool{}
	for tenant, n := range by {
		s.met.queueDepth.With(tenant).Set(float64(n))
		seen[tenant] = true
	}
	// Zero out tenants that drained, so the gauge does not freeze at
	// its last nonzero value.
	for _, j := range s.jobs {
		if !seen[j.rec.Tenant] {
			s.met.queueDepth.With(j.rec.Tenant).Set(0)
		}
	}
}

// Submit admits a job. Validation failures return plain errors (HTTP
// 400); admission failures return *AdmissionError (HTTP 429). A
// submission whose result is already in the content-addressed store
// completes instantly as a cache hit without touching the fleet.
func (s *Server) Submit(spec JobSpec) (JobRecord, error) {
	prep, err := prepareSpec(spec)
	if err != nil {
		return JobRecord{}, err
	}
	tenant := prep.Spec.Tenant
	s.met.submissions.With(tenant).Inc()

	j := &job{
		rec: JobRecord{
			ID:        newJobID(),
			Tenant:    tenant,
			Priority:  prep.Spec.Priority,
			State:     StateQueued,
			Jumbles:   prep.Spec.Options.Jumbles,
			ResultKey: prep.ResultKey,
			PodKey:    prep.PodKey,
			Submitted: time.Now(),
		},
		prep:     prep,
		stop:     make(chan struct{}),
		hub:      newEventHub(),
		queuedAt: time.Now(),
	}

	if res, ok, err := s.results.Get(prep.ResultKey); err != nil {
		return JobRecord{}, &internalError{err}
	} else if ok {
		// Deduplicated: the fleet never sees this job.
		j.rec.State = StateDone
		j.rec.CacheHit = true
		j.rec.Started = j.rec.Submitted
		j.rec.Finished = time.Now()
		_ = res
		if err := s.store.Create(&j.rec, &prep.Spec); err != nil {
			return JobRecord{}, &internalError{err}
		}
		s.mu.Lock()
		if s.closing {
			s.mu.Unlock()
			return JobRecord{}, errClosing
		}
		s.jobs[j.rec.ID] = j
		s.mu.Unlock()
		j.hub.publish(Event{Type: "state", Time: time.Now(), State: StateDone})
		j.hub.close()
		s.met.cacheHits.With(tenant).Inc()
		s.met.outcomes.With(tenant, string(StateDone)).Inc()
		s.opt.Logf("job %s: cache hit (%s)", j.rec.ID, prep.ResultKey[:12])
		return j.snapshot(), nil
	}

	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return JobRecord{}, errClosing
	}
	if err := s.sched.push(j, false); err != nil {
		s.mu.Unlock()
		var adm *AdmissionError
		if errors.As(err, &adm) {
			s.met.rejections.With(tenant, adm.Reason).Inc()
		}
		return JobRecord{}, err
	}
	if err := s.store.Create(&j.rec, &prep.Spec); err != nil {
		s.sched.remove(j.rec.ID)
		s.mu.Unlock()
		return JobRecord{}, &internalError{err}
	}
	s.jobs[j.rec.ID] = j
	s.updateQueueGauges()
	s.mu.Unlock()
	j.hub.publish(Event{Type: "state", Time: time.Now(), State: StateQueued})
	s.opt.Logf("job %s: queued (tenant %s, %d jumbles)", j.rec.ID, tenant, j.rec.Jumbles)
	s.wake()
	return j.snapshot(), nil
}

// Get returns a job's current record.
func (s *Server) Get(id string) (JobRecord, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return JobRecord{}, ErrNotFound
	}
	return j.snapshot(), nil
}

// Cancel cancels a job: a queued job transitions immediately, a running
// job stops at its next round boundary. Terminal jobs are unchanged.
func (s *Server) Cancel(id string) (JobRecord, error) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return JobRecord{}, ErrNotFound
	}
	j.mu.Lock()
	state := j.rec.State
	j.mu.Unlock()
	switch state {
	case StateQueued:
		s.sched.remove(id)
		s.updateQueueGauges()
		s.mu.Unlock()
		s.finalize(j, StateCanceled, "canceled while queued")
		return j.snapshot(), nil
	case StateRunning:
		s.mu.Unlock()
		j.halt(true)
		return j.snapshot(), nil
	default:
		s.mu.Unlock()
		return j.snapshot(), nil
	}
}

// Result returns a completed job's stored result.
func (s *Server) Result(id string) (*JobResult, JobRecord, error) {
	rec, err := s.Get(id)
	if err != nil {
		return nil, JobRecord{}, err
	}
	if rec.State != StateDone {
		return nil, rec, fmt.Errorf("serve: job %s is %s, not done", id, rec.State)
	}
	res, ok, err := s.results.Get(rec.ResultKey)
	if err != nil {
		return nil, rec, err
	}
	if !ok {
		return nil, rec, fmt.Errorf("serve: job %s done but result %s missing", id, rec.ResultKey)
	}
	return res, rec, nil
}

// dispatchLoop starts queued jobs whenever slots free up.
func (s *Server) dispatchLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stopAll:
			return
		case <-s.kick:
		}
		for {
			s.mu.Lock()
			if s.closing || len(s.active) >= s.opt.MaxActive {
				s.mu.Unlock()
				break
			}
			j := s.sched.next()
			if j == nil {
				s.mu.Unlock()
				break
			}
			s.active[j.rec.ID] = j
			s.updateQueueGauges()
			s.wg.Add(1)
			s.mu.Unlock()
			go s.runJob(j)
		}
	}
}

// reapLoop is the periodic maintenance tick: retire idle pods and run
// the retention GC (job TTL, result TTL, result byte budget).
func (s *Server) reapLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opt.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stopAll:
			return
		case now := <-t.C:
			if n := s.fleet.Reap(now); n > 0 {
				s.opt.Logf("fleet: reaped %d idle pod(s)", n)
			}
			s.runGC(now)
		}
	}
}

// requeue puts a popped job back (fleet saturated) and retries shortly.
func (s *Server) requeue(j *job) {
	s.mu.Lock()
	delete(s.active, j.rec.ID)
	if !s.closing {
		_ = s.sched.push(j, true)
	}
	s.updateQueueGauges()
	s.mu.Unlock()
	time.AfterFunc(200*time.Millisecond, s.wake)
}

// runJob executes one job on the fleet: acquire the dataset's pod, run
// each jumble in its own dispatcher lane with checkpointing, then
// memoize the result. Held by s.wg for graceful shutdown.
func (s *Server) runJob(j *job) {
	defer s.wg.Done()
	pod, err := s.fleet.Acquire(j.rec.PodKey, j.prep.Cfg)
	if errors.Is(err, ErrFleetSaturated) {
		s.requeue(j)
		return
	}
	if err != nil {
		s.detachActive(j)
		s.finalize(j, StateFailed, err.Error())
		return
	}
	defer s.fleet.Release(pod)

	tenant := j.rec.Tenant
	s.met.queueWait.With(tenant).Observe(time.Since(j.queuedAt).Seconds())
	s.met.activeJobs.With(tenant).Add(1)
	defer s.met.activeJobs.With(tenant).Add(-1)

	started := time.Now()
	j.mu.Lock()
	j.rec.State = StateRunning
	j.rec.Started = started
	rec := j.rec
	j.mu.Unlock()
	_ = s.store.SaveRecord(&rec)
	j.hub.publish(Event{Type: "state", Time: started, State: StateRunning})
	s.opt.Logf("job %s: running on pod %.8s", j.rec.ID, j.rec.PodKey)

	results, runErr := s.runJumbles(j, pod)
	s.detachActive(j)

	switch {
	case runErr == nil:
		res, err := buildResult(j, results)
		if err == nil {
			err = s.results.Put(res)
		}
		if err != nil {
			s.finalize(j, StateFailed, err.Error())
			return
		}
		s.met.jobSeconds.With(tenant).Observe(time.Since(started).Seconds())
		s.finalize(j, StateDone, "")
	case errors.Is(runErr, mlsearch.ErrStopped):
		j.mu.Lock()
		canceled := j.canceled
		j.mu.Unlock()
		if canceled {
			s.finalize(j, StateCanceled, "canceled")
			return
		}
		// Daemon shutdown: back to queued with the manifest flushed;
		// the next boot's janitor resumes from it.
		j.mu.Lock()
		j.rec.State = StateQueued
		j.rec.Started = time.Time{}
		rec := j.rec
		j.mu.Unlock()
		_ = s.store.SaveRecord(&rec)
		j.hub.publish(Event{Type: "state", Time: time.Now(), State: StateQueued})
		s.opt.Logf("job %s: interrupted, re-queued for resume", j.rec.ID)
	default:
		s.finalize(j, StateFailed, runErr.Error())
	}
}

// runJumbles runs (or resumes) every jumble of j on pod, recording each
// checkpoint into the job's manifest. Jumbles run sequentially within a
// job — concurrency comes from MaxActive jobs sharing pods — and every
// search is bit-identical to a serial run of the same seed.
func (s *Server) runJumbles(j *job, pod *pod) ([]*mlsearch.SearchResult, error) {
	n := j.rec.Jumbles
	recorder := mlsearch.NewManifestRecorder(s.store.ManifestPath(j.rec.ID), n, j.resume)
	baseSeed := j.prep.Spec.Options.Seed
	numTaxa := len(j.prep.Cfg.Taxa)
	out := make([]*mlsearch.SearchResult, n)
	for jj := 0; jj < n; jj++ {
		select {
		case <-j.stop:
			_ = recorder.Flush()
			return nil, fmt.Errorf("serve: job %s: %w", j.rec.ID, mlsearch.ErrStopped)
		default:
		}
		cfg := j.prep.Cfg
		cfg.Seed = baseSeed + int64(2*jj)
		cfg.Jumble = jj
		var cp *mlsearch.Checkpoint
		if j.resume != nil {
			if c, ok := j.resume.Checkpoint(jj); ok {
				cfg.Seed = c.Seed
				cfg.Jumble = c.Jumble
				cp = &c
			}
		}
		disp, err := pod.mux.NewDispatcher()
		if err != nil {
			return nil, err
		}
		srch, err := mlsearch.NewSearch(cfg, disp)
		if err != nil {
			return nil, err
		}
		srch.Stop = j.stop
		idx := jj
		srch.Progress = func(e mlsearch.ProgressEvent) {
			now := time.Now()
			j.mu.Lock()
			j.rec.Progress = &Progress{
				Jumble:     idx,
				Kind:       e.Kind.String(),
				TaxaInTree: e.TaxaInTree,
				NumTaxa:    numTaxa,
				BestLnL:    e.BestLnL,
			}
			j.mu.Unlock()
			j.hub.publish(Event{
				Type: "progress", Time: now, Jumble: idx,
				Kind: e.Kind.String(), TaxaInTree: e.TaxaInTree, BestLnL: e.BestLnL,
			})
		}
		srch.OnCheckpoint = func(c mlsearch.Checkpoint) {
			if err := recorder.Record(c); err != nil {
				s.opt.Logf("job %s: checkpoint: %v", j.rec.ID, err)
			}
			j.hub.publish(Event{
				Type: "checkpoint", Time: time.Now(), Jumble: idx,
				Kind: string(c.Phase), TaxaInTree: c.NextIndex, BestLnL: c.LnL,
			})
		}
		var res *mlsearch.SearchResult
		if cp != nil {
			res, err = srch.Resume(*cp)
		} else {
			res, err = srch.Run()
		}
		if err != nil {
			_ = recorder.Flush()
			return nil, fmt.Errorf("serve: job %s jumble %d: %w", j.rec.ID, jj, err)
		}
		out[jj] = res
	}
	return out, nil
}

// buildResult folds per-jumble search results into the stored document,
// including the majority rule consensus over multi-jumble runs.
func buildResult(j *job, results []*mlsearch.SearchResult) (*JobResult, error) {
	res := &JobResult{Key: j.rec.ResultKey}
	var trees []*tree.Tree
	for jj, r := range results {
		res.Jumbles = append(res.Jumbles, JumbleOutcome{
			Jumble: jj, Seed: r.Seed, LnL: r.LnL, Newick: r.BestNewick,
		})
		res.TotalTasks += r.TotalTasks
		res.TotalOps += r.TotalOps
		if r.LnL > res.BestLnL || jj == 0 {
			res.BestJumble, res.BestLnL, res.BestNewick = jj, r.LnL, r.BestNewick
		}
		tr, err := tree.ParseNewick(r.BestNewick, j.prep.Cfg.Taxa)
		if err != nil {
			return nil, fmt.Errorf("serve: jumble %d result: %w", jj, err)
		}
		trees = append(trees, tr)
	}
	if len(trees) > 1 {
		cons, err := tree.MajorityRule(trees, 0.5)
		if err != nil {
			return nil, err
		}
		res.Consensus = cons.Tree.Newick()
	}
	return res, nil
}

// detachActive removes j from the active set and wakes the dispatcher.
func (s *Server) detachActive(j *job) {
	s.mu.Lock()
	delete(s.active, j.rec.ID)
	s.mu.Unlock()
	s.wake()
}

// finalize moves j to a terminal state, persists it, closes its event
// stream, and counts the outcome.
func (s *Server) finalize(j *job, state JobState, errMsg string) {
	j.mu.Lock()
	j.rec.State = state
	j.rec.Error = errMsg
	j.rec.Finished = time.Now()
	if state == StateDone {
		j.rec.Error = ""
	}
	rec := j.rec
	j.mu.Unlock()
	_ = s.store.SaveRecord(&rec)
	j.hub.publish(Event{Type: "state", Time: rec.Finished, State: state, Error: rec.Error})
	j.hub.close()
	s.met.outcomes.With(rec.Tenant, string(state)).Inc()
	s.opt.Logf("job %s: %s%s", rec.ID, state, errSuffix(errMsg))
	s.wake()
}

func errSuffix(msg string) string {
	if msg == "" {
		return ""
	}
	return ": " + msg
}

// Snapshot is the /status document: queue and fleet shape plus every
// job's current state.
func (s *Server) Snapshot() any {
	s.mu.Lock()
	defer s.mu.Unlock()
	depth, byTenant := s.sched.depths()
	states := map[string]int{}
	ids := make([]string, 0, len(s.jobs))
	for id, j := range s.jobs {
		states[string(j.snapshot().State)]++
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return map[string]any{
		"queued":           depth,
		"queued_by_tenant": byTenant,
		"active":           len(s.active),
		"pods":             s.fleet.Pods(),
		"jobs_by_state":    states,
		"jobs":             ids,
	}
}

// Close shuts the service down gracefully: stop admitting, halt every
// running job at its next round boundary (their manifests flush and
// they return to queued on disk), wait for the loops, and tear the
// fleet down. A server restarted over the same DataDir resumes where
// this one stopped.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil
	}
	s.closing = true
	running := make([]*job, 0, len(s.active))
	for _, j := range s.active {
		running = append(running, j)
	}
	s.mu.Unlock()
	close(s.stopAll)
	for _, j := range running {
		j.halt(false)
	}
	s.wg.Wait()
	return s.fleet.Close()
}

// --- HTTP API ---

// Handler returns the /v1 API handler, ready to mount on any mux (the
// daemon mounts it next to /metrics, /status, and /healthz). With
// Options.Auth set, every request must authenticate and all job
// visibility is tenant-scoped.
func (s *Server) Handler() http.Handler {
	if s.opt.Auth != nil {
		return s.withAuth(s.mux)
	}
	return s.mux
}

// maxBodyBytes bounds POST /v1/jobs bodies (alignment + options).
const maxBodyBytes = 32 << 20

func (s *Server) initMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux = mux
}

func writeJSONResponse(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSONResponse(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("serve: request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: request body: %w", err))
		return
	}
	// With auth on, the tenant is the credential's — whatever the body
	// self-declares is overwritten, so no client can bill or read
	// another tenant.
	tenant, authed := authTenant(r.Context())
	if authed {
		spec.Tenant = tenant
	} else if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	if s.limiter != nil {
		if ok, wait := s.limiter.allow(spec.Tenant, time.Now()); !ok {
			s.met.rejections.With(spec.Tenant, "rate_limited").Inc()
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(wait)))
			writeJSONResponse(w, http.StatusTooManyRequests, map[string]string{"error": "rate_limited"})
			return
		}
	}
	rec, err := s.Submit(spec)
	if err != nil {
		var adm *AdmissionError
		var internal *internalError
		switch {
		case errors.As(err, &adm):
			w.Header().Set("Retry-After", strconv.Itoa(int(adm.RetryAfter.Seconds())))
			writeJSONResponse(w, http.StatusTooManyRequests, map[string]string{"error": adm.Reason})
		case errors.Is(err, errClosing):
			writeError(w, http.StatusServiceUnavailable, err)
		case errors.As(err, &internal):
			writeError(w, http.StatusInternalServerError, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	code := http.StatusAccepted
	if rec.CacheHit {
		code = http.StatusOK
	}
	writeJSONResponse(w, code, rec)
}

// visible reports whether the request may see rec: with auth off,
// everything; with auth on, only the authenticated tenant's jobs.
// Invisible jobs read as 404, not 403 — job ids must not leak across
// tenants.
func visible(r *http.Request, rec JobRecord) bool {
	tenant, authed := authTenant(r.Context())
	return !authed || rec.Tenant == tenant
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	recs := make([]JobRecord, 0, len(s.jobs))
	for _, j := range s.jobs {
		if rec := j.snapshot(); visible(r, rec) {
			recs = append(recs, rec)
		}
	}
	s.mu.Unlock()
	sort.Slice(recs, func(i, k int) bool { return recs[i].Submitted.Before(recs[k].Submitted) })
	writeJSONResponse(w, http.StatusOK, map[string]any{"jobs": recs})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rec, err := s.Get(r.PathValue("id"))
	if err != nil || !visible(r, rec) {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	writeJSONResponse(w, http.StatusOK, rec)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if rec, err := s.Get(id); err != nil || !visible(r, rec) {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	rec, err := s.Cancel(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSONResponse(w, http.StatusAccepted, rec)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if rec, err := s.Get(id); err != nil || !visible(r, rec) {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	res, rec, err := s.Result(id)
	if errors.Is(err, ErrNotFound) {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	if r.URL.Query().Get("format") == "newick" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, res.BestNewick)
		return
	}
	writeJSONResponse(w, http.StatusOK, map[string]any{"job": rec, "result": res})
}

// handleEvents streams a job's events as NDJSON: the retained history
// first, then live events until the job reaches a terminal state or the
// client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil || !visible(r, j.snapshot()) {
		writeError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	s.streamEvents(w, r.Context().Done(), j)
}

// streamEvents writes j's NDJSON event stream to w until the hub
// closes, the client goes away, or the daemon stops. The hub drops
// events to followers that cannot keep up, which may include the
// terminal "state" line itself — so when the hub closes, the stream's
// contract (every completed stream ends with the terminal state) is
// enforced here: if the last state written is not the job's terminal
// state, a final line is synthesized from the job record.
func (s *Server) streamEvents(w http.ResponseWriter, clientGone <-chan struct{}, j *job) {
	hist, live, cancel := j.hub.subscribe()
	defer cancel()
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var lastState JobState
	emit := func(e Event) bool {
		if e.Type == "state" {
			lastState = e.State
		}
		return enc.Encode(e) == nil
	}
	for _, e := range hist {
		if !emit(e) {
			return
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
	for {
		select {
		case <-clientGone:
			return
		case <-s.stopAll:
			return
		case e, ok := <-live:
			if !ok {
				// Hub closed: the job is terminal. Catch the follower up
				// if the terminal state event was dropped on the way.
				rec := j.snapshot()
				if rec.State.Terminal() && lastState != rec.State {
					emit(Event{Type: "state", Time: rec.Finished, State: rec.State, Error: rec.Error})
				}
				if flusher != nil {
					flusher.Flush()
				}
				return
			}
			if !emit(e) {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
