package serve

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Authentication and request-rate limiting. The daemon's /v1 surface is
// multi-tenant: quotas, fair scheduling, and metrics all key on the
// tenant, so the tenant identity must come from a credential, not from
// a self-declared field in the request body. A KeyAuth resolves
// `Authorization: Bearer <key>` against a key file (hot-reloadable on
// SIGHUP), and the auth middleware stamps the resolved tenant into the
// request context; every handler downstream trusts only that identity.
// Rate limiting is a separate admission layer from the queue caps: the
// scheduler's quotas bound how much work a tenant may have outstanding,
// the token bucket bounds how often it may knock on the door at all.

// KeyAuth maps API keys to tenants, loaded from a file of
// `<key> <tenant>` lines (whitespace separated, #-comments and blank
// lines ignored). One tenant may own several keys; one key maps to
// exactly one tenant. Reload swaps the whole map atomically, so a
// SIGHUP mid-traffic is safe: every request sees either the old or the
// new key set, never a mixture.
type KeyAuth struct {
	path string
	keys atomic.Value // map[string]string: sha256(key) -> tenant
}

// NewKeyAuth loads the key file at path. The returned KeyAuth keeps the
// path for later Reload calls.
func NewKeyAuth(path string) (*KeyAuth, error) {
	a := &KeyAuth{path: path}
	if _, err := a.Reload(); err != nil {
		return nil, err
	}
	return a, nil
}

// Reload re-reads the key file, returning how many keys it now holds.
// On error the previous key set stays in effect.
func (a *KeyAuth) Reload() (int, error) {
	f, err := os.Open(a.path)
	if err != nil {
		return 0, fmt.Errorf("serve: api keys: %w", err)
	}
	defer f.Close()
	m, err := parseKeyFile(f)
	if err != nil {
		return 0, fmt.Errorf("serve: api keys %s: %w", a.path, err)
	}
	a.keys.Store(m)
	return len(m), nil
}

// parseKeyFile reads `<key> <tenant>` lines into the hashed-key map.
func parseKeyFile(r io.Reader) (map[string]string, error) {
	m := map[string]string{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want `<key> <tenant>`, got %d fields", line, len(fields))
		}
		key, tenant := fields[0], fields[1]
		if len(key) < 8 {
			return nil, fmt.Errorf("line %d: key shorter than 8 characters", line)
		}
		h := hashKey(key)
		if prev, dup := m[h]; dup {
			return nil, fmt.Errorf("line %d: key already mapped to tenant %q", line, prev)
		}
		m[h] = tenant
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("no keys")
	}
	return m, nil
}

// hashKey digests a key for map lookup, so neither the stored map nor
// the lookup path handles raw key bytes in a length-dependent way.
func hashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// Lookup resolves a presented key to its tenant.
func (a *KeyAuth) Lookup(key string) (tenant string, ok bool) {
	m, _ := a.keys.Load().(map[string]string)
	tenant, ok = m[hashKey(key)]
	return tenant, ok
}

// tenantKey carries the authenticated tenant through request contexts.
type tenantKey struct{}

// authTenant returns the tenant the auth middleware resolved, and
// whether the request was authenticated at all (false = auth is off).
func authTenant(ctx context.Context) (string, bool) {
	t, ok := ctx.Value(tenantKey{}).(string)
	return t, ok
}

// withAuth wraps the API mux: every request must carry
// `Authorization: Bearer <key>` matching the key file, and the resolved
// tenant identity rides the context into the handlers.
func (s *Server) withAuth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		raw := r.Header.Get("Authorization")
		key, ok := strings.CutPrefix(raw, "Bearer ")
		if raw == "" || !ok || key == "" {
			w.Header().Set("WWW-Authenticate", `Bearer realm="fastdnamld"`)
			writeError(w, http.StatusUnauthorized, fmt.Errorf("serve: missing Authorization: Bearer key"))
			s.met.authFailures.With("missing").Inc()
			return
		}
		tenant, ok := s.opt.Auth.Lookup(key)
		if !ok {
			w.Header().Set("WWW-Authenticate", `Bearer realm="fastdnamld"`)
			writeError(w, http.StatusUnauthorized, fmt.Errorf("serve: unknown API key"))
			s.met.authFailures.With("unknown_key").Inc()
			return
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantKey{}, tenant)))
	})
}

// --- request-rate limiting ---

// rateLimiter is a per-tenant token bucket: each tenant accrues Rate
// tokens per second up to Burst, and every submission spends one. It
// bounds how fast a tenant may hit the API, independently of how much
// work the scheduler lets it queue — a tight retry loop is rejected in
// O(ns) here without ever touching the scheduler lock or the job store.
type rateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: float64(burst), buckets: map[string]*bucket{}}
}

// allow spends one token from tenant's bucket. When the bucket is dry
// it reports how long until the next token accrues — the computed
// Retry-After the 429 carries.
func (l *rateLimiter) allow(tenant string, now time.Time) (bool, time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// retryAfterSeconds rounds a backoff up to the whole seconds the HTTP
// Retry-After header wants, never below 1.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
