package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/likelihood"
	"repro/internal/mlsearch"
	"repro/internal/obs"
)

// The daemon's elastic worker fleet. Worker engines are dataset-bound —
// a foreman and its workers serve exactly one alignment + model — so
// the fleet is organized as pods: each pod is a persistent warm Local
// world (foreman, K workers, a JobMux for per-job lanes) keyed by the
// dataset hash. Jobs over the same dataset share a pod and its warm CLV
// caches; a pod whose last job finished idles until the TTL reaps it.
// The pod count is bounded, so the fleet's worker budget is
// MaxPods × Workers regardless of how many distinct datasets clients
// submit.

// ErrFleetSaturated reports that every pod slot is held by a running
// job's dataset; the caller backs off and retries.
var ErrFleetSaturated = errors.New("serve: fleet saturated (all pods busy with other datasets)")

// FleetOptions size the fleet.
type FleetOptions struct {
	// Workers is the worker goroutine count per pod (default 2).
	Workers int
	// MaxPods bounds how many warm pods exist at once (default 2).
	MaxPods int
	// IdleTTL is how long an unreferenced pod stays warm before the
	// reaper shuts it down (default 5m).
	IdleTTL time.Duration
	// Threads is the likelihood kernel thread count per worker engine
	// (default 1; results are bit-identical at any count).
	Threads int
	// Pipeline is the foreman's per-worker task pipeline depth
	// (default 2).
	Pipeline int
	// TaskTimeout re-dispatches a task whose worker has not answered
	// (default 1m; the inline evaluator is the last rung, so a pod
	// always makes progress).
	TaskTimeout time.Duration
}

func (o FleetOptions) withDefaults() FleetOptions {
	if o.Workers < 1 {
		o.Workers = 2
	}
	if o.MaxPods < 1 {
		o.MaxPods = 2
	}
	if o.IdleTTL <= 0 {
		o.IdleTTL = 5 * time.Minute
	}
	if o.Threads < 1 {
		o.Threads = 1
	}
	if o.TaskTimeout == 0 {
		o.TaskTimeout = time.Minute
	}
	return o
}

// pod is one warm dataset-bound world.
type pod struct {
	key string
	mux *mlsearch.JobMux
	obs *mlsearch.RunObserver

	refs int
	idle time.Time
	wg   sync.WaitGroup

	errMu sync.Mutex
	errs  []error
}

// fail records a role goroutine's error for surfacing at shutdown.
func (p *pod) fail(err error) {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	p.errs = append(p.errs, err)
}

// Fleet owns the pods.
type Fleet struct {
	opt  FleetOptions
	reg  *obs.Registry
	bus  *obs.Bus
	logf func(format string, args ...any)

	mu     sync.Mutex
	pods   map[string]*pod
	closed bool

	gPods    *obs.Gauge
	mCreated *obs.Counter
	mReaped  *obs.Counter
}

// NewFleet builds an empty fleet publishing pod metrics into reg.
func NewFleet(opt FleetOptions, reg *obs.Registry, bus *obs.Bus) *Fleet {
	return &Fleet{
		opt:      opt.withDefaults(),
		reg:      reg,
		bus:      bus,
		logf:     func(string, ...any) {},
		pods:     map[string]*pod{},
		gPods:    reg.Gauge("fdml_serve_pods", "Warm worker pods."),
		mCreated: reg.Counter("fdml_serve_pods_created_total", "Worker pods created."),
		mReaped:  reg.Counter("fdml_serve_pods_reaped_total", "Worker pods shut down after idling."),
	}
}

// Acquire returns a pod for the dataset key, creating one if needed.
// Every Acquire must be paired with a Release. When all pod slots are
// held by other datasets' running jobs it returns ErrFleetSaturated.
func (f *Fleet) Acquire(key string, cfg mlsearch.Config) (*pod, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, fmt.Errorf("serve: fleet closed")
	}
	if p := f.pods[key]; p != nil {
		p.refs++
		return p, nil
	}
	if len(f.pods) >= f.opt.MaxPods {
		// Evict the longest-idle unreferenced pod to make room.
		var victim *pod
		for _, p := range f.pods {
			if p.refs == 0 && (victim == nil || p.idle.Before(victim.idle)) {
				victim = p
			}
		}
		if victim == nil {
			return nil, ErrFleetSaturated
		}
		delete(f.pods, victim.key)
		f.gPods.Set(float64(len(f.pods)))
		f.mReaped.Inc()
		// Shut the victim down outside the lock; its JobMux has no live
		// dispatchers (refs was 0).
		go f.shutdownPod(victim)
	}
	p, err := f.newPod(key, cfg)
	if err != nil {
		return nil, err
	}
	p.refs = 1
	f.pods[key] = p
	f.gPods.Set(float64(len(f.pods)))
	f.mCreated.Inc()
	return p, nil
}

// newPod spins up the warm world: the same wiring as the Local
// transport, but long-lived — the master side is a JobMux that mints a
// dispatcher lane per search instead of one fixed run.
func (f *Fleet) newPod(key string, cfg mlsearch.Config) (*pod, error) {
	norm, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	norm.Threads = f.opt.Threads
	size := f.opt.Workers + 2
	world, err := comm.NewLocal(size)
	if err != nil {
		return nil, err
	}
	lay, err := mlsearch.DefaultLayout(size, false)
	if err != nil {
		return nil, err
	}
	// The inline evaluator is the degradation floor: if every worker in
	// the pod dies, rounds still complete.
	eng, err := likelihood.NewEngine(norm.Engine, norm.Model, norm.Patterns, likelihood.EngineOptions{
		Precision: norm.Precision,
		Threads:   norm.Threads,
	})
	if err != nil {
		return nil, err
	}
	p := &pod{key: key, idle: time.Now()}
	p.obs = mlsearch.NewRunObserver(f.reg, f.bus)

	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		err := mlsearch.RunForeman(world[lay.Foreman], lay, mlsearch.ForemanOptions{
			TaskTimeout: f.opt.TaskTimeout,
			Inline:      newPodEvaluator(eng, norm),
			Pipeline:    f.opt.Pipeline,
			Obs:         p.obs,
		})
		if err != nil {
			p.fail(fmt.Errorf("pod %.8s foreman: %w", key, err))
		}
	}()
	for _, w := range lay.Workers {
		p.wg.Add(1)
		go func(rank int) {
			defer p.wg.Done()
			// Unlike the one-shot Local transport, the pod pins the
			// engine choice explicitly so every worker matches the
			// dataset key it serves.
			hooks := mlsearch.WorkerHooks{
				Threads:       norm.Threads,
				Precision:     norm.Precision,
				PrecisionSet:  true,
				Engine:        norm.Engine,
				EngineSet:     true,
				SmoothMode:    norm.SmoothMode,
				SmoothModeSet: true,
			}
			err := mlsearch.RunWorker(world[rank], lay, norm.Model, norm.Patterns, norm.Taxa, hooks)
			if err != nil {
				p.fail(fmt.Errorf("pod %.8s worker %d: %w", key, rank, err))
			}
		}(w)
	}
	mux, err := mlsearch.NewJobMux(world[lay.Master], lay)
	if err != nil {
		_ = world[lay.Master].Close()
		p.wg.Wait()
		return nil, err
	}
	p.mux = mux
	return p, nil
}

// newPodEvaluator builds the foreman's inline fallback evaluator with
// the pod's smoothing mode, matching what the pod workers apply.
func newPodEvaluator(eng likelihood.Engine, norm mlsearch.Config) *mlsearch.Evaluator {
	ev := mlsearch.NewEvaluator(eng, norm.Taxa)
	ev.SetSmoothMode(norm.SmoothMode)
	return ev
}

// Release returns a pod reference; an unreferenced pod starts its idle
// clock. A release without a matching Acquire is a caller bug: the
// count must never go negative — a negative count would make the pod
// look idle while a job still holds it (reapable mid-run) and then
// immortal once re-acquired — so it is clamped at zero and logged
// loudly instead of corrupting the lifecycle.
func (f *Fleet) Release(p *pod) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p.refs <= 0 {
		f.logf("BUG: fleet: double release of pod %.8s (refs %d); dropping the extra release", p.key, p.refs)
		return
	}
	p.refs--
	if p.refs == 0 {
		p.idle = time.Now()
	}
}

// Reap shuts down pods that have idled past the TTL, returning how many
// it reaped.
func (f *Fleet) Reap(now time.Time) int {
	f.mu.Lock()
	var victims []*pod
	for key, p := range f.pods {
		if p.refs == 0 && now.Sub(p.idle) >= f.opt.IdleTTL {
			victims = append(victims, p)
			delete(f.pods, key)
		}
	}
	f.gPods.Set(float64(len(f.pods)))
	f.mu.Unlock()
	for _, p := range victims {
		f.shutdownPod(p)
		f.mReaped.Inc()
	}
	return len(victims)
}

// shutdownPod tears one world down: the mux broadcasts shutdown, the
// foreman drains its workers, and the role goroutines exit.
func (f *Fleet) shutdownPod(p *pod) {
	_ = p.mux.Shutdown()
	p.wg.Wait()
}

// Pods reports the warm pod count.
func (f *Fleet) Pods() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.pods)
}

// Close shuts every pod down. Callers must have stopped all jobs first
// (no live dispatchers).
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	pods := make([]*pod, 0, len(f.pods))
	for _, p := range f.pods {
		pods = append(pods, p)
	}
	f.pods = map[string]*pod{}
	f.gPods.Set(0)
	f.mu.Unlock()

	var first error
	for _, p := range pods {
		f.shutdownPod(p)
		p.errMu.Lock()
		if first == nil && len(p.errs) > 0 {
			first = p.errs[0]
		}
		p.errMu.Unlock()
	}
	return first
}
