package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Content-addressed result store. A finished job's outcome is written
// under its ResultKey; a later submission with the same key returns the
// stored document without dispatching a single task. Keys cover
// everything that determines the trees and exclude deployment knobs
// (see preparedSpec), so the store doubles as a cross-restart memo: it
// survives daemon restarts alongside the job store.

// JumbleOutcome is one random ordering's result inside a JobResult.
type JumbleOutcome struct {
	Jumble int     `json:"jumble"`
	Seed   int64   `json:"seed"`
	LnL    float64 `json:"lnl"`
	Newick string  `json:"newick"`
}

// JobResult is the stored outcome of a completed job.
type JobResult struct {
	// Key is the content hash the result is stored under.
	Key string `json:"key"`
	// BestJumble indexes the highest-likelihood ordering.
	BestJumble int `json:"best_jumble"`
	// BestLnL is its log-likelihood.
	BestLnL float64 `json:"best_lnl"`
	// BestNewick is its tree.
	BestNewick string `json:"best_newick"`
	// Consensus is the majority rule consensus over the jumble trees
	// ("" when only one jumble ran).
	Consensus string `json:"consensus,omitempty"`
	// Jumbles holds every ordering's result, in jumble order.
	Jumbles []JumbleOutcome `json:"jumbles"`
	// TotalTasks and TotalOps sum the dispatched work over the run.
	TotalTasks int    `json:"total_tasks"`
	TotalOps   uint64 `json:"total_ops"`
}

// ResultStore is the on-disk content-addressed store: one JSON document
// per key under dir.
type ResultStore struct {
	dir string
}

// NewResultStore opens (creating if needed) a store rooted at dir.
func NewResultStore(dir string) (*ResultStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: result store: %w", err)
	}
	return &ResultStore{dir: dir}, nil
}

// path maps a key to its file, refusing anything that is not a plain
// lowercase hex digest (keys come from hashJSON, but records on disk
// are untrusted after a restart).
func (s *ResultStore) path(key string) (string, error) {
	if key == "" || strings.Trim(key, "0123456789abcdef") != "" {
		return "", fmt.Errorf("serve: bad result key %q", key)
	}
	return filepath.Join(s.dir, key+".json"), nil
}

// Get returns the stored result for key, reporting whether one exists.
// A hit refreshes the file's mtime: the GC's LRU trim and result TTL
// both read mtime as "last used", so hot cache entries survive trims
// that evict cold ones.
func (s *ResultStore) Get(key string) (*JobResult, bool, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, false, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var r JobResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, false, fmt.Errorf("serve: result %s: %w", key, err)
	}
	now := time.Now()
	_ = os.Chtimes(p, now, now)
	return &r, true, nil
}

// ResultEntry describes one stored result for the garbage collector.
type ResultEntry struct {
	Key     string
	Size    int64
	ModTime time.Time
}

// Entries lists every stored result with its size and last-use time.
func (s *ResultStore) Entries() ([]ResultEntry, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var out []ResultEntry
	for _, e := range ents {
		key, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok || e.IsDir() {
			continue
		}
		if _, err := s.path(key); err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // deleted mid-listing
		}
		out = append(out, ResultEntry{Key: key, Size: info.Size(), ModTime: info.ModTime()})
	}
	return out, nil
}

// Delete removes a stored result; a missing key is not an error.
func (s *ResultStore) Delete(key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Put stores a result atomically (temp file + rename); writing the same
// key twice is an idempotent overwrite, which is exactly right for a
// deterministic computation.
func (s *ResultStore) Put(r *JobResult) error {
	p, err := s.path(r.Key)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".result-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), p)
}
