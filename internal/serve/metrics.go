package serve

import "repro/internal/obs"

// Service-level metric families, all tenant-labeled so one /metrics
// scrape answers "who is using the fleet and how is it treating them".
// They live in the same registry as the per-pod RunObserver families
// (fdml_dispatch_total and friends), so the smoke test's zero-dispatch
// assertion and these SLO views come from a single endpoint.
type serveMetrics struct {
	// fdml_serve_submissions_total{tenant}
	submissions *obs.CounterVec
	// fdml_serve_cache_hits_total{tenant} — submissions answered from
	// the content-addressed store without touching the fleet.
	cacheHits *obs.CounterVec
	// fdml_serve_rejections_total{tenant,reason} — admission control.
	rejections *obs.CounterVec
	// fdml_serve_jobs_total{tenant,outcome} — terminal transitions.
	outcomes *obs.CounterVec
	// fdml_serve_queue_depth{tenant} / fdml_serve_active_jobs{tenant}.
	queueDepth *obs.GaugeVec
	activeJobs *obs.GaugeVec
	// fdml_serve_queue_wait_seconds{tenant} — admission to first
	// dispatch (the fairness SLO).
	queueWait *obs.HistogramVec
	// fdml_serve_job_seconds{tenant} — run time of completed jobs (the
	// latency SLO).
	jobSeconds *obs.HistogramVec
	// fdml_serve_resumed_total — jobs re-queued from manifests at boot.
	resumed *obs.Counter
	// fdml_serve_quarantined_total — jobs with corrupt state at boot.
	quarantined *obs.Counter
	// fdml_serve_auth_failures_total{reason} — 401s, by cause.
	authFailures *obs.CounterVec
	// fdml_gc_runs_total — retention GC sweeps.
	gcRuns *obs.Counter
	// fdml_gc_jobs_evicted_total — terminal jobs evicted past JobTTL.
	gcJobs *obs.Counter
	// fdml_gc_results_evicted_total{reason} — CAS entries deleted, by
	// "ttl" or "bytes" (LRU budget trim).
	gcResults *obs.CounterVec
	// fdml_gc_result_store_bytes — CAS size after the last sweep.
	gcResultBytes *obs.Gauge
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	waitBuckets := []float64{0.001, 0.01, 0.1, 0.5, 1, 5, 30, 120, 600}
	runBuckets := []float64{0.01, 0.1, 0.5, 1, 5, 30, 120, 600, 3600}
	return &serveMetrics{
		submissions:   reg.CounterVec("fdml_serve_submissions_total", "Jobs submitted, by tenant.", "tenant"),
		cacheHits:     reg.CounterVec("fdml_serve_cache_hits_total", "Submissions served from the result store, by tenant.", "tenant"),
		rejections:    reg.CounterVec("fdml_serve_rejections_total", "Submissions rejected by admission control.", "tenant", "reason"),
		outcomes:      reg.CounterVec("fdml_serve_jobs_total", "Jobs reaching a terminal state.", "tenant", "outcome"),
		queueDepth:    reg.GaugeVec("fdml_serve_queue_depth", "Queued jobs, by tenant.", "tenant"),
		activeJobs:    reg.GaugeVec("fdml_serve_active_jobs", "Running jobs, by tenant.", "tenant"),
		queueWait:     reg.HistogramVec("fdml_serve_queue_wait_seconds", "Seconds from admission to first dispatch.", waitBuckets, "tenant"),
		jobSeconds:    reg.HistogramVec("fdml_serve_job_seconds", "Run seconds of completed jobs.", runBuckets, "tenant"),
		resumed:       reg.Counter("fdml_serve_resumed_total", "Incomplete jobs re-queued at daemon start."),
		quarantined:   reg.Counter("fdml_serve_quarantined_total", "Jobs quarantined for corrupt on-disk state."),
		authFailures:  reg.CounterVec("fdml_serve_auth_failures_total", "Requests rejected with 401.", "reason"),
		gcRuns:        reg.Counter("fdml_gc_runs_total", "Retention GC sweeps."),
		gcJobs:        reg.Counter("fdml_gc_jobs_evicted_total", "Terminal jobs evicted past the job TTL."),
		gcResults:     reg.CounterVec("fdml_gc_results_evicted_total", "Stored results deleted by the GC.", "reason"),
		gcResultBytes: reg.Gauge("fdml_gc_result_store_bytes", "Result store size after the last GC sweep."),
	}
}
