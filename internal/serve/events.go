package serve

import (
	"sync"
	"time"
)

// Per-job event streams. Every job owns a hub; the runner publishes
// state transitions, round progress, and checkpoint acknowledgements
// into it, and GET /v1/jobs/{id}/events replays the bounded history and
// then follows live until the job reaches a terminal state.

// Event is one line of a job's NDJSON event stream.
type Event struct {
	// Type is "state", "progress", or "checkpoint".
	Type string    `json:"type"`
	Time time.Time `json:"time"`
	// State is set on "state" events.
	State JobState `json:"state,omitempty"`
	// Error carries the failure reason on terminal "state" events.
	Error string `json:"error,omitempty"`
	// The search position, on "progress" and "checkpoint" events.
	Jumble     int     `json:"jumble,omitempty"`
	Kind       string  `json:"kind,omitempty"`
	TaxaInTree int     `json:"taxa_in_tree,omitempty"`
	BestLnL    float64 `json:"best_lnl,omitempty"`
}

// eventHistory bounds the replay buffer; a long search's stream is a
// window, not an archive.
const eventHistory = 256

// eventHub fans a job's events out to any number of stream followers.
// Publishing never blocks: a follower that cannot keep up loses events
// (its channel send is dropped) rather than stalling the search.
type eventHub struct {
	mu     sync.Mutex
	hist   []Event
	subs   map[int]chan Event
	nextID int
	closed bool
}

func newEventHub() *eventHub {
	return &eventHub{subs: map[int]chan Event{}}
}

// publish appends e to the history and offers it to every follower.
func (h *eventHub) publish(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.hist = append(h.hist, e)
	if len(h.hist) > eventHistory {
		h.hist = append(h.hist[:0], h.hist[len(h.hist)-eventHistory:]...)
	}
	for _, ch := range h.subs {
		select {
		case ch <- e:
		default:
		}
	}
}

// subscribe returns a copy of the history plus a live channel. The
// channel closes when the hub closes (terminal job); cancel detaches
// early.
func (h *eventHub) subscribe() ([]Event, <-chan Event, func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	hist := make([]Event, len(h.hist))
	copy(hist, h.hist)
	ch := make(chan Event, 128)
	if h.closed {
		close(ch)
		return hist, ch, func() {}
	}
	id := h.nextID
	h.nextID++
	h.subs[id] = ch
	return hist, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[id]; ok {
			delete(h.subs, id)
			close(ch)
		}
	}
}

// close ends the stream for every follower; the history stays readable
// for later subscribers.
func (h *eventHub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for id, ch := range h.subs {
		delete(h.subs, id)
		close(ch)
	}
}
