package serve

import (
	"fmt"
	"os"
	"time"

	"repro/internal/mlsearch"
)

// Startup recovery: the janitor walks the job store and decides, per
// job, whether it is terminal (kept visible), incomplete (re-queued,
// resuming from its manifest where one exists), or corrupt
// (quarantined). Quarantine is deliberately job-scoped — one truncated
// manifest block must never take the daemon or its neighbors down; the
// damaged job parks in StateQuarantined with the parse error attached
// while every other job resumes normally.

// recover loads every job found under the data directory.
func (s *Server) recover() error {
	ids, err := s.store.List()
	if err != nil {
		return err
	}
	for _, id := range ids {
		rec, err := s.store.LoadRecord(id)
		if err != nil {
			s.quarantine(&JobRecord{ID: id, Tenant: "default", Submitted: time.Now()},
				fmt.Errorf("job record: %w", err))
			continue
		}
		if rec.State.Terminal() {
			s.adopt(rec, nil, nil, true)
			continue
		}

		// Queued or running when the previous process stopped: rebuild
		// the prepared spec and resume state, then re-queue.
		spec, err := s.store.LoadSpec(id)
		if err != nil {
			s.quarantine(rec, fmt.Errorf("job spec: %w", err))
			continue
		}
		prep, err := prepareSpec(*spec)
		if err != nil {
			s.quarantine(rec, fmt.Errorf("job spec: %w", err))
			continue
		}
		// Re-derive the content keys from the spec rather than trusting
		// the stored record: the spec is the source of truth.
		rec.ResultKey = prep.ResultKey
		rec.PodKey = prep.PodKey
		rec.Jumbles = prep.Spec.Options.Jumbles
		var resume *mlsearch.Manifest
		mPath := s.store.ManifestPath(id)
		if _, statErr := os.Stat(mPath); statErr == nil {
			m, err := mlsearch.LoadManifest(mPath)
			if err != nil {
				s.quarantine(rec, fmt.Errorf("restart manifest: %w", err))
				continue
			}
			resume = m
		}
		rec.State = StateQueued
		rec.Error = ""
		rec.Started = time.Time{}
		s.adopt(rec, prep, resume, false)
		s.met.resumed.Inc()
		if resume != nil {
			done := 0
			for j := 0; j < resume.Jumbles; j++ {
				if cp, ok := resume.Checkpoint(j); ok && cp.Phase == mlsearch.PhaseDone {
					done++
				}
			}
			s.opt.Logf("job %s: resuming (%d of %d jumbles done)", id, done, resume.Jumbles)
		} else {
			s.opt.Logf("job %s: recovered, starting fresh", id)
		}
	}
	return nil
}

// adopt registers a recovered job in memory (and in the scheduler when
// it still has work to do).
func (s *Server) adopt(rec *JobRecord, prep *preparedSpec, resume *mlsearch.Manifest, terminal bool) {
	j := &job{
		rec:      *rec,
		prep:     prep,
		resume:   resume,
		stop:     make(chan struct{}),
		hub:      newEventHub(),
		queuedAt: time.Now(),
	}
	j.hub.publish(Event{Type: "state", Time: time.Now(), State: rec.State, Error: rec.Error})
	if terminal {
		j.hub.close()
	}
	s.mu.Lock()
	s.jobs[j.rec.ID] = j
	if !terminal {
		// force: these jobs were admitted by the previous process; a
		// restart must never drop them to admission control.
		_ = s.sched.push(j, true)
		s.updateQueueGauges()
	}
	s.mu.Unlock()
	if !terminal {
		_ = s.store.SaveRecord(rec)
	}
}

// quarantine parks a job with corrupt on-disk state.
func (s *Server) quarantine(rec *JobRecord, cause error) {
	rec.State = StateQuarantined
	rec.Error = cause.Error()
	rec.Finished = time.Now()
	_ = s.store.SaveRecord(rec)
	s.adopt(rec, nil, nil, true)
	s.met.quarantined.Inc()
	s.opt.Logf("job %s: quarantined: %v", rec.ID, cause)
}
