package serve

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Durable job state. Every job owns a directory under <root>/jobs/<id>
// holding its record (job.json), its normalized spec (spec.json, which
// embeds the canonical alignment), and — while it runs — its restart
// manifest. All writes are atomic temp+rename, so a crash at any point
// leaves each file either in its previous or its next complete state;
// the janitor sorts out whatever mixture it finds at boot.

// JobState is a job's lifecycle position.
type JobState string

// Job states.
const (
	// StateQueued jobs are admitted and waiting for a fleet slot (also
	// the state incomplete jobs return to across a daemon restart).
	StateQueued JobState = "queued"
	// StateRunning jobs hold a pod and are dispatching rounds.
	StateRunning JobState = "running"
	// StateDone jobs finished; their result is in the result store.
	StateDone JobState = "done"
	// StateFailed jobs hit a non-recoverable error.
	StateFailed JobState = "failed"
	// StateCanceled jobs were canceled by a client.
	StateCanceled JobState = "canceled"
	// StateQuarantined jobs had corrupt on-disk state at recovery (a
	// truncated manifest, unreadable spec); they are kept visible for
	// inspection and never scheduled.
	StateQuarantined JobState = "quarantined"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled, StateQuarantined:
		return true
	}
	return false
}

// Progress is the latest search position, for status polling.
type Progress struct {
	Jumble     int     `json:"jumble"`
	Kind       string  `json:"kind"`
	TaxaInTree int     `json:"taxa_in_tree"`
	NumTaxa    int     `json:"num_taxa"`
	BestLnL    float64 `json:"best_lnl"`
}

// JobRecord is a job's durable metadata (job.json) and the status
// document GET /v1/jobs/{id} serves.
type JobRecord struct {
	ID        string    `json:"id"`
	Tenant    string    `json:"tenant"`
	Priority  int       `json:"priority,omitempty"`
	State     JobState  `json:"state"`
	Jumbles   int       `json:"jumbles"`
	ResultKey string    `json:"result_key"`
	PodKey    string    `json:"pod_key"`
	CacheHit  bool      `json:"cache_hit,omitempty"`
	Error     string    `json:"error,omitempty"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
	Progress  *Progress `json:"progress,omitempty"`
}

// newJobID mints a fresh job id: "j-" + 12 random hex digits.
func newJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err)
	}
	return "j-" + hex.EncodeToString(b[:])
}

// validJobID guards path construction against ids read back from disk
// or URLs.
func validJobID(id string) bool {
	if !strings.HasPrefix(id, "j-") || len(id) != 14 {
		return false
	}
	return strings.Trim(id[2:], "0123456789abcdef") == ""
}

// JobStore is the on-disk job directory tree.
type JobStore struct {
	root string
}

// NewJobStore opens (creating if needed) the store under root, and
// finishes any job deletion a previous process crashed in the middle of
// (see Delete's rename-aside protocol).
func NewJobStore(root string) (*JobStore, error) {
	jobs := filepath.Join(root, "jobs")
	if err := os.MkdirAll(jobs, 0o755); err != nil {
		return nil, fmt.Errorf("serve: job store: %w", err)
	}
	if ents, err := os.ReadDir(jobs); err == nil {
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), ".gc-") {
				_ = os.RemoveAll(filepath.Join(jobs, e.Name()))
			}
		}
	}
	return &JobStore{root: root}, nil
}

// Dir returns a job's directory.
func (s *JobStore) Dir(id string) string { return filepath.Join(s.root, "jobs", id) }

// ManifestPath returns a job's restart manifest path.
func (s *JobStore) ManifestPath(id string) string { return filepath.Join(s.Dir(id), "manifest") }

func (s *JobStore) recordPath(id string) string { return filepath.Join(s.Dir(id), "job.json") }
func (s *JobStore) specPath(id string) string   { return filepath.Join(s.Dir(id), "spec.json") }

// writeJSON writes v atomically to path.
func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Create makes a job's directory and writes its spec and first record.
func (s *JobStore) Create(rec *JobRecord, spec *JobSpec) error {
	if !validJobID(rec.ID) {
		return fmt.Errorf("serve: bad job id %q", rec.ID)
	}
	if err := os.MkdirAll(s.Dir(rec.ID), 0o755); err != nil {
		return err
	}
	if err := writeJSON(s.specPath(rec.ID), spec); err != nil {
		return err
	}
	return s.SaveRecord(rec)
}

// SaveRecord atomically rewrites a job's record.
func (s *JobStore) SaveRecord(rec *JobRecord) error {
	if !validJobID(rec.ID) {
		return fmt.Errorf("serve: bad job id %q", rec.ID)
	}
	return writeJSON(s.recordPath(rec.ID), rec)
}

// LoadRecord reads a job's record back.
func (s *JobStore) LoadRecord(id string) (*JobRecord, error) {
	if !validJobID(id) {
		return nil, fmt.Errorf("serve: bad job id %q", id)
	}
	data, err := os.ReadFile(s.recordPath(id))
	if err != nil {
		return nil, err
	}
	var rec JobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("serve: job %s record: %w", id, err)
	}
	if rec.ID != id {
		return nil, fmt.Errorf("serve: job %s record claims id %q", id, rec.ID)
	}
	return &rec, nil
}

// LoadSpec reads a job's normalized spec back.
func (s *JobStore) LoadSpec(id string) (*JobSpec, error) {
	if !validJobID(id) {
		return nil, fmt.Errorf("serve: bad job id %q", id)
	}
	data, err := os.ReadFile(s.specPath(id))
	if err != nil {
		return nil, err
	}
	var sp JobSpec
	if err := json.Unmarshal(data, &sp); err != nil {
		return nil, fmt.Errorf("serve: job %s spec: %w", id, err)
	}
	return &sp, nil
}

// Delete removes a job's directory. The directory is renamed aside
// first — the rename is atomic, so a crash mid-delete leaves a
// `.gc-`-prefixed remnant the janitor's List skips (it is not a valid
// job id) instead of a half-deleted job directory it would quarantine.
func (s *JobStore) Delete(id string) error {
	if !validJobID(id) {
		return fmt.Errorf("serve: bad job id %q", id)
	}
	dir := s.Dir(id)
	tomb := filepath.Join(s.root, "jobs", ".gc-"+id)
	if err := os.Rename(dir, tomb); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	return os.RemoveAll(tomb)
}

// List returns every job id on disk, sorted, skipping entries that are
// not job directories (the janitor decides what to do with their
// contents).
func (s *JobStore) List() ([]string, error) {
	ents, err := os.ReadDir(filepath.Join(s.root, "jobs"))
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range ents {
		if e.IsDir() && validJobID(e.Name()) {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}
