package serve

import (
	"os"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestServerResumeAfterShutdown is the subsystem's acceptance proof:
// kill the daemon mid-search with jobs queued behind the running one,
// restart over the same data directory, and every job completes with
// results bit-identical to an uninterrupted run.
func TestServerResumeAfterShutdown(t *testing.T) {
	dir := t.TempDir()
	aln := testPhylipText(t, 10, 300, 17)
	specs := []JobSpec{
		{Tenant: "a", Alignment: aln, Options: JobOptions{Seed: 3, Jumbles: 3}},
		{Tenant: "b", Alignment: aln, Options: JobOptions{Seed: 101, Jumbles: 2}},
	}

	// First life: one slot, one worker, so the second job is still
	// queued when we pull the plug.
	s1, err := NewServer(Options{
		DataDir:   dir,
		MaxActive: 1,
		Fleet:     FleetOptions{Workers: 1},
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, sp := range specs {
		rec, err := s1.Submit(sp)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}

	// Wait for the first job to be mid-search: running, with at least
	// one checkpoint in its manifest.
	deadline := time.Now().Add(120 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("first job never checkpointed")
		}
		rec, err := s1.Get(ids[0])
		if err != nil {
			t.Fatal(err)
		}
		if rec.State.Terminal() {
			t.Fatalf("first job finished (%s) before the shutdown; grow the test dataset", rec.State)
		}
		if _, statErr := os.Stat(s1.store.ManifestPath(ids[0])); statErr == nil && rec.State == StateRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Graceful shutdown: the running search stops at its round
	// boundary, flushes its manifest, and both jobs persist as queued.
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	store, err := NewJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		rec, err := store.LoadRecord(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State != StateQueued {
			t.Fatalf("after shutdown, job %s state %s, want queued", id, rec.State)
		}
	}

	// Second life: the janitor re-queues both; the interrupted one
	// resumes from its manifest instead of starting over.
	reg := obs.NewRegistry()
	s2, err := NewServer(Options{
		DataDir:   dir,
		MaxActive: 2,
		Fleet:     FleetOptions{Workers: 2},
		Registry:  reg,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s2.Close() })
	if got := s2.met.resumed.Value(); got != 2 {
		t.Errorf("resumed counter = %v, want 2", got)
	}
	for _, id := range ids {
		waitJob(t, s2, id, StateDone)
	}

	// Every jumble of every job matches an uninterrupted serial run bit
	// for bit — the checkpoint/resume path changed nothing.
	for i, sp := range specs {
		want := serialReference(t, sp)
		res, _, err := s2.Result(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Jumbles) != len(want) {
			t.Fatalf("job %d: %d jumbles, want %d", i, len(res.Jumbles), len(want))
		}
		for j, w := range want {
			got := res.Jumbles[j]
			if got.Newick != w.BestNewick || got.LnL != w.LnL || got.Seed != w.Seed {
				t.Errorf("job %d jumble %d diverged after resume:\n got %q lnL %v seed %d\nwant %q lnL %v seed %d",
					i, j, got.Newick, got.LnL, got.Seed, w.BestNewick, w.LnL, w.Seed)
			}
		}
	}
}
