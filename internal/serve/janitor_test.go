package serve

import (
	"os"
	"strings"
	"testing"
	"time"
)

// seedJobDir fabricates an admitted-but-incomplete job on disk, the
// state a crashed daemon leaves behind.
func seedJobDir(t *testing.T, store *JobStore, id string, spec JobSpec) {
	t.Helper()
	rec := &JobRecord{
		ID:        id,
		Tenant:    spec.Tenant,
		State:     StateRunning,
		Submitted: time.Now(),
	}
	if err := store.Create(rec, &spec); err != nil {
		t.Fatal(err)
	}
}

func TestJanitorQuarantinesTruncatedManifest(t *testing.T) {
	dir := t.TempDir()
	store, err := NewJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	aln := testPhylipText(t, 7, 150, 5)
	corrupt, healthy := "j-aaaaaaaaaaaa", "j-bbbbbbbbbbbb"
	seedJobDir(t, store, corrupt, JobSpec{Tenant: "x", Alignment: aln, Options: JobOptions{Seed: 3, Jumbles: 2}})
	seedJobDir(t, store, healthy, JobSpec{Tenant: "x", Alignment: aln, Options: JobOptions{Seed: 7}})

	// The corrupt job's restart manifest stops mid-block, as if the
	// process died inside a non-atomic write.
	truncated := "fastdnaml-manifest v1\njumbles 2\nbegin jumble 0\nseed 3\n"
	if err := os.WriteFile(store.ManifestPath(corrupt), []byte(truncated), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := NewServer(Options{DataDir: dir, Fleet: FleetOptions{Workers: 1}, Logf: t.Logf})
	if err != nil {
		t.Fatalf("a truncated manifest must not stop the daemon: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })

	// The damaged job is parked, error attached, never scheduled.
	rec, err := s.Get(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateQuarantined {
		t.Fatalf("corrupt job state %s, want quarantined", rec.State)
	}
	if !strings.Contains(rec.Error, "truncated") {
		t.Errorf("quarantine error %q does not name the cause", rec.Error)
	}
	if _, _, err := s.Result(corrupt); err == nil {
		t.Error("quarantined job served a result")
	}
	if s.met.quarantined.Value() != 1 {
		t.Errorf("quarantined counter = %v", s.met.quarantined.Value())
	}

	// Its neighbor resumes and completes normally.
	waitJob(t, s, healthy, StateDone)

	// Quarantine survives a further restart (still visible, still
	// parked).
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := NewServer(Options{DataDir: dir, Fleet: FleetOptions{Workers: 1}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s2.Close() })
	rec, err = s2.Get(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateQuarantined {
		t.Errorf("after restart, corrupt job state %s", rec.State)
	}
}

func TestJanitorQuarantinesUnreadableSpec(t *testing.T) {
	dir := t.TempDir()
	store, err := NewJobStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	id := "j-cccccccccccc"
	seedJobDir(t, store, id, JobSpec{Alignment: testPhylipText(t, 6, 100, 5)})
	if err := os.WriteFile(store.Dir(id)+"/spec.json", []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(Options{DataDir: dir, Fleet: FleetOptions{Workers: 1}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	rec, err := s.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != StateQuarantined {
		t.Errorf("state %s, want quarantined", rec.State)
	}
}
