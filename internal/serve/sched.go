package serve

import (
	"fmt"
	"sort"
	"time"
)

// Weighted-fair tenant scheduler with admission control. Each tenant
// owns a priority-ordered FIFO; across tenants the scheduler runs
// stride scheduling: a tenant's pass advances by 1/weight per job it
// gets to run, and the next job always comes from the tenant with the
// minimum pass. A weight-3 tenant therefore drains three jobs for every
// one a weight-1 tenant drains, but no backlog — however deep — can
// starve anyone. Admission is capacity-based: a full global queue or a
// tenant over its quota is rejected at submit time (HTTP 429) rather
// than accepted and left to rot.

// AdmissionError reports a rejected submission and how long the client
// should wait before retrying.
type AdmissionError struct {
	// Reason is "queue_full" or "tenant_quota" (the metrics label).
	Reason string
	// RetryAfter is the suggested backoff, surfaced as the HTTP
	// Retry-After header.
	RetryAfter time.Duration
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("serve: admission rejected: %s (retry after %s)", e.Reason, e.RetryAfter)
}

// tenantQueue is one tenant's backlog plus its stride state. The entry
// persists after the queue drains so a chronically busy tenant cannot
// reset its pass by going briefly idle.
type tenantQueue struct {
	weight float64
	pass   float64
	jobs   []*job
}

// scheduler is not self-locking: the Server calls it under its own
// mutex, which also covers the job map the queue entries point into.
type scheduler struct {
	maxQueued    int
	maxPerTenant int
	weights      map[string]float64
	tenants      map[string]*tenantQueue
	depth        int
	// vtime tracks the global virtual time: the pass of the last tenant
	// scheduled. Newly arriving tenants start at it, so they compete
	// from "now" instead of replaying the whole past.
	vtime float64
}

func newScheduler(maxQueued, maxPerTenant int, weights map[string]float64) *scheduler {
	return &scheduler{
		maxQueued:    maxQueued,
		maxPerTenant: maxPerTenant,
		weights:      weights,
		tenants:      map[string]*tenantQueue{},
	}
}

func (s *scheduler) tenant(name string) *tenantQueue {
	tq := s.tenants[name]
	if tq == nil {
		w := s.weights[name]
		if w <= 0 {
			w = 1
		}
		tq = &tenantQueue{weight: w, pass: s.vtime}
		s.tenants[name] = tq
	}
	return tq
}

// push admits j, or rejects it with an *AdmissionError. force bypasses
// the caps — recovery uses it so a restart never drops jobs the
// previous process had already admitted.
func (s *scheduler) push(j *job, force bool) error {
	tq := s.tenant(j.rec.Tenant)
	if !force {
		if s.depth >= s.maxQueued {
			return &AdmissionError{Reason: "queue_full", RetryAfter: 5 * time.Second}
		}
		if len(tq.jobs) >= s.maxPerTenant {
			return &AdmissionError{Reason: "tenant_quota", RetryAfter: 10 * time.Second}
		}
	}
	// Insert in priority order, FIFO within equal priority.
	i := sort.Search(len(tq.jobs), func(i int) bool {
		return tq.jobs[i].rec.Priority < j.rec.Priority
	})
	tq.jobs = append(tq.jobs, nil)
	copy(tq.jobs[i+1:], tq.jobs[i:])
	tq.jobs[i] = j
	s.depth++
	return nil
}

// next pops the job the fleet should run now, or nil when the queue is
// empty: the highest-priority job of the minimum-pass tenant.
func (s *scheduler) next() *job {
	var (
		bestName string
		best     *tenantQueue
	)
	for name, tq := range s.tenants {
		if len(tq.jobs) == 0 {
			continue
		}
		// Tie-break on name so the schedule is deterministic.
		if best == nil || tq.pass < best.pass || (tq.pass == best.pass && name < bestName) {
			bestName, best = name, tq
		}
	}
	if best == nil {
		return nil
	}
	j := best.jobs[0]
	copy(best.jobs, best.jobs[1:])
	best.jobs = best.jobs[:len(best.jobs)-1]
	s.vtime = best.pass
	best.pass += 1 / best.weight
	s.depth--
	return j
}

// remove deletes a queued job by id (cancelation), reporting whether it
// was found.
func (s *scheduler) remove(id string) bool {
	for _, tq := range s.tenants {
		for i, j := range tq.jobs {
			if j.rec.ID == id {
				copy(tq.jobs[i:], tq.jobs[i+1:])
				tq.jobs = tq.jobs[:len(tq.jobs)-1]
				s.depth--
				return true
			}
		}
	}
	return false
}

// depths reports the global and per-tenant queue depths for gauges and
// /status.
func (s *scheduler) depths() (int, map[string]int) {
	by := map[string]int{}
	for name, tq := range s.tenants {
		if len(tq.jobs) > 0 {
			by[name] = len(tq.jobs)
		}
	}
	return s.depth, by
}
