package serve

import (
	"strings"
	"testing"

	"repro/internal/seq"
	"repro/internal/simulate"
)

// testPhylipText renders a small simulated alignment as PHYLIP text,
// the form jobs are submitted in.
func testPhylipText(t *testing.T, taxa, sites int, seed int64) string {
	t.Helper()
	ds, err := simulate.New(simulate.Options{Taxa: taxa, Sites: sites, Seed: seed, MeanBranchLen: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := seq.WritePhylip(&b, ds.Alignment, 0); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestPrepareSpecKeys(t *testing.T) {
	aln := testPhylipText(t, 6, 120, 3)
	base := JobSpec{Tenant: "a", Alignment: aln, Options: JobOptions{Seed: 5, Jumbles: 2}}

	p1, err := prepareSpec(base)
	if err != nil {
		t.Fatal(err)
	}

	// Tenant and priority are scheduling attributes, not content: they
	// must not perturb either key.
	other := base
	other.Tenant, other.Priority = "b", 9
	p2, err := prepareSpec(other)
	if err != nil {
		t.Fatal(err)
	}
	if p1.ResultKey != p2.ResultKey || p1.PodKey != p2.PodKey {
		t.Error("tenant/priority changed a content key")
	}

	// Equivalent option spellings hash identically: explicit defaults
	// versus zero values.
	spelled := base
	spelled.Options = JobOptions{
		Model: "f84", TTRatio: 2.0, Jumbles: 2, Seed: 5,
		Extent: 1, FinalExtent: 1, Precision: "double", Engine: "cached",
	}
	p3, err := prepareSpec(spelled)
	if err != nil {
		t.Fatal(err)
	}
	if p1.ResultKey != p3.ResultKey {
		t.Errorf("default spelling changed the result key:\n%s\n%s", p1.ResultKey, p3.ResultKey)
	}

	// A different seed is a different result but the same dataset pod.
	seeded := base
	seeded.Options.Seed = 7
	p4, err := prepareSpec(seeded)
	if err != nil {
		t.Fatal(err)
	}
	if p4.ResultKey == p1.ResultKey {
		t.Error("seed change kept the result key")
	}
	if p4.PodKey != p1.PodKey {
		t.Error("seed change moved the job to another pod")
	}

	// A different model is a different pod.
	jc := base
	jc.Options.Model = "JC69"
	p5, err := prepareSpec(jc)
	if err != nil {
		t.Fatal(err)
	}
	if p5.PodKey == p1.PodKey {
		t.Error("model change kept the pod key")
	}
}

func TestPrepareSpecValidation(t *testing.T) {
	aln := testPhylipText(t, 6, 120, 3)
	bad := []JobSpec{
		{Alignment: ""},
		{Alignment: "not phylip"},
		{Alignment: aln, Options: JobOptions{Model: "nope"}},
		{Alignment: aln, Options: JobOptions{Jumbles: MaxJumbles + 1}},
		{Alignment: aln, Options: JobOptions{GTRRates: []float64{1, 2}}},
		{Alignment: aln, Options: JobOptions{Model: "GTR", GTRRates: []float64{1, 2, 3}}},
		{Alignment: aln, Options: JobOptions{Precision: "float16"}},
		{Alignment: aln, Options: JobOptions{Engine: "warp"}},
		{Alignment: aln, Options: JobOptions{Extent: -1}},
	}
	for i, sp := range bad {
		if _, err := prepareSpec(sp); err == nil {
			t.Errorf("spec %d: invalid spec accepted", i)
		}
	}
	// Defaults alone are a valid job.
	p, err := prepareSpec(JobSpec{Alignment: aln})
	if err != nil {
		t.Fatal(err)
	}
	if p.Spec.Tenant != "default" || p.Spec.Options.Jumbles != 1 || p.Spec.Options.Model != "F84" {
		t.Errorf("defaults not applied: %+v", p.Spec)
	}
}
