// Package serve is the fastdnamld daemon's core: a persistent
// multi-tenant inference service over the shared in-process worker
// fleet. Clients POST alignments and search options as jobs; the server
// admits them under per-tenant quotas, schedules them weighted-fair
// across tenants, runs them on warm dataset-keyed worker pods, streams
// progress, checkpoints every job through the fastdnaml-manifest v1
// restart format (a daemon restart resumes every incomplete job), and
// memoizes finished results in a content-addressed store so duplicate
// submissions never touch the fleet.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/likelihood"
	"repro/internal/mlsearch"
	"repro/internal/model"
	"repro/internal/seq"
)

// MaxJumbles bounds a single job's jumble count; larger analyses are
// submitted as several jobs.
const MaxJumbles = 1024

// JobOptions are the search parameters a client submits with an
// alignment. The zero value of every field selects the same default the
// fastdnaml CLI uses, so {"alignment": "..."} alone is a valid job.
type JobOptions struct {
	// Model selects the substitution model: F84 (default), JC69, K80,
	// HKY85, or GTR.
	Model string `json:"model,omitempty"`
	// TTRatio is the F84 transition/transversion ratio (default 2.0).
	TTRatio float64 `json:"ttratio,omitempty"`
	// Kappa is the K80/HKY85 transition rate multiplier (default 2.0).
	Kappa float64 `json:"kappa,omitempty"`
	// GTRRates are the six GTR exchangeabilities ac,ag,at,cg,ct,gt
	// (empty = all 1).
	GTRRates []float64 `json:"gtr_rates,omitempty"`
	// Jumbles is the number of random taxon orderings (default 1).
	Jumbles int `json:"jumbles,omitempty"`
	// Seed drives the orderings; even seeds are adjusted as in
	// fastDNAml.
	Seed int64 `json:"seed,omitempty"`
	// Extent is the local rearrangement extent (default 1).
	Extent int `json:"extent,omitempty"`
	// FinalExtent is the final pass extent (0 = same as Extent).
	FinalExtent int `json:"final_extent,omitempty"`
	// Adaptive enables the adaptive rearrangement extent.
	Adaptive bool `json:"adaptive,omitempty"`
	// Precision selects the CLV storage format: float64 (default) or
	// float32.
	Precision string `json:"precision,omitempty"`
	// Engine names the likelihood backend (default cached).
	Engine string `json:"engine,omitempty"`
	// SmoothMode selects the full-tree branch-smoothing algorithm:
	// sweep (default) or gradient.
	SmoothMode string `json:"smooth_mode,omitempty"`
}

// JobSpec is the POST /v1/jobs request body.
type JobSpec struct {
	// Tenant attributes the job for quotas, fair scheduling, and
	// metrics labels ("" maps to "default").
	Tenant string `json:"tenant,omitempty"`
	// Priority orders jobs within a tenant's queue: higher runs first.
	Priority int `json:"priority,omitempty"`
	// Alignment is the PHYLIP alignment text.
	Alignment string `json:"alignment"`
	// Options are the search parameters.
	Options JobOptions `json:"options"`
}

// preparedSpec is a validated, canonicalized job: the parsed alignment,
// the base search config (Seed/Jumble are set per jumble at run time),
// and the two content hashes the service schedules and memoizes by.
type preparedSpec struct {
	// Spec is the normalized spec: canonical alignment rendering and
	// every option defaulted, so equal jobs serialize identically.
	Spec  JobSpec
	Align *seq.Alignment
	Cfg   mlsearch.Config
	// ResultKey content-addresses the job's outcome. It covers
	// everything that determines the inferred trees — canonical
	// alignment, model, seed, jumbles, extents, precision, engine — and
	// deliberately excludes deployment knobs (workers, threads,
	// pipeline): results are bit-identical across those, so a re-run on
	// a differently sized fleet still hits the cache.
	ResultKey string
	// PodKey identifies the warm worker pod the job can run on. Worker
	// engines are dataset-bound (one alignment + model per fleet), so
	// the key covers the alignment, model, precision, and engine, but
	// not seeds or extents — jobs that differ only in search parameters
	// share a pod and its warm CLV caches.
	PodKey string
}

// canonicalModel maps the accepted model spellings to one canonical
// name, so "hky" and "HKY85" hash identically.
func canonicalModel(name string) (string, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "", "F84":
		return "F84", nil
	case "JC", "JC69":
		return "JC69", nil
	case "K80":
		return "K80", nil
	case "HKY", "HKY85":
		return "HKY85", nil
	case "GTR":
		return "GTR", nil
	}
	return "", fmt.Errorf("serve: unknown model %q (F84, JC69, K80, HKY85, GTR)", name)
}

// normalizeOptions fills every defaulted field with its canonical value
// and validates ranges, returning options that serialize identically
// for equal jobs.
func normalizeOptions(o JobOptions) (JobOptions, error) {
	m, err := canonicalModel(o.Model)
	if err != nil {
		return o, err
	}
	o.Model = m
	if o.TTRatio < 0 {
		return o, fmt.Errorf("serve: negative ttratio %g", o.TTRatio)
	}
	if o.TTRatio == 0 {
		o.TTRatio = model.DefaultTTRatio
	}
	if o.Kappa < 0 {
		return o, fmt.Errorf("serve: negative kappa %g", o.Kappa)
	}
	if o.Kappa == 0 {
		o.Kappa = 2.0
	}
	switch {
	case o.Model != "GTR":
		if len(o.GTRRates) != 0 {
			return o, fmt.Errorf("serve: gtr_rates given with model %s", o.Model)
		}
	case len(o.GTRRates) == 0:
		o.GTRRates = []float64{1, 1, 1, 1, 1, 1}
	case len(o.GTRRates) != 6:
		return o, fmt.Errorf("serve: gtr_rates needs 6 values, got %d", len(o.GTRRates))
	}
	if o.Jumbles < 0 || o.Jumbles > MaxJumbles {
		return o, fmt.Errorf("serve: jumbles %d outside [0, %d]", o.Jumbles, MaxJumbles)
	}
	if o.Jumbles == 0 {
		o.Jumbles = 1
	}
	o.Seed = mlsearch.NormalizeSeed(o.Seed)
	if o.Extent < 0 || o.FinalExtent < 0 {
		return o, fmt.Errorf("serve: negative rearrangement extent")
	}
	if o.Extent == 0 {
		o.Extent = 1
	}
	if o.FinalExtent == 0 {
		o.FinalExtent = o.Extent
	}
	prec, err := likelihood.ParsePrecision(o.Precision)
	if err != nil {
		return o, err
	}
	o.Precision = prec.String()
	eng, err := likelihood.ParseEngine(o.Engine)
	if err != nil {
		return o, err
	}
	o.Engine = eng
	smode, err := likelihood.ParseSmoothMode(o.SmoothMode)
	if err != nil {
		return o, err
	}
	o.SmoothMode = smode.String()
	return o, nil
}

// gtrRatesStruct converts the wire slice to the model's struct form.
func gtrRatesStruct(r []float64) model.GTRRates {
	if len(r) != 6 {
		return model.GTRRates{}
	}
	return model.GTRRates{AC: r[0], AG: r[1], AT: r[2], CG: r[3], CT: r[4], GT: r[5]}
}

// hashJSON is the service's content hash: SHA-256 over the stable JSON
// encoding of v (struct field order is fixed, so equal values produce
// equal digests).
func hashJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Only hashes plain structs of numbers and strings; Marshal
		// cannot fail on them.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// prepareSpec validates a submitted job end to end: parse the
// alignment, normalize the options, build the search config through
// core.Prepare (the same path the CLI uses), and derive the result and
// pod keys from the canonical forms.
func prepareSpec(sp JobSpec) (*preparedSpec, error) {
	if sp.Tenant == "" {
		sp.Tenant = "default"
	}
	if strings.TrimSpace(sp.Alignment) == "" {
		return nil, fmt.Errorf("serve: empty alignment")
	}
	a, err := seq.ReadPhylip(strings.NewReader(sp.Alignment))
	if err != nil {
		return nil, fmt.Errorf("serve: alignment: %w", err)
	}
	opts, err := normalizeOptions(sp.Options)
	if err != nil {
		return nil, err
	}
	sp.Options = opts

	cfg, _, err := core.Prepare(a, core.Options{
		ModelName:       opts.Model,
		TTRatio:         opts.TTRatio,
		Kappa:           opts.Kappa,
		GTRRates:        gtrRatesStruct(opts.GTRRates),
		Jumbles:         opts.Jumbles,
		Seed:            opts.Seed,
		RearrangeExtent: opts.Extent,
		FinalExtent:     opts.FinalExtent,
		AdaptiveExtent:  opts.Adaptive,
		Precision:       opts.Precision,
		Engine:          opts.Engine,
		SmoothMode:      opts.SmoothMode,
	})
	if err != nil {
		return nil, err
	}

	// Canonical alignment rendering: parse + rewrite collapses
	// whitespace and interleaving differences, so the same data always
	// hashes the same.
	var canon strings.Builder
	if err := seq.WritePhylip(&canon, a, 0); err != nil {
		return nil, err
	}
	sp.Alignment = canon.String()

	type podDoc struct {
		Alignment  string
		Model      string
		TTRatio    float64
		Kappa      float64
		GTRRates   []float64
		Precision  string
		Engine     string
		SmoothMode string
	}
	type resultDoc struct {
		Pod         podDoc
		Jumbles     int
		Seed        int64
		Extent      int
		FinalExtent int
		Adaptive    bool
	}
	pod := podDoc{
		Alignment:  sp.Alignment,
		Model:      opts.Model,
		TTRatio:    opts.TTRatio,
		Kappa:      opts.Kappa,
		GTRRates:   opts.GTRRates,
		Precision:  opts.Precision,
		Engine:     opts.Engine,
		SmoothMode: opts.SmoothMode,
	}
	return &preparedSpec{
		Spec:   sp,
		Align:  a,
		Cfg:    cfg,
		PodKey: hashJSON(pod),
		ResultKey: hashJSON(resultDoc{
			Pod:         pod,
			Jumbles:     opts.Jumbles,
			Seed:        opts.Seed,
			Extent:      opts.Extent,
			FinalExtent: opts.FinalExtent,
			Adaptive:    opts.Adaptive,
		}),
	}, nil
}
