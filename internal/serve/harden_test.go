package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// writeKeyFile drops a key file mapping each key to its tenant.
func writeKeyFile(t *testing.T, lines ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "keys")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

// doJSON sends a request with an optional bearer key and decodes the
// response body into out (when non-nil).
func doJSON(t *testing.T, method, url, key string, body []byte, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp
}

func TestAuthRequiredAndTenantScoping(t *testing.T) {
	keyA, keyB := "alpha-key-123456", "bravo-key-123456"
	auth, err := NewKeyAuth(writeKeyFile(t, "# test keys", keyA+" tenant-a", keyB+" tenant-b"))
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Options{Auth: auth})
	aln := testPhylipText(t, 6, 100, 7)
	body, _ := json.Marshal(JobSpec{Alignment: aln, Options: JobOptions{Seed: 3}})

	// Missing and unknown keys are 401 with a challenge.
	for _, key := range []string{"", "no-such-key-1234"} {
		resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", key, nil, nil)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("key %q: status %d, want 401", key, resp.StatusCode)
		}
		if resp.Header.Get("WWW-Authenticate") == "" {
			t.Errorf("key %q: 401 without WWW-Authenticate", key)
		}
	}

	// A submission's tenant comes from the key, not the body: even a
	// body claiming tenant-b is billed to the key's tenant-a.
	spoof, _ := json.Marshal(JobSpec{Tenant: "tenant-b", Alignment: aln, Options: JobOptions{Seed: 3}})
	var rec JobRecord
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", keyA, spoof, &rec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if rec.Tenant != "tenant-a" {
		t.Fatalf("spoofed tenant %q accepted, want tenant-a", rec.Tenant)
	}
	waitJob(t, s, rec.ID, StateDone)

	// Cross-tenant access reads as 404 on every job endpoint, so ids do
	// not leak across tenants; the owner still sees the job.
	for _, ep := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/" + rec.ID},
		{http.MethodGet, "/v1/jobs/" + rec.ID + "/events"},
		{http.MethodGet, "/v1/jobs/" + rec.ID + "/result"},
		{http.MethodDelete, "/v1/jobs/" + rec.ID},
	} {
		resp := doJSON(t, ep.method, ts.URL+ep.path, keyB, nil, nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s as tenant-b: status %d, want 404", ep.method, ep.path, resp.StatusCode)
		}
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+rec.ID, keyA, nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("owner get status %d, want 200", resp.StatusCode)
	}

	// Listing is tenant-scoped.
	var listA, listB struct{ Jobs []JobRecord }
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", keyA, nil, &listA)
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", keyB, nil, &listB)
	if len(listA.Jobs) != 1 || listA.Jobs[0].ID != rec.ID {
		t.Errorf("tenant-a list: %+v", listA.Jobs)
	}
	if len(listB.Jobs) != 0 {
		t.Errorf("tenant-b sees %d foreign jobs", len(listB.Jobs))
	}

	// 401s are counted by reason.
	var prom bytes.Buffer
	_ = s.reg.WritePrometheus(&prom)
	for _, want := range []string{
		`fdml_serve_auth_failures_total{reason="missing"} 1`,
		`fdml_serve_auth_failures_total{reason="unknown_key"} 1`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	_ = body
}

func TestKeyAuthReload(t *testing.T) {
	path := writeKeyFile(t, "old-key-12345678 tenant-a")
	auth, err := NewKeyAuth(path)
	if err != nil {
		t.Fatal(err)
	}
	if tenant, ok := auth.Lookup("old-key-12345678"); !ok || tenant != "tenant-a" {
		t.Fatalf("initial lookup = %q, %v", tenant, ok)
	}

	// Rotation: the old key stops working, the new one starts.
	if err := os.WriteFile(path, []byte("new-key-12345678 tenant-a\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if n, err := auth.Reload(); err != nil || n != 1 {
		t.Fatalf("reload = %d, %v", n, err)
	}
	if _, ok := auth.Lookup("old-key-12345678"); ok {
		t.Error("rotated-out key still resolves")
	}
	if tenant, ok := auth.Lookup("new-key-12345678"); !ok || tenant != "tenant-a" {
		t.Errorf("new key lookup = %q, %v", tenant, ok)
	}

	// A broken file keeps the previous key set in effect.
	if err := os.WriteFile(path, []byte("only-one-field\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := auth.Reload(); err == nil {
		t.Fatal("reload of a malformed file did not error")
	}
	if _, ok := auth.Lookup("new-key-12345678"); !ok {
		t.Error("failed reload dropped the working keys")
	}

	// Parse rejects duplicates and short keys outright.
	for _, bad := range []string{
		"dup-key-12345678 a\ndup-key-12345678 b",
		"short a",
		"",
	} {
		if _, err := parseKeyFile(strings.NewReader(bad)); err == nil {
			t.Errorf("parseKeyFile(%q) accepted", bad)
		}
	}
}

func TestRateLimiterBucket(t *testing.T) {
	l := newRateLimiter(1, 2)
	t0 := time.Now()
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("a", t0); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, wait := l.allow("a", t0)
	if ok {
		t.Fatal("third immediate request allowed past burst 2")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry-after %v, want (0, 1s]", wait)
	}
	// Tenants have independent buckets.
	if ok, _ := l.allow("b", t0); !ok {
		t.Error("tenant b starved by tenant a's bucket")
	}
	// One second refills one token.
	if ok, _ := l.allow("a", t0.Add(time.Second)); !ok {
		t.Error("refilled token denied")
	}
	if ok, _ := l.allow("a", t0.Add(time.Second)); ok {
		t.Error("second token appeared after one refill interval")
	}
}

func TestRateLimit429OverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Options{Rate: 0.001, Burst: 2})
	aln := testPhylipText(t, 6, 100, 7)
	submit := func(seed int64) []byte {
		b, _ := json.Marshal(JobSpec{Alignment: aln, Options: JobOptions{Seed: seed, Jumbles: 4}})
		return b
	}
	for i := 0; i < 2; i++ {
		resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "", submit(int64(3+2*i)), nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("burst submit %d: status %d, want 202", i, resp.StatusCode)
		}
	}
	var errBody map[string]string
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "", submit(99), &errBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit: status %d, want 429", resp.StatusCode)
	}
	if errBody["error"] != "rate_limited" {
		t.Errorf("429 body %v, want rate_limited", errBody)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive whole-second backoff", ra)
	}
	// GETs are not rate limited: polling a job must never 429.
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", "", nil, nil); resp.StatusCode != http.StatusOK {
		t.Errorf("list status %d after rate limit hit", resp.StatusCode)
	}
}

func TestSubmitOversizedBodyIs413(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	huge := append([]byte(`{"alignment":"`), bytes.Repeat([]byte("A"), maxBodyBytes+1024)...)
	huge = append(huge, []byte(`"}`)...)
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "", huge, nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

func TestSubmitInternalErrorIs500(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	spec := JobSpec{Alignment: testPhylipText(t, 6, 100, 7), Options: JobOptions{Seed: 3}}
	prep, err := prepareSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	// A corrupt result store entry is a service-side failure: the
	// submission is well-formed, so 400 would blame the wrong party.
	if err := os.WriteFile(filepath.Join(s.results.dir, prep.ResultKey+".json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(spec)
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "", body, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("corrupt-store submit: status %d, want 500", resp.StatusCode)
	}
	// Malformed requests are still the client's fault.
	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "", []byte(`{"alignment":"not phylip"}`), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad alignment: status %d, want 400", resp.StatusCode)
	}
}

func TestGCEvictsTerminalJobsButKeepsResults(t *testing.T) {
	s, ts := newTestServer(t, Options{JobTTL: time.Minute, GCInterval: time.Hour})
	spec := JobSpec{Tenant: "a", Alignment: testPhylipText(t, 6, 100, 7), Options: JobOptions{Seed: 3}}
	body, _ := json.Marshal(spec)
	var rec JobRecord
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "", body, &rec)
	waitJob(t, s, rec.ID, StateDone)

	// Within the TTL nothing is evicted.
	s.runGC(time.Now())
	if _, err := s.Get(rec.ID); err != nil {
		t.Fatalf("fresh terminal job evicted: %v", err)
	}

	// Past the TTL the job leaves memory and disk.
	s.runGC(time.Now().Add(2 * time.Minute))
	if _, err := s.Get(rec.ID); err == nil {
		t.Fatal("expired job still resolves in memory")
	}
	if _, statErr := os.Stat(s.store.Dir(rec.ID)); !os.IsNotExist(statErr) {
		t.Fatalf("expired job directory still on disk: %v", statErr)
	}
	if resp := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+rec.ID, "", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job answers %d, want 404", resp.StatusCode)
	}
	if got := s.met.gcJobs.Value(); got != 1 {
		t.Errorf("fdml_gc_jobs_evicted_total = %v, want 1", got)
	}

	// The result outlives the job record (no ResultTTL set), so the
	// same spec resubmitted is still a zero-dispatch cache hit.
	before := s.reg.Counter("fdml_dispatch_total", "Tasks handed to workers.").Value()
	var dup JobRecord
	resp := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "", body, &dup)
	if resp.StatusCode != http.StatusOK || !dup.CacheHit {
		t.Fatalf("post-GC resubmit: status %d, record %+v", resp.StatusCode, dup)
	}
	if after := s.reg.Counter("fdml_dispatch_total", "Tasks handed to workers.").Value(); after != before {
		t.Errorf("post-GC cache hit dispatched %v tasks", after-before)
	}

	// A result TTL eventually clears the CAS too, and then the same
	// spec is a fresh computation.
	s.opt.ResultTTL = time.Minute
	s.runGC(time.Now().Add(24 * time.Hour))
	if n := s.met.gcResults.With("ttl").Value(); n < 1 {
		t.Fatalf("fdml_gc_results_evicted_total{ttl} = %v, want >= 1", n)
	}
	var fresh JobRecord
	resp = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "", body, &fresh)
	if resp.StatusCode != http.StatusAccepted || fresh.CacheHit {
		t.Fatalf("post-result-GC resubmit: status %d, record %+v", resp.StatusCode, fresh)
	}
	waitJob(t, s, fresh.ID, StateDone)
}

func TestGCResultByteBudgetLRU(t *testing.T) {
	s, _ := newTestServer(t, Options{MaxResultsBytes: 1, GCInterval: time.Hour})
	pad := strings.Repeat("x", 4096)
	now := time.Now()
	keys := make([]string, 3)
	for i := range keys {
		keys[i] = hashJSON(i)
		if err := s.results.Put(&JobResult{Key: keys[i], BestNewick: pad}); err != nil {
			t.Fatal(err)
		}
		// Oldest-used first: keys[0] is the coldest entry.
		p, _ := s.results.path(keys[i])
		mt := now.Add(time.Duration(i-10) * time.Minute)
		if err := os.Chtimes(p, mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	s.runGC(now)
	// Budget 1 byte: everything must go, coldest first; the gauge lands
	// at the surviving size (0).
	for i, key := range keys {
		if _, ok, _ := s.results.Get(key); ok {
			t.Errorf("result %d survived a 1-byte budget", i)
		}
	}
	if n := s.met.gcResults.With("bytes").Value(); n != 3 {
		t.Errorf("fdml_gc_results_evicted_total{bytes} = %v, want 3", n)
	}
	if g := s.met.gcResultBytes.Value(); g != 0 {
		t.Errorf("fdml_gc_result_store_bytes = %v, want 0", g)
	}
}

// TestGCThenRestartDoesNotResurrect is the GC-vs-janitor interaction:
// an evicted job must not reappear (or quarantine) at the next boot,
// while an unexpired terminal job survives the restart with its
// finish time — and therefore its remaining TTL — intact.
func TestGCThenRestartDoesNotResurrect(t *testing.T) {
	dir := t.TempDir()
	aln := testPhylipText(t, 6, 100, 7)
	s1, err := NewServer(Options{DataDir: dir, JobTTL: time.Minute, GCInterval: time.Hour, Fleet: FleetOptions{Workers: 1}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	evicted, sErr := s1.Submit(JobSpec{Alignment: aln, Options: JobOptions{Seed: 3}})
	if sErr != nil {
		t.Fatal(sErr)
	}
	kept, sErr := s1.Submit(JobSpec{Alignment: aln, Options: JobOptions{Seed: 5}})
	if sErr != nil {
		t.Fatal(sErr)
	}
	waitJob(t, s1, evicted.ID, StateDone)
	keptDone := waitJob(t, s1, kept.ID, StateDone)

	// Age only the first job past the TTL, then GC and restart.
	doneRec, _ := s1.Get(evicted.ID)
	s1.mu.Lock()
	j := s1.jobs[evicted.ID]
	s1.mu.Unlock()
	j.mu.Lock()
	j.rec.Finished = doneRec.Finished.Add(-2 * time.Minute)
	j.mu.Unlock()
	s1.runGC(time.Now())
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewServer(Options{DataDir: dir, JobTTL: time.Minute, GCInterval: time.Hour, Fleet: FleetOptions{Workers: 1}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s2.Close() })
	if _, err := s2.Get(evicted.ID); err == nil {
		t.Fatal("janitor resurrected a GC'd job")
	}
	if n := s2.met.quarantined.Value(); n != 0 {
		t.Fatalf("restart quarantined %v jobs after a clean GC", n)
	}
	if n := s2.met.resumed.Value(); n != 0 {
		t.Fatalf("restart resumed %v jobs; both were terminal", n)
	}
	rec, err := s2.Get(kept.ID)
	if err != nil {
		t.Fatal("unexpired terminal job lost across restart")
	}
	if !rec.Finished.Equal(keptDone.Finished) {
		t.Errorf("finish time drifted across restart: %v != %v", rec.Finished, keptDone.Finished)
	}
	// Its TTL clock kept running: the second life's GC evicts it.
	s2.runGC(time.Now().Add(2 * time.Minute))
	if _, err := s2.Get(kept.ID); err == nil {
		t.Error("second-life GC did not evict the expired job")
	}
}

func TestFleetDoubleReleaseGuard(t *testing.T) {
	prep, err := prepareSpec(JobSpec{Alignment: testPhylipText(t, 6, 100, 7), Options: JobOptions{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFleet(FleetOptions{Workers: 1, IdleTTL: time.Minute}, obs.NewRegistry(), nil)
	var logged bool
	f.logf = func(format string, args ...any) {
		logged = true
		t.Logf(format, args...)
	}
	p, err := f.Acquire(prep.PodKey, prep.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Release(p)
	f.Release(p) // the bug: this used to drive refs to -1
	if !logged {
		t.Error("double release not logged")
	}
	f.mu.Lock()
	refs := p.refs
	f.mu.Unlock()
	if refs != 0 {
		t.Fatalf("refs = %d after double release, want 0", refs)
	}

	// With the count clamped, a re-acquired pod is held (refs 1), so an
	// aggressive reap pass must not tear it down under the job.
	if p2, err := f.Acquire(prep.PodKey, prep.Cfg); err != nil {
		t.Fatal(err)
	} else if p2 != p {
		t.Fatal("re-acquire built a new pod; warm pod lost")
	}
	if n := f.Reap(time.Now().Add(time.Hour)); n != 0 {
		t.Fatalf("reaper tore down %d held pod(s)", n)
	}
	f.Release(p)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// gatedWriter blocks its first Write until the gate opens, simulating a
// follower that cannot keep up with the event stream.
type gatedWriter struct {
	gate    chan struct{}
	entered chan struct{}
	once    sync.Once

	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *gatedWriter) Header() http.Header { return http.Header{} }
func (w *gatedWriter) WriteHeader(int)     {}
func (w *gatedWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.entered) })
	<-w.gate
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *gatedWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestEventStreamSlowFollowerGetsTerminalState pins the stream
// contract: even when the hub drops events on a saturated follower —
// including the terminal "state" line itself — the NDJSON stream still
// ends with the job's terminal state, synthesized from the record.
func TestEventStreamSlowFollowerGetsTerminalState(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	j := &job{
		rec:  JobRecord{ID: "j-abcdefabcdef", Tenant: "a", State: StateRunning},
		stop: make(chan struct{}),
		hub:  newEventHub(),
	}

	w := &gatedWriter{gate: make(chan struct{}), entered: make(chan struct{})}
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		s.streamEvents(w, nil, j)
	}()

	// First event reaches the follower, whose Write then stalls.
	j.hub.publish(Event{Type: "progress", Jumble: 0})
	<-w.entered

	// Flood well past the follower channel's capacity, then finish the
	// job: the terminal state event is guaranteed to be dropped because
	// the stalled follower never drained its channel.
	for i := 0; i < 300; i++ {
		j.hub.publish(Event{Type: "progress", TaxaInTree: i})
	}
	j.mu.Lock()
	j.rec.State = StateFailed
	j.rec.Error = "engine exploded"
	j.rec.Finished = time.Now()
	j.mu.Unlock()
	j.hub.publish(Event{Type: "state", State: StateFailed, Error: "engine exploded"})
	j.hub.close()

	close(w.gate)
	select {
	case <-streamDone:
	case <-time.After(10 * time.Second):
		t.Fatal("stream never ended after hub close")
	}

	lines := strings.Split(strings.TrimSpace(w.String()), "\n")
	if len(lines) >= 302 {
		t.Fatalf("follower received all %d events; the drop path was not exercised", len(lines))
	}
	var last Event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("bad final line %q: %v", lines[len(lines)-1], err)
	}
	if last.Type != "state" || last.State != StateFailed || last.Error != "engine exploded" {
		t.Fatalf("final line %+v, want synthesized failed state", last)
	}
}

// TestEventStreamEndsWithTerminalStateE2E asserts the contract over
// real HTTP for a normally-paced client.
func TestEventStreamEndsWithTerminalStateE2E(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	body, _ := json.Marshal(JobSpec{Alignment: testPhylipText(t, 6, 100, 7), Options: JobOptions{Seed: 3}})
	var rec JobRecord
	doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", "", body, &rec)
	waitJob(t, s, rec.ID, StateDone)
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events", ts.URL, rec.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stream bytes.Buffer
	if _, err := stream.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(stream.String()), "\n")
	var last Event
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Type != "state" || last.State != StateDone {
		t.Fatalf("stream ended with %+v, want done state", last)
	}
}
