package viewer

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/tree"
)

// ASCII rendering: a terminal phylogram for quick inspection (the paper's
// Figure 1 equivalent without graphics hardware). The unrooted tree is
// displayed rooted at the attachment of its first taxon, branch lengths
// drawn proportionally as runs of '-'.

// ASCIIOptions control text rendering.
type ASCIIOptions struct {
	// Width is the maximum drawing width in characters (default 72).
	Width int
	// ShowLengths appends ":length" to each label.
	ShowLengths bool
}

// ASCII renders the tree as text, one leaf per line.
func ASCII(t *tree.Tree, opt ASCIIOptions) (string, error) {
	if err := t.Validate(false); err != nil {
		return "", err
	}
	if opt.Width <= 20 {
		opt.Width = 72
	}
	PivotCanonical(t)

	taxa := t.TaxaInTree()
	if len(taxa) == 0 {
		return "", fmt.Errorf("viewer: no leaves")
	}
	anchor := t.LeafByTaxon(taxa[0])
	root := anchor
	if anchor.Degree() > 0 {
		root = anchor.Nbr[0]
	}

	// Depth (cumulative length) per node; longest path sets the scale.
	depth := map[int]float64{root.ID: 0}
	maxDepth := 0.0
	var measure func(n, parent *tree.Node)
	measure = func(n, parent *tree.Node) {
		for _, m := range n.Nbr {
			if m == parent {
				continue
			}
			depth[m.ID] = depth[n.ID] + m.LenTo(n)
			maxDepth = math.Max(maxDepth, depth[m.ID])
			measure(m, n)
		}
	}
	measure(root, nil)
	if maxDepth <= 0 {
		maxDepth = 1
	}
	labelSpace := 0
	for _, ti := range taxa {
		if len(t.Taxa[ti]) > labelSpace {
			labelSpace = len(t.Taxa[ti])
		}
	}
	if opt.ShowLengths {
		labelSpace += 7 // ":0.1234"
	}
	drawWidth := opt.Width - labelSpace - 2
	if drawWidth < 10 {
		drawWidth = 10
	}
	col := func(n *tree.Node) int {
		return int(depth[n.ID] / maxDepth * float64(drawWidth-1))
	}

	// Assign each leaf a row (in pivot order); internal nodes sit at the
	// mean of their children's rows.
	row := map[int]int{}
	nextRow := 0
	var assign func(n, parent *tree.Node) int
	assign = func(n, parent *tree.Node) int {
		isTip := true
		var childRows []int
		for _, m := range n.Nbr {
			if m != parent {
				isTip = false
				childRows = append(childRows, assign(m, n))
			}
		}
		if isTip {
			row[n.ID] = nextRow
			nextRow++
			return row[n.ID]
		}
		sort.Ints(childRows)
		row[n.ID] = (childRows[0] + childRows[len(childRows)-1]) / 2
		return row[n.ID]
	}
	assign(root, nil)

	grid := make([][]byte, nextRow)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	set := func(r, c int, ch byte) {
		if r >= 0 && r < len(grid) && c >= 0 && c < opt.Width {
			grid[r][c] = ch
		}
	}
	// Two passes: vertical connectors first, then horizontal runs and
	// labels on top, so crossing verticals never cut a branch line.
	var drawVert func(n, parent *tree.Node)
	drawVert = func(n, parent *tree.Node) {
		for _, m := range n.Nbr {
			if m == parent {
				continue
			}
			c0 := col(n)
			lo, hi := row[n.ID], row[m.ID]
			if lo > hi {
				lo, hi = hi, lo
			}
			for r := lo; r <= hi; r++ {
				set(r, c0, '|')
			}
			drawVert(m, n)
		}
	}
	var drawHoriz func(n, parent *tree.Node)
	drawHoriz = func(n, parent *tree.Node) {
		for _, m := range n.Nbr {
			if m == parent {
				continue
			}
			c0, c1 := col(n), col(m)
			r1 := row[m.ID]
			set(r1, c0, '+')
			for c := c0 + 1; c <= c1; c++ {
				set(r1, c, '-')
			}
			if m.Leaf() {
				label := t.Taxa[m.Taxon]
				if opt.ShowLengths {
					label = fmt.Sprintf("%s:%.4f", label, m.LenTo(n))
				}
				for i := 0; i < len(label); i++ {
					set(r1, c1+2+i, label[i])
				}
			}
			drawHoriz(m, n)
		}
	}
	drawVert(root, nil)
	drawHoriz(root, nil)
	set(row[root.ID], 0, '+')

	var b strings.Builder
	for _, line := range grid {
		b.WriteString(strings.TrimRight(string(line), " "))
		b.WriteByte('\n')
	}
	return b.String(), nil
}
