package viewer

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/tree"
)

// Scene arranges multiple tree layouts along a depth axis — the viewer's
// presentation of "the growth and refinement of the tree as taxa are
// added and rearranged" (one layout per iteration, time axis) or of the
// final trees from multiple runs "arranged for direct visual comparison"
// (§4). The planar-3D embedding places tree k at depth k*Spacing and
// projects obliquely to 2D for SVG output.
type Scene struct {
	// Layouts are the member trees' embeddings, in depth order.
	Layouts []*Layout
	// Labels annotate each layout (e.g. "iteration 12" or "jumble 3").
	Labels []string
	// Spacing is the depth distance between consecutive trees.
	Spacing float64
}

// NewScene lays out trees (after pivot canonicalization, so visual
// differences are topological differences) and stacks them.
func NewScene(trees []*tree.Tree, labels []string) (*Scene, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("viewer: empty scene")
	}
	sc := &Scene{Spacing: 1.0}
	for i, t := range trees {
		PivotCanonical(t)
		lay, err := EqualAngle(t)
		if err != nil {
			return nil, fmt.Errorf("viewer: tree %d: %w", i, err)
		}
		sc.Layouts = append(sc.Layouts, lay)
		label := fmt.Sprintf("tree %d", i+1)
		if labels != nil && i < len(labels) {
			label = labels[i]
		}
		sc.Labels = append(sc.Labels, label)
	}
	return sc, nil
}

// project maps a (layout index, planar point) to the oblique 2D screen.
func (s *Scene) project(k int, p Point2) Point2 {
	z := float64(k) * s.Spacing
	return Point2{X: p.X + 0.45*z, Y: p.Y + 0.22*z}
}

// SVGOptions control rendering.
type SVGOptions struct {
	// Width is the image width in pixels (height follows the aspect
	// ratio). Default 900.
	Width int
	// TraceTaxa lists taxon indices to connect across trees with
	// colored polylines (§4's tracing facility).
	TraceTaxa []int
	// LeafLabels draws taxon names at leaves (default on for <= 60
	// leaves per tree).
	LeafLabels bool
}

// traceColors cycles for traced taxa.
var traceColors = []string{"#d62728", "#1f77b4", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf"}

// SVG renders the scene.
func (s *Scene) SVG(opt SVGOptions) string {
	if opt.Width <= 0 {
		opt.Width = 900
	}
	// Gather projected geometry.
	type line struct{ a, b Point2 }
	var lines []line
	type leafMark struct {
		p     Point2
		label string
	}
	var leaves []leafMark
	traces := map[int][]Point2{}

	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	grow := func(p Point2) {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}

	for k, lay := range s.Layouts {
		for _, e := range lay.Tree.Edges() {
			a := s.project(k, lay.Pos[e.A.ID])
			b := s.project(k, lay.Pos[e.B.ID])
			lines = append(lines, line{a, b})
			grow(a)
			grow(b)
		}
		for _, n := range lay.Tree.Nodes {
			if n == nil || !n.Leaf() {
				continue
			}
			p := s.project(k, lay.Pos[n.ID])
			leaves = append(leaves, leafMark{p, lay.Tree.Taxa[n.Taxon]})
		}
		for _, taxon := range opt.TraceTaxa {
			if leaf := lay.Tree.LeafByTaxon(taxon); leaf != nil {
				traces[taxon] = append(traces[taxon], s.project(k, lay.Pos[leaf.ID]))
			}
		}
	}
	if minX > maxX {
		return "<svg xmlns=\"http://www.w3.org/2000/svg\"/>"
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	const margin = 30.0
	w := float64(opt.Width)
	scale := (w - 2*margin) / spanX
	h := spanY*scale + 2*margin
	sx := func(x float64) float64 { return margin + (x-minX)*scale }
	sy := func(y float64) float64 { return h - margin - (y-minY)*scale }

	// Emit geometry in coordinate order so equal scenes produce equal
	// documents regardless of internal node numbering.
	sort.Slice(lines, func(i, j int) bool {
		a, b := lines[i], lines[j]
		if a.a.X != b.a.X {
			return a.a.X < b.a.X
		}
		if a.a.Y != b.a.Y {
			return a.a.Y < b.a.Y
		}
		if a.b.X != b.b.X {
			return a.b.X < b.b.X
		}
		return a.b.Y < b.b.Y
	})
	sort.Slice(leaves, func(i, j int) bool {
		if leaves[i].label != leaves[j].label {
			return leaves[i].label < leaves[j].label
		}
		return leaves[i].p.X < leaves[j].p.X
	})

	var b strings.Builder
	fmt.Fprintf(&b, "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n", w, h, w, h)
	b.WriteString("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n")
	for _, ln := range lines {
		fmt.Fprintf(&b, "<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" y2=\"%.2f\" stroke=\"#444\" stroke-width=\"1\"/>\n",
			sx(ln.a.X), sy(ln.a.Y), sx(ln.b.X), sy(ln.b.Y))
	}
	// Traces above the trees.
	keys := make([]int, 0, len(traces))
	for k := range traces {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for ti, taxon := range keys {
		pts := traces[taxon]
		color := traceColors[ti%len(traceColors)]
		var path strings.Builder
		for i, p := range pts {
			if i == 0 {
				fmt.Fprintf(&path, "M%.2f %.2f", sx(p.X), sy(p.Y))
			} else {
				fmt.Fprintf(&path, " L%.2f %.2f", sx(p.X), sy(p.Y))
			}
		}
		fmt.Fprintf(&b, "<path d=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"2\" stroke-dasharray=\"4 2\"/>\n", path.String(), color)
		for _, p := range pts {
			fmt.Fprintf(&b, "<circle cx=\"%.2f\" cy=\"%.2f\" r=\"3.5\" fill=\"%s\"/>\n", sx(p.X), sy(p.Y), color)
		}
	}
	if opt.LeafLabels {
		for _, lm := range leaves {
			fmt.Fprintf(&b, "<text x=\"%.2f\" y=\"%.2f\" font-size=\"9\" fill=\"#222\">%s</text>\n",
				sx(lm.p.X)+3, sy(lm.p.Y)-2, xmlEscape(lm.label))
		}
	}
	// Scene labels along the depth axis.
	for k, label := range s.Labels {
		p := s.project(k, Point2{0, 0})
		fmt.Fprintf(&b, "<text x=\"%.2f\" y=\"%.2f\" font-size=\"11\" fill=\"#888\">%s</text>\n",
			sx(p.X), sy(p.Y)+14, xmlEscape(label))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", "\"", "&quot;")
	return r.Replace(s)
}

// TraceReport summarizes where traced taxa sit in each tree: the taxon's
// nearest named neighbors, letting a user follow a taxon's placement
// across trees without graphics.
func TraceReport(trees []*tree.Tree, taxa []int) (string, error) {
	if len(trees) == 0 {
		return "", fmt.Errorf("viewer: no trees to trace")
	}
	var b strings.Builder
	for _, taxon := range taxa {
		if taxon < 0 || taxon >= len(trees[0].Taxa) {
			return "", fmt.Errorf("viewer: taxon index %d out of range", taxon)
		}
		fmt.Fprintf(&b, "trace %s:\n", trees[0].Taxa[taxon])
		for i, t := range trees {
			leaf := t.LeafByTaxon(taxon)
			if leaf == nil {
				fmt.Fprintf(&b, "  tree %d: absent\n", i+1)
				continue
			}
			sibs := nearestTaxa(leaf, 3)
			names := make([]string, len(sibs))
			for j, s := range sibs {
				names[j] = t.Taxa[s]
			}
			fmt.Fprintf(&b, "  tree %d: nearest %s\n", i+1, strings.Join(names, ", "))
		}
	}
	return b.String(), nil
}

// nearestTaxa returns up to k taxon indices closest (in edges) to leaf,
// excluding the leaf itself.
func nearestTaxa(leaf *tree.Node, k int) []int {
	var out []int
	type item struct {
		n, parent *tree.Node
	}
	queue := []item{{leaf.Nbr[0], leaf}}
	for len(queue) > 0 && len(out) < k {
		cur := queue[0]
		queue = queue[1:]
		if cur.n.Leaf() {
			out = append(out, cur.n.Taxon)
			continue
		}
		for _, m := range cur.n.Nbr {
			if m != cur.parent {
				queue = append(queue, item{m, cur.n})
			}
		}
	}
	sort.Ints(out)
	return out
}
