// Package viewer reproduces the substance of the paper's 3D tree viewer
// (§4): planar layouts of unrooted phylogenies, arrangement of many trees
// along a comparison/time axis, tracing of selected taxa across trees,
// and subtree pivoting that canonicalizes branch order so that trees
// which only *look* different (reversed branch orderings) render
// identically. The display surface is SVG and plain text rather than Open
// Inventor; the geometry and tree logic are the viewer's substance.
package viewer

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tree"
)

// Point2 is a planar coordinate.
type Point2 struct{ X, Y float64 }

// Layout is a planar embedding of one tree: a position for every node.
type Layout struct {
	// Tree is the laid-out tree.
	Tree *tree.Tree
	// Pos maps node IDs to coordinates.
	Pos map[int]Point2
}

// EqualAngle computes the classic equal-angle layout of an unrooted
// tree: each subtree receives an angular wedge proportional to its leaf
// count, and every branch is drawn at its length in the wedge's bisecting
// direction. Branch lengths below a small minimum render at the minimum
// so zero-length branches stay visible.
func EqualAngle(t *tree.Tree) (*Layout, error) {
	if err := t.Validate(false); err != nil {
		return nil, err
	}
	lay := &Layout{Tree: t, Pos: map[int]Point2{}}
	root := t.AnyNode()
	if leavesBelowCount(root, nil) == 0 {
		return nil, fmt.Errorf("viewer: tree has no leaves")
	}
	const minLen = 1e-4
	lay.Pos[root.ID] = Point2{0, 0}
	var place func(n, parent *tree.Node, from Point2, lo, hi float64)
	place = func(n, parent *tree.Node, from Point2, lo, hi float64) {
		below := leavesBelowCount(n, parent)
		if below == 0 {
			return
		}
		angle := lo
		for _, child := range n.Nbr {
			if child == parent {
				continue
			}
			span := (hi - lo) * float64(leavesBelowCount(child, n)) / float64(below)
			mid := angle + span/2
			ln := child.LenTo(n)
			if ln < minLen {
				ln = minLen
			}
			p := Point2{from.X + ln*math.Cos(mid), from.Y + ln*math.Sin(mid)}
			lay.Pos[child.ID] = p
			place(child, n, p, angle, angle+span)
			angle += span
		}
	}
	place(root, nil, Point2{0, 0}, 0, 2*math.Pi)
	return lay, nil
}

// leavesBelowCount counts leaves in the subtree at n away from parent.
// A leaf used as the traversal root counts itself.
func leavesBelowCount(n, parent *tree.Node) int {
	c := 0
	if n.Leaf() {
		c = 1
	}
	for _, m := range n.Nbr {
		if m != parent {
			c += leavesBelowCount(m, n)
		}
	}
	return c
}

// Bounds returns the layout's bounding box.
func (l *Layout) Bounds() (minX, minY, maxX, maxY float64) {
	first := true
	for _, p := range l.Pos {
		if first {
			minX, maxX, minY, maxY = p.X, p.X, p.Y, p.Y
			first = false
			continue
		}
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	return
}

// PivotCanonical reorders every node's neighbor list so subtrees appear
// in order of their smallest contained taxon — the viewer's "pivot a
// subtree in order to visually distinguish solutions that are
// topologically different from those that only appear different because
// of reversed branch orderings" (§4). Two trees with the same topology
// render identically after pivoting.
func PivotCanonical(t *tree.Tree) {
	root := t.AnyNode()
	if root == nil {
		return
	}
	minTaxon := map[[2]int]int{}
	var annotate func(n, parent *tree.Node) int
	annotate = func(n, parent *tree.Node) int {
		min := math.MaxInt32
		if n.Leaf() {
			min = n.Taxon
		}
		for _, m := range n.Nbr {
			if m == parent {
				continue
			}
			if v := annotate(m, n); v < min {
				min = v
			}
		}
		minTaxon[dirKey(n, parent)] = min
		return min
	}
	annotate(root, nil)
	// Reorder each node's neighbors: the parent direction first (stable
	// anchor), then children by ascending minimum taxon.
	var reorder func(n, parent *tree.Node)
	reorder = func(n, parent *tree.Node) {
		type entry struct {
			node *tree.Node
			ln   float64
			min  int
		}
		var entries []entry
		for i, m := range n.Nbr {
			min := -1 // parent direction sorts first
			if m != parent {
				min = minTaxon[dirKey(m, n)]
			}
			entries = append(entries, entry{m, n.Len[i], min})
		}
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].min < entries[j].min })
		for i, e := range entries {
			n.Nbr[i] = e.node
			n.Len[i] = e.ln
		}
		for _, m := range n.Nbr {
			if m != parent {
				reorder(m, n)
			}
		}
	}
	reorder(root, nil)
}

// dirKey identifies the directed edge parent->n (parent nil = whole tree
// at the traversal root).
func dirKey(n, parent *tree.Node) [2]int {
	if parent == nil {
		return [2]int{n.ID, -1}
	}
	return [2]int{n.ID, parent.ID}
}
