package viewer

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/tree"
)

func taxaNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("t%02d", i)
	}
	return out
}

func TestEqualAnglePlacesEveryNode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr, _ := tree.RandomTree(taxaNames(12), rng, 0.1)
	lay, err := EqualAngle(tr)
	if err != nil {
		t.Fatal(err)
	}
	placed := 0
	for _, n := range tr.Nodes {
		if n == nil {
			continue
		}
		p, ok := lay.Pos[n.ID]
		if !ok {
			t.Errorf("node %d not placed", n.ID)
			continue
		}
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			t.Errorf("node %d at NaN", n.ID)
		}
		placed++
	}
	if placed != tr.NumNodes() {
		t.Errorf("placed %d of %d nodes", placed, tr.NumNodes())
	}
}

func TestEqualAngleEdgeLengthsRespected(t *testing.T) {
	// Drawn edge length must equal the branch length (within epsilon)
	// because each child sits at distance len along its wedge bisector.
	rng := rand.New(rand.NewSource(5))
	tr, _ := tree.RandomTree(taxaNames(8), rng, 0.2)
	lay, err := EqualAngle(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Edges() {
		a, b := lay.Pos[e.A.ID], lay.Pos[e.B.ID]
		drawn := math.Hypot(a.X-b.X, a.Y-b.Y)
		want := e.Length()
		if want < 1e-4 {
			want = 1e-4
		}
		if math.Abs(drawn-want) > 1e-9 {
			t.Errorf("edge %d-%d drawn %g, want %g", e.A.ID, e.B.ID, drawn, want)
		}
	}
}

func TestEqualAngleLeavesDoNotCollide(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr, _ := tree.RandomTree(taxaNames(20), rng, 0.15)
	lay, err := EqualAngle(tr)
	if err != nil {
		t.Fatal(err)
	}
	var pts []Point2
	for _, n := range tr.Nodes {
		if n != nil && n.Leaf() {
			pts = append(pts, lay.Pos[n.ID])
		}
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if math.Hypot(pts[i].X-pts[j].X, pts[i].Y-pts[j].Y) < 1e-9 {
				t.Errorf("leaves %d and %d coincide", i, j)
			}
		}
	}
}

func TestPivotCanonicalIdempotentAndTopologyPreserving(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr, _ := tree.RandomTree(taxaNames(10), rng, 0.1)
	before := tr.Newick() // canonical; must survive pivoting
	PivotCanonical(tr)
	if err := tr.Validate(true); err != nil {
		t.Fatal(err)
	}
	if tr.Newick() != before {
		t.Error("pivot changed the canonical tree")
	}
	once := fmt.Sprintf("%v", neighborOrder(tr))
	PivotCanonical(tr)
	twice := fmt.Sprintf("%v", neighborOrder(tr))
	if once != twice {
		t.Error("pivot is not idempotent")
	}
}

func neighborOrder(t *tree.Tree) [][]int {
	var out [][]int
	for _, n := range t.Nodes {
		if n == nil {
			continue
		}
		var ids []int
		for _, m := range n.Nbr {
			ids = append(ids, m.ID)
		}
		out = append(out, ids)
	}
	return out
}

// TestPivotMakesSameTopologyRenderIdentically: two differently-ordered
// parses of the same topology lay out identically after pivoting.
func TestPivotMakesSameTopologyRenderIdentically(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	t1, _ := tree.ParseNewick("((a:1,b:1):1,c:1,(d:1,e:1):1);", names)
	t2, _ := tree.ParseNewick("((e:1,d:1):1,(b:1,a:1):1,c:1);", names)
	sc1, err := NewScene([]*tree.Tree{t1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := NewScene([]*tree.Tree{t2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	svg1 := sc1.SVG(SVGOptions{Width: 400})
	svg2 := sc2.SVG(SVGOptions{Width: 400})
	if svg1 != svg2 {
		t.Error("same topology rendered differently after pivoting")
	}
}

func TestSceneSVGStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var trees []*tree.Tree
	for i := 0; i < 3; i++ {
		tr, _ := tree.RandomTree(taxaNames(6), rng, 0.1)
		trees = append(trees, tr)
	}
	sc, err := NewScene(trees, []string{"one", "two", "three"})
	if err != nil {
		t.Fatal(err)
	}
	svg := sc.SVG(SVGOptions{Width: 600, TraceTaxa: []int{0, 2}, LeafLabels: true})
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	// 3 trees x 9 edges each = 27 lines.
	if got := strings.Count(svg, "<line"); got != 27 {
		t.Errorf("%d line elements, want 27", got)
	}
	// Two traced taxa -> two dashed paths, 3 circles each.
	if got := strings.Count(svg, "<path"); got != 2 {
		t.Errorf("%d trace paths, want 2", got)
	}
	if got := strings.Count(svg, "<circle"); got != 6 {
		t.Errorf("%d trace markers, want 6", got)
	}
	if !strings.Contains(svg, "t01") {
		t.Error("leaf labels missing")
	}
	if !strings.Contains(svg, ">two<") {
		t.Error("scene labels missing")
	}
}

func TestSceneErrors(t *testing.T) {
	if _, err := NewScene(nil, nil); err == nil {
		t.Error("empty scene accepted")
	}
}

func TestASCIIContainsAllTaxa(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tr, _ := tree.RandomTree(taxaNames(9), rng, 0.1)
	out, err := ASCII(tr, ASCIIOptions{Width: 80})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if !strings.Contains(out, fmt.Sprintf("t%02d", i)) {
			t.Errorf("taxon t%02d missing from rendering:\n%s", i, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 {
		t.Errorf("%d lines, want 9 (one per leaf):\n%s", len(lines), out)
	}
}

func TestASCIIShowLengths(t *testing.T) {
	names := []string{"a", "b", "c"}
	tr, _ := tree.ParseNewick("(a:0.5,b:0.25,c:0.125);", names)
	out, err := ASCII(tr, ASCIIOptions{Width: 60, ShowLengths: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, ":0.5000") {
		t.Errorf("lengths missing:\n%s", out)
	}
}

func TestTraceReport(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	t1, _ := tree.ParseNewick("((a,b),c,(d,e));", names)
	t2, _ := tree.ParseNewick("((a,c),b,(d,e));", names)
	rep, err := TraceReport([]*tree.Tree{t1, t2}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "trace a:") {
		t.Errorf("report header missing:\n%s", rep)
	}
	if !strings.Contains(rep, "tree 1: nearest") || !strings.Contains(rep, "tree 2: nearest") {
		t.Errorf("per-tree lines missing:\n%s", rep)
	}
	// In t1 'a' sits beside 'b'; in t2 beside 'c'.
	lines := strings.Split(rep, "\n")
	if !strings.Contains(lines[1], "b") {
		t.Errorf("tree 1 neighbors wrong: %s", lines[1])
	}
	if !strings.Contains(lines[2], "c") {
		t.Errorf("tree 2 neighbors wrong: %s", lines[2])
	}
	if _, err := TraceReport([]*tree.Tree{t1}, []int{99}); err == nil {
		t.Error("out-of-range taxon accepted")
	}
}

// TestASCIIMultifurcatingConsensus: consensus trees (polytomies) render
// without error and show every taxon.
func TestASCIIMultifurcatingConsensus(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	t1, _ := tree.ParseNewick("((a,b),c,(d,e));", names)
	t2, _ := tree.ParseNewick("((a,c),b,(d,e));", names)
	res, err := tree.MajorityRule([]*tree.Tree{t1, t2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ASCII(res.Tree, ASCIIOptions{Width: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, nm := range names {
		if !strings.Contains(out, nm) {
			t.Errorf("taxon %s missing from consensus rendering:\n%s", nm, out)
		}
	}
}

// TestSceneWithConsensusTree: the SVG path handles multifurcations too.
func TestSceneWithConsensusTree(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e", "f"}
	t1, _ := tree.ParseNewick("((a,b),c,(d,(e,f)));", names)
	t2, _ := tree.ParseNewick("((a,c),b,(d,(e,f)));", names)
	res, err := tree.MajorityRule([]*tree.Tree{t1, t2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScene([]*tree.Tree{res.Tree}, []string{"consensus"})
	if err != nil {
		t.Fatal(err)
	}
	svg := sc.SVG(SVGOptions{Width: 500, LeafLabels: true})
	if !strings.Contains(svg, "consensus") || strings.Count(svg, "<line") == 0 {
		t.Error("consensus scene incomplete")
	}
}
