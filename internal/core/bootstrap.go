package core

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/mlsearch"
	"repro/internal/seq"
	"repro/internal/tree"
)

// Bootstrapping: resample alignment columns with replacement, re-infer a
// tree per replicate, and read split support off the replicate trees.
// The paper lists "incorporation of multiple bootstraps within the code"
// as planned work, noting it was already possible with scripts (§5);
// here it is in the code.

// BootstrapResult summarizes a bootstrap analysis.
type BootstrapResult struct {
	// Trees holds one inferred tree per replicate.
	Trees []*tree.Tree
	// LnLs holds each replicate's log-likelihood (against its own
	// resampled data; not comparable across replicates).
	LnLs []float64
	// Consensus is the majority rule consensus of the replicate trees;
	// its Support/SplitFreq maps carry the bootstrap proportions.
	Consensus *tree.ConsensusResult
}

// Bootstrap runs the analysis: replicates resampled data sets, one
// search each (the Options' Seed drives both the resampling and the
// searches; Workers>0 parallelizes each search's tree evaluations).
func Bootstrap(a *seq.Alignment, opt Options, replicates int) (*BootstrapResult, error) {
	if replicates < 2 {
		return nil, fmt.Errorf("core: %d bootstrap replicates, need >= 2", replicates)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	opt.Jumbles = 1 // one ordering per replicate
	nsites := a.NumSites()
	rng := rand.New(rand.NewSource(mlsearch.NormalizeSeed(opt.Seed)))

	// All replicate resamples are drawn up front from the one shared rng,
	// so the weights (and therefore every replicate's result) do not
	// depend on how many replicates later run concurrently.
	seed := mlsearch.NormalizeSeed(opt.Seed)
	opts := make([]Options, replicates)
	for rep := range opts {
		// Multinomial column resample as integer weights.
		weights := make([]float64, nsites)
		for i := 0; i < nsites; i++ {
			weights[rng.Intn(nsites)]++
		}
		ropt := opt
		ropt.Weights = combineWeights(opt.Weights, weights)
		ropt.Seed = seed + int64(2*rep)
		ropt.Progress = nil
		if opt.Progress != nil {
			idx := rep
			ropt.Progress = func(_ int, e mlsearch.ProgressEvent) { opt.Progress(idx, e) }
		}
		opts[rep] = ropt
	}

	// Replicates are independent inferences, so MaxConcurrentJumbles
	// bounds them directly (default 1: sequential, the historical
	// behavior). Each replicate still parallelizes internally per
	// Workers.
	conc := opt.MaxConcurrentJumbles
	if conc < 1 {
		conc = 1
	}
	if conc > replicates {
		conc = replicates
	}
	trees := make([]*tree.Tree, replicates)
	lnls := make([]float64, replicates)
	errs := make([]error, replicates)
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for rep := range opts {
		wg.Add(1)
		go func(rep int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			inf, err := Infer(a, opts[rep])
			if err != nil {
				errs[rep] = err
				return
			}
			trees[rep], lnls[rep] = inf.Best.Tree, inf.Best.LnL
		}(rep)
	}
	wg.Wait()
	for rep, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: bootstrap replicate %d: %w", rep+1, err)
		}
	}
	out := &BootstrapResult{Trees: trees, LnLs: lnls}

	cons, err := tree.MajorityRule(out.Trees, opt.ConsensusThreshold)
	if err != nil {
		return nil, fmt.Errorf("core: bootstrap consensus: %w", err)
	}
	out.Consensus = cons
	return out, nil
}

// combineWeights multiplies user weights with bootstrap counts (nil user
// weights mean uniform).
func combineWeights(user, boot []float64) []float64 {
	if user == nil {
		return boot
	}
	out := make([]float64, len(boot))
	for i := range boot {
		out[i] = user[i] * boot[i]
	}
	return out
}
