package core

import (
	"fmt"
	"math/rand"

	"repro/internal/mlsearch"
	"repro/internal/seq"
	"repro/internal/tree"
)

// Bootstrapping: resample alignment columns with replacement, re-infer a
// tree per replicate, and read split support off the replicate trees.
// The paper lists "incorporation of multiple bootstraps within the code"
// as planned work, noting it was already possible with scripts (§5);
// here it is in the code.

// BootstrapResult summarizes a bootstrap analysis.
type BootstrapResult struct {
	// Trees holds one inferred tree per replicate.
	Trees []*tree.Tree
	// LnLs holds each replicate's log-likelihood (against its own
	// resampled data; not comparable across replicates).
	LnLs []float64
	// Consensus is the majority rule consensus of the replicate trees;
	// its Support/SplitFreq maps carry the bootstrap proportions.
	Consensus *tree.ConsensusResult
}

// Bootstrap runs the analysis: replicates resampled data sets, one
// search each (the Options' Seed drives both the resampling and the
// searches; Workers>0 parallelizes each search's tree evaluations).
func Bootstrap(a *seq.Alignment, opt Options, replicates int) (*BootstrapResult, error) {
	if replicates < 2 {
		return nil, fmt.Errorf("core: %d bootstrap replicates, need >= 2", replicates)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	opt.Jumbles = 1 // one ordering per replicate
	nsites := a.NumSites()
	rng := rand.New(rand.NewSource(mlsearch.NormalizeSeed(opt.Seed)))

	out := &BootstrapResult{}
	seed := mlsearch.NormalizeSeed(opt.Seed)
	for rep := 0; rep < replicates; rep++ {
		// Multinomial column resample as integer weights.
		weights := make([]float64, nsites)
		for i := 0; i < nsites; i++ {
			weights[rng.Intn(nsites)]++
		}
		ropt := opt
		ropt.Weights = combineWeights(opt.Weights, weights)
		ropt.Seed = seed + int64(2*rep)
		ropt.Progress = nil
		if opt.Progress != nil {
			idx := rep
			ropt.Progress = func(_ int, e mlsearch.ProgressEvent) { opt.Progress(idx, e) }
		}
		inf, err := Infer(a, ropt)
		if err != nil {
			return nil, fmt.Errorf("core: bootstrap replicate %d: %w", rep+1, err)
		}
		out.Trees = append(out.Trees, inf.Best.Tree)
		out.LnLs = append(out.LnLs, inf.Best.LnL)
	}

	cons, err := tree.MajorityRule(out.Trees, opt.ConsensusThreshold)
	if err != nil {
		return nil, fmt.Errorf("core: bootstrap consensus: %w", err)
	}
	out.Consensus = cons
	return out, nil
}

// combineWeights multiplies user weights with bootstrap counts (nil user
// weights mean uniform).
func combineWeights(user, boot []float64) []float64 {
	if user == nil {
		return boot
	}
	out := make([]float64, len(boot))
	for i := range boot {
		out[i] = user[i] * boot[i]
	}
	return out
}
