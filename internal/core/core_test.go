package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mlsearch"
	"repro/internal/seq"
	"repro/internal/simulate"
)

func testAlignment(t *testing.T, taxa, sites int, seed int64) *seq.Alignment {
	t.Helper()
	ds, err := simulate.New(simulate.Options{Taxa: taxa, Sites: sites, Seed: seed, MeanBranchLen: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	return ds.Alignment
}

func TestInferSerialSingleJumble(t *testing.T) {
	a := testAlignment(t, 8, 200, 3)
	inf, err := Infer(a, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(inf.Jumbles) != 1 {
		t.Fatalf("%d jumbles", len(inf.Jumbles))
	}
	if inf.Best == nil || inf.Best.Tree.NumLeaves() != 8 {
		t.Fatal("bad best tree")
	}
	if inf.Consensus != nil {
		t.Error("single jumble should have no consensus")
	}
	if inf.Best.LnL >= 0 {
		t.Errorf("lnL = %g", inf.Best.LnL)
	}
	if inf.Model.Name() != "F84" {
		t.Errorf("default model %s", inf.Model.Name())
	}
}

func TestInferMultiJumbleConsensus(t *testing.T) {
	a := testAlignment(t, 7, 400, 9)
	inf, err := Infer(a, Options{Seed: 5, Jumbles: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(inf.Jumbles) != 3 {
		t.Fatalf("%d jumbles", len(inf.Jumbles))
	}
	if inf.Consensus == nil {
		t.Fatal("no consensus over 3 jumbles")
	}
	if inf.Consensus.Tree.NumLeaves() != 7 {
		t.Errorf("consensus has %d leaves", inf.Consensus.Tree.NumLeaves())
	}
	for i := range inf.Jumbles {
		if inf.Best.LnL < inf.Jumbles[i].LnL {
			t.Error("Best is not the best jumble")
		}
	}
	// Seeds must be odd and distinct.
	seen := map[int64]bool{}
	for _, j := range inf.Jumbles {
		if j.Seed%2 == 0 {
			t.Errorf("even jumble seed %d", j.Seed)
		}
		if seen[j.Seed] {
			t.Errorf("duplicate seed %d", j.Seed)
		}
		seen[j.Seed] = true
	}
}

func TestInferParallelMatchesSerial(t *testing.T) {
	a := testAlignment(t, 7, 200, 13)
	serial, err := Infer(a, Options{Seed: 7, Jumbles: 2})
	if err != nil {
		t.Fatal(err)
	}
	var monOut bytes.Buffer
	par, err := Infer(a, Options{Seed: 7, Jumbles: 2, Workers: 3, WithMonitor: true, MonitorOut: &monOut})
	if err != nil {
		t.Fatal(err)
	}
	for j := range serial.Jumbles {
		if serial.Jumbles[j].Newick != par.Jumbles[j].Newick {
			t.Errorf("jumble %d trees differ between serial and parallel", j)
		}
		if serial.Jumbles[j].LnL != par.Jumbles[j].LnL {
			t.Errorf("jumble %d lnL differs", j)
		}
	}
	if par.Monitor == nil {
		t.Error("no monitor stats from instrumented run")
	}
}

func TestInferProgressCallback(t *testing.T) {
	a := testAlignment(t, 6, 150, 17)
	var events int
	var lastJumble int
	_, err := Infer(a, Options{Seed: 3, Jumbles: 2, Progress: func(j int, e mlsearch.ProgressEvent) {
		events++
		lastJumble = j
	}})
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("no progress events")
	}
	if lastJumble != 1 {
		t.Errorf("last event from jumble %d, want 1", lastJumble)
	}
}

func TestInferWithSiteRates(t *testing.T) {
	a := testAlignment(t, 6, 100, 19)
	rates := make([]float64, 100)
	for i := range rates {
		rates[i] = 0.5
		if i%2 == 0 {
			rates[i] = 1.5
		}
	}
	inf, err := Infer(a, Options{Seed: 3, SiteRates: rates})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Infer(a, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if inf.Best.LnL == flat.Best.LnL {
		t.Error("site rates had no effect")
	}
}

func TestInferValidation(t *testing.T) {
	if _, err := Infer(seq.NewAlignment(0), Options{}); err == nil {
		t.Error("empty alignment accepted")
	}
	a := testAlignment(t, 6, 100, 23)
	if _, err := Infer(a, Options{SiteRates: []float64{1}}); err == nil {
		t.Error("wrong-length site rates accepted")
	}
}

func TestPrepareDefaults(t *testing.T) {
	a := testAlignment(t, 6, 100, 29)
	cfg, opt, err := Prepare(a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.TTRatio != 2.0 || opt.Jumbles != 1 || opt.RearrangeExtent != 1 {
		t.Errorf("defaults: %+v", opt)
	}
	if cfg.Patterns == nil || cfg.Model == nil || len(cfg.Taxa) != 6 {
		t.Error("incomplete config")
	}
	if !strings.HasPrefix(cfg.Model.Name(), "F84") {
		t.Errorf("model %s", cfg.Model.Name())
	}
}
