package core

import (
	"testing"

	"repro/internal/tree"
)

func TestBootstrapBasics(t *testing.T) {
	a := testAlignment(t, 7, 500, 41)
	res, err := Bootstrap(a, Options{Seed: 9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) != 4 || len(res.LnLs) != 4 {
		t.Fatalf("%d trees, %d lnLs", len(res.Trees), len(res.LnLs))
	}
	for i, tr := range res.Trees {
		if err := tr.Validate(true); err != nil {
			t.Errorf("replicate %d: %v", i, err)
		}
		if tr.NumLeaves() != 7 {
			t.Errorf("replicate %d has %d leaves", i, tr.NumLeaves())
		}
	}
	if res.Consensus == nil {
		t.Fatal("no consensus")
	}
	// Bootstrap proportions lie in (0, 1].
	for k, f := range res.Consensus.SplitFreq {
		if f <= 0 || f > 1 {
			t.Errorf("split %s support %g", k, f)
		}
	}
	// With 500 strong sites, at least one split should be unanimous.
	max := 0.0
	for _, f := range res.Consensus.SplitFreq {
		if f > max {
			max = f
		}
	}
	if max < 0.75 {
		t.Errorf("strongest bootstrap support %.2f suspiciously weak", max)
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	a := testAlignment(t, 6, 200, 43)
	r1, err := Bootstrap(a, Options{Seed: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Bootstrap(a, Options{Seed: 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Trees {
		if !tree.SameTopology(r1.Trees[i], r2.Trees[i]) {
			t.Errorf("replicate %d differs between identical runs", i)
		}
	}
	r3, err := Bootstrap(a, Options{Seed: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range r1.Trees {
		if r1.LnLs[i] == r3.LnLs[i] {
			same++
		}
	}
	if same == len(r1.Trees) {
		t.Error("different seeds gave identical replicate likelihoods (suspicious)")
	}
}

func TestBootstrapValidation(t *testing.T) {
	a := testAlignment(t, 6, 100, 47)
	if _, err := Bootstrap(a, Options{}, 1); err == nil {
		t.Error("1 replicate accepted")
	}
}

func TestModelSelection(t *testing.T) {
	a := testAlignment(t, 6, 200, 51)
	lnls := map[string]float64{}
	for _, name := range []string{"F84", "JC69", "K80", "HKY85", "GTR"} {
		inf, err := Infer(a, Options{Seed: 3, ModelName: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if inf.Model.Name() != name {
			t.Errorf("requested %s, got %s", name, inf.Model.Name())
		}
		lnls[name] = inf.Best.LnL
	}
	// Models should produce different likelihoods on non-uniform data.
	if lnls["F84"] == lnls["JC69"] {
		t.Error("F84 and JC69 gave identical lnL (suspicious)")
	}
	// F84/HKY85 (empirical freqs + transition bias) should beat JC69 on
	// data generated under F84-like composition.
	if lnls["F84"] <= lnls["JC69"] {
		t.Errorf("F84 (%.2f) should fit better than JC69 (%.2f)", lnls["F84"], lnls["JC69"])
	}
	if _, err := Infer(a, Options{ModelName: "WAG"}); err == nil {
		t.Error("unknown model accepted")
	}
}
