// Package core assembles the fastDNAml reproduction into its user-facing
// form: read a PHYLIP alignment, build the default F84 model with
// empirical base frequencies, run one or more random-order maximum
// likelihood searches — serially or on the parallel
// master/foreman/worker/monitor runtime — and summarize the resulting
// trees with a majority rule consensus.
//
// The heavy lifting lives in the substrate packages (seq, model,
// likelihood, tree, comm, mlsearch); core wires them together the way the
// fastDNAml program does.
package core

import (
	"fmt"
	"io"

	"repro/internal/likelihood"
	"repro/internal/mlsearch"
	"repro/internal/model"
	"repro/internal/seq"
	"repro/internal/tree"
)

// Options configure an inference run.
type Options struct {
	// ModelName selects the substitution model: "F84" (fastDNAml's
	// model, the default), "JC69", "K80", "HKY85", or "GTR" (§5's "more
	// general models of nucleotide change").
	ModelName string
	// TTRatio is the F84 transition/transversion ratio (default 2.0).
	TTRatio float64
	// Kappa is the K80/HKY85 transition rate multiplier (default 2.0).
	Kappa float64
	// GTRRates are the six exchangeabilities for the GTR model (zero
	// value means all 1, i.e. F81-like behaviour).
	GTRRates model.GTRRates
	// Jumbles is the number of random taxon orderings analyzed
	// (default 1). Biologists typically analyze tens to thousands and
	// compare the best trees (paper §2).
	Jumbles int
	// Seed drives the orderings; even seeds are adjusted as in
	// fastDNAml (§2.1).
	Seed int64
	// MaxConcurrentJumbles bounds how many jumbles (or bootstrap
	// replicates) run concurrently over the shared worker fleet. 0
	// defaults to min(Jumbles, Workers) in parallel runs; results are
	// identical at any setting.
	MaxConcurrentJumbles int
	// RearrangeExtent is the number of vertices crossed in the local
	// rearrangements after each taxon addition (default 1; the paper's
	// performance tests use 5).
	RearrangeExtent int
	// FinalExtent is the extent of the final rearrangement pass
	// (default: same as RearrangeExtent).
	FinalExtent int
	// AdaptiveExtent lets the search adapt the rearrangement extent to
	// recent success (paper §5's planned feature).
	AdaptiveExtent bool
	// Workers selects the runtime: 0 runs the serial program; >= 1 runs
	// the parallel runtime with that many worker processes.
	Workers int
	// Threads is the likelihood engine's kernel thread count per
	// evaluator (default 1). Any value yields bit-identical trees and
	// likelihoods: the engine's sharding is deterministic.
	Threads int
	// Precision selects the CLV storage format: "float64" (or "64",
	// "double", "f64", "" — the exact default) or "float32" (or "32",
	// "single", "f32"), which halves CLV memory traffic at the documented
	// accuracy tolerance (likelihood.Float32*Tol).
	Precision string
	// Engine names the likelihood backend: "cached" (the CLV-cached
	// production engine, the default) or "reference" (the direct
	// recomputation engine used for differential testing). See
	// likelihood.Engines for the registered set.
	Engine string
	// SmoothMode selects the full-tree branch-smoothing algorithm:
	// "sweep" (or "" — the sequential Newton sweep, the default) or
	// "gradient" (simultaneous smoothing on the linear-time all-branches
	// gradient; same optimum, fewer kernel evaluations).
	SmoothMode string
	// Pipeline is the number of tasks the foreman keeps in flight per
	// worker in parallel runs (default 2; 1 restores the paper's
	// one-task-per-worker dispatch).
	Pipeline int
	// WithMonitor adds the instrumentation process to parallel runs.
	WithMonitor bool
	// MonitorOut receives monitor output (nil discards it).
	MonitorOut io.Writer
	// Weights are optional per-site weights (nil = uniform).
	Weights []float64
	// SiteRates are optional per-site relative rates, e.g. from
	// dnarates (nil = homogeneous).
	SiteRates []float64
	// ConsensusThreshold is the majority rule threshold over jumble
	// results (default 0.5 = strict majority).
	ConsensusThreshold float64
	// Progress receives a notification per adopted tree
	// (jumble, event); the live tree viewer consumes it.
	Progress func(int, mlsearch.ProgressEvent)
	// Obs, when non-nil, attaches run observability (metrics, spans, the
	// /status snapshot) to parallel runs.
	Obs *mlsearch.RunObserver
	// Stop, when non-nil, cancels the run when closed: searches return
	// mlsearch.ErrStopped (wrapped) at their next round boundary, so a
	// signal handler can flush restart files and exit cleanly.
	Stop <-chan struct{}
}

func (o Options) withDefaults() Options {
	if o.ModelName == "" {
		o.ModelName = "F84"
	}
	if o.TTRatio <= 0 {
		o.TTRatio = model.DefaultTTRatio
	}
	if o.Kappa <= 0 {
		o.Kappa = 2.0
	}
	if o.Jumbles < 1 {
		o.Jumbles = 1
	}
	if o.RearrangeExtent == 0 {
		o.RearrangeExtent = 1
	}
	if o.ConsensusThreshold == 0 {
		o.ConsensusThreshold = 0.5
	}
	return o
}

// JumbleResult is the outcome of one random ordering.
type JumbleResult struct {
	// Seed is the (normalized) seed the ordering used.
	Seed int64
	// Tree is the inferred tree.
	Tree *tree.Tree
	// Newick is the inferred tree's canonical rendering.
	Newick string
	// LnL is the tree's log-likelihood.
	LnL float64
	// Search retains the raw search result (round log etc.).
	Search *mlsearch.SearchResult
}

// Inference is the outcome of a full run.
type Inference struct {
	// Jumbles holds each ordering's result, in run order.
	Jumbles []JumbleResult
	// Best points at the highest-likelihood jumble.
	Best *JumbleResult
	// Consensus is the majority rule consensus over the jumble trees
	// (nil when only one jumble ran).
	Consensus *tree.ConsensusResult
	// Model is the substitution model used.
	Model model.Model
	// Patterns is the compressed data set.
	Patterns *seq.Patterns
	// Monitor carries parallel instrumentation when it ran.
	Monitor *mlsearch.MonitorStats
}

// Prepare compresses an alignment and builds the model and search config
// shared by Infer and the benchmark harness.
func Prepare(a *seq.Alignment, opt Options) (mlsearch.Config, Options, error) {
	opt = opt.withDefaults()
	if err := a.Validate(); err != nil {
		return mlsearch.Config{}, opt, err
	}
	pat, err := seq.Compress(a, seq.CompressOptions{Weights: opt.Weights, Rates: opt.SiteRates})
	if err != nil {
		return mlsearch.Config{}, opt, err
	}
	m, err := buildModel(opt, pat)
	if err != nil {
		return mlsearch.Config{}, opt, err
	}
	prec, err := likelihood.ParsePrecision(opt.Precision)
	if err != nil {
		return mlsearch.Config{}, opt, err
	}
	smode, err := likelihood.ParseSmoothMode(opt.SmoothMode)
	if err != nil {
		return mlsearch.Config{}, opt, err
	}
	cfg := mlsearch.Config{
		Taxa:            a.Names,
		Patterns:        pat,
		Model:           m,
		Seed:            opt.Seed,
		RearrangeExtent: opt.RearrangeExtent,
		FinalExtent:     opt.FinalExtent,
		AdaptiveExtent:  opt.AdaptiveExtent,
		Threads:         opt.Threads,
		Precision:       prec,
		Engine:          opt.Engine,
		SmoothMode:      smode,
	}
	return cfg, opt, nil
}

// buildModel constructs the configured substitution model, using the
// data's empirical base frequencies where the model takes them (paper
// §2.1).
func buildModel(opt Options, pat *seq.Patterns) (model.Model, error) {
	freqs := seq.EmpiricalFreqsPatterns(pat)
	switch opt.ModelName {
	case "F84", "f84":
		return model.NewF84(freqs, opt.TTRatio)
	case "JC69", "jc69", "jc":
		return model.NewJC69(), nil
	case "K80", "k80":
		return model.NewK80(opt.Kappa)
	case "HKY85", "hky85", "hky":
		return model.NewHKY85(freqs, opt.Kappa)
	case "GTR", "gtr":
		r := opt.GTRRates
		if r == (model.GTRRates{}) {
			r = model.GTRRates{AC: 1, AG: 1, AT: 1, CG: 1, CT: 1, GT: 1}
		}
		return model.NewGTR(freqs, r)
	}
	return nil, fmt.Errorf("core: unknown model %q (F84, JC69, K80, HKY85, GTR)", opt.ModelName)
}

// Infer runs the full program over an alignment.
func Infer(a *seq.Alignment, opt Options) (*Inference, error) {
	cfg, opt, err := Prepare(a, opt)
	if err != nil {
		return nil, err
	}

	inf := &Inference{Model: cfg.Model, Patterns: cfg.Patterns}

	// One Run call covers both runtimes: the serial baseline and the
	// in-process parallel program.
	transport := mlsearch.Serial
	if opt.Workers > 0 {
		transport = mlsearch.Local
	}
	out, err := mlsearch.Run(cfg, mlsearch.RunOptions{
		Transport:            transport,
		Workers:              opt.Workers,
		WithMonitor:          opt.WithMonitor,
		MonitorOut:           opt.MonitorOut,
		Jumbles:              opt.Jumbles,
		MaxConcurrentJumbles: opt.MaxConcurrentJumbles,
		Progress:             opt.Progress,
		Obs:                  opt.Obs,
		Stop:                 opt.Stop,
		Foreman:              mlsearch.ForemanOptions{Pipeline: opt.Pipeline},
	})
	if err != nil {
		return nil, err
	}
	results := out.Results
	inf.Monitor = out.Monitor

	for j, res := range results {
		tr, err := tree.ParseNewick(res.BestNewick, cfg.Taxa)
		if err != nil {
			return nil, fmt.Errorf("core: jumble %d result: %w", j, err)
		}
		inf.Jumbles = append(inf.Jumbles, JumbleResult{
			// The search reports the seed it actually ran with; deriving
			// it from j here would mislabel resumed runs.
			Seed:   res.Seed,
			Tree:   tr,
			Newick: res.BestNewick,
			LnL:    res.LnL,
			Search: res,
		})
	}
	best := &inf.Jumbles[0]
	for i := range inf.Jumbles {
		if inf.Jumbles[i].LnL > best.LnL {
			best = &inf.Jumbles[i]
		}
	}
	inf.Best = best

	if len(inf.Jumbles) > 1 {
		var trees []*tree.Tree
		for i := range inf.Jumbles {
			trees = append(trees, inf.Jumbles[i].Tree)
		}
		cons, err := tree.MajorityRule(trees, opt.ConsensusThreshold)
		if err != nil {
			return nil, fmt.Errorf("core: consensus: %w", err)
		}
		inf.Consensus = cons
	}
	return inf, nil
}
