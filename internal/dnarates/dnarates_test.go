package dnarates

import (
	"math"
	"testing"

	"repro/internal/mlsearch"
	"repro/internal/seq"
	"repro/internal/simulate"
	"repro/internal/tree"
)

func TestEstimateRecoversHeterogeneity(t *testing.T) {
	// Simulate with strong rate heterogeneity, then check the estimates
	// separate fast from slow sites.
	ds, err := simulate.New(simulate.Options{Taxa: 12, Sites: 600, Seed: 11, GammaAlpha: 0.4, MeanBranchLen: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	pat, err := seq.Compress(ds.Alignment, seq.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mlsearch.NewDefaultModel(pat)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := Estimate(m, ds.Alignment, ds.TrueTree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rates.PerSite) != 600 {
		t.Fatalf("%d per-site rates", len(rates.PerSite))
	}
	// The fitted rates must correlate positively with the true rates.
	trueMean := mean(ds.SiteRates)
	estMean := mean(rates.PerSite)
	cov := 0.0
	vT, vE := 0.0, 0.0
	for i := range rates.PerSite {
		dt := ds.SiteRates[i] - trueMean
		de := rates.PerSite[i] - estMean
		cov += dt * de
		vT += dt * dt
		vE += de * de
	}
	if vT == 0 || vE == 0 {
		t.Fatal("degenerate variance")
	}
	corr := cov / math.Sqrt(vT*vE)
	if corr < 0.5 {
		t.Errorf("rate estimate correlation with truth = %.3f, want >= 0.5", corr)
	}
	// Fitting rates must improve the likelihood.
	if rates.LnLAfter <= rates.LnLBefore {
		t.Errorf("rates did not improve lnL: %.2f -> %.2f", rates.LnLBefore, rates.LnLAfter)
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestEstimateNormalizedMeanOne(t *testing.T) {
	ds, err := simulate.New(simulate.Options{Taxa: 8, Sites: 300, Seed: 21, GammaAlpha: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	pat, _ := seq.Compress(ds.Alignment, seq.CompressOptions{})
	m, _ := mlsearch.NewDefaultModel(pat)
	rates, err := Estimate(m, ds.Alignment, ds.TrueTree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Weighted mean over patterns must be 1 (normalization contract).
	wsum, rsum := 0.0, 0.0
	ratedPat, _ := seq.Compress(ds.Alignment, seq.CompressOptions{})
	for p, w := range ratedPat.Weights {
		wsum += w
		rsum += w * rates.PerPattern[p]
	}
	if math.Abs(rsum/wsum-1) > 1e-9 {
		t.Errorf("weighted mean rate %.6f, want 1", rsum/wsum)
	}
}

func TestEstimateUniformDataStaysFlat(t *testing.T) {
	// Without simulated heterogeneity the estimates should cluster near
	// 1 (spread well below the heterogeneous case).
	ds, err := simulate.New(simulate.Options{Taxa: 10, Sites: 400, Seed: 31, GammaAlpha: 0})
	if err != nil {
		t.Fatal(err)
	}
	pat, _ := seq.Compress(ds.Alignment, seq.CompressOptions{})
	m, _ := mlsearch.NewDefaultModel(pat)
	rates, err := Estimate(m, ds.Alignment, ds.TrueTree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	med := medianOf(rates.PerSite)
	if med < 0.4 || med > 2.5 {
		t.Errorf("median rate %.3f for homogeneous data", med)
	}
}

func medianOf(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	for i := range cp {
		for j := i + 1; j < len(cp); j++ {
			if cp[j] < cp[i] {
				cp[i], cp[j] = cp[j], cp[i]
			}
		}
	}
	return cp[len(cp)/2]
}

func TestEstimateOptionsValidation(t *testing.T) {
	ds, _ := simulate.New(simulate.Options{Taxa: 5, Sites: 50, Seed: 1})
	pat, _ := seq.Compress(ds.Alignment, seq.CompressOptions{})
	m, _ := mlsearch.NewDefaultModel(pat)
	if _, err := Estimate(m, ds.Alignment, ds.TrueTree, Options{MinRate: 5, MaxRate: 1}); err == nil {
		t.Error("inverted rate range accepted")
	}
}

func TestCategorize(t *testing.T) {
	rates := []float64{0.1, 0.2, 1.0, 1.1, 5.0, 6.0}
	cats, catRates, err := Categorize(rates, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cats) != 6 || len(catRates) != 3 {
		t.Fatalf("shapes: %d cats, %d rates", len(cats), len(catRates))
	}
	for i, c := range cats {
		if c < 1 || c > 3 {
			t.Errorf("site %d category %d", i, c)
		}
	}
	// Slowest sites share the lowest category; fastest the highest.
	if cats[0] != 1 || cats[1] != 1 {
		t.Errorf("slow sites in category %d/%d", cats[0], cats[1])
	}
	if cats[4] != 3 || cats[5] != 3 {
		t.Errorf("fast sites in category %d/%d", cats[4], cats[5])
	}
	// Category representative rates increase.
	for c := 1; c < 3; c++ {
		if catRates[c] <= catRates[c-1] {
			t.Errorf("category rates not increasing: %v", catRates)
		}
	}
}

func TestCategorizeEdgeCases(t *testing.T) {
	if _, _, err := Categorize(nil, 3); err == nil {
		t.Error("empty rates accepted")
	}
	if _, _, err := Categorize([]float64{1, -1}, 2); err == nil {
		t.Error("negative rate accepted")
	}
	cats, catRates, err := Categorize([]float64{2, 2, 2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cats {
		if c != 1 {
			t.Error("constant rates should land in one category")
		}
	}
	if math.Abs(catRates[0]-2) > 1e-12 {
		t.Errorf("constant category rate %g, want 2", catRates[0])
	}
}

// TestRatesImproveSearch: feeding dnarates output back into the search
// must not break anything and should fit the data at least as well.
func TestRatesFeedBackIntoSearch(t *testing.T) {
	ds, err := simulate.New(simulate.Options{Taxa: 7, Sites: 300, Seed: 41, GammaAlpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	pat, _ := seq.Compress(ds.Alignment, seq.CompressOptions{})
	m, _ := mlsearch.NewDefaultModel(pat)
	rates, err := Estimate(m, ds.Alignment, ds.TrueTree, Options{GridSize: 15})
	if err != nil {
		t.Fatal(err)
	}
	ratedPat, err := seq.Compress(ds.Alignment, seq.CompressOptions{Rates: rates.PerSite})
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := mlsearch.NewDefaultModel(ratedPat)
	cfg := mlsearch.Config{Taxa: ds.Alignment.Names, Patterns: ratedPat, Model: m2, Seed: 5, RearrangeExtent: 1}
	out, err := mlsearch.Run(cfg, mlsearch.RunOptions{Transport: mlsearch.Serial})
	if err != nil {
		t.Fatal(err)
	}
	res := out.Results[0]
	got, err := tree.ParseNewick(res.BestNewick, cfg.Taxa)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(true); err != nil {
		t.Fatal(err)
	}
}
