// Package dnarates estimates per-site relative evolutionary rates by
// maximum likelihood given a fixed tree, reproducing the role of Olsen's
// DNArates companion program: "The Markov matrix ... is adjusted at each
// sequence position to account for differences between loci in propensity
// to show genetic changes. One program that performs such estimations is
// Olsen's DNArates" (paper §2).
//
// For a site with likelihood L(r) under the tree whose branch lengths are
// all scaled by r, the estimate is argmax_r log L(r). The implementation
// evaluates every site against a geometric grid of rates (each grid point
// is one pruning pass over the compressed patterns) and refines the best
// grid point with a parabolic fit in log-rate space.
package dnarates

import (
	"fmt"
	"math"

	"repro/internal/likelihood"
	"repro/internal/model"
	"repro/internal/seq"
	"repro/internal/tree"
)

// Options control rate estimation.
type Options struct {
	// MinRate and MaxRate bound the rate grid (defaults 0.05 and 20).
	MinRate, MaxRate float64
	// GridSize is the number of geometric grid points (default 25).
	GridSize int
	// Refine enables parabolic refinement around the best grid point
	// (default on; disable for exact grid snapping).
	NoRefine bool
	// Engine names the likelihood backend used for the grid evaluations
	// (see likelihood.Engines; empty = likelihood.DefaultEngine).
	Engine string
}

func (o Options) withDefaults() (Options, error) {
	if o.MinRate <= 0 {
		o.MinRate = 0.05
	}
	if o.MaxRate <= 0 {
		o.MaxRate = 20
	}
	if o.MaxRate <= o.MinRate {
		return o, fmt.Errorf("dnarates: rate range [%g, %g] is empty", o.MinRate, o.MaxRate)
	}
	if o.GridSize <= 1 {
		o.GridSize = 25
	}
	return o, nil
}

// Rates is the estimation result.
type Rates struct {
	// PerSite holds one relative rate per alignment column, normalized
	// to weighted mean 1 (sites dropped by zero weight get rate 1).
	PerSite []float64
	// PerPattern holds the rate per compressed pattern.
	PerPattern []float64
	// Grid is the rate grid used.
	Grid []float64
	// LnLBefore and LnLAfter are the tree log-likelihoods with uniform
	// rates and with the estimated rates (after renormalization).
	LnLBefore, LnLAfter float64
}

// Estimate fits per-site rates for the alignment on the given tree.
func Estimate(m model.Model, a *seq.Alignment, tr *tree.Tree, opt Options) (*Rates, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	pat, err := seq.Compress(a, seq.CompressOptions{})
	if err != nil {
		return nil, err
	}
	eng, err := likelihood.NewEngine(opt.Engine, m, pat, likelihood.EngineOptions{})
	if err != nil {
		return nil, err
	}
	defer likelihood.CloseEngine(eng)

	// Geometric grid in [MinRate, MaxRate].
	grid := make([]float64, opt.GridSize)
	logMin, logMax := math.Log(opt.MinRate), math.Log(opt.MaxRate)
	for i := range grid {
		f := float64(i) / float64(opt.GridSize-1)
		grid[i] = math.Exp(logMin + f*(logMax-logMin))
	}

	// Evaluate per-pattern log-likelihood at each grid rate by scaling a
	// copy of the tree's branch lengths (P(z*r) == P of a tree scaled by
	// r everywhere).
	npat := pat.NumPatterns()
	siteLnL := make([][]float64, len(grid)) // [grid][pattern]
	for gi, r := range grid {
		scaled := tr.Clone()
		for _, e := range scaled.Edges() {
			tree.SetLen(e.A, e.B, clampScaled(e.Length()*r))
		}
		lls, err := eng.SiteLogLikelihoods(scaled)
		if err != nil {
			return nil, err
		}
		// The engine owns the returned slice; copy to retain this row.
		siteLnL[gi] = append([]float64(nil), lls...)
	}
	baseRow, err := eng.SiteLogLikelihoods(tr)
	if err != nil {
		return nil, err
	}
	base := append([]float64(nil), baseRow...)
	lnLBefore := 0.0
	for p := 0; p < npat; p++ {
		lnLBefore += pat.Weights[p] * base[p]
	}

	perPattern := make([]float64, npat)
	for p := 0; p < npat; p++ {
		bestGi := 0
		for gi := 1; gi < len(grid); gi++ {
			if siteLnL[gi][p] > siteLnL[bestGi][p] {
				bestGi = gi
			}
		}
		rate := grid[bestGi]
		if !opt.NoRefine && bestGi > 0 && bestGi < len(grid)-1 {
			rate = parabolicRefine(
				math.Log(grid[bestGi-1]), siteLnL[bestGi-1][p],
				math.Log(grid[bestGi]), siteLnL[bestGi][p],
				math.Log(grid[bestGi+1]), siteLnL[bestGi+1][p],
			)
		}
		perPattern[p] = rate
	}

	// Normalize to weighted mean 1 so total tree length keeps meaning.
	wsum, rsum := 0.0, 0.0
	for p := 0; p < npat; p++ {
		wsum += pat.Weights[p]
		rsum += pat.Weights[p] * perPattern[p]
	}
	if rsum <= 0 {
		return nil, fmt.Errorf("dnarates: degenerate rate estimates")
	}
	scale := wsum / rsum
	for p := range perPattern {
		perPattern[p] *= scale
	}

	perSite, err := pat.ExpandPerSite(perPattern, 1)
	if err != nil {
		return nil, err
	}

	// Report the likelihood gain under the fitted rates.
	ratedPat, err := seq.Compress(a, seq.CompressOptions{Rates: perSite})
	if err != nil {
		return nil, err
	}
	ratedEng, err := likelihood.NewEngine(opt.Engine, m, ratedPat, likelihood.EngineOptions{})
	if err != nil {
		return nil, err
	}
	defer likelihood.CloseEngine(ratedEng)
	lnLAfter, err := ratedEng.LogLikelihood(tr)
	if err != nil {
		return nil, err
	}

	return &Rates{
		PerSite:    perSite,
		PerPattern: perPattern,
		Grid:       grid,
		LnLBefore:  lnLBefore,
		LnLAfter:   lnLAfter,
	}, nil
}

// clampScaled keeps scaled branch lengths inside the engine's legal
// interval.
func clampScaled(z float64) float64 {
	if z < likelihood.MinBranchLength {
		return likelihood.MinBranchLength
	}
	if z > likelihood.MaxBranchLength {
		return likelihood.MaxBranchLength
	}
	return z
}

// parabolicRefine fits a parabola through three (x, y) points and returns
// exp(x*) of its vertex, clamped to the bracketing interval.
func parabolicRefine(x0, y0, x1, y1, x2, y2 float64) float64 {
	d1 := (x1 - x0) * (y1 - y2)
	d2 := (x1 - x2) * (y1 - y0)
	denom := 2 * (d1 - d2)
	if denom == 0 {
		return math.Exp(x1)
	}
	x := x1 - ((x1-x0)*d1-(x1-x2)*d2)/denom
	if x < x0 {
		x = x0
	}
	if x > x2 {
		x = x2
	}
	return math.Exp(x)
}

// Categorize buckets rates into ncat geometric categories (fastDNAml
// accepts category files with up to 35 categories); it returns each
// site's 1-based category and the representative rate per category (the
// weighted geometric mean of its members).
func Categorize(rates []float64, ncat int) ([]int, []float64, error) {
	if ncat < 1 {
		return nil, nil, fmt.Errorf("dnarates: %d categories", ncat)
	}
	if len(rates) == 0 {
		return nil, nil, fmt.Errorf("dnarates: no rates")
	}
	minR, maxR := rates[0], rates[0]
	for _, r := range rates {
		if r <= 0 {
			return nil, nil, fmt.Errorf("dnarates: non-positive rate %g", r)
		}
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	cats := make([]int, len(rates))
	if minR == maxR || ncat == 1 {
		for i := range cats {
			cats[i] = 1
		}
		return cats, []float64{geoMean(rates, cats, 1, 1)}, nil
	}
	logMin, logMax := math.Log(minR), math.Log(maxR)
	for i, r := range rates {
		f := (math.Log(r) - logMin) / (logMax - logMin)
		c := int(f*float64(ncat)) + 1
		if c > ncat {
			c = ncat
		}
		cats[i] = c
	}
	catRates := make([]float64, ncat)
	for c := 1; c <= ncat; c++ {
		// Empty categories take their bin's geometric midpoint so the
		// representative rates stay monotone.
		mid := math.Exp(logMin + (float64(c)-0.5)/float64(ncat)*(logMax-logMin))
		catRates[c-1] = geoMean(rates, cats, c, mid)
	}
	return cats, catRates, nil
}

// geoMean returns the geometric mean of the rates in category c, or
// fallback when the category is empty.
func geoMean(rates []float64, cats []int, c int, fallback float64) float64 {
	sum, n := 0.0, 0
	for i, r := range rates {
		if cats[i] == c {
			sum += math.Log(r)
			n++
		}
	}
	if n == 0 {
		return fallback
	}
	return math.Exp(sum / float64(n))
}
