package mlsearch

import (
	"fmt"

	"repro/internal/comm"
)

// The master (paper §2.2): "generates and compares trees. It generates
// new tree topologies (in steps 2-5) and sends these trees to the
// foreman. It receives back from the foreman the best tree at the end of
// each round of comparison."

// ForemanDispatcher routes task batches through the foreman, implementing
// Dispatcher for the parallel runtime.
type ForemanDispatcher struct {
	c   comm.Communicator
	lay Layout

	round uint64
}

// NewForemanDispatcher builds the master-side dispatcher.
func NewForemanDispatcher(c comm.Communicator, lay Layout) (*ForemanDispatcher, error) {
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	if c.Rank() != lay.Master {
		return nil, fmt.Errorf("mlsearch: dispatcher on rank %d, layout says master is %d", c.Rank(), lay.Master)
	}
	return &ForemanDispatcher{c: c, lay: lay}, nil
}

// Dispatch implements Dispatcher: one batch to the foreman, one reply
// back, with the best task's tree re-attached to its stats entry.
func (d *ForemanDispatcher) Dispatch(tasks []Task) ([]Result, error) {
	d.round++
	batch := roundBatch{Round: d.round, Tasks: tasks}
	if err := d.c.Send(d.lay.Foreman, comm.TagControl, marshalRoundBatch(batch)); err != nil {
		return nil, fmt.Errorf("mlsearch: master send: %w", err)
	}
	msg, err := d.c.Recv(d.lay.Foreman, comm.TagControl)
	if err != nil {
		return nil, fmt.Errorf("mlsearch: master receive: %w", err)
	}
	reply, err := unmarshalRoundReply(msg.Data)
	if err != nil {
		return nil, err
	}
	if reply.Round != d.round {
		return nil, fmt.Errorf("mlsearch: reply for round %d, expected %d", reply.Round, d.round)
	}
	out := make([]Result, len(reply.Stats))
	for i, r := range reply.Stats {
		if r.TaskID == reply.Best.TaskID && r.Newick == "" {
			r.Newick = reply.Best.Newick
		}
		out[i] = r
	}
	return out, nil
}

// Shutdown tells the foreman to stop, which cascades to workers and the
// monitor.
func (d *ForemanDispatcher) Shutdown() error {
	return d.c.Send(d.lay.Foreman, comm.TagShutdown, nil)
}

// RunMaster performs count jumbles (random orderings) of the search on
// the parallel runtime and returns each jumble's result. Seeds advance by
// 2 per jumble from cfg.Seed (keeping them odd). Shutdown of the world is
// automatic.
func RunMaster(c comm.Communicator, lay Layout, cfg Config, count int, progress func(int, ProgressEvent)) ([]*SearchResult, error) {
	if count < 1 {
		count = 1
	}
	return runMasterSide(c, lay, cfg, RunOptions{Jumbles: count, Progress: progress})
}
