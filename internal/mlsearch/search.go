package mlsearch

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/tree"
)

// ErrStopped is returned (wrapped) by a search whose Stop channel closed.
// The search stops at the next round boundary — the last position handed
// to OnCheckpoint is exactly resumable — so callers distinguish a clean
// stop (flush the restart file, exit 0) from a real failure with
// errors.Is(err, ErrStopped).
var ErrStopped = errors.New("mlsearch: search stopped")

// Dispatcher evaluates a batch of tasks and returns their results in any
// order. The serial dispatcher runs them in-process; the parallel
// dispatcher routes them through the foreman to the workers (paper Fig 2:
// "the trees to be evaluated are distributed to the available workers").
type Dispatcher interface {
	Dispatch(tasks []Task) ([]Result, error)
}

// RoundKind labels what a dispatch round was for.
type RoundKind int

// Round kinds, in the order they appear during a search.
const (
	// RoundInit optimizes the initial 3-taxon tree (step 2).
	RoundInit RoundKind = iota
	// RoundAdd scores the 2i-5 insertion points of a new taxon (step 3).
	RoundAdd
	// RoundSmooth fully optimizes a round's best tree.
	RoundSmooth
	// RoundRearrange scores local rearrangement candidates (step 4).
	RoundRearrange
	// RoundFinal scores the final rearrangement candidates (step 5).
	RoundFinal
)

// String names the round kind.
func (k RoundKind) String() string {
	switch k {
	case RoundInit:
		return "init"
	case RoundAdd:
		return "add"
	case RoundSmooth:
		return "smooth"
	case RoundRearrange:
		return "rearrange"
	case RoundFinal:
		return "final"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// taskOverheadBytes approximates the serialized size of one shared-base
// task's candidate description (an edge index or four move IDs) for the
// GenBytes accounting; the base Newick itself is counted once per round.
const taskOverheadBytes = 20

// TaskStat records what one task cost, for the cluster simulator.
type TaskStat struct {
	// Ops is the likelihood work the task consumed (cache hits are free,
	// so shared-base tasks report only recomputed work).
	Ops uint64
	// LnL is the task's resulting log-likelihood.
	LnL float64
	// CacheHits and CacheMisses count the worker engine's CLV cache
	// lookups during the task.
	CacheHits, CacheMisses uint64
	// Elapsed is the worker-side evaluation time, kept at full
	// time.Duration precision in memory; the JSON form stays on the
	// millisecond convention (elapsed_ms) for existing consumers.
	Elapsed time.Duration
}

// taskStatJSON is the serialized form of TaskStat: elapsed time travels
// as fractional milliseconds so files written before the Duration change
// (and external tooling on the ms convention) keep working.
type taskStatJSON struct {
	Ops         uint64  `json:"ops"`
	LnL         float64 `json:"lnl"`
	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	ElapsedMs   float64 `json:"elapsed_ms"`
}

// MarshalJSON renders Elapsed as fractional milliseconds.
func (s TaskStat) MarshalJSON() ([]byte, error) {
	return json.Marshal(taskStatJSON{
		Ops: s.Ops, LnL: s.LnL,
		CacheHits: s.CacheHits, CacheMisses: s.CacheMisses,
		ElapsedMs: obs.PhaseMs(s.Elapsed),
	})
}

// UnmarshalJSON accepts the milliseconds form, restoring full precision.
func (s *TaskStat) UnmarshalJSON(b []byte) error {
	var j taskStatJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*s = TaskStat{
		Ops: j.Ops, LnL: j.LnL,
		CacheHits: j.CacheHits, CacheMisses: j.CacheMisses,
		Elapsed: time.Duration(j.ElapsedMs * float64(time.Millisecond)),
	}
	return nil
}

// RoundStats records one dispatch round.
type RoundStats struct {
	// Kind is what the round did.
	Kind RoundKind
	// TaxaInTree is the number of taxa in the tree during the round.
	TaxaInTree int
	// Tasks holds per-task costs, in task order.
	Tasks []TaskStat
	// GenBytes is the total size of the candidate topologies the master
	// serialized for this round (a proxy for the master's serial work).
	GenBytes uint64
	// BestLnL is the best log-likelihood seen by the end of the round.
	BestLnL float64
}

// SearchResult is the outcome of one random ordering (one jumble).
type SearchResult struct {
	// BestNewick is the final tree with branch lengths.
	BestNewick string
	// LnL is the final log-likelihood.
	LnL float64
	// Order is the taxon insertion order used.
	Order []int
	// Seed is the normalized seed the ordering actually ran with.
	// Resumed searches carry the checkpoint's seed, which callers must
	// not re-derive from the jumble index.
	Seed int64
	// Rounds is the per-round log consumed by the cluster simulator
	// (nil when Config.DisableRoundLog).
	Rounds []RoundStats
	// TotalTasks counts every dispatched task.
	TotalTasks int
	// TotalOps sums the work units over all tasks.
	TotalOps uint64
}

// ProgressEvent notifies observers after each completed round; the
// real-time tree viewer (paper §4) consumes the stream of best trees.
type ProgressEvent struct {
	Kind       RoundKind
	TaxaInTree int
	BestLnL    float64
	BestNewick string
}

// Search runs the fastDNAml algorithm against a Dispatcher.
type Search struct {
	cfg  Config
	disp Dispatcher

	// Progress, when non-nil, receives an event after every round.
	Progress func(ProgressEvent)

	// OnCheckpoint, when non-nil, receives a resumable Checkpoint after
	// every completed taxon addition and at the end of the search (the
	// restart-file mechanism of long fastDNAml runs).
	OnCheckpoint func(Checkpoint)

	// Stop, when non-nil, cancels the search when closed: the search
	// returns ErrStopped (wrapped) at the next round boundary instead of
	// dispatching more work. Positions already handed to OnCheckpoint
	// remain valid resume points.
	Stop <-chan struct{}

	nextTask  uint64
	nextRound uint64
	rounds    []RoundStats
	total     int
	totalOps  uint64
	// trace groups every task span of this search; tasks are its
	// children.
	trace obs.SpanContext
}

// NewSearch builds a search over a normalized configuration.
func NewSearch(cfg Config, disp Dispatcher) (*Search, error) {
	norm, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	if disp == nil {
		return nil, fmt.Errorf("mlsearch: nil dispatcher")
	}
	return &Search{cfg: norm, disp: disp, trace: obs.NewTrace()}, nil
}

// Config returns the normalized configuration.
func (s *Search) Config() Config { return s.cfg }

// Run executes the full search: random order, initial triple, stepwise
// addition with local rearrangements, and the final rearrangement pass.
func (s *Search) Run() (*SearchResult, error) {
	order := TaxonOrder(len(s.cfg.Taxa), s.cfg.Seed)

	// Step 2: the unique 3-taxon tree, fully optimized.
	tr, err := tree.Triple(s.cfg.Taxa, order[0], order[1], order[2])
	if err != nil {
		return nil, err
	}
	cur, lnL, err := s.smoothRound(RoundInit, tr, 3)
	if err != nil {
		return nil, err
	}
	return s.run(order, cur, lnL, 3, false)
}

// run continues a search from "taxa order[:startIdx] are in tr". With
// finalOnly, only step 5 remains.
func (s *Search) run(order []int, tr *tree.Tree, lnL float64, startIdx int, finalOnly bool) (*SearchResult, error) {
	var err error
	extent := s.cfg.RearrangeExtent
	maxExtent := s.cfg.RearrangeExtent
	if s.cfg.FinalExtent > maxExtent {
		maxExtent = s.cfg.FinalExtent
	}
	if !finalOnly {
		// Step 3 + 4: add each remaining taxon, then locally rearrange.
		for i := startIdx; i < len(order); i++ {
			taxon := order[i]
			tr, lnL, err = s.addTaxon(tr, taxon, i+1)
			if err != nil {
				return nil, err
			}
			if extent > 0 && i+1 < len(order) {
				var improved int
				tr, lnL, improved, err = s.rearrangeToConvergence(RoundRearrange, tr, lnL, extent, i+1)
				if err != nil {
					return nil, err
				}
				if s.cfg.AdaptiveExtent {
					if improved > 0 && extent < maxExtent {
						extent++
					} else if improved == 0 && extent > 1 {
						extent--
					}
				}
			}
			phase := PhaseAdding
			if i+1 == len(order) {
				phase = PhaseFinal
			}
			s.checkpoint(order, i+1, phase, tr, lnL)
		}
	}

	// Step 5: final, possibly more extensive, rearrangement.
	if s.cfg.FinalExtent > 0 {
		tr, lnL, _, err = s.rearrangeToConvergence(RoundFinal, tr, lnL, s.cfg.FinalExtent, len(order))
		if err != nil {
			return nil, err
		}
	}
	s.checkpoint(order, len(order), PhaseDone, tr, lnL)

	res := &SearchResult{
		BestNewick: tr.Newick(),
		LnL:        lnL,
		Order:      order,
		Seed:       NormalizeSeed(s.cfg.Seed),
		TotalTasks: s.total,
		TotalOps:   s.totalOps,
	}
	if !s.cfg.DisableRoundLog {
		res.Rounds = s.rounds
	}
	return res, nil
}

// checkpoint emits a resumable position to the observer.
func (s *Search) checkpoint(order []int, nextIdx int, phase string, tr *tree.Tree, lnL float64) {
	if s.OnCheckpoint == nil {
		return
	}
	s.OnCheckpoint(Checkpoint{
		Seed:      s.cfg.Seed,
		Jumble:    s.cfg.Jumble,
		Order:     append([]int(nil), order...),
		NextIndex: nextIdx,
		Phase:     phase,
		Newick:    tr.Newick(),
		LnL:       lnL,
	})
}

// dispatchRound sends tasks, collects results, records statistics, and
// returns the results sorted by task ID (so ties resolve
// deterministically regardless of worker arrival order).
func (s *Search) dispatchRound(kind RoundKind, taxaInTree int, tasks []Task, genBytes uint64) ([]Result, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("mlsearch: empty %s round", kind)
	}
	select {
	case <-s.Stop:
		return nil, fmt.Errorf("mlsearch: %s round: %w", kind, ErrStopped)
	default:
	}
	results, err := s.disp.Dispatch(tasks)
	if err != nil {
		return nil, fmt.Errorf("mlsearch: %s round: %w", kind, err)
	}
	if len(results) != len(tasks) {
		return nil, fmt.Errorf("mlsearch: %s round returned %d results for %d tasks", kind, len(results), len(tasks))
	}
	sort.Slice(results, func(i, j int) bool { return results[i].TaskID < results[j].TaskID })

	stats := RoundStats{Kind: kind, TaxaInTree: taxaInTree, GenBytes: genBytes}
	best := results[0]
	for _, r := range results {
		stats.Tasks = append(stats.Tasks, TaskStat{Ops: r.Ops, LnL: r.LnL, CacheHits: r.CacheHits, CacheMisses: r.CacheMisses, Elapsed: r.Eval})
		s.totalOps += r.Ops
		if r.LnL > best.LnL {
			best = r
		}
	}
	stats.BestLnL = best.LnL
	s.total += len(tasks)
	if !s.cfg.DisableRoundLog {
		s.rounds = append(s.rounds, stats)
	}
	return results, nil
}

// newTask allocates task identity, minting a child span of the search's
// trace so the task can be followed across process boundaries.
func (s *Search) newTask(newick string, localTaxon int, passes int) Task {
	s.nextTask++
	return Task{
		ID:         s.nextTask,
		Round:      s.nextRound,
		Trace:      s.trace.Child(),
		Newick:     newick,
		LocalTaxon: int32(localTaxon),
		Passes:     int32(passes),
		InsertEdge: -1,
		MoveP:      -1,
		MoveS:      -1,
		MoveTA:     -1,
		MoveTB:     -1,
	}
}

// bestOf picks the highest-likelihood result, lowest task ID on ties.
func bestOf(results []Result) Result {
	best := results[0]
	for _, r := range results[1:] {
		if r.LnL > best.LnL {
			best = r
		}
	}
	return best
}

// smoothRound dispatches one full-smoothing task for tr and parses the
// optimized tree back.
func (s *Search) smoothRound(kind RoundKind, tr *tree.Tree, taxaInTree int) (*tree.Tree, float64, error) {
	s.nextRound++
	nwk := tr.Newick()
	task := s.newTask(nwk, -1, s.cfg.FullSmoothPasses)
	results, err := s.dispatchRound(kind, taxaInTree, []Task{task}, uint64(len(nwk)))
	if err != nil {
		return nil, 0, err
	}
	out, err := tree.ParseNewick(results[0].Newick, s.cfg.Taxa)
	if err != nil {
		return nil, 0, err
	}
	// A smooth round always adopts its tree: notify observers. The
	// real-time viewer of §4 monitors exactly this stream of best trees.
	if s.Progress != nil {
		s.Progress(ProgressEvent{Kind: kind, TaxaInTree: taxaInTree, BestLnL: results[0].LnL, BestNewick: results[0].Newick})
	}
	return out, results[0].LnL, nil
}

// addTaxon performs step 3: dispatch one shared-base task per insertion
// edge, adopt the best, then fully smooth it. The master serializes the
// base tree once; each task carries only an edge index, and the workers
// score every candidate against their cached copy of the same base.
func (s *Search) addTaxon(tr *tree.Tree, taxon, taxaAfter int) (*tree.Tree, float64, error) {
	s.nextRound++
	nwk := tr.Newick()
	// Enumerate edges on a reparse of the serialized base so the edge
	// indices agree with what workers see when they parse BaseNewick.
	base, err := tree.ParseNewick(nwk, s.cfg.Taxa)
	if err != nil {
		return nil, 0, err
	}
	edges := base.InsertionEdges()
	tasks := make([]Task, 0, len(edges))
	genBytes := uint64(len(nwk))
	for k := range edges {
		task := s.newTask("", taxon, s.cfg.QuickInsertPasses)
		task.BaseNewick = nwk
		task.InsertEdge = int32(k)
		tasks = append(tasks, task)
		genBytes += taskOverheadBytes
	}
	results, err := s.dispatchRound(RoundAdd, taxaAfter, tasks, genBytes)
	if err != nil {
		return nil, 0, err
	}
	best := bestOf(results)
	bestTree, err := tree.ParseNewick(best.Newick, s.cfg.Taxa)
	if err != nil {
		return nil, 0, err
	}
	// The rapid insertion estimate is refined by full smoothing (§2.1).
	return s.smoothRound(RoundSmooth, bestTree, taxaAfter)
}

// rearrangeToConvergence performs steps 4/5: dispatch every distinct
// rearrangement within extent, adopt the best if it improves, and repeat
// until no improvement (paper: "This process continues until the
// rearrangements no longer result in improvement"). It reports how many
// rounds improved the tree (the adaptive-extent signal).
func (s *Search) rearrangeToConvergence(kind RoundKind, tr *tree.Tree, lnL float64, extent, taxaInTree int) (*tree.Tree, float64, int, error) {
	improved := 0
	for round := 0; round < s.cfg.MaxRearrangeRounds; round++ {
		s.nextRound++
		nwk := tr.Newick()
		// Enumerate moves on a reparse of the serialized base so the
		// node IDs in each move agree with the workers' parse of
		// BaseNewick (shared-base evaluation, one Newick per round).
		base, err := tree.ParseNewick(nwk, s.cfg.Taxa)
		if err != nil {
			return nil, 0, improved, err
		}
		var tasks []Task
		genBytes := uint64(len(nwk))
		_, err = base.Rearrangements(extent, func(view *tree.Tree, cand tree.RearrangeCandidate) bool {
			mv := cand.Move()
			task := s.newTask("", -1, s.cfg.QuickInsertPasses)
			task.BaseNewick = nwk
			task.MoveP = int32(mv.P)
			task.MoveS = int32(mv.S)
			task.MoveTA = int32(mv.TA)
			task.MoveTB = int32(mv.TB)
			tasks = append(tasks, task)
			genBytes += taskOverheadBytes
			return true
		})
		if err != nil {
			return nil, 0, improved, err
		}
		if len(tasks) == 0 {
			return tr, lnL, improved, nil
		}
		results, err := s.dispatchRound(kind, taxaInTree, tasks, genBytes)
		if err != nil {
			return nil, 0, improved, err
		}
		best := bestOf(results)
		if best.LnL <= lnL+s.cfg.Epsilon {
			return tr, lnL, improved, nil
		}
		improved++
		bestTree, err := tree.ParseNewick(best.Newick, s.cfg.Taxa)
		if err != nil {
			return nil, 0, improved, err
		}
		tr, lnL, err = s.smoothRound(RoundSmooth, bestTree, taxaInTree)
		if err != nil {
			return nil, 0, improved, err
		}
	}
	return tr, lnL, improved, nil
}
