package mlsearch

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTaskCodecRoundTrip(t *testing.T) {
	f := func(id, round uint64, newick string, localTaxon, passes int32) bool {
		in := Task{ID: id, Round: round, Newick: newick, LocalTaxon: localTaxon, Passes: passes}
		out, err := UnmarshalTask(MarshalTask(in))
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResultCodecRoundTrip(t *testing.T) {
	f := func(id, round uint64, newick string, lnl float64, ops uint64, worker int32) bool {
		if math.IsNaN(lnl) {
			lnl = -1234.5
		}
		in := Result{TaskID: id, Round: round, Newick: newick, LnL: lnl, Ops: ops, Worker: worker}
		out, err := UnmarshalResult(MarshalResult(in))
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTaskCodecRejectsTruncation(t *testing.T) {
	b := MarshalTask(Task{ID: 7, Newick: "(a,b,c);"})
	for cut := 0; cut < len(b); cut++ {
		if _, err := UnmarshalTask(b[:cut]); err == nil {
			t.Errorf("truncation at %d bytes accepted", cut)
		}
	}
	// Trailing garbage must also be rejected.
	if _, err := UnmarshalTask(append(b, 0xFF)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestRoundBatchCodec(t *testing.T) {
	batch := roundBatch{
		Round: 42,
		Tasks: []Task{
			{ID: 1, Round: 42, Newick: "(a,b,c);", LocalTaxon: -1, Passes: 2},
			{ID: 2, Round: 42, Newick: "((a,b),c,d);", LocalTaxon: 3, Passes: 8},
		},
	}
	out, err := unmarshalRoundBatch(marshalRoundBatch(batch))
	if err != nil {
		t.Fatal(err)
	}
	if out.Round != batch.Round || len(out.Tasks) != 2 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	for i := range batch.Tasks {
		if out.Tasks[i] != batch.Tasks[i] {
			t.Errorf("task %d: %+v != %+v", i, out.Tasks[i], batch.Tasks[i])
		}
	}
	if _, err := unmarshalRoundBatch([]byte{99}); err == nil {
		t.Error("wrong kind byte accepted")
	}
}

func TestRoundReplyCodec(t *testing.T) {
	reply := roundReply{
		Round: 9,
		Best:  Result{TaskID: 3, Round: 9, Newick: "((a,b),c,d);", LnL: -100.25, Ops: 777, Worker: 4},
		Stats: []Result{
			{TaskID: 1, Round: 9, LnL: -120.5, Ops: 500, Worker: 3},
			{TaskID: 3, Round: 9, LnL: -100.25, Ops: 777, Worker: 4},
		},
	}
	out, err := unmarshalRoundReply(marshalRoundReply(reply))
	if err != nil {
		t.Fatal(err)
	}
	if out.Best != reply.Best || len(out.Stats) != 2 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	for i := range reply.Stats {
		if out.Stats[i] != reply.Stats[i] {
			t.Errorf("stat %d mismatch", i)
		}
	}
}

func TestMonitorEventCodec(t *testing.T) {
	e := MonitorEvent{Kind: monWorkerDead, Worker: 5, Round: 11, Info: "task=19 timed out", At: 1234567890}
	out, err := unmarshalMonitorEvent(marshalMonitorEvent(e))
	if err != nil {
		t.Fatal(err)
	}
	if out != e {
		t.Errorf("%+v != %+v", out, e)
	}
	if _, err := unmarshalMonitorEvent(nil); err == nil {
		t.Error("empty event accepted")
	}
}

func TestNormalizeSeed(t *testing.T) {
	cases := map[int64]int64{
		-5: 1, 0: 1, 1: 1, 2: 3, 3: 3, 100: 101, 101: 101,
	}
	for in, want := range cases {
		if got := NormalizeSeed(in); got != want {
			t.Errorf("NormalizeSeed(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestTaxonOrderDeterministic(t *testing.T) {
	a := TaxonOrder(20, 7)
	b := TaxonOrder(20, 7)
	c := TaxonOrder(20, 9)
	if len(a) != 20 {
		t.Fatalf("order length %d", len(a))
	}
	same, diff := true, false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed gave different orders")
	}
	if !diff {
		t.Error("different seeds gave identical orders (suspicious)")
	}
	// Must be a permutation.
	seen := map[int]bool{}
	for _, v := range a {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", a)
		}
		seen[v] = true
	}
	// Even seeds are adjusted to the next odd seed.
	e := TaxonOrder(20, 6)
	o := TaxonOrder(20, 7)
	for i := range e {
		if e[i] != o[i] {
			t.Error("seed 6 should behave as seed 7")
			break
		}
	}
}

func TestLayoutValidate(t *testing.T) {
	good := Layout{Master: 0, Foreman: 1, Monitor: 2, Workers: []int{3, 4}}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := []Layout{
		{Master: 0, Foreman: 0, Monitor: -1, Workers: []int{1}},
		{Master: 0, Foreman: 1, Monitor: -1, Workers: nil},
		{Master: 0, Foreman: 1, Monitor: 1, Workers: []int{2}},
		{Master: 0, Foreman: 1, Monitor: -1, Workers: []int{1}},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("layout %d should fail: %+v", i, l)
		}
	}
}

func TestDefaultLayout(t *testing.T) {
	lay, err := DefaultLayout(4, true)
	if err != nil {
		t.Fatal(err)
	}
	if lay.Master != 0 || lay.Foreman != 1 || lay.Monitor != 2 || len(lay.Workers) != 1 {
		t.Errorf("layout = %+v", lay)
	}
	if _, err := DefaultLayout(3, true); err == nil {
		t.Error("size 3 with monitor should fail (paper: minimum 4)")
	}
	lay, err = DefaultLayout(3, false)
	if err != nil || len(lay.Workers) != 1 {
		t.Errorf("size 3 without monitor: %v %+v", err, lay)
	}
}
