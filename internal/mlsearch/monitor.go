package mlsearch

import (
	"fmt"
	"io"
	"time"

	"repro/internal/comm"
)

// The monitor (paper §2.2): "an optional process that provides
// instrumentation for the program". It receives event records from the
// foreman and aggregates dispatch counts, per-worker utilization, fault
// tolerance activity, and round timings.

// Monitor event kinds.
const (
	monRoundStart byte = 1 + iota
	monDispatch
	monResult
	monWorkerDead
	monWorkerRevived
	monRoundDone
	monWorkerJoined
	monWorkerLeft
	monInline
)

// MonitorEvent is one instrumentation record.
type MonitorEvent struct {
	// Kind is one of the mon* constants.
	Kind byte
	// Worker is the worker rank the event concerns (0 when N/A).
	Worker int32
	// Round is the round the event belongs to.
	Round uint64
	// Info is a free-form detail string.
	Info string
	// At is the event time in Unix nanoseconds.
	At int64
}

func marshalMonitorEvent(e MonitorEvent) []byte {
	var w wireWriter
	w.buf = append(w.buf, e.Kind)
	w.i32(e.Worker)
	w.u64(e.Round)
	w.str(e.Info)
	w.u64(uint64(e.At))
	return w.buf
}

func unmarshalMonitorEvent(b []byte) (MonitorEvent, error) {
	if len(b) == 0 {
		return MonitorEvent{}, fmt.Errorf("mlsearch: empty monitor event")
	}
	r := wireReader{buf: b[1:]}
	e := MonitorEvent{
		Kind:   b[0],
		Worker: r.i32("event worker"),
		Round:  r.u64("event round"),
		Info:   r.str("event info"),
	}
	e.At = int64(r.u64("event time"))
	return e, r.done("monitor event")
}

// MonitorStats aggregates a run's instrumentation.
type MonitorStats struct {
	// Rounds is the number of completed rounds.
	Rounds int
	// Dispatches counts task sends to workers.
	Dispatches int
	// Results counts results received from workers.
	Results int
	// TasksPerWorker counts results per worker rank.
	TasksPerWorker map[int]int
	// Deaths counts fault tolerance removals per worker rank.
	Deaths map[int]int
	// Revivals counts delinquent workers welcomed back per rank.
	Revivals map[int]int
	// Joins counts workers that joined the world at runtime.
	Joins int
	// Leaves counts workers whose connection dropped.
	Leaves int
	// Inline counts tasks the foreman evaluated itself because no live
	// workers remained.
	Inline int
	// Events retains the full event log.
	Events []MonitorEvent
}

// RunMonitor executes the monitor role until shutdown, writing a line per
// round to w (nil discards output) and returning the aggregate
// statistics.
func RunMonitor(c comm.Communicator, w io.Writer, verbose bool) (*MonitorStats, error) {
	stats := &MonitorStats{
		TasksPerWorker: map[int]int{},
		Deaths:         map[int]int{},
		Revivals:       map[int]int{},
	}
	logf := func(format string, args ...interface{}) {
		if w != nil {
			fmt.Fprintf(w, format, args...)
		}
	}
	var roundStart time.Time
	for {
		msg, err := c.Recv(comm.AnySource, comm.AnyTag)
		if err != nil {
			return stats, fmt.Errorf("mlsearch: monitor receive: %w", err)
		}
		if msg.Tag == comm.TagShutdown {
			logf("monitor: shutdown after %d rounds, %d results\n", stats.Rounds, stats.Results)
			return stats, nil
		}
		if msg.Tag != comm.TagEvent {
			continue
		}
		e, err := unmarshalMonitorEvent(msg.Data)
		if err != nil {
			return stats, err
		}
		stats.Events = append(stats.Events, e)
		switch e.Kind {
		case monRoundStart:
			roundStart = time.Unix(0, e.At)
			if verbose {
				logf("monitor: round %d start (%s)\n", e.Round, e.Info)
			}
		case monDispatch:
			stats.Dispatches++
		case monResult:
			stats.Results++
			stats.TasksPerWorker[int(e.Worker)]++
		case monWorkerDead:
			stats.Deaths[int(e.Worker)]++
			logf("monitor: worker %d removed (%s)\n", e.Worker, e.Info)
		case monWorkerRevived:
			stats.Revivals[int(e.Worker)]++
			logf("monitor: worker %d reinstated\n", e.Worker)
		case monWorkerJoined:
			stats.Joins++
			logf("monitor: worker %d joined\n", e.Worker)
		case monWorkerLeft:
			stats.Leaves++
			logf("monitor: worker %d left (%s)\n", e.Worker, e.Info)
		case monInline:
			stats.Inline++
			logf("monitor: foreman evaluated inline (%s)\n", e.Info)
		case monRoundDone:
			stats.Rounds++
			if verbose {
				elapsed := time.Unix(0, e.At).Sub(roundStart)
				logf("monitor: round %d done in %v (%s)\n", e.Round, elapsed, e.Info)
			}
		}
	}
}
