package mlsearch

import (
	"fmt"
	"io"
	"time"

	"repro/internal/comm"
	"repro/internal/obs"
)

// The monitor (paper §2.2): "an optional process that provides
// instrumentation for the program". It receives event records from the
// foreman over the wire, decodes them into the typed events of the obs
// bus, and lets its two consumers — stats aggregation and line printing —
// run as ordinary bus subscribers. Anything else (a test assertion, a
// future remote exporter) can subscribe to the same bus without touching
// the receive loop, and the in-process RunObserver publishes the
// identical event types, so a consumer works against either source.

// Monitor event kinds.
const (
	monRoundStart byte = 1 + iota
	monDispatch
	monResult
	monWorkerDead
	monWorkerRevived
	monRoundDone
	monWorkerJoined
	monWorkerLeft
	monInline
)

// MonitorEvent is one instrumentation record as it travels on the wire.
type MonitorEvent struct {
	// Kind is one of the mon* constants.
	Kind byte
	// Worker is the worker rank the event concerns (0 when N/A).
	Worker int32
	// Round is the round the event belongs to.
	Round uint64
	// Job is the job the event belongs to (0 for membership events and
	// legacy single-job runs). Travels as an extension field, so old
	// monitors tolerate it.
	Job uint64
	// Info is a free-form detail string.
	Info string
	// At is the event time in Unix nanoseconds.
	At int64
}

// Extension tags of the MonitorEvent envelope.
const extMonJob byte = 1

func marshalMonitorEvent(e MonitorEvent) []byte {
	var w wireWriter
	w.buf = append(w.buf, e.Kind)
	w.i32(e.Worker)
	w.u64(e.Round)
	w.str(e.Info)
	w.u64(uint64(e.At))
	w.extU64(extMonJob, e.Job)
	return w.buf
}

func unmarshalMonitorEvent(b []byte) (MonitorEvent, error) {
	if len(b) == 0 {
		return MonitorEvent{}, fmt.Errorf("mlsearch: empty monitor event")
	}
	r := wireReader{buf: b[1:]}
	e := MonitorEvent{
		Kind:   b[0],
		Worker: r.i32("event worker"),
		Round:  r.u64("event round"),
		Info:   r.str("event info"),
	}
	e.At = int64(r.u64("event time"))
	// Unknown extension tags a newer foreman may append are tolerated
	// (rolling upgrades).
	err := r.extFields("monitor event extension", func(tag byte, payload []byte) {
		if tag == extMonJob {
			e.Job = extU64Val(payload)
		}
	})
	return e, err
}

// typed converts a wire event into its bus event, recovering the
// structured values the foreman folded into the Info string. Unknown
// kinds return nil.
func (e MonitorEvent) typed() any {
	at := time.Unix(0, e.At)
	switch e.Kind {
	case monRoundStart:
		ev := RoundStarted{Job: e.Job, Round: e.Round, At: at}
		fmt.Sscanf(e.Info, "tasks=%d", &ev.Tasks)
		return ev
	case monDispatch:
		ev := TaskDispatched{Worker: int(e.Worker), Job: e.Job, Round: e.Round}
		fmt.Sscanf(e.Info, "task=%d", &ev.TaskID)
		return ev
	case monResult:
		ev := TaskCompleted{Worker: int(e.Worker), Job: e.Job, Round: e.Round}
		fmt.Sscanf(e.Info, "task=%d lnl=%f", &ev.TaskID, &ev.LnL)
		return ev
	case monWorkerDead:
		ev := WorkerTimedOut{Worker: int(e.Worker), Job: e.Job, Round: e.Round}
		fmt.Sscanf(e.Info, "task=%d", &ev.TaskID)
		return ev
	case monWorkerRevived:
		return WorkerReinstated{Worker: int(e.Worker), Round: e.Round}
	case monWorkerJoined:
		return WorkerJoined{Worker: int(e.Worker)}
	case monWorkerLeft:
		return WorkerLeft{Worker: int(e.Worker)}
	case monInline:
		ev := InlineEvaluated{Job: e.Job, Round: e.Round}
		fmt.Sscanf(e.Info, "task=%d lnl=%f", &ev.TaskID, &ev.LnL)
		return ev
	case monRoundDone:
		ev := RoundCompleted{Job: e.Job, Round: e.Round, At: at}
		fmt.Sscanf(e.Info, "best=%f", &ev.BestLnL)
		return ev
	}
	return nil
}

// MonitorStats aggregates a run's instrumentation.
type MonitorStats struct {
	// Rounds is the number of completed rounds.
	Rounds int
	// Dispatches counts task sends to workers.
	Dispatches int
	// Results counts results received from workers.
	Results int
	// TasksPerWorker counts results per worker rank.
	TasksPerWorker map[int]int
	// Deaths counts fault tolerance removals per worker rank.
	Deaths map[int]int
	// Revivals counts delinquent workers welcomed back per rank.
	Revivals map[int]int
	// Joins counts workers that joined the world at runtime.
	Joins int
	// Leaves counts workers whose connection dropped.
	Leaves int
	// Inline counts tasks the foreman evaluated itself because no live
	// workers remained.
	Inline int
	// Events retains the full event log.
	Events []MonitorEvent
}

func newMonitorStats() *MonitorStats {
	return &MonitorStats{
		TasksPerWorker: map[int]int{},
		Deaths:         map[int]int{},
		Revivals:       map[int]int{},
	}
}

// AttachMonitorStats subscribes stats aggregation to a bus and returns
// the unsubscribe function. It works against either event source: the
// monitor rank's decoded wire events or an in-process RunObserver bus.
func AttachMonitorStats(bus *obs.Bus, stats *MonitorStats) func() {
	return bus.Subscribe(func(e any) {
		switch ev := e.(type) {
		case TaskDispatched:
			stats.Dispatches++
		case TaskCompleted:
			stats.Results++
			stats.TasksPerWorker[ev.Worker]++
		case WorkerTimedOut:
			stats.Deaths[ev.Worker]++
		case WorkerReinstated:
			stats.Revivals[ev.Worker]++
		case WorkerJoined:
			stats.Joins++
		case WorkerLeft:
			stats.Leaves++
		case InlineEvaluated:
			stats.Inline++
		case RoundCompleted:
			stats.Rounds++
		}
	})
}

// attachMonitorLog subscribes the line printer. Lines go through a
// LockedWriter as single Write calls, so concurrent writers sharing the
// underlying stream (the master's progress output, another goroutine's
// log) cannot interleave within a line.
func attachMonitorLog(bus *obs.Bus, w io.Writer, verbose bool) func() {
	if w == nil {
		return func() {}
	}
	out := obs.NewLockedWriter(w)
	// Round-start times are kept per job: with concurrent searches,
	// several rounds are open at once.
	roundStart := map[uint64]time.Time{}
	// jobTag renders a job qualifier; single-job runs (job 0) keep the
	// historical unqualified lines.
	jobTag := func(job uint64) string {
		if job == 0 {
			return ""
		}
		return fmt.Sprintf("job %d ", job)
	}
	return bus.Subscribe(func(e any) {
		switch ev := e.(type) {
		case RoundStarted:
			roundStart[ev.Job] = ev.At
			if verbose {
				fmt.Fprintf(out, "monitor: %sround %d start (tasks=%d)\n", jobTag(ev.Job), ev.Round, ev.Tasks)
			}
		case WorkerTimedOut:
			fmt.Fprintf(out, "monitor: worker %d removed (%stask %d requeued)\n", ev.Worker, jobTag(ev.Job), ev.TaskID)
		case WorkerReinstated:
			fmt.Fprintf(out, "monitor: worker %d reinstated\n", ev.Worker)
		case WorkerJoined:
			fmt.Fprintf(out, "monitor: worker %d joined\n", ev.Worker)
		case WorkerLeft:
			fmt.Fprintf(out, "monitor: worker %d left\n", ev.Worker)
		case InlineEvaluated:
			fmt.Fprintf(out, "monitor: foreman evaluated inline (%stask %d lnl=%.4f)\n", jobTag(ev.Job), ev.TaskID, ev.LnL)
		case RoundCompleted:
			if verbose {
				fmt.Fprintf(out, "monitor: %sround %d done in %v (best=%.4f)\n", jobTag(ev.Job), ev.Round, ev.At.Sub(roundStart[ev.Job]), ev.BestLnL)
			}
			delete(roundStart, ev.Job)
		}
	})
}

// RunMonitor executes the monitor role until shutdown, writing a line per
// event to w (nil discards output) and returning the aggregate
// statistics. The receive loop only decodes and publishes; aggregation
// and printing are bus subscribers.
func RunMonitor(c comm.Communicator, w io.Writer, verbose bool) (*MonitorStats, error) {
	bus := obs.NewBus()
	stats := newMonitorStats()
	AttachMonitorStats(bus, stats)
	attachMonitorLog(bus, w, verbose)
	out := obs.NewLockedWriter(w)
	for {
		msg, err := c.Recv(comm.AnySource, comm.AnyTag)
		if err != nil {
			return stats, fmt.Errorf("mlsearch: monitor receive: %w", err)
		}
		if msg.Tag == comm.TagShutdown {
			if w != nil {
				fmt.Fprintf(out, "monitor: shutdown after %d rounds, %d results\n", stats.Rounds, stats.Results)
			}
			return stats, nil
		}
		if msg.Tag != comm.TagEvent {
			continue
		}
		e, err := unmarshalMonitorEvent(msg.Data)
		if err != nil {
			return stats, err
		}
		stats.Events = append(stats.Events, e)
		if ev := e.typed(); ev != nil {
			bus.Publish(ev)
		}
	}
}
