package mlsearch

import (
	"math/rand"
	"testing"

	"repro/internal/likelihood"
	"repro/internal/tree"
)

// TestEvaluateIndependentOfTaskHistory pins the determinism guarantee the
// parallel runtime relies on: a task's result must be bit-identical no
// matter which tasks the evaluator (worker) processed before it. The
// shared-base rearrangement path applies and undoes SPR moves on a cached
// base tree, which permutes neighbor orderings; the likelihood engine
// must therefore never key floating-point evaluation order to Nbr order.
func TestEvaluateIndependentOfTaskHistory(t *testing.T) {
	cfg := testConfig(t, 10, 400, 21)

	// A smoothed base over all taxa, serialized the way search rounds do.
	eng, err := likelihood.New(cfg.Model, cfg.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	base, err := tree.RandomTree(cfg.Taxa, rand.New(rand.NewSource(5)), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.OptimizeBranches(base, likelihood.OptOptions{Passes: 2}); err != nil {
		t.Fatal(err)
	}
	nwk := base.Newick()

	parsed, err := tree.ParseNewick(nwk, cfg.Taxa)
	if err != nil {
		t.Fatal(err)
	}
	var tasks []Task
	if _, err := parsed.Rearrangements(2, func(_ *tree.Tree, cand tree.RearrangeCandidate) bool {
		mv := cand.Move()
		tasks = append(tasks, Task{
			ID: uint64(len(tasks) + 1), Round: 1, BaseNewick: nwk, LocalTaxon: -1,
			Passes: 2, InsertEdge: -1,
			MoveP: int32(mv.P), MoveS: int32(mv.S), MoveTA: int32(mv.TA), MoveTB: int32(mv.TB),
		})
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(tasks) < 8 {
		t.Fatalf("want a meaningful batch, got %d tasks", len(tasks))
	}

	run := func(order []int) map[uint64]Result {
		e2, err := likelihood.New(cfg.Model, cfg.Patterns)
		if err != nil {
			t.Fatal(err)
		}
		ev := NewEvaluator(e2, cfg.Taxa)
		out := make(map[uint64]Result, len(order))
		for _, i := range order {
			res, err := ev.Evaluate(tasks[i])
			if err != nil {
				t.Fatalf("task %d: %v", tasks[i].ID, err)
			}
			out[res.TaskID] = res
		}
		return out
	}

	fwd := make([]int, len(tasks))
	rev := make([]int, len(tasks))
	for i := range tasks {
		fwd[i] = i
		rev[i] = len(tasks) - 1 - i
	}
	a, b := run(fwd), run(rev)
	for id, ra := range a {
		rb := b[id]
		if ra.Newick != rb.Newick || ra.LnL != rb.LnL {
			t.Errorf("task %d depends on evaluation history:\n fwd lnL=%.15f %s\n rev lnL=%.15f %s",
				id, ra.LnL, ra.Newick, rb.LnL, rb.Newick)
		}
	}
}
