package mlsearch

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/tree"
)

func TestCheckpointCodecRoundTrip(t *testing.T) {
	cp := Checkpoint{
		Seed:      13,
		Jumble:    2,
		Order:     []int{4, 1, 0, 3, 2},
		NextIndex: 4,
		Phase:     PhaseAdding,
		Newick:    "((t00,t01),t03,t04);",
		LnL:       -1234.56789,
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Seed != cp.Seed || back.Jumble != cp.Jumble || back.NextIndex != cp.NextIndex ||
		back.Phase != cp.Phase || back.Newick != cp.Newick || back.LnL != cp.LnL {
		t.Errorf("round trip mismatch: %+v", back)
	}
	if len(back.Order) != 5 || back.Order[0] != 4 {
		t.Errorf("order %v", back.Order)
	}
}

func TestCheckpointReadErrors(t *testing.T) {
	bad := []string{
		"",
		"not a checkpoint\n",
		"fastdnaml-checkpoint v1\nbogus\n",
		"fastdnaml-checkpoint v1\nseed abc\n",
		"fastdnaml-checkpoint v1\nunknown 5\n",
		"fastdnaml-checkpoint v1\norder 1,x\n",
	}
	for _, s := range bad {
		if _, err := ReadCheckpoint(strings.NewReader(s)); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestCheckpointValidate(t *testing.T) {
	good := Checkpoint{Order: []int{0, 1, 2, 3}, NextIndex: 3, Phase: PhaseAdding, Newick: "x"}
	if err := good.Validate(4); err != nil {
		t.Error(err)
	}
	bad := []Checkpoint{
		{Order: []int{0, 1, 2}, NextIndex: 3, Phase: PhaseAdding, Newick: "x"},                // wrong count
		{Order: []int{0, 1, 1, 3}, NextIndex: 3, Phase: PhaseAdding, Newick: "x"},             // not a permutation
		{Order: []int{0, 1, 2, 3}, NextIndex: 2, Phase: PhaseAdding, Newick: "x"},             // index too small
		{Order: []int{0, 1, 2, 3}, NextIndex: 3, Phase: PhaseFinal, Newick: "x"},              // final with taxa left
		{Order: []int{0, 1, 2, 3}, NextIndex: 4, Phase: "weird", Newick: "x"},                 // bad phase
		{Order: []int{0, 1, 2, 3}, NextIndex: 4, Phase: PhaseDone, Newick: ""},                // no tree
		{Order: []int{0, 1, 2, 3, 4}, NextIndex: 5, Phase: PhaseDone, Newick: "((a,b),c,d);"}, // wrong taxa count
	}
	for i, cp := range bad {
		n := 4
		if i == len(bad)-1 {
			n = 4
		}
		if err := cp.Validate(n); err == nil {
			t.Errorf("case %d accepted: %+v", i, cp)
		}
	}
}

// TestResumeMatchesUninterrupted: stopping at every checkpoint and
// resuming must land on exactly the same final tree and likelihood as an
// uninterrupted run.
func TestResumeMatchesUninterrupted(t *testing.T) {
	cfg := testConfig(t, 8, 150, 27)
	disp, err := NewSerialDispatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSearch(cfg, disp)
	if err != nil {
		t.Fatal(err)
	}
	var cps []Checkpoint
	s.OnCheckpoint = func(cp Checkpoint) { cps = append(cps, cp) }
	full, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 {
		t.Fatal("no checkpoints emitted")
	}
	// One checkpoint per addition (5 for 8 taxa) plus the final one.
	if len(cps) != (8-3)+1 {
		t.Errorf("%d checkpoints, want %d", len(cps), 8-3+1)
	}
	last := cps[len(cps)-1]
	if last.Phase != PhaseDone || last.LnL != full.LnL {
		t.Errorf("final checkpoint %+v", last)
	}

	for i, cp := range cps {
		// Serialize through the file format to exercise the full path.
		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, cp); err != nil {
			t.Fatal(err)
		}
		parsed, err := ReadCheckpoint(&buf)
		if err != nil {
			t.Fatal(err)
		}
		disp2, err := NewSerialDispatcher(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := NewSearch(cfg, disp2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s2.Resume(parsed)
		if err != nil {
			t.Fatalf("resume from checkpoint %d: %v", i, err)
		}
		if res.BestNewick != full.BestNewick {
			t.Errorf("checkpoint %d (%s): resumed tree differs", i, cp.Phase)
		}
		if res.LnL != full.LnL {
			t.Errorf("checkpoint %d: resumed lnL %g != %g", i, res.LnL, full.LnL)
		}
	}
}

func TestResumeRejectsMismatchedTree(t *testing.T) {
	cfg := testConfig(t, 6, 100, 31)
	disp, _ := NewSerialDispatcher(cfg)
	s, _ := NewSearch(cfg, disp)
	order := TaxonOrder(6, cfg.Seed)
	// Build a tree whose taxa do not match the order prefix.
	wrong := []int{order[0], order[1], order[5]}
	tr, err := tree.Triple(cfg.Taxa, wrong[0], wrong[1], wrong[2])
	if err != nil {
		t.Fatal(err)
	}
	cp := Checkpoint{
		Seed: cfg.Seed, Order: order, NextIndex: 3,
		Phase: PhaseAdding, Newick: tr.Newick(), LnL: -1,
	}
	if order[2] != order[5] {
		if _, err := s.Resume(cp); err == nil {
			t.Error("mismatched checkpoint tree accepted")
		}
	}
}

// TestResumeDone returns immediately with the checkpointed answer.
func TestResumeDone(t *testing.T) {
	cfg := testConfig(t, 6, 100, 33)
	disp, _ := NewSerialDispatcher(cfg)
	s, _ := NewSearch(cfg, disp)
	var final Checkpoint
	s.OnCheckpoint = func(cp Checkpoint) { final = cp }
	full, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := NewSearch(cfg, disp)
	res, err := s2.Resume(final)
	if err != nil {
		t.Fatal(err)
	}
	if res.LnL != full.LnL || res.TotalTasks != 0 {
		t.Errorf("done-resume should be free: %+v", res)
	}
}

// TestEvaluateUserTrees ranks given topologies; the search's own result
// must rank at least as well as a random tree.
func TestEvaluateUserTrees(t *testing.T) {
	cfg := testConfig(t, 7, 200, 35)
	res, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	best, err := tree.ParseNewick(res.BestNewick, cfg.Taxa)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately different topology: a caterpillar over the same taxa.
	n := cfg.Taxa
	cat := fmt.Sprintf("(%s,%s,(%s,(%s,(%s,(%s,%s)))));", n[0], n[1], n[2], n[3], n[4], n[5], n[6])
	other, err := tree.ParseNewick(cat, cfg.Taxa)
	if err != nil {
		t.Fatal(err)
	}
	disp, _ := NewSerialDispatcher(cfg)
	ranked, err := EvaluateUserTrees(cfg, []*tree.Tree{other, best}, disp)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("%d results", len(ranked))
	}
	if ranked[0].DiffFromBest != 0 {
		t.Errorf("best tree diff %g", ranked[0].DiffFromBest)
	}
	if ranked[1].DiffFromBest > 0 {
		t.Errorf("second tree diff %g > 0", ranked[1].DiffFromBest)
	}
	if ranked[0].LnL < ranked[1].LnL {
		t.Error("ranking not sorted")
	}
	// The search's tree should win or tie (it was optimized for this data).
	if ranked[0].Index != 1 && ranked[0].LnL < res.LnL-1e-6 {
		t.Errorf("search tree outranked by a fixed guess: %+v", ranked)
	}
	// Every result returns its optimized tree.
	for _, r := range ranked {
		if r.Newick == "" {
			t.Error("missing optimized tree")
		}
	}
}

// TestEvaluateUserTreesParallelKeepsTrees: the parallel runtime must
// return every user tree's optimized form (KeepTree flag).
func TestEvaluateUserTreesParallelKeepsTrees(t *testing.T) {
	cfg := testConfig(t, 6, 120, 37)
	world := newTestWorld(t, 4)
	lay := Layout{Master: 0, Foreman: 1, Monitor: -1, Workers: []int{2, 3}}
	norm, err := cfg.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = RunForeman(world[1], lay, ForemanOptions{}) }()
	for _, w := range lay.Workers {
		go func(rank int) {
			_ = RunWorker(world[rank], lay, norm.Model, norm.Patterns, norm.Taxa, WorkerHooks{})
		}(w)
	}
	disp, err := NewForemanDispatcher(world[0], lay)
	if err != nil {
		t.Fatal(err)
	}
	defer disp.Shutdown()

	trees := []*tree.Tree{}
	n := cfg.Taxa
	for _, nwk := range []string{
		fmt.Sprintf("((%s,%s),%s,(%s,(%s,%s)));", n[0], n[1], n[2], n[3], n[4], n[5]),
		fmt.Sprintf("((%s,%s),%s,(%s,(%s,%s)));", n[0], n[2], n[1], n[3], n[4], n[5]),
		fmt.Sprintf("((%s,%s),%s,(%s,(%s,%s)));", n[0], n[3], n[1], n[2], n[4], n[5]),
	} {
		tr, err := tree.ParseNewick(nwk, cfg.Taxa)
		if err != nil {
			t.Fatal(err)
		}
		trees = append(trees, tr)
	}
	ranked, err := EvaluateUserTrees(cfg, trees, disp)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ranked {
		if r.Newick == "" {
			t.Errorf("result %d lost its tree through the parallel runtime", i)
		}
	}
	// Must agree with serial evaluation.
	sdisp, _ := NewSerialDispatcher(cfg)
	serial, err := EvaluateUserTrees(cfg, trees, sdisp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ranked {
		if ranked[i].LnL != serial[i].LnL || ranked[i].Index != serial[i].Index {
			t.Errorf("rank %d differs between serial and parallel", i)
		}
	}
}
