package mlsearch

import (
	"io"
)

// Deprecated wrappers for the pre-unification local runtime API. New
// code should call Run with RunOptions{Transport: Local}.

// LocalRunOptions configure RunLocalParallel.
//
// Deprecated: use RunOptions with Transport Local.
type LocalRunOptions struct {
	// Workers is the number of worker processes (>= 1).
	Workers int
	// WithMonitor adds the monitor process (paper: the fully
	// instrumented version needs master+foreman+monitor+1 worker = 4).
	WithMonitor bool
	// Jumbles is the number of random orderings to run (>= 1).
	Jumbles int
	// Foreman tunes dispatch fault tolerance.
	Foreman ForemanOptions
	// MonitorOut receives monitor output lines (nil discards).
	MonitorOut io.Writer
	// WorkerHooks, when non-nil, is applied to workers by rank for
	// fault injection tests.
	WorkerHooks map[int]WorkerHooks
	// Progress receives per-round events (jumble index, event).
	Progress func(int, ProgressEvent)
}

// LocalRunOutcome is the result of a local parallel run.
//
// Deprecated: use RunOutcome.
type LocalRunOutcome = RunOutcome

// RunLocalParallel runs the full parallel program in-process and returns
// every jumble's result. The world size is workers + 2 (or +3 with the
// monitor), mirroring the paper's processor accounting where "the
// dedication of three processors to control and monitoring tasks keeps
// the scalability well below perfect" (§3.2).
//
// Deprecated: use Run with RunOptions{Transport: Local}.
func RunLocalParallel(cfg Config, opt LocalRunOptions) (*RunOutcome, error) {
	return Run(cfg, RunOptions{
		Transport:   Local,
		Workers:     opt.Workers,
		WithMonitor: opt.WithMonitor,
		Jumbles:     opt.Jumbles,
		Foreman:     opt.Foreman,
		MonitorOut:  opt.MonitorOut,
		WorkerHooks: opt.WorkerHooks,
		Progress:    opt.Progress,
	})
}
