package mlsearch

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/comm"
)

// Local parallel runtime: all four roles run as goroutines connected by
// the in-process comm backend. This is how a single multi-core machine
// runs the parallel program, and how the integration tests drive the full
// master/foreman/worker/monitor protocol.

// LocalRunOptions configure RunLocalParallel.
type LocalRunOptions struct {
	// Workers is the number of worker processes (>= 1).
	Workers int
	// WithMonitor adds the monitor process (paper: the fully
	// instrumented version needs master+foreman+monitor+1 worker = 4).
	WithMonitor bool
	// Jumbles is the number of random orderings to run (>= 1).
	Jumbles int
	// Foreman tunes dispatch fault tolerance.
	Foreman ForemanOptions
	// MonitorOut receives monitor output lines (nil discards).
	MonitorOut io.Writer
	// WorkerHooks, when non-nil, is applied to workers by rank for
	// fault injection tests.
	WorkerHooks map[int]WorkerHooks
	// Progress receives per-round events (jumble index, event).
	Progress func(int, ProgressEvent)
}

// LocalRunOutcome is the result of a local parallel run.
type LocalRunOutcome struct {
	// Results holds one SearchResult per jumble.
	Results []*SearchResult
	// Monitor holds the monitor statistics when the monitor ran.
	Monitor *MonitorStats
}

// RunLocalParallel runs the full parallel program in-process and returns
// every jumble's result. The world size is workers + 2 (or +3 with the
// monitor), mirroring the paper's processor accounting where "the
// dedication of three processors to control and monitoring tasks keeps
// the scalability well below perfect" (§3.2).
func RunLocalParallel(cfg Config, opt LocalRunOptions) (*LocalRunOutcome, error) {
	if opt.Workers < 1 {
		return nil, fmt.Errorf("mlsearch: %d workers, need >= 1", opt.Workers)
	}
	if opt.Jumbles < 1 {
		opt.Jumbles = 1
	}
	norm, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	size := opt.Workers + 2
	if opt.WithMonitor {
		size++
	}
	world, err := comm.NewLocal(size)
	if err != nil {
		return nil, err
	}
	lay, err := DefaultLayout(size, opt.WithMonitor)
	if err != nil {
		return nil, err
	}

	var wg sync.WaitGroup
	errs := make(chan error, size)

	// Foreman.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunForeman(world[lay.Foreman], lay, opt.Foreman); err != nil {
			errs <- fmt.Errorf("foreman: %w", err)
		}
	}()

	// Monitor.
	outcome := &LocalRunOutcome{}
	if opt.WithMonitor {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats, err := RunMonitor(world[lay.Monitor], opt.MonitorOut, false)
			if err != nil {
				errs <- fmt.Errorf("monitor: %w", err)
				return
			}
			outcome.Monitor = stats
		}()
	}

	// Workers.
	for _, w := range lay.Workers {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			hooks := WorkerHooks{}
			if opt.WorkerHooks != nil {
				hooks = opt.WorkerHooks[rank]
			}
			if err := RunWorker(world[rank], lay, norm.Model, norm.Patterns, norm.Taxa, hooks); err != nil {
				errs <- fmt.Errorf("worker %d: %w", rank, err)
			}
		}(w)
	}

	// Master (this goroutine).
	results, masterErr := RunMaster(world[lay.Master], lay, norm, opt.Jumbles, opt.Progress)
	wg.Wait()
	close(errs)
	if masterErr != nil {
		return nil, masterErr
	}
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	outcome.Results = results
	return outcome, nil
}
