package mlsearch

import (
	"fmt"
	"math/rand"

	"repro/internal/likelihood"
	"repro/internal/model"
	"repro/internal/seq"
)

// Config describes one fastDNAml search over a fixed data set.
type Config struct {
	// Taxa are the taxon labels, aligned with the pattern rows.
	Taxa []string
	// Patterns is the compressed alignment.
	Patterns *seq.Patterns
	// Model is the substitution model (NewDefaultModel builds the F84
	// default with empirical frequencies).
	Model model.Model

	// Seed drives the random taxon ordering (paper step 1). fastDNAml
	// adjusts even user-supplied seeds so the generator attains its
	// maximum period (§2.1); Normalize applies the same rule.
	Seed int64
	// Jumble numbers this run among multiple random orderings; it is
	// informational (the caller varies Seed).
	Jumble int

	// RearrangeExtent is the number of vertices crossed during the
	// local rearrangements after each addition (paper step 4); 0
	// disables them, 1 is fastDNAml's default, 5 is the paper's test
	// setting.
	RearrangeExtent int
	// FinalExtent is the extent of the final rearrangement pass after
	// the last taxon (paper step 5); 0 means "same as RearrangeExtent".
	FinalExtent int
	// MaxRearrangeRounds bounds the improve-repeat loop per addition
	// (safety valve; fastDNAml loops until no improvement).
	MaxRearrangeRounds int
	// AdaptiveExtent enables the paper's planned "adaptive extents of
	// tree rearrangement" (§5): the extent used after each addition
	// grows by one (up to max(RearrangeExtent, FinalExtent)) when the
	// previous rearrangement loop improved the tree and shrinks by one
	// (down to 1) when it did not, spending effort where it pays.
	AdaptiveExtent bool

	// QuickInsertPasses bounds smoothing during insertion scoring (the
	// rapid approximation of §2.1). Default 2.
	QuickInsertPasses int
	// FullSmoothPasses bounds smoothing of round-best and final trees.
	// Default 8.
	FullSmoothPasses int
	// Epsilon is the minimum log-likelihood gain counted as an
	// improvement. Default 1e-5.
	Epsilon float64

	// KeepRoundLog retains per-round task statistics for the cluster
	// simulator. Default true.
	DisableRoundLog bool

	// Threads is the likelihood engine's kernel thread count for
	// evaluators this config builds (serial dispatcher, inline foreman
	// evaluator, local workers that do not override it). Default 1.
	// Results are bit-identical across thread counts: sharding is a pure
	// function of the data and reductions run in shard order.
	Threads int

	// Precision selects the CLV storage format for evaluators this config
	// builds. The zero value (likelihood.Float64) is exact mode and the
	// bit-identity reference; likelihood.Float32 trades the documented
	// tolerance (likelihood.Float32*Tol) for half the CLV memory traffic.
	Precision likelihood.Precision

	// Engine names the likelihood backend used by evaluators this config
	// builds (see likelihood.Engines for the registered set). Empty
	// selects likelihood.DefaultEngine, the CLV-cached production
	// backend; "reference" selects the direct-recomputation engine used
	// for differential testing. Normalize rejects unknown names.
	Engine string

	// SmoothMode selects the full-tree branch-smoothing algorithm (the
	// zero value is the sequential Newton sweep; likelihood.SmoothGradient
	// enables simultaneous smoothing on the linear-time all-branches
	// gradient). It applies to unrestricted smoothing only — insertion
	// scoring and the junction-local optimizations always sweep — and is
	// ignored by engines without the GradientSmoother capability.
	SmoothMode likelihood.SmoothMode
}

// Normalize validates the configuration and fills defaults, returning the
// effective configuration.
func (c Config) Normalize() (Config, error) {
	if len(c.Taxa) < 3 {
		return c, fmt.Errorf("mlsearch: %d taxa, need at least 3", len(c.Taxa))
	}
	if c.Patterns == nil || c.Patterns.NumSeqs() != len(c.Taxa) {
		return c, fmt.Errorf("mlsearch: patterns missing or over wrong number of sequences")
	}
	if c.Model == nil {
		return c, fmt.Errorf("mlsearch: no substitution model")
	}
	if c.RearrangeExtent < 0 || c.FinalExtent < 0 {
		return c, fmt.Errorf("mlsearch: negative rearrangement extent")
	}
	if c.FinalExtent == 0 {
		c.FinalExtent = c.RearrangeExtent
	}
	if c.MaxRearrangeRounds <= 0 {
		c.MaxRearrangeRounds = 50
	}
	if c.QuickInsertPasses <= 0 {
		c.QuickInsertPasses = 2
	}
	if c.FullSmoothPasses <= 0 {
		c.FullSmoothPasses = 8
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-5
	}
	if c.Threads < 1 {
		c.Threads = 1
	}
	eng, err := likelihood.ParseEngine(c.Engine)
	if err != nil {
		return c, fmt.Errorf("mlsearch: %w", err)
	}
	c.Engine = eng
	c.Seed = NormalizeSeed(c.Seed)
	return c, nil
}

// NormalizeSeed applies fastDNAml's seed rule: the seed must be positive
// and odd (even seeds halve the generator period, so they are adjusted;
// paper §2.1).
func NormalizeSeed(seed int64) int64 {
	if seed <= 0 {
		seed = 1
	}
	if seed%2 == 0 {
		seed++
	}
	return seed
}

// TaxonOrder returns the randomized insertion order of taxa 0..n-1 for
// the given (normalized) seed, reproducing step 1 of the algorithm.
func TaxonOrder(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(NormalizeSeed(seed)))
	return rng.Perm(n)
}

// NewDefaultModel builds fastDNAml's default model for a data set: F84
// with the data's empirical base frequencies and the default
// transition/transversion ratio (paper §2.1: "the base composition of the
// data is used as the equilibrium base frequencies").
func NewDefaultModel(p *seq.Patterns) (model.Model, error) {
	freqs := seq.EmpiricalFreqsPatterns(p)
	return model.NewF84(freqs, model.DefaultTTRatio)
}
