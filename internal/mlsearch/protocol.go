package mlsearch

import (
	"fmt"
)

// Control protocol between master, foreman, and monitor. The master sends
// a round's full task list to the foreman in one batch (the paper notes
// both fastDNAml and Ceron's code improve efficiency "by calculating in
// advance the list of trees to be dispatched to workers", §3.2); the
// foreman answers with every task's statistics plus the best tree.

// Layout assigns roles to ranks. The paper's parallel program has three
// core processes — master, foreman, and the optional monitor — plus a
// variable number of workers (§2.2).
type Layout struct {
	// Master generates and compares trees.
	Master int
	// Foreman dispatches trees to workers.
	Foreman int
	// Monitor receives instrumentation events; -1 disables it.
	Monitor int
	// Workers optimize trees. In an elastic layout this is the initial
	// membership (usually empty); workers announce themselves through the
	// transport's join handshake.
	Workers []int
	// Elastic marks a layout whose worker set changes at runtime: the
	// foreman folds TagJoin/TagLeave transport messages into its
	// membership instead of requiring Workers up front.
	Elastic bool
}

// ElasticLayout is the distributed runtime's layout: fixed role ranks for
// the master (0), foreman (1), and optional monitor (2), with workers
// assigned ranks dynamically as they join.
func ElasticLayout(withMonitor bool) Layout {
	lay := Layout{Master: 0, Foreman: 1, Monitor: -1, Elastic: true}
	if withMonitor {
		lay.Monitor = 2
	}
	return lay
}

// FirstDynamicRank is the first rank the transport may assign to a
// joining worker: one past the highest role rank.
func (l Layout) FirstDynamicRank() int {
	first := l.Master
	if l.Foreman > first {
		first = l.Foreman
	}
	if l.Monitor > first {
		first = l.Monitor
	}
	return first + 1
}

// DefaultLayout maps a world of the given size onto the paper's layout:
// rank 0 master, rank 1 foreman, rank 2 monitor (when enabled), the rest
// workers. The fully instrumented program needs at least four processes
// (paper §2.2); without the monitor, three.
func DefaultLayout(size int, withMonitor bool) (Layout, error) {
	lay := Layout{Master: 0, Foreman: 1, Monitor: -1}
	firstWorker := 2
	if withMonitor {
		lay.Monitor = 2
		firstWorker = 3
	}
	if size < firstWorker+1 {
		return Layout{}, fmt.Errorf("mlsearch: world size %d too small (need %d + >=1 worker)", size, firstWorker)
	}
	for r := firstWorker; r < size; r++ {
		lay.Workers = append(lay.Workers, r)
	}
	return lay, nil
}

// Validate checks the layout for overlaps and missing workers.
func (l Layout) Validate() error {
	seen := map[int]string{}
	claim := func(rank int, role string) error {
		if rank < 0 {
			return fmt.Errorf("mlsearch: negative rank for %s", role)
		}
		if prev, ok := seen[rank]; ok {
			return fmt.Errorf("mlsearch: rank %d assigned to both %s and %s", rank, prev, role)
		}
		seen[rank] = role
		return nil
	}
	if err := claim(l.Master, "master"); err != nil {
		return err
	}
	if err := claim(l.Foreman, "foreman"); err != nil {
		return err
	}
	if l.Monitor >= 0 {
		if err := claim(l.Monitor, "monitor"); err != nil {
			return err
		}
	}
	if len(l.Workers) == 0 && !l.Elastic {
		return fmt.Errorf("mlsearch: layout has no workers")
	}
	for _, w := range l.Workers {
		if err := claim(w, "worker"); err != nil {
			return err
		}
	}
	return nil
}

// control message kinds.
const (
	ctlRoundBatch byte = 1 + iota
	ctlRoundReply
)

// Extension tag shared by both control envelopes: the job id, appended
// after the fixed v1 layout so legacy decoders (which stopped at the
// task/stat list) would still parse the frame.
const extCtlJob byte = 1

// roundBatch is the master -> foreman message starting a round.
type roundBatch struct {
	Round uint64
	Tasks []Task
	// Job identifies the submitting search; several searches may have
	// batches open at the foreman at once. Zero is the legacy single-job
	// protocol.
	Job uint64
}

// roundReply is the foreman -> master answer: per-task statistics
// (Newick stripped to save bandwidth) and the best task's full result.
type roundReply struct {
	Round uint64
	Best  Result
	Stats []Result
	// Job echoes roundBatch.Job so the master-side mux can route the
	// reply to the search that is waiting on it.
	Job uint64
}

func marshalRoundBatch(b roundBatch) []byte {
	var w wireWriter
	w.buf = append(w.buf, ctlRoundBatch)
	w.u64(b.Round)
	w.i32(int32(len(b.Tasks)))
	for _, t := range b.Tasks {
		inner := MarshalTask(t)
		w.i32(int32(len(inner)))
		w.buf = append(w.buf, inner...)
	}
	w.extU64(extCtlJob, b.Job)
	return w.buf
}

func unmarshalRoundBatch(data []byte) (roundBatch, error) {
	if len(data) == 0 || data[0] != ctlRoundBatch {
		return roundBatch{}, fmt.Errorf("mlsearch: not a round batch")
	}
	r := wireReader{buf: data[1:]}
	out := roundBatch{Round: r.u64("round")}
	n := r.i32("task count")
	for i := int32(0); i < n && r.err == nil; i++ {
		ln := r.i32("task length")
		if r.err != nil {
			break
		}
		if ln < 0 || r.off+int(ln) > len(r.buf) {
			r.fail("task body")
			break
		}
		t, err := UnmarshalTask(r.buf[r.off : r.off+int(ln)])
		if err != nil {
			return roundBatch{}, err
		}
		r.off += int(ln)
		out.Tasks = append(out.Tasks, t)
	}
	err := r.extFields("round batch extension", func(tag byte, payload []byte) {
		if tag == extCtlJob {
			out.Job = extU64Val(payload)
		}
	})
	return out, err
}

func marshalRoundReply(rr roundReply) []byte {
	var w wireWriter
	w.buf = append(w.buf, ctlRoundReply)
	w.u64(rr.Round)
	best := MarshalResult(rr.Best)
	w.i32(int32(len(best)))
	w.buf = append(w.buf, best...)
	w.i32(int32(len(rr.Stats)))
	for _, res := range rr.Stats {
		inner := MarshalResult(res)
		w.i32(int32(len(inner)))
		w.buf = append(w.buf, inner...)
	}
	w.extU64(extCtlJob, rr.Job)
	return w.buf
}

func unmarshalRoundReply(data []byte) (roundReply, error) {
	if len(data) == 0 || data[0] != ctlRoundReply {
		return roundReply{}, fmt.Errorf("mlsearch: not a round reply")
	}
	r := wireReader{buf: data[1:]}
	out := roundReply{Round: r.u64("round")}
	bl := r.i32("best length")
	if r.err == nil && (bl < 0 || r.off+int(bl) > len(r.buf)) {
		r.fail("best body")
	}
	if r.err == nil {
		best, err := UnmarshalResult(r.buf[r.off : r.off+int(bl)])
		if err != nil {
			return roundReply{}, err
		}
		out.Best = best
		r.off += int(bl)
	}
	n := r.i32("stat count")
	for i := int32(0); i < n && r.err == nil; i++ {
		ln := r.i32("stat length")
		if r.err != nil {
			break
		}
		if ln < 0 || r.off+int(ln) > len(r.buf) {
			r.fail("stat body")
			break
		}
		res, err := UnmarshalResult(r.buf[r.off : r.off+int(ln)])
		if err != nil {
			return roundReply{}, err
		}
		r.off += int(ln)
		out.Stats = append(out.Stats, res)
	}
	err := r.extFields("round reply extension", func(tag byte, payload []byte) {
		if tag == extCtlJob {
			out.Job = extU64Val(payload)
		}
	})
	return out, err
}
