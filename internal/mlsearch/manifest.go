package mlsearch

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Multi-jumble checkpointing. A single Checkpoint describes one
// ordering; a run with Jumbles > 1 has several searches in flight at
// once, so its restart file is a manifest: one checkpoint block per
// jumble that has reported a position (done jumbles keep their final
// PhaseDone block, so a resumed run returns their results without
// re-running them). The file is rewritten atomically on every update —
// a crash mid-write leaves the previous complete manifest in place.

// Manifest is the resumable position of a multi-jumble run.
type Manifest struct {
	// Jumbles is the run's total jumble count.
	Jumbles int
	// Checkpoints holds the latest checkpoint per jumble index. Jumbles
	// that have not reported yet have no entry and restart from their
	// derived seed.
	Checkpoints map[int]Checkpoint
}

// NewManifest builds an empty manifest for a run of the given size.
func NewManifest(jumbles int) *Manifest {
	return &Manifest{Jumbles: jumbles, Checkpoints: map[int]Checkpoint{}}
}

// Checkpoint returns jumble j's entry, if it has one.
func (m *Manifest) Checkpoint(j int) (Checkpoint, bool) {
	cp, ok := m.Checkpoints[j]
	return cp, ok
}

// Set records cp as its jumble's latest position.
func (m *Manifest) Set(cp Checkpoint) {
	if m.Checkpoints == nil {
		m.Checkpoints = map[int]Checkpoint{}
	}
	m.Checkpoints[cp.Jumble] = cp
}

// Done reports whether every jumble has finished.
func (m *Manifest) Done() bool {
	for j := 0; j < m.Jumbles; j++ {
		if cp, ok := m.Checkpoints[j]; !ok || cp.Phase != PhaseDone {
			return false
		}
	}
	return true
}

// WriteManifest writes the human-readable manifest format:
//
//	fastdnaml-manifest v1
//	jumbles <n>
//	begin jumble <j>
//	<checkpoint key-value lines>
//	end jumble
//
// Blocks are ordered by jumble index so identical states produce
// identical files.
func WriteManifest(w io.Writer, m *Manifest) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "fastdnaml-manifest v1")
	fmt.Fprintf(bw, "jumbles %d\n", m.Jumbles)
	idx := make([]int, 0, len(m.Checkpoints))
	for j := range m.Checkpoints {
		idx = append(idx, j)
	}
	sort.Ints(idx)
	for _, j := range idx {
		cp := m.Checkpoints[j]
		if cp.Jumble != j {
			return fmt.Errorf("mlsearch: manifest entry %d holds checkpoint for jumble %d", j, cp.Jumble)
		}
		fmt.Fprintf(bw, "begin jumble %d\n", j)
		if err := writeCheckpointBody(bw, cp); err != nil {
			return err
		}
		fmt.Fprintln(bw, "end jumble")
	}
	return bw.Flush()
}

// ReadManifest parses a manifest, applying the same strict key checking
// as ReadCheckpoint to every block.
func ReadManifest(r io.Reader) (*Manifest, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != "fastdnaml-manifest v1" {
		return nil, fmt.Errorf("mlsearch: not a fastdnaml manifest")
	}
	m := NewManifest(0)
	sawJumbles := false
	var block *checkpointParser
	blockIdx := -1
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "jumbles "):
			if block != nil {
				return nil, fmt.Errorf("mlsearch: manifest %q inside a jumble block", line)
			}
			if sawJumbles {
				return nil, fmt.Errorf("mlsearch: duplicate manifest key %q", "jumbles")
			}
			n, err := strconv.Atoi(strings.TrimPrefix(line, "jumbles "))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("mlsearch: bad manifest jumble count %q", line)
			}
			m.Jumbles = n
			sawJumbles = true
		case strings.HasPrefix(line, "begin jumble "):
			if block != nil {
				return nil, fmt.Errorf("mlsearch: nested jumble block at %q", line)
			}
			j, err := strconv.Atoi(strings.TrimPrefix(line, "begin jumble "))
			if err != nil || j < 0 {
				return nil, fmt.Errorf("mlsearch: bad manifest block header %q", line)
			}
			if _, dup := m.Checkpoints[j]; dup {
				return nil, fmt.Errorf("mlsearch: duplicate manifest block for jumble %d", j)
			}
			block, blockIdx = newCheckpointParser(), j
		case line == "end jumble":
			if block == nil {
				return nil, fmt.Errorf("mlsearch: end jumble without begin")
			}
			cp, err := block.finish()
			if err != nil {
				return nil, err
			}
			if cp.Jumble != blockIdx {
				return nil, fmt.Errorf("mlsearch: manifest block %d holds checkpoint for jumble %d", blockIdx, cp.Jumble)
			}
			m.Checkpoints[blockIdx] = cp
			block = nil
		default:
			if block == nil {
				return nil, fmt.Errorf("mlsearch: unexpected manifest line %q", line)
			}
			if err := block.line(line); err != nil {
				return nil, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if block != nil {
		return nil, fmt.Errorf("mlsearch: manifest truncated inside jumble %d block", blockIdx)
	}
	if !sawJumbles {
		return nil, fmt.Errorf("mlsearch: manifest missing required key %q", "jumbles")
	}
	for j := range m.Checkpoints {
		if j >= m.Jumbles {
			return nil, fmt.Errorf("mlsearch: manifest block for jumble %d in a %d-jumble run", j, m.Jumbles)
		}
	}
	return m, nil
}

// SaveManifest atomically rewrites path: write to a temp file in the
// same directory, then rename over the target.
func SaveManifest(path string, m *Manifest) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".manifest-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteManifest(tmp, m); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadManifest reads a manifest file.
func LoadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadManifest(f)
}

// LoadResume sniffs a restart file: a single-jumble checkpoint returns
// (cp, nil), a multi-jumble manifest returns (nil, m).
func LoadResume(path string) (*Checkpoint, *Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	first, _, _ := strings.Cut(string(data), "\n")
	if strings.TrimSpace(first) == "fastdnaml-manifest v1" {
		m, err := ReadManifest(strings.NewReader(string(data)))
		return nil, m, err
	}
	cp, err := ReadCheckpoint(strings.NewReader(string(data)))
	if err != nil {
		return nil, nil, err
	}
	return &cp, nil, nil
}

// ManifestRecorder folds the checkpoint stream of concurrent searches
// into one manifest file. It is safe for use from OnCheckpoint callbacks
// running on several search goroutines.
type ManifestRecorder struct {
	mu   sync.Mutex
	path string
	m    *Manifest
}

// NewManifestRecorder starts a recorder over path. When resuming, seed
// it with the loaded manifest via prior (nil starts empty).
func NewManifestRecorder(path string, jumbles int, prior *Manifest) *ManifestRecorder {
	m := prior
	if m == nil {
		m = NewManifest(jumbles)
	}
	m.Jumbles = jumbles
	return &ManifestRecorder{path: path, m: m}
}

// Record folds one checkpoint in and rewrites the file.
func (r *ManifestRecorder) Record(cp Checkpoint) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m.Set(cp)
	return SaveManifest(r.path, r.m)
}

// Flush atomically rewrites the file from the current in-memory state.
// An interrupted run calls it after its searches stop so the on-disk
// manifest is guaranteed to match the last reported checkpoints.
func (r *ManifestRecorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return SaveManifest(r.path, r.m)
}

// Manifest returns a snapshot copy of the recorder's current state.
func (r *ManifestRecorder) Manifest() *Manifest {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := NewManifest(r.m.Jumbles)
	for j, cp := range r.m.Checkpoints {
		m.Checkpoints[j] = cp
	}
	return m
}
