package mlsearch

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/likelihood"
	"repro/internal/seq"

	"repro/internal/model"
)

// The worker (paper §2.2): "worker processes that, in parallel, calculate
// branch lengths for a tree topology and the likelihood value for the
// tree. The worker processes communicate only with the foreman process."

// WorkerHooks allow tests (and the fault injection example) to perturb a
// worker's behaviour.
type WorkerHooks struct {
	// BeforeReply, when non-nil, runs after evaluation and before the
	// result is sent. Returning false drops the reply (simulating a
	// crashed or stalled worker); the foreman's timeout machinery must
	// then recover.
	BeforeReply func(task Task, result Result) bool
	// OnAttach, when non-nil, receives the worker's communicator right
	// after it connects and learns its rank. The chaos tests use it to
	// sever a live connection from outside (simulating a SIGKILL).
	OnAttach func(c comm.Communicator)
	// Obs, when non-nil, receives the worker's serve-loop
	// instrumentation: tasks served, evaluation latency, engine cache and
	// kernel counters, reconnects.
	Obs *WorkerObserver
	// Threads is the likelihood engine's kernel thread count (values < 2
	// keep the engine single-threaded). Sharding is deterministic: a
	// threaded worker returns bit-identical results to a serial one.
	Threads int
	// Precision selects the worker engine's CLV storage format. The zero
	// value is likelihood.Float64 (exact mode); TCP workers default to
	// the precision the master's data bundle requests unless the hook was
	// set explicitly (see PrecisionSet).
	Precision likelihood.Precision
	// PrecisionSet marks Precision as an explicit per-worker override, so
	// a worker can be forced to a precision different from the bundle's.
	PrecisionSet bool
	// Engine names the likelihood backend the worker builds (see
	// likelihood.Engines). Empty means likelihood.DefaultEngine; TCP
	// workers default to the engine the master's data bundle requests
	// unless the hook was set explicitly (see EngineSet).
	Engine string
	// EngineSet marks Engine as an explicit per-worker override, so a
	// worker can be forced to a backend different from the bundle's.
	EngineSet bool
	// SmoothMode selects the full-smoothing algorithm for this worker's
	// evaluator (see Config.SmoothMode). TCP workers default to the mode
	// the master's data bundle requests unless the hook was set
	// explicitly (see SmoothModeSet).
	SmoothMode likelihood.SmoothMode
	// SmoothModeSet marks SmoothMode as an explicit per-worker override.
	SmoothModeSet bool
}

// RunWorker executes the worker loop: receive a task from the foreman,
// evaluate it, send the result back, until a shutdown message arrives.
func RunWorker(c comm.Communicator, lay Layout, m model.Model, pat *seq.Patterns, taxa []string, hooks WorkerHooks) error {
	eng, err := likelihood.NewEngine(hooks.Engine, m, pat, likelihood.EngineOptions{
		Precision: hooks.Precision,
		Threads:   hooks.Threads,
	})
	if err != nil {
		return err
	}
	defer likelihood.CloseEngine(eng)
	ev := NewEvaluator(eng, taxa)
	ev.SetSmoothMode(hooks.SmoothMode)
	hooks.Obs.Attached(c.Rank())
	for {
		msg, err := c.Recv(comm.AnySource, comm.AnyTag)
		if err != nil {
			return fmt.Errorf("mlsearch: worker %d receive: %w", c.Rank(), err)
		}
		switch msg.Tag {
		case comm.TagShutdown:
			// Acknowledge so the foreman knows the shutdown was delivered
			// before the transport is torn down. Best effort: the route
			// may already be gone.
			_ = c.Send(lay.Foreman, comm.TagShutdown, nil)
			return nil
		case comm.TagTask:
			task, err := UnmarshalTask(msg.Data)
			if err != nil {
				return err
			}
			comm.PutBuf(msg.Data) // decoded (strings copied); recycle
			res, err := ev.Evaluate(task)
			if err != nil {
				return fmt.Errorf("mlsearch: worker %d: %w", c.Rank(), err)
			}
			res.Worker = int32(c.Rank())
			hooks.Obs.Served(res)
			hooks.Obs.Engine(likelihood.EngineThreads(eng), likelihood.StatsOf(eng).ShardDispatches)
			if hooks.BeforeReply != nil && !hooks.BeforeReply(task, res) {
				continue
			}
			buf := MarshalResult(res)
			err = c.Send(lay.Foreman, comm.TagResult, buf)
			comm.PutBuf(buf)
			if err != nil {
				return fmt.Errorf("mlsearch: worker %d send: %w", c.Rank(), err)
			}
		default:
			return fmt.Errorf("mlsearch: worker %d got unexpected tag %d", c.Rank(), msg.Tag)
		}
	}
}
