package mlsearch

import (
	"fmt"
	"sync"

	"repro/internal/comm"
)

// Master-side job multiplexing. Several Search instances (jumbles,
// bootstrap replicates) run concurrently as goroutines, each driving its
// own Dispatcher; all of them share one communicator to the foreman. The
// comm contract allows at most one goroutine to block in Recv on an
// endpoint at a time, so the mux uses a leader/followers protocol: a
// token (a 1-buffered channel) elects whichever waiting dispatcher grabs
// it as the receiver for everyone. The leader pulls one control reply
// off the wire, routes it to the waiter registered under the reply's job
// id, returns the token, and loops until its own reply arrives. No
// standing receiver goroutine exists, so an idle mux holds no resources
// and needs no Close.

// dispatcherSource mints per-search dispatchers; it is how runJumbles
// gives each concurrent search its own job lane without knowing the
// transport.
type dispatcherSource interface {
	NewDispatcher() (Dispatcher, error)
}

// fixedSource hands every search the same dispatcher — the serial path,
// where searches never overlap.
type fixedSource struct{ d Dispatcher }

func (s fixedSource) NewDispatcher() (Dispatcher, error) { return s.d, nil }

// muxReply is what a waiting dispatcher receives: its round reply or the
// transport error that ended the run.
type muxReply struct {
	reply roundReply
	err   error
}

// JobMux is the master side of the multi-job protocol: it assigns job
// ids, sends round batches tagged with them, and demultiplexes the
// foreman's replies back to the dispatcher that is waiting on each job.
type JobMux struct {
	c   comm.Communicator
	lay Layout

	mu      sync.Mutex
	nextJob uint64
	waiters map[uint64]chan muxReply
	err     error // sticky transport error; fails all future dispatches

	// token elects the receiving leader; holds exactly one value when no
	// dispatcher is receiving.
	token chan struct{}

	shutdownOnce sync.Once
	shutdownErr  error
}

// NewJobMux builds the mux over the master's communicator.
func NewJobMux(c comm.Communicator, lay Layout) (*JobMux, error) {
	if err := lay.Validate(); err != nil {
		return nil, err
	}
	if c.Rank() != lay.Master {
		return nil, fmt.Errorf("mlsearch: job mux on rank %d, layout says master is %d", c.Rank(), lay.Master)
	}
	m := &JobMux{c: c, lay: lay, waiters: map[uint64]chan muxReply{}, token: make(chan struct{}, 1)}
	m.token <- struct{}{}
	return m, nil
}

// NewDispatcher implements dispatcherSource: each call opens a fresh job
// lane (ids start at 1; 0 is the legacy single-job protocol).
func (m *JobMux) NewDispatcher() (Dispatcher, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return nil, m.err
	}
	m.nextJob++
	return &JobDispatcher{mux: m, job: m.nextJob}, nil
}

// Shutdown tells the foreman to stop, which cascades to workers and the
// monitor. Safe to call once all searches have finished; concurrent
// dispatches after Shutdown fail.
func (m *JobMux) Shutdown() error {
	m.shutdownOnce.Do(func() {
		m.shutdownErr = m.c.Send(m.lay.Foreman, comm.TagShutdown, nil)
	})
	return m.shutdownErr
}

// dispatch sends one round batch for a job and blocks until its reply
// arrives, receiving on behalf of other jobs while it waits.
func (m *JobMux) dispatch(job, round uint64, tasks []Task) (roundReply, error) {
	ch := make(chan muxReply, 1)
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		return roundReply{}, err
	}
	if _, dup := m.waiters[job]; dup {
		m.mu.Unlock()
		return roundReply{}, fmt.Errorf("mlsearch: job %d already has a round in flight", job)
	}
	m.waiters[job] = ch
	m.mu.Unlock()

	batch := roundBatch{Round: round, Tasks: tasks, Job: job}
	if err := m.c.Send(m.lay.Foreman, comm.TagControl, marshalRoundBatch(batch)); err != nil {
		m.mu.Lock()
		delete(m.waiters, job)
		m.mu.Unlock()
		return roundReply{}, fmt.Errorf("mlsearch: master send: %w", err)
	}

	for {
		select {
		case r := <-ch:
			return r.reply, r.err
		case <-m.token:
			// Leader: our reply may have been routed while we were
			// waiting for the token — check before blocking in Recv.
			select {
			case r := <-ch:
				m.token <- struct{}{}
				return r.reply, r.err
			default:
			}
			if err := m.recvOne(); err != nil {
				m.fail(err)
			}
			m.token <- struct{}{}
		}
	}
}

// recvOne pulls one control reply off the wire and routes it.
func (m *JobMux) recvOne() error {
	msg, err := m.c.Recv(m.lay.Foreman, comm.TagControl)
	if err != nil {
		return fmt.Errorf("mlsearch: master receive: %w", err)
	}
	reply, err := unmarshalRoundReply(msg.Data)
	if err != nil {
		return err
	}
	m.mu.Lock()
	ch := m.waiters[reply.Job]
	delete(m.waiters, reply.Job)
	m.mu.Unlock()
	if ch != nil {
		ch <- muxReply{reply: reply}
	}
	return nil
}

// fail records a sticky error and wakes every waiting dispatcher with it.
func (m *JobMux) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	for job, ch := range m.waiters {
		delete(m.waiters, job)
		ch <- muxReply{err: m.err}
	}
	m.mu.Unlock()
}

// JobDispatcher is one search's lane through a JobMux; it implements
// Dispatcher exactly like ForemanDispatcher, with per-job rounds.
type JobDispatcher struct {
	mux   *JobMux
	job   uint64
	round uint64
}

// Job returns the lane's job id.
func (d *JobDispatcher) Job() uint64 { return d.job }

// Dispatch implements Dispatcher: one batch to the foreman, one reply
// back, with the best task's tree re-attached to its stats entry.
func (d *JobDispatcher) Dispatch(tasks []Task) ([]Result, error) {
	d.round++
	for i := range tasks {
		tasks[i].Job = d.job
	}
	reply, err := d.mux.dispatch(d.job, d.round, tasks)
	if err != nil {
		return nil, err
	}
	if reply.Round != d.round {
		return nil, fmt.Errorf("mlsearch: job %d reply for round %d, expected %d", d.job, reply.Round, d.round)
	}
	out := make([]Result, len(reply.Stats))
	for i, r := range reply.Stats {
		if r.TaskID == reply.Best.TaskID && r.Newick == "" {
			r.Newick = reply.Best.Newick
		}
		out[i] = r
	}
	return out, nil
}
