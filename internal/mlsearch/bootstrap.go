package mlsearch

import (
	"bytes"
	"fmt"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/seq"
)

// Worker bootstrap for distributed (TCP) runs. MPI programs typically
// broadcast the sequence data to every rank at startup; here a joining
// worker sends a JOIN control message to rank 0 and receives a DataBundle
// carrying the alignment and model settings, then enters the normal
// worker loop. This is what lets the paper's geographically distributed
// PVM workers and the planned Condor/screensaver workers (§2.2, §5) run
// with nothing but a socket to the master.

// DataBundle is everything a worker needs to evaluate tasks.
type DataBundle struct {
	// PhylipText is the alignment in interleaved PHYLIP form.
	PhylipText []byte
	// TTRatio is the F84 transition/transversion ratio.
	TTRatio float64
	// SiteRates are optional per-site rates (empty = homogeneous).
	SiteRates []float64
	// Weights are optional per-site weights (empty = uniform).
	Weights []float64
}

const (
	bootJoin byte = 0x4A // 'J'
	bootData byte = 0x44 // 'D'
)

// MarshalDataBundle encodes a bundle.
func MarshalDataBundle(b DataBundle) []byte {
	var w wireWriter
	w.buf = append(w.buf, bootData)
	w.str(string(b.PhylipText))
	w.f64(b.TTRatio)
	w.i32(int32(len(b.SiteRates)))
	for _, r := range b.SiteRates {
		w.f64(r)
	}
	w.i32(int32(len(b.Weights)))
	for _, x := range b.Weights {
		w.f64(x)
	}
	return w.buf
}

// UnmarshalDataBundle decodes a bundle.
func UnmarshalDataBundle(data []byte) (DataBundle, error) {
	if len(data) == 0 || data[0] != bootData {
		return DataBundle{}, fmt.Errorf("mlsearch: not a data bundle")
	}
	r := wireReader{buf: data[1:]}
	b := DataBundle{
		PhylipText: []byte(r.str("bundle alignment")),
		TTRatio:    r.f64("bundle ratio"),
	}
	n := r.i32("bundle rate count")
	for i := int32(0); i < n && r.err == nil; i++ {
		b.SiteRates = append(b.SiteRates, r.f64("bundle rate"))
	}
	n = r.i32("bundle weight count")
	for i := int32(0); i < n && r.err == nil; i++ {
		b.Weights = append(b.Weights, r.f64("bundle weight"))
	}
	return b, r.done("data bundle")
}

// Build materializes the bundle into the worker-side dataset.
func (b DataBundle) Build() (model.Model, *seq.Patterns, []string, error) {
	a, err := seq.ReadPhylip(bytes.NewReader(b.PhylipText))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("mlsearch: bundle alignment: %w", err)
	}
	var rates, weights []float64
	if len(b.SiteRates) > 0 {
		rates = b.SiteRates
	}
	if len(b.Weights) > 0 {
		weights = b.Weights
	}
	pat, err := seq.Compress(a, seq.CompressOptions{Rates: rates, Weights: weights})
	if err != nil {
		return nil, nil, nil, err
	}
	ttr := b.TTRatio
	if ttr <= 0 {
		ttr = model.DefaultTTRatio
	}
	m, err := model.NewF84(seq.EmpiricalFreqsPatterns(pat), ttr)
	if err != nil {
		return nil, nil, nil, err
	}
	return m, pat, a.Names, nil
}

// ServeBundles answers the JOIN message of each expected worker with the
// bundle. Rank 0 (the master) calls it before starting the search.
func ServeBundles(c comm.Communicator, bundle DataBundle, expected int) error {
	payload := MarshalDataBundle(bundle)
	for i := 0; i < expected; i++ {
		msg, err := c.Recv(comm.AnySource, comm.TagControl)
		if err != nil {
			return fmt.Errorf("mlsearch: waiting for workers (%d/%d joined): %w", i, expected, err)
		}
		if len(msg.Data) != 1 || msg.Data[0] != bootJoin {
			return fmt.Errorf("mlsearch: unexpected control message from rank %d during join", msg.From)
		}
		if err := c.Send(msg.From, comm.TagControl, payload); err != nil {
			return err
		}
	}
	return nil
}

// JoinAndServe is the distributed worker's entry point: announce to rank
// 0, receive the data bundle, and run the worker loop against the
// layout's foreman.
func JoinAndServe(c comm.Communicator, lay Layout, hooks WorkerHooks) error {
	if err := c.Send(0, comm.TagControl, []byte{bootJoin}); err != nil {
		return fmt.Errorf("mlsearch: join: %w", err)
	}
	msg, err := c.Recv(0, comm.TagControl)
	if err != nil {
		return fmt.Errorf("mlsearch: awaiting data bundle: %w", err)
	}
	bundle, err := UnmarshalDataBundle(msg.Data)
	if err != nil {
		return err
	}
	m, pat, taxa, err := bundle.Build()
	if err != nil {
		return err
	}
	return RunWorker(c, lay, m, pat, taxa, hooks)
}
