package mlsearch

import (
	"bytes"
	"fmt"

	"repro/internal/likelihood"
	"repro/internal/model"
	"repro/internal/seq"
)

// Worker bootstrap for distributed (TCP) runs. MPI programs typically
// broadcast the sequence data to every rank at startup; here the master
// hands the router a welcome payload — the layout's role ranks plus a
// DataBundle carrying the alignment and model settings — and the
// transport delivers it inside the join handshake, so a worker is fully
// provisioned in one round trip. This is what lets the paper's
// geographically distributed PVM workers and the planned
// Condor/screensaver workers (§2.2, §5) run with nothing but a socket to
// the master.

// DataBundle is everything a worker needs to evaluate tasks.
type DataBundle struct {
	// PhylipText is the alignment in interleaved PHYLIP form.
	PhylipText []byte
	// TTRatio is the F84 transition/transversion ratio.
	TTRatio float64
	// SiteRates are optional per-site rates (empty = homogeneous).
	SiteRates []float64
	// Weights are optional per-site weights (empty = uniform).
	Weights []float64
	// Precision is the CLV storage format workers should evaluate with
	// (zero value = likelihood.Float64). A worker started with an
	// explicit -precision flag overrides it locally.
	Precision likelihood.Precision
	// Engine names the likelihood backend workers should build (see
	// likelihood.Engines; empty = likelihood.DefaultEngine). A worker
	// started with an explicit -engine flag overrides it locally.
	Engine string
	// SmoothMode is the full-smoothing algorithm workers should apply
	// (zero value = the sequential sweep; see Config.SmoothMode). A
	// worker started with an explicit -smooth-mode flag overrides it
	// locally.
	SmoothMode likelihood.SmoothMode
}

// Extension tags of the DataBundle envelope.
const (
	extBundleEngine byte = 1 + iota
	extBundleSmoothMode
)

const (
	bootData    byte = 0x44 // 'D'
	bootWelcome byte = 0x57 // 'W'
)

// MarshalDataBundle encodes a bundle.
func MarshalDataBundle(b DataBundle) []byte {
	var w wireWriter
	w.buf = append(w.buf, bootData)
	w.str(string(b.PhylipText))
	w.f64(b.TTRatio)
	w.i32(int32(len(b.SiteRates)))
	for _, r := range b.SiteRates {
		w.f64(r)
	}
	w.i32(int32(len(b.Weights)))
	for _, x := range b.Weights {
		w.f64(x)
	}
	w.i32(int32(b.Precision))
	if b.Engine != "" {
		w.ext(extBundleEngine, []byte(b.Engine))
	}
	if b.SmoothMode != likelihood.SmoothSweep {
		w.ext(extBundleSmoothMode, []byte(b.SmoothMode.String()))
	}
	return w.buf
}

// UnmarshalDataBundle decodes a bundle.
func UnmarshalDataBundle(data []byte) (DataBundle, error) {
	if len(data) == 0 || data[0] != bootData {
		return DataBundle{}, fmt.Errorf("mlsearch: not a data bundle")
	}
	r := wireReader{buf: data[1:]}
	b := DataBundle{
		PhylipText: []byte(r.str("bundle alignment")),
		TTRatio:    r.f64("bundle ratio"),
	}
	n := r.i32("bundle rate count")
	for i := int32(0); i < n && r.err == nil; i++ {
		b.SiteRates = append(b.SiteRates, r.f64("bundle rate"))
	}
	n = r.i32("bundle weight count")
	for i := int32(0); i < n && r.err == nil; i++ {
		b.Weights = append(b.Weights, r.f64("bundle weight"))
	}
	b.Precision = likelihood.Precision(r.i32("bundle precision"))
	if err := r.extFields("bundle extension", func(tag byte, payload []byte) {
		switch tag {
		case extBundleEngine:
			b.Engine = string(payload)
		case extBundleSmoothMode:
			if m, err := likelihood.ParseSmoothMode(string(payload)); err == nil {
				b.SmoothMode = m
			}
		}
	}); err != nil {
		return DataBundle{}, err
	}
	return b, r.done("data bundle")
}

// Build materializes the bundle into the worker-side dataset.
func (b DataBundle) Build() (model.Model, *seq.Patterns, []string, error) {
	a, err := seq.ReadPhylip(bytes.NewReader(b.PhylipText))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("mlsearch: bundle alignment: %w", err)
	}
	var rates, weights []float64
	if len(b.SiteRates) > 0 {
		rates = b.SiteRates
	}
	if len(b.Weights) > 0 {
		weights = b.Weights
	}
	pat, err := seq.Compress(a, seq.CompressOptions{Rates: rates, Weights: weights})
	if err != nil {
		return nil, nil, nil, err
	}
	ttr := b.TTRatio
	if ttr <= 0 {
		ttr = model.DefaultTTRatio
	}
	m, err := model.NewF84(seq.EmpiricalFreqsPatterns(pat), ttr)
	if err != nil {
		return nil, nil, nil, err
	}
	return m, pat, a.Names, nil
}

// marshalWelcome encodes the payload the router hands each joining
// worker: the layout's role ranks plus the data bundle.
func marshalWelcome(lay Layout, bundle DataBundle) []byte {
	var w wireWriter
	w.buf = append(w.buf, bootWelcome)
	w.i32(int32(lay.Master))
	w.i32(int32(lay.Foreman))
	w.i32(int32(lay.Monitor))
	inner := MarshalDataBundle(bundle)
	w.i32(int32(len(inner)))
	w.buf = append(w.buf, inner...)
	return w.buf
}

// unmarshalWelcome decodes a welcome payload into the layout the worker
// should use and its data bundle.
func unmarshalWelcome(data []byte) (Layout, DataBundle, error) {
	if len(data) == 0 || data[0] != bootWelcome {
		return Layout{}, DataBundle{}, fmt.Errorf("mlsearch: not a welcome payload")
	}
	r := wireReader{buf: data[1:]}
	lay := Layout{
		Master:  int(r.i32("welcome master")),
		Foreman: int(r.i32("welcome foreman")),
		Monitor: int(r.i32("welcome monitor")),
		Elastic: true,
	}
	ln := r.i32("welcome bundle length")
	if r.err == nil && (ln < 0 || r.off+int(ln) > len(r.buf)) {
		r.fail("welcome bundle body")
	}
	if r.err != nil {
		return Layout{}, DataBundle{}, r.done("welcome")
	}
	bundle, err := UnmarshalDataBundle(r.buf[r.off : r.off+int(ln)])
	if err != nil {
		return Layout{}, DataBundle{}, err
	}
	r.off += int(ln)
	return lay, bundle, r.done("welcome")
}
