// Package mlsearch implements fastDNAml's maximum likelihood tree search
// (paper §2, steps 1-5) in both serial and parallel form. The parallel
// form reproduces the paper's four-module architecture (Fig 2): a master
// that generates and compares trees, a foreman that dispatches trees to
// workers through a work queue and ready queue with fault tolerance, the
// workers that optimize branch lengths and compute likelihoods, and an
// optional monitor that collects instrumentation.
package mlsearch

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/comm"
	"repro/internal/obs"
)

// Task is one unit of worker work: a candidate tree topology whose branch
// lengths must be optimized and whose likelihood must be returned (paper
// §2: "Each new tree is dispatched to a worker process, which calculates
// the branch lengths and the overall likelihood value").
type Task struct {
	// ID identifies the task within its round.
	ID uint64
	// Round is the round sequence number (monotone per search).
	Round uint64
	// Newick is the candidate tree with starting branch lengths.
	Newick string
	// LocalTaxon, when >= 0, asks the worker to optimize only the
	// branches near this taxon's attachment point (the rapid insertion
	// scoring of §2.1); -1 requests smoothing of all branches.
	LocalTaxon int32
	// Passes bounds the smoothing passes (0 uses the worker default).
	Passes int32
	// KeepTree asks the parallel runtime to return this task's
	// optimized tree even when it is not the round's best (the foreman
	// normally strips non-best trees to save bandwidth). User-tree
	// evaluation sets it.
	KeepTree bool

	// BaseNewick, when non-empty, switches the task to shared-base
	// evaluation: the worker parses and caches this base tree once per
	// batch (reusing its engine's CLV cache across the batch's tasks)
	// and derives the candidate from it, instead of parsing Newick.
	// Every worker parses the same string, so node IDs agree with the
	// master's enumeration.
	BaseNewick string
	// InsertEdge, when >= 0 with BaseNewick set, scores inserting
	// LocalTaxon at index InsertEdge of the base tree's
	// InsertionEdges() — O(patterns) work at the insertion edge.
	InsertEdge int32
	// MoveP/MoveS/MoveTA/MoveTB, when InsertEdge < 0 with BaseNewick
	// set, identify a rearrangement by node IDs in the base tree: prune
	// the subtree at MoveS (dissolving MoveP) and regraft it onto edge
	// (MoveTA, MoveTB). The worker applies the move, optimizes locally,
	// and undoes it, keeping its cached base tree warm.
	MoveP, MoveS, MoveTA, MoveTB int32

	// Trace is the task's span context, minted by the master so one task
	// can be followed master → foreman → worker → kernel. The zero value
	// means untraced; it travels as an extension field, so pre-trace
	// peers interoperate.
	Trace obs.SpanContext

	// Job identifies the search (jumble or replicate) this task belongs
	// to when several searches share one foreman. Task IDs are only
	// unique within a job, so the foreman keys its round state by
	// (Job, ID). Zero means "the single-job protocol" — the value legacy
	// masters send — and travels as an extension field, so old decoders
	// tolerate it.
	Job uint64
}

// Result is a worker's answer to one Task.
type Result struct {
	// TaskID echoes Task.ID.
	TaskID uint64
	// Round echoes Task.Round.
	Round uint64
	// Newick is the tree with optimized branch lengths.
	Newick string
	// LnL is the optimized log-likelihood.
	LnL float64
	// Ops is the number of likelihood work units the evaluation cost;
	// the cluster simulator's cost model consumes it. Cache hits cost
	// zero ops, so shared-base tasks report only the work actually done.
	Ops uint64
	// CacheHits and CacheMisses count the worker engine's CLV cache
	// behaviour during this task, for the scaling simulator.
	CacheHits, CacheMisses uint64
	// Worker is the responding worker's rank (filled by the foreman).
	Worker int32
	// Eval is the worker-side evaluation time for the task (parse +
	// CLV compute + Newton iterations), at full time.Duration precision.
	// The foreman subtracts it from the observed round trip to attribute
	// the network share of a task's latency.
	Eval time.Duration
	// NewtonIters counts Newton-Raphson iterations the task consumed.
	NewtonIters uint64
	// Trace echoes Task.Trace so the reply closes the dispatched span.
	Trace obs.SpanContext
	// Job echoes Task.Job so the foreman can attribute the reply to the
	// right job without consulting its dispatch records.
	Job uint64
}

// --- binary wire codec -------------------------------------------------
//
// Messages travel as length-delimited fields in big-endian order. The
// codec is hand-rolled (no reflection) so the wire format is explicit,
// stable, and cheap; the paper's processes exchange ASCII trees plus a
// few scalars, and this mirrors that.

type wireWriter struct{ buf []byte }

func (w *wireWriter) u64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.buf = append(w.buf, b[:]...)
}

func (w *wireWriter) i32(v int32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(v))
	w.buf = append(w.buf, b[:]...)
}

func (w *wireWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *wireWriter) str(s string) {
	w.i32(int32(len(s)))
	w.buf = append(w.buf, s...)
}

type wireReader struct {
	buf []byte
	off int
	err error
}

func (r *wireReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("mlsearch: truncated message reading %s at offset %d", what, r.off)
	}
}

func (r *wireReader) u64(what string) uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

func (r *wireReader) i32(what string) int32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail(what)
		return 0
	}
	v := int32(binary.BigEndian.Uint32(r.buf[r.off:]))
	r.off += 4
	return v
}

func (r *wireReader) f64(what string) float64 { return math.Float64frombits(r.u64(what)) }

func (r *wireReader) str(what string) string {
	n := r.i32(what)
	if r.err != nil {
		return ""
	}
	if n < 0 || r.off+int(n) > len(r.buf) {
		r.fail(what)
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *wireReader) done(what string) error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("mlsearch: %d trailing bytes decoding %s", len(r.buf)-r.off, what)
	}
	return nil
}

// --- extension fields --------------------------------------------------
//
// Envelope types grow by appending extension fields after the fixed v1
// layout: each is tag(u8) length(u32) payload. Readers skip tags they do
// not know, so mixed-version worlds interoperate during rolling upgrades
// (an old master with new workers, or the reverse); writers omit
// zero-valued fields, so untraced runs pay zero wire bytes. Truncated
// extensions are still hard errors — tolerance is for unknown fields,
// not corrupt frames.

// ext appends one tagged extension field.
func (w *wireWriter) ext(tag byte, payload []byte) {
	w.buf = append(w.buf, tag)
	w.i32(int32(len(payload)))
	w.buf = append(w.buf, payload...)
}

// extU64 appends a u64 extension field, omitting zero values.
func (w *wireWriter) extU64(tag byte, v uint64) {
	if v == 0 {
		return
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.ext(tag, b[:])
}

// extFields consumes the remainder of the buffer as extension fields,
// invoking fn for each; unknown tags are fn's to ignore.
func (r *wireReader) extFields(what string, fn func(tag byte, payload []byte)) error {
	for r.err == nil && r.off < len(r.buf) {
		tag := r.buf[r.off]
		r.off++
		n := r.i32(what)
		if r.err != nil {
			break
		}
		if n < 0 || r.off+int(n) > len(r.buf) {
			r.fail(what)
			break
		}
		fn(tag, r.buf[r.off:r.off+int(n)])
		r.off += int(n)
	}
	return r.err
}

// extU64Val decodes a u64 extension payload (shorter payloads read 0).
func extU64Val(payload []byte) uint64 {
	if len(payload) < 8 {
		return 0
	}
	return binary.BigEndian.Uint64(payload)
}

// Extension tags of the Task envelope.
const (
	extTaskTraceID byte = 1 + iota
	extTaskSpanID
	extTaskJob
)

// Extension tags of the Result envelope.
const (
	extResultTraceID byte = 1 + iota
	extResultSpanID
	extResultEvalNs
	extResultNewtonIters
	extResultJob
)

// MarshalTask encodes a Task for the wire. The returned buffer comes
// from the comm buffer pool: once it has been handed to Send (which
// copies or takes ownership), the caller may comm.PutBuf it.
func MarshalTask(t Task) []byte {
	w := wireWriter{buf: comm.GetBuf(96 + len(t.Newick) + len(t.BaseNewick))[:0]}
	w.u64(t.ID)
	w.u64(t.Round)
	w.str(t.Newick)
	w.i32(t.LocalTaxon)
	w.i32(t.Passes)
	keep := int32(0)
	if t.KeepTree {
		keep = 1
	}
	w.i32(keep)
	w.str(t.BaseNewick)
	w.i32(t.InsertEdge)
	w.i32(t.MoveP)
	w.i32(t.MoveS)
	w.i32(t.MoveTA)
	w.i32(t.MoveTB)
	w.extU64(extTaskTraceID, t.Trace.TraceID)
	w.extU64(extTaskSpanID, t.Trace.SpanID)
	w.extU64(extTaskJob, t.Job)
	return w.buf
}

// UnmarshalTask decodes a Task.
func UnmarshalTask(b []byte) (Task, error) {
	r := wireReader{buf: b}
	t := Task{
		ID:         r.u64("task id"),
		Round:      r.u64("task round"),
		Newick:     r.str("task newick"),
		LocalTaxon: r.i32("task local taxon"),
		Passes:     r.i32("task passes"),
	}
	t.KeepTree = r.i32("task keep tree") != 0
	t.BaseNewick = r.str("task base newick")
	t.InsertEdge = r.i32("task insert edge")
	t.MoveP = r.i32("task move p")
	t.MoveS = r.i32("task move s")
	t.MoveTA = r.i32("task move ta")
	t.MoveTB = r.i32("task move tb")
	err := r.extFields("task extension", func(tag byte, payload []byte) {
		switch tag {
		case extTaskTraceID:
			t.Trace.TraceID = extU64Val(payload)
		case extTaskSpanID:
			t.Trace.SpanID = extU64Val(payload)
		case extTaskJob:
			t.Job = extU64Val(payload)
		}
	})
	return t, err
}

// MarshalResult encodes a Result for the wire. Like MarshalTask, the
// buffer is pool-backed and may be comm.PutBuf'd after Send.
func MarshalResult(res Result) []byte {
	w := wireWriter{buf: comm.GetBuf(128 + len(res.Newick))[:0]}
	w.u64(res.TaskID)
	w.u64(res.Round)
	w.str(res.Newick)
	w.f64(res.LnL)
	w.u64(res.Ops)
	w.u64(res.CacheHits)
	w.u64(res.CacheMisses)
	w.i32(res.Worker)
	w.extU64(extResultTraceID, res.Trace.TraceID)
	w.extU64(extResultSpanID, res.Trace.SpanID)
	w.extU64(extResultEvalNs, uint64(res.Eval))
	w.extU64(extResultNewtonIters, res.NewtonIters)
	w.extU64(extResultJob, res.Job)
	return w.buf
}

// UnmarshalResult decodes a Result.
func UnmarshalResult(b []byte) (Result, error) {
	r := wireReader{buf: b}
	res := Result{
		TaskID:      r.u64("result task id"),
		Round:       r.u64("result round"),
		Newick:      r.str("result newick"),
		LnL:         r.f64("result lnl"),
		Ops:         r.u64("result ops"),
		CacheHits:   r.u64("result cache hits"),
		CacheMisses: r.u64("result cache misses"),
		Worker:      r.i32("result worker"),
	}
	err := r.extFields("result extension", func(tag byte, payload []byte) {
		switch tag {
		case extResultTraceID:
			res.Trace.TraceID = extU64Val(payload)
		case extResultSpanID:
			res.Trace.SpanID = extU64Val(payload)
		case extResultEvalNs:
			res.Eval = time.Duration(extU64Val(payload))
		case extResultNewtonIters:
			res.NewtonIters = extU64Val(payload)
		case extResultJob:
			res.Job = extU64Val(payload)
		}
	})
	return res, err
}
