package mlsearch

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// TestForemanTickFloor: Tick is derived as TaskTimeout/4, which for a
// tiny timeout truncates toward zero and used to make RecvTimeout spin.
// The floor keeps the deadline scan at a sane interval.
func TestForemanTickFloor(t *testing.T) {
	cases := []struct {
		opt  ForemanOptions
		want time.Duration
	}{
		{ForemanOptions{}, 50 * time.Millisecond},
		{ForemanOptions{TaskTimeout: time.Second}, 50 * time.Millisecond},
		{ForemanOptions{TaskTimeout: 80 * time.Millisecond}, 20 * time.Millisecond},
		{ForemanOptions{TaskTimeout: 2 * time.Nanosecond}, minForemanTick}, // would truncate to 0
		{ForemanOptions{TaskTimeout: time.Microsecond}, minForemanTick},
		{ForemanOptions{Tick: time.Nanosecond}, minForemanTick}, // explicit sub-floor tick
	}
	for i, c := range cases {
		if got := c.opt.withDefaults().Tick; got != c.want {
			t.Errorf("case %d: tick %v, want %v", i, got, c.want)
		}
	}
}

// TestCheckpointStrictParse: a restart file missing a required key or
// repeating one is rejected at parse time, naming the offending key —
// resuming from a half-parsed position would silently restart the search
// wrong.
func TestCheckpointStrictParse(t *testing.T) {
	cp := Checkpoint{
		Seed: 13, Jumble: 2, Order: []int{4, 1, 0, 3, 2},
		NextIndex: 4, Phase: PhaseAdding,
		Newick: "((t00,t01),t03,t04);", LnL: -1234.5,
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")

	// Dropping any body line must fail and name the dropped key.
	for i := 1; i < len(lines); i++ {
		key, _, _ := strings.Cut(lines[i], " ")
		trunc := strings.Join(append(append([]string{}, lines[:i]...), lines[i+1:]...), "\n")
		_, err := ReadCheckpoint(strings.NewReader(trunc))
		if err == nil {
			t.Errorf("checkpoint without %q accepted", key)
			continue
		}
		if !strings.Contains(err.Error(), key) {
			t.Errorf("missing-%s error does not name the key: %v", key, err)
		}
	}

	// Duplicating any body line must fail and name the repeated key
	// (last-write-wins would mask corruption).
	for i := 1; i < len(lines); i++ {
		key, _, _ := strings.Cut(lines[i], " ")
		dup := strings.Join(append(append([]string{}, lines...), lines[i]), "\n")
		_, err := ReadCheckpoint(strings.NewReader(dup))
		if err == nil {
			t.Errorf("checkpoint with duplicate %q accepted", key)
			continue
		}
		if !strings.Contains(err.Error(), key) {
			t.Errorf("duplicate-%s error does not name the key: %v", key, err)
		}
	}
}

// TestManifestCodecRoundTrip: the multi-jumble restart file round-trips
// through its text format, and LoadResume sniffs both formats.
func TestManifestCodecRoundTrip(t *testing.T) {
	m := NewManifest(4)
	m.Set(Checkpoint{
		Seed: 5, Jumble: 0, Order: []int{2, 0, 1, 3}, NextIndex: 4,
		Phase: PhaseDone, Newick: "((a,b),c,d);", LnL: -100.25,
	})
	m.Set(Checkpoint{
		Seed: 7, Jumble: 2, Order: []int{3, 1, 0, 2}, NextIndex: 3,
		Phase: PhaseAdding, Newick: "(a,b,d);", LnL: -120.5,
	})
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifest(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Jumbles != 4 || len(back.Checkpoints) != 2 {
		t.Fatalf("round trip: %+v", back)
	}
	for _, j := range []int{0, 2} {
		got, ok := back.Checkpoint(j)
		want := m.Checkpoints[j]
		if !ok || got.Seed != want.Seed || got.Phase != want.Phase ||
			got.Newick != want.Newick || got.LnL != want.LnL || got.NextIndex != want.NextIndex {
			t.Errorf("jumble %d: got %+v want %+v", j, got, want)
		}
	}
	if back.Done() {
		t.Error("half-finished manifest reports done")
	}

	// Sniffing: a manifest file and a flat checkpoint file resolve to the
	// right type.
	dir := t.TempDir()
	mpath := filepath.Join(dir, "manifest")
	if err := SaveManifest(mpath, m); err != nil {
		t.Fatal(err)
	}
	cp, mm, err := LoadResume(mpath)
	if err != nil || cp != nil || mm == nil {
		t.Fatalf("manifest sniff: cp=%v m=%v err=%v", cp, mm, err)
	}
	cpath := filepath.Join(dir, "checkpoint")
	f, err := os.Create(cpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(f, m.Checkpoints[0]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	cp, mm, err = LoadResume(cpath)
	if err != nil || cp == nil || mm != nil {
		t.Fatalf("checkpoint sniff: cp=%v m=%v err=%v", cp, mm, err)
	}
}

func TestManifestReadErrors(t *testing.T) {
	bad := []string{
		"",
		"fastdnaml-checkpoint v1\n",
		"fastdnaml-manifest v1\n", // missing jumbles
		"fastdnaml-manifest v1\njumbles 0\n",
		"fastdnaml-manifest v1\njumbles 2\nseed 5\n",                             // body line outside a block
		"fastdnaml-manifest v1\njumbles 2\nbegin jumble 0\nseed 5\n",             // truncated block
		"fastdnaml-manifest v1\njumbles 2\nbegin jumble 0\nbegin jumble 1\n",     // nested block
		"fastdnaml-manifest v1\njumbles 2\nend jumble\n",                         // end without begin
		"fastdnaml-manifest v1\njumbles 1\nbegin jumble 5\nseed 5\nend jumble\n", // block out of range + missing keys
		"fastdnaml-manifest v1\njumbles 2\njumbles 2\n",                          // duplicate jumbles
	}
	for _, s := range bad {
		if _, err := ReadManifest(strings.NewReader(s)); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

// TestResumeKeepsJumbleIndex is the regression test for the resume
// mislabeling bug: the run loop used its own counter for callback
// indices, so any resumed jumble reported (and re-checkpointed) as
// jumble 0. Callbacks must carry the checkpoint's own index, and the
// result must carry the checkpoint's seed.
func TestResumeKeepsJumbleIndex(t *testing.T) {
	cfg := testConfig(t, 7, 120, 23)
	cfg.Jumble = 3
	cfg.Seed = 19
	disp, err := NewSerialDispatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSearch(cfg, disp)
	if err != nil {
		t.Fatal(err)
	}
	var cps []Checkpoint
	s.OnCheckpoint = func(cp Checkpoint) { cps = append(cps, cp) }
	full, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) < 2 {
		t.Fatalf("%d checkpoints", len(cps))
	}
	mid := cps[1]
	if mid.Jumble != 3 {
		t.Fatalf("checkpoint jumble %d, want 3", mid.Jumble)
	}

	var idxs []int
	var resumedCps []Checkpoint
	out, err := Run(cfg, RunOptions{
		Transport: Serial,
		Resume:    &mid,
		Progress:  func(j int, _ ProgressEvent) { idxs = append(idxs, j) },
		OnCheckpoint: func(j int, cp Checkpoint) {
			idxs = append(idxs, j)
			resumedCps = append(resumedCps, cp)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(idxs) == 0 {
		t.Fatal("no callbacks fired on resume")
	}
	for _, j := range idxs {
		if j != 3 {
			t.Fatalf("resumed callbacks report jumble %d, want 3", j)
		}
	}
	for _, cp := range resumedCps {
		if cp.Jumble != 3 {
			t.Fatalf("post-resume checkpoint labeled jumble %d, want 3", cp.Jumble)
		}
	}
	res := out.Results[0]
	if res.BestNewick != full.BestNewick || res.LnL != full.LnL {
		t.Error("resumed result differs from the uninterrupted run")
	}
	if res.Seed != mid.Seed {
		t.Errorf("result seed %d, want the checkpoint's %d", res.Seed, mid.Seed)
	}
}

// TestConcurrentJumblesMatchSequential: four jumbles run concurrently as
// jobs over one shared Local fleet; every per-jumble tree and likelihood
// must be bit-identical to the sequential serial schedule, at several
// concurrency/pipeline combinations.
func TestConcurrentJumblesMatchSequential(t *testing.T) {
	cfg := testConfig(t, 7, 140, 21)
	serial, err := Run(cfg, RunOptions{Transport: Serial, Jumbles: 4})
	if err != nil {
		t.Fatal(err)
	}

	cases := []RunOptions{
		{Transport: Local, Workers: 4, Jumbles: 4, MaxConcurrentJumbles: 4},
		{Transport: Local, Workers: 4, Jumbles: 4, MaxConcurrentJumbles: 4, Foreman: ForemanOptions{Pipeline: 1}},
		{Transport: Local, Workers: 2, Jumbles: 4, MaxConcurrentJumbles: 3},
		{Transport: Local, Workers: 4, Jumbles: 4, MaxConcurrentJumbles: 1},
		{Transport: Local, Workers: 4, Jumbles: 4}, // default: min(jumbles, workers)
	}
	for i, opt := range cases {
		out, err := Run(cfg, opt)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(out.Results) != 4 {
			t.Fatalf("case %d: %d results", i, len(out.Results))
		}
		for j, res := range out.Results {
			want := serial.Results[j]
			if res.BestNewick != want.BestNewick {
				t.Errorf("case %d jumble %d: tree differs from sequential", i, j)
			}
			if res.LnL != want.LnL {
				t.Errorf("case %d jumble %d: lnL %g != %g", i, j, res.LnL, want.LnL)
			}
			if res.Seed != want.Seed {
				t.Errorf("case %d jumble %d: seed %d != %d", i, j, res.Seed, want.Seed)
			}
		}
	}
}

// TestConcurrentTCPChaosSoak runs three concurrent jumbles over an
// elastic TCP fleet while workers join, are killed, and drop replies.
// Every jumble must still match the serial answer bit for bit: job
// multiplexing plus membership chaos is pure work distribution.
func TestConcurrentTCPChaosSoak(t *testing.T) {
	ds, err := simulate.New(simulate.Options{Taxa: 8, Sites: 140, Seed: 47, MeanBranchLen: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	var phy bytes.Buffer
	if err := seq.WritePhylip(&phy, ds.Alignment, 0); err != nil {
		t.Fatal(err)
	}
	bundle := DataBundle{PhylipText: phy.Bytes(), TTRatio: 2.0}
	m, pat, taxa, err := bundle.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Taxa: taxa, Patterns: pat, Model: m, Seed: 9, RearrangeExtent: 1}
	serial, err := Run(cfg, RunOptions{Transport: Serial, Jumbles: 3})
	if err != nil {
		t.Fatal(err)
	}

	joinCh := make(chan struct{})
	killCh := make(chan struct{})
	var joinOnce, killOnce sync.Once
	var progressed int32
	var progressMu sync.Mutex

	opt := RunOptions{
		Transport:            TCP,
		Addr:                 "127.0.0.1:0",
		Workers:              2,
		Jumbles:              3,
		MaxConcurrentJumbles: 3,
		WithMonitor:          true,
		Bundle:               bundle,
		Foreman:              ForemanOptions{TaskTimeout: 200 * time.Millisecond, Tick: 20 * time.Millisecond, Pipeline: 2},
		Progress: func(jumble int, ev ProgressEvent) {
			progressMu.Lock()
			progressed++
			n := progressed
			progressMu.Unlock()
			if n >= 4 {
				joinOnce.Do(func() { close(joinCh) })
			}
			if n >= 7 {
				killOnce.Do(func() { close(killCh) })
			}
		},
	}
	addrCh := make(chan net.Addr, 1)
	opt.OnListen = func(a net.Addr) { addrCh <- a }

	var wg sync.WaitGroup
	var outcome *RunOutcome
	var masterErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		outcome, masterErr = Run(cfg, opt)
	}()
	addr := (<-addrCh).String()

	fastRetry := ReconnectPolicy{Base: 5 * time.Millisecond, Cap: 40 * time.Millisecond, MaxAttempts: 100}

	// Worker A: well-behaved.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ServeElastic(addr, WorkerHooks{}, ReconnectPolicy{Disabled: true}); err != nil {
			t.Errorf("worker A: %v", err)
		}
	}()

	// Worker B: killed mid-run (connection severed from outside), then
	// rejoins under a fresh rank.
	var victimMu sync.Mutex
	var victimConn comm.Communicator
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = ServeElastic(addr, WorkerHooks{
			OnAttach: func(c comm.Communicator) {
				victimMu.Lock()
				victimConn = c
				victimMu.Unlock()
			},
		}, fastRetry)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-killCh
		victimMu.Lock()
		c := victimConn
		victimMu.Unlock()
		if c != nil {
			c.Close()
		}
	}()

	// Worker C: joins mid-run and drops every 5th reply.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-joinCh
		var dropMu sync.Mutex
		evals := 0
		err := ServeElastic(addr, WorkerHooks{
			BeforeReply: func(task Task, res Result) bool {
				dropMu.Lock()
				defer dropMu.Unlock()
				evals++
				return evals%5 != 0
			},
		}, ReconnectPolicy{Disabled: true})
		if err != nil {
			t.Errorf("worker C: %v", err)
		}
	}()

	wg.Wait()
	if masterErr != nil {
		t.Fatal(masterErr)
	}
	if len(outcome.Results) != 3 {
		t.Fatalf("%d results", len(outcome.Results))
	}
	for j, res := range outcome.Results {
		want := serial.Results[j]
		if res.BestNewick != want.BestNewick {
			t.Errorf("jumble %d: chaos tree differs from serial", j)
		}
		if res.LnL != want.LnL {
			t.Errorf("jumble %d: chaos lnL %g != serial %g", j, res.LnL, want.LnL)
		}
	}
}

// TestManifestResumeRoundTrip simulates a killed Jumbles=3 run: jumble 0
// finished, jumble 1 was mid-addition, jumble 2 never started. Resuming
// from the manifest must complete all three identically to the
// uninterrupted run, and every post-resume checkpoint must keep its own
// jumble index.
func TestManifestResumeRoundTrip(t *testing.T) {
	cfg := testConfig(t, 7, 120, 25)
	byJumble := map[int][]Checkpoint{}
	var mu sync.Mutex
	full, err := Run(cfg, RunOptions{
		Transport: Local, Workers: 2, Jumbles: 3, MaxConcurrentJumbles: 3,
		OnCheckpoint: func(j int, cp Checkpoint) {
			mu.Lock()
			byJumble[j] = append(byJumble[j], cp)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		if len(byJumble[j]) < 2 {
			t.Fatalf("jumble %d emitted %d checkpoints", j, len(byJumble[j]))
		}
		for _, cp := range byJumble[j] {
			if cp.Jumble != j {
				t.Fatalf("jumble %d checkpoint labeled %d", j, cp.Jumble)
			}
		}
	}

	// The "kill": manifest captures jumble 0 done, jumble 1 mid-run,
	// nothing for jumble 2. Round-trip it through the file to exercise
	// SaveManifest/LoadManifest.
	m := NewManifest(3)
	m.Set(byJumble[0][len(byJumble[0])-1])
	m.Set(byJumble[1][1])
	path := filepath.Join(t.TempDir(), "manifest")
	if err := SaveManifest(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}

	resumedCps := map[int][]Checkpoint{}
	out, err := Run(cfg, RunOptions{
		Transport: Local, Workers: 2, Jumbles: 3, MaxConcurrentJumbles: 3,
		ResumeManifest: loaded,
		OnCheckpoint: func(j int, cp Checkpoint) {
			mu.Lock()
			resumedCps[j] = append(resumedCps[j], cp)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for j, res := range out.Results {
		want := full.Results[j]
		if res.BestNewick != want.BestNewick || res.LnL != want.LnL {
			t.Errorf("jumble %d: resumed result differs", j)
		}
		if res.Seed != want.Seed {
			t.Errorf("jumble %d: resumed seed %d != %d", j, res.Seed, want.Seed)
		}
	}
	// The finished jumble must not have re-run.
	if out.Results[0].TotalTasks != 0 {
		t.Errorf("done jumble re-ran %d tasks", out.Results[0].TotalTasks)
	}
	if len(resumedCps[0]) != 0 {
		t.Errorf("done jumble emitted %d new checkpoints", len(resumedCps[0]))
	}
	// Post-resume checkpoints keep their own indices (the mislabeling
	// regression, multi-jumble form).
	for j, cps := range resumedCps {
		for _, cp := range cps {
			if cp.Jumble != j {
				t.Errorf("post-resume checkpoint for jumble %d labeled %d", j, cp.Jumble)
			}
		}
	}
	if len(resumedCps[2]) == 0 {
		t.Error("fresh jumble 2 emitted no checkpoints on resume")
	}
}
