package mlsearch

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/likelihood"
	"repro/internal/tree"
)

// newThreadedEvaluator builds an evaluator whose engine runs n kernel
// threads.
func newThreadedEvaluator(t *testing.T, cfg Config, n int) (*Evaluator, *likelihood.CachedEngine) {
	t.Helper()
	norm, err := cfg.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := likelihood.New(norm.Model, norm.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	if n > 1 {
		eng.SetThreads(n)
	}
	return NewEvaluator(eng, norm.Taxa), eng
}

// TestThreadedAddRoundBitIdentical: one full add round of the 41-taxon
// fixture — a shared-base smooth task plus an insertion-score task per
// insertion edge — must return bit-identical log-likelihoods and trees
// at every engine thread count. This is the determinism contract the
// paper's work distribution relies on (a tree's likelihood must not
// depend on which process, or how many threads, computed it).
func TestThreadedAddRoundBitIdentical(t *testing.T) {
	cfg := testConfig(t, 41, 500, 3)
	norm, err := cfg.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	full, err := tree.RandomTree(norm.Taxa, rng, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	const addTaxon = 40
	if err := full.RemoveLeaf(addTaxon); err != nil {
		t.Fatal(err)
	}
	base := full.Newick()
	nEdges := len(full.InsertionEdges())
	if nEdges < 20 {
		t.Fatalf("only %d insertion edges", nEdges)
	}

	tasks := []Task{{ID: 0, Round: 1, Newick: base, LocalTaxon: -1, Passes: 2, KeepTree: true}}
	for i := 0; i < nEdges; i++ {
		tasks = append(tasks, Task{
			ID: uint64(i + 1), Round: 1, BaseNewick: base,
			LocalTaxon: addTaxon, InsertEdge: int32(i), Passes: 2, KeepTree: true,
		})
	}

	evaluate := func(threads int) []Result {
		ev, eng := newThreadedEvaluator(t, cfg, threads)
		defer eng.Close()
		out := make([]Result, 0, len(tasks))
		for _, task := range tasks {
			r, err := ev.Evaluate(task)
			if err != nil {
				t.Fatalf("threads=%d task %d: %v", threads, task.ID, err)
			}
			out = append(out, r)
		}
		return out
	}

	ref := evaluate(1)
	bestRef := 0
	for i, r := range ref {
		if r.LnL > ref[bestRef].LnL {
			bestRef = i
		}
	}
	for _, n := range []int{2, 4, 7} {
		got := evaluate(n)
		best := 0
		for i, r := range got {
			if math.Float64bits(r.LnL) != math.Float64bits(ref[i].LnL) {
				t.Errorf("threads=%d task %d: lnL %.17g != serial %.17g", n, r.TaskID, r.LnL, ref[i].LnL)
			}
			if r.Newick != ref[i].Newick {
				t.Errorf("threads=%d task %d: optimized tree differs from serial", n, r.TaskID)
			}
			if r.LnL > got[best].LnL {
				best = i
			}
		}
		if best != bestRef {
			t.Errorf("threads=%d: chose insertion %d, serial chose %d", n, best, bestRef)
		}
	}
}

// TestParallelMatchesSerialThreadedPipelined extends the serial-equality
// contract to the new knobs: engine threads > 1 and foreman pipeline
// depths other than the default must not change the answer.
func TestParallelMatchesSerialThreadedPipelined(t *testing.T) {
	cfg := testConfig(t, 8, 180, 11)
	serial, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ threads, pipeline, workers int }{
		{2, 1, 3},
		{4, 2, 2},
		{2, 3, 3},
		{3, 4, 1},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("threads=%d_pipeline=%d_workers=%d", c.threads, c.pipeline, c.workers), func(t *testing.T) {
			tcfg := cfg
			tcfg.Threads = c.threads
			out, err := Run(tcfg, RunOptions{
				Transport: Local,
				Workers:   c.workers,
				Foreman:   ForemanOptions{Pipeline: c.pipeline},
			})
			if err != nil {
				t.Fatal(err)
			}
			par := out.Results[0]
			if par.BestNewick != serial.BestNewick {
				t.Errorf("tree differs from serial")
			}
			if par.LnL != serial.LnL {
				t.Errorf("lnL %g != serial %g", par.LnL, serial.LnL)
			}
			if par.TotalTasks != serial.TotalTasks {
				t.Errorf("%d tasks != serial %d", par.TotalTasks, serial.TotalTasks)
			}
		})
	}
}
