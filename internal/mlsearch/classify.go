package mlsearch

import (
	"errors"

	"repro/internal/likelihood"
)

// FatalEvalError reports whether a task-evaluation error is
// deterministic: caused by the task/data shape itself (a tree that does
// not match the alignment, a taxon outside the data set, an edge that
// does not exist in the base tree), so it will recur identically on
// every worker and every retry. The dispatch machinery treats these as
// fatal to the run; anything else — transport faults, dropped
// connections — is retryable and flows through the foreman's
// requeue/expire ladder instead.
func FatalEvalError(err error) bool {
	return errors.Is(err, likelihood.ErrTreeMismatch) ||
		errors.Is(err, likelihood.ErrTaxonOutsideData) ||
		errors.Is(err, likelihood.ErrTaxonInTree) ||
		errors.Is(err, likelihood.ErrEdgeNotFound)
}
