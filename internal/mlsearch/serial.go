package mlsearch

import (
	"repro/internal/likelihood"
)

// SerialDispatcher evaluates tasks in order within the calling process:
// the paper's serial fastDNAml, where "the worker process acts as a
// subroutine". It doubles as the uniprocessor baseline for the scaling
// study.
type SerialDispatcher struct {
	ev *Evaluator
}

// NewSerialDispatcher builds the in-process dispatcher for a config.
func NewSerialDispatcher(cfg Config) (*SerialDispatcher, error) {
	norm, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	eng, err := likelihood.NewEngine(norm.Engine, norm.Model, norm.Patterns, likelihood.EngineOptions{
		Precision: norm.Precision,
		Threads:   norm.Threads,
	})
	if err != nil {
		return nil, err
	}
	ev := NewEvaluator(eng, norm.Taxa)
	ev.SetSmoothMode(norm.SmoothMode)
	return &SerialDispatcher{ev: ev}, nil
}

// Dispatch implements Dispatcher.
func (d *SerialDispatcher) Dispatch(tasks []Task) ([]Result, error) {
	out := make([]Result, 0, len(tasks))
	for _, t := range tasks {
		r, err := d.ev.Evaluate(t)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
