package mlsearch

import (
	"repro/internal/likelihood"
)

// SerialDispatcher evaluates tasks in order within the calling process:
// the paper's serial fastDNAml, where "the worker process acts as a
// subroutine". It doubles as the uniprocessor baseline for the scaling
// study.
type SerialDispatcher struct {
	ev *Evaluator
}

// NewSerialDispatcher builds the in-process dispatcher for a config.
func NewSerialDispatcher(cfg Config) (*SerialDispatcher, error) {
	norm, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	eng, err := likelihood.NewWithPrecision(norm.Model, norm.Patterns, norm.Precision)
	if err != nil {
		return nil, err
	}
	if norm.Threads > 1 {
		eng.SetThreads(norm.Threads)
	}
	return &SerialDispatcher{ev: NewEvaluator(eng, norm.Taxa)}, nil
}

// Dispatch implements Dispatcher.
func (d *SerialDispatcher) Dispatch(tasks []Task) ([]Result, error) {
	out := make([]Result, 0, len(tasks))
	for _, t := range tasks {
		r, err := d.ev.Evaluate(t)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RunSerial performs a complete serial search for the configuration.
//
// Deprecated: use Run with RunOptions{Transport: Serial}.
func RunSerial(cfg Config) (*SearchResult, error) {
	out, err := Run(cfg, RunOptions{Transport: Serial})
	if err != nil {
		return nil, err
	}
	return out.Results[0], nil
}
