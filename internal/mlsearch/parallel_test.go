package mlsearch

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
)

// TestParallelMatchesSerial: the parallel runtime must produce exactly
// the serial answer for the same configuration (paper Fig 2's protocol is
// a pure work distribution; it must not change results).
func TestParallelMatchesSerial(t *testing.T) {
	cfg := testConfig(t, 8, 180, 11)
	serial, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 7} {
		out, err := Run(cfg, RunOptions{Transport: Local, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		par := out.Results[0]
		if par.BestNewick != serial.BestNewick {
			t.Errorf("workers=%d: tree differs from serial", workers)
		}
		if par.LnL != serial.LnL {
			t.Errorf("workers=%d: lnL %g != serial %g", workers, par.LnL, serial.LnL)
		}
		if par.TotalTasks != serial.TotalTasks {
			t.Errorf("workers=%d: %d tasks != serial %d", workers, par.TotalTasks, serial.TotalTasks)
		}
	}
}

// TestParallelWithMonitor: the instrumented run (paper's 4-processor
// minimum) reports dispatch counts consistent with the search.
func TestParallelWithMonitor(t *testing.T) {
	cfg := testConfig(t, 7, 150, 13)
	var buf bytes.Buffer
	out, err := Run(cfg, RunOptions{
		Transport:   Local,
		Workers:     3,
		WithMonitor: true,
		MonitorOut:  &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Monitor == nil {
		t.Fatal("no monitor stats")
	}
	res := out.Results[0]
	if out.Monitor.Results != res.TotalTasks {
		t.Errorf("monitor saw %d results, search dispatched %d tasks", out.Monitor.Results, res.TotalTasks)
	}
	if out.Monitor.Dispatches < res.TotalTasks {
		t.Errorf("monitor saw %d dispatches < %d tasks", out.Monitor.Dispatches, res.TotalTasks)
	}
	// All three workers should have contributed.
	if len(out.Monitor.TasksPerWorker) != 3 {
		t.Errorf("work spread over %d workers, want 3 (%v)", len(out.Monitor.TasksPerWorker), out.Monitor.TasksPerWorker)
	}
}

// TestFaultToleranceDroppedReplies: a worker that silently drops some
// replies must not wedge the run; the foreman's timeout machinery
// re-dispatches the lost trees and the answer still matches serial
// (paper §2.2).
func TestFaultToleranceDroppedReplies(t *testing.T) {
	cfg := testConfig(t, 7, 120, 17)
	serial, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	dropped := 0
	hooks := map[int]WorkerHooks{
		// Worker rank 2 (first worker without monitor) drops every 5th
		// reply.
		2: {BeforeReply: func(task Task, res Result) bool {
			mu.Lock()
			defer mu.Unlock()
			if task.ID%5 == 0 {
				dropped++
				return false
			}
			return true
		}},
	}
	out, err := Run(cfg, RunOptions{
		Transport:   Local,
		Workers:     3,
		WorkerHooks: hooks,
		Foreman:     ForemanOptions{TaskTimeout: 150 * time.Millisecond, Tick: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	nd := dropped
	mu.Unlock()
	if nd == 0 {
		t.Fatal("fault injection never triggered")
	}
	par := out.Results[0]
	if par.BestNewick != serial.BestNewick || par.LnL != serial.LnL {
		t.Errorf("fault-tolerant run diverged from serial (dropped %d replies)", nd)
	}
}

// TestFaultToleranceSlowWorker drives the foreman protocol directly with
// scripted workers: a worker that delays past the timeout is removed, its
// tree re-dispatched, and when its late reply finally arrives it is
// reinstated and used again (paper §2.2). The monitor must record both
// transitions.
func TestFaultToleranceSlowWorker(t *testing.T) {
	// Ranks: 0 master, 1 foreman, 2 monitor, 3 slow worker, 4 worker.
	world := newTestWorld(t, 5)
	lay := Layout{Master: 0, Foreman: 1, Monitor: 2, Workers: []int{3, 4}}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunForeman(world[1], lay, ForemanOptions{
			TaskTimeout: 80 * time.Millisecond,
			Tick:        10 * time.Millisecond,
		}); err != nil {
			t.Error(err)
		}
	}()

	var monStats *MonitorStats
	wg.Add(1)
	go func() {
		defer wg.Done()
		s, err := RunMonitor(world[2], nil, false)
		if err != nil {
			t.Error(err)
		}
		monStats = s
	}()

	// Scripted workers: respond to any task with a canned result; rank 3
	// sleeps through its first task.
	fakeWorker := func(rank int, delayFirst time.Duration) {
		defer wg.Done()
		first := true
		for {
			msg, err := world[rank].Recv(comm.AnySource, comm.AnyTag)
			if err != nil {
				return
			}
			if msg.Tag == comm.TagShutdown {
				// Real workers ack shutdown so the foreman's drain can
				// finish promptly; the scripted ones must too.
				_ = world[rank].Send(1, comm.TagShutdown, nil)
				return
			}
			task, err := UnmarshalTask(msg.Data)
			if err != nil {
				t.Error(err)
				return
			}
			if first && delayFirst > 0 {
				time.Sleep(delayFirst)
			}
			first = false
			res := Result{TaskID: task.ID, Round: task.Round, Newick: task.Newick, LnL: -float64(task.ID), Ops: 10}
			if err := world[rank].Send(1, comm.TagResult, MarshalResult(res)); err != nil {
				return
			}
		}
	}
	wg.Add(2)
	go fakeWorker(3, 250*time.Millisecond)
	go fakeWorker(4, 0)

	disp, err := NewForemanDispatcher(world[0], lay)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: two tasks. Worker 3 gets one and stalls past the timeout;
	// worker 4 finishes both.
	tasks := []Task{{ID: 1, Round: 1, Newick: "x"}, {ID: 2, Round: 1, Newick: "y"}}
	results, err := disp.Dispatch(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	// Wait for the late reply to land in the foreman's mailbox, then run
	// another round so the foreman processes it and reinstates rank 3.
	time.Sleep(300 * time.Millisecond)
	if _, err := disp.Dispatch([]Task{{ID: 3, Round: 2, Newick: "z"}}); err != nil {
		t.Fatal(err)
	}
	if err := disp.Shutdown(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	deaths, revivals := 0, 0
	for _, d := range monStats.Deaths {
		deaths += d
	}
	for _, r := range monStats.Revivals {
		revivals += r
	}
	if deaths == 0 {
		t.Error("monitor recorded no worker removal")
	}
	if revivals == 0 {
		t.Error("monitor recorded no worker reinstatement")
	}
}

// TestMultipleJumbles: several random orderings complete and report
// distinct orders; the best-of-jumbles tree is well-formed.
func TestMultipleJumbles(t *testing.T) {
	cfg := testConfig(t, 6, 120, 23)
	out, err := Run(cfg, RunOptions{Transport: Local, Workers: 2, Jumbles: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("%d results, want 3", len(out.Results))
	}
	ordersDiffer := false
	for j := 1; j < 3; j++ {
		for i := range out.Results[0].Order {
			if out.Results[j].Order[i] != out.Results[0].Order[i] {
				ordersDiffer = true
			}
		}
	}
	if !ordersDiffer {
		t.Error("jumbles used identical taxon orders")
	}
}

// TestForemanDispatcherValidation: constructing the dispatcher on the
// wrong rank is rejected.
func TestForemanDispatcherValidation(t *testing.T) {
	lay := Layout{Master: 0, Foreman: 1, Monitor: -1, Workers: []int{2}}
	world := newTestWorld(t, 3)
	if _, err := NewForemanDispatcher(world[1], lay); err == nil {
		t.Error("dispatcher on non-master rank accepted")
	}
	if _, err := NewForemanDispatcher(world[0], lay); err != nil {
		t.Error(err)
	}
}
