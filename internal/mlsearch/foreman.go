package mlsearch

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/comm"
)

// The foreman (paper §2.2): "dispatches trees to worker processes for
// analysis, receives back trees and their associated likelihood values,
// and compares the likelihood values to determine which tree has the
// highest likelihood value at any given step. The foreman manages this
// process via a work queue and a ready queue. The work queue includes a
// record of the tree dispatched to each worker and the time the tree was
// dispatched (used to implement fault tolerance)."
//
// Worker liveness state persists across rounds: a worker removed for
// missing its deadline stays removed until a reply (however stale)
// arrives from it, at which point it is reinstated.

// ForemanOptions tune dispatch behaviour.
type ForemanOptions struct {
	// TaskTimeout is the paper's user-specified timeout parameter: a
	// worker that fails to return an evaluated tree within it is removed
	// from the list of available workers and its tree is re-dispatched.
	// Zero disables fault tolerance. Default 60s.
	TaskTimeout time.Duration
	// Tick bounds how long the foreman blocks between deadline scans.
	// Default 50ms, or TaskTimeout/4 if smaller.
	Tick time.Duration
}

func (o ForemanOptions) withDefaults() ForemanOptions {
	if o.TaskTimeout == 0 {
		o.TaskTimeout = 60 * time.Second
	}
	if o.Tick <= 0 {
		o.Tick = 50 * time.Millisecond
		if o.TaskTimeout > 0 && o.TaskTimeout/4 < o.Tick {
			o.Tick = o.TaskTimeout / 4
		}
	}
	return o
}

// foreman carries state across the whole run.
type foreman struct {
	c   comm.Communicator
	lay Layout
	opt ForemanOptions

	// ready lists idle, alive workers (FIFO).
	ready []int
	// busy maps a worker rank to its current assignment.
	busy map[int]dispatchRecord
	// dead marks workers removed for missing a deadline.
	dead map[int]bool

	// Per-round state.
	queue   []Task
	byID    map[uint64]Task
	results map[uint64]Result
}

type dispatchRecord struct {
	task     Task
	deadline time.Time
	sent     time.Time
}

// RunForeman executes the foreman role until a shutdown message arrives
// from the master. On shutdown it forwards the shutdown to every worker
// and to the monitor.
func RunForeman(c comm.Communicator, lay Layout, opt ForemanOptions) error {
	if err := lay.Validate(); err != nil {
		return err
	}
	f := &foreman{
		c:    c,
		lay:  lay,
		opt:  opt.withDefaults(),
		busy: map[int]dispatchRecord{},
		dead: map[int]bool{},
	}
	f.ready = append(f.ready, lay.Workers...)

	for {
		msg, err := c.Recv(lay.Master, comm.AnyTag)
		if err != nil {
			return fmt.Errorf("mlsearch: foreman receive: %w", err)
		}
		switch msg.Tag {
		case comm.TagShutdown:
			for _, w := range lay.Workers {
				_ = c.Send(w, comm.TagShutdown, nil)
			}
			if lay.Monitor >= 0 {
				_ = c.Send(lay.Monitor, comm.TagShutdown, nil)
			}
			return nil
		case comm.TagControl:
			batch, err := unmarshalRoundBatch(msg.Data)
			if err != nil {
				return err
			}
			reply, err := f.runRound(batch)
			if err != nil {
				return err
			}
			if err := c.Send(lay.Master, comm.TagControl, marshalRoundReply(reply)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("mlsearch: foreman got unexpected tag %d", msg.Tag)
		}
	}
}

// runRound dispatches a batch until every task completes.
func (f *foreman) runRound(batch roundBatch) (roundReply, error) {
	f.queue = append([]Task(nil), batch.Tasks...)
	f.byID = map[uint64]Task{}
	f.results = map[uint64]Result{}
	for _, t := range batch.Tasks {
		f.byID[t.ID] = t
	}
	f.event(monRoundStart, 0, batch.Round, fmt.Sprintf("tasks=%d", len(batch.Tasks)))

	for len(f.results) < len(f.byID) {
		f.assign()
		msg, err := f.c.RecvTimeout(comm.AnySource, comm.TagResult, f.opt.Tick)
		switch err {
		case nil:
			if err := f.handleResult(msg); err != nil {
				return roundReply{}, err
			}
		case comm.ErrTimeout:
			// fall through to the deadline scan
		default:
			return roundReply{}, fmt.Errorf("mlsearch: foreman round: %w", err)
		}
		f.expire()
	}

	// Build the reply: stats sorted by task ID, best by (LnL, task ID).
	var stats []Result
	for _, r := range f.results {
		stats = append(stats, r)
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].TaskID < stats[j].TaskID })
	best := bestOf(stats)
	stripped := make([]Result, len(stats))
	for i, r := range stats {
		if !f.byID[r.TaskID].KeepTree {
			r.Newick = ""
		}
		stripped[i] = r
	}
	f.event(monRoundDone, 0, batch.Round, fmt.Sprintf("best=%.4f", best.LnL))
	return roundReply{Round: batch.Round, Best: best, Stats: stripped}, nil
}

// pushReady returns a worker to the ready queue, clearing its dead flag
// and avoiding duplicates.
func (f *foreman) pushReady(w int) {
	delete(f.dead, w)
	if _, isBusy := f.busy[w]; isBusy {
		return
	}
	for _, r := range f.ready {
		if r == w {
			return
		}
	}
	f.ready = append(f.ready, w)
}

// assign hands queued tasks to ready workers.
func (f *foreman) assign() {
	for len(f.queue) > 0 && len(f.ready) > 0 {
		t := f.queue[0]
		f.queue = f.queue[1:]
		if _, done := f.results[t.ID]; done {
			continue // a requeued copy already finished elsewhere
		}
		w := f.ready[0]
		f.ready = f.ready[1:]
		now := time.Now()
		rec := dispatchRecord{task: t, sent: now}
		if f.opt.TaskTimeout > 0 {
			rec.deadline = now.Add(f.opt.TaskTimeout)
		}
		if err := f.c.Send(w, comm.TagTask, MarshalTask(t)); err != nil {
			// Treat an unsendable worker as dead and requeue the task.
			f.dead[w] = true
			f.queue = append([]Task{t}, f.queue...)
			f.event(monWorkerDead, w, t.Round, "send failed")
			continue
		}
		f.busy[w] = rec
		f.event(monDispatch, w, t.Round, fmt.Sprintf("task=%d", t.ID))
	}
}

// handleResult processes a worker's TagResult message.
func (f *foreman) handleResult(msg comm.Message) error {
	res, err := UnmarshalResult(msg.Data)
	if err != nil {
		return err
	}
	w := msg.From
	res.Worker = int32(w)

	if f.dead[w] {
		// Paper §2.2: "If at some later time a response is received from
		// the delinquent worker, then that worker is added back into the
		// list of workers available to analyze trees."
		f.event(monWorkerRevived, w, res.Round, "")
	}
	if rec, ok := f.busy[w]; ok && rec.task.ID == res.TaskID {
		delete(f.busy, w)
	}
	if _, known := f.byID[res.TaskID]; known {
		if _, dup := f.results[res.TaskID]; !dup {
			f.results[res.TaskID] = res
			f.event(monResult, w, res.Round, fmt.Sprintf("task=%d lnl=%.4f", res.TaskID, res.LnL))
		}
	}
	f.pushReady(w)
	return nil
}

// expire removes workers whose deadline passed, requeueing their tasks
// (paper §2.2: "that particular worker is removed from the list of
// available workers, and the tree that had been dispatched to that worker
// is sent to a different worker").
func (f *foreman) expire() {
	if f.opt.TaskTimeout <= 0 {
		return
	}
	now := time.Now()
	for w, rec := range f.busy {
		if now.After(rec.deadline) {
			delete(f.busy, w)
			f.dead[w] = true
			if _, done := f.results[rec.task.ID]; !done {
				f.queue = append([]Task{rec.task}, f.queue...)
			}
			f.event(monWorkerDead, w, rec.task.Round, fmt.Sprintf("task=%d timed out", rec.task.ID))
		}
	}
}

// event emits a monitor record when a monitor rank exists.
func (f *foreman) event(kind byte, worker int, round uint64, info string) {
	if f.lay.Monitor < 0 {
		return
	}
	_ = f.c.Send(f.lay.Monitor, comm.TagEvent, marshalMonitorEvent(MonitorEvent{
		Kind:   kind,
		Worker: int32(worker),
		Round:  round,
		Info:   info,
		At:     time.Now().UnixNano(),
	}))
}
