package mlsearch

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/comm"
)

// The foreman (paper §2.2): "dispatches trees to worker processes for
// analysis, receives back trees and their associated likelihood values,
// and compares the likelihood values to determine which tree has the
// highest likelihood value at any given step. The foreman manages this
// process via a work queue and a ready queue. The work queue includes a
// record of the tree dispatched to each worker and the time the tree was
// dispatched (used to implement fault tolerance)."
//
// Beyond the paper, this foreman is a multi-job scheduler: several
// searches (jumbles, bootstrap replicates) may have round batches open
// at once, each identified by a job id. Every job keeps its own FIFO
// work queue and round state; dispatch is fair across jobs (round-robin
// by job, FIFO within a job), so one search's long round cannot starve
// another's. Each job's round is still a barrier — its reply carries
// exactly its own task set — which is what keeps per-job results
// bit-identical to a sequential run at any concurrency.
//
// Membership is dynamic: besides the statically configured workers of a
// local run, the transport may announce workers joining (TagJoin) or
// leaving (TagLeave) at any time, including mid-round. New arrivals are
// folded into the ready queue; departures reuse the expire/requeue
// machinery that already handles delinquent workers. Worker liveness
// state persists across rounds: a worker removed for missing its
// deadline stays removed until a reply (however stale) arrives from it,
// at which point it is reinstated. A worker that *disconnects* is gone
// for good — its rank is never reassigned.
//
// Degradation ladder: (1) all workers healthy — pure dispatch; (2) some
// delinquent — timeout, requeue, reinstate on late reply; (3) a worker
// disconnects — immediate requeue of its task, no timeout wait; (4) the
// live worker set hits zero — the foreman evaluates queued tasks inline
// (Options.Inline) so a run always completes, folding newly joined
// workers back in the moment they arrive.

// InlineWorker is the Result.Worker value recorded when the foreman
// evaluated a task itself because no live workers remained.
const InlineWorker int32 = -1

// minForemanTick floors the deadline-scan interval: a Tick derived from
// a tiny TaskTimeout (TaskTimeout/4 truncates to 0 below 4ns) would turn
// the dispatch loop into a busy spin.
const minForemanTick = time.Millisecond

// ForemanOptions tune dispatch behaviour.
type ForemanOptions struct {
	// TaskTimeout is the paper's user-specified timeout parameter: a
	// worker that fails to return an evaluated tree within it is removed
	// from the list of available workers and its tree is re-dispatched.
	// Zero disables timeout-based fault tolerance: the foreman blocks in
	// a plain Recv between results instead of polling for deadlines
	// (disconnects still requeue a dead worker's task immediately).
	TaskTimeout time.Duration
	// Tick bounds how long the foreman blocks between deadline scans
	// while dispatched tasks have live deadlines; with no expirable
	// deadline the foreman blocks indefinitely. Default 50ms, or
	// TaskTimeout/4 if smaller, floored at 1ms.
	Tick time.Duration
	// Inline, when non-nil, lets the foreman evaluate tasks itself when
	// no live workers remain, so a round always completes (the runtime
	// wires an evaluator over the same data set the workers use).
	Inline *Evaluator
	// DrainTimeout bounds how long shutdown waits for workers to
	// acknowledge before closing anyway. Default 1s.
	DrainTimeout time.Duration
	// Pipeline is the number of tasks kept in flight per worker (default
	// 2). With 1 the foreman behaves exactly like the paper's dispatcher:
	// one tree per worker, a worker idles for a network round trip between
	// tasks. With 2+ the next task is already queued at the worker when it
	// finishes the current one, hiding dispatch latency. Assignment is
	// breadth-first — every ready worker gets its first task before any
	// worker gets a second — so with tasks <= workers the schedule is
	// identical to Pipeline 1.
	Pipeline int
	// Obs, when non-nil, receives dispatch-loop instrumentation (metrics,
	// typed events, trace spans, the /status snapshot). Nil costs one nil
	// check per site.
	Obs *RunObserver
}

func (o ForemanOptions) withDefaults() ForemanOptions {
	if o.Tick <= 0 {
		o.Tick = 50 * time.Millisecond
		if o.TaskTimeout > 0 && o.TaskTimeout/4 < o.Tick {
			o.Tick = o.TaskTimeout / 4
		}
	}
	if o.Tick < minForemanTick {
		o.Tick = minForemanTick
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = time.Second
	}
	if o.Pipeline <= 0 {
		o.Pipeline = 2
	}
	return o
}

// jobState is one job's open round batch: its FIFO work queue, task set,
// and accumulated results. It exists from the batch's arrival until the
// round reply is sent.
type jobState struct {
	id      uint64
	round   uint64
	queue   []Task
	byID    map[uint64]Task
	results map[uint64]Result
	// enq tracks when each task entered the work queue, for the
	// queue-wait phase of its trace span. Only maintained when an
	// observer is attached.
	enq map[uint64]time.Time
}

// foreman carries state across the whole run.
type foreman struct {
	c   comm.Communicator
	lay Layout
	opt ForemanOptions

	// members tracks every currently connected worker rank (including
	// delinquent ones); departures are removed permanently.
	members map[int]bool
	// ready lists alive workers with spare pipeline capacity (FIFO). A
	// worker can be both ready and busy when it has fewer than Pipeline
	// tasks in flight.
	ready []int
	// busy maps a worker rank to its in-flight assignments, oldest first.
	// Workers with no assignments are absent (len(busy) counts busy
	// workers).
	busy map[int][]dispatchRecord
	// inflight is the total dispatch count across all workers.
	inflight int
	// dead marks workers removed for missing a deadline (still
	// connected, eligible for reinstatement).
	dead map[int]bool

	// jobs holds every open round batch, keyed by job id; order is the
	// round-robin ring of the same ids in arrival order, and rrPos is
	// the next ring slot to draw from.
	jobs  map[uint64]*jobState
	order []uint64
	rrPos int
}

type dispatchRecord struct {
	task     Task
	deadline time.Time
	sent     time.Time
}

// RunForeman executes the foreman role until a shutdown message arrives
// from the master. On shutdown it forwards the shutdown to every worker
// and to the monitor.
func RunForeman(c comm.Communicator, lay Layout, opt ForemanOptions) error {
	if err := lay.Validate(); err != nil {
		return err
	}
	f := &foreman{
		c:       c,
		lay:     lay,
		opt:     opt.withDefaults(),
		members: map[int]bool{},
		busy:    map[int][]dispatchRecord{},
		dead:    map[int]bool{},
		jobs:    map[uint64]*jobState{},
	}
	for _, w := range lay.Workers {
		f.members[w] = true
		f.ready = append(f.ready, w)
	}

	for {
		if err := f.pump(); err != nil {
			return err
		}
		if err := f.flush(); err != nil {
			return err
		}

		// Block outright unless a dispatched task's deadline can expire;
		// with fault tolerance off (TaskTimeout 0) or nothing in flight
		// there is no reason to wake every tick.
		var msg comm.Message
		var err error
		if f.opt.TaskTimeout > 0 && f.inflight > 0 {
			msg, err = c.RecvTimeout(comm.AnySource, comm.AnyTag, f.opt.Tick)
		} else {
			msg, err = c.Recv(comm.AnySource, comm.AnyTag)
		}
		switch err {
		case nil:
			switch msg.Tag {
			case comm.TagShutdown:
				f.shutdown()
				return nil
			case comm.TagJoin:
				f.handleJoin(msg.From)
			case comm.TagLeave:
				f.handleLeave(msg.From)
			case comm.TagResult:
				// A reply for an already-answered round still reinstates
				// its sender.
				if err := f.handleResult(msg); err != nil {
					return err
				}
			case comm.TagControl:
				if msg.From != lay.Master {
					return fmt.Errorf("mlsearch: foreman got control from rank %d", msg.From)
				}
				batch, err := unmarshalRoundBatch(msg.Data)
				if err != nil {
					return err
				}
				if err := f.startJob(batch); err != nil {
					return err
				}
			default:
				return fmt.Errorf("mlsearch: foreman got unexpected tag %d", msg.Tag)
			}
		case comm.ErrTimeout:
			// fall through to the deadline scan
		default:
			return fmt.Errorf("mlsearch: foreman receive: %w", err)
		}
		f.expire()
	}
}

// shutdown broadcasts TagShutdown to every connected worker, waits
// briefly for their acknowledgements (so frames drain before the caller
// tears the transport down), then releases the monitor.
func (f *foreman) shutdown() {
	waiting := map[int]bool{}
	for w := range f.members {
		if f.c.Send(w, comm.TagShutdown, nil) == nil {
			waiting[w] = true
		}
	}
	deadline := time.Now().Add(f.opt.DrainTimeout)
	for len(waiting) > 0 {
		d := time.Until(deadline)
		if d <= 0 {
			break
		}
		msg, err := f.c.RecvTimeout(comm.AnySource, comm.AnyTag, d)
		if err != nil {
			break
		}
		switch msg.Tag {
		case comm.TagShutdown, comm.TagLeave:
			delete(waiting, msg.From)
		}
	}
	if f.lay.Monitor >= 0 {
		_ = f.c.Send(f.lay.Monitor, comm.TagShutdown, nil)
	}
}

// startJob opens a round batch as a new scheduling job.
func (f *foreman) startJob(batch roundBatch) error {
	if _, dup := f.jobs[batch.Job]; dup {
		return fmt.Errorf("mlsearch: job %d already has an open round at the foreman", batch.Job)
	}
	js := &jobState{
		id:      batch.Job,
		round:   batch.Round,
		queue:   append([]Task(nil), batch.Tasks...),
		byID:    map[uint64]Task{},
		results: map[uint64]Result{},
	}
	for _, t := range batch.Tasks {
		js.byID[t.ID] = t
	}
	if f.opt.Obs != nil {
		js.enq = make(map[uint64]time.Time, len(batch.Tasks))
		now := time.Now()
		for _, t := range batch.Tasks {
			js.enq[t.ID] = now
		}
	}
	f.jobs[batch.Job] = js
	f.order = append(f.order, batch.Job)
	f.event(monRoundStart, 0, batch.Job, batch.Round, fmt.Sprintf("tasks=%d", len(batch.Tasks)))
	f.opt.Obs.RoundStart(batch.Job, batch.Round, len(batch.Tasks))
	f.depths()
	return nil
}

// pump advances scheduling as far as it can without blocking: assign
// queued tasks to ready workers, and — the bottom rung of the
// degradation ladder — evaluate inline when work is queued but no live
// worker can take it.
func (f *foreman) pump() error {
	for {
		f.assign()
		if f.queuedTotal() > 0 && len(f.ready) == 0 && f.inflight == 0 && f.opt.Inline != nil {
			if err := f.evalInline(); err != nil {
				return err
			}
			continue
		}
		return nil
	}
}

// flush answers every job whose round has completed, removing it from
// the scheduler.
func (f *foreman) flush() error {
	for i := 0; i < len(f.order); {
		js := f.jobs[f.order[i]]
		if len(js.results) < len(js.byID) {
			i++
			continue
		}
		if err := f.finishJob(js); err != nil {
			return err
		}
		// finishJob removed this ring slot; re-test index i.
	}
	return nil
}

// finishJob builds and sends a completed job's round reply: stats sorted
// by task ID, best by (LnL, task ID), non-KeepTree Newicks stripped.
func (f *foreman) finishJob(js *jobState) error {
	var stats []Result
	for _, r := range js.results {
		stats = append(stats, r)
	}
	sort.Slice(stats, func(i, j int) bool { return stats[i].TaskID < stats[j].TaskID })
	var best Result
	if len(stats) > 0 {
		best = bestOf(stats)
	}
	stripped := make([]Result, len(stats))
	for i, r := range stats {
		if !js.byID[r.TaskID].KeepTree {
			r.Newick = ""
		}
		stripped[i] = r
	}
	f.removeJob(js.id)
	f.event(monRoundDone, 0, js.id, js.round, fmt.Sprintf("best=%.4f", best.LnL))
	f.opt.Obs.RoundDone(js.id, js.round, len(f.members), best.LnL)
	f.depths()
	reply := roundReply{Round: js.round, Best: best, Stats: stripped, Job: js.id}
	if err := f.c.Send(f.lay.Master, comm.TagControl, marshalRoundReply(reply)); err != nil {
		return err
	}
	return nil
}

// removeJob drops a job from the map and the round-robin ring.
func (f *foreman) removeJob(id uint64) {
	delete(f.jobs, id)
	for i, j := range f.order {
		if j == id {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	if len(f.order) > 0 {
		f.rrPos %= len(f.order)
	} else {
		f.rrPos = 0
	}
}

// queuedTotal sums the queued tasks across all jobs.
func (f *foreman) queuedTotal() int {
	n := 0
	for _, js := range f.jobs {
		n += len(js.queue)
	}
	return n
}

// nextTask draws the next dispatchable task fairly: round-robin across
// jobs starting at the ring position, FIFO within a job. Tasks whose
// requeued copy already finished elsewhere are discarded on the way.
func (f *foreman) nextTask() (*jobState, Task, bool) {
	n := len(f.order)
	for i := 0; i < n; i++ {
		idx := (f.rrPos + i) % n
		js := f.jobs[f.order[idx]]
		for len(js.queue) > 0 {
			t := js.queue[0]
			js.queue = js.queue[1:]
			if _, done := js.results[t.ID]; done {
				continue
			}
			f.rrPos = (idx + 1) % n
			return js, t, true
		}
	}
	return nil, Task{}, false
}

// depths reports the scheduler's queue sizes to the observer.
func (f *foreman) depths() {
	if f.opt.Obs == nil {
		return
	}
	f.opt.Obs.Depths(f.queuedTotal(), len(f.busy), len(f.ready), f.inflight, len(f.jobs))
}

// dropReady removes a worker from the ready queue if present.
func (f *foreman) dropReady(w int) {
	for i, r := range f.ready {
		if r == w {
			f.ready = append(f.ready[:i], f.ready[i+1:]...)
			return
		}
	}
}

// dropBusy removes all of a worker's in-flight records and requeues the
// not-yet-completed tasks at the front of their own job's queue (oldest
// first), so re-dispatch happens before fresh work.
func (f *foreman) dropBusy(w int) (requeued int) {
	recs, ok := f.busy[w]
	if !ok {
		return 0
	}
	delete(f.busy, w)
	f.inflight -= len(recs)
	undone := map[uint64][]Task{}
	var touched []uint64
	for _, rec := range recs {
		js := f.jobs[rec.task.Job]
		if js == nil {
			continue // the job's round was already answered
		}
		if _, done := js.results[rec.task.ID]; done {
			continue
		}
		if len(undone[rec.task.Job]) == 0 {
			touched = append(touched, rec.task.Job)
		}
		undone[rec.task.Job] = append(undone[rec.task.Job], rec.task)
		requeued++
	}
	for _, j := range touched {
		js := f.jobs[j]
		js.queue = append(append([]Task(nil), undone[j]...), js.queue...)
	}
	return requeued
}

// evalInline evaluates the next queued task in the foreman itself — the
// bottom rung of the degradation ladder, keeping the run alive with an
// empty worker set.
func (f *foreman) evalInline() error {
	js, t, ok := f.nextTask()
	if !ok {
		return nil
	}
	res, err := f.opt.Inline.Evaluate(t)
	if err != nil {
		return fmt.Errorf("mlsearch: foreman inline: %w", err)
	}
	res.Worker = InlineWorker
	js.results[t.ID] = res
	f.event(monInline, int(InlineWorker), t.Job, t.Round, fmt.Sprintf("task=%d lnl=%.4f", t.ID, res.LnL))
	f.opt.Obs.Inline(t.Job, t.Round, t.ID, res.LnL)
	f.depths()
	return nil
}

// handleJoin folds a newly announced worker into the membership and the
// ready queue (mid-round joins start pulling tasks immediately).
func (f *foreman) handleJoin(w int) {
	f.members[w] = true
	f.pushReady(w)
	f.event(monWorkerJoined, w, 0, 0, "")
	f.opt.Obs.Joined(w)
	f.depths()
}

// handleLeave removes a departed worker permanently. Its in-flight
// tasks are requeued at the front, reusing the expire/requeue
// machinery's ordering so re-dispatch happens before fresh work.
func (f *foreman) handleLeave(w int) {
	delete(f.members, w)
	delete(f.dead, w)
	f.dropReady(w)
	info := ""
	if n := f.dropBusy(w); n > 0 {
		info = fmt.Sprintf("tasks=%d requeued", n)
	}
	f.event(monWorkerLeft, w, 0, 0, info)
	f.opt.Obs.Left(w)
	f.depths()
}

// pushReady returns a worker to the ready queue, clearing its dead flag
// and avoiding duplicates. A worker already at its pipeline capacity
// stays out; it re-enters when a result frees a slot.
func (f *foreman) pushReady(w int) {
	delete(f.dead, w)
	if len(f.busy[w]) >= f.opt.Pipeline {
		return
	}
	for _, r := range f.ready {
		if r == w {
			return
		}
	}
	f.ready = append(f.ready, w)
}

// assign hands queued tasks to ready workers, keeping up to Pipeline
// tasks in flight per worker. A worker with spare capacity re-enters at
// the back of the ready queue, so assignment is breadth-first: every
// ready worker receives its first task before any worker receives a
// second.
func (f *foreman) assign() {
	for len(f.ready) > 0 {
		js, t, ok := f.nextTask()
		if !ok {
			break
		}
		w := f.ready[0]
		f.ready = f.ready[1:]
		now := time.Now()
		rec := dispatchRecord{task: t, sent: now}
		if f.opt.TaskTimeout > 0 {
			rec.deadline = now.Add(f.opt.TaskTimeout)
		}
		buf := MarshalTask(t)
		err := f.c.Send(w, comm.TagTask, buf)
		comm.PutBuf(buf)
		if err != nil {
			// An unroutable worker has disconnected: drop it from the
			// membership, requeue this task and anything else in flight
			// to it immediately.
			js.queue = append([]Task{t}, js.queue...)
			delete(f.members, w)
			delete(f.dead, w)
			f.dropBusy(w)
			f.event(monWorkerDead, w, t.Job, t.Round, "send failed")
			f.opt.Obs.TimedOut(w, t.Job, t.Round, t.ID)
			continue
		}
		f.busy[w] = append(f.busy[w], rec)
		f.inflight++
		if len(f.busy[w]) < f.opt.Pipeline {
			f.ready = append(f.ready, w)
		}
		f.event(monDispatch, w, t.Job, t.Round, fmt.Sprintf("task=%d", t.ID))
		if f.opt.Obs != nil {
			f.opt.Obs.Dispatched(w, t.Job, t.Round, t.ID, now.Sub(js.enq[t.ID]))
		}
	}
	f.depths()
}

// handleResult processes a worker's TagResult message.
func (f *foreman) handleResult(msg comm.Message) error {
	res, err := UnmarshalResult(msg.Data)
	if err != nil {
		return err
	}
	comm.PutBuf(msg.Data) // decoded (strings copied); recycle the frame
	w := msg.From
	res.Worker = int32(w)

	if f.dead[w] {
		// Paper §2.2: "If at some later time a response is received from
		// the delinquent worker, then that worker is added back into the
		// list of workers available to analyze trees."
		f.event(monWorkerRevived, w, res.Job, res.Round, "")
		f.opt.Obs.Reinstated(w, res.Round)
	}
	// A reply proves liveness even if the transport never announced the
	// sender (e.g. a membership race): make sure it is a member.
	f.members[w] = true
	var rtt time.Duration
	for i, rec := range f.busy[w] {
		if rec.task.ID == res.TaskID && rec.task.Job == res.Job {
			rtt = time.Since(rec.sent)
			recs := append(f.busy[w][:i], f.busy[w][i+1:]...)
			if len(recs) == 0 {
				delete(f.busy, w)
			} else {
				f.busy[w] = recs
			}
			f.inflight--
			break
		}
	}
	if js := f.jobs[res.Job]; js != nil {
		if _, known := js.byID[res.TaskID]; known {
			if _, dup := js.results[res.TaskID]; !dup {
				js.results[res.TaskID] = res
				f.event(monResult, w, res.Job, res.Round, fmt.Sprintf("task=%d lnl=%.4f", res.TaskID, res.LnL))
				f.opt.Obs.Completed(w, res, rtt)
			}
		}
	}
	f.pushReady(w)
	f.depths()
	return nil
}

// expire removes workers whose deadline passed, requeueing their tasks
// (paper §2.2: "that particular worker is removed from the list of
// available workers, and the tree that had been dispatched to that worker
// is sent to a different worker").
func (f *foreman) expire() {
	if f.opt.TaskTimeout <= 0 {
		return
	}
	now := time.Now()
	for w, recs := range f.busy {
		expired := dispatchRecord{}
		hit := false
		for _, rec := range recs {
			if now.After(rec.deadline) {
				expired, hit = rec, true
				break
			}
		}
		if !hit {
			continue
		}
		// One overdue task condemns the worker: everything else queued
		// behind it on that worker would stall too, so requeue the lot.
		f.dead[w] = true
		f.dropReady(w)
		f.dropBusy(w)
		f.event(monWorkerDead, w, expired.task.Job, expired.task.Round, fmt.Sprintf("task=%d timed out", expired.task.ID))
		f.opt.Obs.TimedOut(w, expired.task.Job, expired.task.Round, expired.task.ID)
		f.depths()
	}
}

// event emits a monitor record when a monitor rank exists.
func (f *foreman) event(kind byte, worker int, job, round uint64, info string) {
	if f.lay.Monitor < 0 {
		return
	}
	_ = f.c.Send(f.lay.Monitor, comm.TagEvent, marshalMonitorEvent(MonitorEvent{
		Kind:   kind,
		Worker: int32(worker),
		Round:  round,
		Job:    job,
		Info:   info,
		At:     time.Now().UnixNano(),
	}))
}
