package mlsearch

import (
	"math"
	"testing"

	"repro/internal/seq"
	"repro/internal/simulate"
	"repro/internal/tree"
)

// testConfig builds a small simulated data set and search config.
func testConfig(t *testing.T, taxa, sites int, seed int64) Config {
	t.Helper()
	ds, err := simulate.New(simulate.Options{Taxa: taxa, Sites: sites, Seed: seed, MeanBranchLen: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	pat, err := seq.Compress(ds.Alignment, seq.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewDefaultModel(pat)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Taxa:            ds.Alignment.Names,
		Patterns:        pat,
		Model:           m,
		Seed:            12345,
		RearrangeExtent: 1,
	}
}

func TestSerialSearchBasics(t *testing.T) {
	cfg := testConfig(t, 8, 200, 42)
	res, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.LnL >= 0 || math.IsInf(res.LnL, 0) || math.IsNaN(res.LnL) {
		t.Fatalf("lnL = %g", res.LnL)
	}
	tr, err := tree.ParseNewick(res.BestNewick, cfg.Taxa)
	if err != nil {
		t.Fatalf("final tree unparseable: %v", err)
	}
	if err := tr.Validate(true); err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 8 {
		t.Errorf("final tree has %d leaves, want 8", tr.NumLeaves())
	}
	if res.TotalTasks == 0 || res.TotalOps == 0 {
		t.Error("no work recorded")
	}
	if len(res.Rounds) == 0 {
		t.Error("round log empty")
	}
	if len(res.Order) != 8 {
		t.Errorf("order length %d", len(res.Order))
	}
}

func TestSearchDeterministicAcrossRuns(t *testing.T) {
	cfg := testConfig(t, 7, 150, 9)
	r1, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.BestNewick != r2.BestNewick {
		t.Error("same config gave different trees")
	}
	if r1.LnL != r2.LnL {
		t.Errorf("same config gave different lnL: %g vs %g", r1.LnL, r2.LnL)
	}
}

func TestSearchDifferentSeedsDifferentOrders(t *testing.T) {
	cfg := testConfig(t, 7, 150, 9)
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 2
	r1, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := runSerial(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.Order {
		if r1.Order[i] != r2.Order[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave the same taxon order")
	}
}

// TestSearchRecoversTrueTopology: with generous data, the search should
// recover the generating topology (or something extremely close).
func TestSearchRecoversTrueTopology(t *testing.T) {
	ds, err := simulate.New(simulate.Options{Taxa: 7, Sites: 2000, Seed: 77, MeanBranchLen: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	pat, _ := seq.Compress(ds.Alignment, seq.CompressOptions{})
	m, _ := NewDefaultModel(pat)
	cfg := Config{Taxa: ds.Alignment.Names, Patterns: pat, Model: m, Seed: 3, RearrangeExtent: 2}
	res, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tree.ParseNewick(res.BestNewick, cfg.Taxa)
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := tree.RobinsonFoulds(got, ds.TrueTree)
	if err != nil {
		t.Fatal(err)
	}
	if d > 2 {
		t.Errorf("inferred tree at RF distance %d from truth (want <= 2)", d)
	}
}

// TestSearchMonotoneLnL: the best log-likelihood at the end of each
// smooth round must never decrease once a taxon count is reached...
// specifically the final lnL must be >= every smooth round's lnL at the
// full taxon count.
func TestSearchRoundLogShape(t *testing.T) {
	cfg := testConfig(t, 6, 120, 5)
	res, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// First round: the initial triple.
	if res.Rounds[0].Kind != RoundInit {
		t.Errorf("first round kind %v", res.Rounds[0].Kind)
	}
	// Every add round for taxon count i must have 2i-5 tasks.
	for _, r := range res.Rounds {
		if r.Kind == RoundAdd {
			want := 2*r.TaxaInTree - 5
			if len(r.Tasks) != want {
				t.Errorf("add round at %d taxa has %d tasks, want %d", r.TaxaInTree, len(r.Tasks), want)
			}
		}
		if r.Kind == RoundRearrange {
			want := 2*r.TaxaInTree - 6
			if len(r.Tasks) != want {
				t.Errorf("rearrange round at %d taxa has %d tasks, want %d (extent 1)", r.TaxaInTree, len(r.Tasks), want)
			}
		}
		if len(r.Tasks) == 0 {
			t.Errorf("round %v has no tasks", r.Kind)
		}
		for _, ts := range r.Tasks {
			if ts.Ops == 0 {
				t.Errorf("round %v has a zero-cost task", r.Kind)
			}
		}
	}
	// The last round must be a final or smooth round at full taxon count.
	last := res.Rounds[len(res.Rounds)-1]
	if last.TaxaInTree != 6 {
		t.Errorf("last round at %d taxa", last.TaxaInTree)
	}
}

// TestSearchImprovesOverNoRearrangement: allowing rearrangements can only
// help (or tie) the final likelihood for the same ordering.
func TestSearchImprovesOverNoRearrangement(t *testing.T) {
	cfg := testConfig(t, 8, 150, 21)
	cfg.RearrangeExtent = 0
	cfg.FinalExtent = 0
	plain, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RearrangeExtent = 2
	cfg.FinalExtent = 0 // defaults to RearrangeExtent in Normalize
	rearr, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rearr.LnL < plain.LnL-1e-6 {
		t.Errorf("rearrangement made things worse: %g vs %g", rearr.LnL, plain.LnL)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := (Config{}).Normalize(); err == nil {
		t.Error("empty config should fail")
	}
	cfg := testConfig(t, 6, 100, 1)
	cfg.Model = nil
	if _, err := cfg.Normalize(); err == nil {
		t.Error("missing model should fail")
	}
	cfg = testConfig(t, 6, 100, 1)
	cfg.RearrangeExtent = -1
	if _, err := cfg.Normalize(); err == nil {
		t.Error("negative extent should fail")
	}
}

func TestProgressEvents(t *testing.T) {
	cfg := testConfig(t, 6, 100, 3)
	disp, err := NewSerialDispatcher(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSearch(cfg, disp)
	if err != nil {
		t.Fatal(err)
	}
	var events []ProgressEvent
	s.Progress = func(e ProgressEvent) { events = append(events, e) }
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	last := events[len(events)-1]
	if last.BestLnL != res.LnL {
		t.Errorf("last event lnL %g != final %g", last.BestLnL, res.LnL)
	}
	for _, e := range events {
		if e.BestNewick == "" {
			t.Error("event without a tree")
		}
	}
}

// TestAdaptiveExtent: the §5 "adaptive extents of tree rearrangement"
// feature completes, produces a valid tree, and does no worse than a
// fixed extent-1 run while dispatching no more tasks than a fixed
// max-extent run.
func TestAdaptiveExtent(t *testing.T) {
	cfg := testConfig(t, 10, 250, 71)
	cfg.RearrangeExtent = 1
	cfg.FinalExtent = 3

	fixed1 := cfg
	fixed1.FinalExtent = 1
	resFixed1, err := runSerial(fixed1)
	if err != nil {
		t.Fatal(err)
	}

	fixed3 := cfg
	fixed3.RearrangeExtent = 3
	resFixed3, err := runSerial(fixed3)
	if err != nil {
		t.Fatal(err)
	}

	adaptive := cfg
	adaptive.AdaptiveExtent = true
	resAdaptive, err := runSerial(adaptive)
	if err != nil {
		t.Fatal(err)
	}

	tr, err := tree.ParseNewick(resAdaptive.BestNewick, cfg.Taxa)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(true); err != nil {
		t.Fatal(err)
	}
	if resAdaptive.LnL < resFixed1.LnL-1e-6 {
		t.Errorf("adaptive lnL %.4f worse than fixed extent-1 %.4f", resAdaptive.LnL, resFixed1.LnL)
	}
	if resAdaptive.TotalTasks > resFixed3.TotalTasks {
		t.Errorf("adaptive dispatched %d tasks, more than fixed extent-3's %d",
			resAdaptive.TotalTasks, resFixed3.TotalTasks)
	}
	// Determinism.
	resAgain, err := runSerial(adaptive)
	if err != nil {
		t.Fatal(err)
	}
	if resAgain.BestNewick != resAdaptive.BestNewick {
		t.Error("adaptive run not deterministic")
	}
}
