package mlsearch

import (
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/comm"
	"repro/internal/likelihood"
)

// Run is the single entry point to the search runtime. One Config plus
// one RunOptions selects between the paper's serial program, the
// in-process parallel program (goroutine ranks), and the distributed TCP
// program with elastic worker membership — the same search algorithm
// behind three transports, the way fastDNAml swaps comm_mpi.c for
// comm_pvm.c without touching the inference code.

// Transport selects how a Run executes its task rounds.
type Transport int

// Transports.
const (
	// Serial evaluates every task in the calling goroutine — the
	// uniprocessor baseline of the scaling study.
	Serial Transport = iota
	// Local runs master, foreman, workers (and optionally the monitor)
	// as goroutines connected by the in-process comm backend.
	Local
	// TCP hosts the distributed program: this process runs the router,
	// master, foreman, and optional monitor; workers join over sockets
	// (cmd/fdworker) and may come and go at any time.
	TCP
)

// String names the transport.
func (t Transport) String() string {
	switch t {
	case Serial:
		return "serial"
	case Local:
		return "local"
	case TCP:
		return "tcp"
	}
	return fmt.Sprintf("transport(%d)", int(t))
}

// RunOptions configure Run across every transport. Zero value = one
// serial search.
type RunOptions struct {
	// Transport selects the runtime.
	Transport Transport

	// Workers: for Local, the number of worker goroutines (>= 1). For
	// TCP, the number of workers to wait for before starting the search
	// (0 starts immediately; the foreman evaluates inline until workers
	// join). Ignored for Serial.
	Workers int
	// WithMonitor adds the instrumentation process (Local and TCP).
	WithMonitor bool
	// Jumbles is the number of random orderings to run (>= 1).
	Jumbles int
	// MaxConcurrentJumbles bounds how many jumbles run concurrently as
	// jobs over the shared foreman. 0 defaults to min(Jumbles, Workers)
	// for the parallel transports (Serial always runs one at a time).
	// Per-jumble results are identical at any setting; only wall-clock
	// changes.
	MaxConcurrentJumbles int
	// Foreman tunes dispatch fault tolerance (Local and TCP).
	Foreman ForemanOptions
	// MonitorOut receives monitor output lines (nil discards).
	MonitorOut io.Writer
	// Obs, when non-nil, attaches run observability to the hosting
	// process: the foreman updates its metrics, bus, spans, and /status
	// snapshot (shorthand for setting Foreman.Obs).
	Obs *RunObserver
	// WorkerHooks, keyed by rank, perturb Local workers for fault
	// injection tests.
	WorkerHooks map[int]WorkerHooks
	// Progress receives per-round events (jumble index, event).
	Progress func(int, ProgressEvent)
	// Stop, when non-nil, cancels the run when closed: every search
	// returns ErrStopped (wrapped) at its next round boundary. The last
	// checkpoints handed to OnCheckpoint stay valid resume points, which
	// is what lets a SIGTERM'd run flush its restart file and exit 0.
	Stop <-chan struct{}
	// OnCheckpoint receives a resumable position (jumble index,
	// checkpoint) after every completed taxon addition.
	OnCheckpoint func(int, Checkpoint)
	// Resume, when non-nil, continues a previously checkpointed search
	// instead of starting fresh. Requires Jumbles <= 1; multi-jumble
	// runs resume through ResumeManifest.
	Resume *Checkpoint
	// ResumeManifest, when non-nil, resumes a multi-jumble run: each
	// jumble with a manifest entry continues from its checkpoint (done
	// jumbles return their stored result immediately); jumbles without
	// an entry start fresh from their derived seed.
	ResumeManifest *Manifest

	// Addr is the TCP listen address (e.g. ":7946" or "127.0.0.1:0").
	Addr string
	// Bundle is the dataset shipped to joining TCP workers inside the
	// join handshake.
	Bundle DataBundle
	// OnListen, when non-nil, is invoked with the bound address before
	// waiting for workers (useful with ":0" and for tests).
	OnListen func(net.Addr)
	// OnMember, when non-nil, observes elastic membership from the
	// hosting process: OnMember(rank, true) on join, (rank, false) on
	// leave.
	OnMember func(rank int, joined bool)
}

// RunOutcome is the result of a Run.
type RunOutcome struct {
	// Results holds one SearchResult per jumble.
	Results []*SearchResult
	// Monitor holds the monitor statistics when the monitor ran.
	Monitor *MonitorStats
}

// Run executes a complete search (all jumbles) on the selected
// transport.
func Run(cfg Config, opt RunOptions) (*RunOutcome, error) {
	if opt.Jumbles < 1 {
		opt.Jumbles = 1
	}
	if opt.Resume != nil && opt.Jumbles > 1 {
		return nil, fmt.Errorf("mlsearch: cannot resume a %d-jumble run from a single checkpoint (use ResumeManifest)", opt.Jumbles)
	}
	if opt.Resume != nil && opt.ResumeManifest != nil {
		return nil, fmt.Errorf("mlsearch: Resume and ResumeManifest are mutually exclusive")
	}
	switch opt.Transport {
	case Serial:
		return runSerialTransport(cfg, opt)
	case Local:
		return runLocalTransport(cfg, opt)
	case TCP:
		return runTCPTransport(cfg, opt)
	}
	return nil, fmt.Errorf("mlsearch: unknown transport %d", int(opt.Transport))
}

// runJumbles executes opt.Jumbles searches against dispatchers minted
// from src, the shared core of every transport's master side. Seeds
// advance by 2 per jumble from cfg.Seed (keeping them odd, §2.1). Up to
// MaxConcurrentJumbles searches run as goroutines, each in its own job
// lane through the shared foreman; per-jumble results are identical to
// the sequential schedule because every search's rounds remain a
// barrier within its own lane.
func runJumbles(src dispatcherSource, cfg Config, opt RunOptions) ([]*SearchResult, error) {
	seed := NormalizeSeed(cfg.Seed)
	configs := make([]Config, opt.Jumbles)
	resumes := make([]*Checkpoint, opt.Jumbles)
	for j := range configs {
		jcfg := cfg
		jcfg.Seed = seed + int64(2*j)
		jcfg.Jumble = j
		if opt.Resume != nil {
			// The checkpoint records which jumble and seed it was; a
			// resumed jumble 3 must not be relabeled 0.
			jcfg.Seed = opt.Resume.Seed
			jcfg.Jumble = opt.Resume.Jumble
			resumes[j] = opt.Resume
		} else if opt.ResumeManifest != nil {
			if cp, ok := opt.ResumeManifest.Checkpoint(j); ok {
				jcfg.Seed = cp.Seed
				jcfg.Jumble = cp.Jumble
				resumes[j] = &cp
			}
		}
		configs[j] = jcfg
	}

	runOne := func(j int) (*SearchResult, error) {
		disp, err := src.NewDispatcher()
		if err != nil {
			return nil, err
		}
		s, err := NewSearch(configs[j], disp)
		if err != nil {
			return nil, err
		}
		s.Stop = opt.Stop
		// Callbacks report the jumble's own index, not the loop counter
		// (they differ on resumed runs).
		idx := configs[j].Jumble
		if opt.Progress != nil {
			s.Progress = func(e ProgressEvent) { opt.Progress(idx, e) }
		}
		if opt.OnCheckpoint != nil {
			s.OnCheckpoint = func(cp Checkpoint) { opt.OnCheckpoint(idx, cp) }
		}
		if cp := resumes[j]; cp != nil {
			return s.Resume(*cp)
		}
		return s.Run()
	}

	conc := opt.MaxConcurrentJumbles
	if conc < 1 {
		conc = opt.Workers
	}
	if conc < 1 {
		conc = 1
	}
	if conc > opt.Jumbles {
		conc = opt.Jumbles
	}

	out := make([]*SearchResult, opt.Jumbles)
	if conc == 1 {
		for j := range out {
			res, err := runOne(j)
			if err != nil {
				return nil, fmt.Errorf("mlsearch: jumble %d: %w", configs[j].Jumble, err)
			}
			out[j] = res
		}
		return out, nil
	}

	var wg sync.WaitGroup
	errs := make([]error, opt.Jumbles)
	sem := make(chan struct{}, conc)
	for j := range out {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[j], errs[j] = runOne(j)
		}(j)
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("mlsearch: jumble %d: %w", configs[j].Jumble, err)
		}
	}
	return out, nil
}

func runSerialTransport(cfg Config, opt RunOptions) (*RunOutcome, error) {
	disp, err := NewSerialDispatcher(cfg)
	if err != nil {
		return nil, err
	}
	// One evaluator, one goroutine: serial searches must not overlap.
	opt.MaxConcurrentJumbles = 1
	opt.Workers = 0
	results, err := runJumbles(fixedSource{d: disp}, cfg, opt)
	if err != nil {
		return nil, err
	}
	return &RunOutcome{Results: results}, nil
}

func runLocalTransport(cfg Config, opt RunOptions) (*RunOutcome, error) {
	if opt.Workers < 1 {
		return nil, fmt.Errorf("mlsearch: %d workers, need >= 1", opt.Workers)
	}
	norm, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	size := opt.Workers + 2
	if opt.WithMonitor {
		size++
	}
	world, err := comm.NewLocal(size)
	if err != nil {
		return nil, err
	}
	lay, err := DefaultLayout(size, opt.WithMonitor)
	if err != nil {
		return nil, err
	}

	var wg sync.WaitGroup
	errs := make(chan error, size)

	// Foreman.
	foremanOpt := opt.Foreman
	if foremanOpt.Obs == nil {
		foremanOpt.Obs = opt.Obs
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunForeman(world[lay.Foreman], lay, foremanOpt); err != nil {
			errs <- fmt.Errorf("foreman: %w", err)
		}
	}()

	// Monitor.
	outcome := &RunOutcome{}
	if opt.WithMonitor {
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats, err := RunMonitor(world[lay.Monitor], opt.MonitorOut, false)
			if err != nil {
				errs <- fmt.Errorf("monitor: %w", err)
				return
			}
			outcome.Monitor = stats
		}()
	}

	// Workers.
	for _, w := range lay.Workers {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			hooks := WorkerHooks{}
			if opt.WorkerHooks != nil {
				hooks = opt.WorkerHooks[rank]
			}
			if hooks.Threads == 0 {
				hooks.Threads = norm.Threads
			}
			hooks.Precision = norm.Precision
			hooks.SmoothMode = norm.SmoothMode
			if err := RunWorker(world[rank], lay, norm.Model, norm.Patterns, norm.Taxa, hooks); err != nil {
				errs <- fmt.Errorf("worker %d: %w", rank, err)
			}
		}(w)
	}

	// Master (this goroutine).
	results, masterErr := runMasterSide(world[lay.Master], lay, norm, opt)
	wg.Wait()
	close(errs)
	if masterErr != nil {
		return nil, masterErr
	}
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	outcome.Results = results
	return outcome, nil
}

// runMasterSide executes the master role over a communicator: run the
// jumbles through the foreman (each in its own job lane), then shut the
// world down.
func runMasterSide(c comm.Communicator, lay Layout, norm Config, opt RunOptions) ([]*SearchResult, error) {
	mux, err := NewJobMux(c, lay)
	if err != nil {
		return nil, err
	}
	defer func() { _ = mux.Shutdown() }()
	return runJumbles(mux, norm, opt)
}

// newInlineEvaluator builds the evaluator the foreman falls back to when
// the live worker set is empty (TCP degradation ladder, bottom rung).
func newInlineEvaluator(norm Config) (*Evaluator, error) {
	eng, err := likelihood.NewEngine(norm.Engine, norm.Model, norm.Patterns, likelihood.EngineOptions{
		Precision: norm.Precision,
		Threads:   norm.Threads,
	})
	if err != nil {
		return nil, err
	}
	ev := NewEvaluator(eng, norm.Taxa)
	ev.SetSmoothMode(norm.SmoothMode)
	return ev, nil
}
