package mlsearch

import (
	"bytes"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/obs"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// TestTCPChaosSoak is the elastic-membership soak: a TCP run starts with
// two workers, a third joins mid-round, one of the originals is
// "SIGKILLed" (its live connection severed from outside) and rejoins
// under a tiny reconnect backoff, and the late joiner silently drops a
// quarter of its replies. Through all of it the run must finish and the
// final tree and log-likelihood must be bit-identical to the serial
// answer — membership chaos is pure work distribution (paper §2.2).
// Workers run mixed engine thread counts and the foreman pipelines two
// tasks per worker, so the soak also exercises the threaded kernels and
// pipelining under churn.
func TestTCPChaosSoak(t *testing.T) {
	soakStart := time.Now()
	ds, err := simulate.New(simulate.Options{Taxa: 9, Sites: 160, Seed: 41, MeanBranchLen: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	var phy bytes.Buffer
	if err := seq.WritePhylip(&phy, ds.Alignment, 0); err != nil {
		t.Fatal(err)
	}
	bundle := DataBundle{PhylipText: phy.Bytes(), TTRatio: 2.0}
	m, pat, taxa, err := bundle.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Taxa: taxa, Patterns: pat, Model: m, Seed: 5, RearrangeExtent: 1, Threads: 2}
	serial, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Chaos triggers, driven off the master's progress stream so they
	// land mid-run rather than before or after it.
	joinCh := make(chan struct{}) // third worker starts when closed
	killCh := make(chan struct{}) // victim's connection is severed when closed
	var joinOnce, killOnce sync.Once

	opt := RunOptions{
		Transport:   TCP,
		Addr:        "127.0.0.1:0",
		Workers:     2, // barrier: the two original workers
		WithMonitor: true,
		Bundle:      bundle,
		Foreman:     ForemanOptions{TaskTimeout: 200 * time.Millisecond, Tick: 20 * time.Millisecond, Pipeline: 2},
		Progress: func(jumble int, ev ProgressEvent) {
			if ev.TaxaInTree >= 5 {
				joinOnce.Do(func() { close(joinCh) })
			}
			if ev.TaxaInTree >= 6 {
				killOnce.Do(func() { close(killCh) })
			}
		},
	}
	addrCh := make(chan net.Addr, 1)
	opt.OnListen = func(a net.Addr) { addrCh <- a }

	var wg sync.WaitGroup
	var outcome *RunOutcome
	var masterErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		outcome, masterErr = Run(cfg, opt)
	}()
	addr := (<-addrCh).String()

	fastRetry := ReconnectPolicy{Base: 5 * time.Millisecond, Cap: 40 * time.Millisecond, MaxAttempts: 100}

	// Worker A: well-behaved, with a 2-thread engine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ServeElastic(addr, WorkerHooks{Threads: 2}, ReconnectPolicy{Disabled: true}); err != nil {
			t.Errorf("worker A: %v", err)
		}
	}()

	// Worker B, the victim: its current connection is captured on attach
	// and severed from outside when killCh fires — the process-level
	// equivalent of a SIGKILL mid-task. ServeElastic then reconnects and
	// the worker rejoins under a fresh rank. Errors are tolerated: if the
	// kill lands near the end of the run, the final reconnect attempts
	// race the router shutting down.
	var victimMu sync.Mutex
	var victimConn comm.Communicator
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = ServeElastic(addr, WorkerHooks{
			Threads: 3,
			OnAttach: func(c comm.Communicator) {
				victimMu.Lock()
				victimConn = c
				victimMu.Unlock()
			},
		}, fastRetry)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-killCh
		victimMu.Lock()
		c := victimConn
		victimMu.Unlock()
		if c != nil {
			c.Close()
		}
	}()

	// Worker C joins mid-round and drops every 4th reply on the floor;
	// the foreman's timeout machinery must re-dispatch those trees.
	var dropMu sync.Mutex
	evals, dropped := 0, 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-joinCh
		err := ServeElastic(addr, WorkerHooks{
			BeforeReply: func(task Task, res Result) bool {
				dropMu.Lock()
				defer dropMu.Unlock()
				evals++
				if evals%4 == 0 {
					dropped++
					return false
				}
				return true
			},
		}, ReconnectPolicy{Disabled: true})
		if err != nil {
			t.Errorf("worker C: %v", err)
		}
	}()

	wg.Wait()
	if masterErr != nil {
		t.Fatal(masterErr)
	}

	res := outcome.Results[0]
	if res.BestNewick != serial.BestNewick {
		t.Errorf("chaos run tree differs from serial")
	}
	if res.LnL != serial.LnL {
		t.Errorf("chaos run lnL %g != serial %g", res.LnL, serial.LnL)
	}

	mon := outcome.Monitor
	if mon == nil {
		t.Fatal("no monitor stats")
	}
	// 2 originals + the mid-round joiner; the victim's rejoin usually
	// adds a 4th but may race the end of the run.
	if mon.Joins < 3 {
		t.Errorf("monitor saw %d joins, want >= 3", mon.Joins)
	}
	if mon.Leaves < 1 {
		t.Errorf("monitor saw %d leaves, want >= 1 (the severed victim)", mon.Leaves)
	}
	dropMu.Lock()
	nd := dropped
	dropMu.Unlock()
	if nd == 0 {
		t.Log("note: reply-drop injection never triggered (late joiner saw <4 tasks)")
	}

	// CI archives the soak as a BENCH_*.json artifact when asked.
	if dir := os.Getenv("FDML_BENCH_DIR"); dir != "" {
		path, err := obs.WriteBench(dir, obs.BenchReport{
			Run:       "chaos_soak",
			StartedAt: soakStart,
			Totals: map[string]float64{
				"tasks": float64(res.TotalTasks), "ops": float64(res.TotalOps),
				"lnl":   res.LnL,
				"joins": float64(mon.Joins), "leaves": float64(mon.Leaves),
				"dropped_replies": float64(nd),
			},
			Details: map[string]any{"tasks_per_worker": mon.TasksPerWorker},
		})
		if err != nil {
			t.Fatalf("bench report: %v", err)
		}
		t.Logf("wrote %s", path)
	}
}

// countingComm wraps a Communicator and counts RecvTimeout calls, to pin
// down the foreman's receive discipline.
type countingComm struct {
	comm.Communicator
	mu           sync.Mutex
	recvTimeouts int
}

func (c *countingComm) RecvTimeout(source int, tag comm.Tag, d time.Duration) (comm.Message, error) {
	c.mu.Lock()
	c.recvTimeouts++
	c.mu.Unlock()
	return c.Communicator.RecvTimeout(source, tag, d)
}

// TestForemanBlocksWithoutTimeout: with TaskTimeout == 0 the foreman has
// no deadline to poll for, so it must block in plain Recv rather than
// waking every tick through RecvTimeout (the old behaviour burned CPU on
// idle clusters).
func TestForemanBlocksWithoutTimeout(t *testing.T) {
	world := newTestWorld(t, 3)
	lay := Layout{Master: 0, Foreman: 1, Monitor: -1, Workers: []int{2}}
	counted := &countingComm{Communicator: world[1]}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunForeman(counted, lay, ForemanOptions{}); err != nil {
			t.Error(err)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			msg, err := world[2].Recv(comm.AnySource, comm.AnyTag)
			if err != nil {
				return
			}
			if msg.Tag == comm.TagShutdown {
				_ = world[2].Send(1, comm.TagShutdown, nil)
				return
			}
			task, err := UnmarshalTask(msg.Data)
			if err != nil {
				t.Error(err)
				return
			}
			// Delay long enough that a polling foreman would rack up
			// RecvTimeout wakeups while waiting.
			time.Sleep(120 * time.Millisecond)
			res := Result{TaskID: task.ID, Round: task.Round, Newick: task.Newick, LnL: -1, Ops: 1}
			if err := world[2].Send(1, comm.TagResult, MarshalResult(res)); err != nil {
				return
			}
		}
	}()

	disp, err := NewForemanDispatcher(world[0], lay)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := disp.Dispatch([]Task{{ID: 1, Round: 1, Newick: "x"}}); err != nil {
		t.Fatal(err)
	}
	// Snapshot before Shutdown: the shutdown ack drain is the one place
	// the foreman legitimately polls with RecvTimeout.
	counted.mu.Lock()
	n := counted.recvTimeouts
	counted.mu.Unlock()
	if err := disp.Shutdown(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if n != 0 {
		t.Errorf("foreman made %d RecvTimeout calls with TaskTimeout=0; want 0 (plain blocking Recv)", n)
	}
}
