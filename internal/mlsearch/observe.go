package mlsearch

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Run-level observability. A RunObserver is the hosting process's sink
// for everything the foreman sees: it updates the metrics registry,
// publishes typed events on the bus (the monitor's stats aggregation and
// line printing are ordinary subscribers of that bus), closes task trace
// spans with their per-phase latencies, and maintains the live snapshot
// the /status endpoint serves. Every method is nil-receiver safe, so the
// foreman's call sites cost one nil check when no observer is attached.

// Typed bus events. The foreman's wire-level MonitorEvents (which still
// travel to a dedicated monitor rank) decode into these; in-process
// consumers get them directly, without a wire round trip.
type (
	// RoundStarted marks the foreman accepting a round batch. Job
	// identifies the submitting search when several share the foreman
	// (0 in single-job runs).
	RoundStarted struct {
		Job   uint64
		Round uint64
		Tasks int
		At    time.Time
	}
	// TaskDispatched marks one task handed to a worker.
	TaskDispatched struct {
		Worker int
		Job    uint64
		Round  uint64
		TaskID uint64
		// QueueWait is how long the task sat in the work queue.
		QueueWait time.Duration
	}
	// TaskCompleted marks a result accepted from a worker.
	TaskCompleted struct {
		Worker int
		Job    uint64
		Round  uint64
		TaskID uint64
		LnL    float64
		// RTT is dispatch-to-result as seen by the foreman; Eval is the
		// worker-reported evaluation time carried in the reply envelope.
		// RTT - Eval approximates the network + serialization share.
		RTT, Eval time.Duration
	}
	// WorkerTimedOut marks a fault-tolerance removal (deadline missed or
	// send failed); the task is requeued.
	WorkerTimedOut struct {
		Worker int
		Job    uint64
		Round  uint64
		TaskID uint64
	}
	// WorkerReinstated marks a delinquent worker welcomed back after a
	// late reply.
	WorkerReinstated struct {
		Worker int
		Round  uint64
	}
	// WorkerJoined marks a worker entering the membership.
	WorkerJoined struct{ Worker int }
	// WorkerLeft marks a permanent departure.
	WorkerLeft struct{ Worker int }
	// InlineEvaluated marks a task the foreman evaluated itself because
	// no live workers remained.
	InlineEvaluated struct {
		Job    uint64
		Round  uint64
		TaskID uint64
		LnL    float64
	}
	// RoundCompleted marks a round reply sent back to the master.
	RoundCompleted struct {
		Job     uint64
		Round   uint64
		BestLnL float64
		At      time.Time
	}
)

// taskPhaseBuckets bound the per-phase latency histograms: tasks run
// sub-millisecond (cache-hot insertions) to tens of seconds (full
// smoothing of big trees).
var taskPhaseBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10, 30}

// workerHistory accumulates one worker's lifetime within a run.
type workerHistory struct {
	Tasks      int
	Timeouts   int
	Reinstates int
	EvalTotal  time.Duration
	LastSeen   time.Time
}

// WorkerRunSnapshot is one worker's row in a RunSnapshot.
type WorkerRunSnapshot struct {
	Rank       int     `json:"rank"`
	Tasks      int     `json:"tasks"`
	Timeouts   int     `json:"timeouts"`
	Reinstates int     `json:"reinstates"`
	EvalMs     float64 `json:"eval_ms"`
	LastSeen   string  `json:"last_seen,omitempty"`
	State      string  `json:"state"`
}

// jobRow accumulates one open round's progress, keyed by job id.
type jobRow struct {
	Round      uint64
	Tasks      int
	Dispatched int
	Completed  int
	Inline     int
}

// JobRunSnapshot is one open job's row in a RunSnapshot.
type JobRunSnapshot struct {
	Job        uint64 `json:"job"`
	Round      uint64 `json:"round"`
	Tasks      int    `json:"tasks"`
	Dispatched int    `json:"dispatched"`
	Completed  int    `json:"completed"`
	Inline     int    `json:"inline,omitempty"`
}

// RunSnapshot is the /status JSON document of a hosting process.
type RunSnapshot struct {
	Started    time.Time           `json:"started"`
	UptimeMs   float64             `json:"uptime_ms"`
	Round      uint64              `json:"round"`
	QueueDepth int                 `json:"queue_depth"`
	Busy       int                 `json:"busy_workers"`
	Ready      int                 `json:"ready_workers"`
	Inflight   int                 `json:"inflight_tasks"`
	ActiveJobs int                 `json:"active_jobs"`
	Members    int                 `json:"members"`
	BestLnL    float64             `json:"best_lnl"`
	Dispatched int                 `json:"dispatched"`
	Completed  int                 `json:"completed"`
	Inline     int                 `json:"inline"`
	Timeouts   int                 `json:"timeouts"`
	Reinstates int                 `json:"reinstates"`
	Joins      int                 `json:"joins"`
	Leaves     int                 `json:"leaves"`
	Workers    []WorkerRunSnapshot `json:"workers"`
	Jobs       []JobRunSnapshot    `json:"jobs,omitempty"`
	Recent     []obs.SpanRecord    `json:"recent_spans,omitempty"`
}

// RunObserver receives the foreman's dispatch-loop instrumentation.
type RunObserver struct {
	reg   *obs.Registry
	bus   *obs.Bus
	spans *obs.SpanLog

	mRounds      *obs.Counter
	mDispatch    *obs.Counter
	mJobDispatch *obs.CounterVec
	mResults     *obs.CounterVec
	mTimeouts    *obs.CounterVec
	mReinstates  *obs.CounterVec
	mJoins       *obs.Counter
	mLeaves      *obs.Counter
	mInline      *obs.Counter
	gRound       *obs.Gauge
	gQueue       *obs.Gauge
	gJobQueue    *obs.GaugeVec
	gBusy        *obs.Gauge
	gReady       *obs.Gauge
	gInflight    *obs.Gauge
	gActiveJobs  *obs.Gauge
	gBestLnL     *obs.Gauge
	hPhase       *obs.HistogramVec

	mu      sync.Mutex
	started time.Time
	snap    RunSnapshot
	hist    map[int]*workerHistory
	busy    map[int]bool
	jobs    map[uint64]*jobRow
}

// NewRunObserver builds an observer over a registry and an event bus
// (either may be nil: a nil registry records no metrics, a nil bus
// publishes nothing). The span ring retains the last 64 completed tasks.
func NewRunObserver(reg *obs.Registry, bus *obs.Bus) *RunObserver {
	o := &RunObserver{
		reg:   reg,
		bus:   bus,
		spans: obs.NewSpanLog(64),

		mRounds:      reg.Counter("fdml_rounds_total", "Completed dispatch rounds."),
		mDispatch:    reg.Counter("fdml_dispatch_total", "Tasks handed to workers."),
		mJobDispatch: reg.CounterVec("fdml_job_dispatch_total", "Tasks handed to workers, by job id.", "job"),
		mResults:     reg.CounterVec("fdml_results_total", "Results accepted, by worker rank.", "worker"),
		mTimeouts:    reg.CounterVec("fdml_timeouts_total", "Fault-tolerance removals, by worker rank.", "worker"),
		mReinstates:  reg.CounterVec("fdml_reinstates_total", "Delinquent workers reinstated, by rank.", "worker"),
		mJoins:       reg.Counter("fdml_joins_total", "Workers that joined the world."),
		mLeaves:      reg.Counter("fdml_leaves_total", "Workers that left permanently."),
		mInline:      reg.Counter("fdml_inline_total", "Tasks the foreman evaluated inline."),
		gRound:       reg.Gauge("fdml_round", "Current dispatch round."),
		gQueue:       reg.Gauge("fdml_queue_depth", "Tasks waiting in the work queue."),
		gJobQueue:    reg.GaugeVec("fdml_job_queue_depth", "Outstanding tasks of an open round, by job id.", "job"),
		gBusy:        reg.Gauge("fdml_busy_workers", "Workers with a task in flight."),
		gReady:       reg.Gauge("fdml_ready_workers", "Alive workers with spare pipeline capacity."),
		gInflight:    reg.Gauge("fdml_inflight_tasks", "Total dispatched tasks awaiting results."),
		gActiveJobs:  reg.Gauge("fdml_active_jobs", "Jobs with an open round at the foreman."),
		gBestLnL:     reg.Gauge("fdml_best_lnl", "Best log-likelihood seen so far."),
		hPhase:       reg.HistogramVec("fdml_task_phase_seconds", "Per-task phase latency.", taskPhaseBuckets, "phase"),

		started: time.Now(),
		hist:    map[int]*workerHistory{},
		busy:    map[int]bool{},
		jobs:    map[uint64]*jobRow{},
	}
	o.snap.Started = o.started
	return o
}

// Bus returns the observer's event bus (nil for a nil observer).
func (o *RunObserver) Bus() *obs.Bus {
	if o == nil {
		return nil
	}
	return o.bus
}

// Registry returns the observer's metrics registry (nil for a nil
// observer), so co-located components — the TCP router, the status
// server — can share it.
func (o *RunObserver) Registry() *obs.Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Spans returns the observer's completed-span ring.
func (o *RunObserver) Spans() *obs.SpanLog {
	if o == nil {
		return nil
	}
	return o.spans
}

func (o *RunObserver) worker(rank int) *workerHistory {
	h := o.hist[rank]
	if h == nil {
		h = &workerHistory{}
		o.hist[rank] = h
	}
	return h
}

// jobQueueGauge refreshes the per-job outstanding-task gauge from a row.
// Callers hold o.mu.
func (o *RunObserver) jobQueueGauge(job uint64, row *jobRow) {
	o.gJobQueue.With(jobLabel(job)).Set(float64(row.Tasks - row.Completed))
}

// Depths records the foreman's queue/busy/ready/inflight sizes and the
// number of jobs with an open round after a scheduling step; the foreman
// calls it wherever those sets change. With pipelining, inflight can
// exceed busy (several tasks per worker); with concurrent searches, jobs
// can exceed one.
func (o *RunObserver) Depths(queue, busy, ready, inflight, jobs int) {
	if o == nil {
		return
	}
	o.gQueue.Set(float64(queue))
	o.gBusy.Set(float64(busy))
	o.gReady.Set(float64(ready))
	o.gInflight.Set(float64(inflight))
	o.gActiveJobs.Set(float64(jobs))
	o.mu.Lock()
	o.snap.QueueDepth, o.snap.Busy, o.snap.Ready, o.snap.Inflight = queue, busy, ready, inflight
	o.snap.ActiveJobs = jobs
	o.mu.Unlock()
}

// RoundStart records a round batch arriving at the foreman.
func (o *RunObserver) RoundStart(job, round uint64, tasks int) {
	if o == nil {
		return
	}
	o.gRound.Set(float64(round))
	o.mu.Lock()
	o.snap.Round = round
	row := &jobRow{Round: round, Tasks: tasks}
	o.jobs[job] = row
	o.jobQueueGauge(job, row)
	o.mu.Unlock()
	o.bus.Publish(RoundStarted{Job: job, Round: round, Tasks: tasks, At: time.Now()})
}

// Dispatched records one task send, with the time it sat queued.
func (o *RunObserver) Dispatched(worker int, job, round, taskID uint64, queueWait time.Duration) {
	if o == nil {
		return
	}
	o.mDispatch.Inc()
	o.mJobDispatch.With(jobLabel(job)).Inc()
	o.hPhase.With(obs.PhaseQueue).Observe(queueWait.Seconds())
	o.mu.Lock()
	o.snap.Dispatched++
	o.busy[worker] = true
	if row := o.jobs[job]; row != nil {
		row.Dispatched++
	}
	o.mu.Unlock()
	o.bus.Publish(TaskDispatched{Worker: worker, Job: job, Round: round, TaskID: taskID, QueueWait: queueWait})
}

// Completed records one accepted result and closes its trace span.
func (o *RunObserver) Completed(worker int, res Result, rtt time.Duration) {
	if o == nil {
		return
	}
	o.mResults.With(rankLabel(worker)).Inc()
	if rtt > 0 {
		o.hPhase.With(obs.PhaseRTT).Observe(rtt.Seconds())
	}
	if res.Eval > 0 {
		o.hPhase.With(obs.PhaseEval).Observe(res.Eval.Seconds())
		if net := rtt - res.Eval; net > 0 {
			o.hPhase.With(obs.PhaseNetwork).Observe(net.Seconds())
		}
	}
	now := time.Now()
	o.mu.Lock()
	o.snap.Completed++
	h := o.worker(worker)
	h.Tasks++
	h.EvalTotal += res.Eval
	h.LastSeen = now
	delete(o.busy, worker)
	if row := o.jobs[res.Job]; row != nil {
		row.Completed++
		o.jobQueueGauge(res.Job, row)
	}
	o.mu.Unlock()
	if res.Trace.Valid() {
		phases := map[string]float64{}
		if rtt > 0 {
			phases[obs.PhaseRTT] = obs.PhaseMs(rtt)
		}
		if res.Eval > 0 {
			phases[obs.PhaseEval] = obs.PhaseMs(res.Eval)
			if net := rtt - res.Eval; net > 0 {
				phases[obs.PhaseNetwork] = obs.PhaseMs(net)
			}
		}
		o.spans.Add(obs.SpanRecord{
			Ctx: res.Trace, Name: "task", Worker: worker,
			Round: res.Round, End: now, PhasesMs: phases,
		})
	}
	o.bus.Publish(TaskCompleted{Worker: worker, Job: res.Job, Round: res.Round, TaskID: res.TaskID, LnL: res.LnL, RTT: rtt, Eval: res.Eval})
}

// TimedOut records a fault-tolerance removal (deadline missed or send
// failed); the task has been requeued.
func (o *RunObserver) TimedOut(worker int, job, round, taskID uint64) {
	if o == nil {
		return
	}
	o.mTimeouts.With(rankLabel(worker)).Inc()
	o.mu.Lock()
	o.snap.Timeouts++
	o.worker(worker).Timeouts++
	delete(o.busy, worker)
	o.mu.Unlock()
	o.bus.Publish(WorkerTimedOut{Worker: worker, Job: job, Round: round, TaskID: taskID})
}

// Reinstated records a delinquent worker welcomed back.
func (o *RunObserver) Reinstated(worker int, round uint64) {
	if o == nil {
		return
	}
	o.mReinstates.With(rankLabel(worker)).Inc()
	o.mu.Lock()
	o.snap.Reinstates++
	o.worker(worker).Reinstates++
	o.mu.Unlock()
	o.bus.Publish(WorkerReinstated{Worker: worker, Round: round})
}

// Joined records a worker entering the membership.
func (o *RunObserver) Joined(worker int) {
	if o == nil {
		return
	}
	o.mJoins.Inc()
	o.mu.Lock()
	o.snap.Joins++
	o.worker(worker).LastSeen = time.Now()
	o.mu.Unlock()
	o.bus.Publish(WorkerJoined{Worker: worker})
}

// Left records a permanent departure.
func (o *RunObserver) Left(worker int) {
	if o == nil {
		return
	}
	o.mLeaves.Inc()
	o.mu.Lock()
	o.snap.Leaves++
	delete(o.busy, worker)
	o.mu.Unlock()
	o.bus.Publish(WorkerLeft{Worker: worker})
}

// Inline records one task the foreman evaluated itself.
func (o *RunObserver) Inline(job, round, taskID uint64, lnL float64) {
	if o == nil {
		return
	}
	o.mInline.Inc()
	o.mu.Lock()
	o.snap.Inline++
	if row := o.jobs[job]; row != nil {
		row.Inline++
		row.Completed++
		o.jobQueueGauge(job, row)
	}
	o.mu.Unlock()
	o.bus.Publish(InlineEvaluated{Job: job, Round: round, TaskID: taskID, LnL: lnL})
}

// RoundDone records a round reply with its best likelihood.
func (o *RunObserver) RoundDone(job, round uint64, members int, bestLnL float64) {
	if o == nil {
		return
	}
	o.mRounds.Inc()
	o.gBestLnL.Set(bestLnL)
	o.gJobQueue.With(jobLabel(job)).Set(0)
	o.mu.Lock()
	o.snap.BestLnL = bestLnL
	o.snap.Members = members
	delete(o.jobs, job)
	o.mu.Unlock()
	o.bus.Publish(RoundCompleted{Job: job, Round: round, BestLnL: bestLnL, At: time.Now()})
}

// Snapshot renders the live /status document.
func (o *RunObserver) Snapshot() RunSnapshot {
	if o == nil {
		return RunSnapshot{}
	}
	o.mu.Lock()
	s := o.snap
	ranks := make([]int, 0, len(o.hist))
	for r := range o.hist {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	s.Workers = make([]WorkerRunSnapshot, 0, len(ranks))
	for _, r := range ranks {
		h := o.hist[r]
		row := WorkerRunSnapshot{
			Rank: r, Tasks: h.Tasks, Timeouts: h.Timeouts,
			Reinstates: h.Reinstates, EvalMs: obs.PhaseMs(h.EvalTotal),
			State: "idle",
		}
		if o.busy[r] {
			row.State = "busy"
		}
		if !h.LastSeen.IsZero() {
			row.LastSeen = h.LastSeen.Format(time.RFC3339Nano)
		}
		s.Workers = append(s.Workers, row)
	}
	jobIDs := make([]uint64, 0, len(o.jobs))
	for id := range o.jobs {
		jobIDs = append(jobIDs, id)
	}
	sort.Slice(jobIDs, func(i, j int) bool { return jobIDs[i] < jobIDs[j] })
	s.Jobs = make([]JobRunSnapshot, 0, len(jobIDs))
	for _, id := range jobIDs {
		row := o.jobs[id]
		s.Jobs = append(s.Jobs, JobRunSnapshot{
			Job: id, Round: row.Round, Tasks: row.Tasks,
			Dispatched: row.Dispatched, Completed: row.Completed, Inline: row.Inline,
		})
	}
	o.mu.Unlock()
	s.UptimeMs = obs.PhaseMs(time.Since(o.started))
	s.Recent = o.spans.Recent()
	return s
}

// rankLabel renders a worker rank as a metric label value.
func rankLabel(rank int) string {
	if rank == int(InlineWorker) {
		return "inline"
	}
	return itoa(rank)
}

// jobLabel renders a job id as a metric label value.
func jobLabel(job uint64) string {
	return itoa(int(job))
}

// itoa is a minimal non-negative int formatter (avoids strconv in the
// hot path's import set; ranks are small).
func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

// WorkerSnapshot is the /status JSON document of a worker process.
type WorkerSnapshot struct {
	Started     time.Time `json:"started"`
	UptimeMs    float64   `json:"uptime_ms"`
	Rank        int       `json:"rank"`
	Tasks       int       `json:"tasks"`
	Reconnects  int       `json:"reconnects"`
	EvalMs      float64   `json:"eval_ms"`
	Ops         uint64    `json:"ops"`
	CacheHits   uint64    `json:"cache_hits"`
	CacheMisses uint64    `json:"cache_misses"`
	NewtonIters uint64    `json:"newton_iters"`
	Threads     int       `json:"threads,omitempty"`
	ShardDisp   uint64    `json:"shard_dispatches,omitempty"`
	LastTask    string    `json:"last_task,omitempty"`
}

// WorkerObserver is the worker process's sink: task counts, evaluation
// latency, engine cache and kernel counters, reconnect history. All
// methods are nil-receiver safe.
type WorkerObserver struct {
	reg *obs.Registry

	mTasks      *obs.Counter
	hEval       *obs.Histogram
	mHits       *obs.Counter
	mMisses     *obs.Counter
	mOps        *obs.Counter
	mNewton     *obs.Counter
	mReconnects *obs.Counter
	gThreads    *obs.Gauge
	gShardDisp  *obs.Gauge

	mu      sync.Mutex
	started time.Time
	snap    WorkerSnapshot
}

// NewWorkerObserver builds a worker-side observer over a registry (nil
// records nothing but still snapshots).
func NewWorkerObserver(reg *obs.Registry) *WorkerObserver {
	o := &WorkerObserver{
		reg:         reg,
		mTasks:      reg.Counter("fdml_worker_tasks_total", "Tasks served by this worker."),
		hEval:       reg.Histogram("fdml_worker_eval_seconds", "Task evaluation latency.", taskPhaseBuckets),
		mHits:       reg.Counter("fdml_engine_cache_hits_total", "CLV cache hits."),
		mMisses:     reg.Counter("fdml_engine_cache_misses_total", "CLV cache misses."),
		mOps:        reg.Counter("fdml_engine_ops_total", "Likelihood kernel work units."),
		mNewton:     reg.Counter("fdml_engine_newton_iters_total", "Newton-Raphson iterations."),
		mReconnects: reg.Counter("fdml_worker_reconnects_total", "Reconnections to the master."),
		gThreads:    reg.Gauge("fdml_worker_threads", "Likelihood kernel threads on this worker."),
		gShardDisp:  reg.Gauge("fdml_engine_shard_dispatches", "Cumulative threaded kernel dispatches."),
		started:     time.Now(),
	}
	o.snap.Started = o.started
	return o
}

// Attached records a (re)join with the assigned rank; every join after
// the first counts as a reconnect.
func (o *WorkerObserver) Attached(rank int) {
	if o == nil {
		return
	}
	o.mu.Lock()
	if o.snap.Rank != 0 || o.snap.Tasks > 0 || o.snap.Reconnects > 0 {
		o.snap.Reconnects++
		o.mReconnects.Inc()
	}
	o.snap.Rank = rank
	o.mu.Unlock()
}

// Served records one evaluated task from its Result.
func (o *WorkerObserver) Served(res Result) {
	if o == nil {
		return
	}
	o.mTasks.Inc()
	o.hEval.Observe(res.Eval.Seconds())
	o.mHits.Add(float64(res.CacheHits))
	o.mMisses.Add(float64(res.CacheMisses))
	o.mOps.Add(float64(res.Ops))
	o.mNewton.Add(float64(res.NewtonIters))
	o.mu.Lock()
	o.snap.Tasks++
	o.snap.EvalMs += obs.PhaseMs(res.Eval)
	o.snap.Ops += res.Ops
	o.snap.CacheHits += res.CacheHits
	o.snap.CacheMisses += res.CacheMisses
	o.snap.NewtonIters += res.NewtonIters
	o.snap.LastTask = res.Trace.String()
	o.mu.Unlock()
}

// Engine records the worker engine's threading state: the kernel thread
// count and the cumulative threaded shard dispatches (0 while the engine
// runs serial).
func (o *WorkerObserver) Engine(threads int, shardDispatches uint64) {
	if o == nil {
		return
	}
	o.gThreads.Set(float64(threads))
	o.gShardDisp.Set(float64(shardDispatches))
	o.mu.Lock()
	o.snap.Threads = threads
	o.snap.ShardDisp = shardDispatches
	o.mu.Unlock()
}

// Snapshot renders the worker's /status document.
func (o *WorkerObserver) Snapshot() WorkerSnapshot {
	if o == nil {
		return WorkerSnapshot{}
	}
	o.mu.Lock()
	s := o.snap
	o.mu.Unlock()
	s.UptimeMs = obs.PhaseMs(time.Since(o.started))
	return s
}
