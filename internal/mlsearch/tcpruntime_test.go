package mlsearch

import (
	"bytes"
	"net"
	"sync"
	"testing"

	"repro/internal/seq"
	"repro/internal/simulate"
)

// TestTCPRuntimeEndToEnd runs the full distributed program on loopback:
// master+router, foreman, monitor, and two worker "processes" that join
// via the bootstrap protocol, then compares against the serial answer.
func TestTCPRuntimeEndToEnd(t *testing.T) {
	ds, err := simulate.New(simulate.Options{Taxa: 7, Sites: 150, Seed: 31, MeanBranchLen: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	var phy bytes.Buffer
	if err := seq.WritePhylip(&phy, ds.Alignment, 0); err != nil {
		t.Fatal(err)
	}
	bundle := DataBundle{PhylipText: phy.Bytes(), TTRatio: 2.0}

	// The workers must build the exact dataset the master searches on.
	m, pat, taxa, err := bundle.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Taxa: taxa, Patterns: pat, Model: m, Seed: 7, RearrangeExtent: 1}
	serial, err := RunSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 2
	opt := TCPMasterOptions{
		Addr:        "127.0.0.1:0",
		Workers:     workers,
		WithMonitor: true,
		Bundle:      bundle,
	}
	firstWorker, size := opt.WorkerRanks()

	addrCh := make(chan net.Addr, 1)
	opt.OnListen = func(a net.Addr) { addrCh <- a }

	var wg sync.WaitGroup
	var outcome *LocalRunOutcome
	var masterErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		outcome, masterErr = RunTCPMaster(cfg, opt)
	}()

	addr := (<-addrCh).String()
	for r := firstWorker; r < size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := RunTCPWorker(addr, rank, size, true, WorkerHooks{}); err != nil {
				t.Errorf("worker %d: %v", rank, err)
			}
		}(r)
	}
	wg.Wait()
	if masterErr != nil {
		t.Fatal(masterErr)
	}
	res := outcome.Results[0]
	if res.BestNewick != serial.BestNewick || res.LnL != serial.LnL {
		t.Errorf("TCP run diverged from serial: %g vs %g", res.LnL, serial.LnL)
	}
	if outcome.Monitor == nil || outcome.Monitor.Results != res.TotalTasks {
		t.Errorf("monitor stats inconsistent: %+v", outcome.Monitor)
	}
	if len(outcome.Monitor.TasksPerWorker) != workers {
		t.Errorf("work spread over %d workers, want %d", len(outcome.Monitor.TasksPerWorker), workers)
	}
}

func TestDataBundleCodec(t *testing.T) {
	in := DataBundle{
		PhylipText: []byte("2 4\na AAAA\nb CCCC\n"),
		TTRatio:    2.5,
		SiteRates:  []float64{1, 2, 0.5, 0.5},
		Weights:    []float64{1, 1, 0, 2},
	}
	out, err := UnmarshalDataBundle(MarshalDataBundle(in))
	if err != nil {
		t.Fatal(err)
	}
	if string(out.PhylipText) != string(in.PhylipText) || out.TTRatio != in.TTRatio {
		t.Errorf("bundle mismatch: %+v", out)
	}
	if len(out.SiteRates) != 4 || len(out.Weights) != 4 {
		t.Errorf("slices lost: %+v", out)
	}
	if _, err := UnmarshalDataBundle([]byte{0x00}); err == nil {
		t.Error("bad kind byte accepted")
	}
}

func TestDataBundleBuild(t *testing.T) {
	b := DataBundle{PhylipText: []byte("3 4\na ACGT\nb ACGA\nc CCGT\n")}
	m, pat, taxa, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "F84" || pat.NumSeqs() != 3 || len(taxa) != 3 {
		t.Errorf("build: %s %d %v", m.Name(), pat.NumSeqs(), taxa)
	}
	if _, _, _, err := (DataBundle{PhylipText: []byte("garbage")}).Build(); err == nil {
		t.Error("garbage alignment accepted")
	}
}

func TestRunTCPWorkerRankValidation(t *testing.T) {
	if err := RunTCPWorker("127.0.0.1:1", 0, 4, true, WorkerHooks{}); err == nil {
		t.Error("rank 0 accepted as worker")
	}
	if err := RunTCPWorker("127.0.0.1:1", 2, 4, true, WorkerHooks{}); err == nil {
		t.Error("monitor rank accepted as worker")
	}
}
