package mlsearch

import (
	"bytes"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/likelihood"
	"repro/internal/seq"
	"repro/internal/simulate"
)

// TestTCPRuntimeEndToEnd runs the full distributed program on loopback:
// master+router, foreman, monitor, and two anonymous worker "processes"
// that join via the elastic handshake, then compares against the serial
// answer.
func TestTCPRuntimeEndToEnd(t *testing.T) {
	ds, err := simulate.New(simulate.Options{Taxa: 7, Sites: 150, Seed: 31, MeanBranchLen: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	var phy bytes.Buffer
	if err := seq.WritePhylip(&phy, ds.Alignment, 0); err != nil {
		t.Fatal(err)
	}
	bundle := DataBundle{PhylipText: phy.Bytes(), TTRatio: 2.0}

	// The workers must build the exact dataset the master searches on.
	m, pat, taxa, err := bundle.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Taxa: taxa, Patterns: pat, Model: m, Seed: 7, RearrangeExtent: 1}
	serial, err := Run(cfg, RunOptions{Transport: Serial})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 2
	opt := RunOptions{
		Transport:   TCP,
		Addr:        "127.0.0.1:0",
		Workers:     workers,
		WithMonitor: true,
		Bundle:      bundle,
	}

	addrCh := make(chan net.Addr, 1)
	opt.OnListen = func(a net.Addr) { addrCh <- a }

	var wg sync.WaitGroup
	var outcome *RunOutcome
	var masterErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		outcome, masterErr = Run(cfg, opt)
	}()

	addr := (<-addrCh).String()
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := ServeElastic(addr, WorkerHooks{}, ReconnectPolicy{Disabled: true}); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if masterErr != nil {
		t.Fatal(masterErr)
	}
	res := outcome.Results[0]
	if res.BestNewick != serial.Results[0].BestNewick || res.LnL != serial.Results[0].LnL {
		t.Errorf("TCP run diverged from serial: %g vs %g", res.LnL, serial.Results[0].LnL)
	}
	if outcome.Monitor == nil || outcome.Monitor.Results != res.TotalTasks {
		t.Errorf("monitor stats inconsistent: %+v", outcome.Monitor)
	}
	if len(outcome.Monitor.TasksPerWorker) != workers {
		t.Errorf("work spread over %d workers, want %d", len(outcome.Monitor.TasksPerWorker), workers)
	}
	if outcome.Monitor.Joins != workers {
		t.Errorf("monitor saw %d joins, want %d", outcome.Monitor.Joins, workers)
	}
}

// TestTCPRunNoWorkersInline proves the bottom rung of the degradation
// ladder: with a zero join barrier and no workers at all, the foreman
// evaluates every task inline and the run still matches serial.
func TestTCPRunNoWorkersInline(t *testing.T) {
	ds, err := simulate.New(simulate.Options{Taxa: 6, Sites: 120, Seed: 13, MeanBranchLen: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	var phy bytes.Buffer
	if err := seq.WritePhylip(&phy, ds.Alignment, 0); err != nil {
		t.Fatal(err)
	}
	bundle := DataBundle{PhylipText: phy.Bytes(), TTRatio: 2.0}
	m, pat, taxa, err := bundle.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Taxa: taxa, Patterns: pat, Model: m, Seed: 9, RearrangeExtent: 1}
	serial, err := Run(cfg, RunOptions{Transport: Serial})
	if err != nil {
		t.Fatal(err)
	}

	outcome, err := Run(cfg, RunOptions{
		Transport:   TCP,
		Addr:        "127.0.0.1:0",
		Workers:     0, // start immediately, no workers will ever join
		WithMonitor: true,
		Bundle:      bundle,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := outcome.Results[0]
	if res.BestNewick != serial.Results[0].BestNewick || res.LnL != serial.Results[0].LnL {
		t.Errorf("inline run diverged from serial: %g vs %g", res.LnL, serial.Results[0].LnL)
	}
	if outcome.Monitor.Inline != res.TotalTasks {
		t.Errorf("monitor counted %d inline evaluations, want %d", outcome.Monitor.Inline, res.TotalTasks)
	}
}

func TestDataBundleCodec(t *testing.T) {
	in := DataBundle{
		PhylipText: []byte("2 4\na AAAA\nb CCCC\n"),
		TTRatio:    2.5,
		SiteRates:  []float64{1, 2, 0.5, 0.5},
		Weights:    []float64{1, 1, 0, 2},
		Precision:  likelihood.Float32,
		Engine:     "reference",
		SmoothMode: likelihood.SmoothGradient,
	}
	out, err := UnmarshalDataBundle(MarshalDataBundle(in))
	if err != nil {
		t.Fatal(err)
	}
	if string(out.PhylipText) != string(in.PhylipText) || out.TTRatio != in.TTRatio {
		t.Errorf("bundle mismatch: %+v", out)
	}
	if len(out.SiteRates) != 4 || len(out.Weights) != 4 {
		t.Errorf("slices lost: %+v", out)
	}
	if out.Precision != likelihood.Float32 {
		t.Errorf("precision lost: %v", out.Precision)
	}
	if out.Engine != "reference" {
		t.Errorf("engine lost: %q", out.Engine)
	}
	if out.SmoothMode != likelihood.SmoothGradient {
		t.Errorf("smooth mode lost: %v", out.SmoothMode)
	}
	if _, err := UnmarshalDataBundle([]byte{0x00}); err == nil {
		t.Error("bad kind byte accepted")
	}
	// Engine and smooth mode ride in extension fields: a bundle without
	// them (an older master) must decode cleanly with the defaults — the
	// worker then falls back to the default backend and the sweep.
	in.Engine = ""
	in.SmoothMode = likelihood.SmoothSweep
	out, err = UnmarshalDataBundle(MarshalDataBundle(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Engine != "" {
		t.Errorf("engine invented: %q", out.Engine)
	}
	if out.SmoothMode != likelihood.SmoothSweep {
		t.Errorf("smooth mode invented: %v", out.SmoothMode)
	}
}

func TestDataBundleBuild(t *testing.T) {
	b := DataBundle{PhylipText: []byte("3 4\na ACGT\nb ACGA\nc CCGT\n")}
	m, pat, taxa, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "F84" || pat.NumSeqs() != 3 || len(taxa) != 3 {
		t.Errorf("build: %s %d %v", m.Name(), pat.NumSeqs(), taxa)
	}
	if _, _, _, err := (DataBundle{PhylipText: []byte("garbage")}).Build(); err == nil {
		t.Error("garbage alignment accepted")
	}
}

func TestWelcomeCodec(t *testing.T) {
	lay := ElasticLayout(true)
	bundle := DataBundle{PhylipText: []byte("2 4\na AAAA\nb CCCC\n"), TTRatio: 2.0}
	gotLay, gotBundle, err := unmarshalWelcome(marshalWelcome(lay, bundle))
	if err != nil {
		t.Fatal(err)
	}
	if gotLay.Master != lay.Master || gotLay.Foreman != lay.Foreman || gotLay.Monitor != lay.Monitor || !gotLay.Elastic {
		t.Errorf("layout round trip: %+v", gotLay)
	}
	if string(gotBundle.PhylipText) != string(bundle.PhylipText) {
		t.Errorf("bundle round trip: %+v", gotBundle)
	}
	if _, _, err := unmarshalWelcome([]byte{0x00}); err == nil {
		t.Error("bad welcome accepted")
	}
}

func TestParseReconnectPolicy(t *testing.T) {
	p, err := ParseReconnectPolicy("on")
	if err != nil || p.Disabled {
		t.Errorf("on: %+v %v", p, err)
	}
	p, err = ParseReconnectPolicy("off")
	if err != nil || !p.Disabled {
		t.Errorf("off: %+v %v", p, err)
	}
	p, err = ParseReconnectPolicy("base=500ms,cap=30s,max=10")
	if err != nil || p.Base != 500*time.Millisecond || p.Cap != 30*time.Second || p.MaxAttempts != 10 {
		t.Errorf("settings: %+v %v", p, err)
	}
	if _, err := ParseReconnectPolicy("nope=1"); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := ParseReconnectPolicy("base"); err == nil {
		t.Error("missing value accepted")
	}
}

func TestReconnectBackoffBounds(t *testing.T) {
	p := ReconnectPolicy{}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 12; n++ {
		d := p.backoff(n, rng)
		if d <= 0 || d > p.Cap {
			t.Fatalf("backoff(%d) = %v outside (0, %v]", n, d, p.Cap)
		}
	}
}
