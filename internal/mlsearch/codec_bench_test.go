package mlsearch

import (
	"strings"
	"testing"

	"repro/internal/comm"
)

// Codec round-trip benchmarks for the pooled wire buffers. The
// "recycled" variants follow the runtime's ownership protocol (PutBuf
// once the frame is sent/decoded), so marshalling reuses pool memory;
// the "fresh" variants leak every buffer, forcing the pool to allocate
// each round trip — the steady state before this change. The per-op
// alloc delta between the two is the win. Run via make bench.

func benchTask() Task {
	return Task{
		ID: 712, Round: 9,
		BaseNewick: "(" + strings.Repeat("(a:0.1,b:0.2):0.3,", 40) + "c:0.1);",
		LocalTaxon: 37, InsertEdge: 12, Passes: 2,
	}
}

func BenchmarkTaskCodecRecycled(b *testing.B) {
	t := benchTask()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := MarshalTask(t)
		if _, err := UnmarshalTask(buf); err != nil {
			b.Fatal(err)
		}
		comm.PutBuf(buf)
	}
}

func BenchmarkTaskCodecFresh(b *testing.B) {
	t := benchTask()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := MarshalTask(t)
		if _, err := UnmarshalTask(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkResultCodecRecycled(b *testing.B) {
	res := Result{
		TaskID: 712, Round: 9, LnL: -15234.25, Ops: 4096,
		Newick: "(" + strings.Repeat("(a:0.1,b:0.2):0.3,", 40) + "c:0.1);",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := MarshalResult(res)
		if _, err := UnmarshalResult(buf); err != nil {
			b.Fatal(err)
		}
		comm.PutBuf(buf)
	}
}
