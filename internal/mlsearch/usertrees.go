package mlsearch

import (
	"fmt"
	"sort"

	"repro/internal/tree"
)

// User-tree evaluation: fastDNAml's user-tree mode scores a set of given
// topologies instead of searching (the original's limitation on "the
// number of user trees" was removed per §2.1). Each tree's branch lengths
// are optimized and its log-likelihood reported, so competing hypotheses
// can be ranked under the same model and data.

// UserTreeResult is one scored user tree.
type UserTreeResult struct {
	// Index is the tree's position in the input.
	Index int
	// Newick is the optimized tree.
	Newick string
	// LnL is the optimized log-likelihood.
	LnL float64
	// DiffFromBest is LnL minus the best tree's LnL (0 for the best).
	DiffFromBest float64
}

// EvaluateUserTrees optimizes and ranks the given trees through a
// dispatcher (serial or parallel); results come back sorted best-first.
func EvaluateUserTrees(cfg Config, trees []*tree.Tree, disp Dispatcher) ([]UserTreeResult, error) {
	norm, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	if len(trees) == 0 {
		return nil, fmt.Errorf("mlsearch: no user trees")
	}
	tasks := make([]Task, len(trees))
	for i, t := range trees {
		if err := t.Validate(true); err != nil {
			return nil, fmt.Errorf("mlsearch: user tree %d: %w", i+1, err)
		}
		if got := t.NumLeaves(); got != len(norm.Taxa) {
			return nil, fmt.Errorf("mlsearch: user tree %d covers %d of %d taxa", i+1, got, len(norm.Taxa))
		}
		tasks[i] = Task{
			ID:         uint64(i + 1),
			Round:      1,
			Newick:     t.Newick(),
			LocalTaxon: -1,
			Passes:     int32(norm.FullSmoothPasses),
			KeepTree:   true,
		}
	}
	results, err := disp.Dispatch(tasks)
	if err != nil {
		return nil, err
	}
	if len(results) != len(tasks) {
		return nil, fmt.Errorf("mlsearch: %d results for %d user trees", len(results), len(tasks))
	}
	sort.Slice(results, func(i, j int) bool { return results[i].TaskID < results[j].TaskID })

	out := make([]UserTreeResult, len(results))
	best := results[0].LnL
	for _, r := range results {
		if r.LnL > best {
			best = r.LnL
		}
	}
	for i, r := range results {
		out[i] = UserTreeResult{
			Index:        int(r.TaskID) - 1,
			Newick:       r.Newick,
			LnL:          r.LnL,
			DiffFromBest: r.LnL - best,
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LnL != out[j].LnL {
			return out[i].LnL > out[j].LnL
		}
		return out[i].Index < out[j].Index
	})
	return out, nil
}
