package mlsearch

import (
	"fmt"
	"time"

	"repro/internal/likelihood"
	"repro/internal/tree"
)

// Evaluator executes Tasks against one engine. The serial dispatcher and
// the worker process share it, so serial and parallel runs produce
// bit-identical results for the same tasks.
//
// Shared-base tasks (BaseNewick set) are evaluated against a base tree
// the evaluator parses once and keeps — along with the engine's CLV
// cache — across every task of the batch. Candidate insertions never
// touch the base tree at all; rearrangement candidates are applied,
// scored, and undone with every modified branch length restored, so the
// cache stays warm from task to task. Because cached CLVs are
// bit-identical to freshly computed ones, results do not depend on task
// order or on which worker evaluates which task.
type Evaluator struct {
	eng  likelihood.Engine
	taxa []string

	// Shared-base state, keyed by the base Newick string.
	baseKey   string
	base      *tree.Tree
	baseEdges []tree.Edge
	// baseLens snapshots every base edge length (by endpoint IDs) so
	// rearrangement evaluation can restore the exact pre-move state.
	baseLens []edgeLenSnap

	scorer      likelihood.InsertScorer
	scorerTaxon int32

	// smoothMode is the OptOptions.Mode applied to full (unrestricted)
	// smoothing tasks; see Config.SmoothMode.
	smoothMode likelihood.SmoothMode
}

type edgeLenSnap struct {
	a, b int
	l    float64
}

// NewEvaluator wraps a likelihood engine for task evaluation. Any
// registered Engine backend works; per-task cache/ops accounting in
// Results degrades to zeros when the engine does not implement the
// corresponding capability interfaces.
func NewEvaluator(eng likelihood.Engine, taxa []string) *Evaluator {
	return &Evaluator{eng: eng, taxa: taxa, scorerTaxon: -1}
}

// SetSmoothMode selects the branch-smoothing algorithm for full
// (unrestricted) smoothing tasks. Restricted optimizations — insertion
// scoring, junction-local rearrangement smoothing, Around-limited
// passes — always use the sequential sweep, as do engines without the
// GradientSmoother capability.
func (ev *Evaluator) SetSmoothMode(m likelihood.SmoothMode) { ev.smoothMode = m }

// Evaluate runs one task and returns the result. The Ops field reports
// the work units consumed by exactly this evaluation; CacheHits and
// CacheMisses report the CLV cache behaviour over the same span; Eval
// and NewtonIters time and count the work so the foreman can attribute
// per-phase latency to the task's trace span.
func (ev *Evaluator) Evaluate(t Task) (Result, error) {
	start := time.Now()
	opsBefore := likelihood.OpsOf(ev.eng)
	statsBefore := likelihood.StatsOf(ev.eng)

	var (
		nwk string
		lnL float64
		err error
	)
	switch {
	case t.BaseNewick != "" && t.InsertEdge >= 0:
		nwk, lnL, err = ev.evalInsert(t)
	case t.BaseNewick != "":
		nwk, lnL, err = ev.evalMove(t)
	default:
		nwk, lnL, err = ev.evalFull(t)
	}
	if err != nil {
		return Result{}, err
	}
	statsAfter := likelihood.StatsOf(ev.eng)
	return Result{
		TaskID:      t.ID,
		Round:       t.Round,
		Newick:      nwk,
		LnL:         lnL,
		Ops:         likelihood.OpsOf(ev.eng) - opsBefore,
		CacheHits:   statsAfter.Hits - statsBefore.Hits,
		CacheMisses: statsAfter.Misses - statsBefore.Misses,
		NewtonIters: statsAfter.NewtonIters - statsBefore.NewtonIters,
		Eval:        time.Since(start),
		Trace:       t.Trace,
		Job:         t.Job,
	}, nil
}

// evalFull is the standalone path: parse the task's own tree and smooth
// it as requested (init, smooth, and user-tree rounds).
func (ev *Evaluator) evalFull(t Task) (string, float64, error) {
	tr, err := tree.ParseNewick(t.Newick, ev.taxa)
	if err != nil {
		return "", 0, fmt.Errorf("mlsearch: task %d: %w", t.ID, err)
	}
	opt := likelihood.OptOptions{Passes: int(t.Passes), Mode: ev.smoothMode}
	if t.LocalTaxon >= 0 {
		leaf := tr.LeafByTaxon(int(t.LocalTaxon))
		if leaf == nil {
			return "", 0, fmt.Errorf("mlsearch: task %d: local taxon %d not in tree", t.ID, t.LocalTaxon)
		}
		if leaf.Degree() > 0 {
			opt.Around = leaf.Nbr[0]
			opt.Radius = 2
		}
	}
	lnL, err := ev.eng.OptimizeBranches(tr, opt)
	if err != nil {
		return "", 0, fmt.Errorf("mlsearch: task %d: %w", t.ID, err)
	}
	return tr.Newick(), lnL, nil
}

// ensureBase parses and caches the shared base tree for a batch.
func (ev *Evaluator) ensureBase(nwk string) error {
	if ev.base != nil && ev.baseKey == nwk {
		return nil
	}
	tr, err := tree.ParseNewick(nwk, ev.taxa)
	if err != nil {
		return err
	}
	ev.base = tr
	ev.baseKey = nwk
	ev.baseEdges = tr.Edges()
	ev.baseLens = ev.baseLens[:0]
	for _, e := range ev.baseEdges {
		ev.baseLens = append(ev.baseLens, edgeLenSnap{a: e.A.ID, b: e.B.ID, l: e.Length()})
	}
	ev.scorer = nil
	ev.scorerTaxon = -1
	return nil
}

// evalInsert scores inserting LocalTaxon at base edge InsertEdge using
// the shared-base scorer: O(patterns) at the insertion edge, with the
// base tree's directed partials computed once and shared by every
// candidate of the round.
func (ev *Evaluator) evalInsert(t Task) (string, float64, error) {
	if err := ev.ensureBase(t.BaseNewick); err != nil {
		return "", 0, fmt.Errorf("mlsearch: task %d: %w", t.ID, err)
	}
	if int(t.InsertEdge) >= len(ev.baseEdges) {
		return "", 0, fmt.Errorf("mlsearch: task %d: insert edge %d of %d", t.ID, t.InsertEdge, len(ev.baseEdges))
	}
	if ev.scorer == nil || ev.scorerTaxon != t.LocalTaxon {
		sc, err := ev.eng.NewInsertScorer(ev.base, int(t.LocalTaxon))
		if err != nil {
			return "", 0, fmt.Errorf("mlsearch: task %d: %w", t.ID, err)
		}
		ev.scorer = sc
		ev.scorerTaxon = t.LocalTaxon
	}
	ed := ev.baseEdges[t.InsertEdge]
	score, err := ev.scorer.Score(ed, int(t.Passes))
	if err != nil {
		return "", 0, fmt.Errorf("mlsearch: task %d: %w", t.ID, err)
	}
	// Build the candidate tree for the result: clone the base, insert
	// the leaf, and install the optimized junction lengths.
	cand := ev.base.Clone()
	ca, cb := cand.Nodes[ed.A.ID], cand.Nodes[ed.B.ID]
	leaf, err := cand.InsertLeaf(int(t.LocalTaxon), tree.Edge{A: ca, B: cb})
	if err != nil {
		return "", 0, fmt.Errorf("mlsearch: task %d: %w", t.ID, err)
	}
	mid := leaf.Nbr[0]
	tree.SetLen(ca, mid, score.LenA)
	tree.SetLen(mid, cb, score.LenB)
	tree.SetLen(mid, leaf, score.LenLeaf)
	return cand.Newick(), score.LnL, nil
}

// evalMove scores one rearrangement: apply the SPR move to the shared
// base, optimize the branches around the regraft junction and the prune
// site, serialize, then undo the move and restore every branch length so
// the next task starts from the identical base state.
func (ev *Evaluator) evalMove(t Task) (string, float64, error) {
	if err := ev.ensureBase(t.BaseNewick); err != nil {
		return "", 0, fmt.Errorf("mlsearch: task %d: %w", t.ID, err)
	}
	mv := tree.SPRMove{P: int(t.MoveP), S: int(t.MoveS), TA: int(t.MoveTA), TB: int(t.MoveTB)}
	undo, err := ev.base.ApplySPR(mv)
	if err != nil {
		return "", 0, fmt.Errorf("mlsearch: task %d: %w", t.ID, err)
	}
	opt := likelihood.OptOptions{
		Passes:  int(t.Passes),
		Centers: []*tree.Node{undo.Mid, undo.Joined.A, undo.Joined.B},
		Radius:  2,
	}
	lnL, optErr := ev.eng.OptimizeBranches(ev.base, opt)
	var nwk string
	if optErr == nil {
		nwk = ev.base.Newick()
	}
	undo.Undo()
	ev.restoreBaseLens()
	// The undo cycle dissolves and recreates internal nodes (same IDs,
	// new objects), so the cached edge list must be re-derived in case a
	// later batch reuses this base (identical Newick string).
	ev.baseEdges = ev.base.Edges()
	if optErr != nil {
		return "", 0, fmt.Errorf("mlsearch: task %d: %w", t.ID, optErr)
	}
	return nwk, lnL, nil
}

// restoreBaseLens resets every base edge to its snapshot length. SetLen
// skips (and does not invalidate) edges already at the right value, so
// only the branches the optimizer actually moved cost cache entries.
func (ev *Evaluator) restoreBaseLens() {
	for _, s := range ev.baseLens {
		a, b := ev.base.Nodes[s.a], ev.base.Nodes[s.b]
		tree.SetLen(a, b, s.l)
	}
}
