package mlsearch

import (
	"fmt"

	"repro/internal/likelihood"
	"repro/internal/tree"
)

// Evaluator executes Tasks against one engine. The serial dispatcher and
// the worker process share it, so serial and parallel runs produce
// bit-identical results for the same tasks.
type Evaluator struct {
	eng  *likelihood.Engine
	taxa []string
}

// NewEvaluator wraps a likelihood engine for task evaluation.
func NewEvaluator(eng *likelihood.Engine, taxa []string) *Evaluator {
	return &Evaluator{eng: eng, taxa: taxa}
}

// Evaluate parses the task's tree, optimizes branch lengths as requested,
// and returns the result. The Ops field reports the work units consumed
// by exactly this evaluation.
func (ev *Evaluator) Evaluate(t Task) (Result, error) {
	tr, err := tree.ParseNewick(t.Newick, ev.taxa)
	if err != nil {
		return Result{}, fmt.Errorf("mlsearch: task %d: %w", t.ID, err)
	}
	opsBefore := ev.eng.Ops()

	opt := likelihood.OptOptions{Passes: int(t.Passes)}
	if t.LocalTaxon >= 0 {
		leaf := tr.LeafByTaxon(int(t.LocalTaxon))
		if leaf == nil {
			return Result{}, fmt.Errorf("mlsearch: task %d: local taxon %d not in tree", t.ID, t.LocalTaxon)
		}
		if leaf.Degree() > 0 {
			opt.Around = leaf.Nbr[0]
			opt.Radius = 2
		}
	}
	lnL, err := ev.eng.OptimizeBranches(tr, opt)
	if err != nil {
		return Result{}, fmt.Errorf("mlsearch: task %d: %w", t.ID, err)
	}
	return Result{
		TaskID: t.ID,
		Round:  t.Round,
		Newick: tr.Newick(),
		LnL:    lnL,
		Ops:    ev.eng.Ops() - opsBefore,
	}, nil
}
