package mlsearch

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/likelihood"
	"repro/internal/tree"
)

// TestFatalEvalError: sentinel-classified evaluation failures are fatal
// even through layers of wrapping; transport-ish errors stay retryable.
func TestFatalEvalError(t *testing.T) {
	fatal := []error{
		likelihood.ErrTreeMismatch,
		likelihood.ErrTaxonOutsideData,
		likelihood.ErrTaxonInTree,
		likelihood.ErrEdgeNotFound,
		fmt.Errorf("mlsearch: worker 3: %w",
			fmt.Errorf("mlsearch: task 7: %w", likelihood.ErrEdgeNotFound)),
	}
	for _, err := range fatal {
		if !FatalEvalError(err) {
			t.Errorf("FatalEvalError(%v) = false, want true", err)
		}
	}
	retryable := []error{
		nil,
		errors.New("connection reset by peer"),
		fmt.Errorf("mlsearch: worker 2 receive: %w", errors.New("EOF")),
	}
	for _, err := range retryable {
		if FatalEvalError(err) {
			t.Errorf("FatalEvalError(%v) = true, want false", err)
		}
	}
}

// TestConfigEngineValidation: Normalize resolves the engine name through
// the likelihood registry — empty maps to the default backend, unknown
// names are rejected up front rather than at first evaluation.
func TestConfigEngineValidation(t *testing.T) {
	base := testConfig(t, 4, 40, 1)
	for _, name := range append([]string{""}, likelihood.Engines()...) {
		cfg := base
		cfg.Engine = name
		norm, err := cfg.Normalize()
		if err != nil {
			t.Fatalf("Normalize(engine=%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = likelihood.DefaultEngine
		}
		if norm.Engine != want {
			t.Errorf("Normalize(engine=%q) resolved to %q, want %q", name, norm.Engine, want)
		}
	}
	cfg := base
	cfg.Engine = "no-such-backend"
	if _, err := cfg.Normalize(); err == nil {
		t.Error("unknown engine name accepted")
	}
}

// TestSerialSearchReferenceEngine runs a small end-to-end search on the
// reference backend and checks it lands on the same topology as the
// cached engine with a log-likelihood inside the differential harness's
// float64 tolerance. This exercises the full Engine surface (evaluation,
// smoothing, insertion scoring) through the search loop rather than the
// harness's synthetic cases.
func TestSerialSearchReferenceEngine(t *testing.T) {
	cfg := testConfig(t, 7, 120, 9)
	cached, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = "reference"
	ref, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ref.BestNewick != cached.BestNewick {
		t.Errorf("reference engine chose a different topology:\n  cached:    %s\n  reference: %s",
			cached.BestNewick, ref.BestNewick)
	}
	diff := ref.LnL - cached.LnL
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-4 && diff > 1e-7*-cached.LnL {
		t.Errorf("lnL diverged: cached %.10f, reference %.10f", cached.LnL, ref.LnL)
	}
}

// TestSerialSearchGradientSmoothing runs the same end-to-end search under
// both full-smoothing modes. Candidate scoring is mode-independent
// (insertion and junction-local optimization always sweep), so the search
// must adopt the identical topology; the final smoothing passes may stop
// at slightly different points on the shared optimum, so the lnL is
// compared at the differential harness's float64 tolerance.
func TestSerialSearchGradientSmoothing(t *testing.T) {
	cfg := testConfig(t, 7, 120, 9)
	sweep, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SmoothMode = likelihood.SmoothGradient
	grad, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := tree.ParseNewick(sweep.BestNewick, cfg.Taxa)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := tree.ParseNewick(grad.BestNewick, cfg.Taxa)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.SameTopology(st, gt) {
		t.Errorf("gradient smoothing chose a different topology:\n  sweep:    %s\n  gradient: %s",
			sweep.BestNewick, grad.BestNewick)
	}
	diff := grad.LnL - sweep.LnL
	if diff < 0 {
		diff = -diff
	}
	if diff > 1e-4 && diff > 1e-7*-sweep.LnL {
		t.Errorf("lnL diverged: sweep %.10f, gradient %.10f", sweep.LnL, grad.LnL)
	}
}
