package mlsearch

import (
	"testing"

	"repro/internal/comm"
)

func newTestWorld(t *testing.T, size int) []comm.Communicator {
	t.Helper()
	world, err := comm.NewLocal(size)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, c := range world {
			c.Close()
		}
	})
	return world
}
