package mlsearch

import (
	"testing"

	"repro/internal/comm"
)

func newTestWorld(t *testing.T, size int) []comm.Communicator {
	t.Helper()
	world, err := comm.NewLocal(size)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, c := range world {
			c.Close()
		}
	})
	return world
}

// runSerial is the tests' shorthand for one search on the Serial
// transport of the unified Run API.
func runSerial(cfg Config) (*SearchResult, error) {
	out, err := Run(cfg, RunOptions{Transport: Serial})
	if err != nil {
		return nil, err
	}
	return out.Results[0], nil
}
