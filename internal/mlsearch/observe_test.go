package mlsearch

import (
	"encoding/binary"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestTaskCodecTraceRoundTrip(t *testing.T) {
	in := Task{
		ID: 9, Round: 4, Newick: "(a,b,c);", LocalTaxon: -1,
		Trace: obs.SpanContext{TraceID: 0xdead, SpanID: 0xbeef},
	}
	out, err := UnmarshalTask(MarshalTask(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", out, in)
	}
	// The zero trace must cost zero wire bytes.
	in.Trace = obs.SpanContext{}
	plain := Task{ID: 9, Round: 4, Newick: "(a,b,c);", LocalTaxon: -1}
	if got, want := len(MarshalTask(in)), len(MarshalTask(plain)); got != want {
		t.Errorf("untraced task costs %d bytes, want %d", got, want)
	}
}

func TestResultCodecTraceRoundTrip(t *testing.T) {
	in := Result{
		TaskID: 9, Round: 4, Newick: "(a,b,c);", LnL: -321.5,
		Ops: 7, CacheHits: 3, CacheMisses: 2, Worker: 5,
		Eval: 1500 * time.Microsecond, NewtonIters: 11,
		Trace: obs.SpanContext{TraceID: 1, SpanID: 2},
	}
	out, err := UnmarshalResult(MarshalResult(in))
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", out, in)
	}
}

// appendExt appends one well-formed extension field (as a newer peer
// would) to a marshaled envelope.
func appendExt(b []byte, tag byte, payload []byte) []byte {
	b = append(b, tag)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(payload)))
	b = append(b, n[:]...)
	return append(b, payload...)
}

func TestCodecToleratesUnknownExtensions(t *testing.T) {
	task := Task{ID: 3, Newick: "(a,b,c);", Trace: obs.SpanContext{TraceID: 7, SpanID: 8}}
	b := appendExt(MarshalTask(task), 0xE0, []byte("future field"))
	got, err := UnmarshalTask(b)
	if err != nil {
		t.Fatalf("unknown task extension rejected: %v", err)
	}
	if got != task {
		t.Errorf("known fields corrupted by unknown extension: %+v", got)
	}

	res := Result{TaskID: 3, Newick: "(a,b,c);", LnL: -1, Eval: time.Millisecond}
	rb := appendExt(MarshalResult(res), 0xE1, nil) // empty payload is well-formed
	gotRes, err := UnmarshalResult(rb)
	if err != nil {
		t.Fatalf("unknown result extension rejected: %v", err)
	}
	if gotRes != res {
		t.Errorf("known fields corrupted: %+v", gotRes)
	}

	ev := MonitorEvent{Kind: monResult, Worker: 2, Round: 5, Info: "task=1 lnl=-3.5", At: 42}
	eb := appendExt(marshalMonitorEvent(ev), 0x7F, []byte{1, 2, 3})
	gotEv, err := unmarshalMonitorEvent(eb)
	if err != nil {
		t.Fatalf("unknown monitor extension rejected: %v", err)
	}
	if gotEv != ev {
		t.Errorf("known fields corrupted: %+v", gotEv)
	}
}

func TestCodecRejectsTruncatedExtensions(t *testing.T) {
	full := appendExt(MarshalTask(Task{ID: 1, Newick: "(a,b);"}), 0xE0, []byte("payload"))
	base := len(full) - len("payload") - 5 // before the appended ext record
	for cut := base + 1; cut < len(full); cut++ {
		if _, err := UnmarshalTask(full[:cut]); err == nil {
			t.Errorf("truncated extension at %d bytes accepted", cut)
		}
	}
	// Same for the monitor event envelope.
	evFull := appendExt(marshalMonitorEvent(MonitorEvent{Kind: monInline}), 0x10, []byte{9})
	for cut := len(evFull) - 5; cut < len(evFull); cut++ {
		if _, err := unmarshalMonitorEvent(evFull[:cut]); err == nil {
			t.Errorf("truncated monitor extension at %d bytes accepted", cut)
		}
	}
}

func TestMonitorEventCodecQuick(t *testing.T) {
	events := []MonitorEvent{
		{Kind: monRoundStart, Round: 1, Info: "tasks=14", At: 100},
		{Kind: monResult, Worker: 3, Round: 2, Info: "task=7 lnl=-55.25", At: 200},
		{Kind: monWorkerJoined, Worker: 9, At: 300},
	}
	for _, in := range events {
		out, err := unmarshalMonitorEvent(marshalMonitorEvent(in))
		if err != nil {
			t.Fatalf("%+v: %v", in, err)
		}
		if out != in {
			t.Errorf("round trip mismatch:\n got %+v\nwant %+v", out, in)
		}
	}
}

func TestMonitorEventTyped(t *testing.T) {
	ev := MonitorEvent{Kind: monResult, Worker: 3, Round: 2, Info: "task=7 lnl=-55.25", At: 200}
	got, ok := ev.typed().(TaskCompleted)
	if !ok {
		t.Fatalf("typed() = %T, want TaskCompleted", ev.typed())
	}
	want := TaskCompleted{Worker: 3, Round: 2, TaskID: 7, LnL: -55.25}
	if got != want {
		t.Errorf("typed() = %+v, want %+v", got, want)
	}
	if (MonitorEvent{Kind: 0xFE}).typed() != nil {
		t.Error("unknown kind must convert to nil")
	}
}

// TestRunObserverLocalRun is the subsystem's acceptance check: attach an
// observer to an in-process parallel run and require the /status
// snapshot's per-worker task counts to sum to the foreman's dispatch
// total, with metrics and bus events agreeing.
func TestRunObserverLocalRun(t *testing.T) {
	cfg := testConfig(t, 7, 150, 19)
	o := NewRunObserver(obs.NewRegistry(), obs.NewBus())
	var busCompleted int
	unsub := obs.SubscribeTo(o.Bus(), func(TaskCompleted) { busCompleted++ })
	defer unsub()

	out, err := Run(cfg, RunOptions{Transport: Local, Workers: 3, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	res := out.Results[0]

	snap := o.Snapshot()
	if snap.Dispatched != res.TotalTasks {
		t.Errorf("snapshot dispatched %d != search total tasks %d", snap.Dispatched, res.TotalTasks)
	}
	if snap.Completed != snap.Dispatched {
		t.Errorf("completed %d != dispatched %d (no faults in this run)", snap.Completed, snap.Dispatched)
	}
	sum := 0
	for _, w := range snap.Workers {
		sum += w.Tasks
	}
	if sum != snap.Dispatched {
		t.Errorf("per-worker tasks sum %d != dispatched %d", sum, snap.Dispatched)
	}
	if busCompleted != snap.Completed {
		t.Errorf("bus saw %d completions, snapshot %d", busCompleted, snap.Completed)
	}
	if snap.Round == 0 || snap.BestLnL >= 0 {
		t.Errorf("snapshot missing round/lnl: round=%d lnl=%g", snap.Round, snap.BestLnL)
	}
	if len(snap.Recent) == 0 {
		t.Error("no trace spans recorded")
	} else {
		rec := snap.Recent[len(snap.Recent)-1]
		if rec.Trace == "" || rec.PhasesMs[obs.PhaseEval] <= 0 {
			t.Errorf("span lacks trace/eval phase: %+v", rec)
		}
	}

	// The snapshot serves over HTTP as /status and the registry as
	// /metrics.
	srv, err := obs.NewStatusServer(obs.StatusOptions{
		Addr:     "127.0.0.1:0",
		Registry: o.Registry(),
		Snapshot: func() any { return o.Snapshot() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr().String() + "/status")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var viaHTTP RunSnapshot
	if err := json.Unmarshal(body, &viaHTTP); err != nil {
		t.Fatalf("/status not a RunSnapshot: %v\n%s", err, body)
	}
	if viaHTTP.Dispatched != snap.Dispatched {
		t.Errorf("/status dispatched %d != %d", viaHTTP.Dispatched, snap.Dispatched)
	}

	mresp, err := http.Get("http://" + srv.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"fdml_dispatch_total", "fdml_results_total", "fdml_task_phase_seconds_bucket"} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func TestWorkerObserver(t *testing.T) {
	o := NewWorkerObserver(obs.NewRegistry())
	o.Attached(4)
	o.Served(Result{Ops: 10, CacheHits: 2, CacheMisses: 1, Eval: 2 * time.Millisecond, NewtonIters: 5})
	o.Served(Result{Ops: 5, Eval: time.Millisecond})
	o.Attached(6) // reconnect under a fresh rank
	snap := o.Snapshot()
	if snap.Rank != 6 || snap.Tasks != 2 || snap.Reconnects != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.Ops != 15 || snap.CacheHits != 2 || snap.NewtonIters != 5 {
		t.Errorf("counters wrong: %+v", snap)
	}
	if snap.EvalMs < 2.9 {
		t.Errorf("eval ms = %v, want ~3", snap.EvalMs)
	}

	var nilObs *WorkerObserver
	nilObs.Attached(1)
	nilObs.Served(Result{})
	if nilObs.Snapshot() != (WorkerSnapshot{}) {
		t.Error("nil WorkerObserver must be inert")
	}
}

func TestRunObserverNilIsInert(t *testing.T) {
	var o *RunObserver
	o.RoundStart(0, 1, 2)
	o.Dispatched(1, 0, 1, 1, time.Millisecond)
	o.Completed(1, Result{}, time.Millisecond)
	o.TimedOut(1, 0, 1, 1)
	o.Reinstated(1, 1)
	o.Joined(1)
	o.Left(1)
	o.Inline(0, 1, 1, -1)
	o.RoundDone(0, 1, 0, -1)
	o.Depths(0, 0, 0, 0, 0)
	if o.Bus() != nil || o.Registry() != nil || o.Spans() != nil {
		t.Error("nil observer accessors must return nil")
	}
	if s := o.Snapshot(); s.Dispatched != 0 || s.Workers != nil {
		t.Error("nil observer snapshot must be zero")
	}
}
