package mlsearch

import (
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/comm"
)

// Distributed (TCP) runtime. One operating system process hosts rank 0
// (the TCP router and the master role) plus the foreman and optional
// monitor as loopback-connected ranks; worker processes anywhere on the
// network join with cmd/fdworker. The division of labour matches the
// paper exactly — master, foreman, monitor, and a variable number of
// workers (§2.2) — while the transport is this reproduction's custom
// message-passing substrate (no MPI exists for Go).

// TCPMasterOptions configure RunTCPMaster.
type TCPMasterOptions struct {
	// Addr is the listen address (e.g. ":7946" or "127.0.0.1:0").
	Addr string
	// Workers is the number of worker processes expected to join.
	Workers int
	// WithMonitor dedicates rank 2 to instrumentation.
	WithMonitor bool
	// Jumbles is the number of random orderings to run.
	Jumbles int
	// Foreman tunes fault tolerance.
	Foreman ForemanOptions
	// MonitorOut receives monitor output (nil discards).
	MonitorOut io.Writer
	// Bundle is the dataset shipped to joining workers.
	Bundle DataBundle
	// Progress receives per-round events.
	Progress func(int, ProgressEvent)
	// OnListen, when non-nil, is invoked with the bound address before
	// waiting for workers (useful with ":0" and for tests).
	OnListen func(net.Addr)
}

// WorkerRanks returns the rank interval workers must join with for a
// world of the given options: [first, first+Workers).
func (o TCPMasterOptions) WorkerRanks() (first, size int) {
	first = 2
	if o.WithMonitor {
		first = 3
	}
	return first, first + o.Workers
}

// RunTCPMaster hosts the distributed run and returns each jumble's
// result. It blocks until all expected workers join, runs the searches,
// and shuts the world down.
func RunTCPMaster(cfg Config, opt TCPMasterOptions) (*LocalRunOutcome, error) {
	if opt.Workers < 1 {
		return nil, fmt.Errorf("mlsearch: %d workers expected, need >= 1", opt.Workers)
	}
	if opt.Jumbles < 1 {
		opt.Jumbles = 1
	}
	norm, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	_, size := opt.WorkerRanks()
	lay, err := DefaultLayout(size, opt.WithMonitor)
	if err != nil {
		return nil, err
	}

	router, err := comm.NewTCPRouter(opt.Addr, size)
	if err != nil {
		return nil, err
	}
	defer router.Close()
	addr, _ := comm.ListenAddr(router)
	if opt.OnListen != nil && addr != nil {
		opt.OnListen(addr)
	}

	// Loopback ranks for the foreman and monitor roles.
	foremanComm, err := comm.DialTCP(addr.String(), lay.Foreman, size)
	if err != nil {
		return nil, fmt.Errorf("mlsearch: foreman loopback: %w", err)
	}
	defer foremanComm.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunForeman(foremanComm, lay, opt.Foreman); err != nil {
			errs <- fmt.Errorf("foreman: %w", err)
		}
	}()

	outcome := &LocalRunOutcome{}
	if opt.WithMonitor {
		monitorComm, err := comm.DialTCP(addr.String(), lay.Monitor, size)
		if err != nil {
			return nil, fmt.Errorf("mlsearch: monitor loopback: %w", err)
		}
		defer monitorComm.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats, err := RunMonitor(monitorComm, opt.MonitorOut, false)
			if err != nil {
				errs <- fmt.Errorf("monitor: %w", err)
				return
			}
			outcome.Monitor = stats
		}()
	}

	// Wait for every worker to join and ship the dataset.
	if err := ServeBundles(router, opt.Bundle, opt.Workers); err != nil {
		return nil, err
	}

	results, masterErr := RunMaster(router, lay, norm, opt.Jumbles, opt.Progress)
	wg.Wait()
	close(errs)
	if masterErr != nil {
		return nil, masterErr
	}
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	outcome.Results = results
	return outcome, nil
}

// RunTCPWorker joins a distributed run as one worker rank and serves
// until shutdown.
func RunTCPWorker(addr string, rank, size int, withMonitor bool, hooks WorkerHooks) error {
	lay, err := DefaultLayout(size, withMonitor)
	if err != nil {
		return err
	}
	ok := false
	for _, w := range lay.Workers {
		if w == rank {
			ok = true
		}
	}
	if !ok {
		return fmt.Errorf("mlsearch: rank %d is not a worker rank in a world of %d", rank, size)
	}
	c, err := comm.DialTCP(addr, rank, size)
	if err != nil {
		return err
	}
	defer c.Close()
	return JoinAndServe(c, lay, hooks)
}
