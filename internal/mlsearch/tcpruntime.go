package mlsearch

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/likelihood"
)

// Distributed (TCP) runtime with elastic membership. One operating
// system process hosts rank 0 (the TCP router and the master role) plus
// the foreman and optional monitor as loopback-connected ranks; worker
// processes anywhere on the network join with cmd/fdworker, carrying no
// pre-assigned identity: the join handshake assigns each a fresh rank
// and delivers the data bundle. Workers may join or leave at any point,
// including mid-round — the paper's fault-tolerant dispatch (§2.2) is
// what makes this safe, and it is the property the planned
// Condor/screensaver workers (§5) would rely on.

// runTCPTransport hosts the distributed run for Run.
func runTCPTransport(cfg Config, opt RunOptions) (*RunOutcome, error) {
	if opt.Workers < 0 {
		return nil, fmt.Errorf("mlsearch: negative worker barrier %d", opt.Workers)
	}
	if len(opt.Bundle.PhylipText) == 0 {
		return nil, fmt.Errorf("mlsearch: tcp run needs a data bundle for joining workers")
	}
	norm, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	// Workers evaluate at the run's precision and with the run's engine
	// backend unless the bundle already requests them explicitly.
	if opt.Bundle.Precision == likelihood.Float64 {
		opt.Bundle.Precision = norm.Precision
	}
	if opt.Bundle.Engine == "" {
		opt.Bundle.Engine = norm.Engine
	}
	lay := ElasticLayout(opt.WithMonitor)

	// The foreman always gets an inline evaluator: a TCP run must
	// complete even if every worker disappears (degradation ladder).
	foremanOpt := opt.Foreman
	if foremanOpt.Inline == nil {
		inline, err := newInlineEvaluator(norm)
		if err != nil {
			return nil, err
		}
		foremanOpt.Inline = inline
	}
	if foremanOpt.Obs == nil {
		foremanOpt.Obs = opt.Obs
	}

	// Join barrier: the master waits for opt.Workers joins before
	// starting the search (0 = start immediately).
	var (
		joinMu    sync.Mutex
		joined    int
		joinCond  = sync.NewCond(&joinMu)
		barrierOK = opt.Workers == 0
	)
	onJoin := func(rank int) {
		joinMu.Lock()
		joined++
		if joined >= opt.Workers {
			barrierOK = true
		}
		joinCond.Broadcast()
		joinMu.Unlock()
		if opt.OnMember != nil {
			opt.OnMember(rank, true)
		}
	}
	onLeave := func(rank int) {
		if opt.OnMember != nil {
			opt.OnMember(rank, false)
		}
	}

	router, err := comm.NewElasticTCPRouter(comm.RouterConfig{
		Addr:         opt.Addr,
		FirstDynamic: lay.FirstDynamicRank(),
		Welcome:      marshalWelcome(lay, opt.Bundle),
		NotifyRank:   lay.Foreman,
		OnJoin:       onJoin,
		OnLeave:      onLeave,
		Obs:          foremanOpt.Obs.Registry(),
	})
	if err != nil {
		return nil, err
	}
	defer router.Close()
	addr, _ := comm.ListenAddr(router)

	// Loopback ranks for the role processes. The monitor attaches before
	// the foreman: the foreman's attach flushes any join notifications
	// that predate it, and handling those emits monitor events that
	// would otherwise be dropped. Workers that dial even earlier (e.g.
	// reconnecting ones racing a master restart) are queued by the
	// router until the foreman is here.
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	outcome := &RunOutcome{}
	if opt.WithMonitor {
		monitorComm, err := comm.DialTCPRole(addr.String(), lay.Monitor)
		if err != nil {
			return nil, fmt.Errorf("mlsearch: monitor loopback: %w", err)
		}
		defer monitorComm.Close()
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats, err := RunMonitor(monitorComm, opt.MonitorOut, false)
			if err != nil {
				errs <- fmt.Errorf("monitor: %w", err)
				return
			}
			outcome.Monitor = stats
		}()
	}

	foremanComm, err := comm.DialTCPRole(addr.String(), lay.Foreman)
	if err != nil {
		return nil, fmt.Errorf("mlsearch: foreman loopback: %w", err)
	}
	defer foremanComm.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := RunForeman(foremanComm, lay, foremanOpt); err != nil {
			errs <- fmt.Errorf("foreman: %w", err)
		}
	}()

	if opt.OnListen != nil && addr != nil {
		opt.OnListen(addr)
	}

	// Wait out the join barrier.
	joinMu.Lock()
	for !barrierOK {
		joinCond.Wait()
	}
	joinMu.Unlock()

	results, masterErr := runMasterSide(router, lay, norm, opt)
	wg.Wait()
	close(errs)
	if masterErr != nil {
		return nil, masterErr
	}
	for err := range errs {
		if err != nil {
			return nil, err
		}
	}
	outcome.Results = results
	return outcome, nil
}

// ReconnectPolicy governs a worker's jittered exponential backoff when
// its connection to the master drops (or cannot be established yet).
// The zero value reconnects forever with the defaults — the right
// behaviour for a volunteer worker that should survive master restarts.
type ReconnectPolicy struct {
	// Disabled turns reconnection off: the worker serves one connection
	// and returns.
	Disabled bool
	// Base is the first backoff delay. Default 250ms.
	Base time.Duration
	// Cap bounds the backoff. Default 15s.
	Cap time.Duration
	// MaxAttempts bounds consecutive failed connection attempts; 0
	// retries forever. The counter resets after a successful join.
	MaxAttempts int
}

func (p ReconnectPolicy) withDefaults() ReconnectPolicy {
	if p.Base <= 0 {
		p.Base = 250 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 15 * time.Second
	}
	return p
}

// backoff returns the jittered delay before attempt n (0-based):
// uniformly random in (0, min(Cap, Base*2^n)], the "full jitter"
// scheme that avoids reconnection stampedes after a master restart.
func (p ReconnectPolicy) backoff(n int, rng *rand.Rand) time.Duration {
	d := p.Base
	for i := 0; i < n && d < p.Cap; i++ {
		d *= 2
	}
	if d > p.Cap {
		d = p.Cap
	}
	return time.Duration(1 + rng.Int63n(int64(d)))
}

// ParseReconnectPolicy parses the CLI form of a policy: "on" (defaults),
// "off", or comma-separated settings like "base=500ms,cap=30s,max=10".
func ParseReconnectPolicy(s string) (ReconnectPolicy, error) {
	var p ReconnectPolicy
	switch strings.TrimSpace(s) {
	case "", "on":
		return p, nil
	case "off":
		p.Disabled = true
		return p, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return p, fmt.Errorf("mlsearch: bad reconnect setting %q (want key=value)", part)
		}
		var err error
		switch key {
		case "base":
			p.Base, err = time.ParseDuration(val)
		case "cap":
			p.Cap, err = time.ParseDuration(val)
		case "max":
			_, err = fmt.Sscanf(val, "%d", &p.MaxAttempts)
		default:
			return p, fmt.Errorf("mlsearch: unknown reconnect setting %q", key)
		}
		if err != nil {
			return p, fmt.Errorf("mlsearch: bad reconnect %s: %w", key, err)
		}
	}
	return p, nil
}

// ServeElastic is the distributed worker's entry point: join the master
// at addr with no pre-assigned identity, receive a rank and the data
// bundle in the handshake, and serve tasks until shutdown. When the
// connection drops — a network fault or a master restart — the worker
// reconnects under the policy's jittered exponential backoff and is
// assigned a fresh rank, resuming from the master's checkpoint state.
func ServeElastic(addr string, hooks WorkerHooks, policy ReconnectPolicy) error {
	policy = policy.withDefaults()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	failures := 0
	for {
		c, welcome, err := comm.JoinTCP(addr)
		if err == nil {
			failures = 0
			err = serveConnection(c, welcome, hooks)
			c.Close()
			if err == nil {
				return nil // clean shutdown from the foreman
			}
			if FatalEvalError(err) {
				// Deterministic evaluation failure: the same task would
				// fail identically after a rejoin, so reconnecting only
				// loops. Surface it instead.
				return err
			}
		}
		if policy.Disabled {
			return err
		}
		failures++
		if policy.MaxAttempts > 0 && failures >= policy.MaxAttempts {
			return fmt.Errorf("mlsearch: giving up after %d attempts: %w", failures, err)
		}
		time.Sleep(policy.backoff(failures-1, rng))
	}
}

// serveConnection runs one joined worker session to completion. A nil
// return means the foreman sent shutdown; any error means the session
// ended abnormally (usually a dropped connection) and the caller may
// reconnect.
func serveConnection(c comm.Communicator, welcome []byte, hooks WorkerHooks) error {
	lay, bundle, err := unmarshalWelcome(welcome)
	if err != nil {
		return err
	}
	m, pat, taxa, err := bundle.Build()
	if err != nil {
		return err
	}
	if !hooks.PrecisionSet {
		// The master's bundle chooses the precision unless this worker
		// was started with an explicit -precision override.
		hooks.Precision = bundle.Precision
	}
	if !hooks.EngineSet {
		// Likewise the engine backend: workers adopt the master's choice
		// unless started with an explicit -engine override.
		hooks.Engine = bundle.Engine
	}
	if !hooks.SmoothModeSet {
		// And the smoothing algorithm, overridable via -smooth-mode.
		hooks.SmoothMode = bundle.SmoothMode
	}
	if hooks.OnAttach != nil {
		hooks.OnAttach(c)
	}
	return RunWorker(c, lay, m, pat, taxa, hooks)
}
