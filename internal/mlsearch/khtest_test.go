package mlsearch

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/tree"
)

func TestKishinoHasegawaRanksAndTests(t *testing.T) {
	cfg := testConfig(t, 8, 600, 61)
	res, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	best, err := tree.ParseNewick(res.BestNewick, cfg.Taxa)
	if err != nil {
		t.Fatal(err)
	}
	// A caterpillar over the same taxa: almost surely much worse on 600
	// informative sites.
	n := cfg.Taxa
	cat := fmt.Sprintf("(%s,%s,(%s,(%s,(%s,(%s,(%s,%s))))));",
		n[0], n[1], n[2], n[3], n[4], n[5], n[6], n[7])
	worse, err := tree.ParseNewick(cat, cfg.Taxa)
	if err != nil {
		t.Fatal(err)
	}

	out, err := KishinoHasegawa(cfg, []*tree.Tree{worse, best})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("%d results", len(out))
	}
	top := out[0]
	if top.Diff != 0 || top.SD != 0 || top.SignificantlyWorse {
		t.Errorf("best tree KH fields should be zero: %+v", top)
	}
	second := out[1]
	if second.Diff >= 0 {
		t.Errorf("second tree diff %g, want negative", second.Diff)
	}
	if second.SD <= 0 {
		t.Errorf("second tree SD %g, want positive", second.SD)
	}
	if math.IsNaN(second.SD) || math.IsInf(second.SD, 0) {
		t.Fatalf("SD = %g", second.SD)
	}
	// With a deficit this large the KH test should call it.
	if second.Diff < -50 && !second.SignificantlyWorse {
		t.Errorf("deficit %.1f with SD %.1f not flagged significant", second.Diff, second.SD)
	}
}

func TestKishinoHasegawaNearTies(t *testing.T) {
	// Two NNI-adjacent trees on weak data should usually NOT be called
	// significantly different.
	cfg := testConfig(t, 6, 60, 63)
	res, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	best, err := tree.ParseNewick(res.BestNewick, cfg.Taxa)
	if err != nil {
		t.Fatal(err)
	}
	var neighbor *tree.Tree
	_, err = best.Clone().Rearrangements(1, func(view *tree.Tree, c tree.RearrangeCandidate) bool {
		nb, perr := tree.ParseNewick(view.Newick(), cfg.Taxa)
		if perr == nil {
			neighbor = nb
		}
		return false // first neighbor only
	})
	if err != nil || neighbor == nil {
		t.Fatal("no NNI neighbor")
	}
	out, err := KishinoHasegawa(cfg, []*tree.Tree{best, neighbor})
	if err != nil {
		t.Fatal(err)
	}
	// The difference between adjacent topologies on 60 sites is tiny;
	// the test must not scream significance for the runner-up unless the
	// deficit really exceeds 1.96 SD (consistency check of the flag).
	second := out[1]
	wantFlag := second.Diff < -1.96*second.SD
	if second.SignificantlyWorse != wantFlag {
		t.Errorf("flag %v inconsistent with diff %g sd %g", second.SignificantlyWorse, second.Diff, second.SD)
	}
}

func TestKishinoHasegawaErrors(t *testing.T) {
	cfg := testConfig(t, 6, 80, 65)
	if _, err := KishinoHasegawa(cfg, nil); err == nil {
		t.Error("empty tree list accepted")
	}
	names := cfg.Taxa[:4]
	small, _ := tree.ParseNewick(fmt.Sprintf("((%s,%s),%s,%s);", names[0], names[1], names[2], names[3]), cfg.Taxa)
	if _, err := KishinoHasegawa(cfg, []*tree.Tree{small}); err == nil {
		t.Error("incomplete tree accepted")
	}
}

// TestWorkerChurnPermanentDeath: a worker that dies for good mid-run
// (stops replying forever) must not prevent completion, and the answer
// still matches serial — the volunteer-computing scenario of §2.2/§5.
func TestWorkerChurnPermanentDeath(t *testing.T) {
	cfg := testConfig(t, 7, 150, 67)
	serial, err := runSerial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	hooks := map[int]WorkerHooks{
		3: {BeforeReply: func(task Task, res Result) bool {
			count++
			return count <= 5 // dies permanently after 5 replies
		}},
	}
	out, err := Run(cfg, RunOptions{
		Transport:   Local,
		Workers:     2,
		WorkerHooks: hooks,
		Foreman:     ForemanOptions{TaskTimeout: 100_000_000, Tick: 10_000_000}, // 100ms / 10ms
	})
	if err != nil {
		t.Fatal(err)
	}
	res := out.Results[0]
	if res.BestNewick != serial.BestNewick || res.LnL != serial.LnL {
		t.Error("run with a permanently dead worker diverged from serial")
	}
}
