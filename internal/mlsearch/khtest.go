package mlsearch

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/likelihood"
	"repro/internal/tree"
)

// The Kishino-Hasegawa test, as printed by DNAml-family programs next to
// user-tree rankings: for each tree, the per-site log-likelihood
// differences against the best tree estimate the standard deviation of
// the total difference; a tree is significantly worse when its deficit
// exceeds 1.96 standard deviations (5% level).

// KHResult is one tree's Kishino-Hasegawa comparison against the best.
type KHResult struct {
	// Index is the tree's position in the input.
	Index int
	// Newick is the tree with optimized branch lengths.
	Newick string
	// LnL is the optimized log-likelihood.
	LnL float64
	// Diff is LnL minus the best tree's LnL (0 for the best).
	Diff float64
	// SD is the KH standard deviation of Diff (0 for the best).
	SD float64
	// SignificantlyWorse reports Diff < -1.96*SD.
	SignificantlyWorse bool
}

// KishinoHasegawa optimizes each tree's branch lengths and compares all
// trees to the best by the KH test. Results come back best-first. The
// evaluation is in-process (per-site vectors are needed, which the
// parallel protocol does not carry).
func KishinoHasegawa(cfg Config, trees []*tree.Tree) ([]KHResult, error) {
	norm, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	if len(trees) == 0 {
		return nil, fmt.Errorf("mlsearch: no trees to compare")
	}
	eng, err := likelihood.NewEngine(norm.Engine, norm.Model, norm.Patterns, likelihood.EngineOptions{
		Precision: norm.Precision,
		Threads:   norm.Threads,
	})
	if err != nil {
		return nil, err
	}
	defer likelihood.CloseEngine(eng)

	type scored struct {
		idx    int
		newick string
		lnL    float64
		perPat []float64
	}
	var all []scored
	for i, t := range trees {
		cp := t.Clone()
		if err := cp.Validate(true); err != nil {
			return nil, fmt.Errorf("mlsearch: tree %d: %w", i+1, err)
		}
		if got := cp.NumLeaves(); got != len(norm.Taxa) {
			return nil, fmt.Errorf("mlsearch: tree %d covers %d of %d taxa", i+1, got, len(norm.Taxa))
		}
		lnL, err := eng.OptimizeBranches(cp, likelihood.OptOptions{Passes: norm.FullSmoothPasses, Mode: norm.SmoothMode})
		if err != nil {
			return nil, fmt.Errorf("mlsearch: tree %d: %w", i+1, err)
		}
		perPat, err := eng.SiteLogLikelihoods(cp)
		if err != nil {
			return nil, fmt.Errorf("mlsearch: tree %d: %w", i+1, err)
		}
		// The engine owns the returned slice; copy to retain per tree.
		all = append(all, scored{idx: i, newick: cp.Newick(), lnL: lnL, perPat: append([]float64(nil), perPat...)})
	}

	bestIdx := 0
	for i := range all {
		if all[i].lnL > all[bestIdx].lnL {
			bestIdx = i
		}
	}
	best := all[bestIdx]
	weights := norm.Patterns.Weights
	totalW := norm.Patterns.TotalWeight()

	out := make([]KHResult, len(all))
	for i, s := range all {
		res := KHResult{Index: s.idx, Newick: s.newick, LnL: s.lnL, Diff: s.lnL - best.lnL}
		if i != bestIdx && totalW > 1 {
			// Weighted per-site differences d_p = l_tree,p - l_best,p.
			meanDiff := res.Diff / totalW
			variance := 0.0
			for p := range weights {
				d := s.perPat[p] - best.perPat[p]
				dev := d - meanDiff
				variance += weights[p] * dev * dev
			}
			// SD of the summed difference (Kishino & Hasegawa 1989).
			res.SD = math.Sqrt(totalW / (totalW - 1) * variance)
			res.SignificantlyWorse = res.Diff < -1.96*res.SD
		}
		out[i] = res
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LnL != out[j].LnL {
			return out[i].LnL > out[j].LnL
		}
		return out[i].Index < out[j].Index
	})
	return out, nil
}
