package mlsearch

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/tree"
)

// Checkpointing: fastDNAml writes restart files so multi-day analyses
// survive machine failures. A checkpoint captures the search position
// after a completed taxon addition (or the final phase): the taxon order,
// how many of them are in the tree, and the current best tree.

// Checkpoint phases.
const (
	// PhaseAdding means taxa Order[:NextIndex] are in the tree and
	// Order[NextIndex] is next to insert.
	PhaseAdding = "adding"
	// PhaseFinal means every taxon is in the tree; the final
	// rearrangement pass is still to run.
	PhaseFinal = "final"
	// PhaseDone means the search finished.
	PhaseDone = "done"
)

// Checkpoint is a resumable search position.
type Checkpoint struct {
	// Seed is the (normalized) seed of the ordering.
	Seed int64
	// Jumble is the ordering's index in a multi-jumble run.
	Jumble int
	// Order is the full taxon insertion order.
	Order []int
	// NextIndex is the position in Order of the next taxon to insert
	// (== len(Order) when all are in).
	NextIndex int
	// Phase is PhaseAdding, PhaseFinal, or PhaseDone.
	Phase string
	// Newick is the current best tree.
	Newick string
	// LnL is the current best log-likelihood.
	LnL float64
}

// Validate checks internal consistency against a taxon count.
func (cp Checkpoint) Validate(numTaxa int) error {
	if len(cp.Order) != numTaxa {
		return fmt.Errorf("mlsearch: checkpoint order covers %d of %d taxa", len(cp.Order), numTaxa)
	}
	seen := make([]bool, numTaxa)
	for _, t := range cp.Order {
		if t < 0 || t >= numTaxa || seen[t] {
			return fmt.Errorf("mlsearch: checkpoint order is not a permutation")
		}
		seen[t] = true
	}
	switch cp.Phase {
	case PhaseAdding:
		if cp.NextIndex < 3 || cp.NextIndex > len(cp.Order) {
			return fmt.Errorf("mlsearch: checkpoint next index %d out of range", cp.NextIndex)
		}
	case PhaseFinal, PhaseDone:
		if cp.NextIndex != len(cp.Order) {
			return fmt.Errorf("mlsearch: %s checkpoint with next index %d", cp.Phase, cp.NextIndex)
		}
	default:
		return fmt.Errorf("mlsearch: unknown checkpoint phase %q", cp.Phase)
	}
	if cp.Newick == "" {
		return fmt.Errorf("mlsearch: checkpoint without a tree")
	}
	return nil
}

// WriteCheckpoint writes the human-readable checkpoint format:
//
//	fastdnaml-checkpoint v1
//	seed <n>
//	jumble <n>
//	phase adding|final|done
//	next <n>
//	order <i0>,<i1>,...
//	lnl <float>
//	tree <newick>
func WriteCheckpoint(w io.Writer, cp Checkpoint) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "fastdnaml-checkpoint v1")
	if err := writeCheckpointBody(bw, cp); err != nil {
		return err
	}
	return bw.Flush()
}

// writeCheckpointBody writes the key-value lines shared by the
// standalone checkpoint file and the manifest's per-jumble blocks.
func writeCheckpointBody(bw *bufio.Writer, cp Checkpoint) error {
	fmt.Fprintf(bw, "seed %d\n", cp.Seed)
	fmt.Fprintf(bw, "jumble %d\n", cp.Jumble)
	fmt.Fprintf(bw, "phase %s\n", cp.Phase)
	fmt.Fprintf(bw, "next %d\n", cp.NextIndex)
	parts := make([]string, len(cp.Order))
	for i, t := range cp.Order {
		parts[i] = strconv.Itoa(t)
	}
	fmt.Fprintf(bw, "order %s\n", strings.Join(parts, ","))
	fmt.Fprintf(bw, "lnl %s\n", strconv.FormatFloat(cp.LnL, 'g', 17, 64))
	_, err := fmt.Fprintf(bw, "tree %s\n", cp.Newick)
	return err
}

// checkpointKeys are the required keys, in written order. A file missing
// any of them (truncated write, manual edit) is rejected at parse time
// rather than resumed from a half-parsed position.
var checkpointKeys = []string{"seed", "jumble", "phase", "next", "order", "lnl", "tree"}

// checkpointParser accumulates key-value lines into a Checkpoint. It is
// strict: duplicate keys fail immediately (last-write-wins would silently
// mask a corrupted file) and finish() names any missing required key.
// The manifest reader shares it for the per-jumble blocks.
type checkpointParser struct {
	cp   Checkpoint
	seen map[string]bool
}

func newCheckpointParser() *checkpointParser {
	return &checkpointParser{seen: map[string]bool{}}
}

func (p *checkpointParser) line(line string) error {
	key, val, ok := strings.Cut(line, " ")
	if !ok {
		return fmt.Errorf("mlsearch: bad checkpoint line %q", line)
	}
	if p.seen[key] {
		return fmt.Errorf("mlsearch: duplicate checkpoint key %q", key)
	}
	var err error
	switch key {
	case "seed":
		p.cp.Seed, err = strconv.ParseInt(val, 10, 64)
	case "jumble":
		p.cp.Jumble, err = strconv.Atoi(val)
	case "phase":
		p.cp.Phase = val
	case "next":
		p.cp.NextIndex, err = strconv.Atoi(val)
	case "order":
		for _, f := range strings.Split(val, ",") {
			v, cerr := strconv.Atoi(strings.TrimSpace(f))
			if cerr != nil {
				return fmt.Errorf("mlsearch: bad checkpoint order: %w", cerr)
			}
			p.cp.Order = append(p.cp.Order, v)
		}
	case "tree":
		p.cp.Newick = val
	case "lnl":
		p.cp.LnL, err = strconv.ParseFloat(val, 64)
	default:
		return fmt.Errorf("mlsearch: unknown checkpoint key %q", key)
	}
	if err != nil {
		return fmt.Errorf("mlsearch: bad checkpoint %s: %w", key, err)
	}
	p.seen[key] = true
	return nil
}

func (p *checkpointParser) finish() (Checkpoint, error) {
	for _, key := range checkpointKeys {
		if !p.seen[key] {
			return p.cp, fmt.Errorf("mlsearch: checkpoint missing required key %q", key)
		}
	}
	return p.cp, nil
}

// ReadCheckpoint parses a checkpoint file. It rejects duplicate and
// missing keys, naming the offending key.
func ReadCheckpoint(r io.Reader) (Checkpoint, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != "fastdnaml-checkpoint v1" {
		return Checkpoint{}, fmt.Errorf("mlsearch: not a fastdnaml checkpoint")
	}
	p := newCheckpointParser()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := p.line(line); err != nil {
			return p.cp, err
		}
	}
	if err := sc.Err(); err != nil {
		return p.cp, err
	}
	return p.finish()
}

// Resume continues a search from a checkpoint. The configuration must
// describe the same data set; the checkpoint's order and tree take
// precedence over the seed-derived order.
func (s *Search) Resume(cp Checkpoint) (*SearchResult, error) {
	if err := cp.Validate(len(s.cfg.Taxa)); err != nil {
		return nil, err
	}
	tr, err := tree.ParseNewick(cp.Newick, s.cfg.Taxa)
	if err != nil {
		return nil, fmt.Errorf("mlsearch: checkpoint tree: %w", err)
	}
	if err := tr.Validate(true); err != nil {
		return nil, fmt.Errorf("mlsearch: checkpoint tree: %w", err)
	}
	// The tree must contain exactly the first NextIndex taxa of the order.
	inTree := tr.TaxaInTree()
	if len(inTree) != cp.NextIndex {
		return nil, fmt.Errorf("mlsearch: checkpoint tree has %d taxa, order position says %d", len(inTree), cp.NextIndex)
	}
	want := append([]int(nil), cp.Order[:cp.NextIndex]...)
	sort.Ints(want)
	for i := range want {
		if want[i] != inTree[i] {
			return nil, fmt.Errorf("mlsearch: checkpoint tree does not match the order prefix")
		}
	}
	if cp.Phase == PhaseDone {
		return &SearchResult{
			BestNewick: tr.Newick(),
			LnL:        cp.LnL,
			Order:      cp.Order,
			Seed:       cp.Seed,
		}, nil
	}
	return s.run(cp.Order, tr, cp.LnL, cp.NextIndex, cp.Phase == PhaseFinal)
}
