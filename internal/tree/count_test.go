package tree

import (
	"math/big"
	"strings"
	"testing"
	"testing/quick"
)

func TestNumTopologiesSmall(t *testing.T) {
	want := map[int]int64{
		1: 1, 2: 1, 3: 1,
		4: 3, 5: 15, 6: 105, 7: 945, 8: 10395,
	}
	for n, w := range want {
		got, err := NumTopologies(n)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(big.NewInt(w)) != 0 {
			t.Errorf("NumTopologies(%d) = %s, want %d", n, got, w)
		}
	}
	if _, err := NumTopologies(0); err == nil {
		t.Error("n=0 should fail")
	}
}

// TestNumTopologiesPaperValues reproduces the paper's §1.1 figures:
// 2.8e74 (50 taxa), 1.7e182 (100), 4.2e301 (150).
func TestNumTopologiesPaperValues(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{
		{50, "2.8 x 10^74"},
		{100, "1.7 x 10^182"},
		{150, "4.2 x 10^301"},
	}
	for _, c := range cases {
		got, err := FormatTopologyCount(c.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("FormatTopologyCount(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

// TestNumTopologiesRecurrence: adding the (n+1)-th taxon multiplies the
// count by the number of insertion edges, 2(n+1)-5 = 2n-3.
func TestNumTopologiesRecurrence(t *testing.T) {
	f := func(raw uint8) bool {
		n := 3 + int(raw%40)
		a, err1 := NumTopologies(n)
		b, err2 := NumTopologies(n + 1)
		if err1 != nil || err2 != nil {
			return false
		}
		expect := new(big.Int).Mul(a, big.NewInt(int64(2*n-3)))
		return b.Cmp(expect) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRootedVsUnrooted: rooted count for n equals unrooted count for n+1
// (rooting is equivalent to adding an outgroup).
func TestRootedVsUnrooted(t *testing.T) {
	for n := 2; n <= 20; n++ {
		r, err := NumRootedTopologies(n)
		if err != nil {
			t.Fatal(err)
		}
		u, err := NumTopologies(n + 1)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cmp(u) != 0 {
			t.Errorf("rooted(%d)=%s != unrooted(%d)=%s", n, r, n+1, u)
		}
	}
}

func TestNumTopologiesLog10Consistent(t *testing.T) {
	exact, _ := NumTopologies(30)
	lg, err := NumTopologiesLog10(30)
	if err != nil {
		t.Fatal(err)
	}
	// Compare digit count: floor(log10)+1 must equal the decimal length.
	digits := len(strings.TrimLeft(exact.String(), "-"))
	if int(lg)+1 != digits {
		t.Errorf("log10 = %g implies %d digits, exact has %d", lg, int(lg)+1, digits)
	}
}
