package tree

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func taxaNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("t%02d", i)
	}
	return out
}

func TestTripleShape(t *testing.T) {
	tr, err := Triple(taxaNames(5), 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(true); err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 3 || tr.NumNodes() != 4 {
		t.Errorf("triple has %d leaves, %d nodes", tr.NumLeaves(), tr.NumNodes())
	}
	if got := len(tr.Edges()); got != 3 {
		t.Errorf("triple has %d edges, want 3", got)
	}
}

func TestTripleErrors(t *testing.T) {
	if _, err := Triple(taxaNames(3), 0, 0, 1); err == nil {
		t.Error("duplicate taxa should fail")
	}
	if _, err := Triple(taxaNames(3), 0, 1, 7); err == nil {
		t.Error("out-of-range taxon should fail")
	}
}

func TestInsertLeafGrowsTree(t *testing.T) {
	tr, _ := Triple(taxaNames(6), 0, 1, 2)
	for i := 3; i < 6; i++ {
		edges := tr.Edges()
		wantEdges := 2*i - 3 // edges of a tree with i leaves
		if len(edges) != wantEdges-2 {
			// before inserting taxon i the tree has i leaves... recompute:
			// tree currently has i leaves? No: it has i leaves after this
			// insert. Before: i-1+? Start 3 leaves. Edges = 2m-3 for m
			// leaves.
			m := tr.NumLeaves()
			if len(edges) != 2*m-3 {
				t.Fatalf("tree with %d leaves has %d edges, want %d", m, len(edges), 2*m-3)
			}
		}
		if _, err := tr.InsertLeaf(i, edges[0]); err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(true); err != nil {
			t.Fatalf("after inserting taxon %d: %v", i, err)
		}
	}
	if tr.NumLeaves() != 6 {
		t.Errorf("NumLeaves = %d, want 6", tr.NumLeaves())
	}
}

func TestInsertLeafErrors(t *testing.T) {
	tr, _ := Triple(taxaNames(5), 0, 1, 2)
	e := tr.Edges()[0]
	if _, err := tr.InsertLeaf(0, e); err == nil {
		t.Error("inserting an existing taxon should fail")
	}
	if _, err := tr.InsertLeaf(9, e); err == nil {
		t.Error("out-of-range taxon should fail")
	}
}

func TestRemoveLeafInvertsInsert(t *testing.T) {
	tr, _ := Triple(taxaNames(5), 0, 1, 2)
	before := tr.Topology()
	e := tr.Edges()[1]
	if _, err := tr.InsertLeaf(3, e); err != nil {
		t.Fatal(err)
	}
	if err := tr.RemoveLeaf(3); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(true); err != nil {
		t.Fatal(err)
	}
	if tr.Topology() != before {
		t.Errorf("remove did not restore topology:\n%s\n%s", before, tr.Topology())
	}
}

func TestRemoveLeafErrors(t *testing.T) {
	tr, _ := Triple(taxaNames(5), 0, 1, 2)
	if err := tr.RemoveLeaf(0); err == nil {
		t.Error("removing from a 3-leaf tree should fail")
	}
	if err := tr.RemoveLeaf(4); err == nil {
		t.Error("removing an absent taxon should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr, err := RandomTree(taxaNames(8), rng, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	cp := tr.Clone()
	if cp.Newick() != tr.Newick() {
		t.Fatal("clone differs from original")
	}
	// Mutate the clone; the original must be unaffected.
	e := cp.Edges()[0]
	SetLen(e.A, e.B, 9.9)
	if cp.Newick() == tr.Newick() {
		t.Error("mutating clone changed original (shared storage)")
	}
	if err := tr.Validate(true); err != nil {
		t.Error(err)
	}
}

func TestRandomTreeValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{3, 4, 5, 10, 25} {
		tr, err := RandomTree(taxaNames(n), rng, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(true); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		if tr.NumLeaves() != n {
			t.Errorf("n=%d: %d leaves", n, tr.NumLeaves())
		}
	}
	if _, err := RandomTree(taxaNames(2), rng, 0.1); err == nil {
		t.Error("RandomTree with 2 taxa should fail")
	}
}

func TestPruneRegraftRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	tr, _ := RandomTree(taxaNames(9), rng, 0.1)
	want := tr.Newick()
	// Prune an arbitrary leaf subtree and regraft it back equivalently.
	leaf := tr.LeafByTaxon(5)
	p := leaf.Nbr[0]
	lps := leaf.LenTo(p)
	var others []*Node
	var lens []float64
	for i, nb := range p.Nbr {
		if nb != leaf {
			others = append(others, nb)
			lens = append(lens, p.Len[i])
		}
	}
	joined, err := tr.PruneSubtree(p, leaf)
	if err != nil {
		t.Fatal(err)
	}
	// The tree is intentionally in a detached state here (the pruned
	// subtree is disconnected), so no validation until the undo.
	undoPrune(tr, joined, leaf, others, lens, lps)
	if err := tr.Validate(true); err != nil {
		t.Fatalf("after undo: %v", err)
	}
	if got := tr.Newick(); got != want {
		t.Errorf("undoPrune did not restore tree:\n%s\n%s", want, got)
	}
}

func TestEdgesDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr, _ := RandomTree(taxaNames(12), rng, 0.1)
	e1 := tr.Edges()
	e2 := tr.Edges()
	if len(e1) != len(e2) {
		t.Fatal("edge count unstable")
	}
	for i := range e1 {
		if e1[i].A != e2[i].A || e1[i].B != e2[i].B {
			t.Fatal("edge order unstable")
		}
	}
	if len(e1) != 2*12-3 {
		t.Errorf("12-leaf tree has %d edges, want 21", len(e1))
	}
}

func TestInternalEdgesCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{4, 7, 15} {
		tr, _ := RandomTree(taxaNames(n), rng, 0.1)
		got := len(tr.InternalEdges())
		if got != n-3 {
			t.Errorf("n=%d: %d internal edges, want %d", n, got, n-3)
		}
	}
}

// TestTreeInvariantsQuick grows random trees by insertion and checks
// structural invariants at every step.
func TestTreeInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		tr, err := Triple(taxaNames(n), 0, 1, 2)
		if err != nil {
			return false
		}
		for i := 3; i < n; i++ {
			edges := tr.Edges()
			if len(edges) != 2*tr.NumLeaves()-3 {
				return false
			}
			if _, err := tr.InsertLeaf(i, edges[rng.Intn(len(edges))]); err != nil {
				return false
			}
			if err := tr.Validate(true); err != nil {
				return false
			}
		}
		// Total nodes of an n-leaf unrooted binary tree: 2n-2.
		return tr.NumNodes() == 2*n-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestWalkVisitsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr, _ := RandomTree(taxaNames(10), rng, 0.1)
	seen := map[int]bool{}
	tr.Walk(func(n, parent *Node) { seen[n.ID] = true })
	if len(seen) != tr.NumNodes() {
		t.Errorf("Walk visited %d of %d nodes", len(seen), tr.NumNodes())
	}
}

func TestTotalLength(t *testing.T) {
	tr, _ := Triple(taxaNames(3), 0, 1, 2)
	for _, e := range tr.Edges() {
		SetLen(e.A, e.B, 0.5)
	}
	if got := tr.TotalLength(); got < 1.4999 || got > 1.5001 {
		t.Errorf("TotalLength = %g, want 1.5", got)
	}
}
