package tree

import (
	"fmt"
	"math"
	"math/big"
)

// Tree counting (paper §1.1): the number of distinct bifurcating unrooted
// trees over n labeled taxa is
//
//	(2n-5)! / ((n-3)! * 2^(n-3)) = (2n-5)!! = 1*3*5*...*(2n-5),
//
// citing Felsenstein (1978). The paper quotes 2.8e74 for 50 taxa,
// 1.7e182 for 100 taxa, and 4.2e301 for 150 taxa.

// NumTopologies returns the exact number of distinct unrooted bifurcating
// topologies over n labeled taxa: (2n-5)!! for n >= 3, and 1 for n in
// {1, 2, 3} (a 3-taxon unrooted tree has a single topology).
func NumTopologies(n int) (*big.Int, error) {
	if n < 1 {
		return nil, fmt.Errorf("tree: NumTopologies of %d taxa", n)
	}
	out := big.NewInt(1)
	if n <= 3 {
		return out, nil
	}
	for k := int64(3); k <= int64(2*n-5); k += 2 {
		out.Mul(out, big.NewInt(k))
	}
	return out, nil
}

// NumTopologiesLog10 returns log10 of the topology count, convenient for
// reproducing the paper's scientific-notation figures without printing
// hundreds of digits.
func NumTopologiesLog10(n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("tree: NumTopologiesLog10 of %d taxa", n)
	}
	if n <= 3 {
		return 0, nil
	}
	sum := 0.0
	for k := 3; k <= 2*n-5; k += 2 {
		sum += math.Log10(float64(k))
	}
	return sum, nil
}

// FormatTopologyCount renders the count of n-taxon topologies in the
// paper's "m.m x 10^e" style.
func FormatTopologyCount(n int) (string, error) {
	lg, err := NumTopologiesLog10(n)
	if err != nil {
		return "", err
	}
	exp := math.Floor(lg)
	mant := math.Pow(10, lg-exp)
	return fmt.Sprintf("%.1f x 10^%d", mant, int(exp)), nil
}

// NumRootedTopologies returns the number of rooted bifurcating trees over
// n labeled taxa: (2n-3)!! for n >= 2.
func NumRootedTopologies(n int) (*big.Int, error) {
	if n < 1 {
		return nil, fmt.Errorf("tree: NumRootedTopologies of %d taxa", n)
	}
	out := big.NewInt(1)
	if n <= 2 {
		return out, nil
	}
	for k := int64(3); k <= int64(2*n-3); k += 2 {
		out.Mul(out, big.NewInt(k))
	}
	return out, nil
}
