// Package tree implements the unrooted phylogenetic trees at the heart of
// fastDNAml: topology construction and editing (taxon insertion, subtree
// pruning and regrafting), Newick input/output, enumeration of the
// candidate topologies examined by the search (insertion points and local
// rearrangements crossing a bounded number of vertices), bipartition
// analysis (Robinson–Foulds distance, canonical topology keys), majority
// rule consensus, and the (2n−5)!! count of distinct topologies.
//
// Trees are unrooted and, during search, strictly bifurcating: every leaf
// has exactly one neighbor and every internal node exactly three. Consensus
// trees may be multifurcating. Branch lengths are stored symmetrically on
// both directions of an edge and are kept in expected substitutions per
// site.
package tree

import (
	"fmt"
	"sort"
)

// Node is a vertex of an unrooted tree. Leaves carry a taxon index;
// internal nodes have Taxon == -1.
type Node struct {
	// ID is the node's stable index into its Tree's Nodes slice.
	ID int
	// Taxon is the taxon index for leaves, -1 for internal nodes.
	Taxon int
	// Nbr lists the adjacent nodes (1 for a leaf, 3 for a bifurcating
	// internal node, possibly more in consensus trees).
	Nbr []*Node
	// Len[i] is the length of the branch to Nbr[i], in expected
	// substitutions per site. The reverse direction stores the same value.
	Len []float64

	// rev counts changes to this node's incident edges (lengths and
	// adjacency). Likelihood engines compare revisions to decide whether
	// cached conditional likelihood vectors are still valid, so every
	// mutation of Nbr/Len must go through the helpers that bump it.
	rev uint64
}

// Rev returns the node's edge-revision counter. It increases whenever a
// branch incident to the node changes length or the adjacency list
// changes; it never decreases. Callers that mutate Len directly (instead
// of through SetLen) must notify dependent caches themselves.
func (n *Node) Rev() uint64 { return n.rev }

// Leaf reports whether n is a leaf.
func (n *Node) Leaf() bool { return n.Taxon >= 0 }

// Degree returns the number of neighbors.
func (n *Node) Degree() int { return len(n.Nbr) }

// NbrIndex returns the index of m in n's neighbor list, or -1.
func (n *Node) NbrIndex(m *Node) int {
	for i, x := range n.Nbr {
		if x == m {
			return i
		}
	}
	return -1
}

// LenTo returns the branch length from n to its neighbor m.
// It panics if m is not a neighbor.
func (n *Node) LenTo(m *Node) float64 {
	i := n.NbrIndex(m)
	if i < 0 {
		panic(fmt.Sprintf("tree: node %d is not adjacent to node %d", m.ID, n.ID))
	}
	return n.Len[i]
}

// Tree is an unrooted phylogenetic tree over a fixed taxon set.
type Tree struct {
	// Taxa holds the taxon labels; taxon index i corresponds to Taxa[i].
	// Not every taxon need be present in the tree (the search adds them
	// incrementally).
	Taxa []string
	// Nodes holds every node ever allocated; entries may be nil after
	// pruning. Node.ID indexes this slice.
	Nodes []*Node
	// free lists the IDs of nil Nodes entries available for reuse.
	free []int
}

// New creates an empty tree over the given taxon labels.
func New(taxa []string) *Tree {
	cp := make([]string, len(taxa))
	copy(cp, taxa)
	return &Tree{Taxa: cp}
}

// newNode allocates a node, reusing a freed slot when available.
func (t *Tree) newNode(taxon int) *Node {
	n := &Node{Taxon: taxon}
	if k := len(t.free); k > 0 {
		n.ID = t.free[k-1]
		t.free = t.free[:k-1]
		t.Nodes[n.ID] = n
	} else {
		n.ID = len(t.Nodes)
		t.Nodes = append(t.Nodes, n)
	}
	return n
}

// releaseNode returns a node's slot to the free list.
func (t *Tree) releaseNode(n *Node) {
	t.Nodes[n.ID] = nil
	t.free = append(t.free, n.ID)
	n.Nbr = nil
	n.Len = nil
}

// MaxID returns one more than the largest node ID in use; likelihood
// engines size their per-node arrays with it.
func (t *Tree) MaxID() int { return len(t.Nodes) }

// connect links a and b with a branch of length v.
func connect(a, b *Node, v float64) {
	a.Nbr = append(a.Nbr, b)
	a.Len = append(a.Len, v)
	b.Nbr = append(b.Nbr, a)
	b.Len = append(b.Len, v)
	a.rev++
	b.rev++
}

// disconnect removes the edge between a and b.
func disconnect(a, b *Node) {
	ai := a.NbrIndex(b)
	bi := b.NbrIndex(a)
	if ai < 0 || bi < 0 {
		panic("tree: disconnect of non-adjacent nodes")
	}
	a.Nbr = append(a.Nbr[:ai], a.Nbr[ai+1:]...)
	a.Len = append(a.Len[:ai], a.Len[ai+1:]...)
	b.Nbr = append(b.Nbr[:bi], b.Nbr[bi+1:]...)
	b.Len = append(b.Len[:bi], b.Len[bi+1:]...)
	a.rev++
	b.rev++
}

// SetLen sets the length of the edge between a and b (both directions).
// The revision counters of both endpoints are bumped only when the stored
// value actually changes, so restoring a length to its previous value
// after a trial move keeps dependent CLV caches warm.
func SetLen(a, b *Node, v float64) {
	ai := a.NbrIndex(b)
	bi := b.NbrIndex(a)
	if ai < 0 || bi < 0 {
		panic("tree: SetLen on non-adjacent nodes")
	}
	if a.Len[ai] == v && b.Len[bi] == v {
		return
	}
	a.Len[ai] = v
	b.Len[bi] = v
	a.rev++
	b.rev++
}

// AnyNode returns an arbitrary node of the tree (an internal one when any
// exists), or nil for an empty tree.
func (t *Tree) AnyNode() *Node {
	var leaf *Node
	for _, n := range t.Nodes {
		if n == nil {
			continue
		}
		if !n.Leaf() {
			return n
		}
		if leaf == nil {
			leaf = n
		}
	}
	return leaf
}

// LeafByTaxon returns the leaf carrying taxon index i, or nil.
func (t *Tree) LeafByTaxon(i int) *Node {
	for _, n := range t.Nodes {
		if n != nil && n.Taxon == i {
			return n
		}
	}
	return nil
}

// NumLeaves counts the leaves currently in the tree.
func (t *Tree) NumLeaves() int {
	k := 0
	for _, n := range t.Nodes {
		if n != nil && n.Leaf() {
			k++
		}
	}
	return k
}

// NumNodes counts the live nodes.
func (t *Tree) NumNodes() int {
	k := 0
	for _, n := range t.Nodes {
		if n != nil {
			k++
		}
	}
	return k
}

// Edge is an undirected edge identified by its two endpoints.
type Edge struct{ A, B *Node }

// Length returns the branch length of e.
func (e Edge) Length() float64 { return e.A.LenTo(e.B) }

// Edges returns every edge of the tree exactly once, ordered by the
// smaller endpoint ID then the larger, so enumeration is deterministic.
func (t *Tree) Edges() []Edge {
	var out []Edge
	for _, n := range t.Nodes {
		if n == nil {
			continue
		}
		for _, m := range n.Nbr {
			if n.ID < m.ID {
				out = append(out, Edge{n, m})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A.ID != out[j].A.ID {
			return out[i].A.ID < out[j].A.ID
		}
		return out[i].B.ID < out[j].B.ID
	})
	return out
}

// FirstEdge returns the edge Edges() would list first — the edge
// minimizing (A.ID, B.ID) — without building and sorting the full list,
// so hot evaluation paths can pick their root edge allocation-free.
func (t *Tree) FirstEdge() (Edge, bool) {
	// Nodes is indexed by ID, so the scan runs in ascending ID order. The
	// first live node with a higher-ID neighbor owns the minimal A.ID (an
	// earlier node would have contributed no edge as the smaller
	// endpoint), and its smallest higher-ID neighbor is the minimal B.
	for _, n := range t.Nodes {
		if n == nil {
			continue
		}
		var best *Node
		for _, m := range n.Nbr {
			if m.ID > n.ID && (best == nil || m.ID < best.ID) {
				best = m
			}
		}
		if best != nil {
			return Edge{n, best}, true
		}
	}
	return Edge{}, false
}

// InternalEdges returns the edges whose both endpoints are internal nodes.
func (t *Tree) InternalEdges() []Edge {
	var out []Edge
	for _, e := range t.Edges() {
		if !e.A.Leaf() && !e.B.Leaf() {
			out = append(out, e)
		}
	}
	return out
}

// Validate checks structural invariants. When binary is true, it requires
// a strictly bifurcating unrooted tree (leaves degree 1, internal degree 3)
// with at least three leaves.
func (t *Tree) Validate(binary bool) error {
	live := 0
	leaves := 0
	for id, n := range t.Nodes {
		if n == nil {
			continue
		}
		live++
		if n.ID != id {
			return fmt.Errorf("tree: node at slot %d has ID %d", id, n.ID)
		}
		if len(n.Nbr) != len(n.Len) {
			return fmt.Errorf("tree: node %d has %d neighbors but %d lengths", id, len(n.Nbr), len(n.Len))
		}
		if n.Leaf() {
			leaves++
			if n.Taxon >= len(t.Taxa) {
				return fmt.Errorf("tree: leaf %d has taxon %d outside taxon set", id, n.Taxon)
			}
			if binary && n.Degree() != 1 {
				return fmt.Errorf("tree: leaf %d has degree %d", id, n.Degree())
			}
		} else if binary && n.Degree() != 3 {
			return fmt.Errorf("tree: internal node %d has degree %d", id, n.Degree())
		}
		for i, m := range n.Nbr {
			if m == nil || t.Nodes[m.ID] != m {
				return fmt.Errorf("tree: node %d has a dangling neighbor", id)
			}
			j := m.NbrIndex(n)
			if j < 0 {
				return fmt.Errorf("tree: edge %d-%d is not symmetric", id, m.ID)
			}
			if n.Len[i] != m.Len[j] {
				return fmt.Errorf("tree: edge %d-%d has asymmetric lengths %g vs %g", id, m.ID, n.Len[i], m.Len[j])
			}
			if n.Len[i] < 0 {
				return fmt.Errorf("tree: edge %d-%d has negative length", id, m.ID)
			}
		}
	}
	if live == 0 {
		return fmt.Errorf("tree: empty tree")
	}
	if binary && leaves < 3 {
		return fmt.Errorf("tree: binary tree needs at least 3 leaves, has %d", leaves)
	}
	// Connectivity: walk from any node.
	seen := make(map[int]bool, live)
	stack := []*Node{t.AnyNode()}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n.ID] {
			continue
		}
		seen[n.ID] = true
		stack = append(stack, n.Nbr...)
	}
	if len(seen) != live {
		return fmt.Errorf("tree: disconnected (%d of %d nodes reachable)", len(seen), live)
	}
	// Taxa must be distinct.
	taxSeen := make(map[int]bool)
	for _, n := range t.Nodes {
		if n != nil && n.Leaf() {
			if taxSeen[n.Taxon] {
				return fmt.Errorf("tree: taxon %d appears twice", n.Taxon)
			}
			taxSeen[n.Taxon] = true
		}
	}
	return nil
}

// Clone returns a deep copy of the tree. Node IDs are preserved.
func (t *Tree) Clone() *Tree {
	out := &Tree{
		Taxa:  append([]string(nil), t.Taxa...),
		Nodes: make([]*Node, len(t.Nodes)),
		free:  append([]int(nil), t.free...),
	}
	for id, n := range t.Nodes {
		if n == nil {
			continue
		}
		out.Nodes[id] = &Node{ID: id, Taxon: n.Taxon}
	}
	for id, n := range t.Nodes {
		if n == nil {
			continue
		}
		cn := out.Nodes[id]
		cn.Nbr = make([]*Node, len(n.Nbr))
		cn.Len = append([]float64(nil), n.Len...)
		for i, m := range n.Nbr {
			cn.Nbr[i] = out.Nodes[m.ID]
		}
	}
	return out
}

// TaxaInTree returns the sorted taxon indices present as leaves.
func (t *Tree) TaxaInTree() []int {
	var out []int
	for _, n := range t.Nodes {
		if n != nil && n.Leaf() {
			out = append(out, n.Taxon)
		}
	}
	sort.Ints(out)
	return out
}

// TotalLength returns the sum of all branch lengths.
func (t *Tree) TotalLength() float64 {
	s := 0.0
	for _, e := range t.Edges() {
		s += e.Length()
	}
	return s
}

// Walk visits every live node in depth-first order starting from an
// arbitrary node, calling visit with each node and its parent in the
// traversal (nil for the start node).
func (t *Tree) Walk(visit func(n, parent *Node)) {
	start := t.AnyNode()
	if start == nil {
		return
	}
	var rec func(n, parent *Node)
	rec = func(n, parent *Node) {
		visit(n, parent)
		for _, m := range n.Nbr {
			if m != parent {
				rec(m, n)
			}
		}
	}
	rec(start, nil)
}
