package tree

import (
	"fmt"
	"math/rand"
)

// DefaultBranchLength is the starting length for newly created branches,
// matching fastDNAml's initial guess before Newton optimization.
const DefaultBranchLength = 0.1

// Triple builds the unique unrooted topology over three taxa: one internal
// node joined to three leaves, all branches at DefaultBranchLength.
func Triple(taxa []string, a, b, c int) (*Tree, error) {
	t := New(taxa)
	for _, i := range []int{a, b, c} {
		if i < 0 || i >= len(taxa) {
			return nil, fmt.Errorf("tree: taxon index %d out of range", i)
		}
	}
	if a == b || a == c || b == c {
		return nil, fmt.Errorf("tree: triple taxa must be distinct (%d,%d,%d)", a, b, c)
	}
	center := t.newNode(-1)
	for _, i := range []int{a, b, c} {
		leaf := t.newNode(i)
		connect(center, leaf, DefaultBranchLength)
	}
	return t, nil
}

// GraftPair builds a two-leaf tree: taxa a and b joined by a single edge
// of the given length. Pairwise distance estimation uses it; it is not a
// valid search tree (the search starts from a Triple).
func (t *Tree) GraftPair(a, b int, length float64) (Edge, error) {
	if t.NumNodes() != 0 {
		return Edge{}, fmt.Errorf("tree: GraftPair on a non-empty tree")
	}
	for _, i := range []int{a, b} {
		if i < 0 || i >= len(t.Taxa) {
			return Edge{}, fmt.Errorf("tree: taxon index %d out of range", i)
		}
	}
	if a == b {
		return Edge{}, fmt.Errorf("tree: GraftPair of taxon %d with itself", a)
	}
	if length <= 0 {
		length = DefaultBranchLength
	}
	la := t.newNode(a)
	lb := t.newNode(b)
	connect(la, lb, length)
	return Edge{la, lb}, nil
}

// InsertLeaf splits edge e with a new internal node and attaches a new
// leaf for taxon i to it. The split conserves e's length (half on each
// side); the new leaf branch starts at DefaultBranchLength. It returns the
// new leaf; the new internal node is its single neighbor.
func (t *Tree) InsertLeaf(i int, e Edge) (*Node, error) {
	if i < 0 || i >= len(t.Taxa) {
		return nil, fmt.Errorf("tree: taxon index %d out of range", i)
	}
	if t.LeafByTaxon(i) != nil {
		return nil, fmt.Errorf("tree: taxon %d already in tree", i)
	}
	if e.A.NbrIndex(e.B) < 0 {
		return nil, fmt.Errorf("tree: insertion edge %d-%d does not exist", e.A.ID, e.B.ID)
	}
	half := e.Length() / 2
	if half <= 0 {
		half = DefaultBranchLength / 2
	}
	mid := t.newNode(-1)
	leaf := t.newNode(i)
	disconnect(e.A, e.B)
	connect(e.A, mid, half)
	connect(mid, e.B, half)
	connect(mid, leaf, DefaultBranchLength)
	return leaf, nil
}

// RemoveLeaf deletes the leaf carrying taxon i, dissolving its attachment
// node: the attachment's two remaining neighbors are joined by an edge
// whose length is the sum of the two dissolved branches. The tree must
// remain a valid unrooted binary tree (at least 4 leaves before removal).
func (t *Tree) RemoveLeaf(i int) error {
	leaf := t.LeafByTaxon(i)
	if leaf == nil {
		return fmt.Errorf("tree: taxon %d not in tree", i)
	}
	if t.NumLeaves() <= 3 {
		return fmt.Errorf("tree: cannot remove a leaf from a 3-leaf tree")
	}
	att := leaf.Nbr[0]
	if att.Degree() != 3 {
		return fmt.Errorf("tree: attachment node %d has degree %d", att.ID, att.Degree())
	}
	disconnect(leaf, att)
	a, b := att.Nbr[0], att.Nbr[1]
	la, lb := att.Len[0], att.Len[1]
	disconnect(att, a)
	disconnect(att, b)
	connect(a, b, la+lb)
	t.releaseNode(leaf)
	t.releaseNode(att)
	return nil
}

// PruneSubtree detaches the subtree rooted at s across the edge (p, s):
// p's side stays in the tree; the attachment vertex p is dissolved, its
// two remaining neighbors joined. It returns the subtree root s, the
// dissolved edge's replacement (the joined edge), and the original lengths
// so the caller can undo or regraft. The caller must regraft s before
// using the tree again.
//
// p must be an internal node adjacent to s.
func (t *Tree) PruneSubtree(p, s *Node) (joined Edge, err error) {
	if p.Leaf() {
		return Edge{}, fmt.Errorf("tree: prune attachment %d is a leaf", p.ID)
	}
	if p.NbrIndex(s) < 0 {
		return Edge{}, fmt.Errorf("tree: %d and %d are not adjacent", p.ID, s.ID)
	}
	if p.Degree() != 3 {
		return Edge{}, fmt.Errorf("tree: prune attachment %d has degree %d", p.ID, p.Degree())
	}
	disconnect(p, s)
	a, b := p.Nbr[0], p.Nbr[1]
	la, lb := p.Len[0], p.Len[1]
	disconnect(p, a)
	disconnect(p, b)
	connect(a, b, la+lb)
	t.releaseNode(p)
	return Edge{a, b}, nil
}

// RegraftSubtree attaches the subtree rooted at s onto edge e by splitting
// e with a fresh internal node. The split halves e's length; the branch to
// s gets length attachLen (DefaultBranchLength when <= 0). It returns the
// new attachment node.
func (t *Tree) RegraftSubtree(s *Node, e Edge, attachLen float64) (*Node, error) {
	if e.A.NbrIndex(e.B) < 0 {
		return nil, fmt.Errorf("tree: regraft edge %d-%d does not exist", e.A.ID, e.B.ID)
	}
	if attachLen <= 0 {
		attachLen = DefaultBranchLength
	}
	half := e.Length() / 2
	if half <= 0 {
		half = DefaultBranchLength / 2
	}
	mid := t.newNode(-1)
	disconnect(e.A, e.B)
	connect(e.A, mid, half)
	connect(mid, e.B, half)
	connect(mid, s, attachLen)
	return mid, nil
}

// RandomTree builds a uniformly random-addition unrooted binary tree over
// all taxa, with branch lengths drawn exponentially with the given mean.
// It is used by the sequence simulator and by tests.
func RandomTree(taxa []string, rng *rand.Rand, meanLen float64) (*Tree, error) {
	if len(taxa) < 3 {
		return nil, fmt.Errorf("tree: need at least 3 taxa, have %d", len(taxa))
	}
	if meanLen <= 0 {
		meanLen = DefaultBranchLength
	}
	order := rng.Perm(len(taxa))
	t, err := Triple(taxa, order[0], order[1], order[2])
	if err != nil {
		return nil, err
	}
	el := func() float64 { return rng.ExpFloat64() * meanLen }
	for _, n := range t.Nodes {
		if n == nil {
			continue
		}
		for i := range n.Len {
			if n.ID < n.Nbr[i].ID {
				SetLen(n, n.Nbr[i], el())
			}
		}
	}
	for _, i := range order[3:] {
		edges := t.Edges()
		e := edges[rng.Intn(len(edges))]
		leaf, err := t.InsertLeaf(i, e)
		if err != nil {
			return nil, err
		}
		SetLen(leaf, leaf.Nbr[0], el())
	}
	return t, nil
}
