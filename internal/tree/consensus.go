package tree

import (
	"fmt"
	"sort"
)

// Majority rule consensus (paper §2: "compare the best of the resulting
// trees to determine a consensus tree", citing Jermiin, Olsen & Easteal's
// majority rule consensus of maximum likelihood trees).

// ConsensusResult holds a consensus tree and the support of its splits.
type ConsensusResult struct {
	// Tree is the (possibly multifurcating) consensus topology. Branch
	// lengths on internal edges are the split's support fraction; leaf
	// edges have length 1.
	Tree *Tree
	// Support maps each retained split key to the fraction of input
	// trees containing it.
	Support map[string]float64
	// SplitFreq maps every observed split key to its frequency,
	// including splits below the threshold.
	SplitFreq map[string]float64
}

// MajorityRule computes the majority rule consensus of trees over a shared
// taxon set. threshold is the inclusion fraction in (0.5, 1]; pass 0.5 for
// the strict majority rule (a split is kept when it appears in MORE than
// half the trees). All leaves present in the inputs must cover the same
// taxon set.
func MajorityRule(trees []*Tree, threshold float64) (*ConsensusResult, error) {
	if len(trees) == 0 {
		return nil, fmt.Errorf("tree: consensus of zero trees")
	}
	if threshold < 0.5 || threshold > 1 {
		return nil, fmt.Errorf("tree: consensus threshold %g outside [0.5, 1]", threshold)
	}
	n := len(trees[0].Taxa)
	ref := trees[0].TaxaInTree()
	for i, tr := range trees {
		if len(tr.Taxa) != n {
			return nil, fmt.Errorf("tree: input %d has %d taxa, want %d", i, len(tr.Taxa), n)
		}
		got := tr.TaxaInTree()
		if len(got) != len(ref) {
			return nil, fmt.Errorf("tree: input %d has %d leaves, want %d", i, len(got), len(ref))
		}
		for j := range got {
			if got[j] != ref[j] {
				return nil, fmt.Errorf("tree: input %d covers a different leaf set", i)
			}
		}
	}

	counts := make(map[string]int)
	splits := make(map[string]Split)
	for _, tr := range trees {
		for k, sp := range tr.Splits() {
			counts[k]++
			splits[k] = sp
		}
	}
	freq := make(map[string]float64, len(counts))
	for k, c := range counts {
		freq[k] = float64(c) / float64(len(trees))
	}

	// Retain splits with frequency strictly above the threshold when
	// threshold == 0.5 (strict majority), or >= threshold otherwise.
	var kept []Split
	support := make(map[string]float64)
	for k, f := range freq {
		keep := f >= threshold
		if threshold == 0.5 {
			keep = f > 0.5
		}
		if keep {
			kept = append(kept, splits[k])
			support[k] = f
		}
	}
	// Majority splits are pairwise compatible by a counting argument, but
	// verify defensively (ties at exactly 0.5 with >= semantics can
	// conflict).
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Size() != kept[j].Size() {
			return kept[i].Size() > kept[j].Size()
		}
		return kept[i].Key() < kept[j].Key()
	})
	for i := 0; i < len(kept); i++ {
		for j := i + 1; j < len(kept); j++ {
			if !kept[i].CompatibleWith(kept[j]) {
				return nil, fmt.Errorf("tree: incompatible splits retained at threshold %g; raise the threshold", threshold)
			}
		}
	}

	ct, err := buildFromSplits(trees[0].Taxa, ref, kept, support)
	if err != nil {
		return nil, err
	}
	return &ConsensusResult{Tree: ct, Support: support, SplitFreq: freq}, nil
}

// buildFromSplits constructs a (possibly multifurcating) tree containing
// exactly the given compatible nontrivial splits. The construction roots
// at taxon ref[0]: each split's stored side (the side excluding taxon 0)
// becomes a cluster; clusters are nested or disjoint, forming a laminar
// family realized as internal nodes.
func buildFromSplits(taxa []string, ref []int, splits []Split, support map[string]float64) (*Tree, error) {
	t := New(taxa)
	root := t.newNode(-1)

	type cluster struct {
		sp   Split
		node *Node
	}
	// Insert clusters largest-first so each finds its parent among the
	// already inserted ones.
	var placed []cluster

	parentOf := func(sp Split) *Node {
		best := root
		bestSize := len(ref) + 1
		for _, c := range placed {
			if contains(c.sp, sp) && c.sp.Size() < bestSize {
				best = c.node
				bestSize = c.sp.Size()
			}
		}
		return best
	}

	for _, sp := range splits {
		parent := parentOf(sp)
		node := t.newNode(-1)
		supp := support[sp.Key()]
		connect(parent, node, supp)
		// Reparent any previously placed clusters contained in sp.
		for _, c := range placed {
			if contains(sp, c.sp) && nbrOf(c.node, parent) {
				l := c.node.LenTo(parent)
				disconnect(c.node, parent)
				connect(node, c.node, l)
			}
		}
		placed = append(placed, cluster{sp, node})
	}

	// Attach leaves: each leaf hangs from the smallest cluster containing
	// it, or the root.
	for _, ti := range ref {
		var best *Node = root
		bestSize := len(ref) + 1
		for _, c := range placed {
			if c.sp.Contains(ti) && c.sp.Size() < bestSize {
				best = c.node
				bestSize = c.sp.Size()
			}
		}
		leaf := t.newNode(ti)
		connect(best, leaf, 1)
	}

	// The root may have degree 2 when a single top-level cluster exists
	// alongside taxon 0's group; dissolve it to keep the tree unrooted.
	if root.Degree() == 2 {
		a, b := root.Nbr[0], root.Nbr[1]
		la, lb := root.Len[0], root.Len[1]
		disconnect(root, a)
		disconnect(root, b)
		connect(a, b, la+lb)
		t.releaseNode(root)
	}
	if err := t.Validate(false); err != nil {
		return nil, fmt.Errorf("tree: consensus construction failed: %w", err)
	}
	return t, nil
}

// contains reports whether split a's stored side is a superset of b's.
func contains(a, b Split) bool {
	for i := range a.bits {
		if b.bits[i]&^a.bits[i] != 0 {
			return false
		}
	}
	return true
}

func nbrOf(n, m *Node) bool { return n.NbrIndex(m) >= 0 }
