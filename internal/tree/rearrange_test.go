package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestRearrangementsNNICount checks the paper's (2i-6) count: crossing one
// vertex yields exactly 2n-6 topologically distinct trees for an n-leaf
// binary tree.
func TestRearrangementsNNICount(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{4, 5, 6, 8, 10, 13} {
		tr, err := RandomTree(taxaNames(n), rng, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		count, err := tr.Rearrangements(1, func(view *Tree, c RearrangeCandidate) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
		if count != 2*n-6 {
			t.Errorf("n=%d: %d distinct extent-1 rearrangements, want %d", n, count, 2*n-6)
		}
	}
}

// TestRearrangementsViewsValid checks every candidate view is a valid
// binary tree over the same leaf set, different from the original.
func TestRearrangementsViewsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tr, _ := RandomTree(taxaNames(8), rng, 0.1)
	origKey := tr.Topology()
	origLeaves := tr.TaxaInTree()
	seen := map[string]bool{}
	_, err := tr.Rearrangements(3, func(view *Tree, c RearrangeCandidate) bool {
		if err := view.Validate(true); err != nil {
			t.Errorf("invalid candidate: %v", err)
			return false
		}
		key := view.Topology()
		if key == origKey {
			t.Error("candidate equals original topology")
		}
		if seen[key] {
			t.Error("duplicate candidate delivered")
		}
		seen[key] = true
		leaves := view.TaxaInTree()
		if len(leaves) != len(origLeaves) {
			t.Error("candidate changed the leaf set")
		}
		if c.Distance < 1 || c.Distance > 3 {
			t.Errorf("candidate distance %d outside [1,3]", c.Distance)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("no candidates generated")
	}
}

// TestRearrangementsRestoreTree checks the enumeration leaves the tree
// exactly as it found it (topology and branch lengths).
func TestRearrangementsRestoreTree(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	tr, _ := RandomTree(taxaNames(9), rng, 0.1)
	want := tr.Newick()
	if _, err := tr.Rearrangements(2, func(view *Tree, c RearrangeCandidate) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if got := tr.Newick(); got != want {
		t.Errorf("tree changed by enumeration:\n%s\n%s", want, got)
	}
	if err := tr.Validate(true); err != nil {
		t.Error(err)
	}
}

// TestRearrangementsExtentMonotone: larger extents can only reach more
// topologies.
func TestRearrangementsExtentMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(6)
		tr, err := RandomTree(taxaNames(n), rng, 0.1)
		if err != nil {
			return false
		}
		prev := 0
		for extent := 1; extent <= 4; extent++ {
			count, err := tr.Rearrangements(extent, func(*Tree, RearrangeCandidate) bool { return true })
			if err != nil || count < prev {
				return false
			}
			prev = count
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestRearrangementsEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tr, _ := RandomTree(taxaNames(8), rng, 0.1)
	calls := 0
	count, err := tr.Rearrangements(2, func(*Tree, RearrangeCandidate) bool {
		calls++
		return calls < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || count != 3 {
		t.Errorf("early stop: calls=%d count=%d, want 3", calls, count)
	}
	if err := tr.Validate(true); err != nil {
		t.Errorf("tree invalid after early stop: %v", err)
	}
}

func TestRearrangementsSmallTrees(t *testing.T) {
	tr, _ := Triple(taxaNames(3), 0, 1, 2)
	count, err := tr.Rearrangements(1, func(*Tree, RearrangeCandidate) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("3-leaf tree gave %d rearrangements, want 0", count)
	}
	if _, err := tr.Rearrangements(0, nil); err == nil {
		t.Error("extent 0 should fail")
	}
}

func TestInsertionEdgesCount(t *testing.T) {
	// Adding the i-th taxon to a tree with i-1 leaves offers 2i-5 places.
	rng := rand.New(rand.NewSource(99))
	for _, i := range []int{4, 5, 8, 12} {
		tr, _ := RandomTree(taxaNames(i-1), rng, 0.1)
		if got := len(tr.InsertionEdges()); got != 2*i-5 {
			t.Errorf("i=%d: %d insertion edges, want %d", i, got, 2*i-5)
		}
	}
}

// TestInsertionsDistinctTopologies: the 2i-5 insertion points give 2i-5
// pairwise distinct topologies.
func TestInsertionsDistinctTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr, _ := RandomTree(taxaNames(7), rng, 0.1) // uses taxa 0..6 of 7
	names := taxaNames(8)
	tr7, _ := RandomTree(names[:7], rng, 0.1)
	_ = tr
	// Rebuild over the 8-taxon name set so taxon 7 can be inserted.
	tr8 := New(names)
	base, err := ParseNewick(tr7.Newick(), names[:7])
	if err != nil {
		t.Fatal(err)
	}
	_ = base
	// Simpler: grow a tree over 8 names with 7 taxa inserted.
	tr8, _ = Triple(names, 0, 1, 2)
	for i := 3; i < 7; i++ {
		e := tr8.Edges()[rng.Intn(len(tr8.Edges()))]
		if _, err := tr8.InsertLeaf(i, e); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for _, e := range tr8.InsertionEdges() {
		cand := tr8.Clone()
		ca := cand.Nodes[e.A.ID]
		cb := cand.Nodes[e.B.ID]
		if _, err := cand.InsertLeaf(7, Edge{ca, cb}); err != nil {
			t.Fatal(err)
		}
		key := cand.Topology()
		if seen[key] {
			t.Errorf("duplicate insertion topology at edge %d-%d", e.A.ID, e.B.ID)
		}
		seen[key] = true
	}
	if len(seen) != 2*8-5 {
		t.Errorf("%d distinct insertion topologies, want %d", len(seen), 2*8-5)
	}
}
