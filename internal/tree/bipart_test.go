package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitsCount(t *testing.T) {
	// An n-leaf binary tree has n-3 internal edges, hence n-3 nontrivial
	// splits.
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 6, 9, 20} {
		tr, _ := RandomTree(taxaNames(n), rng, 0.1)
		if got := len(tr.Splits()); got != n-3 {
			t.Errorf("n=%d: %d splits, want %d", n, got, n-3)
		}
	}
}

func TestSplitNormalization(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	tr, err := ParseNewick("((a,b),(c,d));", names)
	if err != nil {
		t.Fatal(err)
	}
	sp := tr.Splits()
	if len(sp) != 1 {
		t.Fatalf("%d splits, want 1", len(sp))
	}
	for _, s := range sp {
		if s.Contains(0) {
			t.Error("stored side must exclude taxon 0")
		}
		if s.Size() != 2 {
			t.Errorf("split size %d, want 2", s.Size())
		}
		m := s.Members()
		if len(m) != 2 || m[0] != 2 || m[1] != 3 {
			t.Errorf("members = %v, want [2 3]", m)
		}
	}
}

func TestRobinsonFouldsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		tr, err := RandomTree(taxaNames(n), rng, 0.1)
		if err != nil {
			return false
		}
		d, norm, err := RobinsonFoulds(tr, tr.Clone())
		return err == nil && d == 0 && norm == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRobinsonFouldsSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		t1, _ := RandomTree(taxaNames(n), rng, 0.1)
		t2, _ := RandomTree(taxaNames(n), rng, 0.1)
		d12, _, e1 := RobinsonFoulds(t1, t2)
		d21, _, e2 := RobinsonFoulds(t2, t1)
		return e1 == nil && e2 == nil && d12 == d21
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRobinsonFouldsNNIDistance(t *testing.T) {
	// An NNI neighbor differs in exactly one split: RF distance 2.
	rng := rand.New(rand.NewSource(42))
	tr, _ := RandomTree(taxaNames(8), rng, 0.1)
	orig := tr.Clone() // tr itself is mutated during enumeration
	checked := 0
	_, err := tr.Rearrangements(1, func(view *Tree, c RearrangeCandidate) bool {
		cp, err := ParseNewick(view.Newick(), view.Taxa)
		if err != nil {
			t.Fatal(err)
		}
		d, _, err := RobinsonFoulds(orig, cp)
		if err != nil {
			t.Fatal(err)
		}
		if d != 2 {
			t.Errorf("NNI neighbor at RF distance %d, want 2", d)
		}
		checked++
		return checked < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no NNI neighbors checked")
	}
}

func TestSameTopology(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	t1, _ := ParseNewick("((a,b),c,(d,e));", names)
	t2, _ := ParseNewick("((b:2,a:1):3,(e,d):1,c:9);", names)
	t3, _ := ParseNewick("((a,c),b,(d,e));", names)
	if !SameTopology(t1, t2) {
		t.Error("t1 and t2 should match (lengths/order differ only)")
	}
	if SameTopology(t1, t3) {
		t.Error("t1 and t3 should differ")
	}
}

func TestSplitCompatibility(t *testing.T) {
	names := taxaNames(6)
	t1, _ := ParseNewick("(((t00,t01),t02),t03,(t04,t05));", names)
	sp := t1.Splits()
	// All splits of one tree are pairwise compatible.
	var list []Split
	for _, s := range sp {
		list = append(list, s)
	}
	for i := range list {
		for j := range list {
			if !list[i].CompatibleWith(list[j]) {
				t.Errorf("splits of one tree must be compatible")
			}
		}
	}
	// {t01,t02} vs {t02,t03} conflict (overlap, neither nested).
	t2, _ := ParseNewick("((t01,t02),t00,(t03,(t04,t05)));", names)
	t3, _ := ParseNewick("((t02,t03),t00,(t01,(t04,t05)));", names)
	var s2, s3 Split
	for _, s := range t2.Splits() {
		if s.Size() == 2 && s.Contains(1) { // {t01,t02}
			s2 = s
		}
	}
	for _, s := range t3.Splits() {
		if s.Size() == 2 && s.Contains(3) { // {t02,t03}
			s3 = s
		}
	}
	if s2.CompatibleWith(s3) {
		t.Error("overlapping non-nested splits should be incompatible")
	}
}

func TestMajorityRuleConsensusUnanimous(t *testing.T) {
	names := taxaNames(7)
	rng := rand.New(rand.NewSource(9))
	tr, _ := RandomTree(names, rng, 0.1)
	var trees []*Tree
	for i := 0; i < 5; i++ {
		trees = append(trees, tr.Clone())
	}
	res, err := MajorityRule(trees, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !SameTopology(res.Tree, tr) {
		t.Errorf("consensus of identical trees differs:\n%s\n%s", res.Tree.Topology(), tr.Topology())
	}
	for k, f := range res.Support {
		if f != 1 {
			t.Errorf("support of %s = %g, want 1", k, f)
		}
	}
}

func TestMajorityRuleConsensusMixed(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	// Two trees share split {d,e}; they disagree about {a,b} vs {a,c}.
	t1, _ := ParseNewick("((a,b),c,(d,e));", names)
	t2, _ := ParseNewick("((a,c),b,(d,e));", names)
	t3, _ := ParseNewick("((a,b),c,(d,e));", names)
	res, err := MajorityRule([]*Tree{t1, t2, t3}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// {d,e} in 3/3, {a,b} in 2/3 -> both kept; {a,c} 1/3 dropped.
	if len(res.Support) != 2 {
		t.Fatalf("kept %d splits, want 2 (%v)", len(res.Support), res.Support)
	}
	if !SameTopology(res.Tree, t1) {
		t.Errorf("consensus should equal t1's topology, got %s", res.Tree.Topology())
	}
}

func TestMajorityRuleConsensusPolytomy(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	t1, _ := ParseNewick("((a,b),c,(d,e));", names)
	t2, _ := ParseNewick("((a,c),b,(d,e));", names)
	res, err := MajorityRule([]*Tree{t1, t2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Only {d,e} is unanimous; the rest collapses to a polytomy.
	if len(res.Support) != 1 {
		t.Fatalf("kept %d splits, want 1", len(res.Support))
	}
	if err := res.Tree.Validate(false); err != nil {
		t.Fatal(err)
	}
	if res.Tree.NumLeaves() != 5 {
		t.Errorf("consensus has %d leaves, want 5", res.Tree.NumLeaves())
	}
	if len(res.Tree.Splits()) != 1 {
		t.Errorf("consensus has %d splits, want 1", len(res.Tree.Splits()))
	}
}

func TestMajorityRuleErrors(t *testing.T) {
	if _, err := MajorityRule(nil, 0.5); err == nil {
		t.Error("empty input should fail")
	}
	names := taxaNames(4)
	tr, _ := ParseNewick("((t00,t01),t02,t03);", names)
	if _, err := MajorityRule([]*Tree{tr}, 0.3); err == nil {
		t.Error("threshold below 0.5 should fail")
	}
	other, _ := ParseNewick("((t00,t01),t02,(t03,t04));", taxaNames(5))
	if _, err := MajorityRule([]*Tree{tr, other}, 0.5); err == nil {
		t.Error("mismatched taxon sets should fail")
	}
}

func TestConsensusFrequenciesRecorded(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	t1, _ := ParseNewick("((a,b),c,(d,e));", names)
	t2, _ := ParseNewick("((a,c),b,(d,e));", names)
	res, err := MajorityRule([]*Tree{t1, t2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// SplitFreq includes the dropped minority splits.
	if len(res.SplitFreq) != 3 {
		t.Errorf("SplitFreq has %d entries, want 3", len(res.SplitFreq))
	}
}

func TestBranchScoreIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	tr, _ := RandomTree(taxaNames(9), rng, 0.1)
	d, err := BranchScore(tr, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("self distance %g", d)
	}
}

func TestBranchScoreLengthSensitive(t *testing.T) {
	// Same topology, one branch stretched by delta: distance == delta.
	names := []string{"a", "b", "c", "d"}
	t1, _ := ParseNewick("((a:1,b:1):1,c:1,d:1);", names)
	t2, _ := ParseNewick("((a:1.5,b:1):1,c:1,d:1);", names)
	d, err := BranchScore(t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 1e-12 {
		t.Errorf("distance %g, want 0.5", d)
	}
	// RF is blind to this difference.
	rf, _, _ := RobinsonFoulds(t1, t2)
	if rf != 0 {
		t.Errorf("RF %d, want 0", rf)
	}
}

func TestBranchScoreTopologySensitive(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	t1, _ := ParseNewick("((a:1,b:1):2,c:1,d:1);", names)
	t2, _ := ParseNewick("((a:1,c:1):2,b:1,d:1);", names)
	d, err := BranchScore(t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	// The two internal splits differ: sqrt(2^2 + 2^2).
	if math.Abs(d-math.Sqrt(8)) > 1e-12 {
		t.Errorf("distance %g, want %g", d, math.Sqrt(8))
	}
}

func TestBranchScoreSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		t1, _ := RandomTree(taxaNames(n), rng, 0.2)
		t2, _ := RandomTree(taxaNames(n), rng, 0.2)
		d12, e1 := BranchScore(t1, t2)
		d21, e2 := BranchScore(t2, t1)
		return e1 == nil && e2 == nil && math.Abs(d12-d21) < 1e-12 && d12 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBranchScoreErrors(t *testing.T) {
	t1, _ := ParseNewick("((a,b),c,d);", []string{"a", "b", "c", "d"})
	t2, _ := ParseNewick("((a,b),c,(d,e));", []string{"a", "b", "c", "d", "e"})
	if _, err := BranchScore(t1, t2); err == nil {
		t.Error("mismatched taxon sets accepted")
	}
}

// TestConsensusOfCopiesQuick: for random trees, the majority rule
// consensus of k identical copies reproduces the tree, and all its splits
// report unanimous support.
func TestConsensusOfCopiesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		k := 2 + rng.Intn(4)
		tr, err := RandomTree(taxaNames(n), rng, 0.1)
		if err != nil {
			return false
		}
		var trees []*Tree
		for i := 0; i < k; i++ {
			trees = append(trees, tr.Clone())
		}
		res, err := MajorityRule(trees, 0.5)
		if err != nil || !SameTopology(res.Tree, tr) {
			return false
		}
		for _, f := range res.Support {
			if f != 1 {
				return false
			}
		}
		return len(res.Support) == n-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestSplitsLaminarQuick: the splits of any single tree are pairwise
// compatible (laminar family), a core invariant the consensus builder
// relies on.
func TestSplitsLaminarQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		tr, err := RandomTree(taxaNames(n), rng, 0.1)
		if err != nil {
			return false
		}
		var list []Split
		for _, s := range tr.Splits() {
			list = append(list, s)
		}
		for i := range list {
			for j := range list {
				if !list[i].CompatibleWith(list[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
