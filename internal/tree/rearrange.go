package tree

import "fmt"

// Candidate topology enumeration.
//
// Step 3 of the fastDNAml algorithm adds taxon i to every topologically
// distinct place in the current tree: each of its 2(i-1)-3 = 2i-5 edges.
// Steps 4 and 5 perform local rearrangements: every subtree is moved
// across one or more internal vertices, up to a user-set extent; crossing
// a single vertex yields the 2i-6 nearest-neighbor-interchange topologies.
// The master enumerates these candidates and dispatches each to a worker
// (paper Fig 2), so enumeration must be deterministic and must not count
// duplicate topologies twice.

// InsertionEdges returns the edges at which a new taxon can be inserted:
// every edge of the tree, 2i-5 of them for a tree with i-1 leaves... and
// deterministic order. (For a tree with m leaves there are 2m-3 edges.)
func (t *Tree) InsertionEdges() []Edge { return t.Edges() }

// RearrangeCandidate describes one subtree-regraft move: the subtree
// rooted at Subtree (as seen from its attachment) is pruned and reattached
// onto TargetEdge, which lies within the configured extent of the original
// attachment.
type RearrangeCandidate struct {
	// Subtree is the root node of the moved subtree.
	Subtree *Node
	// Attach is the (dissolved) attachment's surviving neighbor pair,
	// recorded for diagnostics.
	Attach Edge
	// Target is the edge the subtree was regrafted onto, in the
	// pre-mutation tree's node identities.
	Target Edge
	// Distance is the number of vertices crossed (1..extent).
	Distance int
	// PruneAt is the node ID of the dissolved attachment vertex in the
	// pre-mutation tree, so the move can be replayed with ApplySPR on
	// another copy of the same tree (node IDs are preserved by parsing
	// the same Newick string or by Clone).
	PruneAt int
}

// SPRMove identifies one subtree-prune-regraft move by node IDs in the
// unmutated tree: the subtree rooted at S (seen from its attachment P) is
// pruned, P is dissolved, and S is regrafted onto the edge (TA, TB).
// Because it references only IDs, a move enumerated on one copy of a tree
// can be applied to any other copy with the same node numbering, which is
// how search workers replay the master's candidate moves against their
// own cached base tree.
type SPRMove struct {
	P, S, TA, TB int
}

// Move returns c as an ID-based move replayable with ApplySPR.
func (c RearrangeCandidate) Move() SPRMove {
	return SPRMove{P: c.PruneAt, S: c.Subtree.ID, TA: c.Target.A.ID, TB: c.Target.B.ID}
}

// SPRUndo records everything needed to reverse an ApplySPR exactly:
// after Undo the tree has the original topology with the original node
// IDs in the original slots, and every branch touched by the apply/undo
// cycle is restored to its pre-move length.
type SPRUndo struct {
	t *Tree
	// Mid is the regraft junction node created by the move; callers use
	// it to center local branch optimization on the changed region. It is
	// invalid after Undo.
	Mid *Node
	// Joined is the edge that replaced the dissolved attachment; its
	// endpoints remain valid after Undo.
	Joined    Edge
	s         *Node
	ta, tb    *Node
	targetLen float64
	others    []*Node
	lens      []float64
	lps       float64
}

// ApplySPR replays a move produced by RearrangeCandidate.Move (or built
// from IDs directly) on t, returning an undo record. The tree must be
// unrooted binary and the IDs must describe a live prune/regraft pair.
func (t *Tree) ApplySPR(m SPRMove) (*SPRUndo, error) {
	node := func(id int) (*Node, error) {
		if id < 0 || id >= len(t.Nodes) || t.Nodes[id] == nil {
			return nil, fmt.Errorf("tree: SPR move references dead node %d", id)
		}
		return t.Nodes[id], nil
	}
	p, err := node(m.P)
	if err != nil {
		return nil, err
	}
	s, err := node(m.S)
	if err != nil {
		return nil, err
	}
	ta, err := node(m.TA)
	if err != nil {
		return nil, err
	}
	tb, err := node(m.TB)
	if err != nil {
		return nil, err
	}
	u := &SPRUndo{t: t, s: s, ta: ta, tb: tb}
	for i, nb := range p.Nbr {
		if nb != s {
			u.others = append(u.others, nb)
			u.lens = append(u.lens, p.Len[i])
		}
	}
	u.lps = p.LenTo(s)
	u.Joined, err = t.PruneSubtree(p, s)
	if err != nil {
		return nil, err
	}
	if ta.NbrIndex(tb) < 0 {
		// Re-split the joined edge before reporting the error so the
		// tree is left intact.
		undoPrune(t, u.Joined, s, u.others, u.lens, u.lps)
		return nil, fmt.Errorf("tree: SPR target %d-%d is not an edge after pruning", m.TA, m.TB)
	}
	u.targetLen = ta.LenTo(tb)
	u.Mid, err = t.RegraftSubtree(s, Edge{ta, tb}, u.lps)
	if err != nil {
		undoPrune(t, u.Joined, s, u.others, u.lens, u.lps)
		return nil, err
	}
	return u, nil
}

// Undo reverses the move. Branch lengths changed by optimization between
// Apply and Undo are restored on the edges the move itself touched; the
// caller is responsible for any other edges it modified.
func (u *SPRUndo) Undo() {
	undoRegraft(u.t, u.Mid, u.s)
	SetLen(u.ta, u.tb, u.targetLen)
	undoPrune(u.t, u.Joined, u.s, u.others, u.lens, u.lps)
}

// Rearrangements enumerates the topologically distinct trees reachable by
// moving any subtree across at most extent internal vertices, the
// paper's steps 4-5. For each distinct candidate it calls fn with a
// mutated view of the tree (valid only during the call; the mutation is
// undone afterwards) and the candidate description. fn returning false
// stops the enumeration early. It returns the number of distinct
// candidates visited.
//
// The tree must be unrooted binary with at least 4 leaves; extent must be
// at least 1. Candidates whose topology equals the input topology are
// skipped, as are duplicates reachable by several moves.
func (t *Tree) Rearrangements(extent int, fn func(view *Tree, cand RearrangeCandidate) bool) (int, error) {
	if extent < 1 {
		return 0, fmt.Errorf("tree: rearrangement extent %d, must be >= 1", extent)
	}
	if err := t.Validate(true); err != nil {
		return 0, err
	}
	if t.NumLeaves() < 4 {
		return 0, nil // a 3-leaf tree has a unique topology
	}
	original := t.Topology()
	seen := map[string]bool{original: true}
	count := 0

	// Enumerate directed edges p->s with p internal: pruning s's subtree
	// dissolves p. Snapshot the edges as ID pairs: the mutate/undo cycle
	// releases and recreates the attachment node, so pointers captured
	// here would go stale, but undo restores the same ID in the same
	// slot with the same adjacency.
	type directed struct{ p, s int }
	var moves []directed
	for _, n := range t.Nodes {
		if n == nil || n.Leaf() {
			continue
		}
		for _, m := range n.Nbr {
			moves = append(moves, directed{n.ID, m.ID})
		}
	}

	for _, mv := range moves {
		p, s := t.Nodes[mv.p], t.Nodes[mv.s]
		// Record the dissolved geometry for undo.
		var others []*Node
		var lens []float64
		for i, nb := range p.Nbr {
			if nb != s {
				others = append(others, nb)
				lens = append(lens, p.Len[i])
			}
		}
		lps := p.LenTo(s)
		joined, err := t.PruneSubtree(p, s)
		if err != nil {
			return count, err
		}

		// BFS over edges of the remaining tree from the joined edge.
		targets := edgesWithin(joined, extent)

		stop := false
		for _, tg := range targets {
			mid, err := t.RegraftSubtree(s, tg.e, lps)
			if err != nil {
				return count, err
			}
			key := t.Topology()
			if !seen[key] {
				seen[key] = true
				count++
				if !fn(t, RearrangeCandidate{Subtree: s, Attach: joined, Target: tg.e, Distance: tg.dist, PruneAt: mv.p}) {
					stop = true
				}
			}
			// Undo the regraft: dissolve mid, restoring tg.e exactly.
			undoRegraft(t, mid, s)
			if stop {
				break
			}
		}

		// Undo the prune: split the joined edge with a fresh attachment
		// node restoring the original lengths.
		undoPrune(t, joined, s, others, lens, lps)
		if stop {
			break
		}
	}
	return count, nil
}

// edgeTarget is a regraft target with its vertex-crossing distance.
type edgeTarget struct {
	e    Edge
	dist int
}

// edgesWithin lists the edges reachable from start by crossing at most
// extent vertices, excluding start itself, in deterministic order.
func edgesWithin(start Edge, extent int) []edgeTarget {
	type dirEdge struct {
		from, to *Node
		dist     int
	}
	var out []edgeTarget
	seen := map[[2]int]bool{key2(start.A, start.B): true}
	frontier := []dirEdge{
		{start.A, start.B, 0}, // expand across B
		{start.B, start.A, 0}, // expand across A
	}
	for len(frontier) > 0 {
		cur := frontier[0]
		frontier = frontier[1:]
		if cur.dist >= extent {
			continue
		}
		across := cur.to
		for _, nb := range across.Nbr {
			if nb == cur.from {
				continue
			}
			k := key2(across, nb)
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, edgeTarget{Edge{across, nb}, cur.dist + 1})
			frontier = append(frontier, dirEdge{across, nb, cur.dist + 1})
		}
	}
	return out
}

func key2(a, b *Node) [2]int {
	if a.ID < b.ID {
		return [2]int{a.ID, b.ID}
	}
	return [2]int{b.ID, a.ID}
}

// undoRegraft dissolves the attachment node mid created by RegraftSubtree,
// restoring the split edge with its pre-split length.
func undoRegraft(t *Tree, mid, s *Node) {
	disconnect(mid, s)
	a, b := mid.Nbr[0], mid.Nbr[1]
	la, lb := mid.Len[0], mid.Len[1]
	disconnect(mid, a)
	disconnect(mid, b)
	connect(a, b, la+lb)
	t.releaseNode(mid)
}

// undoPrune reverses PruneSubtree: it splits the joined edge with a new
// attachment node connected to others[0] and others[1] at their original
// lengths and reattaches s at length lps.
func undoPrune(t *Tree, joined Edge, s *Node, others []*Node, lens []float64, lps float64) {
	mid := t.newNode(-1)
	disconnect(joined.A, joined.B)
	// joined.A/B correspond to others[0]/others[1] in some order.
	if joined.A == others[0] {
		connect(others[0], mid, lens[0])
		connect(mid, others[1], lens[1])
	} else {
		connect(others[1], mid, lens[1])
		connect(mid, others[0], lens[0])
	}
	connect(mid, s, lps)
}
