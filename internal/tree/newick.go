package tree

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Newick support. Trees travel between the master, foreman, and workers as
// Newick strings (the paper's processes exchange ASCII-encoded tree files),
// so parsing and writing must round-trip topology and branch lengths
// exactly for the parallel runtime to be correct.

// WriteNewickOptions control Newick output.
type WriteNewickOptions struct {
	// Lengths includes branch lengths (":0.123456") when true.
	Lengths bool
	// Canonical orders subtrees by their smallest contained taxon index
	// and anchors the output at the leaf with the smallest taxon, giving
	// a unique string per (topology, lengths) pair.
	Canonical bool
	// Precision is the number of significant digits for lengths
	// (9 when zero).
	Precision int
}

// Newick renders the tree with lengths, canonically ordered.
func (t *Tree) Newick() string {
	s, err := t.WriteNewick(WriteNewickOptions{Lengths: true, Canonical: true})
	if err != nil {
		return fmt.Sprintf("<invalid tree: %v>", err)
	}
	return s
}

// Topology renders the tree canonically without branch lengths; equal
// strings mean equal unrooted topologies.
func (t *Tree) Topology() string {
	s, err := t.WriteNewick(WriteNewickOptions{Canonical: true})
	if err != nil {
		return fmt.Sprintf("<invalid tree: %v>", err)
	}
	return s
}

// WriteNewick renders the tree as a Newick string terminated by ';'.
func (t *Tree) WriteNewick(opt WriteNewickOptions) (string, error) {
	anchor := t.AnyNode()
	if anchor == nil {
		return "", fmt.Errorf("tree: empty tree")
	}
	if opt.Canonical {
		// Anchor at the attachment of the smallest-taxon leaf so the
		// rendering is rooting-invariant.
		taxa := t.TaxaInTree()
		leaf := t.LeafByTaxon(taxa[0])
		if leaf.Degree() > 0 {
			anchor = leaf.Nbr[0]
		} else {
			anchor = leaf
		}
	}
	prec := opt.Precision
	if prec <= 0 {
		prec = 9
	}
	// render returns the subtree's text and its smallest contained taxon.
	var render func(n, parent *Node) (string, int)
	render = func(n, parent *Node) (string, int) {
		if n.Leaf() && (parent != nil || n.Degree() == 0) {
			return quoteLabel(t.Taxa[n.Taxon]), n.Taxon
		}
		type child struct {
			text string
			min  int
		}
		var kids []child
		for _, m := range n.Nbr {
			if m == parent {
				continue
			}
			text, minTax := render(m, n)
			if opt.Lengths {
				text += ":" + strconv.FormatFloat(n.LenTo(m), 'g', prec, 64)
			}
			kids = append(kids, child{text, minTax})
		}
		if opt.Canonical {
			sort.Slice(kids, func(i, j int) bool { return kids[i].min < kids[j].min })
		}
		var b strings.Builder
		b.WriteByte('(')
		for i, k := range kids {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(k.text)
		}
		b.WriteByte(')')
		min := math.MaxInt32
		for _, k := range kids {
			if k.min < min {
				min = k.min
			}
		}
		if n.Leaf() {
			// A leaf used as the traversal root still prints its label.
			b.WriteString(quoteLabel(t.Taxa[n.Taxon]))
			if n.Taxon < min {
				min = n.Taxon
			}
		}
		return b.String(), min
	}
	text, _ := render(anchor, nil)
	return text + ";", nil
}

// quoteLabel quotes a taxon label when it contains Newick metacharacters.
func quoteLabel(s string) string {
	if strings.ContainsAny(s, "();:, \t'[]") {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	return s
}

// ParseNewick parses a Newick string into an unrooted tree over the given
// taxon set. Labels must name members of taxa. Rooted inputs (a top-level
// bifurcation) are unrooted by merging the two root edges. Internal labels
// and bracket comments are ignored.
func ParseNewick(s string, taxa []string) (*Tree, error) {
	idx := make(map[string]int, len(taxa))
	for i, name := range taxa {
		if _, dup := idx[name]; dup {
			return nil, fmt.Errorf("newick: duplicate taxon label %q", name)
		}
		idx[name] = i
	}
	p := &newickParser{src: s, taxa: idx}
	t := New(taxa)
	root, _, err := p.parseSubtree(t)
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == ';' {
		p.pos++
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("newick: trailing input at offset %d", p.pos)
	}
	if root == nil {
		return nil, fmt.Errorf("newick: empty input")
	}
	// Unroot a rooted (degree-2) root by dissolving it.
	if !root.Leaf() && root.Degree() == 2 {
		a, b := root.Nbr[0], root.Nbr[1]
		la, lb := root.Len[0], root.Len[1]
		disconnect(root, a)
		disconnect(root, b)
		connect(a, b, la+lb)
		t.releaseNode(root)
	}
	if err := t.Validate(false); err != nil {
		return nil, fmt.Errorf("newick: %w", err)
	}
	return t, nil
}

type newickParser struct {
	src  string
	pos  int
	taxa map[string]int
}

func (p *newickParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		case '[': // bracket comment
			end := strings.IndexByte(p.src[p.pos:], ']')
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += end + 1
		default:
			return
		}
	}
}

// parseSubtree parses a subtree and returns its root node and the branch
// length annotated on it (0 when absent).
func (p *newickParser) parseSubtree(t *Tree) (*Node, float64, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, 0, fmt.Errorf("newick: unexpected end of input")
	}
	var n *Node
	if p.src[p.pos] == '(' {
		p.pos++
		n = t.newNode(-1)
		for {
			child, clen, err := p.parseSubtree(t)
			if err != nil {
				return nil, 0, err
			}
			connect(n, child, clen)
			p.skipSpace()
			if p.pos >= len(p.src) {
				return nil, 0, fmt.Errorf("newick: unterminated '('")
			}
			if p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			if p.src[p.pos] == ')' {
				p.pos++
				break
			}
			return nil, 0, fmt.Errorf("newick: unexpected %q at offset %d", p.src[p.pos], p.pos)
		}
		// Optional internal label, ignored.
		if _, err := p.parseLabel(); err != nil {
			return nil, 0, err
		}
	} else {
		label, err := p.parseLabel()
		if err != nil {
			return nil, 0, err
		}
		if label == "" {
			return nil, 0, fmt.Errorf("newick: missing taxon label at offset %d", p.pos)
		}
		ti, ok := p.taxa[label]
		if !ok {
			return nil, 0, fmt.Errorf("newick: unknown taxon %q", label)
		}
		if t.LeafByTaxon(ti) != nil {
			return nil, 0, fmt.Errorf("newick: taxon %q appears twice", label)
		}
		n = t.newNode(ti)
	}
	length, err := p.parseLength()
	if err != nil {
		return nil, 0, err
	}
	return n, length, nil
}

func (p *newickParser) parseLabel() (string, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return "", nil
	}
	if p.src[p.pos] == '\'' {
		var b strings.Builder
		p.pos++
		for p.pos < len(p.src) {
			ch := p.src[p.pos]
			if ch == '\'' {
				if p.pos+1 < len(p.src) && p.src[p.pos+1] == '\'' {
					b.WriteByte('\'')
					p.pos += 2
					continue
				}
				p.pos++
				return b.String(), nil
			}
			b.WriteByte(ch)
			p.pos++
		}
		return "", fmt.Errorf("newick: unterminated quoted label")
	}
	start := p.pos
	for p.pos < len(p.src) {
		ch := p.src[p.pos]
		if ch == '(' || ch == ')' || ch == ',' || ch == ':' || ch == ';' ||
			ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r' || ch == '[' {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos], nil
}

func (p *newickParser) parseLength() (float64, error) {
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != ':' {
		return 0, nil
	}
	p.pos++
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		ch := p.src[p.pos]
		if (ch >= '0' && ch <= '9') || ch == '.' || ch == '-' || ch == '+' || ch == 'e' || ch == 'E' {
			p.pos++
			continue
		}
		break
	}
	v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return 0, fmt.Errorf("newick: bad branch length at offset %d: %w", start, err)
	}
	if v < 0 {
		v = 0
	}
	return v, nil
}
