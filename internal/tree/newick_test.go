package tree

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewickRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		names := taxaNames(n)
		tr, err := RandomTree(names, rng, 0.2)
		if err != nil {
			return false
		}
		s := tr.Newick()
		back, err := ParseNewick(s, names)
		if err != nil {
			return false
		}
		if back.Newick() != s {
			return false
		}
		return SameTopology(tr, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNewickCanonicalRootingInvariant(t *testing.T) {
	// The canonical rendering must be the same regardless of which node
	// the parse attached things to; re-parsing a non-canonical rendering
	// still canonicalizes identically.
	names := []string{"a", "b", "c", "d", "e"}
	t1, err := ParseNewick("((a:1,b:2):0.5,c:1,(d:1,e:1):0.25);", names)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := ParseNewick("((d:1,e:1):0.25,(b:2,a:1):0.5,c:1);", names)
	if err != nil {
		t.Fatal(err)
	}
	if t1.Newick() != t2.Newick() {
		t.Errorf("canonical forms differ:\n%s\n%s", t1.Newick(), t2.Newick())
	}
}

func TestNewickUnrootsRootedInput(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	tr, err := ParseNewick("((a:1,b:1):0.5,(c:1,d:1):0.5);", names)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(true); err != nil {
		t.Fatalf("rooted input should yield valid unrooted binary tree: %v", err)
	}
	// The two root edges merge: the internal edge should have length 1.
	for _, e := range tr.InternalEdges() {
		if math.Abs(e.Length()-1.0) > 1e-12 {
			t.Errorf("merged root edge length = %g, want 1", e.Length())
		}
	}
}

func TestNewickQuotedLabels(t *testing.T) {
	names := []string{"Homo sapiens", "Pan(troglodytes)", "it's"}
	tr, err := Triple(names, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Newick()
	if !strings.Contains(s, "'Homo sapiens'") {
		t.Errorf("expected quoted label in %s", s)
	}
	back, err := ParseNewick(s, names)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumLeaves() != 3 {
		t.Error("quoted round trip lost leaves")
	}
}

func TestNewickErrors(t *testing.T) {
	names := []string{"a", "b", "c"}
	bad := []string{
		"",
		"(a,b,c",        // unterminated
		"(a,b,zz);",     // unknown taxon
		"(a,b,a);",      // duplicate taxon
		"(a,b,c);extra", // trailing garbage
		"(a:x,b,c);",    // bad length
	}
	for _, s := range bad {
		if _, err := ParseNewick(s, names); err == nil {
			t.Errorf("ParseNewick(%q): expected error", s)
		}
	}
}

func TestNewickComments(t *testing.T) {
	names := []string{"a", "b", "c"}
	tr, err := ParseNewick("[comment](a[x]:1,b:2,c:3)[y];", names)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumLeaves() != 3 {
		t.Error("comment parsing lost leaves")
	}
}

func TestNewickNegativeLengthClamped(t *testing.T) {
	names := []string{"a", "b", "c"}
	tr, err := ParseNewick("(a:-0.5,b:1,c:1);", names)
	if err != nil {
		t.Fatal(err)
	}
	leaf := tr.LeafByTaxon(0)
	if leaf.Len[0] != 0 {
		t.Errorf("negative length should clamp to 0, got %g", leaf.Len[0])
	}
}

func TestTopologyIgnoresLengths(t *testing.T) {
	names := taxaNames(6)
	rng := rand.New(rand.NewSource(4))
	tr, _ := RandomTree(names, rng, 0.1)
	key1 := tr.Topology()
	for _, e := range tr.Edges() {
		SetLen(e.A, e.B, e.Length()*3+0.01)
	}
	if tr.Topology() != key1 {
		t.Error("Topology changed when only lengths changed")
	}
}

func TestParseNewickMultifurcating(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	tr, err := ParseNewick("(a,b,c,d,e);", names)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(false); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(true); err == nil {
		t.Error("star tree should fail binary validation")
	}
}
