package tree

import (
	"encoding/hex"
	"fmt"
	"math"
)

// Bipartition analysis. Every internal edge of an unrooted tree splits the
// taxon set in two; the multiset of these splits determines the topology
// uniquely, underlies the Robinson-Foulds distance, and drives majority
// rule consensus (paper §4: determining a consensus tree across random
// orderings).

// Split is a bipartition of the taxon set, normalized so the side NOT
// containing taxon 0 is stored.
type Split struct {
	bits []uint64
	n    int // total taxa
}

// newSplit builds a normalized split from a member bitset.
func newSplit(bits []uint64, n int) Split {
	s := Split{bits: bits, n: n}
	if s.Contains(0) {
		for i := range s.bits {
			s.bits[i] = ^s.bits[i]
		}
		// Clear bits beyond n.
		if rem := n % 64; rem != 0 {
			s.bits[len(s.bits)-1] &= (1 << uint(rem)) - 1
		}
	}
	return s
}

// Contains reports whether taxon i is in the stored side.
func (s Split) Contains(i int) bool {
	return s.bits[i/64]&(1<<(uint(i)%64)) != 0
}

// Size returns the number of taxa on the stored side.
func (s Split) Size() int {
	c := 0
	for _, w := range s.bits {
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}

// N returns the total number of taxa the split is over.
func (s Split) N() int { return s.n }

// Trivial reports whether the split separates fewer than two taxa from the
// rest (leaf edges induce trivial splits).
func (s Split) Trivial() bool {
	k := s.Size()
	return k < 2 || k > s.n-2
}

// Key returns a canonical string identity for the split.
func (s Split) Key() string {
	b := make([]byte, 8*len(s.bits))
	for i, w := range s.bits {
		for j := 0; j < 8; j++ {
			b[i*8+j] = byte(w >> (8 * uint(j)))
		}
	}
	return hex.EncodeToString(b)
}

// Members returns the sorted taxon indices on the stored side.
func (s Split) Members() []int {
	var out []int
	for i := 0; i < s.n; i++ {
		if s.Contains(i) {
			out = append(out, i)
		}
	}
	return out
}

// CompatibleWith reports whether two splits over the same taxon set can
// coexist in one tree: one of the four intersections of their sides must
// be empty. Both splits are stored on the side excluding taxon 0, so they
// are compatible iff they are nested or disjoint.
func (s Split) CompatibleWith(o Split) bool {
	if s.n != o.n {
		return false
	}
	interEmpty, sMinusO, oMinusS := true, true, true
	for i := range s.bits {
		a, b := s.bits[i], o.bits[i]
		if a&b != 0 {
			interEmpty = false
		}
		if a&^b != 0 {
			sMinusO = false
		}
		if b&^a != 0 {
			oMinusS = false
		}
	}
	// Neither side contains taxon 0, so the union never covers all taxa;
	// compatibility reduces to disjoint or nested.
	return interEmpty || sMinusO || oMinusS
}

// Splits returns the nontrivial splits induced by the tree's internal
// edges, keyed canonically. The tree may be multifurcating.
func (t *Tree) Splits() map[string]Split {
	n := len(t.Taxa)
	words := (n + 63) / 64
	out := make(map[string]Split)
	anchor := t.AnyNode()
	if anchor == nil {
		return out
	}
	// Post-order accumulation of taxon bitsets per directed edge.
	var below func(n0, parent *Node) []uint64
	below = func(n0, parent *Node) []uint64 {
		bits := make([]uint64, words)
		if n0.Leaf() {
			bits[n0.Taxon/64] |= 1 << (uint(n0.Taxon) % 64)
		}
		for _, m := range n0.Nbr {
			if m == parent {
				continue
			}
			sub := below(m, n0)
			for i := range bits {
				bits[i] |= sub[i]
			}
		}
		if parent != nil && !n0.Leaf() && !parent.Leaf() {
			sp := newSplit(append([]uint64(nil), bits...), n)
			if !sp.Trivial() {
				out[sp.Key()] = sp
			}
		}
		return bits
	}
	below(anchor, nil)
	return out
}

// RobinsonFoulds returns the symmetric-difference distance between the
// nontrivial split sets of two trees over the same taxon set, and the
// normalized distance in [0,1] (0 for identical topologies).
func RobinsonFoulds(a, b *Tree) (int, float64, error) {
	if len(a.Taxa) != len(b.Taxa) {
		return 0, 0, fmt.Errorf("tree: RF over different taxon sets (%d vs %d taxa)", len(a.Taxa), len(b.Taxa))
	}
	sa, sb := a.Splits(), b.Splits()
	diff := 0
	for k := range sa {
		if _, ok := sb[k]; !ok {
			diff++
		}
	}
	for k := range sb {
		if _, ok := sa[k]; !ok {
			diff++
		}
	}
	denom := len(sa) + len(sb)
	norm := 0.0
	if denom > 0 {
		norm = float64(diff) / float64(denom)
	}
	return diff, norm, nil
}

// splitLengths returns every split (including trivial leaf splits) with
// its branch length.
func (t *Tree) splitLengths() map[string]float64 {
	n := len(t.Taxa)
	words := (n + 63) / 64
	out := map[string]float64{}
	anchor := t.AnyNode()
	if anchor == nil {
		return out
	}
	var below func(n0, parent *Node) []uint64
	below = func(n0, parent *Node) []uint64 {
		bits := make([]uint64, words)
		if n0.Leaf() {
			bits[n0.Taxon/64] |= 1 << (uint(n0.Taxon) % 64)
		}
		for _, m := range n0.Nbr {
			if m == parent {
				continue
			}
			sub := below(m, n0)
			for i := range bits {
				bits[i] |= sub[i]
			}
		}
		if parent != nil {
			sp := newSplit(append([]uint64(nil), bits...), n)
			out[sp.Key()] += n0.LenTo(parent)
		}
		return bits
	}
	below(anchor, nil)
	return out
}

// BranchScore returns the Kuhner-Felsenstein branch score distance
// between two trees over the same taxon set: the square root of the
// summed squared differences of branch lengths over all splits (a split
// absent from a tree contributes length 0). Unlike Robinson-Foulds it
// weighs how much the trees disagree, not just whether they do.
func BranchScore(a, b *Tree) (float64, error) {
	if len(a.Taxa) != len(b.Taxa) {
		return 0, fmt.Errorf("tree: branch score over different taxon sets (%d vs %d taxa)", len(a.Taxa), len(b.Taxa))
	}
	la, lb := a.splitLengths(), b.splitLengths()
	sum := 0.0
	for k, va := range la {
		d := va - lb[k]
		sum += d * d
	}
	for k, vb := range lb {
		if _, ok := la[k]; !ok {
			sum += vb * vb
		}
	}
	return math.Sqrt(sum), nil
}

// SameTopology reports whether two trees over the same taxon set have
// identical unrooted topologies.
func SameTopology(a, b *Tree) bool {
	d, _, err := RobinsonFoulds(a, b)
	if err != nil {
		return false
	}
	if d != 0 {
		return false
	}
	// Same splits and same leaf sets imply same topology only when the
	// leaf sets match.
	at, bt := a.TaxaInTree(), b.TaxaInTree()
	if len(at) != len(bt) {
		return false
	}
	for i := range at {
		if at[i] != bt[i] {
			return false
		}
	}
	return true
}
