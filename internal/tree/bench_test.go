package tree

import (
	"math/rand"
	"testing"
)

func benchTree(b *testing.B, n int) *Tree {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	tr, err := RandomTree(taxaNames(n), rng, 0.1)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkNewickRoundTrip measures serialize+parse of a 150-taxon tree
// (the wire format of every dispatched task).
func BenchmarkNewickRoundTrip(b *testing.B) {
	tr := benchTree(b, 150)
	names := tr.Taxa
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tr.Newick()
		if _, err := ParseNewick(s, names); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRearrangementsExtent5 measures candidate enumeration at the
// paper's setting on a 50-taxon tree.
func BenchmarkRearrangementsExtent5(b *testing.B) {
	tr := benchTree(b, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Rearrangements(5, func(*Tree, RearrangeCandidate) bool { return true }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSplits measures bipartition extraction on a 150-taxon tree.
func BenchmarkSplits(b *testing.B) {
	tr := benchTree(b, 150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := len(tr.Splits()); got != 147 {
			b.Fatalf("%d splits", got)
		}
	}
}

// BenchmarkMajorityRule measures consensus over 100 trees of 50 taxa.
func BenchmarkMajorityRule(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	base := benchTree(b, 50)
	var trees []*Tree
	for i := 0; i < 100; i++ {
		trees = append(trees, base.Clone())
	}
	_ = rng
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MajorityRule(trees, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}
