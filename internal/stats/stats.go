// Package stats provides the small numeric and presentation helpers the
// benchmark harness uses to report the paper's tables and figures:
// summary statistics over repeated runs, speedup/efficiency math, fixed
// width tables, and ASCII log-scale charts standing in for Figures 3-4.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// GeoMean returns the geometric mean of positive values (0 if any is
// non-positive or the input is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Speedup returns serial/parallel (0 when parallel is 0).
func Speedup(serial, parallel float64) float64 {
	if parallel == 0 {
		return 0
	}
	return serial / parallel
}

// Efficiency returns speedup/processors (0 when processors is 0).
func Efficiency(speedup float64, processors int) float64 {
	if processors == 0 {
		return 0
	}
	return speedup / float64(processors)
}

// FormatDuration renders seconds humanely (the paper's figures span
// seconds to days).
func FormatDuration(seconds float64) string {
	switch {
	case seconds < 0:
		return "-" + FormatDuration(-seconds)
	case seconds < 120:
		return fmt.Sprintf("%.1fs", seconds)
	case seconds < 2*3600:
		return fmt.Sprintf("%.1fm", seconds/60)
	case seconds < 2*86400:
		return fmt.Sprintf("%.1fh", seconds/3600)
	default:
		return fmt.Sprintf("%.1fd", seconds/86400)
	}
}

// Table renders rows as a fixed-width text table with a header.
type Table struct {
	Headers []string
	Rows    [][]string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one labeled line of (x, y) points for ASCII charts.
type Series struct {
	Label  string
	X, Y   []float64
	Marker byte
}

// LogLogChart renders series on log-log axes as ASCII art, standing in
// for the paper's Figures 3 and 4.
func LogLogChart(title, xlabel, ylabel string, series []Series, width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 8 {
		height = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if s.X[i] <= 0 || s.Y[i] <= 0 {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if minX > maxX || minY > maxY {
		return title + ": no data\n"
	}
	if minX == maxX {
		maxX = minX * 2
	}
	if minY == maxY {
		maxY = minY * 2
	}
	lx0, lx1 := math.Log(minX), math.Log(maxX)
	ly0, ly1 := math.Log(minY), math.Log(maxY)

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		for i := range s.X {
			if s.X[i] <= 0 || s.Y[i] <= 0 {
				continue
			}
			cx := int((math.Log(s.X[i]) - lx0) / (lx1 - lx0) * float64(width-1))
			cy := int((math.Log(s.Y[i]) - ly0) / (ly1 - ly0) * float64(height-1))
			row := height - 1 - cy
			grid[row][cx] = marker
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%s (log scale)\n", ylabel)
	fmt.Fprintf(&b, "%10.3g +%s\n", maxY, strings.Repeat("-", width))
	for _, row := range grid {
		fmt.Fprintf(&b, "%10s |%s\n", "", string(row))
	}
	fmt.Fprintf(&b, "%10.3g +%s\n", minY, strings.Repeat("-", width))
	fmt.Fprintf(&b, "%10s  %-8.3g%s%8.3g\n", "", minX, strings.Repeat(" ", width-16), maxX)
	fmt.Fprintf(&b, "%10s  %s (log scale)\n", "", xlabel)
	for _, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = '*'
		}
		fmt.Fprintf(&b, "%12c %s\n", marker, s.Label)
	}
	return b.String()
}
