package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanMedianStd(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 10}
	if got := Mean(xs); got != 4 {
		t.Errorf("Mean = %g", got)
	}
	if got := Median(xs); got != 3 {
		t.Errorf("Median = %g", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("even Median = %g", got)
	}
	if got := StdDev(xs); math.Abs(got-3.5355) > 1e-3 {
		t.Errorf("StdDev = %g", got)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("empty-input conventions broken")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean = %g", got)
	}
	if GeoMean([]float64{1, 0}) != 0 || GeoMean(nil) != 0 {
		t.Error("degenerate GeoMean conventions broken")
	}
}

func TestSpeedupEfficiency(t *testing.T) {
	s := Speedup(100, 25)
	if s != 4 {
		t.Errorf("Speedup = %g", s)
	}
	if e := Efficiency(s, 8); e != 0.5 {
		t.Errorf("Efficiency = %g", e)
	}
	if Speedup(10, 0) != 0 || Efficiency(1, 0) != 0 {
		t.Error("zero-division conventions broken")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[float64]string{
		5:         "5.0s",
		90:        "90.0s",
		600:       "10.0m",
		7200:      "2.0h",
		86400 * 8: "8.0d",
	}
	for in, want := range cases {
		if got := FormatDuration(in); got != want {
			t.Errorf("FormatDuration(%g) = %q, want %q", in, got, want)
		}
	}
	if got := FormatDuration(-600); got != "-10.0m" {
		t.Errorf("negative = %q", got)
	}
}

func TestTableAlignment(t *testing.T) {
	tbl := &Table{Headers: []string{"P", "Time", "Speedup"}}
	tbl.Add("1", "100.0s", "1.00")
	tbl.Add("64", "2.5s", "40.00")
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "P ") || !strings.Contains(lines[0], "Speedup") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator: %q", lines[1])
	}
	// Columns align: header and rows have same prefix widths.
	if len(lines[2]) < len("1  100.0s") {
		t.Errorf("row too short: %q", lines[2])
	}
}

func TestLogLogChartContainsData(t *testing.T) {
	s := []Series{
		{Label: "50 taxa", X: []float64{1, 4, 16, 64}, Y: []float64{1000, 900, 200, 60}, Marker: 'a'},
		{Label: "150 taxa", X: []float64{1, 4, 16, 64}, Y: []float64{9000, 8000, 1800, 500}, Marker: 'c'},
	}
	out := LogLogChart("Figure 3", "Processors", "Seconds", s, 60, 16)
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "Processors") {
		t.Errorf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "50 taxa") || !strings.Contains(out, "150 taxa") {
		t.Errorf("legend missing:\n%s", out)
	}
	if strings.Count(out, "a") < 3 || strings.Count(out, "c") < 3 {
		t.Errorf("markers missing:\n%s", out)
	}
}

func TestLogLogChartDegenerate(t *testing.T) {
	out := LogLogChart("empty", "x", "y", nil, 40, 10)
	if !strings.Contains(out, "no data") {
		t.Errorf("degenerate chart: %q", out)
	}
	// Non-positive points are skipped, not fatal.
	out = LogLogChart("t", "x", "y", []Series{{Label: "s", X: []float64{0, 1}, Y: []float64{5, -2}}}, 40, 10)
	if !strings.Contains(out, "no data") {
		t.Errorf("all-invalid series should report no data, got:\n%s", out)
	}
}

// TestStatsQuickProperties: Mean is linear; StdDev is translation
// invariant.
func TestStatsQuickProperties(t *testing.T) {
	f := func(raw []float64, shift float64) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e8 {
				v = 1
			}
			xs = append(xs, v)
		}
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e8 {
			shift = 1
		}
		shifted := make([]float64, len(xs))
		for i := range xs {
			shifted[i] = xs[i] + shift
		}
		m1, m2 := Mean(xs), Mean(shifted)
		if math.Abs((m1+shift)-m2) > 1e-6*(1+math.Abs(m2)) {
			return false
		}
		s1, s2 := StdDev(xs), StdDev(shifted)
		return math.Abs(s1-s2) < 1e-6*(1+math.Abs(s1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
