package spsim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tree"
)

// Synthetic run logs. Running the real 150-taxon search serially takes
// days (the paper's own serial run was ~192 hours), so the paper-scale
// figures replay a *synthesized* schedule instead: the exact round
// structure of the algorithm (2i-5 insertion tasks per addition, the
// measured rearrangement candidate counts for the chosen extent, one
// trailing no-improvement round per rearrangement loop) with per-task
// costs drawn from a cost model calibrated against measured small runs
// (see cmd/scaling -exp calibrate and EXPERIMENTS.md). Every draw is
// seeded, so synthetic logs are reproducible.

// CostModel converts task shape into likelihood work units.
type CostModel struct {
	// QuickUnitsPerTaxonPattern scales a quick-scored candidate task:
	// units ~ coeff * taxaInTree * patterns.
	QuickUnitsPerTaxonPattern float64
	// SmoothUnitsPerTaxonPattern scales a full-smoothing task.
	SmoothUnitsPerTaxonPattern float64
	// Sigma is the lognormal spread of task costs; the paper attributes
	// the loose synchronization to "variation among trees in the number
	// of calculations required" (§2).
	Sigma float64
	// NewickBytesPerTaxon approximates the serialized size of a
	// candidate tree per contained taxon.
	NewickBytesPerTaxon float64
}

// DefaultCostModel returns coefficients fitted against measured searches
// (cmd/scaling -exp calibrate regenerates the fit; EXPERIMENTS.md records
// the values used here).
func DefaultCostModel() CostModel {
	return CostModel{
		QuickUnitsPerTaxonPattern:  810,
		SmoothUnitsPerTaxonPattern: 850,
		Sigma:                      0.25,
		NewickBytesPerTaxon:        22,
	}
}

// Shape describes a workload to synthesize.
type Shape struct {
	// Taxa is the number of sequences.
	Taxa int
	// Patterns is the number of distinct site patterns after
	// compression.
	Patterns int
	// Extent is the local rearrangement setting (paper tests: 5).
	Extent int
	// FinalExtent is the final pass setting (0 = same as Extent).
	FinalExtent int
	// Seed makes the synthesis deterministic.
	Seed int64
	// Cost is the task cost model (zero value = DefaultCostModel).
	Cost CostModel
}

// Synthesize builds a RunLog with the algorithm's round structure at the
// shape's scale.
func Synthesize(s Shape) (*RunLog, error) {
	if s.Taxa < 4 {
		return nil, fmt.Errorf("spsim: synthesize needs >= 4 taxa, got %d", s.Taxa)
	}
	if s.Patterns < 1 {
		return nil, fmt.Errorf("spsim: synthesize needs patterns, got %d", s.Patterns)
	}
	if s.Extent < 0 {
		return nil, fmt.Errorf("spsim: negative extent")
	}
	if s.FinalExtent == 0 {
		s.FinalExtent = s.Extent
	}
	if s.Cost == (CostModel{}) {
		s.Cost = DefaultCostModel()
	}
	rng := rand.New(rand.NewSource(s.Seed*2 + 1))
	counts := newCandidateCounter(s.Seed)

	log := &RunLog{Label: fmt.Sprintf("synthetic %d taxa x %d patterns extent %d", s.Taxa, s.Patterns, s.Extent)}

	quick := func(taxa int) float64 {
		mean := s.Cost.QuickUnitsPerTaxonPattern * float64(taxa) * float64(s.Patterns)
		return mean * math.Exp(s.Cost.Sigma*rng.NormFloat64())
	}
	smoothUnits := func(taxa int) float64 {
		mean := s.Cost.SmoothUnitsPerTaxonPattern * float64(taxa) * float64(s.Patterns)
		return mean * math.Exp(s.Cost.Sigma/2*rng.NormFloat64())
	}
	bytesFor := func(taxa, ntasks int) float64 {
		return s.Cost.NewickBytesPerTaxon * float64(taxa) * float64(ntasks)
	}
	addRound := func(kind string, taxa, ntasks int, full bool) {
		r := Round{Kind: kind, GenBytes: bytesFor(taxa, ntasks)}
		for t := 0; t < ntasks; t++ {
			if full {
				r.TaskUnits = append(r.TaskUnits, smoothUnits(taxa))
			} else {
				r.TaskUnits = append(r.TaskUnits, quick(taxa))
			}
		}
		log.Rounds = append(log.Rounds, r)
	}

	// Initial triple.
	addRound("init", 3, 1, true)

	// pImprove models how often a rearrangement round finds a better
	// tree: calibration against measured searches gives roughly one
	// improving round per taxa rounds (6-7% at 16-20 taxa; see
	// cmd/scaling -exp calibrate and EXPERIMENTS.md), declining within
	// a loop as the tree converges.
	pImprove := func(taxa, roundIdx int) float64 {
		p := 1.0 / float64(taxa)
		if p > 0.35 {
			p = 0.35
		}
		return p / float64(uint(1)<<uint(roundIdx))
	}

	rearrangeLoop := func(kind string, taxa, extent int) {
		if extent <= 0 {
			return
		}
		n := counts.count(taxa, extent)
		if n == 0 {
			return
		}
		for round := 0; ; round++ {
			addRound(kind, taxa, n, false)
			if rng.Float64() >= pImprove(taxa, round) || round > 30 {
				// Trailing round found no improvement: a speculating
				// master would have guessed this round's outcome and
				// overlapped the next round with it.
				log.Rounds[len(log.Rounds)-1].SpeculativeNext = true
				return
			}
			addRound("smooth", taxa, 1, true)
		}
	}

	for i := 4; i <= s.Taxa; i++ {
		addRound("add", i, 2*i-5, false)
		addRound("smooth", i, 1, true)
		if i < s.Taxa {
			rearrangeLoop("rearrange", i, s.Extent)
		}
	}
	rearrangeLoop("final", s.Taxa, s.FinalExtent)
	return log, nil
}

// candidateCounter returns the number of topologically distinct
// rearrangement candidates for an i-taxon tree at a given extent. Counts
// are exact (full enumeration on a representative random-addition tree)
// up to exactCountLimit taxa and linearly extrapolated beyond — the count
// grows linearly in i for fixed extent because each of the O(i) directed
// subtrees reaches a bounded number of target edges.
type candidateCounter struct {
	seed  int64
	cache map[[2]int]int
}

const (
	exactCountLimit = 40
	fitLo, fitHi    = 24, 40
)

func newCandidateCounter(seed int64) *candidateCounter {
	return &candidateCounter{seed: seed, cache: map[[2]int]int{}}
}

func (c *candidateCounter) count(taxa, extent int) int {
	if taxa < 4 {
		return 0
	}
	if extent == 1 {
		return 2*taxa - 6 // the NNI count, exact for every tree shape
	}
	if taxa <= exactCountLimit {
		return c.exact(taxa, extent)
	}
	// Linear fit through the exact counts at fitLo and fitHi.
	lo := float64(c.exact(fitLo, extent))
	hi := float64(c.exact(fitHi, extent))
	slope := (hi - lo) / float64(fitHi-fitLo)
	est := hi + slope*float64(taxa-fitHi)
	if est < 0 {
		est = 0
	}
	return int(est + 0.5)
}

func (c *candidateCounter) exact(taxa, extent int) int {
	key := [2]int{taxa, extent}
	if v, ok := c.cache[key]; ok {
		return v
	}
	names := make([]string, taxa)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	rng := rand.New(rand.NewSource(c.seed ^ int64(taxa*1000+extent)))
	tr, err := tree.RandomTree(names, rng, 0.1)
	if err != nil {
		c.cache[key] = 0
		return 0
	}
	n, err := tr.Rearrangements(extent, func(*tree.Tree, tree.RearrangeCandidate) bool { return true })
	if err != nil {
		n = 0
	}
	c.cache[key] = n
	return n
}
