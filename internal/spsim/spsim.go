// Package spsim is a deterministic discrete-event simulator of the
// paper's parallel runtime on an IBM RS/6000 SP-like cluster. It replays
// the fastDNAml dispatch discipline — a master generating candidate
// trees, a foreman feeding a pool of workers one tree at a time and
// collecting results, a loose barrier at the end of every round when the
// best tree is determined — over a log of rounds and per-task costs, for
// any processor count.
//
// This is the substitution for the paper's 64-processor Power3+ testbed
// (DESIGN.md §2): this reproduction runs on machines where 64-way wall
// clock measurements are impossible, but the *shape* of Figures 3 and 4
// is produced by the schedule structure the simulator models exactly —
// three processors dedicated to master/foreman/monitor (making 4
// processors slower than serial), near-linear scaling from 16 to 64, and
// the fall-off at 100-200 processors when round task counts approach the
// worker count (paper §3.2).
package spsim

import (
	"container/heap"
	"fmt"

	"repro/internal/mlsearch"
)

// Round is one dispatch round: the tasks the master generated and the
// serial bytes it produced while generating them.
type Round struct {
	// Kind labels the round ("add", "rearrange", ...), informational.
	Kind string
	// TaskUnits holds each task's cost in likelihood work units.
	TaskUnits []float64
	// GenBytes is the size of the candidate topologies the master
	// serialized (drives the master's serial time).
	GenBytes float64
	// SpeculativeNext marks a round whose outcome does not change the
	// following round's task list — a rearrangement round that finds no
	// better tree. A speculating master (Ceron's feature, §3.2) can
	// generate and dispatch the next round's trees without waiting for
	// this round's barrier.
	SpeculativeNext bool
}

// RunLog is the full schedule of a search: what the simulator replays.
type RunLog struct {
	// Rounds in execution order.
	Rounds []Round
	// Label describes the workload ("50taxa measured", ...).
	Label string
}

// TotalUnits sums every task's work units.
func (l *RunLog) TotalUnits() float64 {
	t := 0.0
	for _, r := range l.Rounds {
		for _, u := range r.TaskUnits {
			t += u
		}
	}
	return t
}

// TotalTasks counts the tasks.
func (l *RunLog) TotalTasks() int {
	n := 0
	for _, r := range l.Rounds {
		n += len(r.TaskUnits)
	}
	return n
}

// FromSearchResult converts a measured search's round log into a
// simulator RunLog (units = the engine's operation counters).
func FromSearchResult(res *mlsearch.SearchResult, label string) *RunLog {
	out := &RunLog{Label: label}
	for _, r := range res.Rounds {
		round := Round{Kind: r.Kind.String(), GenBytes: float64(r.GenBytes)}
		for _, t := range r.Tasks {
			round.TaskUnits = append(round.TaskUnits, float64(t.Ops))
		}
		out.Rounds = append(out.Rounds, round)
	}
	return out
}

// Cluster models the machine.
type Cluster struct {
	// Processors is the total processor count P. P = 1 simulates the
	// serial program (no control processors, no message costs).
	Processors int
	// Monitor dedicates a third control processor to instrumentation
	// (the paper's runs were fully instrumented: three processors of
	// control keep 4-processor runs slower than serial, §3.2).
	Monitor bool
	// UnitTime is seconds per likelihood work unit (calibrated so the
	// serial 150-taxon run lands near the paper's ~192 hours).
	UnitTime float64
	// DispatchLatency is the foreman's cost to send one task (s).
	DispatchLatency float64
	// ReturnLatency is the foreman's cost to receive one result (s).
	ReturnLatency float64
	// WorkerTaskOverhead is the per-task cost a worker pays beyond the
	// likelihood computation — receiving, parsing, and re-serializing
	// the tree. The serial program's worker "acts as a subroutine"
	// (paper §2) and pays none of it, which is why four processors run
	// slower than one (§3.2).
	WorkerTaskOverhead float64
	// MasterByteTime is the master's serial tree-generation cost per
	// serialized byte (s).
	MasterByteTime float64
	// RoundBarrier is the fixed cost of determining the round's best
	// tree and adopting it (s); this is the loose synchronization point
	// of §3.2.
	RoundBarrier float64
	// Speculative enables Ceron-style speculative evaluation (§3.2:
	// "Ceron's parallel DNAml implementation performs speculative
	// calculations based on the relatively low probability of a local
	// rearrangement improving the likelihood"; the paper planned to
	// study whether it would help fastDNAml). Rounds whose outcome is
	// correctly predicted (SpeculativeNext) merge with the next round's
	// dispatch, removing one barrier.
	Speculative bool
	// Startup is the fixed program start/stop overhead (s).
	Startup float64
}

// Workers returns the number of worker processors: P minus the control
// processors (master, foreman, and optionally monitor); the serial
// program (P = 1) "acts as a subroutine" so it counts one worker.
func (c Cluster) Workers() (int, error) {
	if c.Processors < 1 {
		return 0, fmt.Errorf("spsim: %d processors", c.Processors)
	}
	if c.Processors == 1 {
		return 1, nil
	}
	control := 2
	if c.Monitor {
		control = 3
	}
	w := c.Processors - control
	if w < 1 {
		return 0, fmt.Errorf("spsim: %d processors leave no workers (%d control)", c.Processors, control)
	}
	return w, nil
}

// SimResult is the simulated timing of one run.
type SimResult struct {
	// TotalSeconds is the simulated wall time.
	TotalSeconds float64
	// ComputeSeconds is the sum of pure task compute time (work
	// units x UnitTime), the serial lower bound on useful work.
	ComputeSeconds float64
	// MasterSeconds is the master's serial generation time.
	MasterSeconds float64
	// CommSeconds is the foreman's total dispatch/receive occupancy.
	CommSeconds float64
	// IdleFraction is the workers' average idle share of the run.
	IdleFraction float64
	// RoundSeconds is the per-round wall time.
	RoundSeconds []float64
}

// Simulate replays the log on the cluster.
func (c Cluster) Simulate(log *RunLog) (*SimResult, error) {
	w, err := c.Workers()
	if err != nil {
		return nil, err
	}
	serial := c.Processors == 1
	res := &SimResult{TotalSeconds: c.Startup}
	busy := 0.0
	rounds := log.Rounds
	if c.Speculative && !serial {
		rounds = mergeSpeculative(rounds)
	}
	for _, round := range rounds {
		gen := round.GenBytes * c.MasterByteTime
		res.MasterSeconds += gen
		var roundTime float64
		if serial {
			sum := 0.0
			for _, u := range round.TaskUnits {
				sum += u * c.UnitTime
			}
			roundTime = gen + sum + c.RoundBarrier
			busy += sum
			res.ComputeSeconds += sum
		} else {
			sched := c.scheduleRound(round.TaskUnits, w)
			roundTime = gen + sched.makespan + c.RoundBarrier
			busy += sched.busy
			res.ComputeSeconds += sched.busy
			res.CommSeconds += sched.comm
		}
		res.TotalSeconds += roundTime
		res.RoundSeconds = append(res.RoundSeconds, roundTime)
	}
	if res.TotalSeconds > 0 {
		capacity := res.TotalSeconds * float64(w)
		res.IdleFraction = 1 - busy/capacity
	}
	return res, nil
}

// mergeSpeculative coalesces each correctly-predicted round with its
// successor: the tasks of both dispatch as one batch with a single
// barrier, and the master's generation work for the successor overlaps
// the predecessor's computation (so only the larger GenBytes cost is
// charged). Chains of predictions merge transitively.
func mergeSpeculative(rounds []Round) []Round {
	var out []Round
	i := 0
	for i < len(rounds) {
		cur := Round{
			Kind:      rounds[i].Kind,
			TaskUnits: append([]float64(nil), rounds[i].TaskUnits...),
			GenBytes:  rounds[i].GenBytes,
		}
		for rounds[i].SpeculativeNext && i+1 < len(rounds) {
			i++
			cur.TaskUnits = append(cur.TaskUnits, rounds[i].TaskUnits...)
			if rounds[i].GenBytes > cur.GenBytes {
				cur.GenBytes = rounds[i].GenBytes
			}
			cur.Kind += "+" + rounds[i].Kind
			cur.SpeculativeNext = rounds[i].SpeculativeNext
		}
		cur.SpeculativeNext = false
		out = append(out, cur)
		i++
	}
	return out
}

// schedOutcome is one round's schedule summary.
type schedOutcome struct {
	makespan float64
	busy     float64 // total worker compute time
	comm     float64 // total foreman occupancy
}

// workerEvent orders worker completions.
type workerEvent struct {
	when   float64
	worker int
}

type eventHeap []workerEvent

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].when < h[j].when }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(workerEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// scheduleRound plays the foreman discipline: tasks go out in order, one
// send at a time (the foreman is a serial resource); each completion is
// received (ReturnLatency) and the next task dispatched. The round ends
// when the last result has been received.
func (c Cluster) scheduleRound(units []float64, workers int) schedOutcome {
	var out schedOutcome
	if len(units) == 0 {
		return out
	}
	foreman := 0.0
	next := 0
	var events eventHeap
	heap.Init(&events)

	dispatch := func(worker int) {
		u := units[next]*c.UnitTime + c.WorkerTaskOverhead
		next++
		foreman += c.DispatchLatency
		out.comm += c.DispatchLatency
		start := foreman // worker receives the task when the send completes
		heap.Push(&events, workerEvent{when: start + u, worker: worker})
		out.busy += u
	}

	for wkr := 0; wkr < workers && next < len(units); wkr++ {
		dispatch(wkr)
	}
	var lastDone float64
	for events.Len() > 0 {
		ev := heap.Pop(&events).(workerEvent)
		if ev.when > foreman {
			foreman = ev.when
		}
		foreman += c.ReturnLatency
		out.comm += c.ReturnLatency
		lastDone = foreman
		if next < len(units) {
			dispatch(ev.worker)
		}
	}
	out.makespan = lastDone
	return out
}

// ScalingPoint is one processor count's simulated performance.
type ScalingPoint struct {
	// Processors is P.
	Processors int
	// Seconds is the simulated wall time.
	Seconds float64
	// Speedup is serial time / this time.
	Speedup float64
	// Efficiency is Speedup / Processors.
	Efficiency float64
	// IdleFraction is the workers' idle share.
	IdleFraction float64
}

// Sweep simulates the log across processor counts, always including the
// serial baseline as the speedup reference (the paper presents scaling
// "in the most conservative fashion possible, using the serial version
// ... as the basis for comparison", §3.2).
func (c Cluster) Sweep(log *RunLog, processors []int) ([]ScalingPoint, error) {
	serialCluster := c
	serialCluster.Processors = 1
	serialRes, err := serialCluster.Simulate(log)
	if err != nil {
		return nil, err
	}
	var out []ScalingPoint
	for _, p := range processors {
		cc := c
		cc.Processors = p
		var r *SimResult
		if p == 1 {
			r = serialRes
		} else {
			r, err = cc.Simulate(log)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, ScalingPoint{
			Processors:   p,
			Seconds:      r.TotalSeconds,
			Speedup:      serialRes.TotalSeconds / r.TotalSeconds,
			Efficiency:   serialRes.TotalSeconds / r.TotalSeconds / float64(p),
			IdleFraction: r.IdleFraction,
		})
	}
	return out, nil
}

// DefaultCluster returns the calibrated Power3+-like machine model used
// by the figure harness. UnitTime is chosen so the synthetic 150-taxon
// serial run lands near the paper's ~192 hours (see EXPERIMENTS.md);
// message costs reflect the paper's observation that an individual tree
// costs hundreds of thousands of floating point operations per byte
// moved, i.e. communication is cheap but not free.
func DefaultCluster(processors int) Cluster {
	return Cluster{
		Processors:         processors,
		Monitor:            true,
		UnitTime:           11.5e-9,
		DispatchLatency:    350e-6,
		ReturnLatency:      250e-6,
		WorkerTaskOverhead: 0.1,
		MasterByteTime:     1.2e-6,
		RoundBarrier:       2e-3,
		Startup:            15,
	}
}
