package spsim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mlsearch"
)

func testCluster(p int) Cluster {
	return Cluster{
		Processors:      p,
		Monitor:         true,
		UnitTime:        1e-6,
		DispatchLatency: 1e-4,
		ReturnLatency:   1e-4,
		MasterByteTime:  1e-6,
		RoundBarrier:    1e-3,
		Startup:         0.5,
	}
}

func smallLog() *RunLog {
	return &RunLog{
		Label: "test",
		Rounds: []Round{
			{Kind: "init", TaskUnits: []float64{1000}, GenBytes: 100},
			{Kind: "add", TaskUnits: []float64{500, 700, 900}, GenBytes: 300},
			{Kind: "rearrange", TaskUnits: []float64{400, 400, 400, 400, 800, 1200}, GenBytes: 600},
		},
	}
}

func TestWorkersAccounting(t *testing.T) {
	cases := []struct {
		p       int
		monitor bool
		want    int
		ok      bool
	}{
		{1, true, 1, true},   // serial
		{4, true, 1, true},   // paper: 4 procs, 3 control, 1 worker
		{64, true, 61, true}, // paper: 64 procs
		{3, false, 1, true},
		{3, true, 0, false},
		{0, false, 0, false},
	}
	for _, c := range cases {
		cl := testCluster(c.p)
		cl.Monitor = c.monitor
		got, err := cl.Workers()
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("P=%d monitor=%v: got %d,%v want %d", c.p, c.monitor, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("P=%d monitor=%v: expected error", c.p, c.monitor)
		}
	}
}

// TestFourProcessorsSlowerThanSerial reproduces the paper's §3.2
// observation: "the overhead of communications and processing tasks
// causes the parallel code running on four processors to be slower than
// the serial code running on one processor. In both cases just one
// processor is devoted to the worker process."
func TestFourProcessorsSlowerThanSerial(t *testing.T) {
	log := smallLog()
	serial, err := testCluster(1).Simulate(log)
	if err != nil {
		t.Fatal(err)
	}
	four, err := testCluster(4).Simulate(log)
	if err != nil {
		t.Fatal(err)
	}
	if four.TotalSeconds <= serial.TotalSeconds {
		t.Errorf("4 processors (%g s) should be slower than serial (%g s)", four.TotalSeconds, serial.TotalSeconds)
	}
}

// TestSimulateBounds: for any worker count, the makespan of each round is
// at least the largest task and at least the mean load, and the whole run
// is no faster than compute/workers and no slower than the serial run
// plus all overheads.
func TestSimulateBounds(t *testing.T) {
	f := func(seed int64) bool {
		log := synthQuick(t, 10+int(seed%7), 50)
		for _, p := range []int{4, 8, 16, 32} {
			cl := testCluster(p)
			w, _ := cl.Workers()
			res, err := cl.Simulate(log)
			if err != nil {
				return false
			}
			// Lower bound: compute work spread perfectly over workers.
			if res.TotalSeconds < res.ComputeSeconds/float64(w) {
				return false
			}
			// Sanity: idle fraction in [0, 1].
			if res.IdleFraction < -1e-9 || res.IdleFraction > 1 {
				return false
			}
			if len(res.RoundSeconds) != len(log.Rounds) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func synthQuick(t interface{ Fatal(...interface{}) }, taxa, patterns int) *RunLog {
	log, err := Synthesize(Shape{Taxa: taxa, Patterns: patterns, Extent: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return log
}

// TestMoreWorkersNeverSlower: adding processors must not increase the
// simulated time (the foreman discipline is work-conserving).
func TestMoreWorkersNeverSlower(t *testing.T) {
	log, err := Synthesize(Shape{Taxa: 30, Patterns: 200, Extent: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, p := range []int{4, 8, 16, 32, 64} {
		res, err := testCluster(p).Simulate(log)
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalSeconds > prev*1.0000001 {
			t.Errorf("P=%d slower than fewer processors: %g > %g", p, res.TotalSeconds, prev)
		}
		prev = res.TotalSeconds
	}
}

// TestSweepShape reproduces the qualitative content of Figures 3 and 4:
// speedup grows strongly from 8 to 64 processors, and efficiency
// eventually falls off as the worker count approaches the per-round task
// counts (paper §3.2 predicts fall-off at 100-200 processors for these
// data set sizes).
func TestSweepShape(t *testing.T) {
	log, err := Synthesize(Shape{Taxa: 50, Patterns: 600, Extent: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cl := DefaultCluster(0)
	points, err := cl.Sweep(log, []int{1, 4, 8, 16, 32, 64, 128, 256})
	if err != nil {
		t.Fatal(err)
	}
	byP := map[int]ScalingPoint{}
	for _, pt := range points {
		byP[pt.Processors] = pt
	}
	if byP[1].Speedup != 1 {
		t.Errorf("serial speedup %g, want 1", byP[1].Speedup)
	}
	if byP[4].Speedup >= 1 {
		t.Errorf("4-processor speedup %g, want < 1 (paper Fig 4)", byP[4].Speedup)
	}
	// Near-linear relative scaling 16 -> 64 (paper: "relative speedups
	// from 16 through 64 processors are quite good").
	rel := byP[64].Speedup / byP[16].Speedup
	if rel < 2.4 {
		t.Errorf("speedup(64)/speedup(16) = %g, want >= 2.4 (near-linear x4)", rel)
	}
	// Fall-off: going 128 -> 256 should gain much less than 2x.
	relHigh := byP[256].Speedup / byP[128].Speedup
	if relHigh > 1.7 {
		t.Errorf("speedup(256)/speedup(128) = %g, expected clear fall-off", relHigh)
	}
	if byP[64].Speedup < 8 {
		t.Errorf("64-processor speedup %g unreasonably low", byP[64].Speedup)
	}
	if byP[64].Speedup > 61 {
		t.Errorf("64-processor speedup %g exceeds worker count", byP[64].Speedup)
	}
}

func TestSynthesizeStructure(t *testing.T) {
	taxa := 12
	log, err := Synthesize(Shape{Taxa: taxa, Patterns: 100, Extent: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	adds := 0
	for _, r := range log.Rounds {
		switch r.Kind {
		case "add":
			adds++
			i := adds + 3 // taxa in tree after this addition
			if len(r.TaskUnits) != 2*i-5 {
				t.Errorf("add round %d has %d tasks, want %d", adds, len(r.TaskUnits), 2*i-5)
			}
		case "smooth", "init":
			if len(r.TaskUnits) != 1 {
				t.Errorf("%s round with %d tasks", r.Kind, len(r.TaskUnits))
			}
		}
		for _, u := range r.TaskUnits {
			if u <= 0 {
				t.Errorf("non-positive task units in %s round", r.Kind)
			}
		}
		if r.GenBytes <= 0 {
			t.Errorf("round %s has no master bytes", r.Kind)
		}
	}
	if adds != taxa-3 {
		t.Errorf("%d add rounds, want %d", adds, taxa-3)
	}
	// Determinism.
	log2, _ := Synthesize(Shape{Taxa: taxa, Patterns: 100, Extent: 1, Seed: 5})
	if log.TotalTasks() != log2.TotalTasks() || log.TotalUnits() != log2.TotalUnits() {
		t.Error("same seed synthesized different logs")
	}
	log3, _ := Synthesize(Shape{Taxa: taxa, Patterns: 100, Extent: 1, Seed: 6})
	if log.TotalUnits() == log3.TotalUnits() {
		t.Error("different seeds synthesized identical logs (suspicious)")
	}
}

func TestSynthesizeErrors(t *testing.T) {
	if _, err := Synthesize(Shape{Taxa: 3, Patterns: 10}); err == nil {
		t.Error("3 taxa should fail")
	}
	if _, err := Synthesize(Shape{Taxa: 10, Patterns: 0}); err == nil {
		t.Error("0 patterns should fail")
	}
}

func TestCandidateCounterNNI(t *testing.T) {
	c := newCandidateCounter(1)
	for _, n := range []int{4, 10, 50, 150} {
		if got := c.count(n, 1); got != 2*n-6 {
			t.Errorf("count(%d, 1) = %d, want %d", n, got, 2*n-6)
		}
	}
}

func TestCandidateCounterGrowth(t *testing.T) {
	c := newCandidateCounter(1)
	// Larger extent reaches at least as many candidates.
	for _, n := range []int{10, 20, 30} {
		prev := 0
		for extent := 1; extent <= 4; extent++ {
			got := c.count(n, extent)
			if got < prev {
				t.Errorf("count(%d, %d) = %d < count at extent-1 %d", n, extent, got, prev)
			}
			prev = got
		}
	}
	// Extrapolated counts keep growing with taxa.
	if c.count(150, 5) <= c.count(50, 5) {
		t.Error("extrapolated counts should grow with taxa")
	}
}

func TestFromSearchResult(t *testing.T) {
	res := &mlsearch.SearchResult{
		Rounds: []mlsearch.RoundStats{
			{Kind: mlsearch.RoundInit, Tasks: []mlsearch.TaskStat{{Ops: 100}}, GenBytes: 40},
			{Kind: mlsearch.RoundAdd, Tasks: []mlsearch.TaskStat{{Ops: 10}, {Ops: 20}, {Ops: 30}}, GenBytes: 120},
		},
	}
	log := FromSearchResult(res, "measured")
	if len(log.Rounds) != 2 {
		t.Fatalf("%d rounds", len(log.Rounds))
	}
	if log.Rounds[0].Kind != "init" || log.Rounds[1].Kind != "add" {
		t.Errorf("kinds = %v %v", log.Rounds[0].Kind, log.Rounds[1].Kind)
	}
	if log.TotalUnits() != 160 || log.TotalTasks() != 4 {
		t.Errorf("units=%g tasks=%d", log.TotalUnits(), log.TotalTasks())
	}
}

// TestSerialHasNoCommCost: the serial simulation must charge no
// dispatch/return latency.
func TestSerialHasNoCommCost(t *testing.T) {
	log := smallLog()
	res, err := testCluster(1).Simulate(log)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommSeconds != 0 {
		t.Errorf("serial comm = %g, want 0", res.CommSeconds)
	}
	// Serial total = startup + compute + gen + barriers.
	want := 0.5 + res.ComputeSeconds + res.MasterSeconds + float64(len(log.Rounds))*1e-3
	if math.Abs(res.TotalSeconds-want) > 1e-9 {
		t.Errorf("serial total %g, want %g", res.TotalSeconds, want)
	}
}

// TestSpeculativeMerging: correctly-predicted rounds merge with their
// successors — work is conserved, rounds shrink, and the run never slows
// down.
func TestSpeculativeMerging(t *testing.T) {
	log, err := Synthesize(Shape{Taxa: 25, Patterns: 200, Extent: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	marked := 0
	for _, r := range log.Rounds {
		if r.SpeculativeNext {
			marked++
		}
	}
	if marked == 0 {
		t.Fatal("no speculative rounds synthesized")
	}
	merged := mergeSpeculative(log.Rounds)
	if len(merged) >= len(log.Rounds) {
		t.Errorf("merge did not reduce rounds: %d -> %d", len(log.Rounds), len(merged))
	}
	var before, after float64
	for _, r := range log.Rounds {
		for _, u := range r.TaskUnits {
			before += u
		}
	}
	for _, r := range merged {
		if r.SpeculativeNext {
			t.Error("merged rounds must not remain speculative")
		}
		for _, u := range r.TaskUnits {
			after += u
		}
	}
	if math.Abs(before-after) > 1e-6 {
		t.Errorf("speculation changed total work: %g -> %g", before, after)
	}

	for _, p := range []int{8, 32, 64} {
		off := testCluster(p)
		on := testCluster(p)
		on.Speculative = true
		resOff, err := off.Simulate(log)
		if err != nil {
			t.Fatal(err)
		}
		resOn, err := on.Simulate(log)
		if err != nil {
			t.Fatal(err)
		}
		if resOn.TotalSeconds > resOff.TotalSeconds*1.0000001 {
			t.Errorf("P=%d: speculation slowed the run: %g -> %g", p, resOff.TotalSeconds, resOn.TotalSeconds)
		}
	}
	// Serial runs ignore speculation.
	s1 := testCluster(1)
	s2 := testCluster(1)
	s2.Speculative = true
	r1, _ := s1.Simulate(log)
	r2, _ := s2.Simulate(log)
	if r1.TotalSeconds != r2.TotalSeconds {
		t.Error("speculation changed the serial time")
	}
}
