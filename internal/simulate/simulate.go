// Package simulate generates synthetic DNA alignments by evolving
// sequences down a random tree under a substitution model. It substitutes
// for the paper's proprietary inputs: the 50- and 101-taxon (1858
// positions) and 150-taxon (1269 positions) small-subunit rRNA alignments
// from the European SSU rRNA database used in the Microsporidia research
// (paper §3). The presets match those dimensions and rRNA-like base
// composition and rate heterogeneity, so the search performs the same
// kind and amount of work as on the original data.
package simulate

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/seq"
	"repro/internal/tree"
)

// Options configure one simulated data set.
type Options struct {
	// Taxa is the number of sequences (>= 3).
	Taxa int
	// Sites is the alignment length.
	Sites int
	// Model is the substitution model to evolve under; nil uses F84
	// with rRNA-like frequencies and the default ratio.
	Model model.Model
	// Seed drives all randomness; runs are reproducible.
	Seed int64
	// MeanBranchLen is the mean of the exponential branch lengths of
	// the true tree (default 0.08, a typical rRNA depth).
	MeanBranchLen float64
	// GammaAlpha adds discrete-gamma rate heterogeneity across sites
	// when positive (rRNA sites vary greatly in rate); 0 disables.
	GammaAlpha float64
	// GammaCats is the number of gamma categories (default 4).
	GammaCats int
	// TaxonPrefix names taxa Prefix001... (default "tax").
	TaxonPrefix string
}

// RRNAFreqs approximates small-subunit rRNA base composition.
var RRNAFreqs = seq.BaseFreqs{0.253, 0.228, 0.319, 0.200}

func (o Options) withDefaults() (Options, error) {
	if o.Taxa < 3 {
		return o, fmt.Errorf("simulate: %d taxa, need >= 3", o.Taxa)
	}
	if o.Sites < 1 {
		return o, fmt.Errorf("simulate: %d sites", o.Sites)
	}
	if o.MeanBranchLen <= 0 {
		o.MeanBranchLen = 0.08
	}
	if o.GammaCats <= 0 {
		o.GammaCats = 4
	}
	if o.TaxonPrefix == "" {
		o.TaxonPrefix = "tax"
	}
	if o.Model == nil {
		m, err := model.NewF84(RRNAFreqs, model.DefaultTTRatio)
		if err != nil {
			return o, err
		}
		o.Model = m
	}
	return o, nil
}

// Dataset is a simulated alignment with its generating ("true") tree.
type Dataset struct {
	// Alignment is the simulated data.
	Alignment *seq.Alignment
	// TrueTree is the tree the sequences evolved down.
	TrueTree *tree.Tree
	// SiteRates are the per-site relative rates used (all 1 when
	// GammaAlpha is 0).
	SiteRates []float64
}

// New generates a data set.
func New(opt Options) (*Dataset, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	names := make([]string, opt.Taxa)
	for i := range names {
		names[i] = fmt.Sprintf("%s%03d", opt.TaxonPrefix, i+1)
	}
	tr, err := tree.RandomTree(names, rng, opt.MeanBranchLen)
	if err != nil {
		return nil, err
	}

	rates := make([]float64, opt.Sites)
	for i := range rates {
		rates[i] = 1
	}
	if opt.GammaAlpha > 0 {
		cats, err := model.DiscreteGamma(opt.GammaAlpha, opt.GammaCats)
		if err != nil {
			return nil, err
		}
		for i := range rates {
			rates[i] = cats[rng.Intn(len(cats))]
		}
	}

	a, err := evolve(tr, opt.Model, rates, rng)
	if err != nil {
		return nil, err
	}
	return &Dataset{Alignment: a, TrueTree: tr, SiteRates: rates}, nil
}

// evolve draws root states from the equilibrium frequencies and walks the
// tree, mutating each site through the model's transition matrices.
func evolve(tr *tree.Tree, m model.Model, rates []float64, rng *rand.Rand) (*seq.Alignment, error) {
	nsites := len(rates)
	freqs := m.Freqs()
	d := m.Decomposition()

	// Distinct rates -> transition matrix cache per (rate, branch) pair
	// is rebuilt per edge; group sites by rate to amortize.
	rateIdx := map[float64][]int{}
	for s, r := range rates {
		rateIdx[r] = append(rateIdx[r], s)
	}

	root := tr.AnyNode()
	states := map[int][]byte{} // node ID -> per-site base indices
	rootStates := make([]byte, nsites)
	for s := range rootStates {
		rootStates[s] = sampleIndex(rng, freqs[0], freqs[1], freqs[2], freqs[3])
	}
	states[root.ID] = rootStates

	var walk func(n, parent *tree.Node) error
	walk = func(n, parent *tree.Node) error {
		for i, child := range n.Nbr {
			if child == parent {
				continue
			}
			z := n.Len[i]
			cur := states[n.ID]
			next := make([]byte, nsites)
			var pm model.PMatrix
			for r, sites := range rateIdx {
				d.Probs(z, r, &pm)
				for _, s := range sites {
					row := pm[cur[s]]
					next[s] = sampleIndex(rng, row[0], row[1], row[2], row[3])
				}
			}
			states[child.ID] = next
			if err := walk(child, n); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root, nil); err != nil {
		return nil, err
	}

	a := seq.NewAlignment(len(tr.Taxa))
	for taxon := 0; taxon < len(tr.Taxa); taxon++ {
		leaf := tr.LeafByTaxon(taxon)
		if leaf == nil {
			return nil, fmt.Errorf("simulate: taxon %d missing from tree", taxon)
		}
		st := states[leaf.ID]
		coded := make([]seq.Code, nsites)
		for s := range coded {
			coded[s] = seq.Code(1 << uint(st[s]))
		}
		if err := a.AddCoded(tr.Taxa[taxon], coded); err != nil {
			return nil, err
		}
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// sampleIndex draws 0..3 with the given (normalized) weights.
func sampleIndex(rng *rand.Rand, w0, w1, w2, w3 float64) byte {
	u := rng.Float64() * (w0 + w1 + w2 + w3)
	switch {
	case u < w0:
		return 0
	case u < w0+w1:
		return 1
	case u < w0+w1+w2:
		return 2
	default:
		return 3
	}
}

// PaperPreset names the three data sets of the paper's evaluation.
type PaperPreset string

// The paper's three data sets (§3: "datasets including 50, 101, and 150
// taxa", alignments of 1858 positions for the 50- and 101-sequence sets
// and 1269 positions for the 150-sequence set).
const (
	Preset50  PaperPreset = "50taxa"
	Preset101 PaperPreset = "101taxa"
	Preset150 PaperPreset = "150taxa"
)

// PaperOptions returns the simulation options matching a paper data set.
func PaperOptions(p PaperPreset, seed int64) (Options, error) {
	switch p {
	case Preset50:
		return Options{Taxa: 50, Sites: 1858, Seed: seed, GammaAlpha: 0.6}, nil
	case Preset101:
		return Options{Taxa: 101, Sites: 1858, Seed: seed, GammaAlpha: 0.6}, nil
	case Preset150:
		return Options{Taxa: 150, Sites: 1269, Seed: seed, GammaAlpha: 0.6}, nil
	}
	return Options{}, fmt.Errorf("simulate: unknown preset %q", p)
}
