package simulate

import (
	"math"
	"testing"

	"repro/internal/seq"
	"repro/internal/tree"
)

func TestNewBasicShape(t *testing.T) {
	ds, err := New(Options{Taxa: 10, Sites: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Alignment.NumSeqs() != 10 || ds.Alignment.NumSites() != 300 {
		t.Fatalf("shape %dx%d", ds.Alignment.NumSeqs(), ds.Alignment.NumSites())
	}
	if err := ds.Alignment.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ds.TrueTree.Validate(true); err != nil {
		t.Fatal(err)
	}
	if ds.TrueTree.NumLeaves() != 10 {
		t.Errorf("true tree has %d leaves", ds.TrueTree.NumLeaves())
	}
	if len(ds.SiteRates) != 300 {
		t.Errorf("%d site rates", len(ds.SiteRates))
	}
}

func TestNewDeterministic(t *testing.T) {
	a, err := New(Options{Taxa: 8, Sites: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Taxa: 8, Sites: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Alignment.Data {
		if a.Alignment.Row(i) != b.Alignment.Row(i) {
			t.Fatal("same seed gave different alignments")
		}
	}
	c, _ := New(Options{Taxa: 8, Sites: 100, Seed: 43})
	same := true
	for i := range a.Alignment.Data {
		if a.Alignment.Row(i) != c.Alignment.Row(i) {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical alignments")
	}
}

// TestCloseTaxaAreSimilar: sequences separated by short paths must agree
// at more sites than distant ones, on average.
func TestEvolutionRespectsTree(t *testing.T) {
	ds, err := New(Options{Taxa: 12, Sites: 800, Seed: 5, MeanBranchLen: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Path length between two taxa on the true tree.
	dist := func(a, b int) float64 {
		la := ds.TrueTree.LeafByTaxon(a)
		var found float64
		var walk func(n, parent *tree.Node, d float64) bool
		walk = func(n, parent *tree.Node, d float64) bool {
			if n.Leaf() && n.Taxon == b {
				found = d
				return true
			}
			for _, m := range n.Nbr {
				if m != parent && walk(m, n, d+m.LenTo(n)) {
					return true
				}
			}
			return false
		}
		walk(la, nil, 0)
		return found
	}
	mismatch := func(a, b int) float64 {
		diff := 0
		for s := 0; s < ds.Alignment.NumSites(); s++ {
			if ds.Alignment.Data[a][s] != ds.Alignment.Data[b][s] {
				diff++
			}
		}
		return float64(diff) / float64(ds.Alignment.NumSites())
	}
	// Compare the closest pair against the farthest pair.
	type pair struct {
		a, b int
		d    float64
	}
	var closest, farthest pair
	closest.d = math.Inf(1)
	for a := 0; a < 12; a++ {
		for b := a + 1; b < 12; b++ {
			d := dist(a, b)
			if d < closest.d {
				closest = pair{a, b, d}
			}
			if d > farthest.d {
				farthest = pair{a, b, d}
			}
		}
	}
	if mismatch(closest.a, closest.b) >= mismatch(farthest.a, farthest.b) {
		t.Errorf("closest pair (d=%.3f) mismatches %.3f >= farthest pair (d=%.3f) %.3f",
			closest.d, mismatch(closest.a, closest.b), farthest.d, mismatch(farthest.a, farthest.b))
	}
}

// TestBaseCompositionTracksModel: simulated composition approaches the
// model's equilibrium frequencies.
func TestBaseCompositionTracksModel(t *testing.T) {
	ds, err := New(Options{Taxa: 20, Sites: 2000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	freqs, err := seq.EmpiricalFreqs(ds.Alignment)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < seq.NumBases; b++ {
		if math.Abs(freqs[b]-RRNAFreqs[b]) > 0.05 {
			t.Errorf("freq[%c] = %.3f, equilibrium %.3f", seq.BaseName(b), freqs[b], RRNAFreqs[b])
		}
	}
}

func TestGammaRatesHeterogeneity(t *testing.T) {
	ds, err := New(Options{Taxa: 6, Sites: 500, Seed: 3, GammaAlpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	mean := 0.0
	for _, r := range ds.SiteRates {
		distinct[r] = true
		mean += r
	}
	mean /= float64(len(ds.SiteRates))
	if len(distinct) < 3 {
		t.Errorf("only %d distinct rates", len(distinct))
	}
	if math.Abs(mean-1) > 0.15 {
		t.Errorf("mean site rate %.3f, want ~1", mean)
	}
}

func TestPaperPresets(t *testing.T) {
	cases := []struct {
		p     PaperPreset
		taxa  int
		sites int
	}{
		{Preset50, 50, 1858},
		{Preset101, 101, 1858},
		{Preset150, 150, 1269},
	}
	for _, c := range cases {
		opt, err := PaperOptions(c.p, 7)
		if err != nil {
			t.Fatal(err)
		}
		if opt.Taxa != c.taxa || opt.Sites != c.sites {
			t.Errorf("%s: %dx%d, want %dx%d", c.p, opt.Taxa, opt.Sites, c.taxa, c.sites)
		}
	}
	if _, err := PaperOptions("nope", 1); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := New(Options{Taxa: 2, Sites: 10}); err == nil {
		t.Error("2 taxa accepted")
	}
	if _, err := New(Options{Taxa: 5, Sites: 0}); err == nil {
		t.Error("0 sites accepted")
	}
}
