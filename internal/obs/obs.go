// Package obs is the observability substrate of the parallel runtime: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// histograms with labeled families) rendered in Prometheus text format, a
// typed in-process event bus, lightweight trace-span identifiers that
// travel inside task and reply envelopes, an optional HTTP status server
// (/metrics, /status, /debug/pprof), and a machine-readable end-of-run
// benchmark writer (BENCH_<run>.json).
//
// The paper's monitor process exists so an operator can watch "the
// progress of the computation" (§2.2), and its scaling study (§4) rests
// on per-phase timing of dispatch, evaluation, and communication. This
// package supplies that substrate for every process of the runtime:
// the master/foreman host, the monitor role, and remote workers. It
// deliberately depends on nothing outside the standard library, and
// every entry point is nil-receiver safe so instrumented code paths cost
// nothing when no sink is attached.
package obs

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

// idCounter disambiguates IDs minted in the same process; idBase makes
// IDs from different processes (master vs. workers) unlikely to collide.
var (
	idCounter atomic.Uint64
	idBaseMu  sync.Mutex
	idBase    uint64
)

func processBase() uint64 {
	idBaseMu.Lock()
	defer idBaseMu.Unlock()
	for idBase == 0 {
		idBase = rand.Uint64() &^ 0xFFFF // low bits left for the counter
	}
	return idBase
}

// NewID mints a non-zero 64-bit identifier for traces and spans. IDs are
// unique within a process and randomized across processes.
func NewID() uint64 {
	id := processBase() ^ idCounter.Add(1)
	if id == 0 {
		id = processBase() ^ idCounter.Add(1)
	}
	return id
}
