package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics registry: named families of counters, gauges, and fixed-bucket
// histograms, each family optionally labeled, rendered in the Prometheus
// text exposition format. Series handles are cheap to hold and safe for
// concurrent use (atomic operations on the hot path, a mutex only on
// first access of a labeled series).

// metricKind is the family type.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing value.
type Counter struct{ bits atomic.Uint64 }

// Inc adds one. Nil-safe, so instrumented code needs no sink checks.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are ignored; counters only go up).
func (c *Counter) Add(delta float64) {
	if c == nil || delta < 0 {
		return
	}
	addFloat(&c.bits, delta)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, delta)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// addFloat atomically adds delta to a float64 stored as uint64 bits.
func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// DefBuckets are general-purpose latency buckets in seconds, mirroring
// the Prometheus client default.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram accumulates observations into fixed buckets.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	addFloat(&h.sum, v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// family is one named metric with zero or more labeled series.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string  // label names, fixed at registration
	bounds []float64 // histogram bucket bounds

	mu     sync.Mutex
	series map[string]any // rendered label key -> *Counter/*Gauge/*Histogram
	order  []string       // insertion order of series keys
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use, and a nil
// *Registry returns nil handles, which are themselves nil-safe — so an
// uninstrumented run pays only a nil check per metric site.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) family(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, bounds: bounds, series: map[string]any{}}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

// seriesFor returns (creating if needed) the series for the label values.
func (f *family) seriesFor(values []string, make func() any) any {
	key := renderLabels(f.labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := make()
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter returns the unlabeled counter named name, registering it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, help, kindCounter, nil, nil)
	return f.seriesFor(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec declares a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, kindCounter, labels, nil)}
}

// Gauge returns the unlabeled gauge named name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, help, kindGauge, nil, nil)
	return f.seriesFor(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec declares a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, kindGauge, labels, nil)}
}

// Histogram returns the unlabeled histogram named name with the given
// bucket upper bounds (nil uses DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.family(name, help, kindHistogram, nil, buckets)
	return f.seriesFor(nil, func() any { return newHistogram(f.bounds) }).(*Histogram)
}

// HistogramVec declares a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{f: r.family(name, help, kindHistogram, labels, buckets)}
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// CounterVec is a labeled counter family handle.
type CounterVec struct{ f *family }

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.seriesFor(values, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a labeled gauge family handle.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.seriesFor(values, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a labeled histogram family handle.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.seriesFor(values, func() any { return newHistogram(v.f.bounds) }).(*Histogram)
}

// renderLabels formats {a="x",b="y"} for the series key; empty for an
// unlabeled series. Missing values render empty; extras are dropped.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		v := ""
		if i < len(values) {
			v = values[i]
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), families in registration order, series in
// first-use order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	series := make([]any, len(keys))
	for i, k := range keys {
		series[i] = f.series[k]
	}
	f.mu.Unlock()
	if len(keys) == 0 {
		return nil
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for i, key := range keys {
		switch s := series[i].(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, key, formatFloat(s.Value())); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, key, formatFloat(s.Value())); err != nil {
				return err
			}
		case *Histogram:
			if err := writeHistogram(w, f.name, key, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders the cumulative _bucket/_sum/_count triplet.
func writeHistogram(w io.Writer, name, key string, h *Histogram) error {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(key, "le", formatFloat(bound)), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(key, "le", "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, key, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, key, h.count.Load())
	return err
}

// mergeLabel appends one label pair to an already-rendered label set.
func mergeLabel(key, name, value string) string {
	pair := name + `="` + escapeLabel(value) + `"`
	if key == "" {
		return "{" + pair + "}"
	}
	return key[:len(key)-1] + "," + pair + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
