package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// End-of-run benchmark reports. A run that finishes writes one
// BENCH_<run>.json so the performance trajectory of the codebase
// accumulates machine-readable data points (wall time, task and op
// totals, cache behaviour, per-phase latencies) instead of lines in a
// terminal scrollback.

// BenchReport is the schema of a BENCH_<run>.json file.
type BenchReport struct {
	// Run names the run; it also names the output file.
	Run string `json:"run"`
	// StartedAt/FinishedAt bound the run's wall clock.
	StartedAt  time.Time `json:"started_at"`
	FinishedAt time.Time `json:"finished_at"`
	// WallMs is the run's wall-clock duration in milliseconds.
	WallMs float64 `json:"wall_ms"`
	// Totals holds flat numeric facts (tasks, ops, lnl, cache hits...).
	Totals map[string]float64 `json:"totals,omitempty"`
	// Details carries any structured payload (per-round stats, per-worker
	// histories, monitor aggregates).
	Details any `json:"details,omitempty"`
}

// benchRunName sanitizes a run name for use in a file name.
func benchRunName(run string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, run)
	if clean == "" {
		clean = "run"
	}
	return clean
}

// WriteBench writes report as dir/BENCH_<run>.json (atomically, via a
// temp file rename) and returns the final path. A zero FinishedAt is
// stamped now; WallMs is derived from the timestamps when unset.
func WriteBench(dir string, report BenchReport) (string, error) {
	if report.FinishedAt.IsZero() {
		report.FinishedAt = time.Now()
	}
	if report.WallMs == 0 && !report.StartedAt.IsZero() {
		report.WallMs = PhaseMs(report.FinishedAt.Sub(report.StartedAt))
	}
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("obs: bench dir: %w", err)
	}
	path := filepath.Join(dir, "BENCH_"+benchRunName(report.Run)+".json")
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return "", fmt.Errorf("obs: bench encode: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(dir, ".bench-*")
	if err != nil {
		return "", fmt.Errorf("obs: bench temp: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return "", fmt.Errorf("obs: bench write: %w", werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("obs: bench rename: %w", err)
	}
	return path, nil
}

// ReadBench loads a BENCH_*.json file (round-trip validation and tests).
func ReadBench(path string) (BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return BenchReport{}, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return BenchReport{}, fmt.Errorf("obs: bench decode %s: %w", path, err)
	}
	return r, nil
}
