package obs

import "sync"

// Typed event bus: publishers emit typed event values; subscribers
// register handlers that fire synchronously, in subscription order, on
// the publisher's goroutine. The monitor role is a consumer of this bus
// (its stats aggregation and line printing are ordinary subscribers),
// and any process can attach extra subscribers — the status server's
// snapshot state, a test assertion, a future remote exporter — without
// touching the publisher.

// Bus fans typed events out to subscribers. The zero value is unusable;
// call NewBus. A nil *Bus accepts (and discards) publishes, so event
// emission sites need no sink checks.
type Bus struct {
	mu   sync.RWMutex
	subs []func(any)
}

// NewBus builds an empty bus.
func NewBus() *Bus { return &Bus{} }

// Subscribe registers fn for every published event and returns an
// unsubscribe function.
func (b *Bus) Subscribe(fn func(any)) func() {
	if b == nil {
		return func() {}
	}
	b.mu.Lock()
	b.subs = append(b.subs, fn)
	i := len(b.subs) - 1
	b.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			b.mu.Lock()
			b.subs[i] = nil
			b.mu.Unlock()
		})
	}
}

// Publish delivers e to every subscriber synchronously. Nil-safe.
func (b *Bus) Publish(e any) {
	if b == nil {
		return
	}
	b.mu.RLock()
	subs := b.subs
	b.mu.RUnlock()
	for _, fn := range subs {
		if fn != nil {
			fn(e)
		}
	}
}

// SubscribeTo registers a handler for events of one concrete type,
// ignoring everything else on the bus.
func SubscribeTo[T any](b *Bus, fn func(T)) func() {
	return b.Subscribe(func(e any) {
		if v, ok := e.(T); ok {
			fn(v)
		}
	})
}
