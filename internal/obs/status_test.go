package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/buildinfo"
)

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestStatusServerHealthz(t *testing.T) {
	reg := NewRegistry()
	srv, err := NewStatusServer(StatusOptions{Addr: "127.0.0.1:0", Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	code, body := getBody(t, fmt.Sprintf("http://%s/healthz", srv.Addr()))
	if code != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", code)
	}
	var h HealthResponse
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz body %q: %v", body, err)
	}
	if h.Status != "ok" {
		t.Errorf("healthz status field = %q, want ok", h.Status)
	}
	if h.Version != buildinfo.Version {
		t.Errorf("healthz version = %q, want %q", h.Version, buildinfo.Version)
	}
	if h.Started == "" {
		t.Error("healthz started timestamp empty")
	}
}

func TestStatusServerHandleMountsExtraRoutes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_counter_total", "A counter.").Inc()
	srv, err := NewStatusServer(StatusOptions{Addr: "127.0.0.1:0", Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	srv.Handle("/v1/hello", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "world")
	}))

	code, body := getBody(t, fmt.Sprintf("http://%s/v1/hello", srv.Addr()))
	if code != http.StatusOK || body != "world" {
		t.Fatalf("mounted route = %d %q, want 200 world", code, body)
	}
	// The built-in endpoints still serve.
	code, body = getBody(t, fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if code != http.StatusOK || !strings.Contains(body, "test_counter_total 1") {
		t.Fatalf("metrics = %d %q, want the registered counter", code, body)
	}
}
