package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	g := r.Gauge("test_gauge", "a gauge")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %v, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v, want 8000", g.Value())
	}
	g.Set(-2.5)
	if g.Value() != -2.5 {
		t.Errorf("gauge after Set = %v, want -2.5", g.Value())
	}
	c.Add(-5) // counters ignore negative deltas
	if c.Value() != 8000 {
		t.Errorf("counter after negative Add = %v, want 8000", c.Value())
	}
}

func TestRegistrySameSeriesSharedHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("shared_total", "help")
	b := r.Counter("shared_total", "help")
	a.Inc()
	b.Inc()
	if a != b || a.Value() != 2 {
		t.Errorf("re-registration must return the same series (got %v)", a.Value())
	}
	v := r.CounterVec("labeled_total", "help", "worker")
	v.With("3").Add(4)
	if got := v.With("3").Value(); got != 4 {
		t.Errorf("labeled series = %v, want 4", got)
	}
}

func TestNilRegistryHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "h")
	g := r.Gauge("x", "h")
	h := r.Histogram("x_seconds", "h", nil)
	cv := r.CounterVec("xv_total", "h", "l")
	gv := r.GaugeVec("xv", "h", "l")
	hv := r.HistogramVec("xv_seconds", "h", nil, "l")
	// None of these may panic.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	cv.With("a").Inc()
	gv.With("a").Set(2)
	hv.With("a").Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil-registry handles must stay zero")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 55.55; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="10"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		`lat_seconds_sum 55.55`,
		`lat_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests served").Add(3)
	r.GaugeVec("depth", "queue depth", "queue").With(`a"b\c`).Set(7)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP reqs_total requests served\n",
		"# TYPE reqs_total counter\n",
		"reqs_total 3\n",
		"# TYPE depth gauge\n",
		`depth{queue="a\"b\\c"} 7` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestBusSubscribeAndTyped(t *testing.T) {
	type evA struct{ N int }
	type evB struct{ S string }
	b := NewBus()
	var all []any
	unsubAll := b.Subscribe(func(e any) { all = append(all, e) })
	var as []evA
	unsubA := SubscribeTo(b, func(e evA) { as = append(as, e) })
	b.Publish(evA{1})
	b.Publish(evB{"x"})
	if len(all) != 2 || len(as) != 1 || as[0].N != 1 {
		t.Fatalf("delivery wrong: all=%d as=%v", len(all), as)
	}
	unsubA()
	unsubA() // idempotent
	b.Publish(evA{2})
	if len(as) != 1 {
		t.Error("unsubscribed handler still fired")
	}
	if len(all) != 3 {
		t.Error("remaining handler missed an event")
	}
	unsubAll()

	var nilBus *Bus
	nilBus.Publish(evA{3}) // must not panic
	nilBus.Subscribe(func(any) {})()
}

func TestSpanContextAndLog(t *testing.T) {
	root := NewTrace()
	if !root.Valid() {
		t.Fatal("NewTrace must be valid")
	}
	child := root.Child()
	if child.TraceID != root.TraceID || child.SpanID == root.SpanID {
		t.Errorf("child must share trace and differ in span: %v vs %v", child, root)
	}

	l := NewSpanLog(3)
	for i := 0; i < 5; i++ {
		l.Add(SpanRecord{Ctx: root, Name: "task", Round: uint64(i)})
	}
	recent := l.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring len = %d, want 3", len(recent))
	}
	for i, rec := range recent {
		if rec.Round != uint64(i+2) {
			t.Errorf("ring[%d].Round = %d, want %d (oldest first)", i, rec.Round, i+2)
		}
		if rec.Trace == "" || rec.Span == "" {
			t.Error("Add must render hex trace/span ids")
		}
	}

	var nilLog *SpanLog
	nilLog.Add(SpanRecord{})
	if nilLog.Recent() != nil {
		t.Error("nil SpanLog must be inert")
	}
}

func TestStatusServer(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "test").Inc()
	srv, err := NewStatusServer(StatusOptions{
		Addr:     "127.0.0.1:0",
		Registry: r,
		Snapshot: func() any { return map[string]int{"round": 7} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr().String()

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	if out := get("/metrics"); !strings.Contains(out, "up_total 1") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	var status map[string]int
	if err := json.Unmarshal([]byte(get("/status")), &status); err != nil {
		t.Fatalf("/status not JSON: %v", err)
	}
	if status["round"] != 7 {
		t.Errorf("/status = %v, want round 7", status)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}

func TestBenchWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	started := time.Now().Add(-2 * time.Second)
	path, err := WriteBench(dir, BenchReport{
		Run:       "chaos soak #1/seed=5",
		StartedAt: started,
		Totals:    map[string]float64{"tasks": 42, "lnl": -1234.5},
		Details:   map[string]any{"workers": []int{1, 2, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := filepath.Base(path), "BENCH_chaos_soak__1_seed_5.json"; got != want {
		t.Errorf("file name = %q, want %q", got, want)
	}
	rep, err := ReadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Run != "chaos soak #1/seed=5" || rep.Totals["tasks"] != 42 {
		t.Errorf("round-trip mismatch: %+v", rep)
	}
	if rep.FinishedAt.IsZero() || rep.WallMs <= 0 {
		t.Errorf("WriteBench must stamp FinishedAt/WallMs, got %v / %v", rep.FinishedAt, rep.WallMs)
	}
}

func TestLockedWriterNoInterleaving(t *testing.T) {
	var buf bytes.Buffer
	w := NewLockedWriter(&buf)
	if NewLockedWriter(w) != w {
		t.Error("wrapping a LockedWriter must be idempotent")
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				fmt.Fprintf(w, "writer=%d line=%d end\n", i, j)
			}
		}(i)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for _, line := range lines {
		var wr, ln int
		if _, err := fmt.Sscanf(line, "writer=%d line=%d end", &wr, &ln); err != nil {
			t.Fatalf("interleaved line %q", line)
		}
	}

	var nilW *LockedWriter
	if n, err := nilW.Write([]byte("x")); n != 1 || err != nil {
		t.Error("nil LockedWriter must discard")
	}
	NewLockedWriter(nil).Write([]byte("x"))
}

func TestNewIDNonZeroAndDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if id == 0 {
			t.Fatal("NewID returned 0")
		}
		if seen[id] {
			t.Fatalf("NewID repeated %x", id)
		}
		seen[id] = true
	}
}
