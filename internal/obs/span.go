package obs

import (
	"fmt"
	"sync"
	"time"
)

// Trace spans. A SpanContext is the pair of identifiers that travels
// inside Task/Reply envelopes so one task can be followed master →
// foreman → worker → kernel: the TraceID names the whole run (or search),
// the SpanID names the individual task. Per-phase latency (queue wait,
// serialize, network, CLV compute, Newton iterations) is attributed to
// the span by whichever process measured it, and the SpanLog ring buffer
// retains the most recent completed spans for the /status endpoint.

// SpanContext identifies one traced unit of work. The zero value means
// "untraced" and costs nothing to carry.
type SpanContext struct {
	// TraceID groups every span of one run.
	TraceID uint64
	// SpanID identifies this span within the trace.
	SpanID uint64
}

// Valid reports whether the context carries a trace.
func (c SpanContext) Valid() bool { return c.TraceID != 0 || c.SpanID != 0 }

// String renders "trace/span" in hex, or "-" for the zero context.
func (c SpanContext) String() string {
	if !c.Valid() {
		return "-"
	}
	return fmt.Sprintf("%016x/%016x", c.TraceID, c.SpanID)
}

// NewTrace mints a fresh trace root.
func NewTrace() SpanContext {
	id := NewID()
	return SpanContext{TraceID: id, SpanID: id}
}

// Child mints a child span within the same trace.
func (c SpanContext) Child() SpanContext {
	if !c.Valid() {
		return NewTrace()
	}
	return SpanContext{TraceID: c.TraceID, SpanID: NewID()}
}

// Span phases measured by the runtime. Each is one segment of a task's
// life; together they account the paper's dispatch/evaluation/
// communication breakdown (§4).
const (
	// PhaseQueue is time spent waiting in the foreman's work queue.
	PhaseQueue = "queue"
	// PhaseRTT is dispatch-to-result time seen by the foreman (network
	// both ways plus evaluation).
	PhaseRTT = "rtt"
	// PhaseEval is the worker's evaluation time (CLV compute plus Newton
	// iterations), carried back in the reply envelope.
	PhaseEval = "eval"
	// PhaseSerialize is time spent marshaling envelopes.
	PhaseSerialize = "serialize"
	// PhaseNetwork is the derived network share: RTT minus evaluation.
	PhaseNetwork = "network"
)

// SpanRecord is one completed span with its measured phases, as retained
// by a SpanLog and rendered in /status snapshots.
type SpanRecord struct {
	Ctx SpanContext `json:"-"`
	// Trace and Span are the hex forms, for JSON consumers.
	Trace string `json:"trace"`
	Span  string `json:"span"`
	// Name labels what the span was (e.g. "task").
	Name string `json:"name"`
	// Worker is the rank that executed the span (-1 for inline).
	Worker int `json:"worker"`
	// Round is the dispatch round the span belongs to.
	Round uint64 `json:"round"`
	// End is when the span completed.
	End time.Time `json:"end"`
	// PhasesMs maps phase name to milliseconds.
	PhasesMs map[string]float64 `json:"phases_ms"`
}

// SpanLog is a fixed-capacity ring of recently completed spans.
type SpanLog struct {
	mu   sync.Mutex
	ring []SpanRecord
	next int
	full bool
}

// NewSpanLog builds a ring retaining the last n spans (n >= 1).
func NewSpanLog(n int) *SpanLog {
	if n < 1 {
		n = 1
	}
	return &SpanLog{ring: make([]SpanRecord, n)}
}

// Add records one completed span. Nil-safe.
func (l *SpanLog) Add(rec SpanRecord) {
	if l == nil {
		return
	}
	rec.Trace = fmt.Sprintf("%016x", rec.Ctx.TraceID)
	rec.Span = fmt.Sprintf("%016x", rec.Ctx.SpanID)
	l.mu.Lock()
	l.ring[l.next] = rec
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
}

// Recent returns the retained spans, oldest first.
func (l *SpanLog) Recent() []SpanRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []SpanRecord
	if l.full {
		out = append(out, l.ring[l.next:]...)
	}
	out = append(out, l.ring[:l.next]...)
	return out
}

// PhaseMs converts a duration to the milliseconds stored in span
// records and JSON snapshots, preserving sub-millisecond precision.
func PhaseMs(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}
