package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/buildinfo"
)

// StatusServer exposes a process's observability over HTTP:
//
//	/metrics      Prometheus text exposition of the registry
//	/status       live JSON snapshot from the configured provider
//	/healthz      liveness: 200 with build info while the process serves
//	/debug/pprof  the standard Go profiler endpoints
//
// It binds its own mux (never the default one) so embedding processes
// keep their HTTP namespace clean, and listening on ":0" is supported
// for tests — Addr reports the bound address.

// StatusOptions configure NewStatusServer.
type StatusOptions struct {
	// Addr is the listen address, e.g. "127.0.0.1:9090" or ":0".
	Addr string
	// Registry backs /metrics (nil serves an empty exposition).
	Registry *Registry
	// Snapshot backs /status: it is invoked per request and its result
	// JSON-encoded. Nil serves {}.
	Snapshot func() any
}

// HealthResponse is the /healthz liveness document: the process is up
// and serving, stamped with the link-time build version.
type HealthResponse struct {
	Status  string `json:"status"`
	Version string `json:"version"`
	Started string `json:"started"`
}

// StatusServer is a live HTTP observability endpoint.
type StatusServer struct {
	ln  net.Listener
	mux *http.ServeMux
	srv *http.Server
}

// NewStatusServer binds addr and starts serving. Close releases it.
func NewStatusServer(opt StatusOptions) (*StatusServer, error) {
	ln, err := net.Listen("tcp", opt.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: status listen %s: %w", opt.Addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = opt.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v any = struct{}{}
		if opt.Snapshot != nil {
			v = opt.Snapshot()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
	started := time.Now()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(HealthResponse{
			Status:  "ok",
			Version: buildinfo.Version,
			Started: started.Format(time.RFC3339Nano),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &StatusServer{
		ln:  ln,
		mux: mux,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *StatusServer) Addr() net.Addr { return s.ln.Addr() }

// Handle mounts an additional handler on the server's mux, so an
// embedding process (the fastdnamld daemon) can serve its own API from
// the same port as the observability endpoints. http.ServeMux guards its
// routing table, so registering after the server has started is safe.
func (s *StatusServer) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// Close stops the server. Nil-safe.
func (s *StatusServer) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
