package obs

import (
	"io"
	"sync"
)

// LockedWriter serializes writes to a shared io.Writer so concurrent
// producers (the monitor role and the master sharing stderr, workers
// logging from several goroutines) cannot interleave within one line.
// Each Write call is delivered as a single locked write to the
// underlying writer.
type LockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLockedWriter wraps w; passing an existing *LockedWriter returns it
// unchanged (locking is idempotent), and a nil w yields a writer that
// discards everything.
func NewLockedWriter(w io.Writer) *LockedWriter {
	if lw, ok := w.(*LockedWriter); ok {
		return lw
	}
	return &LockedWriter{w: w}
}

// Write implements io.Writer atomically with respect to other writers
// through this LockedWriter.
func (l *LockedWriter) Write(p []byte) (int, error) {
	if l == nil || l.w == nil {
		return len(p), nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
