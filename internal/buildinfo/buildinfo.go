// Package buildinfo carries the build identity stamped into every binary
// at link time. The Makefile (and CI) pass
//
//	-ldflags "-X repro/internal/buildinfo.Version=<version>"
//
// so fastdnaml, fdworker, and fastdnamld all report the same version
// string under -version and on the /healthz liveness endpoint. Unstamped
// builds (plain `go build`) report "dev".
package buildinfo

import (
	"fmt"
	"runtime"
)

// Version is the build's version string, overridden at link time.
var Version = "dev"

// String renders the one-line form printed by the binaries' -version
// flag: version, go toolchain, and target platform.
func String() string {
	return fmt.Sprintf("%s (%s %s/%s)", Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
