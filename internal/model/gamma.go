package model

import (
	"fmt"
	"math"
)

// Discrete gamma rate heterogeneity (Yang 1994): site rates are drawn from
// a mean-1 gamma distribution with shape alpha, discretized into k
// equal-probability categories each represented by its mean. fastDNAml of
// the paper's era handled rate heterogeneity through user-supplied
// categories; the gamma discretization generates those categories from a
// single shape parameter and is listed among the planned generalizations
// (paper §5).

// DiscreteGamma returns the k mean-of-category relative rates for a
// gamma(alpha, alpha) distribution (mean 1). The returned rates average
// exactly 1 up to numerical precision.
func DiscreteGamma(alpha float64, k int) ([]float64, error) {
	if alpha <= 0 {
		return nil, fmt.Errorf("model: gamma shape %g, must be positive", alpha)
	}
	if k < 1 {
		return nil, fmt.Errorf("model: %d gamma categories, must be >= 1", k)
	}
	if k == 1 {
		return []float64{1}, nil
	}
	// Category boundaries at quantiles i/k of Gamma(shape=alpha, rate=alpha).
	bounds := make([]float64, k+1)
	bounds[0] = 0
	bounds[k] = math.Inf(1)
	for i := 1; i < k; i++ {
		q, err := gammaQuantile(alpha, float64(i)/float64(k))
		if err != nil {
			return nil, err
		}
		bounds[i] = q / alpha // quantile of rate-alpha gamma
	}
	// Mean within each category: k·(P(alpha+1, alpha·b) − P(alpha+1, alpha·a)).
	rates := make([]float64, k)
	prev := 0.0
	for i := 0; i < k; i++ {
		var next float64
		if i == k-1 {
			next = 1
		} else {
			next = regIncGammaLower(alpha+1, alpha*bounds[i+1])
		}
		rates[i] = float64(k) * (next - prev)
		prev = next
	}
	// Renormalize to mean exactly 1 (guards tiny numeric drift).
	sum := 0.0
	for _, r := range rates {
		sum += r
	}
	for i := range rates {
		rates[i] *= float64(k) / sum
		if rates[i] <= 0 {
			return nil, fmt.Errorf("model: non-positive gamma category rate (alpha=%g, k=%d)", alpha, k)
		}
	}
	return rates, nil
}

// gammaQuantile returns the p-quantile of a Gamma(shape=a, rate=1)
// distribution by bisection on the regularized lower incomplete gamma.
func gammaQuantile(a, p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("model: gamma quantile probability %g outside (0,1)", p)
	}
	lo, hi := 0.0, a+10
	for regIncGammaLower(a, hi) < p {
		hi *= 2
		if hi > 1e12 {
			return 0, fmt.Errorf("model: gamma quantile did not bracket (a=%g, p=%g)", a, p)
		}
	}
	for iter := 0; iter < 200; iter++ {
		mid := (lo + hi) / 2
		if regIncGammaLower(a, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// regIncGammaLower computes the regularized lower incomplete gamma
// function P(a, x) by series expansion for x < a+1 and by continued
// fraction for the complement otherwise (Numerical Recipes gammp).
func regIncGammaLower(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaContinuedFraction(a, x)
	}
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
