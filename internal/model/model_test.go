package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

func randomFreqs(rng *rand.Rand) seq.BaseFreqs {
	var f seq.BaseFreqs
	for {
		sum := 0.0
		for i := range f {
			f[i] = 0.05 + rng.Float64()
			sum += f[i]
		}
		for i := range f {
			f[i] /= sum
		}
		if f.Validate() == nil {
			return f
		}
	}
}

func allModels(t *testing.T, freqs seq.BaseFreqs) []Model {
	t.Helper()
	f84, err := NewF84(freqs, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	hky, err := NewHKY85(freqs, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	k80, err := NewK80(2.0)
	if err != nil {
		t.Fatal(err)
	}
	return []Model{f84, hky, k80, NewJC69()}
}

func TestModelsValidate(t *testing.T) {
	freqs := seq.BaseFreqs{0.31, 0.18, 0.22, 0.29}
	for _, m := range allModels(t, freqs) {
		if err := Validate(m); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

// TestModelsValidateQuick validates every model under random frequency
// vectors and ratios.
func TestModelsValidateQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		freqs := randomFreqs(rng)
		ratio := 0.5 + 4*rng.Float64()
		f84, err := NewF84(freqs, ratio)
		if err != nil || Validate(f84) != nil {
			return false
		}
		hky, err := NewHKY85(freqs, 0.5+8*rng.Float64())
		if err != nil || Validate(hky) != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestChapmanKolmogorov: P(z1)·P(z2) = P(z1+z2).
func TestChapmanKolmogorov(t *testing.T) {
	freqs := seq.BaseFreqs{0.4, 0.1, 0.15, 0.35}
	for _, m := range allModels(t, freqs) {
		d := m.Decomposition()
		var p1, p2, p3 PMatrix
		d.Probs(0.07, 1, &p1)
		d.Probs(0.23, 1, &p2)
		d.Probs(0.30, 1, &p3)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				prod := 0.0
				for k := 0; k < 4; k++ {
					prod += p1[i][k] * p2[k][j]
				}
				if math.Abs(prod-p3[i][j]) > 1e-10 {
					t.Errorf("%s: CK violated at (%d,%d): %g vs %g", m.Name(), i, j, prod, p3[i][j])
				}
			}
		}
	}
}

// TestLongBranchConvergesToFreqs: P_ij(z) -> π_j as z -> inf.
func TestLongBranchConvergesToFreqs(t *testing.T) {
	freqs := seq.BaseFreqs{0.2, 0.3, 0.4, 0.1}
	for _, m := range allModels(t, freqs) {
		var p PMatrix
		m.Decomposition().Probs(500, 1, &p)
		want := m.Freqs()
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if math.Abs(p[i][j]-want[j]) > 1e-9 {
					t.Errorf("%s: P(inf)[%d][%d] = %g, want %g", m.Name(), i, j, p[i][j], want[j])
				}
			}
		}
	}
}

// TestDerivativesMatchFiniteDifferences validates ProbsDeriv against
// numeric differentiation.
func TestDerivativesMatchFiniteDifferences(t *testing.T) {
	freqs := seq.BaseFreqs{0.27, 0.23, 0.26, 0.24}
	const h = 1e-6
	for _, m := range allModels(t, freqs) {
		d := m.Decomposition()
		for _, rate := range []float64{1, 2.5} {
			z := 0.17
			var p, dp, ddp, pPlus, pMinus PMatrix
			d.ProbsDeriv(z, rate, &p, &dp, &ddp)
			d.Probs(z+h, rate, &pPlus)
			d.Probs(z-h, rate, &pMinus)
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					fd1 := (pPlus[i][j] - pMinus[i][j]) / (2 * h)
					fd2 := (pPlus[i][j] - 2*p[i][j] + pMinus[i][j]) / (h * h)
					if math.Abs(fd1-dp[i][j]) > 1e-6 {
						t.Errorf("%s rate %g: dP[%d][%d] = %g, finite diff %g", m.Name(), rate, i, j, dp[i][j], fd1)
					}
					if math.Abs(fd2-ddp[i][j]) > 1e-3 {
						t.Errorf("%s rate %g: ddP[%d][%d] = %g, finite diff %g", m.Name(), rate, i, j, ddp[i][j], fd2)
					}
				}
			}
		}
	}
}

func TestF84RatioAdjustment(t *testing.T) {
	freqs := seq.BaseFreqs{0.25, 0.25, 0.25, 0.25}
	// minRatio for uniform freqs = (1/16+1/16)/(1/4) = 0.5.
	m, err := NewF84(freqs, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Adjusted() {
		t.Error("ratio 0.1 should be adjusted upward")
	}
	if m.Ratio() <= 0.5 {
		t.Errorf("adjusted ratio %g should exceed 0.5", m.Ratio())
	}
	if err := Validate(m); err != nil {
		t.Errorf("adjusted model invalid: %v", err)
	}
	m2, err := NewF84(freqs, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Adjusted() {
		t.Error("ratio 2.0 should not need adjustment")
	}
	if m2.TransitionFraction() <= 0 || m2.TransitionFraction() >= 1 {
		t.Errorf("xi = %g outside (0,1)", m2.TransitionFraction())
	}
}

func TestF84Errors(t *testing.T) {
	if _, err := NewF84(seq.Uniform(), -1); err == nil {
		t.Error("negative ratio should fail")
	}
	if _, err := NewF84(seq.BaseFreqs{1, 1, 1, 1}, 2); err == nil {
		t.Error("unnormalized frequencies should fail")
	}
	if _, err := NewHKY85(seq.Uniform(), 0); err == nil {
		t.Error("zero kappa should fail")
	}
}

// TestF84TransitionBias: at moderate branch lengths transitions (A<->G)
// must be more probable than transversions (A<->C) for ratio > 1.
func TestF84TransitionBias(t *testing.T) {
	m, err := NewF84(seq.Uniform(), 4.0)
	if err != nil {
		t.Fatal(err)
	}
	var p PMatrix
	m.Decomposition().Probs(0.1, 1, &p)
	if p[0][2] <= p[0][1] {
		t.Errorf("P(A->G)=%g should exceed P(A->C)=%g with ratio 4", p[0][2], p[0][1])
	}
}

func TestK80EqualsJCWhenKappa1(t *testing.T) {
	k80, err := NewK80(1.0)
	if err != nil {
		t.Fatal(err)
	}
	jc := NewJC69()
	var p1, p2 PMatrix
	k80.Decomposition().Probs(0.2, 1, &p1)
	jc.Decomposition().Probs(0.2, 1, &p2)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(p1[i][j]-p2[i][j]) > 1e-12 {
				t.Errorf("K80(1) != JC69 at (%d,%d): %g vs %g", i, j, p1[i][j], p2[i][j])
			}
		}
	}
}

// TestRateScaling: Probs(z, r) == Probs(z*r, 1).
func TestRateScaling(t *testing.T) {
	m, _ := NewF84(seq.BaseFreqs{0.3, 0.2, 0.2, 0.3}, 2)
	var p1, p2 PMatrix
	m.Decomposition().Probs(0.1, 3, &p1)
	m.Decomposition().Probs(0.3, 1, &p2)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(p1[i][j]-p2[i][j]) > 1e-14 {
				t.Errorf("rate scaling broken at (%d,%d)", i, j)
			}
		}
	}
}

func TestDiscreteGammaMeanOne(t *testing.T) {
	for _, alpha := range []float64{0.2, 0.5, 1, 2, 10} {
		for _, k := range []int{1, 2, 4, 8} {
			rates, err := DiscreteGamma(alpha, k)
			if err != nil {
				t.Fatalf("alpha=%g k=%d: %v", alpha, k, err)
			}
			if len(rates) != k {
				t.Fatalf("got %d rates, want %d", len(rates), k)
			}
			mean := 0.0
			for i := 1; i < k; i++ {
				if rates[i] <= rates[i-1] {
					t.Errorf("alpha=%g k=%d: rates not increasing: %v", alpha, k, rates)
				}
			}
			for _, r := range rates {
				mean += r
			}
			mean /= float64(k)
			if math.Abs(mean-1) > 1e-9 {
				t.Errorf("alpha=%g k=%d: mean rate %g, want 1", alpha, k, mean)
			}
		}
	}
}

func TestDiscreteGammaSpread(t *testing.T) {
	// Smaller alpha means more heterogeneity: wider rate spread.
	lo, _ := DiscreteGamma(0.3, 4)
	hi, _ := DiscreteGamma(5.0, 4)
	if lo[3]-lo[0] <= hi[3]-hi[0] {
		t.Errorf("alpha=0.3 spread %g should exceed alpha=5 spread %g", lo[3]-lo[0], hi[3]-hi[0])
	}
}

func TestDiscreteGammaErrors(t *testing.T) {
	if _, err := DiscreteGamma(0, 4); err == nil {
		t.Error("alpha=0 should fail")
	}
	if _, err := DiscreteGamma(1, 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestRegIncGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 1, 3, 10} {
		got := regIncGammaLower(1, x)
		want := 1 - math.Exp(-x)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("P(1,%g) = %g, want %g", x, got, want)
		}
	}
	// P(a, 0) = 0; P monotone increasing in x.
	if regIncGammaLower(2.5, 0) != 0 {
		t.Error("P(a,0) != 0")
	}
	prev := 0.0
	for x := 0.5; x < 20; x += 0.5 {
		v := regIncGammaLower(2.5, x)
		if v < prev {
			t.Errorf("P(2.5,x) not monotone at %g", x)
		}
		prev = v
	}
	if prev < 0.999999 {
		t.Errorf("P(2.5,20) = %g, want ~1", prev)
	}
}

func TestGammaQuantileInvertsCDF(t *testing.T) {
	for _, a := range []float64{0.5, 1, 3} {
		for _, p := range []float64{0.1, 0.5, 0.9} {
			q, err := gammaQuantile(a, p)
			if err != nil {
				t.Fatal(err)
			}
			if back := regIncGammaLower(a, q); math.Abs(back-p) > 1e-9 {
				t.Errorf("Q(%g,%g): CDF(quantile) = %g", a, p, back)
			}
		}
	}
}
