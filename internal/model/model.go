// Package model implements the nucleotide substitution models used by
// fastDNAml and its planned extensions (paper §5 "more general models of
// nucleotide change"): F84 (the model of DNAml/fastDNAml), JC69, K80, and
// HKY85, plus discrete-gamma rate heterogeneity.
//
// Every model is exposed through its spectral decomposition
//
//	P(z) = Σ_k C_k · exp(λ_k · z)
//
// with λ_0 = 0 and λ_k < 0, normalized so that branch length z is the
// expected number of substitutions per site. The decomposition makes the
// transition matrix and its first two derivatives (needed by the Newton
// branch-length optimizer) closed-form for any model.
package model

import (
	"fmt"
	"math"

	"repro/internal/seq"
)

// PMatrix is a 4x4 transition probability (or coefficient) matrix indexed
// [from][to] in A, C, G, T order.
type PMatrix [4][4]float64

// Decomposition is the spectral expansion of a reversible substitution
// model's transition matrix.
type Decomposition struct {
	// Lambda holds the eigenvalue rates; Lambda[0] must be 0 and the
	// rest negative.
	Lambda []float64
	// Coef[k] is the coefficient matrix attached to exp(Lambda[k]*z).
	Coef []PMatrix
}

// Model is a rate-normalized reversible nucleotide substitution model.
type Model interface {
	// Name identifies the model ("F84", "JC69", ...).
	Name() string
	// Freqs returns the equilibrium base frequencies.
	Freqs() seq.BaseFreqs
	// Decomposition returns the spectral expansion of the model. The
	// returned value must not be modified.
	Decomposition() *Decomposition
}

// Probs fills p with the transition probabilities for branch length z at
// relative site rate r (effective length z*r).
func (d *Decomposition) Probs(z, r float64, p *PMatrix) {
	t := z * r
	for i := range p {
		for j := range p[i] {
			p[i][j] = 0
		}
	}
	for k, lam := range d.Lambda {
		e := math.Exp(lam * t)
		c := &d.Coef[k]
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				p[i][j] += c[i][j] * e
			}
		}
	}
}

// ProbsDeriv fills p, dp, and ddp with the transition probabilities and
// their first and second derivatives with respect to z, at relative site
// rate r.
func (d *Decomposition) ProbsDeriv(z, r float64, p, dp, ddp *PMatrix) {
	t := z * r
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			p[i][j], dp[i][j], ddp[i][j] = 0, 0, 0
		}
	}
	for k, lam := range d.Lambda {
		e := math.Exp(lam * t)
		l1 := lam * r
		l2 := l1 * l1
		c := &d.Coef[k]
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				v := c[i][j] * e
				p[i][j] += v
				dp[i][j] += l1 * v
				ddp[i][j] += l2 * v
			}
		}
	}
}

// Validate checks decomposition sanity: λ_0 = 0, λ_k < 0, rows of P(0)
// forming the identity, row-stochastic P at a few lengths, and detailed
// balance π_i P_ij = π_j P_ji.
func Validate(m Model) error {
	d := m.Decomposition()
	if len(d.Lambda) == 0 || len(d.Lambda) != len(d.Coef) {
		return fmt.Errorf("model %s: malformed decomposition", m.Name())
	}
	if d.Lambda[0] != 0 {
		return fmt.Errorf("model %s: Lambda[0] = %g, want 0", m.Name(), d.Lambda[0])
	}
	for _, l := range d.Lambda[1:] {
		if l >= 0 {
			return fmt.Errorf("model %s: non-negative eigenvalue %g", m.Name(), l)
		}
	}
	freqs := m.Freqs()
	if err := freqs.Validate(); err != nil {
		return fmt.Errorf("model %s: %w", m.Name(), err)
	}
	var p PMatrix
	for _, z := range []float64{0, 0.01, 0.3, 2.5} {
		d.Probs(z, 1, &p)
		for i := 0; i < 4; i++ {
			row := 0.0
			for j := 0; j < 4; j++ {
				if p[i][j] < -1e-12 {
					return fmt.Errorf("model %s: P[%d][%d](%g) = %g < 0", m.Name(), i, j, z, p[i][j])
				}
				row += p[i][j]
			}
			if math.Abs(row-1) > 1e-9 {
				return fmt.Errorf("model %s: row %d of P(%g) sums to %g", m.Name(), i, z, row)
			}
			if z == 0 {
				for j := 0; j < 4; j++ {
					want := 0.0
					if i == j {
						want = 1
					}
					if math.Abs(p[i][j]-want) > 1e-9 {
						return fmt.Errorf("model %s: P(0)[%d][%d] = %g", m.Name(), i, j, p[i][j])
					}
				}
			}
		}
		// Detailed balance (time reversibility).
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if diff := freqs[i]*p[i][j] - freqs[j]*p[j][i]; math.Abs(diff) > 1e-9 {
					return fmt.Errorf("model %s: detailed balance violated at z=%g (%d,%d): %g", m.Name(), z, i, j, diff)
				}
			}
		}
	}
	// Rate normalization: -Σ_i π_i * dP_ii/dz at z=0 must be 1.
	var p0, dp0, ddp0 PMatrix
	d.ProbsDeriv(0, 1, &p0, &dp0, &ddp0)
	rate := 0.0
	for i := 0; i < 4; i++ {
		rate -= freqs[i] * dp0[i][i]
	}
	if math.Abs(rate-1) > 1e-9 {
		return fmt.Errorf("model %s: expected rate %g per unit branch length, want 1", m.Name(), rate)
	}
	return nil
}

// purine reports whether base index b (0..3 = ACGT) is a purine (A or G).
func purine(b int) bool { return b == 0 || b == 2 }

// sameGroup reports whether bases i and j are both purines or both
// pyrimidines.
func sameGroup(i, j int) bool { return purine(i) == purine(j) }
