package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/seq"
)

func TestGTRValidates(t *testing.T) {
	freqs := seq.BaseFreqs{0.3, 0.2, 0.25, 0.25}
	m, err := NewGTR(freqs, GTRRates{AC: 1.2, AG: 3.5, AT: 0.8, CG: 1.1, CT: 4.2, GT: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
	if m.Name() != "GTR" {
		t.Errorf("name %s", m.Name())
	}
}

// TestGTRValidatesQuick: random frequencies and exchangeabilities always
// produce a valid rate-normalized reversible model.
func TestGTRValidatesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		freqs := randomFreqs(rng)
		r := GTRRates{
			AC: 0.2 + 5*rng.Float64(), AG: 0.2 + 5*rng.Float64(), AT: 0.2 + 5*rng.Float64(),
			CG: 0.2 + 5*rng.Float64(), CT: 0.2 + 5*rng.Float64(), GT: 0.2 + 5*rng.Float64(),
		}
		m, err := NewGTR(freqs, r)
		if err != nil {
			return false
		}
		return Validate(m) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGTRReducesToJC: unit exchangeabilities with uniform frequencies
// give Jukes-Cantor probabilities.
func TestGTRReducesToJC(t *testing.T) {
	m, err := NewGTR(seq.Uniform(), GTRRates{AC: 1, AG: 1, AT: 1, CG: 1, CT: 1, GT: 1})
	if err != nil {
		t.Fatal(err)
	}
	jc := NewJC69()
	var pg, pj PMatrix
	for _, z := range []float64{0.01, 0.1, 0.5, 2} {
		m.Decomposition().Probs(z, 1, &pg)
		jc.Decomposition().Probs(z, 1, &pj)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if math.Abs(pg[i][j]-pj[i][j]) > 1e-10 {
					t.Errorf("z=%g (%d,%d): GTR %g vs JC %g", z, i, j, pg[i][j], pj[i][j])
				}
			}
		}
	}
}

// TestGTRMatchesHKY: GTR with HKY-pattern exchangeabilities (kappa on
// transitions) equals HKY85.
func TestGTRMatchesHKY(t *testing.T) {
	freqs := seq.BaseFreqs{0.35, 0.15, 0.2, 0.3}
	kappa := 3.7
	gtr, err := NewGTR(freqs, GTRRates{AC: 1, AG: kappa, AT: 1, CG: 1, CT: kappa, GT: 1})
	if err != nil {
		t.Fatal(err)
	}
	hky, err := NewHKY85(freqs, kappa)
	if err != nil {
		t.Fatal(err)
	}
	var pg, ph PMatrix
	for _, z := range []float64{0.05, 0.3, 1.5} {
		gtr.Decomposition().Probs(z, 1, &pg)
		hky.Decomposition().Probs(z, 1, &ph)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if math.Abs(pg[i][j]-ph[i][j]) > 1e-9 {
					t.Errorf("z=%g (%d,%d): GTR %g vs HKY %g", z, i, j, pg[i][j], ph[i][j])
				}
			}
		}
	}
}

func TestGTRChapmanKolmogorov(t *testing.T) {
	freqs := seq.BaseFreqs{0.22, 0.28, 0.31, 0.19}
	m, err := NewGTR(freqs, GTRRates{AC: 0.7, AG: 2.9, AT: 1.3, CG: 0.6, CT: 5.1, GT: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	d := m.Decomposition()
	var p1, p2, p3 PMatrix
	d.Probs(0.11, 1, &p1)
	d.Probs(0.29, 1, &p2)
	d.Probs(0.40, 1, &p3)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			prod := 0.0
			for k := 0; k < 4; k++ {
				prod += p1[i][k] * p2[k][j]
			}
			if math.Abs(prod-p3[i][j]) > 1e-10 {
				t.Errorf("CK violated at (%d,%d): %g vs %g", i, j, prod, p3[i][j])
			}
		}
	}
}

func TestGTRErrors(t *testing.T) {
	if _, err := NewGTR(seq.Uniform(), GTRRates{AC: 0, AG: 1, AT: 1, CG: 1, CT: 1, GT: 1}); err == nil {
		t.Error("zero exchangeability accepted")
	}
	if _, err := NewGTR(seq.BaseFreqs{1, 1, 1, 1}, GTRRates{AC: 1, AG: 1, AT: 1, CG: 1, CT: 1, GT: 1}); err == nil {
		t.Error("unnormalized frequencies accepted")
	}
}

func TestJacobiEigenOrthogonal(t *testing.T) {
	// Diagonalize a known symmetric matrix and verify A = V diag V^T.
	a := [4][4]float64{
		{2, -1, 0, 0.5},
		{-1, 3, 0.25, 0},
		{0, 0.25, 1, -0.75},
		{0.5, 0, -0.75, 2.5},
	}
	orig := a
	eig, v, err := jacobiEigen4(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			recon := 0.0
			for k := 0; k < 4; k++ {
				recon += v[i][k] * eig[k] * v[j][k]
			}
			if math.Abs(recon-orig[i][j]) > 1e-10 {
				t.Errorf("reconstruction (%d,%d): %g vs %g", i, j, recon, orig[i][j])
			}
		}
	}
	// V orthogonal.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			dot := 0.0
			for k := 0; k < 4; k++ {
				dot += v[k][i] * v[k][j]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-10 {
				t.Errorf("V not orthogonal at (%d,%d): %g", i, j, dot)
			}
		}
	}
}
