package model

import (
	"fmt"

	"repro/internal/seq"
)

// HKY85 is the Hasegawa-Kishino-Yano 1985 model: arbitrary equilibrium
// frequencies with a transition rate multiplier kappa. K80 (Kimura two
// parameter) is HKY85 with uniform frequencies, and JC69 is K80 with
// kappa = 1. HKY85 is one of the "more general models of nucleotide
// change" the paper lists as a priority extension (§5).
type HKY85 struct {
	name   string
	freqs  seq.BaseFreqs
	kappa  float64
	decomp Decomposition
}

// NewHKY85 builds an HKY85 model with transition rate multiplier kappa
// (kappa = 1 reduces to F81/JC-style equal treatment of all changes).
func NewHKY85(freqs seq.BaseFreqs, kappa float64) (*HKY85, error) {
	return newHKY("HKY85", freqs, kappa)
}

// NewK80 builds a Kimura 1980 model (uniform frequencies) with transition
// rate multiplier kappa.
func NewK80(kappa float64) (*HKY85, error) {
	return newHKY("K80", seq.Uniform(), kappa)
}

func newHKY(name string, freqs seq.BaseFreqs, kappa float64) (*HKY85, error) {
	if err := freqs.Validate(); err != nil {
		return nil, err
	}
	if kappa <= 0 {
		return nil, fmt.Errorf("model: kappa %g, must be positive", kappa)
	}
	m := &HKY85{name: name, freqs: freqs, kappa: kappa}
	piA, piC, piG, piT := freqs[0], freqs[1], freqs[2], freqs[3]
	piR := piA + piG
	piY := piC + piT

	// Normalize so the expected substitution rate is 1:
	// rate = β·[2(πAπC+πAπT+πCπG+πGπT) + 2κ(πAπG+πCπT)].
	tv := 2 * (piA*piC + piA*piT + piC*piG + piG*piT)
	ts := 2 * (piA*piG + piC*piT)
	beta := 1 / (tv + kappa*ts)

	// Eigenvalues: 0, −β (general), −β(πY·κ+πR) for pyrimidine-group
	// transitions, −β(πR·κ+πY) for purine-group transitions.
	lamGen := -beta
	lamR := -beta * (piR*kappa + piY)
	lamY := -beta * (piY*kappa + piR)

	group := [4]float64{piR, piY, piR, piY}
	var c0, cGen, cR, cY PMatrix
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			c0[i][j] = freqs[j]
			if sameGroup(i, j) {
				cGen[i][j] = freqs[j] * (1/group[j] - 1)
				var cg *PMatrix
				if purine(j) {
					cg = &cR
				} else {
					cg = &cY
				}
				if i == j {
					cg[i][j] = (group[j] - freqs[j]) / group[j]
				} else {
					cg[i][j] = -freqs[j] / group[j]
				}
			} else {
				cGen[i][j] = -freqs[j]
			}
		}
	}
	m.decomp = Decomposition{
		Lambda: []float64{0, lamGen, lamR, lamY},
		Coef:   []PMatrix{c0, cGen, cR, cY},
	}
	return m, nil
}

// Name implements Model.
func (m *HKY85) Name() string { return m.name }

// Freqs implements Model.
func (m *HKY85) Freqs() seq.BaseFreqs { return m.freqs }

// Decomposition implements Model.
func (m *HKY85) Decomposition() *Decomposition { return &m.decomp }

// Kappa returns the transition rate multiplier.
func (m *HKY85) Kappa() float64 { return m.kappa }
