package model

import (
	"fmt"
	"math"

	"repro/internal/seq"
)

// GTR is the general time-reversible model: arbitrary equilibrium
// frequencies and six exchangeability parameters, the most general of the
// "more general models of nucleotide change" the paper plans (§5). Its
// transition matrix has no closed form, so the spectral decomposition is
// computed numerically: the rate matrix is similarity-transformed to a
// symmetric matrix via the equilibrium frequencies and diagonalized with
// Jacobi rotations (exact for reversible models).
type GTR struct {
	freqs  seq.BaseFreqs
	rates  GTRRates
	decomp Decomposition
}

// GTRRates holds the six exchangeabilities in the conventional order.
type GTRRates struct {
	AC, AG, AT, CG, CT, GT float64
}

// NewGTR builds a rate-normalized GTR model. All exchangeabilities must
// be positive; (1,1,1,1,1,1) with uniform frequencies reduces to JC69.
func NewGTR(freqs seq.BaseFreqs, r GTRRates) (*GTR, error) {
	if err := freqs.Validate(); err != nil {
		return nil, err
	}
	ex := [4][4]float64{}
	pairs := []struct {
		i, j int
		v    float64
	}{
		{0, 1, r.AC}, {0, 2, r.AG}, {0, 3, r.AT},
		{1, 2, r.CG}, {1, 3, r.CT}, {2, 3, r.GT},
	}
	for _, p := range pairs {
		if p.v <= 0 {
			return nil, fmt.Errorf("model: non-positive GTR exchangeability between %c and %c",
				seq.BaseName(p.i), seq.BaseName(p.j))
		}
		ex[p.i][p.j] = p.v
		ex[p.j][p.i] = p.v
	}

	// Rate matrix Q[i][j] = ex[i][j] * pi[j], rows summing to zero.
	var q [4][4]float64
	for i := 0; i < 4; i++ {
		row := 0.0
		for j := 0; j < 4; j++ {
			if i != j {
				q[i][j] = ex[i][j] * freqs[j]
				row += q[i][j]
			}
		}
		q[i][i] = -row
	}
	// Normalize to one expected substitution per unit branch length.
	mu := 0.0
	for i := 0; i < 4; i++ {
		mu -= freqs[i] * q[i][i]
	}
	if mu <= 0 {
		return nil, fmt.Errorf("model: degenerate GTR rate matrix")
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			q[i][j] /= mu
		}
	}

	// Symmetrize: S = D^{1/2} Q D^{-1/2} with D = diag(pi); S is
	// symmetric for reversible Q and shares its eigenvalues.
	var s [4][4]float64
	var sqrtPi, invSqrtPi [4]float64
	for i := 0; i < 4; i++ {
		sqrtPi[i] = math.Sqrt(freqs[i])
		invSqrtPi[i] = 1 / sqrtPi[i]
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			s[i][j] = sqrtPi[i] * q[i][j] * invSqrtPi[j]
		}
	}

	lambda, v, err := jacobiEigen4(s)
	if err != nil {
		return nil, err
	}

	// Coefficient matrices: C_k[i][j] = (D^{-1/2} V)[i][k] * (V^T D^{1/2})[k][j].
	d := Decomposition{}
	// Order eigenvalues with the ~0 one first, as Decomposition requires.
	order := []int{0, 1, 2, 3}
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			if lambda[order[b]] > lambda[order[a]] {
				order[a], order[b] = order[b], order[a]
			}
		}
	}
	for ki, k := range order {
		lam := lambda[k]
		if ki == 0 {
			// The equilibrium eigenvalue is 0 up to roundoff.
			if math.Abs(lam) > 1e-9 {
				return nil, fmt.Errorf("model: GTR leading eigenvalue %g, want 0", lam)
			}
			lam = 0
		} else if lam >= 0 {
			return nil, fmt.Errorf("model: GTR eigenvalue %g, want negative", lam)
		}
		var c PMatrix
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				c[i][j] = invSqrtPi[i] * v[i][k] * v[j][k] * sqrtPi[j]
			}
		}
		d.Lambda = append(d.Lambda, lam)
		d.Coef = append(d.Coef, c)
	}
	return &GTR{freqs: freqs, rates: r, decomp: d}, nil
}

// Name implements Model.
func (m *GTR) Name() string { return "GTR" }

// Freqs implements Model.
func (m *GTR) Freqs() seq.BaseFreqs { return m.freqs }

// Decomposition implements Model.
func (m *GTR) Decomposition() *Decomposition { return &m.decomp }

// Rates returns the exchangeabilities.
func (m *GTR) Rates() GTRRates { return m.rates }

// jacobiEigen4 diagonalizes a symmetric 4x4 matrix by cyclic Jacobi
// rotations, returning eigenvalues and the orthogonal eigenvector matrix
// (columns are eigenvectors).
func jacobiEigen4(a [4][4]float64) (eig [4]float64, v [4][4]float64, err error) {
	for i := 0; i < 4; i++ {
		v[i][i] = 1
	}
	for sweep := 0; sweep < 100; sweep++ {
		off := 0.0
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-30 {
			for i := 0; i < 4; i++ {
				eig[i] = a[i][i]
			}
			return eig, v, nil
		}
		for p := 0; p < 4; p++ {
			for q := p + 1; q < 4; q++ {
				if math.Abs(a[p][q]) < 1e-300 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				if theta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation G(p,q,theta): A' = G^T A G, V' = V G.
				var ap, aq [4]float64
				for k := 0; k < 4; k++ {
					ap[k] = a[k][p]
					aq[k] = a[k][q]
				}
				for k := 0; k < 4; k++ {
					a[k][p] = c*ap[k] - s*aq[k]
					a[k][q] = s*ap[k] + c*aq[k]
				}
				for k := 0; k < 4; k++ {
					ap[k] = a[p][k]
					aq[k] = a[q][k]
				}
				for k := 0; k < 4; k++ {
					a[p][k] = c*ap[k] - s*aq[k]
					a[q][k] = s*ap[k] + c*aq[k]
				}
				for k := 0; k < 4; k++ {
					vp := v[k][p]
					vq := v[k][q]
					v[k][p] = c*vp - s*vq
					v[k][q] = s*vp + c*vq
				}
			}
		}
	}
	return eig, v, fmt.Errorf("model: Jacobi iteration did not converge")
}
