package model

import (
	"fmt"

	"repro/internal/seq"
)

// F84 is the Felsenstein 1984 model as parameterized by DNAml and
// fastDNAml: empirical base frequencies plus a transition/transversion
// ratio R. Following fastDNAml's getbasefreqs:
//
//	πR = πA+πG, πY = πC+πT
//	aa = R·πR·πY − πAπG − πCπT
//	bb = πAπG/πR + πCπT/πY
//	xi = aa/(aa+bb), xv = 1−xi
//	fracchange = xi·(2πAπG/πR + 2πCπT/πY) + xv·(1 − Σπ²)
//
// and the transition matrix uses two exponentials, exp(−xv·z/fracchange)
// and exp(−z/fracchange), making the expected substitution rate exactly 1
// per unit branch length.
type F84 struct {
	freqs   seq.BaseFreqs
	ratio   float64 // the (possibly adjusted) transition/transversion ratio
	xi, xv  float64
	frac    float64 // fracchange
	decomp  Decomposition
	adjust  bool // whether the ratio was raised to keep xi positive
	origRat float64
}

// DefaultTTRatio is fastDNAml's default transition/transversion ratio.
const DefaultTTRatio = 2.0

// NewF84 builds an F84 model from equilibrium frequencies and a
// transition/transversion ratio. As in fastDNAml, a ratio too small for
// the given frequencies (making the transition fraction non-positive) is
// raised to the smallest valid value; Adjusted reports when that happened.
func NewF84(freqs seq.BaseFreqs, ttratio float64) (*F84, error) {
	if err := freqs.Validate(); err != nil {
		return nil, err
	}
	if ttratio <= 0 {
		return nil, fmt.Errorf("model: transition/transversion ratio %g, must be positive", ttratio)
	}
	m := &F84{freqs: freqs, origRat: ttratio, ratio: ttratio}
	piA, piC, piG, piT := freqs[0], freqs[1], freqs[2], freqs[3]
	piR := piA + piG
	piY := piC + piT
	minRatio := (piA*piG + piC*piT) / (piR * piY)
	if m.ratio <= minRatio {
		m.ratio = minRatio * 1.000001
		m.adjust = true
	}
	aa := m.ratio*piR*piY - piA*piG - piC*piT
	bb := piA*piG/piR + piC*piT/piY
	m.xi = aa / (aa + bb)
	m.xv = 1 - m.xi
	sumsq := piA*piA + piC*piC + piG*piG + piT*piT
	m.frac = m.xi*(2*piA*piG/piR+2*piC*piT/piY) + m.xv*(1-sumsq)
	if m.frac <= 0 {
		return nil, fmt.Errorf("model: degenerate F84 parameters (fracchange %g)", m.frac)
	}

	// Spectral expansion: P_ij(z) = π_j
	//   + e1·( [same group]·π_j/Π_j − π_j )
	//   + e2·( δ_ij − [same group]·π_j/Π_j )
	// with e1 = exp(−xv·z/frac), e2 = exp(−z/frac).
	group := [4]float64{piR, piY, piR, piY} // Π_j per base j
	var c0, c1, c2 PMatrix
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			c0[i][j] = freqs[j]
			if sameGroup(i, j) {
				c1[i][j] = freqs[j]/group[j] - freqs[j]
				c2[i][j] = -freqs[j] / group[j]
			} else {
				c1[i][j] = -freqs[j]
			}
			if i == j {
				c2[i][j] += 1
			}
		}
	}
	m.decomp = Decomposition{
		Lambda: []float64{0, -m.xv / m.frac, -1 / m.frac},
		Coef:   []PMatrix{c0, c1, c2},
	}
	return m, nil
}

// Name implements Model.
func (m *F84) Name() string { return "F84" }

// Freqs implements Model.
func (m *F84) Freqs() seq.BaseFreqs { return m.freqs }

// Decomposition implements Model.
func (m *F84) Decomposition() *Decomposition { return &m.decomp }

// Ratio returns the effective transition/transversion ratio (after any
// adjustment).
func (m *F84) Ratio() float64 { return m.ratio }

// Adjusted reports whether the requested ratio was raised to keep the
// transition fraction positive, as fastDNAml does.
func (m *F84) Adjusted() bool { return m.adjust }

// FracChange returns fastDNAml's fracchange normalization constant.
func (m *F84) FracChange() float64 { return m.frac }

// TransitionFraction returns xi, the fraction of the substitution rate
// attributable to within-group (transition) events.
func (m *F84) TransitionFraction() float64 { return m.xi }
