package model

import "repro/internal/seq"

// JC69 is the Jukes-Cantor 1969 model: uniform frequencies, all changes
// equally likely. P_ij(z) = 1/4 + (δ_ij − 1/4)·exp(−4z/3).
type JC69 struct {
	decomp Decomposition
}

// NewJC69 builds a Jukes-Cantor model.
func NewJC69() *JC69 {
	var c0, c1 PMatrix
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			c0[i][j] = 0.25
			c1[i][j] = -0.25
			if i == j {
				c1[i][j] = 0.75
			}
		}
	}
	return &JC69{decomp: Decomposition{
		Lambda: []float64{0, -4.0 / 3.0},
		Coef:   []PMatrix{c0, c1},
	}}
}

// Name implements Model.
func (m *JC69) Name() string { return "JC69" }

// Freqs implements Model.
func (m *JC69) Freqs() seq.BaseFreqs { return seq.Uniform() }

// Decomposition implements Model.
func (m *JC69) Decomposition() *Decomposition { return &m.decomp }
