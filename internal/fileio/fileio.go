// Package fileio holds the small file-format helpers shared by the
// command line tools: newline-delimited Newick tree lists and numeric
// column files (site rates, site weights, category files).
package fileio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/tree"
)

// ReadTrees parses a file of Newick trees (one per line; blank lines and
// '#' comments ignored) over the given taxon set.
func ReadTrees(r io.Reader, taxa []string) ([]*tree.Tree, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var out []*tree.Tree
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := tree.ParseNewick(line, taxa)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no trees found")
	}
	return out, nil
}

// ReadTreesFile is ReadTrees over a path.
func ReadTreesFile(path string, taxa []string) ([]*tree.Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ts, err := ReadTrees(f, taxa)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ts, nil
}

// TaxaFromTreesFile extracts the taxon labels appearing in the first tree
// of a Newick file, in order of first appearance, for tools that have no
// alignment to define the taxon set.
func TaxaFromTreesFile(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return ExtractLabels(line)
	}
	return nil, fmt.Errorf("%s: no trees found", path)
}

// ExtractLabels pulls the leaf labels out of one Newick string, in
// appearance order.
func ExtractLabels(newick string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	i := 0
	expectLeaf := true
	for i < len(newick) {
		ch := newick[i]
		switch ch {
		case '(', ',':
			expectLeaf = true
			i++
		case ')':
			expectLeaf = false
			i++
			// skip internal label
			for i < len(newick) && newick[i] != ',' && newick[i] != ')' && newick[i] != ':' && newick[i] != ';' {
				i++
			}
		case ':':
			i++
			for i < len(newick) && strings.IndexByte("0123456789.eE+-", newick[i]) >= 0 {
				i++
			}
		case ';', ' ', '\t':
			i++
		case '[':
			end := strings.IndexByte(newick[i:], ']')
			if end < 0 {
				return nil, fmt.Errorf("unterminated comment")
			}
			i += end + 1
		case '\'':
			j := i + 1
			var label strings.Builder
			for j < len(newick) {
				if newick[j] == '\'' {
					if j+1 < len(newick) && newick[j+1] == '\'' {
						label.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				label.WriteByte(newick[j])
				j++
			}
			if j >= len(newick) {
				return nil, fmt.Errorf("unterminated quoted label")
			}
			if expectLeaf && !seen[label.String()] {
				seen[label.String()] = true
				out = append(out, label.String())
			}
			i = j + 1
			expectLeaf = false
		default:
			j := i
			for j < len(newick) && strings.IndexByte("(),:;[ \t'", newick[j]) < 0 {
				j++
			}
			label := newick[i:j]
			if expectLeaf && label != "" && !seen[label] {
				seen[label] = true
				out = append(out, label)
			}
			i = j
			expectLeaf = false
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no labels found")
	}
	return out, nil
}

// ReadFloats parses a whitespace/newline-separated list of numbers
// ('#' comments ignored).
func ReadFloats(r io.Reader) ([]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var out []float64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = strings.TrimSpace(line[:idx])
		}
		if line == "" {
			continue
		}
		for _, field := range strings.Fields(line) {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: %q: %w", lineNo, field, err)
			}
			out = append(out, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadFloatsFile is ReadFloats over a path.
func ReadFloatsFile(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	vs, err := ReadFloats(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return vs, nil
}

// WriteLines writes strings to a file, one per line.
func WriteLines(path string, lines []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, line := range lines {
		fmt.Fprintln(w, line)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
