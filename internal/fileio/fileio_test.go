package fileio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadTrees(t *testing.T) {
	taxa := []string{"a", "b", "c", "d"}
	in := `# a comment
((a,b),c,d);

((a,c),b,d);
`
	trees, err := ReadTrees(strings.NewReader(in), taxa)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Fatalf("%d trees", len(trees))
	}
	if trees[0].NumLeaves() != 4 {
		t.Errorf("tree 0 has %d leaves", trees[0].NumLeaves())
	}
}

func TestReadTreesErrors(t *testing.T) {
	taxa := []string{"a", "b", "c"}
	if _, err := ReadTrees(strings.NewReader(""), taxa); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadTrees(strings.NewReader("(a,b,zz);"), taxa); err == nil {
		t.Error("unknown taxon accepted")
	}
}

func TestExtractLabels(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"((a:1,b:2):0.5,c,d);", []string{"a", "b", "c", "d"}},
		{"(a,b,'Homo sapiens');", []string{"a", "b", "Homo sapiens"}},
		{"((a,b)label,c)root;", []string{"a", "b", "c"}},
		{"(a,(b,c)[comment]);", []string{"a", "b", "c"}},
		{"('it''s',b,c);", []string{"it's", "b", "c"}},
	}
	for _, c := range cases {
		got, err := ExtractLabels(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("%q: got %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%q: got %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
	if _, err := ExtractLabels("();"); err == nil {
		t.Error("empty tree accepted")
	}
}

func TestTaxaFromTreesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trees.nwk")
	if err := os.WriteFile(path, []byte("# hdr\n((x,y),z,w);\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	taxa, err := TaxaFromTreesFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(taxa) != 4 || taxa[0] != "x" {
		t.Errorf("taxa = %v", taxa)
	}
	if _, err := TaxaFromTreesFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadFloats(t *testing.T) {
	in := "1.5 2\n# comment\n3e-2  # trailing comment\n\n4\n"
	vs, err := ReadFloats(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 2, 0.03, 4}
	if len(vs) != len(want) {
		t.Fatalf("%v", vs)
	}
	for i := range vs {
		if vs[i] != want[i] {
			t.Errorf("vs[%d] = %g, want %g", i, vs[i], want[i])
		}
	}
	if _, err := ReadFloats(strings.NewReader("abc")); err == nil {
		t.Error("non-numeric accepted")
	}
}

func TestWriteLinesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteLines(path, []string{"one", "two"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "one\ntwo\n" {
		t.Errorf("content %q", data)
	}
}

func TestReadTreesFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trees.nwk")
	if err := os.WriteFile(path, []byte("((a,b),c,d);\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	trees, err := ReadTreesFile(path, []string{"a", "b", "c", "d"})
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 {
		t.Fatalf("%d trees", len(trees))
	}
	if _, err := ReadTreesFile(filepath.Join(dir, "nope"), nil); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadFloatsFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.txt")
	if err := os.WriteFile(path, []byte("0.5\n1.5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	vs, err := ReadFloatsFile(path)
	if err != nil || len(vs) != 2 {
		t.Fatalf("%v %v", vs, err)
	}
}
