package comm

import "testing"

// BenchmarkLocalPingPong measures one request/reply round trip through
// the in-process backend.
func BenchmarkLocalPingPong(b *testing.B) {
	w, err := NewLocal(2)
	if err != nil {
		b.Fatal(err)
	}
	defer closeWorld(w)
	payload := make([]byte, 1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := w[1].Recv(0, TagTask)
			if err != nil {
				return
			}
			if err := w[1].Send(0, TagResult, m.Data); err != nil {
				return
			}
		}
	}()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w[0].Send(1, TagTask, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := w[0].Recv(1, TagResult); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	w[1].Close()
	<-done
}

// BenchmarkTCPPingPong measures the same round trip over loopback TCP
// through the router.
func BenchmarkTCPPingPong(b *testing.B) {
	router, err := NewTCPRouter("127.0.0.1:0", 2)
	if err != nil {
		b.Fatal(err)
	}
	defer router.Close()
	addr := router.(*tcpRouter).Addr().String()
	client, err := DialTCP(addr, 1, 2)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	payload := make([]byte, 1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := client.Recv(0, TagTask)
			if err != nil {
				return
			}
			if err := client.Send(0, TagResult, m.Data); err != nil {
				return
			}
		}
	}()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := router.Send(1, TagTask, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := router.Recv(1, TagResult); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	client.Close()
	<-done
}
