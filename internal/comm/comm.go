// Package comm is the message-passing substrate of the parallel runtime.
//
// The paper's fastDNAml sequesters every message-passing call in a single
// file per library (comm_mpi.c, comm_pvm.c) so the rest of the program is
// independent of MPI or PVM. This package reproduces that seam for Go,
// where no MPI ecosystem exists: the Communicator interface carries tagged
// point-to-point messages between integer ranks, and two backends
// implement it — an in-process backend (goroutine "ranks" connected by
// channels, used for single-machine parallel runs and tests) and a TCP
// backend (length-prefixed frames over sockets, for clusters and
// volunteer workers). Message order is preserved per (sender, receiver)
// pair, like MPI.
package comm

import (
	"errors"
	"time"
)

// Tag labels the kind of a message, mirroring MPI tags.
type Tag int32

// Message tags used by the parallel runtime.
const (
	// TagTask carries a tree-evaluation task from foreman to worker.
	TagTask Tag = 1 + iota
	// TagResult carries an evaluated tree from worker to foreman.
	TagResult
	// TagControl carries master/foreman coordination records.
	TagControl
	// TagEvent carries instrumentation records to the monitor process.
	TagEvent
	// TagShutdown tells a process to exit its receive loop.
	TagShutdown
	// TagJoin announces that a worker joined the world. It is synthesized
	// by the transport (never sent by application code) and delivered to
	// the configured membership rank with From set to the new rank.
	TagJoin
	// TagLeave announces that a worker's connection dropped, synthesized
	// like TagJoin. A rank that leaves never returns: a reconnecting
	// worker is assigned a fresh rank.
	TagLeave
)

// Wildcards accepted by Recv.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches a message with any tag.
	AnyTag Tag = -1
)

// Errors returned by communicators.
var (
	// ErrTimeout reports that RecvTimeout expired with no matching
	// message; the foreman's fault-tolerance logic treats it as a
	// delinquent worker signal.
	ErrTimeout = errors.New("comm: receive timed out")
	// ErrClosed reports use of a closed communicator.
	ErrClosed = errors.New("comm: communicator closed")
	// ErrNoRoute reports a Send to a rank with no live connection; the
	// foreman treats it as an immediate worker departure instead of
	// waiting for a task timeout.
	ErrNoRoute = errors.New("comm: no route to rank")
)

// Message is one received message.
type Message struct {
	// From is the sender's rank.
	From int
	// Tag is the message tag.
	Tag Tag
	// Data is the payload; the receiver owns it.
	Data []byte
}

// Communicator is one process's endpoint in the parallel program.
// Implementations must allow Send and Recv from different goroutines and
// must preserve per-sender FIFO order of delivery. As with a
// single-threaded MPI rank, at most one goroutine may block in
// Recv/RecvTimeout on a given endpoint at a time.
type Communicator interface {
	// Rank returns this process's identity (0-based).
	Rank() int
	// Size returns the total number of processes.
	Size() int
	// Send delivers data to rank `to` with the given tag. Send does not
	// block awaiting the receiver (buffered semantics).
	Send(to int, tag Tag, data []byte) error
	// Recv blocks until a message matching (from, tag) arrives; use
	// AnySource and AnyTag as wildcards. Non-matching messages are held
	// for later receives.
	Recv(from int, tag Tag) (Message, error)
	// RecvTimeout behaves like Recv but gives up after d, returning
	// ErrTimeout.
	RecvTimeout(from int, tag Tag, d time.Duration) (Message, error)
	// Close releases the endpoint. Blocked receives return ErrClosed.
	Close() error
}

// matches reports whether a queued message satisfies a receive pattern.
func matches(m Message, from int, tag Tag) bool {
	if from != AnySource && m.From != from {
		return false
	}
	if tag != AnyTag && m.Tag != tag {
		return false
	}
	return true
}
