package comm

import (
	"sync"
	"time"
)

// Trace wraps a Communicator and records every send and receive, feeding
// the monitor process's instrumentation and making protocol tests able to
// assert on message flows.

// TraceEvent records one message passing through a traced endpoint.
type TraceEvent struct {
	// When is the local wall-clock time of the operation.
	When time.Time
	// Sent is true for a Send, false for a completed Recv.
	Sent bool
	// Peer is the other rank (destination for sends, source for
	// receives).
	Peer int
	// Tag is the message tag.
	Tag Tag
	// Bytes is the payload size.
	Bytes int
}

// Traced wraps inner so every successful Send/Recv appends a TraceEvent.
type Traced struct {
	inner Communicator

	mu     sync.Mutex
	events []TraceEvent
}

// NewTraced wraps a communicator with tracing.
func NewTraced(inner Communicator) *Traced {
	return &Traced{inner: inner}
}

// Events returns a copy of the recorded events.
func (t *Traced) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// Counts returns the number of sends and receives recorded.
func (t *Traced) Counts() (sends, recvs int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.events {
		if e.Sent {
			sends++
		} else {
			recvs++
		}
	}
	return
}

// BytesMoved returns total payload bytes sent and received.
func (t *Traced) BytesMoved() (sent, received int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, e := range t.events {
		if e.Sent {
			sent += e.Bytes
		} else {
			received += e.Bytes
		}
	}
	return
}

func (t *Traced) record(e TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Rank implements Communicator.
func (t *Traced) Rank() int { return t.inner.Rank() }

// Size implements Communicator.
func (t *Traced) Size() int { return t.inner.Size() }

// Send implements Communicator.
func (t *Traced) Send(to int, tag Tag, data []byte) error {
	err := t.inner.Send(to, tag, data)
	if err == nil {
		t.record(TraceEvent{When: time.Now(), Sent: true, Peer: to, Tag: tag, Bytes: len(data)})
	}
	return err
}

// Recv implements Communicator.
func (t *Traced) Recv(from int, tag Tag) (Message, error) {
	m, err := t.inner.Recv(from, tag)
	if err == nil {
		t.record(TraceEvent{When: time.Now(), Sent: false, Peer: m.From, Tag: m.Tag, Bytes: len(m.Data)})
	}
	return m, err
}

// RecvTimeout implements Communicator.
func (t *Traced) RecvTimeout(from int, tag Tag, d time.Duration) (Message, error) {
	m, err := t.inner.RecvTimeout(from, tag, d)
	if err == nil {
		t.record(TraceEvent{When: time.Now(), Sent: false, Peer: m.From, Tag: m.Tag, Bytes: len(m.Data)})
	}
	return m, err
}

// Close implements Communicator.
func (t *Traced) Close() error { return t.inner.Close() }
