package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
)

// TCP backend: rank 0 hosts a router; every other rank dials in and
// registers. All traffic flows through the router (star topology), which
// keeps the protocol simple and lets workers join from anywhere a socket
// can reach — the property the paper exploits for geographically
// distributed PVM workers and Linux clusters (§2.2), and that the planned
// Condor/screensaver workers would rely on (§5).
//
// Membership comes in two flavours. A *static* world (NewTCPRouter) has a
// fixed size negotiated up front and every dialer claims its rank in the
// HELLO. An *elastic* world (NewElasticTCPRouter) additionally accepts
// anonymous joiners: a HELLO with rank -1 is answered by a WELCOME that
// assigns the next free rank and carries an application-provided payload
// (the data bundle), and the router synthesizes TagJoin/TagLeave messages
// to a configured membership rank as such workers come and go. Ranks of
// departed workers are never reused, so a late frame from a dead
// incarnation can never be mistaken for a live one.
//
// Wire format, all fields big-endian:
//
//	frame   := length(u32) from(i32) to(i32) tag(i32) payload
//	hello   := length(u32)=8 rank(i32) magic(i32)      rank -1 = join
//	welcome := rank(i32) paylen(u32) payload
//
// The router acknowledges every hello with a welcome; for rank-claiming
// dialers the payload is empty.

const tcpMagic int32 = 0x46444d4c // "FDML"

// helloJoin is the HELLO rank requesting dynamic rank assignment.
const helloJoin int32 = -1

// maxFrameSize bounds a single message (64 MiB), protecting the router
// from corrupt length prefixes.
const maxFrameSize = 64 << 20

// RouterConfig configures an elastic TCP router.
type RouterConfig struct {
	// Addr is the listen address (for example "127.0.0.1:7946" or ":0").
	Addr string
	// FirstDynamic is the first rank handed to anonymous joiners; ranks
	// 1..FirstDynamic-1 are reserved for dialers that claim them (the
	// foreman and monitor loopback roles).
	FirstDynamic int
	// Welcome is the payload delivered to anonymous joiners with their
	// assigned rank (the application's join handshake reply, e.g. the
	// data bundle).
	Welcome []byte
	// NotifyRank receives synthesized TagJoin/TagLeave messages for
	// anonymous joiners; -1 disables them. Notifications for a rank that
	// has not yet connected are queued and flushed when it registers.
	NotifyRank int
	// OnJoin/OnLeave, when non-nil, are invoked in-process as anonymous
	// workers come and go (the master's join barrier uses OnJoin).
	OnJoin, OnLeave func(rank int)
	// Obs, when non-nil, receives router traffic metrics (frame and byte
	// counts by direction, connects, disconnects). Nil costs one nil
	// check per frame.
	Obs *obs.Registry
}

// routerMetrics are the router's traffic counters; every handle is
// nil-safe, so an unobserved router records nothing.
type routerMetrics struct {
	bytesIn, bytesOut *obs.Counter
	msgsIn, msgsOut   *obs.Counter
	connects          *obs.Counter
	disconnects       *obs.Counter
}

func newRouterMetrics(reg *obs.Registry) routerMetrics {
	bytes := reg.CounterVec("fdml_net_bytes_total", "Router frame bytes, by direction.", "dir")
	msgs := reg.CounterVec("fdml_net_messages_total", "Router frames, by direction.", "dir")
	return routerMetrics{
		bytesIn:     bytes.With("in"),
		bytesOut:    bytes.With("out"),
		msgsIn:      msgs.With("in"),
		msgsOut:     msgs.With("out"),
		connects:    reg.Counter("fdml_net_connects_total", "Connections registered by the router."),
		disconnects: reg.Counter("fdml_net_disconnects_total", "Connections the router lost or dropped."),
	}
}

type pendingNote struct {
	rank int
	tag  Tag
}

// tcpRouter is rank 0's endpoint plus the router state.
type tcpRouter struct {
	size     int // static world size; 0 in elastic mode
	listener net.Listener
	mb       *mailbox

	// Elastic membership.
	elastic      bool
	firstDynamic int
	welcome      []byte
	notifyRank   int
	onJoin       func(int)
	onLeave      func(int)

	mu       sync.Mutex
	conns    map[int]net.Conn
	nextRank int
	pending  []pendingNote

	closed  bool
	writeMu map[int]*sync.Mutex

	met routerMetrics
}

// NewTCPRouter starts a static-membership rank-0 endpoint listening on
// addr. size is the world size including rank 0; remote ranks connect
// with DialTCP. The returned Communicator's Close shuts down the router.
func NewTCPRouter(addr string, size int) (Communicator, error) {
	if size < 2 {
		return nil, fmt.Errorf("comm: tcp world size %d, need >= 2", size)
	}
	return newRouter(addr, size, RouterConfig{NotifyRank: -1})
}

// NewElasticTCPRouter starts a rank-0 endpoint with dynamic membership:
// anonymous dialers (JoinTCP) are assigned ranks FirstDynamic,
// FirstDynamic+1, ... as they arrive, with no upper bound.
func NewElasticTCPRouter(cfg RouterConfig) (Communicator, error) {
	if cfg.FirstDynamic < 1 {
		return nil, fmt.Errorf("comm: first dynamic rank %d, need >= 1", cfg.FirstDynamic)
	}
	return newRouter(cfg.Addr, 0, cfg)
}

func newRouter(addr string, size int, cfg RouterConfig) (Communicator, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", addr, err)
	}
	r := &tcpRouter{
		size:         size,
		listener:     ln,
		mb:           newMailbox(),
		elastic:      size == 0,
		firstDynamic: cfg.FirstDynamic,
		welcome:      cfg.Welcome,
		notifyRank:   cfg.NotifyRank,
		onJoin:       cfg.OnJoin,
		onLeave:      cfg.OnLeave,
		conns:        map[int]net.Conn{},
		nextRank:     cfg.FirstDynamic,
		writeMu:      map[int]*sync.Mutex{},
		met:          newRouterMetrics(cfg.Obs),
	}
	go r.acceptLoop()
	return r, nil
}

// Addr returns the router's listen address (useful with ":0").
func (r *tcpRouter) Addr() net.Addr { return r.listener.Addr() }

// ListenAddr reports the bound address of a router communicator, or
// (nil, false) for endpoints that do not listen.
func ListenAddr(c Communicator) (net.Addr, bool) {
	if r, ok := c.(*tcpRouter); ok {
		return r.Addr(), true
	}
	return nil, false
}

func (r *tcpRouter) acceptLoop() {
	for {
		conn, err := r.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go r.handshake(conn)
	}
}

func (r *tcpRouter) handshake(conn net.Conn) {
	var hdr [12]byte
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	if binary.BigEndian.Uint32(hdr[0:4]) != 8 ||
		int32(binary.BigEndian.Uint32(hdr[8:12])) != tcpMagic {
		conn.Close()
		return
	}
	rank := int(int32(binary.BigEndian.Uint32(hdr[4:8])))
	dynamic := rank == int(helloJoin)
	switch {
	case dynamic:
		if !r.elastic {
			conn.Close()
			return
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return
		}
		rank = r.nextRank
		r.nextRank++
		r.register(rank, conn)
		r.mu.Unlock()
	case r.validClaim(rank):
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return
		}
		if old, ok := r.conns[rank]; ok {
			old.Close()
		}
		r.register(rank, conn)
		r.mu.Unlock()
	default:
		conn.Close()
		return
	}

	var welcome []byte
	if dynamic {
		welcome = r.welcome
	}
	var ack [8]byte
	binary.BigEndian.PutUint32(ack[0:4], uint32(int32(rank)))
	binary.BigEndian.PutUint32(ack[4:8], uint32(len(welcome)))
	wmu := r.writeLock(rank)
	wmu.Lock()
	_, err := conn.Write(ack[:])
	if err == nil && len(welcome) > 0 {
		_, err = conn.Write(welcome)
	}
	wmu.Unlock()
	if err != nil {
		r.drop(rank, conn)
		return
	}
	if !dynamic && rank == r.notifyRank {
		// Flush membership notifications that predate this role's
		// connection (workers that joined before the foreman attached,
		// e.g. reconnecting workers racing a master restart).
		r.mu.Lock()
		pend := r.pending
		r.pending = nil
		r.mu.Unlock()
		for _, p := range pend {
			r.forward(p.rank, rank, int32(p.tag), nil)
		}
	}
	if dynamic {
		r.notifyMember(rank, TagJoin)
	}
	go r.readLoop(rank, conn, dynamic)
}

// validClaim reports whether an explicitly claimed rank is acceptable.
func (r *tcpRouter) validClaim(rank int) bool {
	if r.elastic {
		return rank > 0 && rank < r.firstDynamic
	}
	return rank > 0 && rank < r.size
}

// register records a connection; caller holds r.mu.
func (r *tcpRouter) register(rank int, conn net.Conn) {
	r.conns[rank] = conn
	if r.writeMu[rank] == nil {
		r.writeMu[rank] = &sync.Mutex{}
	}
	r.met.connects.Inc()
}

// writeLock returns the per-destination write mutex, creating it if
// needed.
func (r *tcpRouter) writeLock(rank int) *sync.Mutex {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.writeMu[rank] == nil {
		r.writeMu[rank] = &sync.Mutex{}
	}
	return r.writeMu[rank]
}

// drop unregisters a connection if it is still current and closes it.
func (r *tcpRouter) drop(rank int, conn net.Conn) {
	r.mu.Lock()
	if r.conns[rank] == conn {
		delete(r.conns, rank)
	}
	r.mu.Unlock()
	conn.Close()
	r.met.disconnects.Inc()
}

// notifyMember reports an anonymous worker's arrival or departure to the
// in-process callbacks and the configured membership rank.
func (r *tcpRouter) notifyMember(rank int, tag Tag) {
	switch tag {
	case TagJoin:
		if r.onJoin != nil {
			r.onJoin(rank)
		}
	case TagLeave:
		if r.onLeave != nil {
			r.onLeave(rank)
		}
	}
	nr := r.notifyRank
	if nr < 0 {
		return
	}
	if nr == 0 {
		r.mb.mu.Lock()
		if !r.mb.closed {
			r.mb.queue = append(r.mb.queue, Message{From: rank, Tag: tag})
		}
		r.mb.mu.Unlock()
		r.mb.pulse()
		return
	}
	r.mu.Lock()
	if r.conns[nr] == nil {
		r.pending = append(r.pending, pendingNote{rank: rank, tag: tag})
		r.mu.Unlock()
		return
	}
	r.mu.Unlock()
	r.forward(rank, nr, int32(tag), nil)
}

func (r *tcpRouter) readLoop(rank int, conn net.Conn, dynamic bool) {
	for {
		from, to, tag, payload, err := readFrame(conn)
		if err != nil {
			r.mu.Lock()
			if r.conns[rank] == conn {
				delete(r.conns, rank)
			}
			closed := r.closed
			r.mu.Unlock()
			conn.Close()
			r.met.disconnects.Inc()
			if dynamic && !closed {
				r.notifyMember(rank, TagLeave)
			}
			return
		}
		r.met.msgsIn.Inc()
		r.met.bytesIn.Add(float64(16 + len(payload)))
		if from != rank {
			PutBuf(payload)
			continue // sender cannot spoof its rank
		}
		if to == 0 {
			r.mb.mu.Lock()
			if !r.mb.closed {
				r.mb.queue = append(r.mb.queue, Message{From: from, Tag: Tag(tag), Data: payload})
			}
			r.mb.mu.Unlock()
			r.mb.pulse()
			continue
		}
		r.forward(from, to, tag, payload)
		// The payload is dead once written to (or dropped for) the
		// destination connection; recycle it.
		PutBuf(payload)
	}
}

func (r *tcpRouter) forward(from, to int, tag int32, payload []byte) {
	r.mu.Lock()
	conn := r.conns[to]
	wmu := r.writeMu[to]
	r.mu.Unlock()
	if conn == nil || wmu == nil {
		return // destination not connected; drop (fault tolerance handles it)
	}
	wmu.Lock()
	err := writeFrame(conn, from, to, tag, payload)
	wmu.Unlock()
	if err != nil {
		conn.Close()
		return
	}
	r.met.msgsOut.Inc()
	r.met.bytesOut.Add(float64(16 + len(payload)))
}

func (r *tcpRouter) Rank() int { return 0 }

// Size returns the static world size, or for elastic worlds the extent of
// the rank space handed out so far.
func (r *tcpRouter) Size() int {
	if !r.elastic {
		return r.size
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nextRank
}

// Send routes a message to a connected rank. A rank with no live
// connection yields ErrNoRoute, letting the caller treat the destination
// as departed immediately instead of waiting out a timeout.
func (r *tcpRouter) Send(to int, tag Tag, data []byte) error {
	if to == 0 {
		return fmt.Errorf("comm: rank 0 sending to itself")
	}
	if to < 0 || (!r.elastic && to >= r.size) {
		return fmt.Errorf("comm: send to rank %d of %d", to, r.size)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	connected := r.conns[to] != nil
	r.mu.Unlock()
	if !connected {
		return fmt.Errorf("comm: send to rank %d: %w", to, ErrNoRoute)
	}
	r.forward(0, to, int32(tag), data)
	return nil
}

func (r *tcpRouter) Recv(from int, tag Tag) (Message, error) {
	return recvMailbox(r.mb, from, tag, nil)
}

func (r *tcpRouter) RecvTimeout(from int, tag Tag, d time.Duration) (Message, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	return recvMailbox(r.mb, from, tag, timer.C)
}

func (r *tcpRouter) Close() error {
	r.mu.Lock()
	r.closed = true
	for _, c := range r.conns {
		c.Close()
	}
	r.conns = map[int]net.Conn{}
	r.mu.Unlock()
	r.listener.Close()
	r.mb.mu.Lock()
	r.mb.closed = true
	r.mb.mu.Unlock()
	r.mb.pulse()
	return nil
}

// tcpClient is a non-zero rank connected to the router.
type tcpClient struct {
	rank, size int
	// elastic marks a client of a dynamic world: sends are not bounded
	// by a world size (the foreman must reach ranks assigned after it
	// attached).
	elastic bool
	conn    net.Conn
	mb      *mailbox
	writeMu sync.Mutex
}

// DialTCP connects rank (1..size-1) to a static router at addr.
func DialTCP(addr string, rank, size int) (Communicator, error) {
	if rank <= 0 || rank >= size {
		return nil, fmt.Errorf("comm: tcp rank %d of %d (rank 0 is the router)", rank, size)
	}
	c, _, err := dial(addr, int32(rank))
	if err != nil {
		return nil, err
	}
	c.size = size
	return c, nil
}

// DialTCPRole connects to an elastic router claiming a reserved role rank
// (below the router's first dynamic rank). The returned endpoint may send
// to any rank, including dynamically assigned ones.
func DialTCPRole(addr string, rank int) (Communicator, error) {
	if rank <= 0 {
		return nil, fmt.Errorf("comm: tcp role rank %d (rank 0 is the router)", rank)
	}
	c, _, err := dial(addr, int32(rank))
	if err != nil {
		return nil, err
	}
	c.elastic = true
	return c, nil
}

// JoinTCP connects to an elastic router with no pre-assigned identity.
// The router assigns the next free rank and replies with the welcome
// payload configured by the application (the join handshake of the
// distributed runtime).
func JoinTCP(addr string) (Communicator, []byte, error) {
	c, welcome, err := dial(addr, helloJoin)
	if err != nil {
		return nil, nil, err
	}
	c.elastic = true
	return c, welcome, nil
}

// dial performs the HELLO/WELCOME handshake. rank is the claimed rank or
// helloJoin for dynamic assignment.
func dial(addr string, rank int32) (*tcpClient, []byte, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("comm: dial %s: %w", addr, err)
	}
	var hello [12]byte
	binary.BigEndian.PutUint32(hello[0:4], 8)
	binary.BigEndian.PutUint32(hello[4:8], uint32(rank))
	binary.BigEndian.PutUint32(hello[8:12], uint32(tcpMagic))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("comm: handshake: %w", err)
	}
	var ack [8]byte
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		conn.Close()
		return nil, nil, fmt.Errorf("comm: handshake ack: %w", err)
	}
	got := int(int32(binary.BigEndian.Uint32(ack[0:4])))
	paylen := binary.BigEndian.Uint32(ack[4:8])
	if rank != helloJoin && got != int(rank) {
		conn.Close()
		return nil, nil, fmt.Errorf("comm: router rejected rank %d", rank)
	}
	if got <= 0 || paylen > maxFrameSize {
		conn.Close()
		return nil, nil, fmt.Errorf("comm: bad welcome (rank %d, payload %d)", got, paylen)
	}
	var welcome []byte
	if paylen > 0 {
		welcome = make([]byte, paylen)
		if _, err := io.ReadFull(conn, welcome); err != nil {
			conn.Close()
			return nil, nil, fmt.Errorf("comm: welcome payload: %w", err)
		}
	}
	conn.SetReadDeadline(time.Time{})
	c := &tcpClient{rank: got, size: got + 1, conn: conn, mb: newMailbox()}
	go c.readLoop()
	return c, welcome, nil
}

func (c *tcpClient) readLoop() {
	for {
		from, to, tag, payload, err := readFrame(c.conn)
		if err != nil {
			c.mb.mu.Lock()
			c.mb.closed = true
			c.mb.mu.Unlock()
			c.mb.pulse()
			return
		}
		if to != c.rank {
			continue
		}
		c.mb.mu.Lock()
		if !c.mb.closed {
			c.mb.queue = append(c.mb.queue, Message{From: from, Tag: Tag(tag), Data: payload})
		}
		c.mb.mu.Unlock()
		c.mb.pulse()
	}
}

func (c *tcpClient) Rank() int { return c.rank }
func (c *tcpClient) Size() int { return c.size }

func (c *tcpClient) Send(to int, tag Tag, data []byte) error {
	if to < 0 || (!c.elastic && to >= c.size) {
		return fmt.Errorf("comm: send to rank %d of %d", to, c.size)
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := writeFrame(c.conn, c.rank, to, int32(tag), data); err != nil {
		return fmt.Errorf("comm: send: %w", err)
	}
	return nil
}

func (c *tcpClient) Recv(from int, tag Tag) (Message, error) {
	return recvMailbox(c.mb, from, tag, nil)
}

func (c *tcpClient) RecvTimeout(from int, tag Tag, d time.Duration) (Message, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	return recvMailbox(c.mb, from, tag, timer.C)
}

func (c *tcpClient) Close() error {
	c.conn.Close()
	c.mb.mu.Lock()
	c.mb.closed = true
	c.mb.mu.Unlock()
	c.mb.pulse()
	return nil
}

// recvMailbox implements the shared blocking receive over a mailbox.
func recvMailbox(mb *mailbox, from int, tag Tag, timeout <-chan time.Time) (Message, error) {
	for {
		mb.mu.Lock()
		if m, ok := takeMatch(mb, from, tag); ok {
			if len(mb.queue) > 0 {
				mb.pulse()
			}
			mb.mu.Unlock()
			return m, nil
		}
		closed := mb.closed
		mb.mu.Unlock()
		if closed {
			return Message{}, ErrClosed
		}
		select {
		case <-mb.arrived:
		case <-timeout:
			return Message{}, ErrTimeout
		}
	}
}

// writeFrame emits one framed message.
func writeFrame(w io.Writer, from, to int, tag int32, payload []byte) error {
	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(12+len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(int32(from)))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(int32(to)))
	binary.BigEndian.PutUint32(hdr[12:16], uint32(tag))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one framed message. The routing header is read into a
// stack buffer separately from the payload, so the payload is a
// standalone pooled buffer (GetBuf) that the consumer may recycle with
// PutBuf once decoded.
func readFrame(r io.Reader) (from, to int, tag int32, payload []byte, err error) {
	var hdr [16]byte
	if _, err = io.ReadFull(r, hdr[:4]); err != nil {
		return
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 12 || n > maxFrameSize {
		err = fmt.Errorf("comm: bad frame length %d", n)
		return
	}
	if _, err = io.ReadFull(r, hdr[4:16]); err != nil {
		return
	}
	from = int(int32(binary.BigEndian.Uint32(hdr[4:8])))
	to = int(int32(binary.BigEndian.Uint32(hdr[8:12])))
	tag = int32(binary.BigEndian.Uint32(hdr[12:16]))
	if n > 12 {
		payload = GetBuf(int(n - 12))
		if _, err = io.ReadFull(r, payload); err != nil {
			PutBuf(payload)
			payload = nil
			return
		}
	}
	return
}
