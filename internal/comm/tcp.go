package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCP backend: rank 0 hosts a router; every other rank dials in and
// registers. All traffic flows through the router (star topology), which
// keeps the protocol simple and lets workers join from anywhere a socket
// can reach — the property the paper exploits for geographically
// distributed PVM workers and Linux clusters (§2.2), and that the planned
// Condor/screensaver workers would rely on (§5).
//
// Wire format, all fields big-endian:
//
//	frame  := length(u32) from(i32) to(i32) tag(i32) payload
//	hello  := length(u32)=8 rank(i32) magic(i32)
//
// The router acknowledges a hello by echoing the rank.

const tcpMagic int32 = 0x46444d4c // "FDML"

// maxFrameSize bounds a single message (64 MiB), protecting the router
// from corrupt length prefixes.
const maxFrameSize = 64 << 20

// tcpRouter is rank 0's endpoint plus the router state.
type tcpRouter struct {
	size     int
	listener net.Listener
	mb       *mailbox

	mu    sync.Mutex
	conns map[int]net.Conn

	closed  bool
	writeMu map[int]*sync.Mutex
}

// NewTCPRouter starts the rank-0 endpoint listening on addr (for example
// "127.0.0.1:7946" or ":0"). size is the world size including rank 0.
// Remote ranks connect with DialTCP. The returned Communicator's Close
// shuts down the router.
func NewTCPRouter(addr string, size int) (Communicator, error) {
	if size < 2 {
		return nil, fmt.Errorf("comm: tcp world size %d, need >= 2", size)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", addr, err)
	}
	r := &tcpRouter{
		size:     size,
		listener: ln,
		mb:       newMailbox(),
		conns:    map[int]net.Conn{},
		writeMu:  map[int]*sync.Mutex{},
	}
	go r.acceptLoop()
	return r, nil
}

// Addr returns the router's listen address (useful with ":0").
func (r *tcpRouter) Addr() net.Addr { return r.listener.Addr() }

// ListenAddr reports the bound address of a router communicator, or
// (nil, false) for endpoints that do not listen.
func ListenAddr(c Communicator) (net.Addr, bool) {
	if r, ok := c.(*tcpRouter); ok {
		return r.Addr(), true
	}
	return nil, false
}

func (r *tcpRouter) acceptLoop() {
	for {
		conn, err := r.listener.Accept()
		if err != nil {
			return // listener closed
		}
		go r.handshake(conn)
	}
}

func (r *tcpRouter) handshake(conn net.Conn) {
	var hdr [12]byte
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	if binary.BigEndian.Uint32(hdr[0:4]) != 8 ||
		int32(binary.BigEndian.Uint32(hdr[8:12])) != tcpMagic {
		conn.Close()
		return
	}
	rank := int(int32(binary.BigEndian.Uint32(hdr[4:8])))
	if rank <= 0 || rank >= r.size {
		conn.Close()
		return
	}
	r.mu.Lock()
	if old, ok := r.conns[rank]; ok {
		old.Close()
	}
	r.conns[rank] = conn
	if r.writeMu[rank] == nil {
		r.writeMu[rank] = &sync.Mutex{}
	}
	r.mu.Unlock()
	// Ack.
	var ack [4]byte
	binary.BigEndian.PutUint32(ack[:], uint32(rank))
	if _, err := conn.Write(ack[:]); err != nil {
		conn.Close()
		return
	}
	go r.readLoop(rank, conn)
}

func (r *tcpRouter) readLoop(rank int, conn net.Conn) {
	for {
		from, to, tag, payload, err := readFrame(conn)
		if err != nil {
			r.mu.Lock()
			if r.conns[rank] == conn {
				delete(r.conns, rank)
			}
			r.mu.Unlock()
			conn.Close()
			return
		}
		if from != rank {
			continue // sender cannot spoof its rank
		}
		if to == 0 {
			r.mb.mu.Lock()
			if !r.mb.closed {
				r.mb.queue = append(r.mb.queue, Message{From: from, Tag: Tag(tag), Data: payload})
			}
			r.mb.mu.Unlock()
			r.mb.pulse()
			continue
		}
		r.forward(from, to, tag, payload)
	}
}

func (r *tcpRouter) forward(from, to int, tag int32, payload []byte) {
	r.mu.Lock()
	conn := r.conns[to]
	wmu := r.writeMu[to]
	r.mu.Unlock()
	if conn == nil || wmu == nil {
		return // destination not connected; drop (fault tolerance handles it)
	}
	wmu.Lock()
	err := writeFrame(conn, from, to, tag, payload)
	wmu.Unlock()
	if err != nil {
		conn.Close()
	}
}

func (r *tcpRouter) Rank() int { return 0 }
func (r *tcpRouter) Size() int { return r.size }

func (r *tcpRouter) Send(to int, tag Tag, data []byte) error {
	if to == 0 {
		return fmt.Errorf("comm: rank 0 sending to itself")
	}
	if to < 0 || to >= r.size {
		return fmt.Errorf("comm: send to rank %d of %d", to, r.size)
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	r.mu.Unlock()
	r.forward(0, to, int32(tag), data)
	return nil
}

func (r *tcpRouter) Recv(from int, tag Tag) (Message, error) {
	return recvMailbox(r.mb, from, tag, nil)
}

func (r *tcpRouter) RecvTimeout(from int, tag Tag, d time.Duration) (Message, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	return recvMailbox(r.mb, from, tag, timer.C)
}

func (r *tcpRouter) Close() error {
	r.mu.Lock()
	r.closed = true
	for _, c := range r.conns {
		c.Close()
	}
	r.conns = map[int]net.Conn{}
	r.mu.Unlock()
	r.listener.Close()
	r.mb.mu.Lock()
	r.mb.closed = true
	r.mb.mu.Unlock()
	r.mb.pulse()
	return nil
}

// tcpClient is a non-zero rank connected to the router.
type tcpClient struct {
	rank, size int
	conn       net.Conn
	mb         *mailbox
	writeMu    sync.Mutex
}

// DialTCP connects rank (1..size-1) to a router at addr.
func DialTCP(addr string, rank, size int) (Communicator, error) {
	if rank <= 0 || rank >= size {
		return nil, fmt.Errorf("comm: tcp rank %d of %d (rank 0 is the router)", rank, size)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: dial %s: %w", addr, err)
	}
	var hello [12]byte
	binary.BigEndian.PutUint32(hello[0:4], 8)
	binary.BigEndian.PutUint32(hello[4:8], uint32(rank))
	binary.BigEndian.PutUint32(hello[8:12], uint32(tcpMagic))
	if _, err := conn.Write(hello[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("comm: handshake: %w", err)
	}
	var ack [4]byte
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("comm: handshake ack: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	if int(binary.BigEndian.Uint32(ack[:])) != rank {
		conn.Close()
		return nil, fmt.Errorf("comm: router rejected rank %d", rank)
	}
	c := &tcpClient{rank: rank, size: size, conn: conn, mb: newMailbox()}
	go c.readLoop()
	return c, nil
}

func (c *tcpClient) readLoop() {
	for {
		from, to, tag, payload, err := readFrame(c.conn)
		if err != nil {
			c.mb.mu.Lock()
			c.mb.closed = true
			c.mb.mu.Unlock()
			c.mb.pulse()
			return
		}
		if to != c.rank {
			continue
		}
		c.mb.mu.Lock()
		if !c.mb.closed {
			c.mb.queue = append(c.mb.queue, Message{From: from, Tag: Tag(tag), Data: payload})
		}
		c.mb.mu.Unlock()
		c.mb.pulse()
	}
}

func (c *tcpClient) Rank() int { return c.rank }
func (c *tcpClient) Size() int { return c.size }

func (c *tcpClient) Send(to int, tag Tag, data []byte) error {
	if to < 0 || to >= c.size {
		return fmt.Errorf("comm: send to rank %d of %d", to, c.size)
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := writeFrame(c.conn, c.rank, to, int32(tag), data); err != nil {
		return fmt.Errorf("comm: send: %w", err)
	}
	return nil
}

func (c *tcpClient) Recv(from int, tag Tag) (Message, error) {
	return recvMailbox(c.mb, from, tag, nil)
}

func (c *tcpClient) RecvTimeout(from int, tag Tag, d time.Duration) (Message, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	return recvMailbox(c.mb, from, tag, timer.C)
}

func (c *tcpClient) Close() error {
	c.conn.Close()
	c.mb.mu.Lock()
	c.mb.closed = true
	c.mb.mu.Unlock()
	c.mb.pulse()
	return nil
}

// recvMailbox implements the shared blocking receive over a mailbox.
func recvMailbox(mb *mailbox, from int, tag Tag, timeout <-chan time.Time) (Message, error) {
	for {
		mb.mu.Lock()
		if m, ok := takeMatch(mb, from, tag); ok {
			if len(mb.queue) > 0 {
				mb.pulse()
			}
			mb.mu.Unlock()
			return m, nil
		}
		closed := mb.closed
		mb.mu.Unlock()
		if closed {
			return Message{}, ErrClosed
		}
		select {
		case <-mb.arrived:
		case <-timeout:
			return Message{}, ErrTimeout
		}
	}
}

// writeFrame emits one framed message.
func writeFrame(w io.Writer, from, to int, tag int32, payload []byte) error {
	var hdr [16]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(12+len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], uint32(int32(from)))
	binary.BigEndian.PutUint32(hdr[8:12], uint32(int32(to)))
	binary.BigEndian.PutUint32(hdr[12:16], uint32(tag))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one framed message.
func readFrame(r io.Reader) (from, to int, tag int32, payload []byte, err error) {
	var lenBuf [4]byte
	if _, err = io.ReadFull(r, lenBuf[:]); err != nil {
		return
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < 12 || n > maxFrameSize {
		err = fmt.Errorf("comm: bad frame length %d", n)
		return
	}
	body := make([]byte, n)
	if _, err = io.ReadFull(r, body); err != nil {
		return
	}
	from = int(int32(binary.BigEndian.Uint32(body[0:4])))
	to = int(int32(binary.BigEndian.Uint32(body[4:8])))
	tag = int32(binary.BigEndian.Uint32(body[8:12]))
	payload = body[12:]
	return
}
