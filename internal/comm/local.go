package comm

import (
	"fmt"
	"sync"
	"time"
)

// Local backend: all ranks live in one process, each rank's endpoint is a
// mailbox with a notification channel. This is the default backend for
// single-machine parallel runs (the workers are goroutines) and gives the
// tests deterministic, dependency-free message passing.

// mailbox holds undelivered messages for one rank.
type mailbox struct {
	mu     sync.Mutex
	queue  []Message
	closed bool
	// arrived is pulsed (non-blockingly) whenever the queue or closed
	// state changes, waking at least one waiting receiver.
	arrived chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{arrived: make(chan struct{}, 1)}
}

func (mb *mailbox) pulse() {
	select {
	case mb.arrived <- struct{}{}:
	default:
	}
}

// localComm is one rank's endpoint of a local world.
type localComm struct {
	rank  int
	boxes []*mailbox
}

// NewLocal creates an n-rank in-process world and returns one
// Communicator per rank. Closing an endpoint only affects that rank's
// mailbox.
func NewLocal(n int) ([]Communicator, error) {
	if n < 1 {
		return nil, fmt.Errorf("comm: local world size %d", n)
	}
	boxes := make([]*mailbox, n)
	for i := range boxes {
		boxes[i] = newMailbox()
	}
	out := make([]Communicator, n)
	for i := range out {
		out[i] = &localComm{rank: i, boxes: boxes}
	}
	return out, nil
}

func (c *localComm) Rank() int { return c.rank }
func (c *localComm) Size() int { return len(c.boxes) }

func (c *localComm) Send(to int, tag Tag, data []byte) error {
	if to < 0 || to >= len(c.boxes) {
		return fmt.Errorf("comm: send to rank %d of %d", to, len(c.boxes))
	}
	// Copy through the buffer pool: the receiver owns the copy and the
	// hot paths (worker task/result loops) recycle it after decoding.
	var cp []byte
	if len(data) > 0 {
		cp = GetBuf(len(data))
		copy(cp, data)
	}
	mb := c.boxes[to]
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		PutBuf(cp)
		return ErrClosed
	}
	mb.queue = append(mb.queue, Message{From: c.rank, Tag: tag, Data: cp})
	mb.mu.Unlock()
	mb.pulse()
	return nil
}

func (c *localComm) Recv(from int, tag Tag) (Message, error) {
	return recvMailbox(c.boxes[c.rank], from, tag, nil)
}

func (c *localComm) RecvTimeout(from int, tag Tag, d time.Duration) (Message, error) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	return recvMailbox(c.boxes[c.rank], from, tag, timer.C)
}

func (c *localComm) Close() error {
	mb := c.boxes[c.rank]
	mb.mu.Lock()
	mb.closed = true
	mb.mu.Unlock()
	mb.pulse()
	return nil
}

// takeMatch removes and returns the first queued message matching the
// pattern. Caller holds the mailbox lock.
func takeMatch(mb *mailbox, from int, tag Tag) (Message, bool) {
	for i, m := range mb.queue {
		if matches(m, from, tag) {
			mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}
