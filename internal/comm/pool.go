package comm

import (
	"math/bits"
	"sync"
)

// Byte-buffer pool for the message path: the TCP codec allocates one
// buffer per received frame and the envelope codecs one per encode, which
// at pipelined dispatch rates dominates the transport's garbage. Buffers
// are pooled in power-of-two size classes; a small secondary pool recycles
// the box structs holding the slice headers, so steady-state Get/Put pairs
// allocate nothing.

const (
	// minBufBits..maxBufBits bound the pooled capacity classes (64 B to
	// 1 MiB). Larger buffers (e.g. elastic-join welcome payloads carrying
	// whole alignments) fall through to the garbage collector.
	minBufBits = 6
	maxBufBits = 20
)

type bufBox struct{ b []byte }

var bufClasses [maxBufBits - minBufBits + 1]sync.Pool

var boxPool = sync.Pool{New: func() any { return new(bufBox) }}

// GetBuf returns a length-n byte slice, recycled when a pooled buffer of
// sufficient capacity is available.
func GetBuf(n int) []byte {
	if n > 1<<maxBufBits {
		return make([]byte, n)
	}
	c := 0
	if n > 1<<minBufBits {
		c = bits.Len(uint(n-1)) - minBufBits
	}
	if v := bufClasses[c].Get(); v != nil {
		bx := v.(*bufBox)
		b := bx.b[:n]
		bx.b = nil
		boxPool.Put(bx)
		return b
	}
	return make([]byte, n, 1<<(minBufBits+c))
}

// PutBuf recycles a buffer previously obtained from GetBuf (or any other
// buffer whose contents are dead). Buffers outside the pooled capacity
// range are dropped; callers must not touch b afterwards.
func PutBuf(b []byte) {
	c := cap(b)
	if c < 1<<minBufBits || c > 1<<maxBufBits {
		return
	}
	// Floor class: every Get from class k needs at most 1<<(minBufBits+k)
	// bytes, which cap(b) >= 1<<(minBufBits+cls) guarantees.
	cls := bits.Len(uint(c)) - 1 - minBufBits
	bx := boxPool.Get().(*bufBox)
	bx.b = b[:0]
	bufClasses[cls].Put(bx)
}
