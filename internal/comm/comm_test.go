package comm

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// backendWorld abstracts backend construction so every test runs against
// both the local and the TCP backend.
func worlds(t *testing.T, size int) map[string][]Communicator {
	t.Helper()
	out := map[string][]Communicator{}

	local, err := NewLocal(size)
	if err != nil {
		t.Fatal(err)
	}
	out["local"] = local

	router, err := NewTCPRouter("127.0.0.1:0", size)
	if err != nil {
		t.Fatal(err)
	}
	addr := router.(*tcpRouter).Addr().String()
	tcp := make([]Communicator, size)
	tcp[0] = router
	for r := 1; r < size; r++ {
		c, err := DialTCP(addr, r, size)
		if err != nil {
			t.Fatal(err)
		}
		tcp[r] = c
	}
	out["tcp"] = tcp
	return out
}

func closeWorld(w []Communicator) {
	for _, c := range w {
		c.Close()
	}
}

func TestPingPong(t *testing.T) {
	for name, w := range worlds(t, 2) {
		t.Run(name, func(t *testing.T) {
			defer closeWorld(w)
			done := make(chan error, 1)
			go func() {
				m, err := w[1].Recv(0, TagTask)
				if err != nil {
					done <- err
					return
				}
				done <- w[1].Send(0, TagResult, append([]byte("re:"), m.Data...))
			}()
			if err := w[0].Send(1, TagTask, []byte("hello")); err != nil {
				t.Fatal(err)
			}
			m, err := w[0].Recv(1, TagResult)
			if err != nil {
				t.Fatal(err)
			}
			if string(m.Data) != "re:hello" {
				t.Errorf("payload = %q", m.Data)
			}
			if m.From != 1 || m.Tag != TagResult {
				t.Errorf("meta = %+v", m)
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFIFOOrderPerSender(t *testing.T) {
	for name, w := range worlds(t, 2) {
		t.Run(name, func(t *testing.T) {
			defer closeWorld(w)
			const n = 200
			for i := 0; i < n; i++ {
				if err := w[0].Send(1, TagTask, []byte{byte(i), byte(i >> 8)}); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				m, err := w[1].Recv(0, TagTask)
				if err != nil {
					t.Fatal(err)
				}
				got := int(m.Data[0]) | int(m.Data[1])<<8
				if got != i {
					t.Fatalf("message %d arrived as %d", i, got)
				}
			}
		})
	}
}

func TestTagFiltering(t *testing.T) {
	for name, w := range worlds(t, 2) {
		t.Run(name, func(t *testing.T) {
			defer closeWorld(w)
			if err := w[0].Send(1, TagTask, []byte("task")); err != nil {
				t.Fatal(err)
			}
			if err := w[0].Send(1, TagControl, []byte("ctl")); err != nil {
				t.Fatal(err)
			}
			// Receive the control message first even though the task
			// arrived earlier.
			m, err := w[1].Recv(AnySource, TagControl)
			if err != nil {
				t.Fatal(err)
			}
			if string(m.Data) != "ctl" {
				t.Errorf("got %q", m.Data)
			}
			m, err = w[1].Recv(AnySource, TagTask)
			if err != nil {
				t.Fatal(err)
			}
			if string(m.Data) != "task" {
				t.Errorf("got %q", m.Data)
			}
		})
	}
}

func TestAnySourceGathers(t *testing.T) {
	for name, w := range worlds(t, 4) {
		t.Run(name, func(t *testing.T) {
			defer closeWorld(w)
			var wg sync.WaitGroup
			for r := 1; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					if err := w[r].Send(0, TagResult, []byte{byte(r)}); err != nil {
						t.Error(err)
					}
				}(r)
			}
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				m, err := w[0].Recv(AnySource, TagResult)
				if err != nil {
					t.Fatal(err)
				}
				if int(m.Data[0]) != m.From {
					t.Errorf("payload %d from rank %d", m.Data[0], m.From)
				}
				seen[m.From] = true
			}
			wg.Wait()
			if len(seen) != 3 {
				t.Errorf("gathered from %d ranks, want 3", len(seen))
			}
		})
	}
}

func TestRecvTimeout(t *testing.T) {
	for name, w := range worlds(t, 2) {
		t.Run(name, func(t *testing.T) {
			defer closeWorld(w)
			start := time.Now()
			_, err := w[0].RecvTimeout(AnySource, TagResult, 30*time.Millisecond)
			if err != ErrTimeout {
				t.Fatalf("err = %v, want ErrTimeout", err)
			}
			if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
				t.Errorf("returned after %v, too early", elapsed)
			}
			// A message arriving within the window is delivered.
			go func() {
				time.Sleep(10 * time.Millisecond)
				w[1].Send(0, TagResult, []byte("late"))
			}()
			m, err := w[0].RecvTimeout(AnySource, TagResult, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if string(m.Data) != "late" {
				t.Errorf("got %q", m.Data)
			}
		})
	}
}

func TestCloseUnblocksReceiver(t *testing.T) {
	for name, w := range worlds(t, 2) {
		t.Run(name, func(t *testing.T) {
			errc := make(chan error, 1)
			go func() {
				_, err := w[1].Recv(AnySource, AnyTag)
				errc <- err
			}()
			time.Sleep(10 * time.Millisecond)
			w[1].Close()
			select {
			case err := <-errc:
				if err != ErrClosed {
					t.Errorf("err = %v, want ErrClosed", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("receiver did not unblock")
			}
			w[0].Close()
		})
	}
}

func TestSendValidation(t *testing.T) {
	for name, w := range worlds(t, 2) {
		t.Run(name, func(t *testing.T) {
			defer closeWorld(w)
			if err := w[0].Send(7, TagTask, nil); err == nil {
				t.Error("send to out-of-range rank should fail")
			}
		})
	}
}

func TestPayloadIsolation(t *testing.T) {
	// Mutating the sender's buffer after Send must not affect delivery.
	w, err := NewLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	defer closeWorld(w)
	buf := []byte("original")
	if err := w[0].Send(1, TagTask, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "clobber!")
	m, err := w[1].Recv(0, TagTask)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Data) != "original" {
		t.Errorf("payload = %q, want original", m.Data)
	}
}

func TestLargeMessageTCP(t *testing.T) {
	w := worlds(t, 2)["tcp"]
	defer closeWorld(w)
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := w[0].Send(1, TagTask, big); err != nil {
		t.Fatal(err)
	}
	m, err := w[1].Recv(0, TagTask)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Data) != len(big) {
		t.Fatalf("size %d, want %d", len(m.Data), len(big))
	}
	for i := range big {
		if m.Data[i] != big[i] {
			t.Fatalf("corruption at byte %d", i)
		}
	}
}

func TestWorkerToWorkerViaRouter(t *testing.T) {
	w := worlds(t, 3)["tcp"]
	defer closeWorld(w)
	if err := w[1].Send(2, TagControl, []byte("peer")); err != nil {
		t.Fatal(err)
	}
	m, err := w[2].Recv(1, TagControl)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Data) != "peer" || m.From != 1 {
		t.Errorf("got %q from %d", m.Data, m.From)
	}
}

func TestTracedCommunicator(t *testing.T) {
	w, _ := NewLocal(2)
	defer closeWorld(w)
	t0 := NewTraced(w[0])
	t1 := NewTraced(w[1])
	for i := 0; i < 5; i++ {
		if err := t0.Send(1, TagTask, []byte(fmt.Sprintf("%03d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := t1.Recv(0, TagTask); err != nil {
			t.Fatal(err)
		}
	}
	s, r := t0.Counts()
	if s != 5 || r != 0 {
		t.Errorf("t0 counts = %d sends %d recvs", s, r)
	}
	s, r = t1.Counts()
	if s != 0 || r != 5 {
		t.Errorf("t1 counts = %d sends %d recvs", s, r)
	}
	sent, _ := t0.BytesMoved()
	if sent != 15 {
		t.Errorf("t0 sent %d bytes, want 15", sent)
	}
	if len(t0.Events()) != 5 {
		t.Errorf("t0 has %d events", len(t0.Events()))
	}
}

func TestElasticJoinAssignsRanksAndWelcome(t *testing.T) {
	joined := make(chan int, 8)
	router, err := NewElasticTCPRouter(RouterConfig{
		Addr:         "127.0.0.1:0",
		FirstDynamic: 2,
		Welcome:      []byte("bundle-bytes"),
		NotifyRank:   0,
		OnJoin:       func(rank int) { joined <- rank },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	addr := router.(*tcpRouter).Addr().String()

	w1, pay1, err := JoinTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	w2, pay2, err := JoinTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()

	ranks := map[int]bool{w1.Rank(): true, w2.Rank(): true}
	if !ranks[2] || !ranks[3] {
		t.Errorf("assigned ranks %d and %d, want 2 and 3", w1.Rank(), w2.Rank())
	}
	if string(pay1) != "bundle-bytes" || string(pay2) != "bundle-bytes" {
		t.Errorf("welcome payloads %q / %q", pay1, pay2)
	}
	for i := 0; i < 2; i++ {
		select {
		case r := <-joined:
			if !ranks[r] {
				t.Errorf("OnJoin for unexpected rank %d", r)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("OnJoin callback missing")
		}
	}
	// NotifyRank 0: the router's own mailbox sees the join messages.
	for i := 0; i < 2; i++ {
		m, err := router.RecvTimeout(AnySource, TagJoin, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !ranks[m.From] {
			t.Errorf("TagJoin from %d", m.From)
		}
	}
	// Traffic flows to and from a dynamically assigned rank.
	if err := router.Send(w1.Rank(), TagTask, []byte("work")); err != nil {
		t.Fatal(err)
	}
	if m, err := w1.Recv(0, TagTask); err != nil || string(m.Data) != "work" {
		t.Fatalf("worker recv: %v %q", err, m.Data)
	}
}

func TestElasticLeaveNotification(t *testing.T) {
	left := make(chan int, 1)
	router, err := NewElasticTCPRouter(RouterConfig{
		Addr:         "127.0.0.1:0",
		FirstDynamic: 2,
		NotifyRank:   0,
		OnLeave:      func(rank int) { left <- rank },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	addr := router.(*tcpRouter).Addr().String()

	w, _, err := JoinTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := router.RecvTimeout(AnySource, TagJoin, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	w.Close()
	m, err := router.RecvTimeout(AnySource, TagLeave, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.From != w.Rank() {
		t.Errorf("TagLeave from %d, want %d", m.From, w.Rank())
	}
	select {
	case r := <-left:
		if r != w.Rank() {
			t.Errorf("OnLeave rank %d", r)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnLeave callback missing")
	}
	// The departed rank is unroutable and never reused.
	if err := router.Send(m.From, TagTask, nil); err == nil {
		t.Error("send to departed rank succeeded")
	}
	w2, _, err := JoinTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Rank() == w.Rank() {
		t.Errorf("rank %d reused after departure", w.Rank())
	}
}

func TestElasticPendingNotifyFlushedToRole(t *testing.T) {
	// A worker joins before the membership rank (the foreman) attaches;
	// the join notification must be queued and delivered on attach.
	router, err := NewElasticTCPRouter(RouterConfig{
		Addr:         "127.0.0.1:0",
		FirstDynamic: 2,
		NotifyRank:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	addr := router.(*tcpRouter).Addr().String()

	w, _, err := JoinTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	role, err := DialTCPRole(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer role.Close()
	m, err := role.RecvTimeout(AnySource, TagJoin, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if m.From != w.Rank() {
		t.Errorf("queued TagJoin from %d, want %d", m.From, w.Rank())
	}
	// The role endpoint can message the dynamic rank (no size bound).
	if err := role.Send(w.Rank(), TagTask, []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if m, err := w.Recv(1, TagTask); err != nil || string(m.Data) != "hi" {
		t.Fatalf("worker recv from role: %v %q", err, m.Data)
	}
}

func TestRouterSendNoRoute(t *testing.T) {
	router, err := NewTCPRouter("127.0.0.1:0", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	err = router.Send(2, TagTask, nil)
	if !errors.Is(err, ErrNoRoute) {
		t.Errorf("send to unconnected rank: %v, want ErrNoRoute", err)
	}
}

func TestConcurrentSendersStress(t *testing.T) {
	for name, w := range worlds(t, 8) {
		t.Run(name, func(t *testing.T) {
			defer closeWorld(w)
			const per = 50
			var wg sync.WaitGroup
			for r := 1; r < 8; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if err := w[r].Send(0, TagResult, []byte{byte(r), byte(i)}); err != nil {
							t.Error(err)
							return
						}
					}
				}(r)
			}
			next := map[int]int{}
			for i := 0; i < 7*per; i++ {
				m, err := w[0].Recv(AnySource, TagResult)
				if err != nil {
					t.Fatal(err)
				}
				if int(m.Data[1]) != next[m.From] {
					t.Fatalf("rank %d message %d arrived at position %d", m.From, m.Data[1], next[m.From])
				}
				next[m.From]++
			}
			wg.Wait()
		})
	}
}
