package seq

import (
	"fmt"
	"strings"
)

// Alignment is a set of equal-length coded DNA sequences.
type Alignment struct {
	// Names holds one label per sequence, in input order.
	Names []string
	// Data holds the coded sites: Data[i][s] is the code of sequence i at
	// alignment column s.
	Data [][]Code
}

// NewAlignment creates an empty alignment with capacity for n sequences.
func NewAlignment(n int) *Alignment {
	return &Alignment{
		Names: make([]string, 0, n),
		Data:  make([][]Code, 0, n),
	}
}

// NumSeqs returns the number of sequences.
func (a *Alignment) NumSeqs() int { return len(a.Data) }

// NumSites returns the number of alignment columns (0 for an empty
// alignment).
func (a *Alignment) NumSites() int {
	if len(a.Data) == 0 {
		return 0
	}
	return len(a.Data[0])
}

// Add appends a sequence given as an ASCII string. Whitespace within the
// string is ignored, so callers may pass blocked sequence text directly.
func (a *Alignment) Add(name, bases string) error {
	coded := make([]Code, 0, len(bases))
	for i := 0; i < len(bases); i++ {
		ch := bases[i]
		if ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r' {
			continue
		}
		c, err := ParseBase(ch)
		if err != nil {
			return fmt.Errorf("sequence %q, position %d: %w", name, i+1, err)
		}
		coded = append(coded, c)
	}
	return a.AddCoded(name, coded)
}

// AddCoded appends an already coded sequence.
func (a *Alignment) AddCoded(name string, coded []Code) error {
	if n := a.NumSites(); len(a.Data) > 0 && len(coded) != n {
		return fmt.Errorf("seq: sequence %q has %d sites, want %d", name, len(coded), n)
	}
	a.Names = append(a.Names, name)
	a.Data = append(a.Data, coded)
	return nil
}

// Validate checks structural invariants: at least one sequence, equal
// lengths, non-empty unique names, and valid codes.
func (a *Alignment) Validate() error {
	if len(a.Data) == 0 {
		return fmt.Errorf("seq: alignment has no sequences")
	}
	if len(a.Names) != len(a.Data) {
		return fmt.Errorf("seq: %d names for %d sequences", len(a.Names), len(a.Data))
	}
	n := len(a.Data[0])
	if n == 0 {
		return fmt.Errorf("seq: alignment has no sites")
	}
	seen := make(map[string]bool, len(a.Names))
	for i, name := range a.Names {
		if name == "" {
			return fmt.Errorf("seq: sequence %d has an empty name", i+1)
		}
		if seen[name] {
			return fmt.Errorf("seq: duplicate sequence name %q", name)
		}
		seen[name] = true
		if len(a.Data[i]) != n {
			return fmt.Errorf("seq: sequence %q has %d sites, want %d", name, len(a.Data[i]), n)
		}
		for s, c := range a.Data[i] {
			if c == 0 || c > Any {
				return fmt.Errorf("seq: sequence %q has invalid code %d at site %d", name, c, s+1)
			}
		}
	}
	return nil
}

// Index returns the position of the named sequence, or -1.
func (a *Alignment) Index(name string) int {
	for i, n := range a.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Row returns the ASCII rendering of sequence i.
func (a *Alignment) Row(i int) string {
	var b strings.Builder
	b.Grow(len(a.Data[i]))
	for _, c := range a.Data[i] {
		b.WriteByte(c.Char())
	}
	return b.String()
}

// Subset returns a new alignment restricted to the sequences whose indices
// are listed in keep (in that order). The underlying site data is shared.
func (a *Alignment) Subset(keep []int) (*Alignment, error) {
	out := NewAlignment(len(keep))
	for _, i := range keep {
		if i < 0 || i >= len(a.Data) {
			return nil, fmt.Errorf("seq: subset index %d out of range", i)
		}
		out.Names = append(out.Names, a.Names[i])
		out.Data = append(out.Data, a.Data[i])
	}
	return out, nil
}

// Columns returns column s of the alignment as a freshly allocated slice.
func (a *Alignment) Columns(s int) []Code {
	col := make([]Code, len(a.Data))
	for i := range a.Data {
		col[i] = a.Data[i][s]
	}
	return col
}

// Clone returns a deep copy of the alignment.
func (a *Alignment) Clone() *Alignment {
	out := NewAlignment(len(a.Data))
	out.Names = append(out.Names, a.Names...)
	for _, row := range a.Data {
		cp := make([]Code, len(row))
		copy(cp, row)
		out.Data = append(out.Data, cp)
	}
	return out
}
