package seq

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadFasta parses a FASTA nucleotide alignment. All records must have the
// same length.
func ReadFasta(r io.Reader) (*Alignment, error) {
	br := bufio.NewScanner(r)
	br.Buffer(make([]byte, 0, 1<<16), 1<<24)
	a := NewAlignment(8)
	var name string
	var body strings.Builder
	flush := func() error {
		if name == "" {
			return nil
		}
		if err := a.Add(name, body.String()); err != nil {
			return err
		}
		name = ""
		body.Reset()
		return nil
	}
	for br.Scan() {
		line := strings.TrimSpace(br.Text())
		if line == "" {
			continue
		}
		if line[0] == '>' {
			if err := flush(); err != nil {
				return nil, err
			}
			name = strings.Fields(line[1:])[0]
			if name == "" {
				return nil, fmt.Errorf("fasta: record with empty name")
			}
			continue
		}
		if name == "" {
			return nil, fmt.Errorf("fasta: sequence data before first header")
		}
		body.WriteString(line)
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("fasta: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// WriteFasta writes the alignment as FASTA with 70 columns per line.
func WriteFasta(w io.Writer, a *Alignment) error {
	if err := a.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	const width = 70
	for i := range a.Data {
		fmt.Fprintf(bw, ">%s\n", a.Names[i])
		row := a.Row(i)
		for start := 0; start < len(row); start += width {
			end := start + width
			if end > len(row) {
				end = len(row)
			}
			bw.WriteString(row[start:end])
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}
