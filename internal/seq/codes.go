// Package seq provides DNA sequence alignments for maximum likelihood
// phylogenetic inference: IUPAC nucleotide coding, PHYLIP and FASTA
// input/output, site-pattern compression, and empirical base frequency
// estimation.
//
// Sequences are stored as 4-bit presence masks (one per site) so that
// ambiguity codes and gaps are handled uniformly by the likelihood core:
// a tip's conditional likelihood for base b is 1 when bit b is set in the
// mask and 0 otherwise. A gap or fully ambiguous code has all four bits set
// and therefore carries no information, which is fastDNAml's treatment of
// gaps as missing data.
package seq

import "fmt"

// Code is a 4-bit nucleotide presence mask. Bit 0 is A, bit 1 is C,
// bit 2 is G, and bit 3 is T (and U). The zero value is invalid; every
// site of a parsed alignment has at least one bit set.
type Code byte

// Single-base codes and the fully ambiguous code.
const (
	A Code = 1 << iota
	C
	G
	T
	// Any is the fully ambiguous code used for N, X, ?, and gaps.
	Any Code = A | C | G | T
)

// NumBases is the alphabet size of the nucleotide models.
const NumBases = 4

// codeOf maps ASCII characters to codes. Unmapped characters are 0.
var codeOf [256]Code

// charOf maps each of the 16 code values back to its canonical IUPAC letter.
var charOf [16]byte

func init() {
	set := func(ch byte, c Code) {
		codeOf[ch] = c
		lower := ch + 'a' - 'A'
		if ch >= 'A' && ch <= 'Z' {
			codeOf[lower] = c
		}
	}
	set('A', A)
	set('C', C)
	set('G', G)
	set('T', T)
	set('U', T)
	set('M', A|C)
	set('R', A|G)
	set('W', A|T)
	set('S', C|G)
	set('Y', C|T)
	set('K', G|T)
	set('V', A|C|G)
	set('H', A|C|T)
	set('D', A|G|T)
	set('B', C|G|T)
	set('N', Any)
	set('X', Any)
	codeOf['?'] = Any
	codeOf['-'] = Any
	codeOf['.'] = Any
	codeOf['O'] = Any // old PHYLIP "deletion" state, treated as missing

	letters := map[Code]byte{
		A: 'A', C: 'C', G: 'G', T: 'T',
		A | C: 'M', A | G: 'R', A | T: 'W',
		C | G: 'S', C | T: 'Y', G | T: 'K',
		A | C | G: 'V', A | C | T: 'H', A | G | T: 'D', C | G | T: 'B',
		Any: 'N',
	}
	for c, ch := range letters {
		charOf[c] = ch
	}
}

// ParseBase converts an ASCII nucleotide character (IUPAC, case
// insensitive, with '-', '.', '?' as missing) to its Code.
// It reports an error for characters outside the alphabet.
func ParseBase(ch byte) (Code, error) {
	c := codeOf[ch]
	if c == 0 {
		return 0, fmt.Errorf("seq: invalid nucleotide character %q", ch)
	}
	return c, nil
}

// IsBaseChar reports whether ch is a recognized nucleotide character.
func IsBaseChar(ch byte) bool { return codeOf[ch] != 0 }

// Char returns the canonical IUPAC letter for c ('N' for Any).
// It returns '?' for the invalid zero code.
func (c Code) Char() byte {
	if c == 0 || c > Any {
		return '?'
	}
	return charOf[c]
}

// Has reports whether base b (one of A, C, G, T) is compatible with c.
func (c Code) Has(b Code) bool { return c&b != 0 }

// Ambiguous reports whether c denotes more than one possible base.
func (c Code) Ambiguous() bool { return c != A && c != C && c != G && c != T }

// Count returns the number of bases compatible with c (1..4).
func (c Code) Count() int {
	n := 0
	for b := 0; b < NumBases; b++ {
		if c&(1<<uint(b)) != 0 {
			n++
		}
	}
	return n
}

// String implements fmt.Stringer.
func (c Code) String() string { return string(c.Char()) }

// BaseIndex returns the 0..3 index of a single-base code (A=0, C=1, G=2,
// T=3) and true, or 0 and false when c is ambiguous or invalid.
func (c Code) BaseIndex() (int, bool) {
	switch c {
	case A:
		return 0, true
	case C:
		return 1, true
	case G:
		return 2, true
	case T:
		return 3, true
	}
	return 0, false
}

// BaseName returns the canonical letter of base index i (0..3).
func BaseName(i int) byte { return [NumBases]byte{'A', 'C', 'G', 'T'}[i] }
