package seq

import (
	"testing"
	"testing/quick"
)

func TestParseBaseSingles(t *testing.T) {
	cases := []struct {
		ch   byte
		want Code
	}{
		{'A', A}, {'a', A}, {'C', C}, {'c', C},
		{'G', G}, {'g', G}, {'T', T}, {'t', T},
		{'U', T}, {'u', T},
	}
	for _, c := range cases {
		got, err := ParseBase(c.ch)
		if err != nil {
			t.Fatalf("ParseBase(%q): %v", c.ch, err)
		}
		if got != c.want {
			t.Errorf("ParseBase(%q) = %v, want %v", c.ch, got, c.want)
		}
	}
}

func TestParseBaseAmbiguity(t *testing.T) {
	cases := []struct {
		ch   byte
		want Code
	}{
		{'R', A | G}, {'Y', C | T}, {'M', A | C}, {'K', G | T},
		{'S', C | G}, {'W', A | T},
		{'B', C | G | T}, {'D', A | G | T}, {'H', A | C | T}, {'V', A | C | G},
		{'N', Any}, {'X', Any}, {'?', Any}, {'-', Any}, {'.', Any},
	}
	for _, c := range cases {
		got, err := ParseBase(c.ch)
		if err != nil {
			t.Fatalf("ParseBase(%q): %v", c.ch, err)
		}
		if got != c.want {
			t.Errorf("ParseBase(%q) = %04b, want %04b", c.ch, got, c.want)
		}
	}
}

func TestParseBaseInvalid(t *testing.T) {
	for _, ch := range []byte{'Z', '1', '*', ' ', 0} {
		if _, err := ParseBase(ch); err == nil {
			t.Errorf("ParseBase(%q): expected error", ch)
		}
	}
}

func TestCharRoundTrip(t *testing.T) {
	// Every valid code maps to a character that parses back to the same
	// code (with Any canonicalized to 'N').
	for c := Code(1); c <= Any; c++ {
		ch := c.Char()
		back, err := ParseBase(ch)
		if err != nil {
			t.Fatalf("code %04b -> char %q unparseable: %v", c, ch, err)
		}
		if back != c {
			t.Errorf("code %04b -> %q -> %04b", c, ch, back)
		}
	}
}

func TestCodeCount(t *testing.T) {
	if Any.Count() != 4 {
		t.Errorf("Any.Count() = %d, want 4", Any.Count())
	}
	if A.Count() != 1 || T.Count() != 1 {
		t.Error("single base Count != 1")
	}
	if (A | G).Count() != 2 {
		t.Errorf("(A|G).Count() = %d, want 2", (A | G).Count())
	}
}

func TestCodeAmbiguous(t *testing.T) {
	for _, c := range []Code{A, C, G, T} {
		if c.Ambiguous() {
			t.Errorf("%v should not be ambiguous", c)
		}
	}
	for _, c := range []Code{A | G, Any, C | T | G} {
		if !c.Ambiguous() {
			t.Errorf("%04b should be ambiguous", c)
		}
	}
}

func TestBaseIndex(t *testing.T) {
	wants := map[Code]int{A: 0, C: 1, G: 2, T: 3}
	for c, want := range wants {
		got, ok := c.BaseIndex()
		if !ok || got != want {
			t.Errorf("BaseIndex(%v) = %d,%v want %d,true", c, got, ok, want)
		}
	}
	if _, ok := (A | G).BaseIndex(); ok {
		t.Error("BaseIndex of ambiguous code should fail")
	}
	if _, ok := Code(0).BaseIndex(); ok {
		t.Error("BaseIndex of zero code should fail")
	}
}

func TestCodeHasPropertyQuick(t *testing.T) {
	// Property: Has(b) is consistent with Count over the four bases.
	f := func(raw byte) bool {
		c := Code(raw%15) + 1 // 1..15
		n := 0
		for _, b := range []Code{A, C, G, T} {
			if c.Has(b) {
				n++
			}
		}
		return n == c.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBaseName(t *testing.T) {
	got := []byte{BaseName(0), BaseName(1), BaseName(2), BaseName(3)}
	if string(got) != "ACGT" {
		t.Errorf("BaseName order = %q, want ACGT", got)
	}
}
