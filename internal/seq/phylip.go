package seq

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PHYLIP file support.
//
// fastDNAml reads PHYLIP format DNA (or RNA) sequence files (paper §2.1).
// Both the interleaved and the sequential layouts are accepted, and names
// may be either strict (exactly 10 columns, possibly containing blanks) or
// relaxed (whitespace-terminated). ReadPhylip auto-detects the layout by
// attempting a sequential parse first and falling back to interleaved;
// ReadPhylipSequential and ReadPhylipInterleaved force a layout.

// phylipNameLen is the strict PHYLIP name field width.
const phylipNameLen = 10

// phylipFile is the tokenized form shared by both layout parsers.
type phylipFile struct {
	ntax, nsites int
	lines        []string
}

func loadPhylip(r io.Reader) (*phylipFile, error) {
	br := bufio.NewReader(r)
	ntax, nsites, err := readPhylipHeader(br)
	if err != nil {
		return nil, err
	}
	f := &phylipFile{ntax: ntax, nsites: nsites}
	for {
		line, err := br.ReadString('\n')
		if line != "" {
			trimmed := strings.TrimRight(line, "\r\n")
			if strings.TrimSpace(trimmed) != "" {
				f.lines = append(f.lines, trimmed)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("phylip: %w", err)
		}
	}
	if len(f.lines) < ntax {
		return nil, fmt.Errorf("phylip: expected at least %d sequence lines, found %d", ntax, len(f.lines))
	}
	return f, nil
}

// ReadPhylip parses a PHYLIP alignment, auto-detecting the layout.
func ReadPhylip(r io.Reader) (*Alignment, error) {
	f, err := loadPhylip(r)
	if err != nil {
		return nil, err
	}
	a, seqErr := f.parseSequential()
	if seqErr == nil {
		return a, nil
	}
	a, intErr := f.parseInterleaved()
	if intErr == nil {
		return a, nil
	}
	return nil, fmt.Errorf("phylip: not sequential (%v) and not interleaved (%v)", seqErr, intErr)
}

// ReadPhylipSequential parses a PHYLIP alignment in sequential layout.
func ReadPhylipSequential(r io.Reader) (*Alignment, error) {
	f, err := loadPhylip(r)
	if err != nil {
		return nil, err
	}
	return f.parseSequential()
}

// ReadPhylipInterleaved parses a PHYLIP alignment in interleaved layout.
func ReadPhylipInterleaved(r io.Reader) (*Alignment, error) {
	f, err := loadPhylip(r)
	if err != nil {
		return nil, err
	}
	return f.parseInterleaved()
}

// parseSequential reads one taxon at a time: a name line followed by
// continuation lines until the sequence reaches nsites.
func (f *phylipFile) parseSequential() (*Alignment, error) {
	names := make([]string, f.ntax)
	rows := make([][]Code, f.ntax)
	li := 0
	for t := 0; t < f.ntax; t++ {
		if li >= len(f.lines) {
			return nil, fmt.Errorf("phylip: ran out of lines at taxon %d", t+1)
		}
		name, bases, err := splitPhylipNameLine(f.lines[li])
		li++
		if err != nil {
			return nil, fmt.Errorf("phylip: taxon %d: %w", t+1, err)
		}
		names[t] = name
		rows[t], err = appendCoded(nil, bases, f.nsites)
		if err != nil {
			return nil, fmt.Errorf("phylip: sequence %q: %w", name, err)
		}
		for len(rows[t]) < f.nsites {
			if li >= len(f.lines) {
				return nil, fmt.Errorf("phylip: sequence %q has %d sites, header promised %d", name, len(rows[t]), f.nsites)
			}
			rows[t], err = appendCoded(rows[t], f.lines[li], f.nsites)
			li++
			if err != nil {
				return nil, fmt.Errorf("phylip: sequence %q: %w", name, err)
			}
		}
	}
	if li != len(f.lines) {
		return nil, fmt.Errorf("phylip: %d trailing lines after last sequence", len(f.lines)-li)
	}
	a := &Alignment{Names: names, Data: rows}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// parseInterleaved reads the first ntax lines as name lines and then cycles
// through the taxa for each subsequent block line.
func (f *phylipFile) parseInterleaved() (*Alignment, error) {
	names := make([]string, f.ntax)
	rows := make([][]Code, f.ntax)
	for t := 0; t < f.ntax; t++ {
		name, bases, err := splitPhylipNameLine(f.lines[t])
		if err != nil {
			return nil, fmt.Errorf("phylip: line %d: %w", t+2, err)
		}
		names[t] = name
		rows[t], err = appendCoded(nil, bases, f.nsites)
		if err != nil {
			return nil, fmt.Errorf("phylip: sequence %q: %w", name, err)
		}
	}
	for i, line := range f.lines[f.ntax:] {
		t := i % f.ntax
		var err error
		rows[t], err = appendCoded(rows[t], line, f.nsites)
		if err != nil {
			return nil, fmt.Errorf("phylip: sequence %q: %w", names[t], err)
		}
	}
	for t := range rows {
		if len(rows[t]) != f.nsites {
			return nil, fmt.Errorf("phylip: sequence %q has %d sites, header promised %d", names[t], len(rows[t]), f.nsites)
		}
	}
	a := &Alignment{Names: names, Data: rows}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// readPhylipHeader parses the "ntax nsites" line, skipping blank lines.
func readPhylipHeader(br *bufio.Reader) (ntax, nsites int, err error) {
	for {
		line, err := br.ReadString('\n')
		s := strings.TrimSpace(line)
		if s != "" {
			fields := strings.Fields(s)
			if len(fields) < 2 {
				return 0, 0, fmt.Errorf("phylip: bad header %q", s)
			}
			ntax, err1 := strconv.Atoi(fields[0])
			nsites, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil || ntax <= 0 || nsites <= 0 {
				return 0, 0, fmt.Errorf("phylip: bad header %q", s)
			}
			return ntax, nsites, nil
		}
		if err != nil {
			return 0, 0, fmt.Errorf("phylip: missing header: %w", err)
		}
	}
}

// splitPhylipNameLine separates the name field from the sequence data on
// the first line of a taxon. Relaxed names end at the first whitespace;
// strict 10-column names are used when the relaxed interpretation yields
// sequence text that is not valid nucleotide data.
func splitPhylipNameLine(line string) (name, bases string, err error) {
	trimmed := strings.TrimLeft(line, " \t")
	if trimmed == "" {
		return "", "", fmt.Errorf("blank sequence line")
	}
	idx := strings.IndexAny(trimmed, " \t")
	if idx < 0 {
		// No whitespace: strict format with the sequence glued to a
		// 10-character name, or a name-only line.
		if len(trimmed) > phylipNameLen {
			return strings.TrimSpace(trimmed[:phylipNameLen]), trimmed[phylipNameLen:], nil
		}
		return trimmed, "", nil
	}
	name = trimmed[:idx]
	rest := trimmed[idx:]
	if allBaseChars(rest) {
		return name, rest, nil
	}
	// Fall back to strict names ("Homo sapiens" style with embedded blanks).
	if len(line) > phylipNameLen {
		strictName := strings.TrimSpace(line[:phylipNameLen])
		strictRest := line[phylipNameLen:]
		if strictName != "" && allBaseChars(strictRest) {
			return strictName, strictRest, nil
		}
	}
	return "", "", fmt.Errorf("cannot parse name/sequence from %q", line)
}

func allBaseChars(s string) bool {
	seen := false
	for i := 0; i < len(s); i++ {
		ch := s[i]
		if ch == ' ' || ch == '\t' {
			continue
		}
		if !IsBaseChar(ch) {
			return false
		}
		seen = true
	}
	return seen
}

// appendCoded appends the coded bases of text to row, erroring if the row
// would exceed nsites.
func appendCoded(row []Code, text string, nsites int) ([]Code, error) {
	for i := 0; i < len(text); i++ {
		ch := text[i]
		if ch == ' ' || ch == '\t' {
			continue
		}
		c, err := ParseBase(ch)
		if err != nil {
			return row, err
		}
		if len(row) >= nsites {
			return row, fmt.Errorf("more than %d sites", nsites)
		}
		row = append(row, c)
	}
	return row, nil
}

// WritePhylip writes the alignment in interleaved PHYLIP format with
// relaxed names, blockWidth sites per line (60 when blockWidth <= 0).
func WritePhylip(w io.Writer, a *Alignment, blockWidth int) error {
	if err := a.Validate(); err != nil {
		return err
	}
	if blockWidth <= 0 {
		blockWidth = 60
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", a.NumSeqs(), a.NumSites())
	nameWidth := phylipNameLen
	for _, n := range a.Names {
		if len(n) >= nameWidth {
			nameWidth = len(n) + 1
		}
	}
	nsites := a.NumSites()
	for start := 0; start < nsites; start += blockWidth {
		end := start + blockWidth
		if end > nsites {
			end = nsites
		}
		for i := range a.Data {
			if start == 0 {
				fmt.Fprintf(bw, "%-*s", nameWidth, a.Names[i])
			} else {
				fmt.Fprintf(bw, "%-*s", nameWidth, "")
			}
			for s := start; s < end; s++ {
				bw.WriteByte(a.Data[i][s].Char())
			}
			bw.WriteByte('\n')
		}
		if end < nsites {
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}
