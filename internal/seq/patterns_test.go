package seq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mkAlign(t *testing.T, rows ...string) *Alignment {
	t.Helper()
	a := NewAlignment(len(rows))
	for i, r := range rows {
		if err := a.Add(string(rune('a'+i)), r); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestCompressBasic(t *testing.T) {
	// Columns: 0 and 3 identical, 1 and 2 identical.
	a := mkAlign(t,
		"ACCA",
		"GTTG",
		"AGGA")
	p, err := Compress(a, CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPatterns() != 2 {
		t.Fatalf("NumPatterns = %d, want 2", p.NumPatterns())
	}
	if p.TotalWeight() != 4 {
		t.Errorf("TotalWeight = %g, want 4", p.TotalWeight())
	}
	if p.SiteOf[0] != p.SiteOf[3] || p.SiteOf[1] != p.SiteOf[2] || p.SiteOf[0] == p.SiteOf[1] {
		t.Errorf("SiteOf = %v", p.SiteOf)
	}
}

func TestCompressWeightsAndZeroDrop(t *testing.T) {
	a := mkAlign(t, "ACGT", "ACGT")
	p, err := Compress(a, CompressOptions{Weights: []float64{2, 0, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalWeight() != 6 {
		t.Errorf("TotalWeight = %g, want 6", p.TotalWeight())
	}
	if p.SiteOf[1] != -1 {
		t.Errorf("zero-weight site should map to -1, got %d", p.SiteOf[1])
	}
}

func TestCompressRatesSplitPatterns(t *testing.T) {
	// Identical columns with different rates must not alias.
	a := mkAlign(t, "AA", "CC")
	p, err := Compress(a, CompressOptions{Rates: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPatterns() != 2 {
		t.Fatalf("NumPatterns = %d, want 2 (rates differ)", p.NumPatterns())
	}
}

func TestCompressDisable(t *testing.T) {
	a := mkAlign(t, "AAAA", "CCCC")
	p, err := Compress(a, CompressOptions{Disable: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPatterns() != 4 {
		t.Fatalf("NumPatterns = %d, want 4 with compression disabled", p.NumPatterns())
	}
}

func TestCompressErrors(t *testing.T) {
	a := mkAlign(t, "ACGT")
	if _, err := Compress(a, CompressOptions{Weights: []float64{1}}); err == nil {
		t.Error("wrong weight length should fail")
	}
	if _, err := Compress(a, CompressOptions{Weights: []float64{1, -1, 1, 1}}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := Compress(a, CompressOptions{Rates: []float64{1, 0, 1, 1}}); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := Compress(a, CompressOptions{Weights: []float64{0, 0, 0, 0}}); err == nil {
		t.Error("all-zero weights should fail")
	}
}

// TestCompressInvariantsQuick checks, for random alignments, that the
// compressed representation preserves total weight and reconstructs every
// column exactly.
func TestCompressInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nseq := 2 + rng.Intn(5)
		nsites := 1 + rng.Intn(40)
		a := NewAlignment(nseq)
		for i := 0; i < nseq; i++ {
			row := make([]Code, nsites)
			for s := range row {
				row[s] = Code(1 + rng.Intn(15))
			}
			if err := a.AddCoded(string(rune('a'+i)), row); err != nil {
				return false
			}
		}
		p, err := Compress(a, CompressOptions{})
		if err != nil {
			return false
		}
		if p.TotalWeight() != float64(nsites) {
			return false
		}
		// Each original column must match its pattern exactly.
		for s := 0; s < nsites; s++ {
			pat := p.SiteOf[s]
			for i := 0; i < nseq; i++ {
				if p.Codes[i][pat] != a.Data[i][s] {
					return false
				}
			}
		}
		// Patterns must be pairwise distinct.
		for x := 0; x < p.NumPatterns(); x++ {
			for y := x + 1; y < p.NumPatterns(); y++ {
				same := true
				for i := 0; i < nseq; i++ {
					if p.Codes[i][x] != p.Codes[i][y] {
						same = false
						break
					}
				}
				if same {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExpandPerSiteValues(t *testing.T) {
	a := mkAlign(t, "AACA", "GGTG")
	p, err := Compress(a, CompressOptions{Weights: []float64{1, 1, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, p.NumPatterns())
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	out, err := p.ExpandPerSite(vals, -1)
	if err != nil {
		t.Fatal(err)
	}
	if out[3] != -1 {
		t.Errorf("dropped site fill = %g, want -1", out[3])
	}
	if out[0] != out[1] {
		t.Errorf("aliased sites got different values: %v", out)
	}
	if out[0] == out[2] {
		t.Errorf("distinct sites got same value: %v", out)
	}
	if _, err := p.ExpandPerSite(vals[:1], 0); err == nil && p.NumPatterns() != 1 {
		t.Error("length mismatch should fail")
	}
}

func TestEmpiricalFreqsUnambiguous(t *testing.T) {
	a := mkAlign(t, "AACG", "TTCG")
	f, err := EmpiricalFreqs(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2 A, 2 C, 2 G, 2 T out of 8.
	for b := 0; b < NumBases; b++ {
		if f[b] < 0.249 || f[b] > 0.251 {
			t.Errorf("freq[%c] = %g, want 0.25", BaseName(b), f[b])
		}
	}
}

func TestEmpiricalFreqsIgnoresGaps(t *testing.T) {
	a := mkAlign(t, "AA--", "AANN")
	f, err := EmpiricalFreqs(a)
	if err != nil {
		t.Fatal(err)
	}
	if f[0] < 0.99 {
		t.Errorf("freq[A] = %g, want ~1 (gaps carry no information)", f[0])
	}
}

func TestEmpiricalFreqsAmbiguousSplit(t *testing.T) {
	// R = A or G; with only R characters the mass should split between
	// A and G.
	a := mkAlign(t, "RRRR")
	f, err := EmpiricalFreqs(a)
	if err != nil {
		t.Fatal(err)
	}
	if f[0] < 0.4 || f[2] < 0.4 {
		t.Errorf("R should split between A and G: %v", f)
	}
	if f[1] > 0.01 || f[3] > 0.01 {
		t.Errorf("C/T should receive almost nothing: %v", f)
	}
}

func TestEmpiricalFreqsPatternsMatchesAlignment(t *testing.T) {
	a := mkAlign(t, "AACGTACGAA", "ACCGTTCGAA", "AACCTACGTA")
	p, err := Compress(a, CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fa, err := EmpiricalFreqs(a)
	if err != nil {
		t.Fatal(err)
	}
	fp := EmpiricalFreqsPatterns(p)
	for b := 0; b < NumBases; b++ {
		if d := fa[b] - fp[b]; d > 1e-12 || d < -1e-12 {
			t.Errorf("freq[%c]: alignment %g vs patterns %g", BaseName(b), fa[b], fp[b])
		}
	}
}

func TestBaseFreqsValidate(t *testing.T) {
	if err := Uniform().Validate(); err != nil {
		t.Error(err)
	}
	bad := BaseFreqs{0.5, 0.5, 0.5, 0.5}
	if err := bad.Validate(); err == nil {
		t.Error("sum 2 should fail")
	}
	bad = BaseFreqs{1, 0, 0, 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero frequency should fail")
	}
	n := (BaseFreqs{1, 1, 1, 1}).Normalize()
	if err := n.Validate(); err != nil {
		t.Error(err)
	}
}
