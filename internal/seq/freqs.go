package seq

import "fmt"

// BaseFreqs holds equilibrium base frequencies in A, C, G, T order.
type BaseFreqs [NumBases]float64

// Uniform returns equal frequencies of 0.25.
func Uniform() BaseFreqs { return BaseFreqs{0.25, 0.25, 0.25, 0.25} }

// Validate checks that the frequencies are positive and sum to ~1.
func (f BaseFreqs) Validate() error {
	sum := 0.0
	for i, v := range f {
		if v <= 0 {
			return fmt.Errorf("seq: frequency of %c is %g, must be positive", BaseName(i), v)
		}
		sum += v
	}
	if sum < 0.999999 || sum > 1.000001 {
		return fmt.Errorf("seq: frequencies sum to %g, want 1", sum)
	}
	return nil
}

// Normalize scales the frequencies to sum to 1.
func (f BaseFreqs) Normalize() BaseFreqs {
	sum := 0.0
	for _, v := range f {
		sum += v
	}
	if sum == 0 {
		return Uniform()
	}
	for i := range f {
		f[i] /= sum
	}
	return f
}

// EmpiricalFreqs estimates equilibrium base frequencies from the alignment
// by iterative proportional allocation of ambiguity codes, as fastDNAml's
// empiricalfreqs does: each ambiguous character contributes to the bases it
// is compatible with in proportion to the current frequency estimates.
// Characters compatible with all four bases (gaps, N) carry no information
// and are skipped. The paper (§2.1) notes that the base composition of the
// data is used as the default equilibrium frequencies.
func EmpiricalFreqs(a *Alignment) (BaseFreqs, error) {
	if err := a.Validate(); err != nil {
		return BaseFreqs{}, err
	}
	f := Uniform()
	const iterations = 8
	for it := 0; it < iterations; it++ {
		var counts BaseFreqs
		for i := range a.Data {
			for _, c := range a.Data[i] {
				if c == Any {
					continue
				}
				// Mass of the compatible bases under current estimate.
				mass := 0.0
				for b := 0; b < NumBases; b++ {
					if c&(1<<uint(b)) != 0 {
						mass += f[b]
					}
				}
				if mass == 0 {
					continue
				}
				for b := 0; b < NumBases; b++ {
					if c&(1<<uint(b)) != 0 {
						counts[b] += f[b] / mass
					}
				}
			}
		}
		total := counts[0] + counts[1] + counts[2] + counts[3]
		if total == 0 {
			return Uniform(), nil
		}
		for b := 0; b < NumBases; b++ {
			// Guard against degenerate alignments (e.g. a base absent
			// everywhere) which would make F84 ill-defined.
			f[b] = counts[b] / total
			if f[b] < 1e-6 {
				f[b] = 1e-6
			}
		}
		f = f.Normalize()
	}
	return f, nil
}

// EmpiricalFreqsPatterns estimates frequencies from compressed patterns,
// weighting each pattern by its multiplicity.
func EmpiricalFreqsPatterns(p *Patterns) BaseFreqs {
	f := Uniform()
	const iterations = 8
	for it := 0; it < iterations; it++ {
		var counts BaseFreqs
		for i := range p.Codes {
			for s, c := range p.Codes[i] {
				if c == Any {
					continue
				}
				mass := 0.0
				for b := 0; b < NumBases; b++ {
					if c&(1<<uint(b)) != 0 {
						mass += f[b]
					}
				}
				if mass == 0 {
					continue
				}
				w := p.Weights[s]
				for b := 0; b < NumBases; b++ {
					if c&(1<<uint(b)) != 0 {
						counts[b] += w * f[b] / mass
					}
				}
			}
		}
		total := counts[0] + counts[1] + counts[2] + counts[3]
		if total == 0 {
			return Uniform()
		}
		for b := 0; b < NumBases; b++ {
			f[b] = counts[b] / total
			if f[b] < 1e-6 {
				f[b] = 1e-6
			}
		}
		f = f.Normalize()
	}
	return f
}
