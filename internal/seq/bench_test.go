package seq

import (
	"math/rand"
	"strings"
	"testing"
)

func benchAlignment(b *testing.B, taxa, sites int) *Alignment {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	a := NewAlignment(taxa)
	letters := "ACGT"
	for i := 0; i < taxa; i++ {
		var sb strings.Builder
		for s := 0; s < sites; s++ {
			sb.WriteByte(letters[rng.Intn(4)])
		}
		if err := a.Add(string(rune('A'+i%26))+string(rune('a'+i/26)), sb.String()); err != nil {
			b.Fatal(err)
		}
	}
	return a
}

// BenchmarkCompress measures site-pattern compression at rRNA scale.
func BenchmarkCompress(b *testing.B) {
	a := benchAlignment(b, 50, 1858)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(a, CompressOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadPhylip measures parsing a 50x1858 interleaved file.
func BenchmarkReadPhylip(b *testing.B) {
	a := benchAlignment(b, 50, 1858)
	var sb strings.Builder
	if err := WritePhylip(&sb, a, 0); err != nil {
		b.Fatal(err)
	}
	text := sb.String()
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadPhylip(strings.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}
