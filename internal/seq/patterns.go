package seq

import (
	"fmt"
	"sort"
)

// Patterns is an alignment compressed to its distinct site patterns.
// fastDNAml aliases identical alignment columns so the pruning algorithm
// evaluates each distinct pattern once and weights its log-likelihood by
// the pattern's multiplicity; this is the dominant constant-factor
// optimization for rRNA-scale data.
type Patterns struct {
	// Codes holds the compressed sites: Codes[i][p] is the code of
	// sequence i at pattern p.
	Codes [][]Code
	// Weights[p] is the total weight of the columns collapsed into
	// pattern p (the sum of the user weights, or the column count when
	// the weights are uniform).
	Weights []float64
	// SiteOf maps each original alignment column to its pattern index.
	SiteOf []int
	// Rates[p] is the relative evolutionary rate of pattern p
	// (1.0 everywhere unless per-site rates or categories are supplied).
	Rates []float64
}

// NumPatterns returns the number of distinct patterns.
func (p *Patterns) NumPatterns() int { return len(p.Weights) }

// NumSeqs returns the number of sequences.
func (p *Patterns) NumSeqs() int { return len(p.Codes) }

// TotalWeight returns the summed weight over all patterns.
func (p *Patterns) TotalWeight() float64 {
	t := 0.0
	for _, w := range p.Weights {
		t += w
	}
	return t
}

// CompressOptions control site-pattern compression.
type CompressOptions struct {
	// Weights assigns a non-negative weight to each alignment column.
	// Columns with zero weight are dropped. Nil means weight 1 everywhere.
	Weights []float64
	// Rates assigns a relative rate to each column (DNArates output or
	// category rates). Columns are only aliased when their rates are
	// equal. Nil means rate 1 everywhere.
	Rates []float64
	// Disable turns compression off: every column becomes its own
	// pattern. Used by the compression ablation benchmark.
	Disable bool
}

// Compress collapses identical alignment columns into weighted patterns.
func Compress(a *Alignment, opt CompressOptions) (*Patterns, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	nsites := a.NumSites()
	nseqs := a.NumSeqs()
	if opt.Weights != nil && len(opt.Weights) != nsites {
		return nil, fmt.Errorf("seq: %d weights for %d sites", len(opt.Weights), nsites)
	}
	if opt.Rates != nil && len(opt.Rates) != nsites {
		return nil, fmt.Errorf("seq: %d rates for %d sites", len(opt.Rates), nsites)
	}
	weightAt := func(s int) float64 {
		if opt.Weights == nil {
			return 1
		}
		return opt.Weights[s]
	}
	rateAt := func(s int) float64 {
		if opt.Rates == nil {
			return 1
		}
		return opt.Rates[s]
	}
	for s := 0; s < nsites; s++ {
		if weightAt(s) < 0 {
			return nil, fmt.Errorf("seq: negative weight at site %d", s+1)
		}
		if rateAt(s) <= 0 {
			return nil, fmt.Errorf("seq: non-positive rate at site %d", s+1)
		}
	}

	p := &Patterns{
		Codes:  make([][]Code, nseqs),
		SiteOf: make([]int, nsites),
	}
	for i := range p.Codes {
		p.Codes[i] = make([]Code, 0, nsites)
	}

	// Order columns by content so identical columns are adjacent; this
	// gives deterministic pattern order without hashing variable-length
	// keys.
	order := make([]int, 0, nsites)
	for s := 0; s < nsites; s++ {
		if weightAt(s) > 0 {
			order = append(order, s)
		}
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("seq: all site weights are zero")
	}
	cmp := func(x, y int) int {
		for i := 0; i < nseqs; i++ {
			cx, cy := a.Data[i][x], a.Data[i][y]
			if cx != cy {
				return int(cx) - int(cy)
			}
		}
		switch rx, ry := rateAt(x), rateAt(y); {
		case rx < ry:
			return -1
		case rx > ry:
			return 1
		}
		return 0
	}
	if !opt.Disable {
		sort.SliceStable(order, func(i, j int) bool { return cmp(order[i], order[j]) < 0 })
	}

	for idx, s := range order {
		newPattern := idx == 0 || opt.Disable || cmp(order[idx-1], s) != 0
		if newPattern {
			for i := 0; i < nseqs; i++ {
				p.Codes[i] = append(p.Codes[i], a.Data[i][s])
			}
			p.Weights = append(p.Weights, 0)
			p.Rates = append(p.Rates, rateAt(s))
		}
		pat := len(p.Weights) - 1
		p.Weights[pat] += weightAt(s)
		p.SiteOf[s] = pat
	}
	for s := 0; s < nsites; s++ {
		if weightAt(s) == 0 {
			p.SiteOf[s] = -1
		}
	}
	return p, nil
}

// ExpandPerSite maps per-pattern values back onto the original alignment
// columns. Columns dropped by zero weight receive fill.
func (p *Patterns) ExpandPerSite(perPattern []float64, fill float64) ([]float64, error) {
	if len(perPattern) != p.NumPatterns() {
		return nil, fmt.Errorf("seq: %d values for %d patterns", len(perPattern), p.NumPatterns())
	}
	out := make([]float64, len(p.SiteOf))
	for s, pat := range p.SiteOf {
		if pat < 0 {
			out[s] = fill
		} else {
			out[s] = perPattern[pat]
		}
	}
	return out, nil
}
