package seq

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

const interleavedSample = `  5    20
Alpha     AACGTGGCCA AAT
Beta      AAGGTCGCCA AAC
Gamma     CATTTCGTCA CAA
Delta     GGTATTTCGG CCT
Epsilon   GGGATCTCGG CCC

TACTGAT
TACTGTC
GACTGAC
AACTGAC
GACTGAC
`

const sequentialSample = `5 20
Alpha     AACGTGGCCA
AATTACTGAT
Beta      AAGGTCGCCAAACTACTGTC
Gamma     CATTTCGTCA
CAAGACTGAC
Delta     GGTATTTCGGCCTAACTGAC
Epsilon   GGGATCTCGG
CCCGACTGAC
`

func TestReadPhylipInterleaved(t *testing.T) {
	a, err := ReadPhylip(strings.NewReader(interleavedSample))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSeqs() != 5 || a.NumSites() != 20 {
		t.Fatalf("got %d seqs x %d sites, want 5x20", a.NumSeqs(), a.NumSites())
	}
	if a.Names[0] != "Alpha" || a.Names[4] != "Epsilon" {
		t.Errorf("names = %v", a.Names)
	}
	if got := a.Row(0); got != "AACGTGGCCAAATTACTGAT" {
		t.Errorf("row 0 = %q", got)
	}
	if got := a.Row(4); got != "GGGATCTCGGCCCGACTGAC" {
		t.Errorf("row 4 = %q", got)
	}
}

func TestReadPhylipSequential(t *testing.T) {
	a, err := ReadPhylip(strings.NewReader(sequentialSample))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadPhylip(strings.NewReader(interleavedSample))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Row(i) != b.Row(i) {
			t.Errorf("sequential row %d = %q, interleaved = %q", i, a.Row(i), b.Row(i))
		}
	}
}

func TestReadPhylipErrors(t *testing.T) {
	bad := []string{
		"",
		"junk header\nAAA",
		"2 4\nA AAAA\n", // missing second taxon
		"1 4\nTax1 AZ-T\n",
		"2 3\nTax1 AAAA\nTax2 CCC\n", // too many sites
	}
	for _, s := range bad {
		if _, err := ReadPhylip(strings.NewReader(s)); err == nil {
			t.Errorf("ReadPhylip(%q): expected error", s)
		}
	}
}

func TestPhylipRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewAlignment(6)
	letters := "ACGTRYN-"
	for i := 0; i < 6; i++ {
		var b strings.Builder
		for s := 0; s < 137; s++ {
			b.WriteByte(letters[rng.Intn(len(letters))])
		}
		name := string(rune('A'+i)) + "_taxon"
		if err := a.Add(name, b.String()); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WritePhylip(&buf, a, 50); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPhylip(&buf)
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, buf.String())
	}
	if back.NumSeqs() != a.NumSeqs() || back.NumSites() != a.NumSites() {
		t.Fatalf("round trip shape mismatch")
	}
	for i := range a.Data {
		if back.Names[i] != a.Names[i] {
			t.Errorf("name %d: %q != %q", i, back.Names[i], a.Names[i])
		}
		// '-' and '.' canonicalize to 'N' (same code), so compare codes.
		for s := range a.Data[i] {
			if back.Data[i][s] != a.Data[i][s] {
				t.Errorf("seq %d site %d: %v != %v", i, s, back.Data[i][s], a.Data[i][s])
			}
		}
	}
}

func TestReadPhylipStrictNames(t *testing.T) {
	// Strict 10-column names with an embedded blank.
	in := "2 8\nHomo sapieAACGTACG\nPan trog  CCCGTACG\n"
	a, err := ReadPhylip(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if a.Names[0] != "Homo sapie" || a.Names[1] != "Pan trog" {
		t.Errorf("names = %q", a.Names)
	}
	if a.Row(0) != "AACGTACG" {
		t.Errorf("row 0 = %q", a.Row(0))
	}
}

func TestFastaRoundTrip(t *testing.T) {
	a := NewAlignment(3)
	for _, rec := range []struct{ name, s string }{
		{"one", "ACGTACGTAC"},
		{"two", "TTGTACGNAC"},
		{"three", "ACG-ACGTAY"},
	} {
		if err := a.Add(rec.name, rec.s); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFasta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSeqs() != 3 || back.NumSites() != 10 {
		t.Fatalf("shape %dx%d", back.NumSeqs(), back.NumSites())
	}
	for i := range a.Data {
		for s := range a.Data[i] {
			if back.Data[i][s] != a.Data[i][s] {
				t.Errorf("seq %d site %d mismatch", i, s)
			}
		}
	}
}

func TestFastaErrors(t *testing.T) {
	bad := []string{
		"ACGT\n",              // data before header
		">a\nACGT\n>b\nACG\n", // ragged
		">a\nAZGT\n",          // invalid char
	}
	for _, s := range bad {
		if _, err := ReadFasta(strings.NewReader(s)); err == nil {
			t.Errorf("ReadFasta(%q): expected error", s)
		}
	}
}

func TestAlignmentValidate(t *testing.T) {
	a := NewAlignment(2)
	if err := a.Validate(); err == nil {
		t.Error("empty alignment should not validate")
	}
	_ = a.Add("x", "ACGT")
	if err := a.Validate(); err != nil {
		t.Errorf("valid single-sequence alignment: %v", err)
	}
	if err := a.Add("x", "ACGT"); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err == nil {
		t.Error("duplicate names should not validate")
	}
}

func TestAlignmentSubset(t *testing.T) {
	a := NewAlignment(3)
	_ = a.Add("a", "AAAA")
	_ = a.Add("b", "CCCC")
	_ = a.Add("c", "GGGG")
	sub, err := a.Subset([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Names[0] != "c" || sub.Names[1] != "a" {
		t.Errorf("subset names = %v", sub.Names)
	}
	if _, err := a.Subset([]int{5}); err == nil {
		t.Error("out-of-range subset should fail")
	}
}

func TestAlignmentClone(t *testing.T) {
	a := NewAlignment(1)
	_ = a.Add("a", "ACGT")
	b := a.Clone()
	b.Data[0][0] = T
	if a.Data[0][0] != A {
		t.Error("Clone shares storage")
	}
}
