package likelihood

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/seq"
)

// Engine registry: backends register a constructor under a name, and
// the rest of the program selects one by that name (Config.Engine, the
// -engine flag, the DataBundle's engine field) without importing the
// implementation. Registration happens in init() functions, so the map
// is read-only once main starts and needs no locking.

// DefaultEngine is the backend used when no name is given: the
// CLV-cached production engine.
const DefaultEngine = "cached"

// EngineOptions carry the construction-time knobs every factory
// receives. Factories ignore options their backend has no use for (the
// reference engine ignores Threads, for example) — the capability
// helpers keep the rest of the program honest about what stuck.
type EngineOptions struct {
	// Precision selects the CLV storage format (Float64 default).
	Precision Precision
	// Threads is the kernel thread count for backends that shard
	// (values < 1 mean 1).
	Threads int
}

// Factory constructs one engine over a fixed model and data set.
type Factory func(m model.Model, p *seq.Patterns, opt EngineOptions) (Engine, error)

var engineFactories = map[string]Factory{}

// Register adds a backend under name. It panics on a duplicate name —
// registration is an init-time programming act, not a runtime input.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("likelihood: Register with empty name or nil factory")
	}
	if _, dup := engineFactories[name]; dup {
		panic("likelihood: duplicate engine registration: " + name)
	}
	engineFactories[name] = f
}

// Engines lists the registered backend names, sorted.
func Engines() []string {
	out := make([]string, 0, len(engineFactories))
	for name := range engineFactories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ParseEngine normalizes an engine name: "" selects DefaultEngine, and
// unknown names error with the available set.
func ParseEngine(name string) (string, error) {
	if name == "" {
		return DefaultEngine, nil
	}
	if _, ok := engineFactories[name]; !ok {
		return "", fmt.Errorf("likelihood: unknown engine %q (available: %v)", name, Engines())
	}
	return name, nil
}

// NewEngine constructs the named backend ("" selects DefaultEngine).
func NewEngine(name string, m model.Model, p *seq.Patterns, opt EngineOptions) (Engine, error) {
	name, err := ParseEngine(name)
	if err != nil {
		return nil, err
	}
	return engineFactories[name](m, p, opt)
}

func init() {
	Register("cached", func(m model.Model, p *seq.Patterns, opt EngineOptions) (Engine, error) {
		e, err := NewWithPrecision(m, p, opt.Precision)
		if err != nil {
			return nil, err
		}
		if opt.Threads > 1 {
			e.SetThreads(opt.Threads)
		}
		return e, nil
	})
	Register("reference", func(m model.Model, p *seq.Patterns, opt EngineOptions) (Engine, error) {
		return NewReference(m, p, opt.Precision)
	})
}
