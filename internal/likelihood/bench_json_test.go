package likelihood

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestKernelBenchJSON measures the kernel benchmarks at each thread
// count with testing.Benchmark and archives the results as
// BENCH_kernels.json via the obs bench writer, so CI accumulates
// machine-readable scaling data points alongside the chaos-soak and run
// reports. Gated on FDML_BENCH_DIR (make bench sets it); plain test
// runs skip it.
func TestKernelBenchJSON(t *testing.T) {
	dir := os.Getenv("FDML_BENCH_DIR")
	if dir == "" {
		t.Skip("set FDML_BENCH_DIR to emit BENCH_kernels.json")
	}
	start := time.Now()
	// Each kernel/thread-count point is measured benchReps times and the
	// minimum ns/op recorded: single testing.Benchmark samples swing
	// ±15% on shared runners, and best-of-N is the stablest estimator of
	// the kernel's true cost for the regression gate to diff against.
	const benchReps = 3
	// zeroAlloc marks the kernels with a zero-alloc steady-state
	// guarantee; full_smooth walks the tree with per-pass bookkeeping
	// and is measured without the assertion.
	kernels := []struct {
		name      string
		fn        func(*testing.B, int)
		zeroAlloc bool
	}{
		{"down_partial_cached", benchDownPartial, true},
		{"newton_edge", benchNewton, true},
		{"full_smooth", benchSmooth, false},
		{"grad_smooth", benchGradientSmooth, true},
	}
	// The calibration workload is a fixed, dependent float64 chain: pure
	// CPU speed, no memory or threading effects. benchdiff divides the
	// kernel timings by it before applying the regression limit, so a
	// shared runner that is globally 20% slower today than when the
	// baseline was captured does not read as 20% of kernel regression.
	cal := testing.Benchmark(benchCalibration)
	for rep := 1; rep < benchReps; rep++ {
		if rr := testing.Benchmark(benchCalibration); rr.NsPerOp() < cal.NsPerOp() {
			cal = rr
		}
	}
	t.Logf("calibration: %v/op", cal.NsPerOp())
	totals := map[string]float64{
		"num_cpu":        float64(runtime.NumCPU()),
		"gomaxprocs":     float64(runtime.GOMAXPROCS(0)),
		"calibration_ns": float64(cal.NsPerOp()),
	}
	details := map[string]any{}
	for _, k := range kernels {
		per := map[string]any{}
		var serialNs float64
		for _, n := range benchThreadCounts {
			n := n
			r := testing.Benchmark(func(b *testing.B) { k.fn(b, n) })
			for rep := 1; rep < benchReps; rep++ {
				if rr := testing.Benchmark(func(b *testing.B) { k.fn(b, n) }); rr.NsPerOp() < r.NsPerOp() {
					r = rr
				}
			}
			ns := float64(r.NsPerOp())
			if n == 1 {
				serialNs = ns
			}
			per[fmt.Sprintf("threads_%d", n)] = map[string]float64{
				"ns_per_op":         ns,
				"allocs_per_op":     float64(r.AllocsPerOp()),
				"bytes_per_op":      float64(r.AllocedBytesPerOp()),
				"speedup_vs_serial": serialNs / ns,
			}
			totals[fmt.Sprintf("%s_threads_%d_ns", k.name, n)] = ns
			if k.zeroAlloc && r.AllocsPerOp() != 0 {
				t.Errorf("%s threads=%d: %d allocs/op in steady state, want 0",
					k.name, n, r.AllocsPerOp())
			}
			t.Logf("%s threads=%d: %v/op, %d allocs/op", k.name, n, r.NsPerOp(), r.AllocsPerOp())
		}
		details[k.name] = per
	}
	if calSink == 0 {
		t.Error("calibration sink unexpectedly zero")
	}
	path, err := obs.WriteBench(dir, obs.BenchReport{
		Run:       "kernels",
		StartedAt: start,
		Totals:    totals,
		Details:   details,
	})
	if err != nil {
		t.Fatalf("bench report: %v", err)
	}
	t.Logf("wrote %s", path)
}

// calSink defeats dead-code elimination of the calibration chain.
var calSink float64

// benchCalibration is the machine-speed reference for benchdiff's
// normalization: a serially dependent multiply/add chain whose cost is
// set purely by single-core CPU speed.
func benchCalibration(b *testing.B) {
	s, y := 0.0, 1.0
	for i := 0; i < b.N; i++ {
		for j := 0; j < 4096; j++ {
			y = y*1.0000001 + 1e-9
			s += y
		}
	}
	calSink = s
}
