package likelihood

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestKernelBenchJSON measures the kernel benchmarks at each thread
// count with testing.Benchmark and archives the results as
// BENCH_kernels.json via the obs bench writer, so CI accumulates
// machine-readable scaling data points alongside the chaos-soak and run
// reports. Gated on FDML_BENCH_DIR (make bench sets it); plain test
// runs skip it.
func TestKernelBenchJSON(t *testing.T) {
	dir := os.Getenv("FDML_BENCH_DIR")
	if dir == "" {
		t.Skip("set FDML_BENCH_DIR to emit BENCH_kernels.json")
	}
	start := time.Now()
	// zeroAlloc marks the kernels with a zero-alloc steady-state
	// guarantee; full_smooth walks the tree with per-pass bookkeeping
	// and is measured without the assertion.
	kernels := []struct {
		name      string
		fn        func(*testing.B, int)
		zeroAlloc bool
	}{
		{"down_partial_cached", benchDownPartial, true},
		{"newton_edge", benchNewton, true},
		{"full_smooth", benchSmooth, false},
	}
	totals := map[string]float64{
		"num_cpu":    float64(runtime.NumCPU()),
		"gomaxprocs": float64(runtime.GOMAXPROCS(0)),
	}
	details := map[string]any{}
	for _, k := range kernels {
		per := map[string]any{}
		var serialNs float64
		for _, n := range benchThreadCounts {
			n := n
			r := testing.Benchmark(func(b *testing.B) { k.fn(b, n) })
			ns := float64(r.NsPerOp())
			if n == 1 {
				serialNs = ns
			}
			per[fmt.Sprintf("threads_%d", n)] = map[string]float64{
				"ns_per_op":         ns,
				"allocs_per_op":     float64(r.AllocsPerOp()),
				"bytes_per_op":      float64(r.AllocedBytesPerOp()),
				"speedup_vs_serial": serialNs / ns,
			}
			totals[fmt.Sprintf("%s_threads_%d_ns", k.name, n)] = ns
			if k.zeroAlloc && r.AllocsPerOp() != 0 {
				t.Errorf("%s threads=%d: %d allocs/op in steady state, want 0",
					k.name, n, r.AllocsPerOp())
			}
			t.Logf("%s threads=%d: %v/op, %d allocs/op", k.name, n, r.NsPerOp(), r.AllocsPerOp())
		}
		details[k.name] = per
	}
	path, err := obs.WriteBench(dir, obs.BenchReport{
		Run:       "kernels",
		StartedAt: start,
		Totals:    totals,
		Details:   details,
	})
	if err != nil {
		t.Fatalf("bench report: %v", err)
	}
	t.Logf("wrote %s", path)
}
