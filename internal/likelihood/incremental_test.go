package likelihood

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/seq"
	"repro/internal/tree"
)

// Property test for the CLV cache: after arbitrary sequences of branch
// length edits, SPR moves, leaf insertions/removals, out-of-band length
// mutations with explicit invalidation, cache flushes, and smoothing
// passes, the incremental engine's log-likelihood must match a fresh
// engine's from-scratch evaluation of the same tree to 1e-9.

// randomRows builds n random aligned sequences of the given length.
func randomRows(rng *rand.Rand, n, sites int) []string {
	const bases = "ACGT"
	rows := make([]string, n)
	buf := make([]byte, sites)
	for i := range rows {
		for s := range buf {
			// Correlate sites across taxa so trees are informative.
			if i > 0 && rng.Float64() < 0.7 {
				buf[s] = rows[i-1][s]
			} else {
				buf[s] = bases[rng.Intn(4)]
			}
		}
		rows[i] = string(buf)
	}
	return rows
}

func TestIncrementalMatchesFromScratch(t *testing.T) {
	cases := []struct {
		seed  int64
		taxa  int
		sites int
		steps int
	}{
		{seed: 1, taxa: 6, sites: 80, steps: 30},
		{seed: 2, taxa: 8, sites: 120, steps: 30},
		{seed: 3, taxa: 10, sites: 60, steps: 40},
		{seed: 4, taxa: 7, sites: 100, steps: 25},
	}
	for _, tc := range cases {
		tc := tc
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			rows := randomRows(rng, tc.taxa, tc.sites)
			p, _ := mkPatterns(t, rows...)
			// Force several rate classes so the class-blocked kernels and
			// the pattern permutation are exercised.
			classes := []float64{0.3, 1.0, 2.5}
			for i := range p.Rates {
				p.Rates[i] = classes[i%len(classes)]
			}
			m, err := model.NewF84(seq.EmpiricalFreqsPatterns(p), 2.0)
			if err != nil {
				t.Fatal(err)
			}
			inc, err := New(m, p)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := tree.RandomTree(taxaNames(tc.taxa), rng, 0.15)
			if err != nil {
				t.Fatal(err)
			}

			check := func(step int, op string) {
				got, err := inc.LogLikelihood(tr)
				if err != nil {
					t.Fatalf("step %d (%s): incremental: %v", step, op, err)
				}
				fresh, err := New(m, p)
				if err != nil {
					t.Fatal(err)
				}
				want, err := fresh.LogLikelihood(tr)
				if err != nil {
					t.Fatalf("step %d (%s): from-scratch: %v", step, op, err)
				}
				if diff := math.Abs(got - want); diff > 1e-9*math.Max(1, math.Abs(want)) {
					t.Fatalf("step %d (%s): incremental %.12f vs from-scratch %.12f (diff %g)", step, op, got, want, diff)
				}
			}

			randomEdge := func() tree.Edge {
				edges := tr.Edges()
				return edges[rng.Intn(len(edges))]
			}
			var removed []int
			check(-1, "initial")
			for step := 0; step < tc.steps; step++ {
				op := "none"
				switch rng.Intn(7) {
				case 0: // branch length edit through SetLen
					ed := randomEdge()
					tree.SetLen(ed.A, ed.B, rng.ExpFloat64()*0.15+MinBranchLength)
					op = "setlen"
				case 1: // random SPR move, applied permanently
					var moves []tree.SPRMove
					if _, err := tr.Rearrangements(1, func(_ *tree.Tree, cand tree.RearrangeCandidate) bool {
						moves = append(moves, cand.Move())
						return true
					}); err != nil {
						t.Fatalf("step %d: rearrangements: %v", step, err)
					}
					if len(moves) == 0 {
						continue
					}
					if _, err := tr.ApplySPR(moves[rng.Intn(len(moves))]); err != nil {
						t.Fatalf("step %d: apply SPR: %v", step, err)
					}
					op = "spr"
				case 2: // remove a random leaf
					present := tr.TaxaInTree()
					if len(present) <= 4 {
						continue
					}
					tax := present[rng.Intn(len(present))]
					if err := tr.RemoveLeaf(tax); err != nil {
						t.Fatalf("step %d: remove leaf: %v", step, err)
					}
					removed = append(removed, tax)
					op = "remove"
				case 3: // reinsert a removed leaf at a random edge
					if len(removed) == 0 {
						continue
					}
					tax := removed[len(removed)-1]
					removed = removed[:len(removed)-1]
					if _, err := tr.InsertLeaf(tax, randomEdge()); err != nil {
						t.Fatalf("step %d: insert leaf: %v", step, err)
					}
					op = "insert"
				case 4: // out-of-band length mutation + explicit invalidation
					ed := randomEdge()
					v := rng.ExpFloat64()*0.15 + MinBranchLength
					ed.A.Len[ed.A.NbrIndex(ed.B)] = v
					ed.B.Len[ed.B.NbrIndex(ed.A)] = v
					inc.InvalidateEdge(ed.A, ed.B)
					op = "invalidate-edge"
				case 5: // full cache flush
					inc.InvalidateAll()
					op = "invalidate-all"
				case 6: // a smoothing pass mutates many lengths via the cache
					if _, err := inc.OptimizeBranches(tr, OptOptions{Passes: 1}); err != nil {
						t.Fatalf("step %d: optimize: %v", step, err)
					}
					op = "optimize"
				}
				check(step, op)
			}

			st := inc.Stats()
			if st.Hits == 0 {
				t.Errorf("expected cache hits over %d steps, got stats %+v", tc.steps, st)
			}
			if st.Misses == 0 || st.Recomputed == 0 {
				t.Errorf("expected cache misses/recomputes, got stats %+v", st)
			}
			if st.Flushes == 0 && st.Invalidated == 0 {
				t.Errorf("expected explicit invalidations to be counted, got stats %+v", st)
			}
		})
	}
}

// TestInsertScorerMatchesExplicitInsertion: the shared-base insertion
// score must equal building the candidate tree explicitly (InsertLeaf +
// the scorer's optimized junction lengths) and evaluating it.
func TestInsertScorerMatchesExplicitInsertion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := randomRows(rng, 9, 150)
	p, _ := mkPatterns(t, rows...)
	m, err := model.NewF84(seq.EmpiricalFreqsPatterns(p), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	base, err := tree.RandomTree(taxaNames(9), rng, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	const taxon = 8
	if err := base.RemoveLeaf(taxon); err != nil {
		t.Fatal(err)
	}
	if _, err := e.OptimizeBranches(base, OptOptions{Passes: 2}); err != nil {
		t.Fatal(err)
	}
	scorer, err := e.NewInsertScorer(base, taxon)
	if err != nil {
		t.Fatal(err)
	}
	for i, ed := range base.InsertionEdges() {
		score, err := scorer.Score(ed, 2)
		if err != nil {
			t.Fatalf("edge %d: %v", i, err)
		}
		cand := base.Clone()
		ca, cb := cand.Nodes[ed.A.ID], cand.Nodes[ed.B.ID]
		leaf, err := cand.InsertLeaf(taxon, tree.Edge{A: ca, B: cb})
		if err != nil {
			t.Fatalf("edge %d: %v", i, err)
		}
		mid := leaf.Nbr[0]
		tree.SetLen(ca, mid, score.LenA)
		tree.SetLen(mid, cb, score.LenB)
		tree.SetLen(mid, leaf, score.LenLeaf)
		fresh, err := New(m, p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.LogLikelihood(cand)
		if err != nil {
			t.Fatalf("edge %d: %v", i, err)
		}
		if diff := math.Abs(score.LnL - want); diff > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("edge %d: scorer %.12f vs explicit tree %.12f (diff %g)", i, score.LnL, want, diff)
		}
	}
}
