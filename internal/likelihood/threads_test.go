package likelihood

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/seq"
	"repro/internal/tree"
)

// threadFixture builds a data set large enough to split into several
// shards (npat >> minShardPatterns) with multiple rate classes, so the
// threaded kernels cross classBlock boundaries.
func threadFixture(t testing.TB, seed int64, taxa, sites int) (model.Model, *seq.Patterns, *tree.Tree) {
	rng := rand.New(rand.NewSource(seed))
	rows := randomRows(rng, taxa, sites)
	a := seq.NewAlignment(len(rows))
	for i, r := range rows {
		if err := a.Add(taxaNames(taxa)[i], r); err != nil {
			t.Fatal(err)
		}
	}
	p, err := seq.Compress(a, seq.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	classes := []float64{0.25, 1.0, 3.0, 0.6}
	for i := range p.Rates {
		p.Rates[i] = classes[i%len(classes)]
	}
	m, err := model.NewF84(seq.EmpiricalFreqsPatterns(p), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tree.RandomTree(taxaNames(taxa), rng, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	return m, p, tr
}

// TestThreadedBitIdentical is the tentpole's determinism contract: the
// shard layout is a pure function of the data and reductions accumulate
// in shard index order, so every thread count must produce bit-identical
// log-likelihoods, branch lengths, and trees.
func TestThreadedBitIdentical(t *testing.T) {
	m, p, tr := threadFixture(t, 11, 20, 600)

	ref, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.shards) < 2 {
		t.Fatalf("fixture too small: %d shards, want >= 2", len(ref.shards))
	}
	refTree := tr.Clone()
	refLnL, err := ref.LogLikelihood(refTree)
	if err != nil {
		t.Fatal(err)
	}
	refOpt, err := ref.OptimizeBranches(refTree, OptOptions{Passes: 4})
	if err != nil {
		t.Fatal(err)
	}
	refNewick := refTree.Newick()

	for _, n := range []int{2, 4, 7} {
		eng, err := New(m, p)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetThreads(n)
		if got := eng.Threads(); got != n {
			t.Fatalf("Threads() = %d, want %d", got, n)
		}
		cand := tr.Clone()
		lnL, err := eng.LogLikelihood(cand)
		if err != nil {
			t.Fatalf("threads=%d: %v", n, err)
		}
		if math.Float64bits(lnL) != math.Float64bits(refLnL) {
			t.Errorf("threads=%d: lnL %.17g not bit-identical to serial %.17g", n, lnL, refLnL)
		}
		opt, err := eng.OptimizeBranches(cand, OptOptions{Passes: 4})
		if err != nil {
			t.Fatalf("threads=%d: optimize: %v", n, err)
		}
		if math.Float64bits(opt) != math.Float64bits(refOpt) {
			t.Errorf("threads=%d: optimized lnL %.17g != serial %.17g", n, opt, refOpt)
		}
		if nwk := cand.Newick(); nwk != refNewick {
			t.Errorf("threads=%d: optimized tree differs from serial:\n got %s\nwant %s", n, nwk, refNewick)
		}
		if eng.Stats().ShardDispatches == 0 {
			t.Errorf("threads=%d: no threaded shard dispatches recorded", n)
		}
		eng.Close()
	}
}

// TestThreadedInsertScorerBitIdentical covers the rapid insertion path
// (the add-round kernel of §2.1) across thread counts.
func TestThreadedInsertScorerBitIdentical(t *testing.T) {
	m, p, tr := threadFixture(t, 5, 12, 500)
	const taxon = 11
	if err := tr.RemoveLeaf(taxon); err != nil {
		t.Fatal(err)
	}

	score := func(threads int) []float64 {
		eng, err := New(m, p)
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		if threads > 1 {
			eng.SetThreads(threads)
		}
		base := tr.Clone()
		if _, err := eng.OptimizeBranches(base, OptOptions{Passes: 2}); err != nil {
			t.Fatal(err)
		}
		sc, err := eng.NewInsertScorer(base, taxon)
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for _, ed := range base.InsertionEdges() {
			s, err := sc.Score(ed, 2)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, s.LnL, s.LenA, s.LenB, s.LenLeaf)
		}
		return out
	}

	ref := score(1)
	for _, n := range []int{2, 4, 7} {
		got := score(n)
		for i := range ref {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("threads=%d: score value %d = %.17g, serial %.17g", n, i, got[i], ref[i])
			}
		}
	}
}

// TestZeroAllocSteadyState asserts the arena work: once caches are warm,
// repeated likelihood evaluations and single-edge Newton optimization
// must not allocate — serial or threaded, in either CLV precision (the
// cache slabs and insertion arena size off the padded layout, so both
// storage formats must stay allocation-free).
func TestZeroAllocSteadyState(t *testing.T) {
	m, p, tr := threadFixture(t, 3, 12, 400)

	for _, prec := range []Precision{Float64, Float32} {
		for _, threads := range []int{1, 4} {
			eng, err := NewWithPrecision(m, p, prec)
			if err != nil {
				t.Fatal(err)
			}
			if threads > 1 {
				eng.SetThreads(threads)
			}
			if _, err := eng.LogLikelihood(tr); err != nil {
				t.Fatal(err)
			}
			ed, ok := tr.FirstEdge()
			if !ok {
				t.Fatal("no edge")
			}
			if _, err := eng.OptimizeEdge(tr, ed); err != nil {
				t.Fatal(err)
			}

			if n := testing.AllocsPerRun(50, func() {
				if _, err := eng.LogLikelihood(tr); err != nil {
					t.Fatal(err)
				}
			}); n > 0 {
				t.Errorf("prec=%v threads=%d: warm LogLikelihood allocates %.1f/op, want 0", prec, threads, n)
			}
			if n := testing.AllocsPerRun(50, func() {
				if _, err := eng.OptimizeEdge(tr, ed); err != nil {
					t.Fatal(err)
				}
			}); n > 0 {
				t.Errorf("prec=%v threads=%d: warm OptimizeEdge allocates %.1f/op, want 0", prec, threads, n)
			}
			eng.Close()
		}
	}
}

// TestSetThreadsIdempotent exercises pool lifecycle edges: repeated
// SetThreads calls, shrinking back to serial, and Close.
func TestSetThreadsIdempotent(t *testing.T) {
	m, p, tr := threadFixture(t, 9, 8, 300)
	eng, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := eng.LogLikelihood(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{4, 4, 2, 1, 3, 0, -5} {
		eng.SetThreads(n)
		got, err := eng.LogLikelihood(tr)
		if err != nil {
			t.Fatalf("SetThreads(%d): %v", n, err)
		}
		if math.Float64bits(got) != math.Float64bits(ref) {
			t.Fatalf("SetThreads(%d): lnL %.17g != %.17g", n, got, ref)
		}
		if n < 1 && eng.Threads() != 1 {
			t.Fatalf("SetThreads(%d) left Threads() = %d, want 1", n, eng.Threads())
		}
	}
	eng.Close()
	eng.Close() // double close must be safe
}
