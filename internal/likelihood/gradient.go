package likelihood

import (
	"fmt"
	"math"

	"repro/internal/tree"
)

// Linear-time all-branches gradient and simultaneous branch smoothing
// (Ji et al., "Gradients do grow on trees", arXiv:1905.12146).
//
// The gradient of the total log-likelihood with respect to every branch
// length is available in O(N) kernel work: the post-order pass fills
// each node's down-partial (the subtree CLV, already what the directed
// cache stores), the pre-order pass fills each up-partial — which in
// the per-directed-edge cache is just partial(parent, child), the rest
// of the tree seen across the edge — and then every edge's ∂lnL/∂z and
// ∂²lnL/∂z² fall out of one sharded reduction over its two directed
// partials. Both passes run through the same memoized partial()
// recursion the evaluator uses, so they reuse the fused combine2/AVX2
// machinery and cost exactly one fill per directed edge per round.
//
// Simultaneous smoothing applies one damped Newton step to every
// branch at once (a Jacobi iteration, against the sweep's Gauss-Seidel):
// each edge's step is taken against the frozen round-start partials —
// well-defined, because an edge's own partials do not depend on its own
// length — and all updates land together. No branch changes mid-round,
// so the CLV cache never churns inside a round and
// the derivative kernel needs no per-pattern log or scale counts (they
// cancel in the dl/l ratios). A backtracking line search on each
// round's update vector absorbs the overshoot the per-edge solves
// cannot see (neighboring edges compensating for the same distance),
// and a round that cannot improve the likelihood even at a tiny step
// is reverted and handed to the sequential sweep — so gradient mode is
// never worse than the sweep's optimum.

// SmoothMode selects the branch-smoothing algorithm OptimizeBranches
// runs (OptOptions.Mode).
type SmoothMode int

const (
	// SmoothSweep is the sequential per-edge Newton sweep (fastDNAml's
	// smoothing; the default).
	SmoothSweep SmoothMode = iota
	// SmoothGradient is simultaneous smoothing on the linear-time
	// all-branches gradient, with a safeguarded fallback to the sweep.
	// Engines without the GradientSmoother capability — and restricted
	// (Around/Centers) optimizations, whose regions are too small for a
	// global pass to pay — run the sweep regardless.
	SmoothGradient
)

// String names the mode as ParseSmoothMode accepts it.
func (m SmoothMode) String() string {
	switch m {
	case SmoothSweep:
		return "sweep"
	case SmoothGradient:
		return "gradient"
	}
	return fmt.Sprintf("smoothmode(%d)", int(m))
}

// ParseSmoothMode parses a -smooth-mode flag value: "sweep" (or "") and
// "gradient" (or "grad").
func ParseSmoothMode(s string) (SmoothMode, error) {
	switch s {
	case "", "sweep":
		return SmoothSweep, nil
	case "gradient", "grad":
		return SmoothGradient, nil
	}
	return SmoothSweep, fmt.Errorf("likelihood: unknown smooth mode %q (want sweep or gradient)", s)
}

// BranchGrad is one branch's entry in the all-branches gradient: the
// edge (A on the anchor side), the length the derivatives were
// evaluated at, and the first/second derivatives of the total
// log-likelihood with respect to that length.
type BranchGrad struct {
	A, B      *tree.Node
	Z, D1, D2 float64
}

// BranchGradients computes the gradient (and diagonal Hessian) of the
// tree's log-likelihood with respect to every branch length at the
// current lengths, appending one entry per edge to dst (pre-order from
// a deterministic anchor, children in node-ID order) and returning the
// extended slice plus the tree's log-likelihood. The tree is not
// modified. Total kernel work is linear in the number of branches:
// one CLV fill per directed edge not already cached, one gradient
// reduction per edge, and a single log-likelihood reduction.
func (e *CachedEngine) BranchGradients(t *tree.Tree, dst []BranchGrad) ([]BranchGrad, float64, error) {
	defer e.endEval(e.beginEval())
	if err := e.checkTree(t); err != nil {
		return dst, 0, err
	}
	e.ensureBuffers(t.MaxID())
	return e.branchGradients(t, dst)
}

// branchGradients is the uninstrumented core of BranchGradients, shared
// with the smoothing loop (which owns the eval-time accounting).
func (e *CachedEngine) branchGradients(t *tree.Tree, dst []BranchGrad) ([]BranchGrad, float64, error) {
	dst = gradCollect(dst[:0], smoothAnchor(t), nil)
	if len(dst) == 0 {
		return dst, 0, fmt.Errorf("likelihood: tree has no edges")
	}
	// Pre-order edge walk: partial(A, B) is the up-partial (rest of the
	// tree seen from B), filled top-down so deeper edges reuse the
	// shallower fills; partial(B, A) is the cached down-partial.
	for i := range dst {
		g := &dst[i]
		a, _ := e.partial(g.A, g.B)
		b, _ := e.partial(g.B, g.A)
		g.D1, g.D2 = e.edgeGradient(a, b, g.Z)
	}
	// Round log-likelihood at the first edge: its partials are already
	// cached, so this costs one reduction kernel, no fills.
	a, _ := e.partial(dst[0].A, dst[0].B)
	b, _ := e.partial(dst[0].B, dst[0].A)
	return dst, e.edgeLogLikelihood(a, b, dst[0].Z), nil
}

// gradCollect appends one BranchGrad per edge below u (excluding the
// edge to p) in pre-order, children in node-ID order — the same
// edit-history-independent order smoothPass visits. Selection sort over
// the (≤3) neighbors keeps the walk allocation-free.
func gradCollect(dst []BranchGrad, u, p *tree.Node) []BranchGrad {
	lastID := -1
	for range u.Nbr {
		ci := -1
		for i, nb := range u.Nbr {
			if nb == p || nb.ID <= lastID {
				continue
			}
			if ci < 0 || nb.ID < u.Nbr[ci].ID {
				ci = i
			}
		}
		if ci < 0 {
			break
		}
		c := u.Nbr[ci]
		lastID = c.ID
		dst = append(dst, BranchGrad{A: u, B: c, Z: u.Len[ci]})
		dst = gradCollect(dst, c, u)
	}
	return dst
}

// smoothAnchor picks the deterministic traversal root OptimizeBranches
// and BranchGradients share: any node, preferring an inner one.
func smoothAnchor(t *tree.Tree) *tree.Node {
	anchor := t.AnyNode()
	if anchor.Leaf() {
		// Fall back to its neighbor when the tree is a single cherry.
		if anchor.Degree() > 0 && !anchor.Nbr[0].Leaf() {
			anchor = anchor.Nbr[0]
		}
	}
	return anchor
}

// edgeGradient computes d/dz and d²/dz² of the edge log-likelihood at z
// from the two directed partials — edgeDerivatives without the
// log-likelihood value, so the kernel performs no per-pattern log and
// loads no scale counts.
func (e *CachedEngine) edgeGradient(a, b clvRef, z float64) (float64, float64) {
	e.fillProbsDeriv(clampLen(z))
	e.ops += uint64(e.npat) * 44
	e.stats.NewtonIters++
	k := &e.kern
	k.op = kDerivGrad
	k.a, k.b = a, b
	e.runShards()
	// Ordered reduction over the per-shard partials.
	d1, d2 := 0.0, 0.0
	for s := range e.shards {
		d1 += e.shD1[s]
		d2 += e.shD2[s]
	}
	return d1, d2
}

// gradRoundFactor scales the pass budget for gradient rounds: a Jacobi
// round is several times cheaper than a sweep pass but may need more of
// them to reach the same tolerance, so the budget keeps total work
// bounded by the sweep's without starving convergence.
const gradRoundFactor = 4

// gradMaxBacktrack bounds the step halvings of the round line search.
// Each halving costs one tree evaluation; a round that cannot improve
// the likelihood at 1/16 of the Newton step is close enough to a
// coupled saddle that the sequential sweep should finish the job.
const gradMaxBacktrack = 4

// optimizeBranchesGradient is OptimizeBranches in SmoothGradient mode:
// rounds of (all-branches gradient → one damped Newton step per edge →
// apply the whole update vector at once), Tol-gated on the tree
// likelihood after each round. A single seeded step per round keeps
// the round's kernel cost at exactly one derivative reduction per edge
// (iterating the 1-D solves to convergence would triple it for no
// fewer rounds — near the optimum one Newton step is the exact solve,
// and far from it the exact solve overshoots anyway because it cannot
// see neighboring edges moving). What the simultaneous (Jacobi) step
// ignores is that coupling, so it can overshoot collectively. The
// safeguard is a backtracking line search on the update direction:
// halve the step toward the round-start lengths until the likelihood
// improves, and only if gradMaxBacktrack halvings all fail, revert the
// round and fall back to the sequential sweep. The post-round
// evaluation is not overhead — its CLV fills are exactly the
// down-partials the next round's gradient pass needs.
func (e *CachedEngine) optimizeBranchesGradient(t *tree.Tree, opt OptOptions, anchor *tree.Node) (float64, error) {
	lnL, err := e.LogLikelihood(t)
	if err != nil {
		return 0, err
	}
	rounds := opt.Passes * gradRoundFactor
	for round := 0; round < rounds; round++ {
		e.gradBuf, _, err = e.branchGradients(t, e.gradBuf)
		if err != nil {
			return 0, err
		}
		prev := lnL
		if cap(e.gradOld) < len(e.gradBuf) {
			e.gradOld = make([]float64, len(e.gradBuf))
		}
		e.gradOld = e.gradOld[:len(e.gradBuf)]
		// One damped Newton step per edge from the derivatives the
		// gradient pass already computed — no extra kernel work.
		for i := range e.gradBuf {
			g := &e.gradBuf[i]
			e.gradOld[i] = g.Z
			z, _ := newtonStep(clampLen(g.Z), g.D1, g.D2)
			g.Z = z
		}
		step := 1.0
		for halves := 0; ; halves++ {
			for i := range e.gradBuf {
				g := &e.gradBuf[i]
				tree.SetLen(g.A, g.B, e.gradOld[i]+step*(g.Z-e.gradOld[i]))
			}
			lnL, err = e.LogLikelihood(t)
			if err != nil {
				return 0, err
			}
			if lnL >= prev {
				break
			}
			if halves == gradMaxBacktrack {
				if prev-lnL < opt.Tol+e.evalNoise(prev) {
					// No improving step exists, but the loss is within
					// the requested tolerance plus the precision's
					// evaluation-noise floor (which float32 reaches
					// well before Tol: two evaluations of the same
					// optimum legitimately differ by the Float32LnL
					// contract bound). Restore the better round-start
					// state and report convergence.
					for i := range e.gradBuf {
						tree.SetLen(e.gradBuf[i].A, e.gradBuf[i].B, e.gradOld[i])
					}
					return prev, nil
				}
				return e.gradFallback(t, opt, anchor)
			}
			step /= 2
		}
		e.stats.GradPasses++
		if lnL-prev < opt.Tol {
			return lnL, nil
		}
	}
	return lnL, nil
}

// evalNoise is the log-likelihood difference magnitude that rounding
// alone can produce between two evaluations at the engine's CLV
// precision — the resolution limit any improvement test must respect.
// Float64 evaluations resolve far below every Tol in use; float32's
// limit is the documented agreement contract (Float32LnLRelTol).
func (e *CachedEngine) evalNoise(lnL float64) float64 {
	if e.prec == Float32 {
		return math.Abs(lnL) * Float32LnLRelTol
	}
	return 0
}

// gradFallback reverts the failed simultaneous update (restoring the
// round-start lengths) and finishes the optimization with the
// sequential sweep.
func (e *CachedEngine) gradFallback(t *tree.Tree, opt OptOptions, anchor *tree.Node) (float64, error) {
	for i := range e.gradBuf {
		tree.SetLen(e.gradBuf[i].A, e.gradBuf[i].B, e.gradOld[i])
	}
	e.stats.GradFallbacks++
	return e.optimizeBranchesSweep(t, opt, anchor, nil)
}
