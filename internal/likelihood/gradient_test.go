package likelihood

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/seq"
	"repro/internal/tree"
)

// TestParseSmoothMode covers the flag-value round trip.
func TestParseSmoothMode(t *testing.T) {
	cases := []struct {
		in   string
		want SmoothMode
		ok   bool
	}{
		{"", SmoothSweep, true},
		{"sweep", SmoothSweep, true},
		{"gradient", SmoothGradient, true},
		{"grad", SmoothGradient, true},
		{"newton", SmoothSweep, false},
	}
	for _, c := range cases {
		got, err := ParseSmoothMode(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseSmoothMode(%q) = %v, %v; want %v, ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	if SmoothSweep.String() != "sweep" || SmoothGradient.String() != "gradient" {
		t.Errorf("String(): %q, %q", SmoothSweep, SmoothGradient)
	}
}

// TestBranchGradientsMatchDerivKernel pins the log-free gradient kernel
// to the full derivative kernel: for every edge, BranchGradients must
// return d1/d2 bit-identical to edgeDerivatives at the same length —
// the scale counts and the per-pattern log it drops only ever fed the
// likelihood value, never the derivative terms.
func TestBranchGradientsMatchDerivKernel(t *testing.T) {
	for _, prec := range []Precision{Float64, Float32} {
		m, p, tr := threadFixture(t, 31, 14, 500)
		eng, err := NewWithPrecision(m, p, prec)
		if err != nil {
			t.Fatal(err)
		}
		grads, lnL, err := eng.BranchGradients(tr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(grads) != len(tr.Edges()) {
			t.Fatalf("prec=%v: %d gradient entries, tree has %d edges", prec, len(grads), len(tr.Edges()))
		}
		want, err := eng.LogLikelihood(tr)
		if err != nil {
			t.Fatal(err)
		}
		// BranchGradients reduces at a (possibly) different edge than
		// LogLikelihood, so agreement is to rounding, not bits.
		rel, abs := 1e-9, 1e-7
		if prec == Float32 {
			rel, abs = Float32LnLRelTol, Float32LnLAbsTol
		}
		if !withinTol(lnL, want, rel, abs) {
			t.Errorf("prec=%v: BranchGradients lnL %.17g != LogLikelihood %.17g", prec, lnL, want)
		}
		for _, g := range grads {
			a, _ := eng.partial(g.A, g.B)
			b, _ := eng.partial(g.B, g.A)
			d1, d2, _ := eng.edgeDerivatives(a, b, g.Z)
			if math.Float64bits(g.D1) != math.Float64bits(d1) ||
				math.Float64bits(g.D2) != math.Float64bits(d2) {
				t.Errorf("prec=%v edge %d-%d: gradient (%.17g, %.17g) != deriv kernel (%.17g, %.17g)",
					prec, g.A.ID, g.B.ID, g.D1, g.D2, d1, d2)
			}
		}
	}
}

// TestGradientSmoothMatchesSweep is the optimizer property test:
// simultaneous gradient smoothing must reach the same optimum as the
// sequential Newton sweep — log-likelihood within the difftest Opt
// tolerance, every branch length within the Len tolerance — including
// on the 48-taxon caterpillar whose deep spine stresses rescaling.
func TestGradientSmoothMatchesSweep(t *testing.T) {
	// Difftest float64 engine-agreement tolerances (difftest.DefaultTolerance).
	const (
		optRel, optAbs = 1e-7, 1e-4
		lenRel, lenAbs = 5e-4, 1e-5
	)
	run := func(name string, mk func(testing.TB) fixtureCase) {
		t.Run(name, func(t *testing.T) {
			fc := mk(t)
			// Tight tolerance so both optimizers run to a genuine
			// optimum: near it the surface's curvature turns a lnL gap
			// of Tol into a length gap ~sqrt(2·Tol/|d2|), which must
			// land inside the length tolerance below.
			opt := OptOptions{Passes: 64, Tol: 1e-7}

			sweepEng, err := New(fc.m, fc.p)
			if err != nil {
				t.Fatal(err)
			}
			sweepTree := fc.tr.Clone()
			sweepLnL, err := sweepEng.OptimizeBranches(sweepTree, opt)
			if err != nil {
				t.Fatal(err)
			}

			gradEng, err := New(fc.m, fc.p)
			if err != nil {
				t.Fatal(err)
			}
			gradTree := fc.tr.Clone()
			opt.Mode = SmoothGradient
			gradLnL, err := gradEng.OptimizeBranches(gradTree, opt)
			if err != nil {
				t.Fatal(err)
			}

			if !withinTol(gradLnL, sweepLnL, optRel, optAbs) {
				t.Errorf("optimized lnL: gradient %.12g vs sweep %.12g (diff %.3g)",
					gradLnL, sweepLnL, math.Abs(gradLnL-sweepLnL))
			}
			se, ge := sweepTree.Edges(), gradTree.Edges()
			if len(se) != len(ge) {
				t.Fatalf("edge count %d vs %d", len(se), len(ge))
			}
			for i := range se {
				if se[i].A.ID != ge[i].A.ID || se[i].B.ID != ge[i].B.ID {
					t.Fatalf("edge %d identity diverged", i)
				}
				sl, gl := se[i].Length(), ge[i].Length()
				if !withinTol(gl, sl, lenRel, lenAbs) {
					t.Errorf("edge %d-%d length: gradient %.9g vs sweep %.9g",
						se[i].A.ID, se[i].B.ID, gl, sl)
				}
			}
			st := gradEng.Stats()
			if st.GradPasses == 0 {
				t.Error("gradient mode recorded no gradient passes")
			}
			t.Logf("sweep lnL %.6f (%d passes), gradient lnL %.6f (%d rounds, %d fallbacks)",
				sweepLnL, sweepEng.Stats().SmoothPasses, gradLnL, st.GradPasses, st.GradFallbacks)
		})
	}

	// The caterpillar fixtures are well-specified: randomRows correlates
	// each taxon's row with the previous one, so the chain topology is
	// the true tree and the optimum has interior branch lengths. (A
	// random topology over chain-correlated data drives edges to the
	// length clamp, where the surface is flat and any two optimizers
	// legitimately part ways.)
	run("caterpillar-12taxa", func(tb testing.TB) fixtureCase {
		m, p, tr := caterpillarFixture(tb, 5, 12, 400)
		return fixtureCase{m, p, tr}
	})
	run("caterpillar-24taxa", func(tb testing.TB) fixtureCase {
		m, p, tr := caterpillarFixture(tb, 9, 24, 800)
		return fixtureCase{m, p, tr}
	})
	run("random-12taxa", func(tb testing.TB) fixtureCase {
		m, p, tr := threadFixture(tb, 7, 12, 300)
		return fixtureCase{m, p, tr}
	})
	run("caterpillar-48taxa", func(tb testing.TB) fixtureCase {
		m, p, tr := caterpillarFixture(tb, 41, 48, 300)
		return fixtureCase{m, p, tr}
	})
}

// TestGradientThreadedBitIdentical extends the determinism contract to
// the gradient path: the all-branches gradient, the round likelihood,
// and the final smoothed tree must be bit-identical at every thread
// count.
func TestGradientThreadedBitIdentical(t *testing.T) {
	m, p, tr := threadFixture(t, 11, 20, 600)

	ref, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	refGrads, refLnL, err := ref.BranchGradients(tr.Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	refTree := tr.Clone()
	refOpt, err := ref.OptimizeBranches(refTree, OptOptions{Passes: 8, Mode: SmoothGradient})
	if err != nil {
		t.Fatal(err)
	}
	refNewick := refTree.Newick()
	ref.Close()

	for _, n := range []int{2, 4, 7} {
		eng, err := New(m, p)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetThreads(n)
		grads, lnL, err := eng.BranchGradients(tr.Clone(), nil)
		if err != nil {
			t.Fatalf("threads=%d: %v", n, err)
		}
		if math.Float64bits(lnL) != math.Float64bits(refLnL) {
			t.Errorf("threads=%d: gradient lnL %.17g != serial %.17g", n, lnL, refLnL)
		}
		if len(grads) != len(refGrads) {
			t.Fatalf("threads=%d: %d gradients, serial %d", n, len(grads), len(refGrads))
		}
		for i := range grads {
			if math.Float64bits(grads[i].D1) != math.Float64bits(refGrads[i].D1) ||
				math.Float64bits(grads[i].D2) != math.Float64bits(refGrads[i].D2) {
				t.Errorf("threads=%d: gradient %d not bit-identical to serial", n, i)
			}
		}
		cand := tr.Clone()
		opt, err := eng.OptimizeBranches(cand, OptOptions{Passes: 8, Mode: SmoothGradient})
		if err != nil {
			t.Fatalf("threads=%d: optimize: %v", n, err)
		}
		if math.Float64bits(opt) != math.Float64bits(refOpt) {
			t.Errorf("threads=%d: optimized lnL %.17g != serial %.17g", n, opt, refOpt)
		}
		if nwk := cand.Newick(); nwk != refNewick {
			t.Errorf("threads=%d: optimized tree differs from serial:\n got %s\nwant %s", n, nwk, refNewick)
		}
		eng.Close()
	}
}

// TestGradientRestrictedUsesSweep pins the dispatch rule: Around/Centers
// optimizations ignore SmoothGradient and produce exactly the sweep's
// result, with no gradient rounds recorded.
func TestGradientRestrictedUsesSweep(t *testing.T) {
	m, p, tr := threadFixture(t, 13, 12, 400)
	center := tr.AnyNode()

	sweepEng, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	sweepTree := tr.Clone()
	want, err := sweepEng.OptimizeBranches(sweepTree, OptOptions{Passes: 3, Around: centerIn(sweepTree, center)})
	if err != nil {
		t.Fatal(err)
	}

	gradEng, err := New(m, p)
	if err != nil {
		t.Fatal(err)
	}
	gradTree := tr.Clone()
	got, err := gradEng.OptimizeBranches(gradTree, OptOptions{Passes: 3, Around: centerIn(gradTree, center), Mode: SmoothGradient})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("restricted gradient-mode lnL %.17g != sweep %.17g", got, want)
	}
	if gradTree.Newick() != sweepTree.Newick() {
		t.Error("restricted gradient-mode tree differs from sweep")
	}
	if st := gradEng.Stats(); st.GradPasses != 0 || st.GradFallbacks != 0 {
		t.Errorf("restricted optimization ran gradient rounds: %+v", st)
	}
}

// centerIn maps a node of one clone to the same node in another (clones
// preserve IDs).
func centerIn(t *tree.Tree, n *tree.Node) *tree.Node { return t.Nodes[n.ID] }

// TestGradientZeroAllocSteadyState asserts the gradient smoothing path
// holds the arena contract the evaluation path already has: once warm,
// perturb-and-resmooth rounds allocate nothing, in either precision,
// serial or threaded. (The sequential sweep's per-pass bookkeeping
// allocates; the gradient path must not.)
func TestGradientZeroAllocSteadyState(t *testing.T) {
	m, p, tr := caterpillarFixture(t, 3, 12, 400)
	edges := tr.Edges()
	lens := make([]float64, len(edges))
	for i, ed := range edges {
		lens[i] = ed.Length()
	}
	perturb := func() {
		for i, ed := range edges {
			f := 1.5
			if i%2 == 1 {
				f = 0.7
			}
			tree.SetLen(ed.A, ed.B, lens[i]*f)
		}
	}

	for _, prec := range []Precision{Float64, Float32} {
		for _, threads := range []int{1, 4} {
			eng, err := NewWithPrecision(m, p, prec)
			if err != nil {
				t.Fatal(err)
			}
			if threads > 1 {
				eng.SetThreads(threads)
			}
			opt := OptOptions{Passes: 16, Mode: SmoothGradient}
			perturb()
			if _, err := eng.OptimizeBranches(tr, opt); err != nil {
				t.Fatal(err)
			}
			if n := testing.AllocsPerRun(20, func() {
				perturb()
				if _, err := eng.OptimizeBranches(tr, opt); err != nil {
					t.Fatal(err)
				}
			}); n > 0 {
				t.Errorf("prec=%v threads=%d: warm gradient smoothing allocates %.1f/op, want 0", prec, threads, n)
			}
			if st := eng.Stats(); st.GradFallbacks != 0 {
				t.Errorf("prec=%v threads=%d: %d gradient fallbacks during steady-state rounds", prec, threads, st.GradFallbacks)
			}
			eng.Close()
		}
	}
}

// fixtureCase bundles one dataset + starting tree for table-driven runs.
type fixtureCase struct {
	m  model.Model
	p  *seq.Patterns
	tr *tree.Tree
}
