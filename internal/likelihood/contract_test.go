package likelihood

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/seq"
	"repro/internal/tree"
)

// newContractEngine builds a registered backend by name over the given
// rows, failing the test on construction errors.
func newContractEngine(t *testing.T, name string, rows ...string) (Engine, *seq.Patterns) {
	t.Helper()
	p, _ := mkPatterns(t, rows...)
	m, err := model.NewF84(seq.EmpiricalFreqsPatterns(p), 2.0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(name, m, p, EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { CloseEngine(eng) })
	return eng, p
}

// TestEngineContractDegenerate runs every registered backend through the
// degenerate inputs the Engine interface documents as legal: a 2-taxon
// tree (the smallest evaluable topology), an alignment that compresses to
// a single pattern, and a zero-length branch. Each backend must evaluate,
// report per-site vectors of the right shape, and optimize without error;
// optimized lengths must respect the [MinBranchLength, MaxBranchLength]
// bounds.
func TestEngineContractDegenerate(t *testing.T) {
	for _, name := range Engines() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Run("two-taxon", func(t *testing.T) {
				eng, p := newContractEngine(t, name,
					"ACGTACGTAC",
					"ACGTTCGAAC",
				)
				tr := tree.New(taxaNames(2))
				if _, err := tr.GraftPair(0, 1, 0.05); err != nil {
					t.Fatal(err)
				}
				lnL, err := eng.LogLikelihood(tr)
				if err != nil {
					t.Fatalf("LogLikelihood: %v", err)
				}
				if !(lnL < 0) || math.IsInf(lnL, 0) || math.IsNaN(lnL) {
					t.Fatalf("lnL = %g, want finite negative", lnL)
				}
				sites, err := eng.SiteLogLikelihoods(tr)
				if err != nil {
					t.Fatalf("SiteLogLikelihoods: %v", err)
				}
				if len(sites) != p.NumPatterns() {
					t.Fatalf("%d site lnLs, want %d", len(sites), p.NumPatterns())
				}
				ed := tr.Edges()[0]
				optLnL, err := eng.OptimizeEdge(tr, ed)
				if err != nil {
					t.Fatalf("OptimizeEdge: %v", err)
				}
				if optLnL < lnL-1e-9 {
					t.Fatalf("OptimizeEdge worsened lnL: %g -> %g", lnL, optLnL)
				}
				if z := ed.Length(); z < MinBranchLength || z > MaxBranchLength {
					t.Fatalf("optimized length %g outside [%g, %g]", z, MinBranchLength, MaxBranchLength)
				}
			})

			t.Run("single-pattern", func(t *testing.T) {
				// Every column identical: compresses to one pattern.
				eng, p := newContractEngine(t, name,
					"AAAA",
					"CCCC",
					"GGGG",
					"TTTT",
				)
				if p.NumPatterns() != 1 {
					t.Fatalf("%d patterns, want 1", p.NumPatterns())
				}
				rng := rand.New(rand.NewSource(7))
				tr, err := tree.RandomTree(taxaNames(4), rng, 0.1)
				if err != nil {
					t.Fatal(err)
				}
				lnL, err := eng.LogLikelihood(tr)
				if err != nil {
					t.Fatalf("LogLikelihood: %v", err)
				}
				sites, err := eng.SiteLogLikelihoods(tr)
				if err != nil {
					t.Fatalf("SiteLogLikelihoods: %v", err)
				}
				if len(sites) != 1 {
					t.Fatalf("%d site lnLs, want 1", len(sites))
				}
				if !withinTol(sites[0]*p.Weights[0], lnL, 1e-12, 1e-10) {
					t.Fatalf("weighted site lnL %g != total %g", sites[0]*p.Weights[0], lnL)
				}
				if _, err := eng.OptimizeBranches(tr, OptOptions{Passes: 2}); err != nil {
					t.Fatalf("OptimizeBranches: %v", err)
				}
			})

			t.Run("zero-length-branch", func(t *testing.T) {
				eng, _ := newContractEngine(t, name,
					"ACGTACGTACGTACGT",
					"ACGTTCGAACGTACGA",
					"ACCTACGTAGGTACGT",
					"TCGTACGTACGTCCGT",
				)
				rng := rand.New(rand.NewSource(11))
				tr, err := tree.RandomTree(taxaNames(4), rng, 0.1)
				if err != nil {
					t.Fatal(err)
				}
				ed := tr.Edges()[0]
				tree.SetLen(ed.A, ed.B, 0)
				lnL, err := eng.LogLikelihood(tr)
				if err != nil {
					t.Fatalf("LogLikelihood: %v", err)
				}
				if math.IsInf(lnL, 0) || math.IsNaN(lnL) {
					t.Fatalf("lnL = %g with zero-length branch", lnL)
				}
				if _, err := eng.OptimizeEdge(tr, ed); err != nil {
					t.Fatalf("OptimizeEdge: %v", err)
				}
				if z := ed.Length(); z < MinBranchLength {
					t.Fatalf("optimized length %g below MinBranchLength", z)
				}
			})
		})
	}
}

// TestEngineContractErrors asserts that every registered backend reports
// the documented sentinel errors (errors.Is-matchable), so the dispatch
// layer's retryable/fatal classification works regardless of backend.
func TestEngineContractErrors(t *testing.T) {
	rows := []string{
		"ACGTACGTAC",
		"ACGTTCGAAC",
		"ACCTACGTAG",
		"TCGTACGTAC",
	}
	for _, name := range Engines() {
		name := name
		t.Run(name, func(t *testing.T) {
			eng, _ := newContractEngine(t, name, rows...)
			rng := rand.New(rand.NewSource(5))
			tr, err := tree.RandomTree(taxaNames(4), rng, 0.1)
			if err != nil {
				t.Fatal(err)
			}

			// A tree over the wrong taxa set. (Partial trees over the right
			// set are legal — stepwise addition evaluates them.)
			wrong := tree.New(taxaNames(5))
			if _, err := wrong.GraftPair(0, 1, 0.05); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.LogLikelihood(wrong); !errors.Is(err, ErrTreeMismatch) {
				t.Errorf("LogLikelihood(wrong taxa set) = %v, want ErrTreeMismatch", err)
			}

			// An edge whose endpoints are not neighbors.
			ed := tr.Edges()[0]
			var far *tree.Node
			for _, n := range tr.Nodes {
				if n != nil && n != ed.A && ed.A.NbrIndex(n) < 0 {
					far = n
					break
				}
			}
			if far == nil {
				t.Fatal("no non-adjacent node found")
			}
			if _, err := eng.OptimizeEdge(tr, tree.Edge{A: ed.A, B: far}); !errors.Is(err, ErrEdgeNotFound) {
				t.Errorf("OptimizeEdge(non-edge) = %v, want ErrEdgeNotFound", err)
			}

			// Insertion of a taxon outside the data set, and of one already
			// in the base tree.
			base := tr.Clone()
			if err := base.RemoveLeaf(3); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.NewInsertScorer(base, 99); !errors.Is(err, ErrTaxonOutsideData) {
				t.Errorf("NewInsertScorer(taxon 99) = %v, want ErrTaxonOutsideData", err)
			}
			if _, err := eng.NewInsertScorer(base, 0); !errors.Is(err, ErrTaxonInTree) {
				t.Errorf("NewInsertScorer(present taxon) = %v, want ErrTaxonInTree", err)
			}

			// The happy path still works after the failures above.
			sc, err := eng.NewInsertScorer(base, 3)
			if err != nil {
				t.Fatalf("NewInsertScorer: %v", err)
			}
			if _, err := sc.Score(base.Edges()[0], 2); err != nil {
				t.Fatalf("Score: %v", err)
			}
		})
	}
}
