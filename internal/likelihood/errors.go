package likelihood

import "errors"

// Typed sentinel errors shared by every Engine implementation. Callers —
// notably the mlsearch foreman, which must decide whether a failed task
// is retryable on another worker or fatal to the whole run — classify
// failures with errors.Is against these values instead of matching
// message strings. Engines wrap them (fmt.Errorf with %w) to add the
// offending IDs, so the sentinel survives the decoration.
var (
	// ErrEdgeNotFound reports an OptimizeEdge or InsertScorer.Score call
	// whose edge endpoints are not neighbors in the tree. The tree was
	// edited (or the edge fabricated) after the edge was captured; the
	// request is deterministic nonsense, not a transient fault.
	ErrEdgeNotFound = errors.New("edge does not exist in tree")

	// ErrTaxonOutsideData reports a taxon index outside the engine's
	// data set (NewInsertScorer with taxon < 0 or >= NumSeqs, or a tree
	// leaf labeled past the alignment).
	ErrTaxonOutsideData = errors.New("taxon outside data set")

	// ErrTaxonInTree reports NewInsertScorer called for a taxon the base
	// tree already contains.
	ErrTaxonInTree = errors.New("taxon already in base tree")

	// ErrTreeMismatch reports a tree the engine cannot evaluate at all:
	// wrong taxon count for the data set, or fewer than two leaves.
	ErrTreeMismatch = errors.New("tree incompatible with data set")
)
