package likelihood

import (
	"fmt"
	"math"
)

// Precision selects the storage format of conditional likelihood
// vectors. Float64 is the default and the bit-identity/determinism
// reference every serial-vs-parallel test pins; Float32 halves CLV
// memory traffic for throughput-bound runs at a documented accuracy
// cost (see the Float32*Tol constants and DESIGN.md §5f).
//
// Precision changes only how CLVs are stored and how pruning combines
// are computed: the log-likelihood, its derivatives, and every Newton
// reduction always accumulate in float64, in the same fixed order, so a
// Float32 engine is still bit-reproducible against itself at any thread
// count — it is just not bit-identical to Float64.
type Precision uint8

const (
	// Float64 stores CLVs as float64 (exact mode, the default).
	Float64 Precision = iota
	// Float32 stores CLVs as float32 with more aggressive rescaling to
	// compensate for the narrower exponent range.
	Float32
)

// String implements fmt.Stringer.
func (p Precision) String() string {
	if p == Float32 {
		return "float32"
	}
	return "float64"
}

// ParsePrecision parses a -precision flag value: "64", "double",
// "float64" or "f64" select Float64; "32", "single", "float32" or "f32"
// select Float32. The empty string is Float64.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "64", "double", "float64", "f64":
		return Float64, nil
	case "32", "single", "float32", "f32":
		return Float32, nil
	}
	return Float64, fmt.Errorf("likelihood: unknown precision %q (want 64 or 32)", s)
}

// Float32 rescaling: float64 CLVs rescale at 1e-100 (paper §2.1), far
// outside float32's exponent range (min normal ~1.2e-38). Float32
// engines therefore rescale whenever a pattern's maximum conditional
// likelihood drops below 1e-15 — early enough that the worst plausible
// single-fill shrink (two near-zero-length child branches, ~1e-16) still
// lands above float32 denormals, so no pattern silently flushes to zero
// between rescale points. The factor is stored in float32 and the
// log-likelihood correction uses the log of the *rounded* factor, so
// scaling is exactly invertible in the accumulated sum.
const (
	scaleThreshold32 = 1e-15
	scaleFactor32    = float32(1e15)
)

var logScale32 = math.Log(float64(scaleFactor32))

// Float32 tolerance contract (DESIGN.md §5f): a Float32 engine agrees
// with the Float64 engine on the same data/tree within these bounds.
// CLV entries carry float32 relative error (~1e-7) through O(depth)
// combines; log-likelihoods are sums of npat pattern terms accumulated
// in float64, so the error grows with alignment size and tree depth —
// the bounds below are calibrated against the randomized property test
// (precision_test.go), which includes a deep-caterpillar underflow
// stress forcing repeated rescaling.
const (
	// Float32LnLRelTol bounds |lnL32-lnL64| relative to |lnL64|.
	Float32LnLRelTol = 2e-5
	// Float32LnLAbsTol is the absolute floor of the lnL bound.
	Float32LnLAbsTol = 5e-3
	// Float32LenRelTol bounds optimized branch-length disagreement
	// relative to the float64 length.
	Float32LenRelTol = 5e-2
	// Float32LenAbsTol is the absolute floor of the branch-length
	// bound (lengths at the MinBranchLength clamp compare equal).
	Float32LenAbsTol = 2e-3
)
