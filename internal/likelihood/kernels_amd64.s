//go:build amd64

#include "textflag.h"

// func combine2AVX2(dst, a, b *float64, tab *[33][4]float64, dsc, asc, bsc *int32, groups, npad int) int
//
// Four patterns per iteration: dst = (Ma·a) ⊙ (Mb·b) with scale-count
// accumulation, bailing out (without storing) on any group where a
// pattern's lane maximum falls in (0, threshold) — or is NaN — so the
// scalar kernel handles every rescaling decision. Coefficients come
// pre-broadcast from tab (row r at byte offset 32*r: rows 0-15 Ma,
// 16-31 Mb, 32 threshold). Dot products are left-associated mul+add,
// no FMA, matching the scalar kernel bit for bit.
//
// Register map: DI=dst R8=a R9=b BX=tab R10=dsc R11=asc R12=bsc
// CX=groups DX=npad*8 R13=npad*16 R14=npad*24 AX=groups done
// Y0-Y3 input lanes, Y4-Y7 t then v, Y8/Y13 scratch, Y9-Y12 u,
// Y14 constant zero.
TEXT ·combine2AVX2(SB), NOSPLIT, $0-80
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), R8
	MOVQ b+16(FP), R9
	MOVQ tab+24(FP), BX
	MOVQ dsc+32(FP), R10
	MOVQ asc+40(FP), R11
	MOVQ bsc+48(FP), R12
	MOVQ groups+56(FP), CX
	MOVQ npad+64(FP), DX
	SHLQ $3, DX
	LEAQ (DX)(DX*1), R13
	LEAQ (DX)(DX*2), R14
	XORQ AX, AX
	VXORPD Y14, Y14, Y14
	TESTQ CX, CX
	JE   done

loop:
	// Load the four a-lanes for this group.
	VMOVUPD (R8), Y0
	VMOVUPD (R8)(DX*1), Y1
	VMOVUPD (R8)(R13*1), Y2
	VMOVUPD (R8)(R14*1), Y3

	// t_j = ((Ma[j][0]*a0 + Ma[j][1]*a1) + Ma[j][2]*a2) + Ma[j][3]*a3
	VMULPD (BX), Y0, Y4
	VMULPD 32(BX), Y1, Y8
	VADDPD Y8, Y4, Y4
	VMULPD 64(BX), Y2, Y8
	VADDPD Y8, Y4, Y4
	VMULPD 96(BX), Y3, Y8
	VADDPD Y8, Y4, Y4

	VMULPD 128(BX), Y0, Y5
	VMULPD 160(BX), Y1, Y8
	VADDPD Y8, Y5, Y5
	VMULPD 192(BX), Y2, Y8
	VADDPD Y8, Y5, Y5
	VMULPD 224(BX), Y3, Y8
	VADDPD Y8, Y5, Y5

	VMULPD 256(BX), Y0, Y6
	VMULPD 288(BX), Y1, Y8
	VADDPD Y8, Y6, Y6
	VMULPD 320(BX), Y2, Y8
	VADDPD Y8, Y6, Y6
	VMULPD 352(BX), Y3, Y8
	VADDPD Y8, Y6, Y6

	VMULPD 384(BX), Y0, Y7
	VMULPD 416(BX), Y1, Y8
	VADDPD Y8, Y7, Y7
	VMULPD 448(BX), Y2, Y8
	VADDPD Y8, Y7, Y7
	VMULPD 480(BX), Y3, Y8
	VADDPD Y8, Y7, Y7

	// Load the four b-lanes, reusing Y0-Y3.
	VMOVUPD (R9), Y0
	VMOVUPD (R9)(DX*1), Y1
	VMOVUPD (R9)(R13*1), Y2
	VMOVUPD (R9)(R14*1), Y3

	// u_j = ((Mb[j][0]*b0 + Mb[j][1]*b1) + Mb[j][2]*b2) + Mb[j][3]*b3
	VMULPD 512(BX), Y0, Y9
	VMULPD 544(BX), Y1, Y13
	VADDPD Y13, Y9, Y9
	VMULPD 576(BX), Y2, Y13
	VADDPD Y13, Y9, Y9
	VMULPD 608(BX), Y3, Y13
	VADDPD Y13, Y9, Y9

	VMULPD 640(BX), Y0, Y10
	VMULPD 672(BX), Y1, Y13
	VADDPD Y13, Y10, Y10
	VMULPD 704(BX), Y2, Y13
	VADDPD Y13, Y10, Y10
	VMULPD 736(BX), Y3, Y13
	VADDPD Y13, Y10, Y10

	VMULPD 768(BX), Y0, Y11
	VMULPD 800(BX), Y1, Y13
	VADDPD Y13, Y11, Y11
	VMULPD 832(BX), Y2, Y13
	VADDPD Y13, Y11, Y11
	VMULPD 864(BX), Y3, Y13
	VADDPD Y13, Y11, Y11

	VMULPD 896(BX), Y0, Y12
	VMULPD 928(BX), Y1, Y13
	VADDPD Y13, Y12, Y12
	VMULPD 960(BX), Y2, Y13
	VADDPD Y13, Y12, Y12
	VMULPD 992(BX), Y3, Y13
	VADDPD Y13, Y12, Y12

	// v_j = t_j * u_j
	VMULPD Y9, Y4, Y4
	VMULPD Y10, Y5, Y5
	VMULPD Y11, Y6, Y6
	VMULPD Y12, Y7, Y7

	// mx = max(v0..v3); a pattern is safe to store iff mx >= threshold
	// or mx <= 0 (ordered compares: NaN is unsafe and bails too).
	VMAXPD Y5, Y4, Y8
	VMAXPD Y7, Y6, Y13
	VMAXPD Y13, Y8, Y8
	VCMPPD $0x1d, 1024(BX), Y8, Y9 // GE_OQ: mx >= threshold
	VCMPPD $0x12, Y14, Y8, Y10     // LE_OQ: mx <= 0
	VORPD  Y10, Y9, Y9
	VMOVMSKPD Y9, R15
	CMPQ R15, $15
	JNE  done

	VMOVUPD Y4, (DI)
	VMOVUPD Y5, (DI)(DX*1)
	VMOVUPD Y6, (DI)(R13*1)
	VMOVUPD Y7, (DI)(R14*1)

	// dsc = asc + bsc (no rescale events in a stored group)
	VMOVDQU (R11), X13
	VMOVDQU (R12), X15
	VPADDD  X15, X13, X13
	VMOVDQU X13, (R10)

	ADDQ $32, DI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $16, R10
	ADDQ $16, R11
	ADDQ $16, R12
	INCQ AX
	CMPQ CX, AX
	JNE  loop

done:
	VZEROUPPER
	MOVQ AX, ret+72(FP)
	RET

// func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
