package likelihood

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/seq"
	"repro/internal/tree"
)

// ReferenceEngine is the deliberately simple Engine used as the trusted
// side of differential testing (internal/likelihood/difftest): direct
// post-order recomputation of every conditional likelihood vector on
// every call — no CLV cache, no SIMD kernels, no thread pool, no arena.
// Every CLV is a fresh array-of-structs allocation and every evaluation
// walks the whole tree, so it is slow on purpose: the implementation
// stays short enough to audit by eye, which is the property that makes
// cross-validating the optimized backends against it meaningful.
//
// It mirrors the cached engine's *algorithmic* choices exactly where
// they are observable — children combined in node-ID order, the same
// smoothing traversal and anchor rule, the shared newtonStep damping
// policy, the same rescaling thresholds — but not its floating-point
// summation order, so agreement is to the difftest tolerance, not bit
// identity. In Float32 mode it emulates float32 CLV storage by rounding
// each stored component to float32 (arithmetic stays float64), with the
// aggressive float32 rescaling threshold; the Float32*Tol contract
// covers the residual difference from the cached engine's true float32
// kernels.
//
// ReferenceEngine implements only the PrecisionReporter capability: it
// has no threads to set, no cache to invalidate, and keeps no stats.
type ReferenceEngine struct {
	mdl    model.Model
	pat    *seq.Patterns
	freqs  seq.BaseFreqs
	decomp *model.Decomposition
	prec   Precision

	npat       int
	classRates []float64 // distinct per-pattern rates
	classOf    []int     // pattern -> rate class index
	tips       [][][4]float64
	zeroSc     []int32

	// Scratch transition matrices, one per rate class; pmB holds the
	// second edge's matrices during a two-sided junction combine.
	pm, pmB, dm, ddm []model.PMatrix

	logScaleV float64
	threshV   float64 // rescale threshold for this precision
	factorV   float64 // rescale factor for this precision
}

// refCLV is one conditional likelihood vector in the reference layout:
// array-of-structs over the original (unpermuted) pattern order.
type refCLV struct {
	v  [][4]float64
	sc []int32
}

// NewReference builds a reference engine over the given model and
// compressed patterns at the given CLV precision.
func NewReference(m model.Model, p *seq.Patterns, prec Precision) (*ReferenceEngine, error) {
	if p.NumPatterns() == 0 {
		return nil, fmt.Errorf("likelihood: empty pattern set")
	}
	e := &ReferenceEngine{
		mdl:    m,
		pat:    p,
		freqs:  m.Freqs(),
		decomp: m.Decomposition(),
		prec:   prec,
		npat:   p.NumPatterns(),
	}
	if prec == Float32 {
		e.logScaleV, e.threshV, e.factorV = logScale32, scaleThreshold32, float64(scaleFactor32)
	} else {
		e.logScaleV, e.threshV, e.factorV = logScale, scaleThreshold, scaleFactor
	}
	classIdx := make(map[float64]int)
	e.classOf = make([]int, e.npat)
	for i, r := range p.Rates {
		ci, ok := classIdx[r]
		if !ok {
			ci = len(e.classRates)
			classIdx[r] = ci
			e.classRates = append(e.classRates, r)
		}
		e.classOf[i] = ci
	}
	nc := len(e.classRates)
	e.pm = make([]model.PMatrix, nc)
	e.pmB = make([]model.PMatrix, nc)
	e.dm = make([]model.PMatrix, nc)
	e.ddm = make([]model.PMatrix, nc)

	e.tips = make([][][4]float64, p.NumSeqs())
	for taxon := 0; taxon < p.NumSeqs(); taxon++ {
		v := make([][4]float64, e.npat)
		for s := 0; s < e.npat; s++ {
			c := p.Codes[taxon][s]
			for b := 0; b < 4; b++ {
				if c&(1<<uint(b)) != 0 {
					v[s][b] = 1
				}
			}
		}
		e.tips[taxon] = v
	}
	e.zeroSc = make([]int32, e.npat)
	return e, nil
}

// Model returns the engine's substitution model.
func (e *ReferenceEngine) Model() model.Model { return e.mdl }

// Patterns returns the engine's data set.
func (e *ReferenceEngine) Patterns() *seq.Patterns { return e.pat }

// Precision returns the engine's (emulated) CLV storage precision.
func (e *ReferenceEngine) Precision() Precision { return e.prec }

// round emulates the storage precision: Float32 engines store CLV
// components as float32, so the reference rounds each stored value.
func (e *ReferenceEngine) round(x float64) float64 {
	if e.prec == Float32 {
		return float64(float32(x))
	}
	return x
}

func (e *ReferenceEngine) fillPMInto(dst []model.PMatrix, z float64) {
	for ci, r := range e.classRates {
		e.decomp.Probs(z, r, &dst[ci])
	}
}

func (e *ReferenceEngine) fillDeriv(z float64) {
	for ci, r := range e.classRates {
		e.decomp.ProbsDeriv(z, r, &e.pm[ci], &e.dm[ci], &e.ddm[ci])
	}
}

// tip returns the (shared, never-written) tip CLV of a taxon.
func (e *ReferenceEngine) tip(taxon int) refCLV {
	return refCLV{v: e.tips[taxon], sc: e.zeroSc}
}

// rescale applies the per-pattern underflow guard to a freshly filled
// CLV: when a pattern's maximum conditional likelihood falls below the
// precision's threshold (and is still positive — padding and impossible
// states stay zero), every component is scaled up and the event counted.
func (e *ReferenceEngine) rescale(out refCLV) {
	for p := 0; p < e.npat; p++ {
		m := out.v[p][0]
		for i := 1; i < 4; i++ {
			if out.v[p][i] > m {
				m = out.v[p][i]
			}
		}
		if m > 0 && m < e.threshV {
			for i := 0; i < 4; i++ {
				out.v[p][i] = e.round(out.v[p][i] * e.factorV)
			}
			out.sc[p]++
		}
	}
}

// partial recomputes the conditional likelihood vector of the subtree at
// n seen from parent — Felsenstein pruning by direct recursion, nothing
// memoized. Children are combined in node-ID order, matching the cached
// engine's (observable) combine order.
func (e *ReferenceEngine) partial(n, parent *tree.Node) refCLV {
	if n.Leaf() {
		return e.tip(n.Taxon)
	}
	out := refCLV{v: make([][4]float64, e.npat), sc: make([]int32, e.npat)}
	for ki, c := range childrenByID(n, parent) {
		cc := e.partial(c, n)
		e.fillPMInto(e.pm, clampLen(n.LenTo(c)))
		for p := 0; p < e.npat; p++ {
			m := &e.pm[e.classOf[p]]
			cv := &cc.v[p]
			for i := 0; i < 4; i++ {
				s := e.round(m[i][0]*cv[0] + m[i][1]*cv[1] + m[i][2]*cv[2] + m[i][3]*cv[3])
				if ki == 0 {
					out.v[p][i] = s
				} else {
					out.v[p][i] = e.round(out.v[p][i] * s)
				}
			}
			if ki == 0 {
				out.sc[p] = cc.sc[p]
			} else {
				out.sc[p] += cc.sc[p]
			}
		}
	}
	e.rescale(out)
	return out
}

// combine2 builds the junction CLV (P(za)·a) ⊙ (P(zb)·b) used by
// insertion scoring, with rescaling.
func (e *ReferenceEngine) combine2(a, b refCLV, za, zb float64) refCLV {
	e.fillPMInto(e.pm, clampLen(za))
	e.fillPMInto(e.pmB, clampLen(zb))
	out := refCLV{v: make([][4]float64, e.npat), sc: make([]int32, e.npat)}
	for p := 0; p < e.npat; p++ {
		ma := &e.pm[e.classOf[p]]
		mb := &e.pmB[e.classOf[p]]
		av, bv := &a.v[p], &b.v[p]
		for i := 0; i < 4; i++ {
			sa := e.round(ma[i][0]*av[0] + ma[i][1]*av[1] + ma[i][2]*av[2] + ma[i][3]*av[3])
			sb := e.round(mb[i][0]*bv[0] + mb[i][1]*bv[1] + mb[i][2]*bv[2] + mb[i][3]*bv[3])
			out.v[p][i] = e.round(sa * sb)
		}
		out.sc[p] = a.sc[p] + b.sc[p]
	}
	e.rescale(out)
	return out
}

// edgeLnL combines the two directed partials of an edge at branch length
// z into the total log-likelihood.
func (e *ReferenceEngine) edgeLnL(a, b refCLV, z float64) float64 {
	e.fillPMInto(e.pm, clampLen(z))
	total := 0.0
	for p := 0; p < e.npat; p++ {
		m := &e.pm[e.classOf[p]]
		av, bv := &a.v[p], &b.v[p]
		lkl := 0.0
		for i := 0; i < 4; i++ {
			lkl += e.freqs[i] * av[i] * (m[i][0]*bv[0] + m[i][1]*bv[1] + m[i][2]*bv[2] + m[i][3]*bv[3])
		}
		if lkl <= 0 {
			lkl = math.SmallestNonzeroFloat64
		}
		total += e.pat.Weights[p] * (math.Log(lkl) - float64(a.sc[p]+b.sc[p])*e.logScaleV)
	}
	return total
}

// edgeDeriv computes d/dz and d²/dz² of the edge log-likelihood at z,
// plus the log-likelihood itself (the same three-way reduction the
// cached engine's derivative kernel performs).
func (e *ReferenceEngine) edgeDeriv(a, b refCLV, z float64) (float64, float64, float64) {
	e.fillDeriv(clampLen(z))
	var d1, d2, lnL float64
	for p := 0; p < e.npat; p++ {
		ci := e.classOf[p]
		m, dm, ddm := &e.pm[ci], &e.dm[ci], &e.ddm[ci]
		av, bv := &a.v[p], &b.v[p]
		var l, dl, ddl float64
		for i := 0; i < 4; i++ {
			fa := e.freqs[i] * av[i]
			l += fa * (m[i][0]*bv[0] + m[i][1]*bv[1] + m[i][2]*bv[2] + m[i][3]*bv[3])
			dl += fa * (dm[i][0]*bv[0] + dm[i][1]*bv[1] + dm[i][2]*bv[2] + dm[i][3]*bv[3])
			ddl += fa * (ddm[i][0]*bv[0] + ddm[i][1]*bv[1] + ddm[i][2]*bv[2] + ddm[i][3]*bv[3])
		}
		if l <= 0 {
			l = math.SmallestNonzeroFloat64
		}
		w := e.pat.Weights[p]
		r := dl / l
		d1 += w * r
		d2 += w * (ddl/l - r*r)
		lnL += w * (math.Log(l) - float64(a.sc[p]+b.sc[p])*e.logScaleV)
	}
	return d1, d2, lnL
}

// newtonEdge maximizes the edge log-likelihood over the branch length
// from z0 under the shared newtonStep policy, returning the best iterate
// (z0 included) like the cached engine.
func (e *ReferenceEngine) newtonEdge(a, b refCLV, z0 float64) float64 {
	z := clampLen(z0)
	bestZ, bestL := z, math.Inf(-1)
	for iter := 0; iter < newtonMaxIter; iter++ {
		d1, d2, lnl := e.edgeDeriv(a, b, z)
		if lnl > bestL {
			bestL, bestZ = lnl, z
		}
		next, stop := newtonStep(z, d1, d2)
		if stop {
			break
		}
		z = next
	}
	return bestZ
}

// LogLikelihood evaluates the tree's log-likelihood by recomputing every
// conditional likelihood vector from scratch.
func (e *ReferenceEngine) LogLikelihood(t *tree.Tree) (float64, error) {
	if err := checkTreeData(t, e.pat); err != nil {
		return 0, err
	}
	ed, ok := t.FirstEdge()
	if !ok {
		return 0, fmt.Errorf("likelihood: tree has no edges")
	}
	a := e.partial(ed.A, ed.B)
	b := e.partial(ed.B, ed.A)
	return e.edgeLnL(a, b, ed.Length()), nil
}

// SiteLogLikelihoods returns the per-pattern log-likelihoods (weights
// not applied) in the original pattern order. The reference engine never
// permutes patterns, so the natural order is the original order; the
// returned slice is freshly allocated each call.
func (e *ReferenceEngine) SiteLogLikelihoods(t *tree.Tree) ([]float64, error) {
	if err := checkTreeData(t, e.pat); err != nil {
		return nil, err
	}
	ed, ok := t.FirstEdge()
	if !ok {
		return nil, fmt.Errorf("likelihood: tree has no edges")
	}
	a := e.partial(ed.A, ed.B)
	b := e.partial(ed.B, ed.A)
	e.fillPMInto(e.pm, clampLen(ed.Length()))
	out := make([]float64, e.npat)
	for p := 0; p < e.npat; p++ {
		m := &e.pm[e.classOf[p]]
		av, bv := &a.v[p], &b.v[p]
		lkl := 0.0
		for i := 0; i < 4; i++ {
			lkl += e.freqs[i] * av[i] * (m[i][0]*bv[0] + m[i][1]*bv[1] + m[i][2]*bv[2] + m[i][3]*bv[3])
		}
		if lkl <= 0 {
			lkl = math.SmallestNonzeroFloat64
		}
		out[p] = math.Log(lkl) - float64(a.sc[p]+b.sc[p])*e.logScaleV
	}
	return out, nil
}

// OptimizeBranches optimizes branch lengths in place and returns the
// final log-likelihood, walking the same anchor/traversal/pass schedule
// as the cached engine (newton.go) so the two backends visit edges in
// the same order.
func (e *ReferenceEngine) OptimizeBranches(t *tree.Tree, opt OptOptions) (float64, error) {
	opt = opt.withDefaults()
	if err := checkTreeData(t, e.pat); err != nil {
		return 0, err
	}
	var allowed map[[2]int]bool
	if opt.Around != nil || len(opt.Centers) > 0 {
		allowed = make(map[[2]int]bool)
		if opt.Around != nil {
			edgeSetAround(opt.Around, opt.Radius, allowed)
		}
		for _, c := range opt.Centers {
			if c != nil {
				edgeSetAround(c, opt.Radius, allowed)
			}
		}
	}
	anchor := t.AnyNode()
	if anchor.Leaf() {
		if anchor.Degree() > 0 && !anchor.Nbr[0].Leaf() {
			anchor = anchor.Nbr[0]
		}
	}
	prev := math.Inf(-1)
	last := prev
	for pass := 0; pass < opt.Passes; pass++ {
		e.smoothPass(anchor, allowed)
		lnL, err := e.LogLikelihood(t)
		if err != nil {
			return 0, err
		}
		last = lnL
		if lnL-prev < opt.Tol {
			break
		}
		prev = lnL
	}
	return last, nil
}

// smoothPass performs one depth-first smoothing pass from anchor,
// visiting children in node-ID order like the cached engine. Both
// directed partials are recomputed from scratch at every edge — the
// honest cost of having no cache.
func (e *ReferenceEngine) smoothPass(anchor *tree.Node, allowed map[[2]int]bool) {
	var visit func(u, p *tree.Node)
	visit = func(u, p *tree.Node) {
		if allowed == nil || allowed[edgeKey(p, u)] {
			a := e.partial(p, u) // rest of tree seen from u
			b := e.partial(u, p) // subtree at u
			z0 := u.LenTo(p)
			z := e.newtonEdge(a, b, z0)
			tree.SetLen(p, u, z)
		}
		for _, c := range childrenByID(u, p) {
			visit(c, u)
		}
	}
	for _, child := range childrenByID(anchor, nil) {
		visit(child, anchor)
	}
}

// OptimizeEdge optimizes a single edge's branch length in place and
// returns the resulting full-tree log-likelihood.
func (e *ReferenceEngine) OptimizeEdge(t *tree.Tree, ed tree.Edge) (float64, error) {
	if err := checkTreeData(t, e.pat); err != nil {
		return 0, err
	}
	if ed.A.NbrIndex(ed.B) < 0 {
		return 0, fmt.Errorf("likelihood: edge %d-%d: %w", ed.A.ID, ed.B.ID, ErrEdgeNotFound)
	}
	a := e.partial(ed.A, ed.B)
	b := e.partial(ed.B, ed.A)
	z := e.newtonEdge(a, b, ed.Length())
	tree.SetLen(ed.A, ed.B, z)
	return e.edgeLnL(a, b, z), nil
}

// refInsertScorer scores candidate insertions by recomputing the
// insertion edge's directed partials on every Score call.
type refInsertScorer struct {
	e     *ReferenceEngine
	t     *tree.Tree
	taxon int
}

// NewInsertScorer prepares scoring of candidate insertions of taxon into
// base. The taxon must be covered by the data set and absent from base.
func (e *ReferenceEngine) NewInsertScorer(base *tree.Tree, taxon int) (InsertScorer, error) {
	if err := checkTreeData(base, e.pat); err != nil {
		return nil, err
	}
	if taxon < 0 || taxon >= e.pat.NumSeqs() {
		return nil, fmt.Errorf("likelihood: insert taxon %d: %w", taxon, ErrTaxonOutsideData)
	}
	if base.LeafByTaxon(taxon) != nil {
		return nil, fmt.Errorf("likelihood: insert taxon %d: %w", taxon, ErrTaxonInTree)
	}
	return &refInsertScorer{e: e, t: base, taxon: taxon}, nil
}

// Score mirrors the cached scorer's schedule: the same starting
// geometry, the same three-branch Newton rotation, the same final
// junction-leaf evaluation.
func (s *refInsertScorer) Score(ed tree.Edge, passes int) (InsertScore, error) {
	a, b := ed.A, ed.B
	if a.NbrIndex(b) < 0 {
		return InsertScore{}, fmt.Errorf("likelihood: insertion edge %d-%d: %w", a.ID, b.ID, ErrEdgeNotFound)
	}
	if passes <= 0 {
		passes = 1
	}
	e := s.e
	half := ed.Length() / 2
	if half <= 0 {
		half = tree.DefaultBranchLength / 2
	}
	za, zb, zl := half, half, tree.DefaultBranchLength

	aref := e.partial(a, b)
	bref := e.partial(b, a)
	tip := e.tip(s.taxon)

	var j refCLV
	for pass := 0; pass < passes; pass++ {
		j = e.combine2(aref, bref, za, zb)
		zl = e.newtonEdge(j, tip, zl)

		rest := e.combine2(bref, tip, zb, zl)
		za = e.newtonEdge(aref, rest, za)

		rest = e.combine2(aref, tip, za, zl)
		zb = e.newtonEdge(bref, rest, zb)
	}
	j = e.combine2(aref, bref, za, zb)
	lnL := e.edgeLnL(j, tip, zl)
	return InsertScore{LnL: lnL, LenA: za, LenB: zb, LenLeaf: zl}, nil
}
