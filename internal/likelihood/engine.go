// Package likelihood evaluates and optimizes the likelihood of unrooted
// phylogenetic trees under the models in internal/model, implementing the
// computational core of fastDNAml: Felsenstein's pruning algorithm over
// compressed site patterns, normalization (scaling) of conditional
// likelihoods to prevent floating point underflow on large trees (paper
// §2.1), and Newton-Raphson branch length optimization with analytic
// first and second derivatives (DNAml's makenewz).
package likelihood

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/seq"
	"repro/internal/tree"
)

// Scaling constants: conditional likelihoods below scaleThreshold are
// multiplied by scaleFactor and the event is counted; the log-likelihood
// is corrected by count*logScale at the root.
const (
	scaleThreshold = 1e-100
	scaleFactor    = 1e100
)

var logScale = math.Log(scaleFactor)

// Branch length bounds and Newton iteration controls (fastDNAml's zmin,
// zmax and smoothing behaviour).
const (
	// MinBranchLength is the smallest branch length considered.
	MinBranchLength = 1e-8
	// MaxBranchLength is the largest branch length considered.
	MaxBranchLength = 10.0
	// newtonMaxIter bounds the Newton iterations per branch per visit.
	// Convex-decreasing cases (e.g. identical sequences) descend by the
	// geometric fallback, so the cap must allow reaching MinBranchLength
	// from anywhere in the interval.
	newtonMaxIter = 24
	// newtonTol is the convergence tolerance on the branch length.
	newtonTol = 1e-7
)

// Engine computes log-likelihoods of trees over one fixed data set and
// model. An Engine is not safe for concurrent use; each worker owns one.
type Engine struct {
	mdl model.Model
	pat *seq.Patterns

	freqs  seq.BaseFreqs
	decomp *model.Decomposition

	// rate classes: distinct per-pattern rates.
	classRates []float64
	classOf    []int // pattern -> class

	// tip conditional likelihoods per taxon: flat [pattern*4+base],
	// 1 when the observed code is compatible with the base.
	tips [][]float64

	// per-node buffers indexed by node ID; grown on demand.
	clv   [][]float64
	scale [][]int32

	// scratch transition matrices, one per rate class.
	pmat, dmat, ddmat []model.PMatrix

	// rest-of-tree partial buffers used by the smoothing pass, keyed by
	// node ID and reused across passes.
	restClv   map[int][]float64
	restScale map[int][]int32

	// ops counts pattern-level inner-loop operations, the work-unit
	// measure consumed by the cluster simulator's cost model.
	ops uint64
}

// New builds an engine for the given model and compressed patterns.
func New(m model.Model, p *seq.Patterns) (*Engine, error) {
	if p.NumPatterns() == 0 {
		return nil, fmt.Errorf("likelihood: empty pattern set")
	}
	e := &Engine{
		mdl:    m,
		pat:    p,
		freqs:  m.Freqs(),
		decomp: m.Decomposition(),
	}
	// Group patterns into rate classes.
	classIdx := make(map[float64]int)
	e.classOf = make([]int, p.NumPatterns())
	for i, r := range p.Rates {
		ci, ok := classIdx[r]
		if !ok {
			ci = len(e.classRates)
			classIdx[r] = ci
			e.classRates = append(e.classRates, r)
		}
		e.classOf[i] = ci
	}
	e.pmat = make([]model.PMatrix, len(e.classRates))
	e.dmat = make([]model.PMatrix, len(e.classRates))
	e.ddmat = make([]model.PMatrix, len(e.classRates))

	// Tip vectors.
	e.tips = make([][]float64, p.NumSeqs())
	for taxon := 0; taxon < p.NumSeqs(); taxon++ {
		v := make([]float64, p.NumPatterns()*4)
		for s, c := range p.Codes[taxon] {
			for b := 0; b < 4; b++ {
				if c&(1<<uint(b)) != 0 {
					v[s*4+b] = 1
				}
			}
		}
		e.tips[taxon] = v
	}
	return e, nil
}

// Model returns the engine's substitution model.
func (e *Engine) Model() model.Model { return e.mdl }

// Patterns returns the engine's data set.
func (e *Engine) Patterns() *seq.Patterns { return e.pat }

// Ops returns the cumulative pattern-level work counter.
func (e *Engine) Ops() uint64 { return e.ops }

// ResetOps zeroes the work counter and returns the previous value.
func (e *Engine) ResetOps() uint64 {
	v := e.ops
	e.ops = 0
	return v
}

// ensureBuffers sizes the per-node buffers for node IDs < n.
func (e *Engine) ensureBuffers(n int) {
	for len(e.clv) < n {
		e.clv = append(e.clv, nil)
		e.scale = append(e.scale, nil)
	}
}

func (e *Engine) nodeBuf(id int) ([]float64, []int32) {
	if e.clv[id] == nil {
		e.clv[id] = make([]float64, e.pat.NumPatterns()*4)
		e.scale[id] = make([]int32, e.pat.NumPatterns())
	}
	return e.clv[id], e.scale[id]
}

// fillProbs computes the per-class transition matrices for branch length z.
func (e *Engine) fillProbs(z float64) {
	for ci, r := range e.classRates {
		e.decomp.Probs(z, r, &e.pmat[ci])
	}
}

// fillProbsDeriv computes matrices and derivatives for branch length z.
func (e *Engine) fillProbsDeriv(z float64) {
	for ci, r := range e.classRates {
		e.decomp.ProbsDeriv(z, r, &e.pmat[ci], &e.dmat[ci], &e.ddmat[ci])
	}
}

// clampLen bounds a branch length into the legal interval.
func clampLen(z float64) float64 {
	if z < MinBranchLength {
		return MinBranchLength
	}
	if z > MaxBranchLength {
		return MaxBranchLength
	}
	return z
}

// downPartial computes the conditional likelihood vector of the subtree at
// n seen from parent (the "down" view of directed edge parent->n),
// recursing into n's other neighbors. The result lands in n's buffer.
// Tips are copied from the precomputed tip vectors (scale zero).
func (e *Engine) downPartial(n, parent *tree.Node) ([]float64, []int32) {
	npat := e.pat.NumPatterns()
	clv, sc := e.nodeBuf(n.ID)
	if n.Leaf() {
		copy(clv, e.tips[n.Taxon])
		for i := range sc {
			sc[i] = 0
		}
		return clv, sc
	}

	first := true
	for i, child := range n.Nbr {
		if child == parent {
			continue
		}
		cclv, csc := e.downPartial(child, n)
		e.fillProbs(clampLen(n.Len[i]))
		e.ops += uint64(npat) * 16
		if first {
			for p := 0; p < npat; p++ {
				pm := &e.pmat[e.classOf[p]]
				c0, c1, c2, c3 := cclv[p*4], cclv[p*4+1], cclv[p*4+2], cclv[p*4+3]
				for j := 0; j < 4; j++ {
					clv[p*4+j] = pm[j][0]*c0 + pm[j][1]*c1 + pm[j][2]*c2 + pm[j][3]*c3
				}
				sc[p] = csc[p]
			}
			first = false
		} else {
			for p := 0; p < npat; p++ {
				pm := &e.pmat[e.classOf[p]]
				c0, c1, c2, c3 := cclv[p*4], cclv[p*4+1], cclv[p*4+2], cclv[p*4+3]
				for j := 0; j < 4; j++ {
					clv[p*4+j] *= pm[j][0]*c0 + pm[j][1]*c1 + pm[j][2]*c2 + pm[j][3]*c3
				}
				sc[p] += csc[p]
			}
		}
	}

	// Underflow protection (paper §2.1): rescale tiny pattern vectors.
	for p := 0; p < npat; p++ {
		m := clv[p*4]
		for j := 1; j < 4; j++ {
			if clv[p*4+j] > m {
				m = clv[p*4+j]
			}
		}
		if m < scaleThreshold && m > 0 {
			for j := 0; j < 4; j++ {
				clv[p*4+j] *= scaleFactor
			}
			sc[p]++
		}
	}
	return clv, sc
}

// refreshNode recomputes n's down partial (as seen from parent) from its
// children's currently stored buffers, without recursing.
func (e *Engine) refreshNode(n, parent *tree.Node) {
	npat := e.pat.NumPatterns()
	clv, sc := e.nodeBuf(n.ID)
	first := true
	for i, child := range n.Nbr {
		if child == parent {
			continue
		}
		cclv, csc := e.nodeBuf(child.ID)
		e.fillProbs(clampLen(n.Len[i]))
		e.ops += uint64(npat) * 16
		if first {
			for p := 0; p < npat; p++ {
				pm := &e.pmat[e.classOf[p]]
				c0, c1, c2, c3 := cclv[p*4], cclv[p*4+1], cclv[p*4+2], cclv[p*4+3]
				for j := 0; j < 4; j++ {
					clv[p*4+j] = pm[j][0]*c0 + pm[j][1]*c1 + pm[j][2]*c2 + pm[j][3]*c3
				}
				sc[p] = csc[p]
			}
			first = false
		} else {
			for p := 0; p < npat; p++ {
				pm := &e.pmat[e.classOf[p]]
				c0, c1, c2, c3 := cclv[p*4], cclv[p*4+1], cclv[p*4+2], cclv[p*4+3]
				for j := 0; j < 4; j++ {
					clv[p*4+j] *= pm[j][0]*c0 + pm[j][1]*c1 + pm[j][2]*c2 + pm[j][3]*c3
				}
				sc[p] += csc[p]
			}
		}
	}
	for p := 0; p < npat; p++ {
		m := clv[p*4]
		for j := 1; j < 4; j++ {
			if clv[p*4+j] > m {
				m = clv[p*4+j]
			}
		}
		if m < scaleThreshold && m > 0 {
			for j := 0; j < 4; j++ {
				clv[p*4+j] *= scaleFactor
			}
			sc[p]++
		}
	}
}

// edgeLogLikelihood combines the two directed partials of edge (a,b) at
// branch length z into the total log-likelihood.
func (e *Engine) edgeLogLikelihood(aclv []float64, asc []int32, bclv []float64, bsc []int32, z float64) float64 {
	npat := e.pat.NumPatterns()
	e.fillProbs(clampLen(z))
	e.ops += uint64(npat) * 20
	total := 0.0
	for p := 0; p < npat; p++ {
		pm := &e.pmat[e.classOf[p]]
		b0, b1, b2, b3 := bclv[p*4], bclv[p*4+1], bclv[p*4+2], bclv[p*4+3]
		lkl := 0.0
		for i := 0; i < 4; i++ {
			lkl += e.freqs[i] * aclv[p*4+i] *
				(pm[i][0]*b0 + pm[i][1]*b1 + pm[i][2]*b2 + pm[i][3]*b3)
		}
		if lkl <= 0 {
			lkl = math.SmallestNonzeroFloat64
		}
		total += e.pat.Weights[p] * (math.Log(lkl) - float64(asc[p]+bsc[p])*logScale)
	}
	return total
}

// LogLikelihood evaluates the tree's log-likelihood without changing any
// branch length. The tree must contain at least two leaves whose taxa are
// covered by the data set.
func (e *Engine) LogLikelihood(t *tree.Tree) (float64, error) {
	if err := e.checkTree(t); err != nil {
		return 0, err
	}
	e.ensureBuffers(t.MaxID())
	// Evaluate across an arbitrary edge.
	edges := t.Edges()
	if len(edges) == 0 {
		return 0, fmt.Errorf("likelihood: tree has no edges")
	}
	ed := edges[0]
	aclv, asc := e.downPartial(ed.A, ed.B)
	bclv, bsc := e.downPartial(ed.B, ed.A)
	return e.edgeLogLikelihood(aclv, asc, bclv, bsc, ed.Length()), nil
}

// SiteLogLikelihoods returns the per-pattern log-likelihoods of the tree
// (weights not applied), used by DNArates-style per-site estimation.
func (e *Engine) SiteLogLikelihoods(t *tree.Tree) ([]float64, error) {
	if err := e.checkTree(t); err != nil {
		return nil, err
	}
	e.ensureBuffers(t.MaxID())
	edges := t.Edges()
	if len(edges) == 0 {
		return nil, fmt.Errorf("likelihood: tree has no edges")
	}
	ed := edges[0]
	aclv, asc := e.downPartial(ed.A, ed.B)
	bclv, bsc := e.downPartial(ed.B, ed.A)
	npat := e.pat.NumPatterns()
	e.fillProbs(clampLen(ed.Length()))
	out := make([]float64, npat)
	for p := 0; p < npat; p++ {
		pm := &e.pmat[e.classOf[p]]
		b0, b1, b2, b3 := bclv[p*4], bclv[p*4+1], bclv[p*4+2], bclv[p*4+3]
		lkl := 0.0
		for i := 0; i < 4; i++ {
			lkl += e.freqs[i] * aclv[p*4+i] *
				(pm[i][0]*b0 + pm[i][1]*b1 + pm[i][2]*b2 + pm[i][3]*b3)
		}
		if lkl <= 0 {
			lkl = math.SmallestNonzeroFloat64
		}
		out[p] = math.Log(lkl) - float64(asc[p]+bsc[p])*logScale
	}
	return out, nil
}

// checkTree verifies the tree is usable with this data set.
func (e *Engine) checkTree(t *tree.Tree) error {
	if len(t.Taxa) != e.pat.NumSeqs() {
		return fmt.Errorf("likelihood: tree over %d taxa, data has %d sequences", len(t.Taxa), e.pat.NumSeqs())
	}
	n := 0
	for _, node := range t.Nodes {
		if node == nil {
			continue
		}
		if node.Leaf() {
			if node.Taxon >= e.pat.NumSeqs() {
				return fmt.Errorf("likelihood: leaf taxon %d outside data set", node.Taxon)
			}
			n++
		}
	}
	if n < 2 {
		return fmt.Errorf("likelihood: tree has %d leaves, need at least 2", n)
	}
	return nil
}
