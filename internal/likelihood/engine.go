// Package likelihood evaluates and optimizes the likelihood of unrooted
// phylogenetic trees under the models in internal/model, implementing the
// computational core of fastDNAml: Felsenstein's pruning algorithm over
// compressed site patterns, normalization (scaling) of conditional
// likelihoods to prevent floating point underflow on large trees (paper
// §2.1), and Newton-Raphson branch length optimization with analytic
// first and second derivatives (DNAml's makenewz).
//
// Evaluation is incremental: conditional likelihood vectors are memoized
// per directed edge (see cache.go), so repeated evaluations of the same
// or a locally-edited tree only recompute the vectors whose subtree or
// incident branch lengths changed. Patterns are permuted at construction
// into contiguous rate-class blocks so the inner loops hoist the
// transition-matrix lookup out of the per-pattern loop, and CLVs are
// stored structure-of-arrays — one contiguous lane per nucleotide state,
// rate-class blocks padded to a fixed multiple — so the hot kernels
// (kernels.go) run as straight-line, bounds-check-free loops over
// parallel arrays. An optional float32 CLV mode (NewWithPrecision) halves
// memory traffic behind the same entry points; float64 stays the default
// and the bit-identity reference.
package likelihood

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/model"
	"repro/internal/seq"
	"repro/internal/tree"
)

// Scaling constants: conditional likelihoods below scaleThreshold are
// multiplied by scaleFactor and the event is counted; the log-likelihood
// is corrected by count*logScale at the root. (Float32 engines use the
// more aggressive scaleThreshold32/scaleFactor32 from precision.go.)
const (
	scaleThreshold = 1e-100
	scaleFactor    = 1e100
)

var logScale = math.Log(scaleFactor)

// Branch length bounds and Newton iteration controls (fastDNAml's zmin,
// zmax and smoothing behaviour).
const (
	// MinBranchLength is the smallest branch length considered.
	MinBranchLength = 1e-8
	// MaxBranchLength is the largest branch length considered.
	MaxBranchLength = 10.0
	// newtonMaxIter bounds the Newton iterations per branch per visit.
	// Convex-decreasing cases (e.g. identical sequences) descend by the
	// geometric fallback, so the cap must allow reaching MinBranchLength
	// from anywhere in the interval.
	newtonMaxIter = 24
	// newtonTol is the convergence tolerance on the branch length.
	newtonTol = 1e-7
)

// clvBlock is the pattern-count multiple each rate-class block is padded
// to in the SoA layout: every block's lanes start at an index divisible
// by clvBlock, so a vectorizing compiler (or a future SIMD kernel) sees
// aligned, whole-vector runs. 8 float64s is one 64-byte cache line.
const clvBlock = 8

// classBlock is a contiguous run of (permuted) patterns sharing one rate
// class, so kernels look the transition matrix up once per block. plo is
// the block's starting index on the padded pattern axis; the block
// occupies padded indices [plo, plo+(hi-lo)) with the remainder up to
// the next multiple of clvBlock as zero-filled padding.
type classBlock struct {
	ci     int // rate class index
	lo, hi int // permuted pattern index range [lo, hi)
	plo    int // padded start index (multiple of clvBlock)
}

// clvRef is a precision-tagged view of one conditional likelihood
// vector in the SoA layout: exactly one of f64/f32 is non-nil, matching
// the owning engine's precision, and holds 4*npad entries (four state
// lanes of npad each). sc is the per-padded-pattern scale count vector.
type clvRef struct {
	f64 []float64
	f32 []float32
	sc  []int32
}

// CachedEngine is the production Engine implementation: Felsenstein
// pruning over a per-directed-edge CLV cache with SoA storage, sharded
// multi-core kernels, optional AVX2 acceleration, and a float32 CLV
// mode. It is registered in the engine registry as "cached" (the
// default backend). A CachedEngine is not safe for concurrent use; each
// worker owns one.
type CachedEngine struct {
	mdl model.Model
	pat *seq.Patterns

	freqs  seq.BaseFreqs
	decomp *model.Decomposition

	// rate classes: distinct per-pattern rates, patterns permuted into
	// contiguous class blocks. perm maps internal (permuted) pattern
	// index to the original index in pat; weights/tips are permuted and
	// live on the padded pattern axis.
	classRates []float64
	blocks     []classBlock
	perm       []int
	npat       int // real (permuted) pattern count
	npad       int // padded pattern count (blocks rounded up to clvBlock)

	// Padded-axis data: weights holds the pattern weights at padded
	// positions (padding entries 0); origOfPad maps a padded index back
	// to the original pattern index in pat (-1 for padding).
	weights   []float64
	origOfPad []int

	// prec selects the CLV storage format; logScaleV is the active
	// per-scaling-event log-likelihood correction.
	prec      Precision
	logScaleV float64

	// tip conditional likelihoods per taxon in SoA lanes over the padded
	// axis (one of the two sets is populated, per prec): 1 when the
	// observed code is compatible with the base, 0 in padding. zeroScale
	// is the shared all-zero scale vector tips report (tips never
	// underflow).
	tips      [][]float64
	tips32    [][]float32
	zeroScale []int32

	// scratch transition matrices, one per rate class. pmat32 mirrors
	// pmat in float32 for Float32 pruning combines (reductions always
	// use the float64 matrices). pmatB/pmat32B hold the second child's
	// matrices during the fused two-child combine.
	pmat, dmat, ddmat []model.PMatrix
	pmatB             []model.PMatrix
	pmat32            [][4][4]float32
	pmat32B           [][4][4]float32

	// bc2 is the pre-broadcast coefficient table per rate class consumed
	// by the AVX2 fused combine (kernels_amd64.s): rows 0-15 Ma, 16-31 Mb
	// (each coefficient repeated across a 4-wide row), row 32 the rescale
	// threshold. Allocated only for float64 engines on AVX2 hardware; nil
	// selects the scalar kernel.
	bc2 [][33][4]float64

	// cache memoizes directed-edge CLVs; stats counts its behaviour.
	cache clvCache
	stats EngineStats

	// ops counts pattern-level inner-loop operations, the work-unit
	// measure consumed by the cluster simulator's cost model. Cache hits
	// add nothing: only recomputed vectors count.
	ops uint64

	// evalDepth guards EvalTime accounting against nested public entry
	// points (OptimizeBranches calls LogLikelihood per pass); only the
	// outermost call contributes wall-clock time.
	evalDepth int

	// Sharded kernels (shard.go): the fixed shard layout (a pure function
	// of the data), the persistent goroutine pool (nil when threads <= 1),
	// the engine-held kernel arguments, and the per-shard reduction
	// partials summed in shard index order.
	threads           int
	shards            []shard
	pool              *shardPool
	kern              kernArgs
	shLnL, shD1, shD2 []float64

	// Arena scratch reused across evaluations: the per-pattern site
	// vector SiteLogLikelihoods fills (siteBuf) and the two junction
	// vectors insertion scoring needs (insJ/insRest). Both are lazily
	// sized once.
	siteBuf       []float64
	insJ, insRest clvRef

	// Gradient-smoothing scratch (gradient.go): the per-edge gradient
	// buffer reused across rounds and the pre-update length snapshot the
	// round safeguard reverts with. Both stabilize at the tree's edge
	// count, keeping gradient rounds allocation-free.
	gradBuf []BranchGrad
	gradOld []float64
}

// beginEval starts the stats clock for a public evaluation entry point;
// endEval stops it. Nested entry points are free: two time.Now calls per
// outermost invocation, nothing in the kernels, and no closure (use as
// `defer e.endEval(e.beginEval())`, which Go open-codes without
// allocating).
func (e *CachedEngine) beginEval() time.Time {
	e.evalDepth++
	if e.evalDepth > 1 {
		return time.Time{}
	}
	return time.Now()
}

func (e *CachedEngine) endEval(start time.Time) {
	e.evalDepth--
	if e.evalDepth == 0 {
		e.stats.EvalTime += time.Since(start)
	}
}

// New builds a float64 (exact-mode) engine for the given model and
// compressed patterns.
func New(m model.Model, p *seq.Patterns) (*CachedEngine, error) {
	return NewWithPrecision(m, p, Float64)
}

// NewWithPrecision builds an engine whose conditional likelihood vectors
// are stored at the given precision. Float64 is exact mode; Float32
// trades a documented accuracy tolerance (precision.go) for half the CLV
// memory traffic. Reductions (log-likelihood, Newton derivatives) always
// accumulate in float64 regardless of precision.
func NewWithPrecision(m model.Model, p *seq.Patterns, prec Precision) (*CachedEngine, error) {
	if p.NumPatterns() == 0 {
		return nil, fmt.Errorf("likelihood: empty pattern set")
	}
	e := &CachedEngine{
		mdl:    m,
		pat:    p,
		freqs:  m.Freqs(),
		decomp: m.Decomposition(),
		npat:   p.NumPatterns(),
		prec:   prec,
	}
	if prec == Float32 {
		e.logScaleV = logScale32
	} else {
		e.logScaleV = logScale
	}
	// Group patterns into rate classes.
	classIdx := make(map[float64]int)
	classOf := make([]int, e.npat)
	for i, r := range p.Rates {
		ci, ok := classIdx[r]
		if !ok {
			ci = len(e.classRates)
			classIdx[r] = ci
			e.classRates = append(e.classRates, r)
		}
		classOf[i] = ci
	}
	e.pmat = make([]model.PMatrix, len(e.classRates))
	e.pmatB = make([]model.PMatrix, len(e.classRates))
	e.dmat = make([]model.PMatrix, len(e.classRates))
	e.ddmat = make([]model.PMatrix, len(e.classRates))
	if prec == Float32 {
		e.pmat32 = make([][4][4]float32, len(e.classRates))
		e.pmat32B = make([][4][4]float32, len(e.classRates))
	} else if useAVX2 {
		e.bc2 = make([][33][4]float64, len(e.classRates))
		for ci := range e.bc2 {
			e.bc2[ci][32] = [4]float64{scaleThreshold, scaleThreshold, scaleThreshold, scaleThreshold}
		}
	}

	// Permute patterns so each rate class is one contiguous block; the
	// stable sort keeps the original relative order within a class.
	e.perm = make([]int, e.npat)
	for i := range e.perm {
		e.perm[i] = i
	}
	sort.SliceStable(e.perm, func(i, j int) bool {
		return classOf[e.perm[i]] < classOf[e.perm[j]]
	})
	lo := 0
	for s := 1; s <= e.npat; s++ {
		if s == e.npat || classOf[e.perm[s]] != classOf[e.perm[lo]] {
			e.blocks = append(e.blocks, classBlock{ci: classOf[e.perm[lo]], lo: lo, hi: s})
			lo = s
		}
	}
	// Assign padded block starts: each block's lane segment begins at a
	// multiple of clvBlock, with zero-filled padding to the next one.
	pad := 0
	for i := range e.blocks {
		e.blocks[i].plo = pad
		n := e.blocks[i].hi - e.blocks[i].lo
		pad += (n + clvBlock - 1) / clvBlock * clvBlock
	}
	e.npad = pad

	// Weights and the padded->original index map.
	e.weights = make([]float64, e.npad)
	e.origOfPad = make([]int, e.npad)
	for i := range e.origOfPad {
		e.origOfPad[i] = -1
	}
	for _, blk := range e.blocks {
		for s := blk.lo; s < blk.hi; s++ {
			i := blk.plo + (s - blk.lo)
			e.weights[i] = p.Weights[e.perm[s]]
			e.origOfPad[i] = e.perm[s]
		}
	}

	// Tip vectors: SoA lanes over the padded axis. Padding entries stay
	// exactly zero forever — combines propagate 0 and rescaling skips
	// non-positive maxima — so padded tails never produce scaling events
	// or NaNs.
	if prec == Float32 {
		e.tips32 = make([][]float32, p.NumSeqs())
	} else {
		e.tips = make([][]float64, p.NumSeqs())
	}
	for taxon := 0; taxon < p.NumSeqs(); taxon++ {
		var v64 []float64
		var v32 []float32
		if prec == Float32 {
			v32 = make([]float32, 4*e.npad)
		} else {
			v64 = make([]float64, 4*e.npad)
		}
		for _, blk := range e.blocks {
			for s := blk.lo; s < blk.hi; s++ {
				i := blk.plo + (s - blk.lo)
				c := p.Codes[taxon][e.perm[s]]
				for b := 0; b < 4; b++ {
					if c&(1<<uint(b)) != 0 {
						if prec == Float32 {
							v32[b*e.npad+i] = 1
						} else {
							v64[b*e.npad+i] = 1
						}
					}
				}
			}
		}
		if prec == Float32 {
			e.tips32[taxon] = v32
		} else {
			e.tips[taxon] = v64
		}
	}
	e.zeroScale = make([]int32, e.npad)

	// Shard layout and reduction partials (shard.go). The layout depends
	// only on the data — the same real-pattern cut points as ever, so
	// reduction grouping (and therefore every float64 bit) is unchanged
	// from the interleaved engine — and every thread count reduces in
	// the same order.
	e.shards = buildShards(e.blocks, e.npat)
	e.shLnL = make([]float64, len(e.shards))
	e.shD1 = make([]float64, len(e.shards))
	e.shD2 = make([]float64, len(e.shards))
	e.threads = 1
	e.cache.init(e.npad, prec)
	return e, nil
}

// Model returns the engine's substitution model.
func (e *CachedEngine) Model() model.Model { return e.mdl }

// Patterns returns the engine's data set.
func (e *CachedEngine) Patterns() *seq.Patterns { return e.pat }

// Precision returns the engine's CLV storage precision.
func (e *CachedEngine) Precision() Precision { return e.prec }

// Ops returns the cumulative pattern-level work counter.
func (e *CachedEngine) Ops() uint64 { return e.ops }

// ResetOps zeroes the work counter and returns the previous value.
func (e *CachedEngine) ResetOps() uint64 {
	v := e.ops
	e.ops = 0
	return v
}

// ensureBuffers sizes the cache's per-node index for node IDs < n.
func (e *CachedEngine) ensureBuffers(n int) {
	e.cache.grow(n)
}

// tipRef returns the tip CLV view for a taxon at the engine's precision.
func (e *CachedEngine) tipRef(taxon int) clvRef {
	if e.prec == Float32 {
		return clvRef{f32: e.tips32[taxon], sc: e.zeroScale}
	}
	return clvRef{f64: e.tips[taxon], sc: e.zeroScale}
}

// fillProbs computes the per-class transition matrices for branch length
// z, mirroring them into float32 when the engine stores float32 CLVs.
func (e *CachedEngine) fillProbs(z float64) {
	e.fillProbsInto(e.pmat, e.pmat32, z)
}

// fillProbsB fills the second matrix set used by the two-child fused
// combine (combine2Into needs both edges' matrices live at once).
func (e *CachedEngine) fillProbsB(z float64) {
	e.fillProbsInto(e.pmatB, e.pmat32B, z)
}

func (e *CachedEngine) fillProbsInto(dst []model.PMatrix, dst32 [][4][4]float32, z float64) {
	for ci, r := range e.classRates {
		e.decomp.Probs(z, r, &dst[ci])
	}
	if e.prec == Float32 {
		for ci := range dst {
			src := &dst[ci]
			d := &dst32[ci]
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					d[i][j] = float32(src[i][j])
				}
			}
		}
	}
}

// fillProbsDeriv computes matrices and derivatives for branch length z.
// Derivative kernels reduce in float64, so no float32 mirror is needed.
func (e *CachedEngine) fillProbsDeriv(z float64) {
	for ci, r := range e.classRates {
		e.decomp.ProbsDeriv(z, r, &e.pmat[ci], &e.dmat[ci], &e.ddmat[ci])
	}
}

// clampLen bounds a branch length into the legal interval.
func clampLen(z float64) float64 {
	if z < MinBranchLength {
		return MinBranchLength
	}
	if z > MaxBranchLength {
		return MaxBranchLength
	}
	return z
}

// combineInto multiplies (or, when first, assigns) P(z)·src into dst for
// every pattern, accumulating scale counts. One call is one child-edge
// combine of Felsenstein pruning: 16 pattern-level ops per pattern. With
// resc set — the last combine of a pruning step — underflow rescaling is
// fused into the same pass: the final values are checked and scaled in
// registers before the store, saving a whole read-modify-write sweep of
// dst per CLV fill (bit-identical to a separate rescale pass).
func (e *CachedEngine) combineInto(dst, src clvRef, z float64, first, resc bool) {
	e.fillProbs(clampLen(z))
	e.ops += uint64(e.npat) * 16
	k := &e.kern
	switch {
	case first && resc:
		k.op = kCombineFirstResc
	case first:
		k.op = kCombineFirst
	case resc:
		k.op = kCombineMulResc
	default:
		k.op = kCombineMul
	}
	k.dst, k.src = dst, src
	e.runShards()
}

// combine2Into performs a complete binary pruning step — the common case
// of an inner node with exactly two children — in a single kernel pass:
// dst = (P(za)·a) ⊙ (P(zb)·b) with rescaling fused, never materializing
// the first child's product. Bit-identical to the first/mul sequence.
func (e *CachedEngine) combine2Into(dst, a, b clvRef, za, zb float64) {
	e.fillProbs(clampLen(za))
	e.fillProbsB(clampLen(zb))
	for ci := range e.bc2 {
		t := &e.bc2[ci]
		pa, pb := &e.pmat[ci], &e.pmatB[ci]
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				va, vb := pa[j][k], pb[j][k]
				t[j*4+k] = [4]float64{va, va, va, va}
				t[16+j*4+k] = [4]float64{vb, vb, vb, vb}
			}
		}
	}
	e.ops += uint64(e.npat) * 32
	k := &e.kern
	k.op = kCombine2
	k.dst, k.src, k.src2 = dst, a, b
	e.runShards()
}

// partial returns the conditional likelihood vector of the subtree at n
// seen from parent (the "down" view of directed edge parent->n) and its
// cache generation. Results come from the CLV cache when the subtree is
// unchanged; only stale vectors are recombined. The returned buffers are
// owned by the cache and valid until the next fill of the same directed
// edge.
func (e *CachedEngine) partial(n, parent *tree.Node) (clvRef, uint64) {
	if n.Leaf() {
		return e.tipRef(n.Taxon), tipGen
	}
	ent := e.cache.entryFor(n, parent)
	valid := ent.filled && ent.nodeRev == n.Rev()

	// Recurse into the children first (pure pointer walk on the hit
	// path) and compare against the entry's recorded children. Children
	// are combined in node-ID order, not Nbr order: topology edits can
	// permute Nbr lists, and keying the floating-point combine order to
	// node identity keeps results bit-identical across edit histories
	// (the serial-equals-parallel guarantee).
	tmp := ent.tmp[:0]
	for i, child := range n.Nbr {
		if child == parent {
			continue
		}
		cref, cgen := e.partial(child, n)
		tmp = append(tmp, kidRef{node: child, gen: cgen, ref: cref, z: n.Len[i]})
	}
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j].node.ID < tmp[j-1].node.ID; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	ent.tmp = tmp
	if valid && len(tmp) == len(ent.kids) {
		for i := range tmp {
			if ent.kids[i].node != tmp[i].node || ent.kids[i].gen != tmp[i].gen {
				valid = false
				break
			}
		}
	} else {
		valid = false
	}
	if valid {
		e.stats.Hits++
		return ent.ref, ent.gen
	}
	e.stats.Misses++
	e.stats.Recomputed++

	if ent.ref.sc == nil {
		ent.ref = e.cache.allocCLV()
	}
	if len(tmp) == 2 {
		// Bifurcating inner node: one fused kernel pass for the whole fill.
		e.combine2Into(ent.ref, tmp[0].ref, tmp[1].ref, tmp[0].z, tmp[1].z)
	} else {
		for i := range tmp {
			e.combineInto(ent.ref, tmp[i].ref, tmp[i].z, i == 0, i == len(tmp)-1)
		}
	}

	ent.nodeRev = n.Rev()
	ent.kids = ent.kids[:0]
	for i := range tmp {
		// Retain only the identity fields; the vector slices would pin
		// child buffers for no benefit.
		ent.kids = append(ent.kids, kidRef{node: tmp[i].node, gen: tmp[i].gen})
	}
	ent.gen = e.cache.nextGen()
	ent.filled = true
	return ent.ref, ent.gen
}

// downPartial is the uncached-era name for partial, kept for in-package
// tests; it returns the (possibly cached) directed-edge CLV view.
func (e *CachedEngine) downPartial(n, parent *tree.Node) clvRef {
	ref, _ := e.partial(n, parent)
	return ref
}

// edgeLogLikelihood combines the two directed partials of edge (a,b) at
// branch length z into the total log-likelihood.
func (e *CachedEngine) edgeLogLikelihood(a, b clvRef, z float64) float64 {
	e.fillProbs(clampLen(z))
	e.ops += uint64(e.npat) * 20
	k := &e.kern
	k.op = kEdgeLnL
	k.a, k.b = a, b
	e.runShards()
	// Ordered reduction: per-shard partials summed in shard index order,
	// independent of which thread computed them.
	total := 0.0
	for s := range e.shards {
		total += e.shLnL[s]
	}
	return total
}

// LogLikelihood evaluates the tree's log-likelihood without changing any
// branch length. The tree must contain at least two leaves whose taxa are
// covered by the data set. Evaluation is incremental: only conditional
// likelihood vectors invalidated since the previous call are recomputed.
func (e *CachedEngine) LogLikelihood(t *tree.Tree) (float64, error) {
	defer e.endEval(e.beginEval())
	if err := e.checkTree(t); err != nil {
		return 0, err
	}
	e.ensureBuffers(t.MaxID())
	// Evaluate across an arbitrary edge.
	ed, ok := t.FirstEdge()
	if !ok {
		return 0, fmt.Errorf("likelihood: tree has no edges")
	}
	a, _ := e.partial(ed.A, ed.B)
	b, _ := e.partial(ed.B, ed.A)
	return e.edgeLogLikelihood(a, b, ed.Length()), nil
}

// SiteLogLikelihoods returns the per-pattern log-likelihoods of the tree
// (weights not applied) in the original pattern order of Patterns(), used
// by DNArates-style per-site estimation. The returned slice is owned by
// the engine and overwritten by the next call; callers that retain it
// across calls must copy.
func (e *CachedEngine) SiteLogLikelihoods(t *tree.Tree) ([]float64, error) {
	defer e.endEval(e.beginEval())
	if err := e.checkTree(t); err != nil {
		return nil, err
	}
	e.ensureBuffers(t.MaxID())
	ed, ok := t.FirstEdge()
	if !ok {
		return nil, fmt.Errorf("likelihood: tree has no edges")
	}
	a, _ := e.partial(ed.A, ed.B)
	b, _ := e.partial(ed.B, ed.A)
	e.fillProbs(clampLen(ed.Length()))
	if e.siteBuf == nil {
		e.siteBuf = make([]float64, e.npat)
	}
	k := &e.kern
	k.op = kSiteLnL
	k.a, k.b, k.out = a, b, e.siteBuf
	e.runShards()
	return e.siteBuf, nil
}

// checkTree verifies the tree is usable with this data set.
func (e *CachedEngine) checkTree(t *tree.Tree) error {
	return checkTreeData(t, e.pat)
}

// checkTreeData is the tree/data compatibility check shared by every
// in-tree engine, wrapping the typed sentinels so callers can classify.
func checkTreeData(t *tree.Tree, pat *seq.Patterns) error {
	if len(t.Taxa) != pat.NumSeqs() {
		return fmt.Errorf("likelihood: tree over %d taxa, data has %d sequences: %w",
			len(t.Taxa), pat.NumSeqs(), ErrTreeMismatch)
	}
	n := 0
	for _, node := range t.Nodes {
		if node == nil {
			continue
		}
		if node.Leaf() {
			if node.Taxon >= pat.NumSeqs() {
				return fmt.Errorf("likelihood: leaf taxon %d: %w", node.Taxon, ErrTaxonOutsideData)
			}
			n++
		}
	}
	if n < 2 {
		return fmt.Errorf("likelihood: tree has %d leaves, need at least 2: %w", n, ErrTreeMismatch)
	}
	return nil
}
