// Package likelihood evaluates and optimizes the likelihood of unrooted
// phylogenetic trees under the models in internal/model, implementing the
// computational core of fastDNAml: Felsenstein's pruning algorithm over
// compressed site patterns, normalization (scaling) of conditional
// likelihoods to prevent floating point underflow on large trees (paper
// §2.1), and Newton-Raphson branch length optimization with analytic
// first and second derivatives (DNAml's makenewz).
//
// Evaluation is incremental: conditional likelihood vectors are memoized
// per directed edge (see cache.go), so repeated evaluations of the same
// or a locally-edited tree only recompute the vectors whose subtree or
// incident branch lengths changed. Patterns are permuted at construction
// into contiguous rate-class blocks so the inner loops hoist the
// transition-matrix lookup out of the per-pattern loop.
package likelihood

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/model"
	"repro/internal/seq"
	"repro/internal/tree"
)

// Scaling constants: conditional likelihoods below scaleThreshold are
// multiplied by scaleFactor and the event is counted; the log-likelihood
// is corrected by count*logScale at the root.
const (
	scaleThreshold = 1e-100
	scaleFactor    = 1e100
)

var logScale = math.Log(scaleFactor)

// Branch length bounds and Newton iteration controls (fastDNAml's zmin,
// zmax and smoothing behaviour).
const (
	// MinBranchLength is the smallest branch length considered.
	MinBranchLength = 1e-8
	// MaxBranchLength is the largest branch length considered.
	MaxBranchLength = 10.0
	// newtonMaxIter bounds the Newton iterations per branch per visit.
	// Convex-decreasing cases (e.g. identical sequences) descend by the
	// geometric fallback, so the cap must allow reaching MinBranchLength
	// from anywhere in the interval.
	newtonMaxIter = 24
	// newtonTol is the convergence tolerance on the branch length.
	newtonTol = 1e-7
)

// classBlock is a contiguous run of (permuted) patterns sharing one rate
// class, so kernels look the transition matrix up once per block.
type classBlock struct {
	ci     int // rate class index
	lo, hi int // permuted pattern index range [lo, hi)
}

// Engine computes log-likelihoods of trees over one fixed data set and
// model. An Engine is not safe for concurrent use; each worker owns one.
type Engine struct {
	mdl model.Model
	pat *seq.Patterns

	freqs  seq.BaseFreqs
	decomp *model.Decomposition

	// rate classes: distinct per-pattern rates, patterns permuted into
	// contiguous class blocks. perm maps internal (permuted) pattern
	// index to the original index in pat; weights/tips are permuted.
	classRates []float64
	blocks     []classBlock
	perm       []int
	weights    []float64
	npat       int

	// tip conditional likelihoods per taxon: flat [pattern*4+base] in
	// permuted pattern order, 1 when the observed code is compatible
	// with the base. zeroScale is the shared all-zero scale vector tips
	// report (tips never underflow).
	tips      [][]float64
	zeroScale []int32

	// scratch transition matrices, one per rate class.
	pmat, dmat, ddmat []model.PMatrix

	// cache memoizes directed-edge CLVs; stats counts its behaviour.
	cache clvCache
	stats EngineStats

	// ops counts pattern-level inner-loop operations, the work-unit
	// measure consumed by the cluster simulator's cost model. Cache hits
	// add nothing: only recomputed vectors count.
	ops uint64

	// evalDepth guards EvalTime accounting against nested public entry
	// points (OptimizeBranches calls LogLikelihood per pass); only the
	// outermost call contributes wall-clock time.
	evalDepth int

	// Sharded kernels (shard.go): the fixed shard layout (a pure function
	// of the data), the persistent goroutine pool (nil when threads <= 1),
	// the engine-held kernel arguments, and the per-shard reduction
	// partials summed in shard index order.
	threads          int
	shards           []shard
	pool             *shardPool
	kern             kernArgs
	shLnL, shD1, shD2 []float64

	// Arena scratch reused across evaluations: the per-pattern site
	// vector SiteLogLikelihoods fills (siteBuf) and the four junction
	// vectors insertion scoring needs (ins*). Both are lazily sized once.
	siteBuf           []float64
	insJclv, insRest  []float64
	insJsc, insRestSc []int32
}

// beginEval starts the stats clock for a public evaluation entry point;
// endEval stops it. Nested entry points are free: two time.Now calls per
// outermost invocation, nothing in the kernels, and no closure (use as
// `defer e.endEval(e.beginEval())`, which Go open-codes without
// allocating).
func (e *Engine) beginEval() time.Time {
	e.evalDepth++
	if e.evalDepth > 1 {
		return time.Time{}
	}
	return time.Now()
}

func (e *Engine) endEval(start time.Time) {
	e.evalDepth--
	if e.evalDepth == 0 {
		e.stats.EvalTime += time.Since(start)
	}
}

// New builds an engine for the given model and compressed patterns.
func New(m model.Model, p *seq.Patterns) (*Engine, error) {
	if p.NumPatterns() == 0 {
		return nil, fmt.Errorf("likelihood: empty pattern set")
	}
	e := &Engine{
		mdl:    m,
		pat:    p,
		freqs:  m.Freqs(),
		decomp: m.Decomposition(),
		npat:   p.NumPatterns(),
	}
	// Group patterns into rate classes.
	classIdx := make(map[float64]int)
	classOf := make([]int, e.npat)
	for i, r := range p.Rates {
		ci, ok := classIdx[r]
		if !ok {
			ci = len(e.classRates)
			classIdx[r] = ci
			e.classRates = append(e.classRates, r)
		}
		classOf[i] = ci
	}
	e.pmat = make([]model.PMatrix, len(e.classRates))
	e.dmat = make([]model.PMatrix, len(e.classRates))
	e.ddmat = make([]model.PMatrix, len(e.classRates))

	// Permute patterns so each rate class is one contiguous block; the
	// stable sort keeps the original relative order within a class.
	e.perm = make([]int, e.npat)
	for i := range e.perm {
		e.perm[i] = i
	}
	sort.SliceStable(e.perm, func(i, j int) bool {
		return classOf[e.perm[i]] < classOf[e.perm[j]]
	})
	e.weights = make([]float64, e.npat)
	for s, orig := range e.perm {
		e.weights[s] = p.Weights[orig]
	}
	lo := 0
	for s := 1; s <= e.npat; s++ {
		if s == e.npat || classOf[e.perm[s]] != classOf[e.perm[lo]] {
			e.blocks = append(e.blocks, classBlock{ci: classOf[e.perm[lo]], lo: lo, hi: s})
			lo = s
		}
	}

	// Tip vectors, in permuted pattern order.
	e.tips = make([][]float64, p.NumSeqs())
	for taxon := 0; taxon < p.NumSeqs(); taxon++ {
		v := make([]float64, e.npat*4)
		for s := 0; s < e.npat; s++ {
			c := p.Codes[taxon][e.perm[s]]
			for b := 0; b < 4; b++ {
				if c&(1<<uint(b)) != 0 {
					v[s*4+b] = 1
				}
			}
		}
		e.tips[taxon] = v
	}
	e.zeroScale = make([]int32, e.npat)

	// Shard layout and reduction partials (shard.go). The layout depends
	// only on the data, so every thread count — including 1 — reduces in
	// the same order and produces bit-identical results.
	e.shards = buildShards(e.blocks, e.npat)
	e.shLnL = make([]float64, len(e.shards))
	e.shD1 = make([]float64, len(e.shards))
	e.shD2 = make([]float64, len(e.shards))
	e.threads = 1
	return e, nil
}

// Model returns the engine's substitution model.
func (e *Engine) Model() model.Model { return e.mdl }

// Patterns returns the engine's data set.
func (e *Engine) Patterns() *seq.Patterns { return e.pat }

// Ops returns the cumulative pattern-level work counter.
func (e *Engine) Ops() uint64 { return e.ops }

// ResetOps zeroes the work counter and returns the previous value.
func (e *Engine) ResetOps() uint64 {
	v := e.ops
	e.ops = 0
	return v
}

// ensureBuffers sizes the cache's per-node index for node IDs < n.
func (e *Engine) ensureBuffers(n int) {
	e.cache.grow(n)
}

// fillProbs computes the per-class transition matrices for branch length z.
func (e *Engine) fillProbs(z float64) {
	for ci, r := range e.classRates {
		e.decomp.Probs(z, r, &e.pmat[ci])
	}
}

// fillProbsDeriv computes matrices and derivatives for branch length z.
func (e *Engine) fillProbsDeriv(z float64) {
	for ci, r := range e.classRates {
		e.decomp.ProbsDeriv(z, r, &e.pmat[ci], &e.dmat[ci], &e.ddmat[ci])
	}
}

// clampLen bounds a branch length into the legal interval.
func clampLen(z float64) float64 {
	if z < MinBranchLength {
		return MinBranchLength
	}
	if z > MaxBranchLength {
		return MaxBranchLength
	}
	return z
}

// combineInto multiplies (or, when first, assigns) P(z)·src into dst for
// every pattern, accumulating scale counts. One call is one child-edge
// combine of Felsenstein pruning: 16 pattern-level ops per pattern.
func (e *Engine) combineInto(dst []float64, dsc []int32, src []float64, ssc []int32, z float64, first bool) {
	e.fillProbs(clampLen(z))
	e.ops += uint64(e.npat) * 16
	k := &e.kern
	if first {
		k.op = kCombineFirst
	} else {
		k.op = kCombineMul
	}
	k.dst, k.dsc, k.src, k.ssc = dst, dsc, src, ssc
	e.runShards()
}

// rescale applies underflow protection (paper §2.1) to a CLV in place:
// tiny pattern vectors are multiplied up and the event counted.
func (e *Engine) rescale(clv []float64, sc []int32) {
	k := &e.kern
	k.op = kRescale
	k.dst, k.dsc = clv, sc
	e.runShards()
}

// partial returns the conditional likelihood vector of the subtree at n
// seen from parent (the "down" view of directed edge parent->n), its
// scale counts, and its cache generation. Results come from the CLV cache
// when the subtree is unchanged; only stale vectors are recombined. The
// returned slices are owned by the cache and valid until the next fill of
// the same directed edge.
func (e *Engine) partial(n, parent *tree.Node) ([]float64, []int32, uint64) {
	if n.Leaf() {
		return e.tips[n.Taxon], e.zeroScale, tipGen
	}
	ent := e.cache.entryFor(n, parent)
	valid := ent.filled && ent.nodeRev == n.Rev()

	// Recurse into the children first (pure pointer walk on the hit
	// path) and compare against the entry's recorded children. Children
	// are combined in node-ID order, not Nbr order: topology edits can
	// permute Nbr lists, and keying the floating-point combine order to
	// node identity keeps results bit-identical across edit histories
	// (the serial-equals-parallel guarantee).
	tmp := ent.tmp[:0]
	for i, child := range n.Nbr {
		if child == parent {
			continue
		}
		cclv, csc, cgen := e.partial(child, n)
		tmp = append(tmp, kidRef{node: child, gen: cgen, clv: cclv, sc: csc, z: n.Len[i]})
	}
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j].node.ID < tmp[j-1].node.ID; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	ent.tmp = tmp
	if valid && len(tmp) == len(ent.kids) {
		for i := range tmp {
			if ent.kids[i].node != tmp[i].node || ent.kids[i].gen != tmp[i].gen {
				valid = false
				break
			}
		}
	} else {
		valid = false
	}
	if valid {
		e.stats.Hits++
		return ent.clv, ent.scale, ent.gen
	}
	e.stats.Misses++
	e.stats.Recomputed++

	if ent.clv == nil {
		ent.clv, ent.scale = e.cache.allocCLV(e.npat)
	}
	for i := range tmp {
		e.combineInto(ent.clv, ent.scale, tmp[i].clv, tmp[i].sc, tmp[i].z, i == 0)
	}
	e.rescale(ent.clv, ent.scale)

	ent.nodeRev = n.Rev()
	ent.kids = ent.kids[:0]
	for i := range tmp {
		// Retain only the identity fields; the vector slices would pin
		// child buffers for no benefit.
		ent.kids = append(ent.kids, kidRef{node: tmp[i].node, gen: tmp[i].gen})
	}
	ent.gen = e.cache.nextGen()
	ent.filled = true
	return ent.clv, ent.scale, ent.gen
}

// downPartial is the uncached-era name for partial, kept for in-package
// tests; it returns the (possibly cached) directed-edge CLV.
func (e *Engine) downPartial(n, parent *tree.Node) ([]float64, []int32) {
	clv, sc, _ := e.partial(n, parent)
	return clv, sc
}

// edgeLogLikelihood combines the two directed partials of edge (a,b) at
// branch length z into the total log-likelihood.
func (e *Engine) edgeLogLikelihood(aclv []float64, asc []int32, bclv []float64, bsc []int32, z float64) float64 {
	e.fillProbs(clampLen(z))
	e.ops += uint64(e.npat) * 20
	k := &e.kern
	k.op = kEdgeLnL
	k.aclv, k.asc, k.bclv, k.bsc = aclv, asc, bclv, bsc
	e.runShards()
	// Ordered reduction: per-shard partials summed in shard index order,
	// independent of which thread computed them.
	total := 0.0
	for s := range e.shards {
		total += e.shLnL[s]
	}
	return total
}

// LogLikelihood evaluates the tree's log-likelihood without changing any
// branch length. The tree must contain at least two leaves whose taxa are
// covered by the data set. Evaluation is incremental: only conditional
// likelihood vectors invalidated since the previous call are recomputed.
func (e *Engine) LogLikelihood(t *tree.Tree) (float64, error) {
	defer e.endEval(e.beginEval())
	if err := e.checkTree(t); err != nil {
		return 0, err
	}
	e.ensureBuffers(t.MaxID())
	// Evaluate across an arbitrary edge.
	ed, ok := t.FirstEdge()
	if !ok {
		return 0, fmt.Errorf("likelihood: tree has no edges")
	}
	aclv, asc, _ := e.partial(ed.A, ed.B)
	bclv, bsc, _ := e.partial(ed.B, ed.A)
	return e.edgeLogLikelihood(aclv, asc, bclv, bsc, ed.Length()), nil
}

// SiteLogLikelihoods returns the per-pattern log-likelihoods of the tree
// (weights not applied) in the original pattern order of Patterns(), used
// by DNArates-style per-site estimation. The returned slice is owned by
// the engine and overwritten by the next call; callers that retain it
// across calls must copy.
func (e *Engine) SiteLogLikelihoods(t *tree.Tree) ([]float64, error) {
	defer e.endEval(e.beginEval())
	if err := e.checkTree(t); err != nil {
		return nil, err
	}
	e.ensureBuffers(t.MaxID())
	ed, ok := t.FirstEdge()
	if !ok {
		return nil, fmt.Errorf("likelihood: tree has no edges")
	}
	aclv, asc, _ := e.partial(ed.A, ed.B)
	bclv, bsc, _ := e.partial(ed.B, ed.A)
	e.fillProbs(clampLen(ed.Length()))
	if e.siteBuf == nil {
		e.siteBuf = make([]float64, e.npat)
	}
	k := &e.kern
	k.op = kSiteLnL
	k.aclv, k.asc, k.bclv, k.bsc, k.out = aclv, asc, bclv, bsc, e.siteBuf
	e.runShards()
	return e.siteBuf, nil
}

// checkTree verifies the tree is usable with this data set.
func (e *Engine) checkTree(t *tree.Tree) error {
	if len(t.Taxa) != e.pat.NumSeqs() {
		return fmt.Errorf("likelihood: tree over %d taxa, data has %d sequences", len(t.Taxa), e.pat.NumSeqs())
	}
	n := 0
	for _, node := range t.Nodes {
		if node == nil {
			continue
		}
		if node.Leaf() {
			if node.Taxon >= e.pat.NumSeqs() {
				return fmt.Errorf("likelihood: leaf taxon %d outside data set", node.Taxon)
			}
			n++
		}
	}
	if n < 2 {
		return fmt.Errorf("likelihood: tree has %d leaves, need at least 2", n)
	}
	return nil
}
